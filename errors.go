package raincore

import (
	"errors"
	"fmt"

	"repro/internal/rcerr"
)

// ErrRetryable is the class sentinel of the error taxonomy: every
// transient failure any Raincore layer can surface — ErrResharding,
// ErrSnapshotting, ErrEpochChanged, ErrReshardAborted, ErrTxnAborted —
// matches it under errors.Is. "Retryable" means the operation changed
// nothing and re-running it after the routing epoch settles is expected
// to succeed; the Cluster facade's methods absorb these internally, so a
// caller normally meets the class only when a RetryPolicy's attempt
// budget runs out.
//
// Permanent failures — ErrTxnIndeterminate (a commit may be partially
// applied), ErrReshardInProgress (re-running would reshard twice),
// ErrNotHolder, context cancellation — do NOT match.
var ErrRetryable = rcerr.ErrRetryable

// IsRetryable reports whether err is a transient failure that can be
// retried as-is: it unwraps err and matches the ErrRetryable class.
func IsRetryable(err error) bool { return errors.Is(err, ErrRetryable) }

// Error is the uniform operation error of the Cluster facade: which
// operation failed, on which key (when the operation has one), and why.
// The cause is wrapped, so errors.Is/errors.As see through it — both
// errors.Is(err, raincore.ErrResharding) and raincore.IsRetryable(err)
// work on a returned *Error.
type Error struct {
	// Op names the facade operation: "get", "set", "delete", "lock",
	// "unlock", "txn", "snapshot", "grow", "shrink", "multicast",
	// "close".
	Op string
	// Key is the key or lock name the operation addressed; empty for
	// cluster-wide operations (snapshot, grow, shrink).
	Key string
	// Err is the underlying cause.
	Err error
}

// Error renders "raincore: <op> <key>: <cause>".
func (e *Error) Error() string {
	if e.Key == "" {
		return fmt.Sprintf("raincore: %s: %v", e.Op, e.Err)
	}
	return fmt.Sprintf("raincore: %s %q: %v", e.Op, e.Key, e.Err)
}

// Unwrap exposes the cause to errors.Is and errors.As.
func (e *Error) Unwrap() error { return e.Err }

// Retryable reports whether the underlying cause is transient — the
// machine-checkable half of the error contract. Equivalent to
// IsRetryable(e).
func (e *Error) Retryable() bool { return errors.Is(e.Err, ErrRetryable) }

// opError wraps a failure in *Error unless it already is one (retry
// layers wrap once, at the outermost facade call).
func opError(op, key string, err error) error {
	if err == nil {
		return nil
	}
	var e *Error
	if errors.As(err, &e) {
		return err
	}
	return &Error{Op: op, Key: key, Err: err}
}
