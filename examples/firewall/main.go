// Firewall cluster: the Rainwall application of §3.2. A four-gateway
// cluster load-balances HTTP-like traffic connection by connection, a
// WebOnly security policy filters non-web flows, and pulling a gateway's
// cable mid-run causes a brief hiccup before traffic fully resumes — the
// scenario the paper demonstrates to customers.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/rainwall"
)

func main() {
	fmt.Println("== Rainwall firewall cluster (§3.2) ==")
	cluster, err := rainwall.NewCluster(rainwall.ClusterConfig{
		N:      4,
		Policy: rainwall.WebOnly(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.WaitReady(15 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster ready: %d gateways, %d virtual IPs\n", len(cluster.Gateways), len(cluster.Pool))

	// 600 Mbit/s of offered web traffic across 400 connections.
	w := rainwall.NewWorkload(rainwall.WorkloadConfig{
		Seed: 42, Flows: 400, TotalBps: 600e6, VIPs: len(cluster.Pool), WebTraffic: true,
	})
	fmt.Println("-- steady state: 600 Mbit/s offered web load --")
	samples := cluster.Run(w, rainwall.RunOptions{Ticks: 100, TickLen: 10 * time.Millisecond})
	fmt.Printf("aggregate throughput: %.1f Mbit/s (per-node capacity %.0f)\n",
		rainwall.SteadyThroughput(samples, 10)/1e6, rainwall.DefaultCapacityBps/1e6)
	for id, g := range cluster.Gateways {
		fmt.Printf("  gateway %v forwarded %.1f Mbit, policy-dropped %.1f Mbit\n",
			id, g.DeliveredBits()/1e6, g.FilteredBits()/1e6)
	}

	fmt.Println("-- a burst of non-web traffic hits the WebOnly policy --")
	bad := rainwall.NewWorkload(rainwall.WorkloadConfig{
		Seed: 43, Flows: 50, TotalBps: 50e6, VIPs: len(cluster.Pool), WebTraffic: false,
	})
	badSamples := cluster.Run(bad, rainwall.RunOptions{Ticks: 20, TickLen: 10 * time.Millisecond})
	var filtered float64
	for _, s := range badSamples {
		filtered += s.FilteredBits
	}
	fmt.Printf("policy filtered %.1f Mbit of non-web traffic\n", filtered/1e6)

	fmt.Println("-- pulling gateway 2's cable mid-transfer (paced, paper timers) --")
	cl2, err := rainwall.NewCluster(rainwall.ClusterConfig{N: 2, Ring: core.PaperRing()})
	if err != nil {
		log.Fatal(err)
	}
	defer cl2.Close()
	if err := cl2.WaitReady(20 * time.Second); err != nil {
		log.Fatal(err)
	}
	w2 := rainwall.NewWorkload(rainwall.WorkloadConfig{
		Seed: 44, Flows: 100, TotalBps: 90e6, VIPs: len(cl2.Pool), WebTraffic: true,
	})
	tick := 20 * time.Millisecond
	failAt := 40
	paced := cl2.Run(w2, rainwall.RunOptions{
		Ticks: 200, TickLen: tick, Paced: true,
		OnTick: func(i int) {
			if i == failAt {
				fmt.Println("  [cable pulled]")
				cl2.FailNode(2)
			}
		},
	})
	preTick := rainwall.MeanTickBits(paced[5:failAt])
	recovered := -1
	for i := failAt; i < len(paced)-5; i++ {
		if paced[i].DeliveredBits >= 0.9*preTick {
			recovered = i
			break
		}
	}
	if recovered >= 0 {
		fmt.Printf("traffic hiccup: %v (paper: \"under two seconds\")\n",
			time.Duration(recovered-failAt)*tick)
	} else {
		fmt.Println("traffic did not recover in the observation window")
	}
	fmt.Println("== done ==")
}
