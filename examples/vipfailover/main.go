// VIP fail-over: the Virtual IP Manager of §3.1. A pool of virtual IPs is
// mutually exclusively assigned across a three-node cluster through the
// Raincore Distributed Data Service under the cluster master lock; when a
// node dies, its VIPs move to the survivors and gratuitous ARP refreshes
// the subnet — the virtual IPs never disappear while one node lives.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dds"
	"repro/internal/vip"
)

func mac(id core.NodeID) vip.MAC {
	return vip.MAC(fmt.Sprintf("02:00:00:00:00:%02x", uint32(id)))
}

func main() {
	fmt.Println("== Raincore Virtual IP Manager (§3.1) ==")
	tc, err := core.NewTestCluster(core.ClusterOptions{N: 3, DeferStart: true})
	if err != nil {
		log.Fatal(err)
	}
	defer tc.Close()

	subnet := vip.NewSubnet()
	pool := []vip.IP{"10.0.0.100", "10.0.0.101", "10.0.0.102", "10.0.0.103"}
	managers := map[core.NodeID]*vip.Manager{}
	for id, node := range tc.Nodes {
		svc := dds.New(node)
		m := vip.NewManager(svc, subnet, pool, mac)
		m.Start(core.Handlers{})
		managers[id] = m
	}
	tc.StartAll()
	if err := tc.WaitAssembled(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	waitBound := func(note string) {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if len(subnet.Bindings()) == len(pool) {
				break
			}
			time.Sleep(time.Millisecond)
		}
		fmt.Println(note)
		for _, ip := range pool {
			m, _ := subnet.Lookup(ip)
			fmt.Printf("  %s -> %s\n", ip, m)
		}
	}
	time.Sleep(500 * time.Millisecond)
	waitBound("-- initial assignment (leader distributed the pool under the master lock) --")

	fmt.Println("-- killing node 1 (the current leader) --")
	start := time.Now()
	tc.Net.SetNodeDown(core.Addr(1), true)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		ok := true
		for _, ip := range pool {
			if m, bound := subnet.Lookup(ip); !bound || m == mac(1) {
				ok = false
			}
		}
		if ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("all VIPs moved off the dead node in %v\n", time.Since(start).Round(time.Millisecond))
	waitBound("-- post-failover assignment --")

	fmt.Println("-- gratuitous ARP history (MACs never move, only IP bindings) --")
	events := subnet.Events()
	for _, e := range events[max(0, len(events)-6):] {
		fmt.Printf("  ARP %s is-at %s\n", e.IP, e.MAC)
	}
	fmt.Println("== done ==")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
