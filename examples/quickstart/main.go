// Quickstart: a five-node Raincore cluster on the in-memory network,
// through the public facade — one raincore.Open per node brings up the
// session service (group assembly via the discovery protocol, atomic
// reliable multicast with agreed ordering, the aggressive failure
// detector), the sharded data service and the transaction coordinator.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
	"repro/internal/simnet"
	"repro/internal/transport"
)

func main() {
	fmt.Println("== Raincore quickstart: 5-node cluster via raincore.Open ==")
	net := simnet.New(simnet.Options{})
	defer net.Close()

	ids := []raincore.NodeID{1, 2, 3, 4, 5}
	addr := func(id raincore.NodeID) string { return fmt.Sprintf("node-%d", id) }

	var mu sync.Mutex
	delivered := map[raincore.NodeID][]string{}

	ctx := context.Background()
	clusters := map[raincore.NodeID]*raincore.Cluster{}
	for _, id := range ids {
		id := id
		conn := transport.NewSimConn(net.MustEndpoint(simnet.Addr(addr(id))))
		opts := []raincore.Option{
			raincore.WithID(id),
			raincore.WithRingConfig(raincore.FastRing()),
			raincore.WithHandlers(func(r raincore.RingID) raincore.Handlers {
				return raincore.Handlers{
					OnDeliver: func(d raincore.Delivery) {
						mu.Lock()
						delivered[id] = append(delivered[id], string(d.Payload))
						mu.Unlock()
					},
					OnMembership: func(e raincore.MembershipEvent) {
						fmt.Printf("  node %v view -> %v (epoch %d)\n", id, e.Members, e.Epoch)
					},
				}
			}),
		}
		for _, other := range ids {
			if other != id {
				opts = append(opts, raincore.WithPeer(other, raincore.Addr(addr(other))))
			}
		}
		cl, err := raincore.Open(ctx, []raincore.PacketConn{conn}, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		clusters[id] = cl
	}

	fmt.Println("-- waiting for the group to assemble via BODYODOR discovery --")
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	for _, id := range ids {
		if err := clusters[id].WaitMembers(wctx, len(ids)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("assembled: %v\n", clusters[1].Members())

	fmt.Println("-- every node multicasts one message --")
	for _, id := range ids {
		if err := clusters[id].Multicast(raincore.Ring0, []byte(fmt.Sprintf("hello from %v", id))); err != nil {
			log.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := len(delivered[1]) >= len(ids)
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	mu.Lock()
	fmt.Printf("node 1 delivered (agreed total order): %v\n", delivered[1])
	mu.Unlock()

	fmt.Println("-- the replicated map: one Set, visible everywhere --")
	if err := clusters[2].Set(ctx, "config/mtu", []byte("9000")); err != nil {
		log.Fatal(err)
	}
	for time.Now().Before(deadline) {
		if v, ok, _ := clusters[5].Get(ctx, "config/mtu"); ok {
			fmt.Printf("node 5 reads config/mtu = %s\n", v)
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	fmt.Println("-- pulling node 3's cable; the failure detector removes it --")
	start := time.Now()
	net.SetNodeDown(simnet.Addr(addr(3)), true)
	wctx2, cancel2 := context.WithTimeout(ctx, 15*time.Second)
	defer cancel2()
	if err := clusters[1].WaitMembers(wctx2, len(ids)-1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("survivors converged to %v in %v\n",
		clusters[1].Members(), time.Since(start).Round(time.Millisecond))
	fmt.Println("== done ==")
}
