// Quickstart: a five-node Raincore cluster on the in-memory network.
// Demonstrates group assembly through the discovery protocol, atomic
// reliable multicast with agreed ordering, the aggressive failure
// detector, and automatic rejoin — the §2 protocol suite end to end.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

func main() {
	fmt.Println("== Raincore quickstart: 5-node cluster on a simulated switch ==")

	var mu sync.Mutex
	delivered := map[core.NodeID][]string{}

	tc, err := core.NewTestCluster(core.ClusterOptions{
		N: 5,
		Handlers: func(id core.NodeID) core.Handlers {
			return core.Handlers{
				OnDeliver: func(d core.Delivery) {
					mu.Lock()
					delivered[id] = append(delivered[id], string(d.Payload))
					mu.Unlock()
				},
				OnMembership: func(e core.MembershipEvent) {
					fmt.Printf("  node %v view -> %v (epoch %d)\n", id, wire.SortedIDs(e.Members), e.Epoch)
				},
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tc.Close()

	fmt.Println("-- waiting for the group to assemble via BODYODOR discovery --")
	if err := tc.WaitAssembled(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled: %v\n", wire.SortedIDs(tc.Nodes[1].Members()))

	fmt.Println("-- every node multicasts one message --")
	for _, id := range tc.IDs {
		if err := tc.Nodes[id].Multicast([]byte(fmt.Sprintf("hello from %v", id))); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(300 * time.Millisecond)

	mu.Lock()
	ref := append([]string(nil), delivered[1]...)
	mu.Unlock()
	fmt.Printf("node 1 delivered %d messages in agreed order:\n", len(ref))
	for i, p := range ref {
		fmt.Printf("  %2d. %s\n", i+1, p)
	}
	mu.Lock()
	same := true
	for _, id := range tc.IDs {
		got := delivered[id]
		if len(got) != len(ref) {
			same = false
			break
		}
		for i := range ref {
			if got[i] != ref[i] {
				same = false
			}
		}
	}
	mu.Unlock()
	fmt.Printf("all five nodes agree on the delivery order: %v\n", same)

	fmt.Println("-- unplugging node 3 (aggressive failure detection, §2.2) --")
	start := time.Now()
	tc.Net.SetNodeDown(core.Addr(3), true)
	if err := tc.WaitMembership(10*time.Second, 1, 2, 4, 5); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("survivors converged on %v in %v\n",
		wire.SortedIDs(tc.Nodes[1].Members()), time.Since(start).Round(time.Millisecond))

	fmt.Println("-- plugging node 3 back in (911 join + merge, §2.3/§2.4) --")
	start = time.Now()
	tc.Net.SetNodeDown(core.Addr(3), false)
	if err := tc.WaitAssembled(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full membership restored in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Println("== done ==")
}
