// UDP cluster: the same session service over real UDP sockets on loopback
// — the production transport the paper names (§2.1). Three nodes assemble
// via discovery, multicast, and survive a member's departure.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
)

func main() {
	fmt.Println("== Raincore over real UDP (loopback) ==")

	const n = 3
	var nodes []*raincore.Node
	var addrs []raincore.Addr
	var udps []raincore.PacketConn
	for i := 0; i < n; i++ {
		c, err := raincore.ListenUDP("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		udps = append(udps, c)
		addrs = append(addrs, c.LocalAddr())
	}

	var mu sync.Mutex
	got := map[raincore.NodeID][]string{}

	ids := []raincore.NodeID{1, 2, 3}
	for i, id := range ids {
		ring := raincore.FastRing()
		ring.Eligible = ids
		node, err := raincore.NewNode(raincore.Config{ID: id, Ring: ring},
			[]raincore.PacketConn{udps[i]})
		if err != nil {
			log.Fatal(err)
		}
		id := id
		node.SetHandlers(raincore.Handlers{
			OnDeliver: func(d raincore.Delivery) {
				mu.Lock()
				got[id] = append(got[id], string(d.Payload))
				mu.Unlock()
			},
		})
		nodes = append(nodes, node)
	}
	for i := range nodes {
		for j, id := range ids {
			if i != j {
				nodes[i].SetPeer(id, []raincore.Addr{addrs[j]})
			}
		}
	}
	for _, node := range nodes {
		node.Start()
	}
	defer func() {
		for _, node := range nodes {
			node.Close()
		}
	}()

	fmt.Println("-- waiting for UDP discovery to assemble the group --")
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if len(nodes[0].Members()) == n && len(nodes[1].Members()) == n && len(nodes[2].Members()) == n {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("node 1 membership over UDP: %v\n", nodes[0].Members())

	fmt.Println("-- multicasting over real sockets --")
	for i, node := range nodes {
		if err := node.Multicast([]byte(fmt.Sprintf("udp message %d", i+1))); err != nil {
			log.Fatal(err)
		}
	}
	time.Sleep(500 * time.Millisecond)
	mu.Lock()
	for _, id := range ids {
		fmt.Printf("  node %v delivered: %v\n", id, got[id])
	}
	mu.Unlock()

	fmt.Println("-- node 3 leaves gracefully --")
	nodes[2].Leave()
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && len(nodes[0].Members()) != 2 {
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("surviving membership: %v\n", nodes[0].Members())
	fmt.Println("== done ==")
}
