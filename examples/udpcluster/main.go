// UDP cluster: the session service over real UDP sockets on loopback —
// the production transport the paper names (§2.1) — through the public
// facade. Three raincore.Open calls assemble via discovery, multicast,
// share the replicated map across real sockets, and survive a member's
// graceful departure.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
)

func main() {
	fmt.Println("== Raincore over real UDP (loopback) via raincore.Open ==")

	ids := []raincore.NodeID{1, 2, 3}
	var udps []raincore.PacketConn
	var addrs []raincore.Addr
	for range ids {
		c, err := raincore.ListenUDP("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		udps = append(udps, c)
		addrs = append(addrs, c.LocalAddr())
	}

	var mu sync.Mutex
	got := map[raincore.NodeID][]string{}

	ctx := context.Background()
	clusters := map[raincore.NodeID]*raincore.Cluster{}
	for i, id := range ids {
		id := id
		opts := []raincore.Option{
			raincore.WithID(id),
			raincore.WithRingConfig(raincore.FastRing()),
			raincore.WithHandlers(func(raincore.RingID) raincore.Handlers {
				return raincore.Handlers{
					OnDeliver: func(d raincore.Delivery) {
						mu.Lock()
						got[id] = append(got[id], string(d.Payload))
						mu.Unlock()
					},
				}
			}),
		}
		for j, other := range ids {
			if other != id {
				opts = append(opts, raincore.WithPeer(other, addrs[j]))
			}
		}
		cl, err := raincore.Open(ctx, []raincore.PacketConn{udps[i]}, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		clusters[id] = cl
	}

	fmt.Println("-- waiting for UDP discovery to assemble the group --")
	wctx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	for _, id := range ids {
		if err := clusters[id].WaitMembers(wctx, len(ids)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("node 1 membership over UDP: %v\n", clusters[1].Members())

	fmt.Println("-- multicasting over real sockets --")
	for i, id := range ids {
		if err := clusters[id].Multicast(raincore.Ring0, []byte(fmt.Sprintf("udp message %d", i+1))); err != nil {
			log.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := len(got[1]) >= len(ids)
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	for _, id := range ids {
		fmt.Printf("  node %v delivered: %v\n", id, got[id])
	}
	mu.Unlock()

	fmt.Println("-- the replicated map rides the same sockets --")
	if err := clusters[2].Set(ctx, "vip/10.0.0.100", []byte("node-2")); err != nil {
		log.Fatal(err)
	}
	for time.Now().Before(deadline.Add(5 * time.Second)) {
		if v, ok, _ := clusters[3].Get(ctx, "vip/10.0.0.100"); ok {
			fmt.Printf("node 3 reads vip/10.0.0.100 = %s\n", v)
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	fmt.Println("-- node 3 leaves gracefully --")
	lctx, lcancel := context.WithTimeout(ctx, 10*time.Second)
	defer lcancel()
	if err := clusters[3].Leave(lctx); err != nil {
		log.Fatal(err)
	}
	wctx2, cancel2 := context.WithTimeout(ctx, 10*time.Second)
	defer cancel2()
	if err := clusters[1].WaitMembers(wctx2, 2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surviving membership: %v\n", clusters[1].Members())
	fmt.Println("== done ==")
}
