// Lock manager: the Raincore Distributed Data Service slice of §2.7/§5
// through the public facade. Three cluster members contend for named
// locks granted in a consistent global order, share a replicated
// key-value map with read-your-writes, and a dead lock holder's locks
// are released by the ordered membership change. The keyspace is sharded
// across two rings — locks and keys route by consistent hashing, which
// the facade hides entirely.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro"
	"repro/internal/simnet"
	"repro/internal/transport"
)

func main() {
	fmt.Println("== Raincore distributed lock manager + replicated map (§2.7) ==")
	net := simnet.New(simnet.Options{})
	defer net.Close()

	ids := []raincore.NodeID{1, 2, 3}
	addr := func(id raincore.NodeID) string { return fmt.Sprintf("node-%d", id) }
	ctx := context.Background()
	clusters := map[raincore.NodeID]*raincore.Cluster{}
	for _, id := range ids {
		conn := transport.NewSimConn(net.MustEndpoint(simnet.Addr(addr(id))))
		opts := []raincore.Option{
			raincore.WithID(id),
			raincore.WithRings(2), // locks and keys sharded over two rings
			raincore.WithRingConfig(raincore.FastRing()),
		}
		for _, other := range ids {
			if other != id {
				opts = append(opts, raincore.WithPeer(other, raincore.Addr(addr(other))))
			}
		}
		cl, err := raincore.Open(ctx, []raincore.PacketConn{conn}, opts...)
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		clusters[id] = cl
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	for _, id := range ids {
		if err := clusters[id].WaitMembers(wctx, len(ids)); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("-- three nodes increment a replicated counter under a named lock --")
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id raincore.NodeID) {
			defer wg.Done()
			cl := clusters[id]
			for i := 0; i < 5; i++ {
				if err := cl.Lock(ctx, "counter-lock"); err != nil {
					log.Printf("node %v lock: %v", id, err)
					return
				}
				cur, _, _ := cl.Get(ctx, "counter")
				next := byte(1)
				if len(cur) > 0 {
					next = cur[0] + 1
				}
				if err := cl.Set(ctx, "counter", []byte{next}); err != nil {
					log.Printf("node %v set: %v", id, err)
				}
				if err := cl.Unlock(ctx, "counter-lock"); err != nil {
					log.Printf("node %v unlock: %v", id, err)
				}
			}
		}(id)
	}
	wg.Wait()
	time.Sleep(200 * time.Millisecond)
	v, _, _ := clusters[1].Get(ctx, "counter")
	fmt.Printf("counter = %d after 15 locked increments (lost updates: %d)\n", v[0], 15-int(v[0]))

	fmt.Println("-- replicated map is identical on every node --")
	for _, id := range ids {
		val, _, _ := clusters[id].Get(ctx, "counter")
		fmt.Printf("  node %v reads counter = %d\n", id, val[0])
	}

	fmt.Println("-- a node dies while holding a lock; the group releases it --")
	if err := clusters[2].Lock(ctx, "hot"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 2 holds 'hot'... pulling its cable")
	granted := make(chan struct{})
	go func() {
		if err := clusters[3].Lock(ctx, "hot"); err == nil {
			close(granted)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	net.SetNodeDown(simnet.Addr(addr(2)), true)
	<-granted
	fmt.Printf("node 3 acquired 'hot' %v after the failure (ordered SysNodeRemoved released it)\n",
		time.Since(start).Round(time.Millisecond))
	fmt.Println("== done ==")
}
