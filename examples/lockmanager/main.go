// Lock manager: the Raincore Distributed Data Service slice of §2.7/§5.
// Three nodes contend for named locks granted in a consistent global
// order, share a replicated key-value map with read-your-writes, and a
// dead lock holder's locks are released by the ordered membership change.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dds"
)

func main() {
	fmt.Println("== Raincore distributed lock manager + replicated map (§2.7) ==")
	tc, err := core.NewTestCluster(core.ClusterOptions{N: 3, DeferStart: true})
	if err != nil {
		log.Fatal(err)
	}
	defer tc.Close()
	svcs := map[core.NodeID]*dds.Service{}
	for id, node := range tc.Nodes {
		svcs[id] = dds.New(node)
	}
	tc.StartAll()
	if err := tc.WaitAssembled(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- three nodes increment a replicated counter under a named lock --")
	ctx := context.Background()
	var wg sync.WaitGroup
	for _, id := range tc.IDs {
		wg.Add(1)
		go func(id core.NodeID) {
			defer wg.Done()
			svc := svcs[id]
			for i := 0; i < 5; i++ {
				if err := svc.Lock(ctx, "counter-lock"); err != nil {
					log.Printf("node %v lock: %v", id, err)
					return
				}
				cur, _ := svc.Get("counter")
				next := byte(1)
				if len(cur) > 0 {
					next = cur[0] + 1
				}
				if err := svc.Set(ctx, "counter", []byte{next}); err != nil {
					log.Printf("node %v set: %v", id, err)
				}
				if err := svc.Unlock("counter-lock"); err != nil {
					log.Printf("node %v unlock: %v", id, err)
				}
			}
		}(id)
	}
	wg.Wait()
	time.Sleep(200 * time.Millisecond)
	v, _ := svcs[1].Get("counter")
	fmt.Printf("counter = %d after 15 locked increments (lost updates: %d)\n", v[0], 15-int(v[0]))

	fmt.Println("-- replicated map is identical on every node --")
	for _, id := range tc.IDs {
		val, _ := svcs[id].Get("counter")
		fmt.Printf("  node %v reads counter = %d\n", id, val[0])
	}

	fmt.Println("-- a node dies while holding a lock; the group releases it --")
	if err := svcs[2].Lock(ctx, "hot"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("node 2 holds 'hot'... pulling its cable")
	granted := make(chan struct{})
	go func() {
		if err := svcs[3].Lock(ctx, "hot"); err == nil {
			close(granted)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	tc.Net.SetNodeDown(core.Addr(2), true)
	<-granted
	fmt.Printf("node 3 acquired 'hot' %v after the failure (ordered SysNodeRemoved released it)\n",
		time.Since(start).Round(time.Millisecond))
	fmt.Println("== done ==")
}
