// Hierarchy: the scalability extension the paper lists as ongoing work
// (§5). Nine nodes form three cells of three; each cell runs its own local
// token ring, the cell leaders bridge into a global ring, and a global
// multicast reaches all nine nodes in one consistent global order while
// local token traffic stays inside each cell.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hierarchy"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	fmt.Println("== Raincore hierarchical extension (§5): 3 cells x 3 nodes ==")
	net := simnet.New(simnet.Options{Seed: 1})
	defer net.Close()
	tcfg := transport.DefaultConfig()
	tcfg.AckTimeout = 25 * time.Millisecond
	tcfg.Attempts = 5
	ring := func(eligible []core.NodeID) core.Config {
		rc := core.FastRing()
		rc.TokenHold = 3 * time.Millisecond
		rc.HungryTimeout = 200 * time.Millisecond
		rc.StarvingRetry = 150 * time.Millisecond
		rc.Eligible = eligible
		return core.Config{Ring: rc, Transport: tcfg}
	}

	cells := map[int][]core.NodeID{
		0: {1, 2, 3}, 1: {101, 102, 103}, 2: {201, 202, 203},
	}
	var all []core.NodeID
	for _, ids := range cells {
		all = append(all, ids...)
	}

	var mu sync.Mutex
	globals := map[core.NodeID][]string{}
	services := map[core.NodeID]*hierarchy.Service{}
	var nodes []*core.Node

	for ci, ids := range cells {
		for _, id := range ids {
			cfg := ring(ids)
			cfg.ID = id
			ep := net.MustEndpoint(simnet.Addr(fmt.Sprintf("l-%d", id)))
			node, err := core.NewNode(cfg, []transport.PacketConn{transport.NewSimConn(ep)})
			if err != nil {
				log.Fatal(err)
			}
			for _, other := range ids {
				if other != id {
					node.SetPeer(other, []transport.Addr{transport.Addr(fmt.Sprintf("l-%d", other))})
				}
			}
			id := id
			factory := func() (*core.Node, error) {
				gcfg := ring(all)
				gcfg.ID = id
				gep, err := net.Endpoint(simnet.Addr(fmt.Sprintf("g-%d", id)))
				if err != nil {
					return nil, err
				}
				gn, err := core.NewNode(gcfg, []transport.PacketConn{transport.NewSimConn(gep)})
				if err != nil {
					return nil, err
				}
				for _, other := range all {
					if other != id {
						gn.SetPeer(other, []transport.Addr{transport.Addr(fmt.Sprintf("g-%d", other))})
					}
				}
				return gn, nil
			}
			svc := hierarchy.New(ci, node, factory)
			svc.SetHandlers(hierarchy.Handlers{
				OnGlobal: func(d hierarchy.GlobalDelivery) {
					mu.Lock()
					globals[id] = append(globals[id], string(d.Payload))
					mu.Unlock()
				},
				OnBridgeChange: func(isBridge bool) {
					if isBridge {
						fmt.Printf("  node %v now bridges cell %d\n", id, ci)
					}
				},
			})
			services[id] = svc
			nodes = append(nodes, node)
		}
	}
	for _, n := range nodes {
		n.Start()
	}
	defer func() {
		for _, s := range services {
			s.Close()
		}
		for _, n := range nodes {
			n.Close()
		}
	}()

	fmt.Println("-- waiting for cells and the global ring to assemble --")
	deadline := time.Now().Add(60 * time.Second)
	converged := false
	for time.Now().Before(deadline) && !converged {
		var bridges []core.NodeID
		for _, ids := range cells {
			for _, id := range ids {
				if services[id].IsBridge() {
					bridges = append(bridges, id)
				}
			}
		}
		if len(bridges) == len(cells) {
			want := fmt.Sprint(wire.SortedIDs(bridges))
			converged = true
			for _, b := range bridges {
				if fmt.Sprint(wire.SortedIDs(services[b].GlobalMembers())) != want {
					converged = false
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !converged {
		for id, svc := range services {
			if svc.IsBridge() {
				fmt.Printf("  stuck: bridge %v global view %v\n", id, svc.GlobalMembers())
			}
		}
		log.Fatal("global ring did not converge")
	}
	for id, svc := range services {
		if svc.IsBridge() {
			fmt.Printf("  bridge %v sees global ring %v\n", id, svc.GlobalMembers())
			break
		}
	}

	fmt.Println("-- global multicasts from every cell --")
	for ci, ids := range cells {
		if err := services[ids[1]].MulticastGlobal([]byte(fmt.Sprintf("greetings from cell %d", ci))); err != nil {
			log.Fatal(err)
		}
	}
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		done := true
		for _, ids := range cells {
			for _, id := range ids {
				if len(globals[id]) < len(cells) {
					done = false
				}
			}
		}
		mu.Unlock()
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	mu.Lock()
	fmt.Printf("node 1 (cell 0) received, in global order: %v\n", globals[1])
	fmt.Printf("node 203 (cell 2) received, in global order: %v\n", globals[203])
	same := fmt.Sprint(globals[1]) == fmt.Sprint(globals[203])
	mu.Unlock()
	fmt.Printf("cells agree on the global order: %v\n", same)
	fmt.Println("== done ==")
}
