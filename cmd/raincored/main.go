// raincored runs one Raincore cluster member over real UDP — the
// production deployment shape of §2.1. Start several instances with
// mutual peer lists and they assemble into one group via the discovery
// protocol, share multicast state, and survive member failures.
//
// Example (three nodes on loopback):
//
//	raincored -id 1 -listen 127.0.0.1:7001 -peer 2=127.0.0.1:7002 -peer 3=127.0.0.1:7003 &
//	raincored -id 2 -listen 127.0.0.1:7002 -peer 1=127.0.0.1:7001 -peer 3=127.0.0.1:7003 &
//	raincored -id 3 -listen 127.0.0.1:7003 -peer 1=127.0.0.1:7001 -peer 2=127.0.0.1:7002 &
//
// Each node multicasts a heartbeat at -announce intervals and logs every
// delivery, membership change and system event. SIGINT leaves gracefully.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/stats"
)

// peerList implements flag.Value for repeated -peer id=addr[,addr...] flags.
type peerList map[raincore.NodeID][]raincore.Addr

func (p peerList) String() string { return fmt.Sprint(map[raincore.NodeID][]raincore.Addr(p)) }

func (p peerList) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want id=addr[,addr...], got %q", v)
	}
	id, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return fmt.Errorf("bad node id %q: %v", parts[0], err)
	}
	var addrs []raincore.Addr
	for _, a := range strings.Split(parts[1], ",") {
		addrs = append(addrs, raincore.Addr(strings.TrimSpace(a)))
	}
	p[raincore.NodeID(id)] = addrs
	return nil
}

func main() {
	var (
		id       = flag.Uint("id", 0, "this node's ID (required, non-zero)")
		listen   = flag.String("listen", "127.0.0.1:0", "UDP listen address; repeatable via commas for redundant links")
		peers    = peerList{}
		rings    = flag.Int("rings", 1, "token rings sharded over this node (one shared transport)")
		tokenMS  = flag.Int("token-hold", 100, "token hold interval in milliseconds")
		hungryMS = flag.Int("hungry", 500, "hungry timeout in milliseconds")
		beaconMS = flag.Int("bodyodor", 1000, "discovery beacon interval in milliseconds")
		quorum   = flag.Int("quorum", 0, "minimum membership before self-shutdown (0 disables)")
		announce = flag.Duration("announce", 2*time.Second, "heartbeat multicast interval (0 disables)")
		statsInt = flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
	)
	flag.Var(peers, "peer", "peer as id=addr[,addr...]; repeat per peer")
	flag.Parse()
	if *id == 0 {
		log.Fatal("raincored: -id is required and must be non-zero")
	}

	logger := log.New(os.Stdout, fmt.Sprintf("[n%d] ", *id), log.Ltime|log.Lmicroseconds)

	var conns []raincore.PacketConn
	for _, addr := range strings.Split(*listen, ",") {
		c, err := raincore.ListenUDP(strings.TrimSpace(addr))
		if err != nil {
			log.Fatalf("raincored: listen %s: %v", addr, err)
		}
		logger.Printf("listening on %s", c.LocalAddr())
		conns = append(conns, c)
	}

	eligible := []raincore.NodeID{raincore.NodeID(*id)}
	for pid := range peers {
		eligible = append(eligible, pid)
	}
	ring := raincore.RingConfig{
		TokenHold:        time.Duration(*tokenMS) * time.Millisecond,
		HungryTimeout:    time.Duration(*hungryMS) * time.Millisecond,
		BodyodorInterval: time.Duration(*beaconMS) * time.Millisecond,
		Eligible:         eligible,
		MinQuorum:        *quorum,
	}
	rt, err := raincore.NewRuntime(raincore.RuntimeConfig{
		ID:    raincore.NodeID(*id),
		Rings: *rings,
		Ring:  ring,
	}, conns)
	if err != nil {
		log.Fatalf("raincored: %v", err)
	}
	for pid, addrs := range peers {
		rt.SetPeer(pid, addrs)
	}

	// A node with a dead ring serves only part of the keyspace and the
	// runtime cannot restart single rings, so the daemon fails fast:
	// ringDown (first shutdown) exits the process for the supervisor to
	// restart it whole. allDown additionally lets the SIGINT path wait
	// until every ring has announced its leave.
	ringDown := make(chan struct{})
	allDown := make(chan struct{})
	var firstDown sync.Once
	var downRings atomic.Int32
	for _, n := range rt.Nodes() {
		r := n.Ring()
		n.SetHandlers(raincore.Handlers{
			OnDeliver: func(d raincore.Delivery) {
				logger.Printf("[%v] deliver from %v seq=%d safe=%v: %q", r, d.Origin, d.Seq, d.Safe, d.Payload)
			},
			OnMembership: func(e raincore.MembershipEvent) {
				logger.Printf("[%v] membership -> %v (epoch %d)", r, e.Members, e.Epoch)
			},
			OnSys: func(e raincore.SysEvent) {
				logger.Printf("[%v] sys %v subject=%v origin=%v", r, e.Kind, e.Subject, e.Origin)
			},
			OnShutdown: func(reason string) {
				logger.Printf("[%v] shutdown: %s", r, reason)
				firstDown.Do(func() { close(ringDown) })
				if int(downRings.Add(1)) == rt.Rings() {
					close(allDown)
				}
			},
		})
	}
	rt.Start()
	logger.Printf("started %d ring(s); eligible membership %v", rt.Rings(), eligible)

	if *announce > 0 {
		go func() {
			tick := time.NewTicker(*announce)
			defer tick.Stop()
			n := 0
			for range tick.C {
				n++
				// Round-robin heartbeats across the rings. A stopped
				// ring must not silence the survivors, so errors skip
				// to the next tick instead of ending the loop.
				r := raincore.RingID(n % rt.Rings())
				_ = rt.Multicast(r, []byte(fmt.Sprintf("heartbeat %d from n%d", n, *id)))
			}
		}()
	}
	if *statsInt > 0 {
		go func() {
			tick := time.NewTicker(*statsInt)
			defer tick.Stop()
			for range tick.C {
				reg := rt.Stats()
				logger.Printf("stats: passes=%d switches=%d sent=%d recv=%d regens=%d merges=%d healthy=%v",
					reg.Counter(stats.MetricTokenPasses).Load(),
					reg.Counter(stats.MetricTaskSwitches).Load(),
					reg.Counter(stats.MetricPacketsSent).Load(),
					reg.Counter(stats.MetricPacketsRecv).Load(),
					reg.Counter(stats.MetricTokenRegens).Load(),
					reg.Counter(stats.MetricMerges).Load(),
					rt.Healthy())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		logger.Printf("interrupt: leaving the group")
		for _, n := range rt.Nodes() {
			n.Leave()
		}
		select {
		case <-allDown:
		case <-time.After(3 * time.Second):
		}
	case <-ringDown:
		logger.Printf("a ring shut down; exiting so the supervisor restarts the whole node")
	}
	rt.Close()
	logger.Printf("bye")
}
