// raincored runs one Raincore cluster member over real UDP — the
// production deployment shape of §2.1. Start several instances with
// mutual peer lists and they assemble into one group via the discovery
// protocol, share multicast state, and survive member failures.
//
// Example (three nodes on loopback):
//
//	raincored -id 1 -listen 127.0.0.1:7001 -peer 2=127.0.0.1:7002 -peer 3=127.0.0.1:7003 &
//	raincored -id 2 -listen 127.0.0.1:7002 -peer 1=127.0.0.1:7001 -peer 3=127.0.0.1:7003 &
//	raincored -id 3 -listen 127.0.0.1:7003 -peer 1=127.0.0.1:7001 -peer 2=127.0.0.1:7002 &
//
// Each node multicasts a heartbeat at -announce intervals and logs every
// delivery, membership change and system event. SIGINT leaves gracefully.
//
// The daemon is one raincore.Open call: the sharded runtime, the
// distributed data service and the transaction coordinator come up
// together, and with -admin ADDR the facade serves its HTTP admin
// surface for elastic resharding and health:
//
//	GET  /health       full health view (rings, routing epoch, demux drops)
//	GET  /routing      the epoch-versioned routing table
//	GET  /snapshot     consistent cross-shard snapshot of the keyspace
//	                   (values are base64 in the JSON)
//	POST /rings/add    grow by one ring (call on every node; the lowest
//	                   member coordinates the keyspace handoff)
//	POST /rings/remove?ring=N  shrink, handing ring N's slice back
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/stats"
)

// peerList implements flag.Value for repeated -peer id=addr[,addr...] flags.
type peerList map[raincore.NodeID][]raincore.Addr

func (p peerList) String() string { return fmt.Sprint(map[raincore.NodeID][]raincore.Addr(p)) }

func (p peerList) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want id=addr[,addr...], got %q", v)
	}
	id, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return fmt.Errorf("bad node id %q: %v", parts[0], err)
	}
	var addrs []raincore.Addr
	for _, a := range strings.Split(parts[1], ",") {
		addrs = append(addrs, raincore.Addr(strings.TrimSpace(a)))
	}
	p[raincore.NodeID(id)] = addrs
	return nil
}

func main() {
	var (
		id       = flag.Uint("id", 0, "this node's ID (required, non-zero)")
		listen   = flag.String("listen", "127.0.0.1:0", "UDP listen address; repeatable via commas for redundant links")
		peers    = peerList{}
		rings    = flag.Int("rings", 1, "initial token rings sharded over this node (one shared transport)")
		tokenMS  = flag.Int("token-hold", 100, "token hold interval in milliseconds")
		hungryMS = flag.Int("hungry", 500, "hungry timeout in milliseconds")
		beaconMS = flag.Int("bodyodor", 1000, "discovery beacon interval in milliseconds")
		quorum   = flag.Int("quorum", 0, "minimum membership before self-shutdown (0 disables)")
		announce = flag.Duration("announce", 2*time.Second, "heartbeat multicast interval (0 disables)")
		statsInt = flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
		admin    = flag.String("admin", "", "HTTP admin address for health and grow/shrink (empty disables)")
		withDDS  = flag.Bool("dds", true, "deprecated no-op: the cluster facade always hosts the data service")
	)
	flag.Var(peers, "peer", "peer as id=addr[,addr...]; repeat per peer")
	flag.Parse()
	if *id == 0 {
		log.Fatal("raincored: -id is required and must be non-zero")
	}
	if !*withDDS {
		log.Print("raincored: -dds=false is deprecated and ignored; the data service is always hosted")
	}

	logger := log.New(os.Stdout, fmt.Sprintf("[n%d] ", *id), log.Ltime|log.Lmicroseconds)

	var conns []raincore.PacketConn
	for _, addr := range strings.Split(*listen, ",") {
		c, err := raincore.ListenUDP(strings.TrimSpace(addr))
		if err != nil {
			log.Fatalf("raincored: listen %s: %v", addr, err)
		}
		logger.Printf("listening on %s", c.LocalAddr())
		conns = append(conns, c)
	}

	ring := raincore.RingConfig{
		TokenHold:        time.Duration(*tokenMS) * time.Millisecond,
		HungryTimeout:    time.Duration(*hungryMS) * time.Millisecond,
		BodyodorInterval: time.Duration(*beaconMS) * time.Millisecond,
		MinQuorum:        *quorum,
	}

	// A node with a dead ring serves only part of the keyspace and the
	// runtime cannot restart single rings, so the daemon fails fast:
	// ringDown (first unexpected shutdown) exits the process for the
	// supervisor to restart it whole. A ring retired by an admin shrink
	// also announces a shutdown, but its ring has already left the
	// routing table — that one is deliberate and does not exit.
	ringDown := make(chan struct{})
	var firstDown sync.Once
	// The handler closures run on ring goroutines that start inside Open,
	// before main's cluster variable is assigned — an atomic pointer keeps
	// that window race-free (an early shutdown just exits fail-fast).
	var clP atomic.Pointer[raincore.Cluster]
	mkHandlers := func(r raincore.RingID) raincore.Handlers {
		return raincore.Handlers{
			OnDeliver: func(d raincore.Delivery) {
				logger.Printf("[%v] deliver from %v seq=%d safe=%v: %q", r, d.Origin, d.Seq, d.Safe, d.Payload)
			},
			OnMembership: func(e raincore.MembershipEvent) {
				logger.Printf("[%v] membership -> %v (epoch %d)", r, e.Members, e.Epoch)
			},
			OnSys: func(e raincore.SysEvent) {
				logger.Printf("[%v] sys %v subject=%v origin=%v", r, e.Kind, e.Subject, e.Origin)
			},
			OnShutdown: func(reason string) {
				if cl := clP.Load(); cl != nil && !cl.Routing().Has(r) {
					logger.Printf("[%v] retired: %s", r, reason)
					return
				}
				logger.Printf("[%v] shutdown: %s", r, reason)
				firstDown.Do(func() { close(ringDown) })
			},
		}
	}

	opts := []raincore.Option{
		raincore.WithID(raincore.NodeID(*id)),
		raincore.WithRings(*rings),
		raincore.WithRingConfig(ring),
		raincore.WithHandlers(mkHandlers),
	}
	for pid, addrs := range peers {
		opts = append(opts, raincore.WithPeer(pid, addrs...))
	}
	if *admin != "" {
		opts = append(opts, raincore.WithAdmin(*admin))
	}
	cl, err := raincore.Open(context.Background(), conns, opts...)
	if err != nil {
		log.Fatalf("raincored: %v", err)
	}
	clP.Store(cl)
	cl.RoutingWatch(func(v raincore.RoutingView) {
		logger.Printf("routing -> %v", v)
	})
	eligible := []raincore.NodeID{raincore.NodeID(*id)}
	for pid := range peers {
		eligible = append(eligible, pid)
	}
	slices.Sort(eligible)
	logger.Printf("cluster open: %d ring(s), sharded dds, txn coordinator; eligible membership %v",
		len(cl.Routing().Rings), eligible)
	if a := cl.AdminAddr(); a != "" {
		logger.Printf("admin surface on http://%s (GET /health /routing /snapshot, POST /rings/add /rings/remove?ring=N)", a)
	}

	if *announce > 0 {
		go func() {
			tick := time.NewTicker(*announce)
			defer tick.Stop()
			n := 0
			for range tick.C {
				n++
				// Round-robin heartbeats across the active rings of the
				// current routing epoch. A stopped ring must not silence
				// the survivors, so errors skip to the next tick.
				view := cl.Routing()
				if len(view.Rings) == 0 {
					continue
				}
				r := view.Rings[n%len(view.Rings)]
				_ = cl.Multicast(r, []byte(fmt.Sprintf("heartbeat %d from n%d", n, *id)))
			}
		}()
	}
	if *statsInt > 0 {
		go func() {
			tick := time.NewTicker(*statsInt)
			defer tick.Stop()
			for range tick.C {
				reg := cl.Stats()
				h := cl.Health()
				logger.Printf("stats: epoch=%d rings=%d passes=%d switches=%d sent=%d recv=%d regens=%d merges=%d demux_drops=%d retries=%d healthy=%v",
					h.Routing.Epoch,
					len(h.Routing.Rings),
					reg.Counter(stats.MetricTokenPasses).Load(),
					reg.Counter(stats.MetricTaskSwitches).Load(),
					reg.Counter(stats.MetricPacketsSent).Load(),
					reg.Counter(stats.MetricPacketsRecv).Load(),
					reg.Counter(stats.MetricTokenRegens).Load(),
					reg.Counter(stats.MetricMerges).Load(),
					h.DemuxDrops,
					reg.Counter(stats.MetricClusterRetries).Load(),
					cl.Healthy())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		logger.Printf("interrupt: leaving the group")
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		_ = cl.Leave(ctx)
		cancel()
	case <-ringDown:
		logger.Printf("a ring shut down; exiting so the supervisor restarts the whole node")
		_ = cl.Close()
	}
	logger.Printf("bye")
}
