// raincored runs one Raincore cluster member over real UDP — the
// production deployment shape of §2.1. Start several instances with
// mutual peer lists and they assemble into one group via the discovery
// protocol, share multicast state, and survive member failures.
//
// Example (three nodes on loopback):
//
//	raincored -id 1 -listen 127.0.0.1:7001 -peer 2=127.0.0.1:7002 -peer 3=127.0.0.1:7003 &
//	raincored -id 2 -listen 127.0.0.1:7002 -peer 1=127.0.0.1:7001 -peer 3=127.0.0.1:7003 &
//	raincored -id 3 -listen 127.0.0.1:7003 -peer 1=127.0.0.1:7001 -peer 2=127.0.0.1:7002 &
//
// Each node multicasts a heartbeat at -announce intervals and logs every
// delivery, membership change and system event. SIGINT leaves gracefully.
//
// With -admin ADDR the daemon serves an HTTP admin surface for elastic
// resharding and health:
//
//	GET  /health       full health view (rings, routing epoch, demux drops)
//	GET  /routing      the epoch-versioned routing table
//	GET  /snapshot     consistent cross-shard snapshot of the keyspace
//	                   (requires -dds; values are base64 in the JSON)
//	POST /rings/add    grow by one ring (call on every node; the lowest
//	                   member coordinates the keyspace handoff)
//	POST /rings/remove?ring=N  shrink, handing ring N's slice back
//
// With -dds the daemon hosts the sharded distributed data service, so
// grows and shrinks migrate the keyspace through the ordered handoff.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/internal/stats"
)

// peerList implements flag.Value for repeated -peer id=addr[,addr...] flags.
type peerList map[raincore.NodeID][]raincore.Addr

func (p peerList) String() string { return fmt.Sprint(map[raincore.NodeID][]raincore.Addr(p)) }

func (p peerList) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want id=addr[,addr...], got %q", v)
	}
	id, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return fmt.Errorf("bad node id %q: %v", parts[0], err)
	}
	var addrs []raincore.Addr
	for _, a := range strings.Split(parts[1], ",") {
		addrs = append(addrs, raincore.Addr(strings.TrimSpace(a)))
	}
	p[raincore.NodeID(id)] = addrs
	return nil
}

func main() {
	var (
		id       = flag.Uint("id", 0, "this node's ID (required, non-zero)")
		listen   = flag.String("listen", "127.0.0.1:0", "UDP listen address; repeatable via commas for redundant links")
		peers    = peerList{}
		rings    = flag.Int("rings", 1, "initial token rings sharded over this node (one shared transport)")
		tokenMS  = flag.Int("token-hold", 100, "token hold interval in milliseconds")
		hungryMS = flag.Int("hungry", 500, "hungry timeout in milliseconds")
		beaconMS = flag.Int("bodyodor", 1000, "discovery beacon interval in milliseconds")
		quorum   = flag.Int("quorum", 0, "minimum membership before self-shutdown (0 disables)")
		announce = flag.Duration("announce", 2*time.Second, "heartbeat multicast interval (0 disables)")
		statsInt = flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
		admin    = flag.String("admin", "", "HTTP admin address for health and grow/shrink (empty disables)")
		withDDS  = flag.Bool("dds", false, "host the sharded distributed data service (enables keyspace handoff on grow/shrink)")
	)
	flag.Var(peers, "peer", "peer as id=addr[,addr...]; repeat per peer")
	flag.Parse()
	if *id == 0 {
		log.Fatal("raincored: -id is required and must be non-zero")
	}

	logger := log.New(os.Stdout, fmt.Sprintf("[n%d] ", *id), log.Ltime|log.Lmicroseconds)

	var conns []raincore.PacketConn
	for _, addr := range strings.Split(*listen, ",") {
		c, err := raincore.ListenUDP(strings.TrimSpace(addr))
		if err != nil {
			log.Fatalf("raincored: listen %s: %v", addr, err)
		}
		logger.Printf("listening on %s", c.LocalAddr())
		conns = append(conns, c)
	}

	eligible := []raincore.NodeID{raincore.NodeID(*id)}
	for pid := range peers {
		eligible = append(eligible, pid)
	}
	ring := raincore.RingConfig{
		TokenHold:        time.Duration(*tokenMS) * time.Millisecond,
		HungryTimeout:    time.Duration(*hungryMS) * time.Millisecond,
		BodyodorInterval: time.Duration(*beaconMS) * time.Millisecond,
		Eligible:         eligible,
		MinQuorum:        *quorum,
	}
	rt, err := raincore.NewRuntime(raincore.RuntimeConfig{
		ID:    raincore.NodeID(*id),
		Rings: *rings,
		Ring:  ring,
	}, conns)
	if err != nil {
		log.Fatalf("raincored: %v", err)
	}
	for pid, addrs := range peers {
		rt.SetPeer(pid, addrs)
	}

	// A node with a dead ring serves only part of the keyspace and the
	// runtime cannot restart single rings, so the daemon fails fast:
	// ringDown (first unexpected shutdown) exits the process for the
	// supervisor to restart it whole. A ring retired by an admin shrink
	// also announces a shutdown, but its ring has already left the
	// routing table — that one is deliberate and does not exit.
	ringDown := make(chan struct{})
	var firstDown sync.Once
	mkHandlers := func(r raincore.RingID) raincore.Handlers {
		return raincore.Handlers{
			OnDeliver: func(d raincore.Delivery) {
				logger.Printf("[%v] deliver from %v seq=%d safe=%v: %q", r, d.Origin, d.Seq, d.Safe, d.Payload)
			},
			OnMembership: func(e raincore.MembershipEvent) {
				logger.Printf("[%v] membership -> %v (epoch %d)", r, e.Members, e.Epoch)
			},
			OnSys: func(e raincore.SysEvent) {
				logger.Printf("[%v] sys %v subject=%v origin=%v", r, e.Kind, e.Subject, e.Origin)
			},
			OnShutdown: func(reason string) {
				if !rt.Routing().Has(r) {
					logger.Printf("[%v] retired: %s", r, reason)
					return
				}
				logger.Printf("[%v] shutdown: %s", r, reason)
				firstDown.Do(func() { close(ringDown) })
			},
		}
	}

	var sharded *raincore.ShardedDDS
	if *withDDS {
		sharded, err = raincore.AttachShardedDDS(rt)
		if err != nil {
			log.Fatalf("raincored: attach dds: %v", err)
		}
		// The data service owns the node handler slots; the daemon's
		// loggers ride the per-shard application pass-through.
		for _, view := range rt.Routing().Rings {
			sharded.Shard(int(view)).SetAppHandlers(mkHandlers(view))
		}
		logger.Printf("sharded dds attached across %d ring(s)", rt.Rings())
	} else {
		for _, n := range rt.Nodes() {
			n.SetHandlers(mkHandlers(n.Ring()))
		}
	}
	// Rings spawned later by admin grows get the same treatment. The dds
	// spawn hook (when attached) registered first, so the shard exists
	// by the time this one runs.
	rt.OnRingSpawn(func(r raincore.RingID, n *raincore.Node) {
		if sharded != nil {
			sharded.Shard(int(r)).SetAppHandlers(mkHandlers(r))
		} else {
			n.SetHandlers(mkHandlers(r))
		}
	})
	rt.RoutingWatch(func(v raincore.RoutingView) {
		logger.Printf("routing -> %v", v)
	})

	rt.Start()
	logger.Printf("started %d ring(s); eligible membership %v", rt.Rings(), eligible)

	if *admin != "" {
		mux := http.NewServeMux()
		writeJSON := func(w http.ResponseWriter, v any) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(v)
		}
		mux.HandleFunc("GET /health", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, rt.HealthView())
		})
		mux.HandleFunc("GET /routing", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, rt.Routing())
		})
		mux.HandleFunc("GET /snapshot", func(w http.ResponseWriter, r *http.Request) {
			if sharded == nil {
				http.Error(w, "snapshot requires -dds", http.StatusConflict)
				return
			}
			ctx, cancel := context.WithTimeout(r.Context(), 30*time.Second)
			defer cancel()
			snap, err := sharded.Snapshot(ctx)
			if err != nil {
				// Conflicts (a reshard or another snapshot in flight) are
				// retryable; surface them as such.
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			logger.Printf("admin: snapshot captured %d keys at epoch %d", len(snap), rt.Routing().Epoch)
			writeJSON(w, map[string]any{"routing": rt.Routing(), "keys": snap})
		})
		mux.HandleFunc("POST /rings/add", func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), 60*time.Second)
			defer cancel()
			ringID, err := rt.AddRing(ctx)
			if err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			logger.Printf("admin: grew to ring %v", ringID)
			writeJSON(w, map[string]any{"ring": ringID, "routing": rt.Routing()})
		})
		mux.HandleFunc("POST /rings/remove", func(w http.ResponseWriter, r *http.Request) {
			n, err := strconv.ParseUint(r.URL.Query().Get("ring"), 10, 32)
			if err != nil {
				http.Error(w, "want ?ring=N", http.StatusBadRequest)
				return
			}
			ctx, cancel := context.WithTimeout(r.Context(), 60*time.Second)
			defer cancel()
			if err := rt.RemoveRing(ctx, raincore.RingID(n)); err != nil {
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			logger.Printf("admin: removed ring %d", n)
			writeJSON(w, map[string]any{"routing": rt.Routing()})
		})
		srv := &http.Server{Addr: *admin, Handler: mux}
		go func() {
			logger.Printf("admin surface on http://%s (GET /health /routing /snapshot, POST /rings/add /rings/remove?ring=N)", *admin)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Printf("admin: %v", err)
			}
		}()
		defer srv.Close()
	}

	if *announce > 0 {
		go func() {
			tick := time.NewTicker(*announce)
			defer tick.Stop()
			n := 0
			for range tick.C {
				n++
				// Round-robin heartbeats across the active rings of the
				// current routing epoch. A stopped ring must not silence
				// the survivors, so errors skip to the next tick.
				view := rt.Routing()
				if len(view.Rings) == 0 {
					continue
				}
				r := view.Rings[n%len(view.Rings)]
				_ = rt.Multicast(r, []byte(fmt.Sprintf("heartbeat %d from n%d", n, *id)))
			}
		}()
	}
	if *statsInt > 0 {
		go func() {
			tick := time.NewTicker(*statsInt)
			defer tick.Stop()
			for range tick.C {
				reg := rt.Stats()
				h := rt.HealthView()
				logger.Printf("stats: epoch=%d rings=%d passes=%d switches=%d sent=%d recv=%d regens=%d merges=%d demux_drops=%d healthy=%v",
					h.Routing.Epoch,
					len(h.Routing.Rings),
					reg.Counter(stats.MetricTokenPasses).Load(),
					reg.Counter(stats.MetricTaskSwitches).Load(),
					reg.Counter(stats.MetricPacketsSent).Load(),
					reg.Counter(stats.MetricPacketsRecv).Load(),
					reg.Counter(stats.MetricTokenRegens).Load(),
					reg.Counter(stats.MetricMerges).Load(),
					h.DemuxDrops,
					rt.Healthy())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		logger.Printf("interrupt: leaving the group")
		for _, n := range rt.Nodes() {
			n.Leave()
		}
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			all := true
			for _, n := range rt.Nodes() {
				if !n.Stopped() {
					all = false
					break
				}
			}
			if all {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	case <-ringDown:
		logger.Printf("a ring shut down; exiting so the supervisor restarts the whole node")
	}
	rt.Close()
	logger.Printf("bye")
}
