// raincored runs one Raincore node over real UDP in either deployment
// mode. A member is a cluster peer of §2.1: start several instances
// with mutual peer lists and they assemble into one group via the
// discovery protocol, share multicast state, and survive member
// failures. A gateway is a member that additionally serves the
// HTTP/JSON access tier for fleets of external clients — request
// coalescing, per-request deadlines, Prometheus /metrics — on top of
// its own replica.
//
// Example (three members on loopback):
//
//	raincored -id 1 -listen 127.0.0.1:7001 -peer 2=127.0.0.1:7002 -peer 3=127.0.0.1:7003 &
//	raincored -id 2 -listen 127.0.0.1:7002 -peer 1=127.0.0.1:7001 -peer 3=127.0.0.1:7003 &
//	raincored -id 3 -listen 127.0.0.1:7003 -peer 1=127.0.0.1:7001 -peer 2=127.0.0.1:7002 &
//
// Adding a gateway in front (it joins the core as node 4, then serves
// HTTP):
//
//	raincored -id 4 -listen 127.0.0.1:7004 -peer 1=127.0.0.1:7001 \
//	          -mode gateway -gateway 127.0.0.1:8080
//	curl http://127.0.0.1:8080/kv/greeting
//
// Configuration may also come from a JSON file (-config PATH); the
// precedence is flags > file > defaults — an explicitly set flag
// overrides the file, an untouched one never shadows it. See
// internal/config for the document shape.
//
// Each node multicasts a heartbeat at -announce intervals and logs every
// delivery, membership change and system event. SIGINT leaves gracefully.
//
// The daemon is one raincore.Open call: the sharded runtime, the
// distributed data service and the transaction coordinator come up
// together, and with -admin ADDR the facade serves its HTTP admin
// surface for elastic resharding, health and observability:
//
//	GET  /health       full health view (rings, routing epoch, demux drops)
//	GET  /routing      the epoch-versioned routing table
//	GET  /stats        metric registry snapshot (JSON)
//	GET  /metrics      the same snapshot as Prometheus text exposition
//	GET  /snapshot     consistent cross-shard snapshot of the keyspace
//	                   (values are base64 in the JSON)
//	POST /rings/add    grow by one ring (call on every node; the lowest
//	                   member coordinates the keyspace handoff)
//	POST /rings/remove?ring=N  shrink, handing ring N's slice back
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"slices"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/config"
	"repro/internal/gateway"
	"repro/internal/stats"
)

// peerList implements flag.Value for repeated -peer id=addr[,addr...] flags.
type peerList map[raincore.NodeID][]raincore.Addr

func (p peerList) String() string { return fmt.Sprint(map[raincore.NodeID][]raincore.Addr(p)) }

func (p peerList) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want id=addr[,addr...], got %q", v)
	}
	id, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return fmt.Errorf("bad node id %q: %v", parts[0], err)
	}
	var addrs []raincore.Addr
	for _, a := range strings.Split(parts[1], ",") {
		addrs = append(addrs, raincore.Addr(strings.TrimSpace(a)))
	}
	p[raincore.NodeID(id)] = addrs
	return nil
}

// splitList turns a comma-separated flag into a trimmed address list.
func splitList(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		out = append(out, strings.TrimSpace(a))
	}
	return out
}

// resolveConfig implements the flags > file > defaults precedence: the
// file (if any) overlays config.Default, then every flag the command
// line explicitly set overrides the result. Flags never touched keep
// the file's (or default's) value — flag.Visit walks only the set ones.
func resolveConfig(fs *flag.FlagSet, cfgPath string, peers peerList) (config.Config, error) {
	cfg := config.Default()
	if cfgPath != "" {
		var err error
		if cfg, err = config.Load(cfgPath); err != nil {
			return cfg, err
		}
	}
	var visitErr error
	fs.Visit(func(f *flag.Flag) {
		get := func() string { return f.Value.String() }
		atoi := func() int {
			n, err := strconv.Atoi(get())
			if err != nil && visitErr == nil {
				visitErr = fmt.Errorf("-%s: %v", f.Name, err)
			}
			return n
		}
		ms := func() int {
			d, err := time.ParseDuration(get())
			if err != nil && visitErr == nil {
				visitErr = fmt.Errorf("-%s: %v", f.Name, err)
			}
			return int(d.Milliseconds())
		}
		switch f.Name {
		case "id":
			cfg.Node.ID = uint32(atoi())
		case "listen":
			cfg.Node.Listen = splitList(get())
		case "rings":
			cfg.Node.Rings = atoi()
		case "token-hold":
			cfg.Node.TokenHoldMS = atoi()
		case "hungry":
			cfg.Node.HungryMS = atoi()
		case "bodyodor":
			cfg.Node.BodyodorMS = atoi()
		case "quorum":
			cfg.Node.Quorum = atoi()
		case "announce":
			cfg.Node.AnnounceMS = ms()
		case "stats":
			cfg.Node.StatsMS = ms()
		case "admin":
			cfg.Node.Admin = get()
		case "wal-dir":
			cfg.Node.WalDir = get()
		case "fsync-mode":
			cfg.Node.FsyncMode = get()
		case "snapshot-every":
			n, err := strconv.ParseInt(get(), 10, 64)
			if err != nil && visitErr == nil {
				visitErr = fmt.Errorf("-%s: %v", f.Name, err)
			}
			cfg.Node.SnapshotEveryBytes = n
		case "write-batch-off":
			cfg.Node.WriteBatchDisabled = get() == "true"
		case "write-batch-max-ops":
			cfg.Node.WriteBatchMaxOps = atoi()
		case "write-batch-max-bytes":
			cfg.Node.WriteBatchMaxBytes = atoi()
		case "write-batch-linger":
			cfg.Node.WriteBatchLingerMS = ms()
		case "mode":
			cfg.Mode = get()
		case "gateway":
			cfg.Gateway.Listen = get()
		}
	})
	if visitErr != nil {
		return cfg, visitErr
	}
	// -peer flags merge over (and per-ID override) the file's peer set.
	for pid, addrs := range peers {
		if cfg.Node.Peers == nil {
			cfg.Node.Peers = make(map[string][]string)
		}
		var as []string
		for _, a := range addrs {
			as = append(as, string(a))
		}
		cfg.Node.Peers[strconv.FormatUint(uint64(pid), 10)] = as
	}
	return cfg, cfg.Validate()
}

// defaultReadOptions maps the configured gateway read mode onto the
// facade's cluster-wide default (WithDefaultReadOptions), so bare Gets
// made on this member — the gateway's own upstream reads included —
// serve that consistency without per-call plumbing.
func defaultReadOptions(g config.Gateway) []raincore.ReadOption {
	switch g.ReadMode {
	case "bounded":
		return []raincore.ReadOption{raincore.WithMaxStaleness(g.MaxStaleness())}
	case "linearizable":
		return []raincore.ReadOption{raincore.WithLinearizable()}
	case "lease":
		return []raincore.ReadOption{raincore.WithReadLease(g.Lease())}
	default: // "eventual": the allocation-free fast path needs no option
		return nil
	}
}

func main() {
	// Every knob but -config and -peer flows through resolveConfig's
	// flag.Visit pass, so only the two specials keep named variables. The
	// flag defaults mirror config.Default — an untouched flag is never
	// visited, so the file's value (or the default) stands.
	cfgPath := flag.String("config", "", "JSON configuration file; explicitly set flags override it")
	peers := peerList{}
	flag.String("mode", config.ModeMember, "deployment mode: member, or gateway (HTTP access tier in front of the core)")
	flag.String("gateway", "", "gateway HTTP listen address (gateway mode)")
	flag.Uint("id", 0, "this node's ID (required, non-zero)")
	flag.String("listen", "127.0.0.1:0", "UDP listen address; repeatable via commas for redundant links")
	flag.Int("rings", 1, "initial token rings sharded over this node (one shared transport)")
	flag.Int("token-hold", 100, "token hold interval in milliseconds")
	flag.Int("hungry", 500, "hungry timeout in milliseconds")
	flag.Int("bodyodor", 1000, "discovery beacon interval in milliseconds")
	flag.Int("quorum", 0, "minimum membership before self-shutdown (0 disables)")
	flag.Duration("announce", 2*time.Second, "heartbeat multicast interval (0 disables)")
	flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
	flag.String("admin", "", "HTTP admin address for health and grow/shrink (empty disables)")
	flag.String("wal-dir", "", "directory for per-ring write-ahead logs and snapshots (empty disables durability)")
	flag.String("fsync-mode", "batch", "WAL durability point: always, batch or none")
	flag.Int64("snapshot-every", 4<<20, "compact a ring's WAL into a snapshot past this many bytes")
	flag.Bool("write-batch-off", false, "disable the per-shard write coalescer (one ordered frame per write)")
	flag.Int("write-batch-max-ops", 0, "flush a coalesced write frame at this many ops (0 = default 128)")
	flag.Int("write-batch-max-bytes", 0, "flush a coalesced write frame at this encoded size (0 = default 48KiB)")
	flag.Duration("write-batch-linger", 0, "longest a buffered write waits for company (0 = self-clocking)")
	flag.Var(peers, "peer", "peer as id=addr[,addr...]; repeat per peer")
	flag.Parse()

	cfg, err := resolveConfig(flag.CommandLine, *cfgPath, peers)
	if err != nil {
		log.Fatalf("raincored: %v", err)
	}
	if cfg.Node.ID == 0 {
		log.Fatal("raincored: a non-zero node ID is required (-id or node.id)")
	}

	logger := log.New(os.Stdout, fmt.Sprintf("[n%d] ", cfg.Node.ID), log.Ltime|log.Lmicroseconds)

	var conns []raincore.PacketConn
	for _, addr := range cfg.Node.Listen {
		c, err := raincore.ListenUDP(addr)
		if err != nil {
			log.Fatalf("raincored: listen %s: %v", addr, err)
		}
		logger.Printf("listening on %s", c.LocalAddr())
		conns = append(conns, c)
	}

	ring := raincore.RingConfig{
		TokenHold:        time.Duration(cfg.Node.TokenHoldMS) * time.Millisecond,
		HungryTimeout:    time.Duration(cfg.Node.HungryMS) * time.Millisecond,
		BodyodorInterval: time.Duration(cfg.Node.BodyodorMS) * time.Millisecond,
		MinQuorum:        cfg.Node.Quorum,
	}

	// A node with a dead ring serves only part of the keyspace and the
	// runtime cannot restart single rings, so the daemon fails fast:
	// ringDown (first unexpected shutdown) exits the process for the
	// supervisor to restart it whole. A ring retired by an admin shrink
	// also announces a shutdown, but its ring has already left the
	// routing table — that one is deliberate and does not exit.
	ringDown := make(chan struct{})
	var firstDown sync.Once
	// The handler closures run on ring goroutines that start inside Open,
	// before main's cluster variable is assigned — an atomic pointer keeps
	// that window race-free (an early shutdown just exits fail-fast).
	var clP atomic.Pointer[raincore.Cluster]
	mkHandlers := func(r raincore.RingID) raincore.Handlers {
		return raincore.Handlers{
			OnDeliver: func(d raincore.Delivery) {
				logger.Printf("[%v] deliver from %v seq=%d safe=%v: %q", r, d.Origin, d.Seq, d.Safe, d.Payload)
			},
			OnMembership: func(e raincore.MembershipEvent) {
				logger.Printf("[%v] membership -> %v (epoch %d)", r, e.Members, e.Epoch)
			},
			OnSys: func(e raincore.SysEvent) {
				logger.Printf("[%v] sys %v subject=%v origin=%v", r, e.Kind, e.Subject, e.Origin)
			},
			OnShutdown: func(reason string) {
				if cl := clP.Load(); cl != nil && !cl.Routing().Has(r) {
					logger.Printf("[%v] retired: %s", r, reason)
					return
				}
				logger.Printf("[%v] shutdown: %s", r, reason)
				firstDown.Do(func() { close(ringDown) })
			},
		}
	}

	opts := []raincore.Option{
		raincore.WithID(raincore.NodeID(cfg.Node.ID)),
		raincore.WithRings(cfg.Node.Rings),
		raincore.WithRingConfig(ring),
		raincore.WithHandlers(mkHandlers),
	}
	eligible := []raincore.NodeID{raincore.NodeID(cfg.Node.ID)}
	for id, addrs := range cfg.Node.Peers {
		n, _ := strconv.ParseUint(id, 10, 32)
		var as []raincore.Addr
		for _, a := range addrs {
			as = append(as, raincore.Addr(a))
		}
		opts = append(opts, raincore.WithPeer(raincore.NodeID(n), as...))
		eligible = append(eligible, raincore.NodeID(n))
	}
	if cfg.Node.Admin != "" {
		opts = append(opts, raincore.WithAdmin(cfg.Node.Admin))
	}
	if cfg.Node.WalDir != "" {
		opts = append(opts,
			raincore.WithStorage(cfg.Node.WalDir),
			raincore.WithFsyncMode(cfg.Node.FsyncMode),
			raincore.WithSnapshotEvery(cfg.Node.SnapshotEveryBytes))
		logger.Printf("durability on: wal_dir=%s fsync=%s snapshot_every=%d",
			cfg.Node.WalDir, cfg.Node.FsyncMode, cfg.Node.SnapshotEveryBytes)
	}
	if cfg.Node.WriteBatchDisabled || cfg.Node.WriteBatchMaxOps > 0 ||
		cfg.Node.WriteBatchMaxBytes > 0 || cfg.Node.WriteBatchLingerMS > 0 {
		opts = append(opts, raincore.WithWriteBatching(raincore.WriteBatching{
			MaxOps:   cfg.Node.WriteBatchMaxOps,
			MaxBytes: cfg.Node.WriteBatchMaxBytes,
			Linger:   time.Duration(cfg.Node.WriteBatchLingerMS) * time.Millisecond,
			Disabled: cfg.Node.WriteBatchDisabled,
		}))
		logger.Printf("write batching: disabled=%v max_ops=%d max_bytes=%d linger=%dms",
			cfg.Node.WriteBatchDisabled, cfg.Node.WriteBatchMaxOps,
			cfg.Node.WriteBatchMaxBytes, cfg.Node.WriteBatchLingerMS)
	}
	if cfg.Mode == config.ModeGateway {
		if ro := defaultReadOptions(cfg.Gateway); ro != nil {
			opts = append(opts, raincore.WithDefaultReadOptions(ro...))
		}
	}
	cl, err := raincore.Open(context.Background(), conns, opts...)
	if err != nil {
		log.Fatalf("raincored: %v", err)
	}
	clP.Store(cl)
	cl.RoutingWatch(func(v raincore.RoutingView) {
		logger.Printf("routing -> %v", v)
	})
	slices.Sort(eligible)
	logger.Printf("cluster open: %d ring(s), sharded dds, txn coordinator; eligible membership %v",
		len(cl.Routing().Rings), eligible)
	if a := cl.AdminAddr(); a != "" {
		logger.Printf("admin surface on http://%s (GET /health /routing /stats /metrics /snapshot, POST /rings/add /rings/remove?ring=N)", a)
	}

	// Gateway mode: the HTTP access tier over this member's own cluster
	// handle, recording into the same registry the admin surface serves
	// (one /metrics page carries core and gateway families alike).
	var gw *gateway.Gateway
	if cfg.Mode == config.ModeGateway {
		gw, err = gateway.New(gateway.Options{
			Backend: cl,
			Txn: func(ctx context.Context, req gateway.TxnRequest) (map[string][]byte, error) {
				tx := cl.Txn()
				for _, k := range req.Reads {
					tx.Read(k)
				}
				for k, v := range req.Sets {
					tx.Set(k, v)
				}
				for _, k := range req.Deletes {
					tx.Delete(k)
				}
				return tx.Commit(ctx)
			},
			Registry:        cl.Stats(),
			DefaultTimeout:  cfg.Gateway.DefaultTimeout(),
			MaxTimeout:      cfg.Gateway.MaxTimeout(),
			DisableCoalesce: !cfg.Gateway.Coalesce,
			CacheTTL:        cfg.Gateway.CacheTTL(),
			ReadMode:        cfg.Gateway.ReadMode,
			MaxStaleness:    cfg.Gateway.MaxStaleness(),
			Lease:           cfg.Gateway.Lease(),
			MaxInflight:     cfg.Gateway.MaxInflight,
		})
		if err != nil {
			log.Fatalf("raincored: %v", err)
		}
		// Ordered-apply eviction: a write committed through ANY member
		// evicts this gateway's micro-cache entry the moment it applies on
		// the member behind it, so cache_ttl_ms is a latency knob, not a
		// staleness bound.
		gwRef := gw
		cl.OnApply(func(e raincore.ApplyEvent) {
			for _, k := range e.Keys {
				gwRef.Invalidate(k)
			}
		})
		// Batch-size observability: every coalesced frame flushed by this
		// member's shards lands in gateway_write_batch_size.
		cl.DDS().OnWriteBatch(gwRef.ObserveWriteBatch)
		addr, err := gw.Start(cfg.Gateway.Listen)
		if err != nil {
			log.Fatalf("raincored: %v", err)
		}
		logger.Printf("gateway on http://%s (GET/PUT/DELETE /kv/{key}, POST /txn, GET /healthz /metrics; coalesce=%v read_mode=%s)",
			addr, cfg.Gateway.Coalesce, cfg.Gateway.ReadMode)
	}

	if d := time.Duration(cfg.Node.AnnounceMS) * time.Millisecond; d > 0 {
		go func() {
			tick := time.NewTicker(d)
			defer tick.Stop()
			n := 0
			for range tick.C {
				n++
				// Round-robin heartbeats across the active rings of the
				// current routing epoch. A stopped ring must not silence
				// the survivors, so errors skip to the next tick.
				view := cl.Routing()
				if len(view.Rings) == 0 {
					continue
				}
				r := view.Rings[n%len(view.Rings)]
				_ = cl.Multicast(r, []byte(fmt.Sprintf("heartbeat %d from n%d", n, cfg.Node.ID)))
			}
		}()
	}
	if d := time.Duration(cfg.Node.StatsMS) * time.Millisecond; d > 0 {
		go func() {
			tick := time.NewTicker(d)
			defer tick.Stop()
			for range tick.C {
				reg := cl.Stats()
				h := cl.Health()
				logger.Printf("stats: epoch=%d rings=%d passes=%d switches=%d sent=%d recv=%d regens=%d merges=%d demux_drops=%d retries=%d healthy=%v",
					h.Routing.Epoch,
					len(h.Routing.Rings),
					reg.Counter(stats.MetricTokenPasses).Load(),
					reg.Counter(stats.MetricTaskSwitches).Load(),
					reg.Counter(stats.MetricPacketsSent).Load(),
					reg.Counter(stats.MetricPacketsRecv).Load(),
					reg.Counter(stats.MetricTokenRegens).Load(),
					reg.Counter(stats.MetricMerges).Load(),
					h.DemuxDrops,
					reg.Counter(stats.MetricClusterRetries).Load(),
					cl.Healthy())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		logger.Printf("interrupt: leaving the group")
		if gw != nil {
			_ = gw.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		_ = cl.Leave(ctx)
		cancel()
	case <-ringDown:
		logger.Printf("a ring shut down; exiting so the supervisor restarts the whole node")
		if gw != nil {
			_ = gw.Close()
		}
		_ = cl.Close()
	}
	logger.Printf("bye")
}
