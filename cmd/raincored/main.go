// raincored runs one Raincore cluster member over real UDP — the
// production deployment shape of §2.1. Start several instances with
// mutual peer lists and they assemble into one group via the discovery
// protocol, share multicast state, and survive member failures.
//
// Example (three nodes on loopback):
//
//	raincored -id 1 -listen 127.0.0.1:7001 -peer 2=127.0.0.1:7002 -peer 3=127.0.0.1:7003 &
//	raincored -id 2 -listen 127.0.0.1:7002 -peer 1=127.0.0.1:7001 -peer 3=127.0.0.1:7003 &
//	raincored -id 3 -listen 127.0.0.1:7003 -peer 1=127.0.0.1:7001 -peer 2=127.0.0.1:7002 &
//
// Each node multicasts a heartbeat at -announce intervals and logs every
// delivery, membership change and system event. SIGINT leaves gracefully.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/stats"
)

// peerList implements flag.Value for repeated -peer id=addr[,addr...] flags.
type peerList map[raincore.NodeID][]raincore.Addr

func (p peerList) String() string { return fmt.Sprint(map[raincore.NodeID][]raincore.Addr(p)) }

func (p peerList) Set(v string) error {
	parts := strings.SplitN(v, "=", 2)
	if len(parts) != 2 {
		return fmt.Errorf("want id=addr[,addr...], got %q", v)
	}
	id, err := strconv.ParseUint(parts[0], 10, 32)
	if err != nil {
		return fmt.Errorf("bad node id %q: %v", parts[0], err)
	}
	var addrs []raincore.Addr
	for _, a := range strings.Split(parts[1], ",") {
		addrs = append(addrs, raincore.Addr(strings.TrimSpace(a)))
	}
	p[raincore.NodeID(id)] = addrs
	return nil
}

func main() {
	var (
		id       = flag.Uint("id", 0, "this node's ID (required, non-zero)")
		listen   = flag.String("listen", "127.0.0.1:0", "UDP listen address; repeatable via commas for redundant links")
		peers    = peerList{}
		tokenMS  = flag.Int("token-hold", 100, "token hold interval in milliseconds")
		hungryMS = flag.Int("hungry", 500, "hungry timeout in milliseconds")
		beaconMS = flag.Int("bodyodor", 1000, "discovery beacon interval in milliseconds")
		quorum   = flag.Int("quorum", 0, "minimum membership before self-shutdown (0 disables)")
		announce = flag.Duration("announce", 2*time.Second, "heartbeat multicast interval (0 disables)")
		statsInt = flag.Duration("stats", 10*time.Second, "stats print interval (0 disables)")
	)
	flag.Var(peers, "peer", "peer as id=addr[,addr...]; repeat per peer")
	flag.Parse()
	if *id == 0 {
		log.Fatal("raincored: -id is required and must be non-zero")
	}

	logger := log.New(os.Stdout, fmt.Sprintf("[n%d] ", *id), log.Ltime|log.Lmicroseconds)

	var conns []raincore.PacketConn
	for _, addr := range strings.Split(*listen, ",") {
		c, err := raincore.ListenUDP(strings.TrimSpace(addr))
		if err != nil {
			log.Fatalf("raincored: listen %s: %v", addr, err)
		}
		logger.Printf("listening on %s", c.LocalAddr())
		conns = append(conns, c)
	}

	eligible := []raincore.NodeID{raincore.NodeID(*id)}
	for pid := range peers {
		eligible = append(eligible, pid)
	}
	ring := raincore.RingConfig{
		TokenHold:        time.Duration(*tokenMS) * time.Millisecond,
		HungryTimeout:    time.Duration(*hungryMS) * time.Millisecond,
		BodyodorInterval: time.Duration(*beaconMS) * time.Millisecond,
		Eligible:         eligible,
		MinQuorum:        *quorum,
	}
	node, err := raincore.NewNode(raincore.Config{ID: raincore.NodeID(*id), Ring: ring}, conns)
	if err != nil {
		log.Fatalf("raincored: %v", err)
	}
	for pid, addrs := range peers {
		node.SetPeer(pid, addrs)
	}

	done := make(chan struct{})
	node.SetHandlers(raincore.Handlers{
		OnDeliver: func(d raincore.Delivery) {
			logger.Printf("deliver from %v seq=%d safe=%v: %q", d.Origin, d.Seq, d.Safe, d.Payload)
		},
		OnMembership: func(e raincore.MembershipEvent) {
			logger.Printf("membership -> %v (epoch %d)", e.Members, e.Epoch)
		},
		OnSys: func(e raincore.SysEvent) {
			logger.Printf("sys %v subject=%v origin=%v", e.Kind, e.Subject, e.Origin)
		},
		OnShutdown: func(reason string) {
			logger.Printf("shutdown: %s", reason)
			close(done)
		},
	})
	node.Start()
	logger.Printf("started; eligible membership %v", eligible)

	if *announce > 0 {
		go func() {
			tick := time.NewTicker(*announce)
			defer tick.Stop()
			n := 0
			for range tick.C {
				n++
				if err := node.Multicast([]byte(fmt.Sprintf("heartbeat %d from n%d", n, *id))); err != nil {
					return
				}
			}
		}()
	}
	if *statsInt > 0 {
		go func() {
			tick := time.NewTicker(*statsInt)
			defer tick.Stop()
			for range tick.C {
				reg := node.Stats()
				logger.Printf("stats: passes=%d switches=%d sent=%d recv=%d regens=%d merges=%d",
					reg.Counter(stats.MetricTokenPasses).Load(),
					reg.Counter(stats.MetricTaskSwitches).Load(),
					reg.Counter(stats.MetricPacketsSent).Load(),
					reg.Counter(stats.MetricPacketsRecv).Load(),
					reg.Counter(stats.MetricTokenRegens).Load(),
					reg.Counter(stats.MetricMerges).Load())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		logger.Printf("interrupt: leaving the group")
		node.Leave()
		select {
		case <-done:
		case <-time.After(3 * time.Second):
		}
	case <-done:
	}
	node.Close()
	logger.Printf("bye")
}
