// rainbench regenerates every table and figure of the paper's evaluation
// (§4) plus the ablation studies listed in DESIGN.md. Each experiment
// prints a table with the measured values next to the paper's published or
// predicted numbers.
//
// Usage:
//
//	rainbench -exp all          # run everything
//	rainbench -exp e3           # only the Figure 3 reproduction
//	rainbench -exp e1,e2,a3     # a comma-separated subset
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiments to run: all or a comma list of e1,e2,e3,e4,a1,a2,a3")
	flag.Parse()

	want := map[string]bool{}
	if *exp == "all" {
		for _, e := range []string{"e1", "e2", "e3", "e4", "a1", "a2", "a3"} {
			want[e] = true
		}
	} else {
		for _, e := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(strings.ToLower(e))] = true
		}
	}

	fmt.Println("Raincore reproduction benchmark harness")
	fmt.Println("paper: The Raincore Distributed Session Service for Networking Elements (IPPS 2001)")
	fmt.Println()

	start := time.Now()
	if want["e1"] {
		cfg := experiments.DefaultE1()
		rows, err := experiments.E1TaskSwitching(cfg)
		if err != nil {
			log.Fatalf("E1: %v", err)
		}
		fmt.Println(experiments.E1Table(rows, cfg))
	}
	if want["e2"] {
		cfg := experiments.DefaultE2()
		rows, err := experiments.E2NetworkOverhead(cfg)
		if err != nil {
			log.Fatalf("E2: %v", err)
		}
		fmt.Println(experiments.E2Table(rows, cfg))
	}
	if want["e3"] {
		cfg := experiments.DefaultE3()
		rows, err := experiments.E3RainwallScaling(cfg)
		if err != nil {
			log.Fatalf("E3: %v", err)
		}
		fmt.Println(experiments.E3Table(rows, cfg))
	}
	if want["e4"] {
		cfg := experiments.DefaultE4()
		rows, err := experiments.E4Failover(cfg)
		if err != nil {
			log.Fatalf("E4: %v", err)
		}
		fmt.Println(experiments.E4Table(rows, cfg))
	}
	if want["a1"] {
		rows, err := experiments.A1SafeVsAgreed(4, 50)
		if err != nil {
			log.Fatalf("A1: %v", err)
		}
		fmt.Println(experiments.A1Table(rows))
	}
	if want["a2"] {
		rows, err := experiments.A2SendStrategy(100)
		if err != nil {
			log.Fatalf("A2: %v", err)
		}
		fmt.Println(experiments.A2Table(rows, 100))
	}
	if want["a3"] {
		rows, err := experiments.A3TokenInterval([]time.Duration{
			time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond,
		})
		if err != nil {
			log.Fatalf("A3: %v", err)
		}
		fmt.Println(experiments.A3Table(rows))
	}
	fmt.Fprintf(os.Stderr, "total runtime: %v\n", time.Since(start).Round(time.Second))
}
