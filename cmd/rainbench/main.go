// rainbench regenerates every table and figure of the paper's evaluation
// (§4) plus the ablation studies listed in DESIGN.md. Each experiment
// prints a table with the measured values next to the paper's published or
// predicted numbers.
//
// Usage:
//
//	rainbench -exp all          # run everything
//	rainbench -exp e3           # only the Figure 3 reproduction
//	rainbench -exp e1,e2,a3     # a comma-separated subset
//	rainbench e5                # positional form of -exp e5
//
// e5 (the sharded multi-ring scaling run) persists its rows to
// BENCH_E5.json (override with -e5-out); e6 (the elastic-resharding run)
// persists to BENCH_E6.json (-e6-out), e7 (the cross-shard transaction
// run) to BENCH_E7.json (-e7-out), e8 (the consistency-moded read
// scaling run) to BENCH_E8.json (-e8-out), e9 (the gateway
// request-coalescing run) to BENCH_E9.json (-e9-out), e10 (the
// durability WAL-overhead and crash-restart recovery run) to
// BENCH_E10.json (-e10-out) and e11 (the end-to-end write-batching run)
// to BENCH_E11.json (-e11-out); e6 through e11 refuse to overwrite an
// existing baseline unless -force is given. -quick shrinks e7 through
// e11 to their CI sizes (seconds), for the per-PR benchmark artifact.
//
// -cluster runs the facade-overhead comparison: the same sharded write
// workload against the raw dds router and through raincore.Cluster's
// retry wrapper, asserting the wrapper stays within noise of the raw
// path. Alone it runs only that comparison; with -exp or positional
// names it runs both.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiments to run: all or a comma list of e1,e2,e3,e4,e5,e6,e7,e8,e9,e10,e11,a1,a2,a3")
	e5Out := flag.String("e5-out", "BENCH_E5.json", "where e5 persists its baseline rows")
	e6Out := flag.String("e6-out", "BENCH_E6.json", "where e6 persists its baseline")
	e7Out := flag.String("e7-out", "BENCH_E7.json", "where e7 persists its baseline")
	e8Out := flag.String("e8-out", "BENCH_E8.json", "where e8 persists its baseline")
	e9Out := flag.String("e9-out", "BENCH_E9.json", "where e9 persists its baseline")
	e10Out := flag.String("e10-out", "BENCH_E10.json", "where e10 persists its baseline")
	e11Out := flag.String("e11-out", "BENCH_E11.json", "where e11 persists its baseline")
	force := flag.Bool("force", false, "overwrite an existing e6/e7/e8/e9/e10/e11 baseline")
	quick := flag.Bool("quick", false, "run e7/e8/e9/e10/e11 at their CI sizes (shorter phases, fewer workers)")
	clusterMode := flag.Bool("cluster", false, "measure the raincore.Cluster facade's retry-wrapper overhead against the raw sharded-dds path (asserts it is within noise)")
	flag.Parse()

	known := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "a1", "a2", "a3"}
	selection := *exp
	// Positional form: `rainbench e5` == `rainbench -exp e5`. Mixing the
	// two would silently drop one, so it is an error; so is an unknown
	// name (flag.Parse stops at the first positional argument, which
	// would otherwise swallow misplaced flags like `rainbench e5
	// -e5-out=x` without a trace).
	if args := flag.Args(); len(args) > 0 {
		expSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "exp" {
				expSet = true
			}
		})
		if expSet {
			log.Fatalf("rainbench: use either -exp or positional experiment names, not both (got -exp %q and %v)", *exp, args)
		}
		selection = strings.Join(args, ",")
	}
	want := map[string]bool{}
	if *clusterMode && selection == "all" && len(flag.Args()) == 0 {
		// `rainbench -cluster` alone runs only the facade comparison;
		// combine with -exp (or positional names) to run both.
		expSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "exp" {
				expSet = true
			}
		})
		if !expSet {
			selection = ""
		}
	}
	if strings.TrimSpace(strings.ToLower(selection)) == "all" {
		for _, e := range known {
			want[e] = true
		}
	} else if selection != "" {
		for _, e := range strings.Split(selection, ",") {
			name := strings.TrimSpace(strings.ToLower(e))
			valid := false
			for _, k := range known {
				if name == k {
					valid = true
					break
				}
			}
			if !valid {
				log.Fatalf("rainbench: unknown experiment %q (valid: all, %s; flags go before positional names)", name, strings.Join(known, ", "))
			}
			want[name] = true
		}
	}

	fmt.Println("Raincore reproduction benchmark harness")
	fmt.Println("paper: The Raincore Distributed Session Service for Networking Elements (IPPS 2001)")
	fmt.Println()

	start := time.Now()
	if want["e1"] {
		cfg := experiments.DefaultE1()
		rows, err := experiments.E1TaskSwitching(cfg)
		if err != nil {
			log.Fatalf("E1: %v", err)
		}
		fmt.Println(experiments.E1Table(rows, cfg))
	}
	if want["e2"] {
		cfg := experiments.DefaultE2()
		rows, err := experiments.E2NetworkOverhead(cfg)
		if err != nil {
			log.Fatalf("E2: %v", err)
		}
		fmt.Println(experiments.E2Table(rows, cfg))
	}
	if want["e3"] {
		cfg := experiments.DefaultE3()
		rows, err := experiments.E3RainwallScaling(cfg)
		if err != nil {
			log.Fatalf("E3: %v", err)
		}
		fmt.Println(experiments.E3Table(rows, cfg))
	}
	if want["e4"] {
		cfg := experiments.DefaultE4()
		rows, err := experiments.E4Failover(cfg)
		if err != nil {
			log.Fatalf("E4: %v", err)
		}
		fmt.Println(experiments.E4Table(rows, cfg))
	}
	if want["e5"] {
		cfg := experiments.DefaultE5()
		rows, err := experiments.E5ShardScaling(cfg)
		if err != nil {
			log.Fatalf("E5: %v", err)
		}
		fmt.Println(experiments.E5Table(rows, cfg))
		acfg := experiments.AdaptiveE5()
		arows, err := experiments.E5ShardScaling(acfg)
		if err != nil {
			log.Fatalf("E5 adaptive: %v", err)
		}
		fmt.Println(experiments.E5Table(arows, acfg))
		if err := experiments.WriteE5JSON(*e5Out, cfg, rows, &acfg, arows); err != nil {
			log.Fatalf("E5: write baseline: %v", err)
		}
		fmt.Printf("e5 baseline written to %s\n\n", *e5Out)
	}
	if want["e6"] {
		if _, err := os.Stat(*e6Out); err == nil && !*force {
			log.Fatalf("rainbench: %s exists; pass -force to overwrite the baseline", *e6Out)
		}
		cfg := experiments.DefaultE6()
		res, err := experiments.E6Resharding(cfg)
		if err != nil {
			log.Fatalf("E6: %v", err)
		}
		fmt.Println(experiments.E6Table(res, cfg))
		if err := experiments.WriteE6JSON(*e6Out, cfg, res); err != nil {
			log.Fatalf("E6: write baseline: %v", err)
		}
		fmt.Printf("e6 baseline written to %s\n\n", *e6Out)
	}
	if want["e7"] {
		if _, err := os.Stat(*e7Out); err == nil && !*force {
			log.Fatalf("rainbench: %s exists; pass -force to overwrite the baseline", *e7Out)
		}
		cfg := experiments.DefaultE7()
		if *quick {
			cfg = experiments.QuickE7()
		}
		res, err := experiments.E7TxnThroughput(cfg)
		if err != nil {
			log.Fatalf("E7: %v", err)
		}
		fmt.Println(experiments.E7Table(res, cfg))
		if err := experiments.WriteE7JSON(*e7Out, cfg, res); err != nil {
			log.Fatalf("E7: write baseline: %v", err)
		}
		fmt.Printf("e7 baseline written to %s\n\n", *e7Out)
	}
	if want["e8"] {
		if _, err := os.Stat(*e8Out); err == nil && !*force {
			log.Fatalf("rainbench: %s exists; pass -force to overwrite the baseline", *e8Out)
		}
		cfg := experiments.DefaultE8()
		if *quick {
			cfg = experiments.QuickE8()
		}
		rows, err := experiments.E8ReadScaling(cfg)
		if err != nil {
			log.Fatalf("E8: %v", err)
		}
		fmt.Println(experiments.E8Table(rows, cfg))
		e5Ref := experiments.E5WriteRef(*e5Out)
		if err := experiments.WriteE8JSON(*e8Out, cfg, rows, e5Ref); err != nil {
			log.Fatalf("E8: write baseline: %v", err)
		}
		fmt.Printf("e8 baseline written to %s\n", *e8Out)
		if e5Ref > 0 && len(rows) > 0 {
			last := rows[len(rows)-1]
			fmt.Printf("e8 write check: %.0f ops/s at %d nodes vs e5 4-shard baseline %.0f ops/s (%.1f%%)\n",
				last.WriteOpsPS, last.Nodes, e5Ref, 100*last.WriteOpsPS/e5Ref)
		}
		fmt.Println()
	}
	if want["e9"] {
		if _, err := os.Stat(*e9Out); err == nil && !*force {
			log.Fatalf("rainbench: %s exists; pass -force to overwrite the baseline", *e9Out)
		}
		cfg := experiments.DefaultE9()
		if *quick {
			cfg = experiments.QuickE9()
		}
		rows, err := experiments.E9GatewayCoalescing(cfg)
		if err != nil {
			log.Fatalf("E9: %v", err)
		}
		fmt.Println(experiments.E9Table(rows, cfg))
		if err := experiments.WriteE9JSON(*e9Out, cfg, rows); err != nil {
			log.Fatalf("E9: write baseline: %v", err)
		}
		fmt.Printf("e9 baseline written to %s\n\n", *e9Out)
	}
	if want["e10"] {
		if _, err := os.Stat(*e10Out); err == nil && !*force {
			log.Fatalf("rainbench: %s exists; pass -force to overwrite the baseline", *e10Out)
		}
		cfg := experiments.DefaultE10()
		if *quick {
			cfg = experiments.QuickE10()
		}
		res, err := experiments.E10Durability(cfg)
		if err != nil {
			log.Fatalf("E10: %v", err)
		}
		fmt.Println(experiments.E10Table(res, cfg))
		if err := experiments.WriteE10JSON(*e10Out, cfg, res); err != nil {
			log.Fatalf("E10: write baseline: %v", err)
		}
		fmt.Printf("e10 baseline written to %s\n", *e10Out)
		for _, row := range res.Overhead {
			if row.Mode == "batch" {
				verdict := "within"
				if !res.BatchWithinTarget {
					verdict = "OVER"
				}
				fmt.Printf("e10 durability check: fsync batch costs %.1f%% write throughput (%s the 10%% bar); WAL restart %.1fx faster than full retransfer\n\n",
					row.OverheadPct, verdict, res.SpeedupX)
			}
		}
	}
	if want["e11"] {
		if _, err := os.Stat(*e11Out); err == nil && !*force {
			log.Fatalf("rainbench: %s exists; pass -force to overwrite the baseline", *e11Out)
		}
		cfg := experiments.DefaultE11()
		if *quick {
			cfg = experiments.QuickE11()
		}
		res, err := experiments.E11WriteBatching(cfg)
		if err != nil {
			log.Fatalf("E11: %v", err)
		}
		fmt.Println(experiments.E11Table(res, cfg))
		if err := experiments.WriteE11JSON(*e11Out, cfg, res); err != nil {
			log.Fatalf("E11: write baseline: %v", err)
		}
		fmt.Printf("e11 baseline written to %s\n", *e11Out)
		speedupVerdict := "MISSES"
		if res.SpeedupWithinTarget {
			speedupVerdict = "meets"
		}
		alwaysVerdict := "OVER"
		if res.AlwaysWithinTarget {
			alwaysVerdict = "within"
		}
		fmt.Printf("e11 batching check: batched writes %.2fx the unbatched baseline (%s the 3x bar); fsync always costs %.1f%% vs none under group commit at %s (%s the 15%% bar)\n\n",
			res.BestSpeedupX, speedupVerdict, res.AlwaysOverheadPct, res.AlwaysOverheadBatching, alwaysVerdict)
	}
	if want["a1"] {
		rows, err := experiments.A1SafeVsAgreed(4, 50)
		if err != nil {
			log.Fatalf("A1: %v", err)
		}
		fmt.Println(experiments.A1Table(rows))
	}
	if want["a2"] {
		rows, err := experiments.A2SendStrategy(100)
		if err != nil {
			log.Fatalf("A2: %v", err)
		}
		fmt.Println(experiments.A2Table(rows, 100))
	}
	if want["a3"] {
		rows, err := experiments.A3TokenInterval([]time.Duration{
			time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond, 100 * time.Millisecond,
		})
		if err != nil {
			log.Fatalf("A3: %v", err)
		}
		fmt.Println(experiments.A3Table(rows))
	}
	if *clusterMode {
		cfg := experiments.DefaultEC()
		res, err := experiments.EClusterOverhead(cfg)
		if err != nil {
			if res.RawOpsPS > 0 {
				fmt.Println(experiments.ECTable(res, cfg))
			}
			log.Fatalf("EC: %v", err)
		}
		fmt.Println(experiments.ECTable(res, cfg))
	}
	fmt.Fprintf(os.Stderr, "total runtime: %v\n", time.Since(start).Round(time.Second))
}
