// Package vip implements the Virtual IP manager of §3.1: a pool of highly
// available virtual IPs is mutually exclusively assigned to cluster
// members; on failures the Raincore session service detects the dead node
// and the manager promptly moves its virtual IPs to healthy members,
// refreshing the subnet's ARP caches with gratuitous ARP. MAC addresses
// never move — only the IP-to-MAC bindings change.
package vip

import (
	"sync"
	"time"
)

// MAC is a hardware address (never moves between nodes, §3.1).
type MAC string

// IP is a virtual IP address from the managed pool.
type IP string

// ARPEvent records one gratuitous ARP on the subnet, for diagnostics and
// fail-over measurements.
type ARPEvent struct {
	IP   IP
	MAC  MAC
	Time time.Time
}

// Subnet simulates the L2 segment the cluster and its neighbors share: an
// ARP cache mapping virtual IPs to MACs, refreshed by gratuitous ARP
// exactly as the paper describes. Neighboring routers and clients resolve
// a virtual IP through Lookup; traffic for an unmapped or stale IP is lost
// until the next gratuitous ARP.
type Subnet struct {
	mu   sync.Mutex
	arp  map[IP]MAC
	log  []ARPEvent
	down map[MAC]bool
}

// NewSubnet returns an empty subnet.
func NewSubnet() *Subnet {
	return &Subnet{arp: make(map[IP]MAC)}
}

// GratuitousARP rebinds ip to mac on every neighbor's ARP cache. Frames
// from a MAC whose link is down never reach the segment and are dropped.
func (s *Subnet) GratuitousARP(ip IP, mac MAC) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down[mac] {
		return
	}
	s.arp[ip] = mac
	s.log = append(s.log, ARPEvent{IP: ip, MAC: mac, Time: time.Now()})
}

// SetLinkDown marks a member's link state. A failed or unplugged node may
// keep believing it owns virtual IPs, but its gratuitous ARP frames never
// reach the shared segment; the simulated subnet has to be told, because
// managers address it directly rather than through the simulated network.
func (s *Subnet) SetLinkDown(mac MAC, down bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.down == nil {
		s.down = make(map[MAC]bool)
	}
	s.down[mac] = down
}

// Lookup resolves a virtual IP to the MAC currently bound to it.
func (s *Subnet) Lookup(ip IP) (MAC, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	mac, ok := s.arp[ip]
	return mac, ok
}

// Bindings snapshots the ARP cache.
func (s *Subnet) Bindings() map[IP]MAC {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[IP]MAC, len(s.arp))
	for ip, mac := range s.arp {
		out[ip] = mac
	}
	return out
}

// Events returns the gratuitous-ARP history.
func (s *Subnet) Events() []ARPEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]ARPEvent(nil), s.log...)
}
