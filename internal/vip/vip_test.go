package vip

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dds"
	"repro/internal/wire"
)

// vipCluster is a full stack: session cluster + dds + vip managers + subnet.
type vipCluster struct {
	tc       *core.TestCluster
	subnet   *Subnet
	managers map[core.NodeID]*Manager
	pool     []IP
}

func macFor(id core.NodeID) MAC { return MAC(fmt.Sprintf("02:00:00:00:00:%02x", uint32(id))) }

func startVIP(t *testing.T, n, vips int) *vipCluster {
	t.Helper()
	tc, err := core.NewTestCluster(core.ClusterOptions{N: n, DeferStart: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tc.Close)
	vc := &vipCluster{tc: tc, subnet: NewSubnet(), managers: make(map[core.NodeID]*Manager)}
	for i := 0; i < vips; i++ {
		vc.pool = append(vc.pool, IP(fmt.Sprintf("10.0.0.%d", 100+i)))
	}
	for id, node := range tc.Nodes {
		svc := dds.New(node)
		mgr := NewManager(svc, vc.subnet, vc.pool, macFor)
		mgr.Start(core.Handlers{})
		vc.managers[id] = mgr
	}
	tc.StartAll()
	if err := tc.WaitAssembled(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return vc
}

// kill partitions a node from the cluster network and takes its link to
// the shared subnet down: a dead node's manager may keep believing it
// owns VIPs, but its gratuitous ARP frames no longer reach the segment.
func (vc *vipCluster) kill(id core.NodeID) {
	vc.tc.Net.SetNodeDown(core.Addr(id), true)
	vc.subnet.SetLinkDown(macFor(id), true)
}

// waitAllBound waits until every pool VIP resolves on the subnet to the
// MAC of a member in want.
func (vc *vipCluster) waitAllBound(t *testing.T, timeout time.Duration, want ...core.NodeID) {
	t.Helper()
	valid := map[MAC]bool{}
	for _, id := range want {
		valid[macFor(id)] = true
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, ip := range vc.pool {
			mac, bound := vc.subnet.Lookup(ip)
			if !bound || !valid[mac] {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	ev := vc.subnet.Events()
	if len(ev) > 30 {
		ev = ev[len(ev)-30:]
	}
	for _, e := range ev {
		t.Logf("arp %s -> %s at %s", e.IP, e.MAC, e.Time.Format("15:04:05.000"))
	}
	for id, mgr := range vc.managers {
		t.Logf("mgr n%v assignments=%v owned=%v", id, mgr.Assignments(), mgr.Owned())
	}
	t.Fatalf("VIPs not bound to %v within %v: %v", want, timeout, vc.subnet.Bindings())
}

// waitConsistentAssignments waits until every live manager's replica shows
// the final deterministic assignment: pool[i] owned by sorted(want)[i %
// len(want)], identical on all listed nodes. (The leader's rebalances are
// asynchronous, so intermediate tables from smaller views are expected.)
func (vc *vipCluster) waitConsistentAssignments(t *testing.T, timeout time.Duration, want ...core.NodeID) {
	t.Helper()
	sorted := wire.SortedIDs(want)
	expect := map[IP]core.NodeID{}
	pool := append([]IP(nil), vc.pool...)
	sortIPs(pool)
	for i, ip := range pool {
		expect[ip] = sorted[i%len(sorted)]
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for _, id := range want {
			got := vc.managers[id].Assignments()
			for ip, owner := range expect {
				if got[ip] != owner {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	for _, id := range want {
		t.Logf("node %v assignments: %v", id, vc.managers[id].Assignments())
	}
	t.Fatalf("assignments did not converge to %v within %v", expect, timeout)
}

func sortIPs(ips []IP) {
	for i := 1; i < len(ips); i++ {
		for j := i; j > 0 && ips[j] < ips[j-1]; j-- {
			ips[j], ips[j-1] = ips[j-1], ips[j]
		}
	}
}

func TestAllVIPsAssignedAndAdvertised(t *testing.T) {
	vc := startVIP(t, 3, 6)
	vc.waitConsistentAssignments(t, 10*time.Second, 1, 2, 3)
	vc.waitAllBound(t, 10*time.Second, 1, 2, 3)
	// Assignment is balanced: 6 VIPs over 3 nodes = 2 each.
	counts := map[core.NodeID]int{}
	for _, owner := range vc.managers[1].Assignments() {
		counts[owner]++
	}
	for id, c := range counts {
		if c != 2 {
			t.Fatalf("node %v owns %d VIPs, want 2 (%v)", id, c, vc.managers[1].Assignments())
		}
	}
}

func TestAssignmentsMutuallyExclusive(t *testing.T) {
	vc := startVIP(t, 3, 5)
	vc.waitAllBound(t, 10*time.Second, 1, 2, 3)
	// Each VIP has exactly one owner in the replicated table on every node.
	for _, id := range vc.tc.IDs {
		asn := vc.managers[id].Assignments()
		if len(asn) != 5 {
			t.Fatalf("node %v sees %d assignments, want 5", id, len(asn))
		}
	}
}

func TestFailoverMovesVIPs(t *testing.T) {
	vc := startVIP(t, 3, 6)
	vc.waitConsistentAssignments(t, 10*time.Second, 1, 2, 3)
	vc.waitAllBound(t, 10*time.Second, 1, 2, 3)
	// With 6 VIPs balanced over 3 nodes, the victim owns 2.
	before := 0
	for _, owner := range vc.managers[1].Assignments() {
		if owner == 3 {
			before++
		}
	}
	if before == 0 {
		t.Fatal("victim owns no VIPs; test cannot exercise failover")
	}
	vc.kill(3)
	// All VIPs must land on the survivors.
	vc.waitAllBound(t, 15*time.Second, 1, 2)
}

func TestVIPsNeverDisappear(t *testing.T) {
	// Kill nodes one at a time down to a single survivor: the paper's
	// promise is that the virtual IPs remain available as long as one
	// physical node is up (§3.1).
	vc := startVIP(t, 3, 4)
	vc.waitAllBound(t, 10*time.Second, 1, 2, 3)
	vc.kill(3)
	vc.waitAllBound(t, 15*time.Second, 1, 2)
	vc.kill(2)
	vc.waitAllBound(t, 15*time.Second, 1)
}

func TestLeaderFailover(t *testing.T) {
	// Killing the leader (lowest ID) hands reassignment to the next one.
	vc := startVIP(t, 3, 3)
	vc.waitAllBound(t, 10*time.Second, 1, 2, 3)
	vc.kill(1)
	vc.waitAllBound(t, 15*time.Second, 2, 3)
}

func TestMACsNeverMove(t *testing.T) {
	vc := startVIP(t, 2, 4)
	vc.waitAllBound(t, 10*time.Second, 1, 2)
	vc.kill(2)
	vc.waitAllBound(t, 15*time.Second, 1)
	// Every gratuitous ARP ever sent used a member's fixed MAC.
	valid := map[MAC]bool{macFor(1): true, macFor(2): true}
	for _, e := range vc.subnet.Events() {
		if !valid[e.MAC] {
			t.Fatalf("gratuitous ARP with unknown MAC %s", e.MAC)
		}
	}
}

func TestOwnedReflectsAssignment(t *testing.T) {
	vc := startVIP(t, 2, 4)
	vc.waitConsistentAssignments(t, 10*time.Second, 1, 2)
	total := 0
	for _, id := range vc.tc.IDs {
		total += len(vc.managers[id].Owned())
	}
	if total != 4 {
		t.Fatalf("sum of Owned() = %d, want 4", total)
	}
}

func TestSubnetBasics(t *testing.T) {
	s := NewSubnet()
	if _, ok := s.Lookup("10.0.0.1"); ok {
		t.Fatal("empty subnet resolved an IP")
	}
	s.GratuitousARP("10.0.0.1", "02:00:00:00:00:01")
	mac, ok := s.Lookup("10.0.0.1")
	if !ok || mac != "02:00:00:00:00:01" {
		t.Fatalf("lookup = %v %v", mac, ok)
	}
	s.GratuitousARP("10.0.0.1", "02:00:00:00:00:02")
	mac, _ = s.Lookup("10.0.0.1")
	if mac != "02:00:00:00:00:02" {
		t.Fatal("gratuitous ARP did not rebind")
	}
	if len(s.Events()) != 2 {
		t.Fatalf("events = %d, want 2", len(s.Events()))
	}
}
