package vip

import (
	"context"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dds"
	"repro/internal/wire"
)

// Manager runs on every cluster member. The assignment of virtual IPs to
// members is shared through the Raincore Distributed Data Service, the
// cluster master lock serializes reassignment (§3.1), and each member
// claims its assigned VIPs by sending gratuitous ARP on the subnet.
type Manager struct {
	svc    *dds.Service
	id     core.NodeID
	subnet *Subnet
	pool   []IP
	macOf  func(core.NodeID) MAC

	owned map[IP]bool
	memCh chan []core.NodeID
	done  chan struct{}
}

// keyFor names the replicated-map key of a virtual IP's assignment.
func keyFor(ip IP) string { return "vip/" + string(ip) }

// NewManager builds a manager over an attached data service. All members
// must configure the same pool. macOf maps a member to its (fixed) MAC.
func NewManager(svc *dds.Service, subnet *Subnet, pool []IP, macOf func(core.NodeID) MAC) *Manager {
	m := &Manager{
		svc:    svc,
		id:     svc.Node().ID(),
		subnet: subnet,
		pool:   append([]IP(nil), pool...),
		macOf:  macOf,
		owned:  make(map[IP]bool),
		memCh:  make(chan []core.NodeID, 64),
		done:   make(chan struct{}),
	}
	sort.Slice(m.pool, func(i, j int) bool { return m.pool[i] < m.pool[j] })
	return m
}

// Start subscribes the manager to cluster events. Call before the node
// starts, chained through the data service's app handlers.
func (m *Manager) Start(app core.Handlers) {
	inner := app
	m.svc.SetAppHandlers(core.Handlers{
		OnDeliver: inner.OnDeliver,
		OnSys:     inner.OnSys,
		OnMembership: func(e core.MembershipEvent) {
			select {
			case m.memCh <- e.Members:
			default:
			}
			if inner.OnMembership != nil {
				inner.OnMembership(e)
			}
		},
		OnShutdown: func(reason string) {
			m.Stop()
			if inner.OnShutdown != nil {
				inner.OnShutdown(reason)
			}
		},
	})
	// Claim assignments as they appear in the replicated map; the watch
	// callback runs in apply order on the node's event loop, so the
	// gratuitous ARP fires the moment the assignment is learned.
	m.svc.Watch(func(key string, val []byte, deleted bool) {
		ip, ok := ipFromKey(key)
		if !ok {
			return
		}
		owner := core.NodeID(0)
		if !deleted {
			owner = parseOwner(val)
		}
		if owner == m.id {
			// Gratuitous ARP is idempotent; advertise on every
			// assignment event so a stale subnet binding (for example
			// from a pre-merge singleton era) is always corrected.
			m.owned[ip] = true
			m.subnet.GratuitousARP(ip, m.macOf(m.id))
		} else {
			delete(m.owned, ip)
		}
	})
	go m.loop()
	go m.readvertise()
}

// readvertise periodically re-sends gratuitous ARP for owned VIPs, healing
// any subnet staleness caused by reordered advertisements, and — when this
// node is the leader — reconciles the assignment table. Reconciliation is
// needed because during a merge, the leaders of both pre-merge sub-groups
// each held their own group's master lock, so a stale leader's writes can
// be ordered after the new leader's; no further membership event would
// correct that, but this loop does.
func (m *Manager) readvertise() {
	ticker := time.NewTicker(200 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-ticker.C:
			for _, ip := range m.Owned() {
				m.subnet.GratuitousARP(ip, m.macOf(m.id))
			}
			m.reconcile()
		}
	}
}

// reconcile nudges the rebalancer when the leader observes a table that
// diverges from the desired assignment for the current membership.
func (m *Manager) reconcile() {
	members := m.svc.Node().Members()
	if len(members) == 0 {
		return
	}
	sorted := wire.SortedIDs(members)
	if sorted[0] != m.id {
		return
	}
	for i, ip := range m.pool {
		want := sorted[i%len(sorted)]
		cur, ok := m.svc.Get(keyFor(ip))
		if !ok || parseOwner(cur) != want {
			select {
			case m.memCh <- members:
			default:
			}
			return
		}
	}
}

// Stop halts the rebalancing loop.
func (m *Manager) Stop() {
	select {
	case <-m.done:
	default:
		close(m.done)
	}
}

// loop rebalances on membership changes. Only the group leader (lowest
// member ID) performs the reassignment, under the cluster master lock so
// no two nodes ever write conflicting assignments (§3.1).
func (m *Manager) loop() {
	for {
		select {
		case <-m.done:
			return
		case members := <-m.memCh:
			m.rebalance(members)
		}
	}
}

func (m *Manager) rebalance(members []core.NodeID) {
	if len(members) == 0 {
		return
	}
	sorted := wire.SortedIDs(members)
	if sorted[0] != m.id {
		return // not the leader
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	node := m.svc.Node()
	if err := node.Lock(ctx); err != nil {
		return // membership changed again or we are shutting down
	}
	defer node.Unlock()
	for i, ip := range m.pool {
		owner := sorted[i%len(sorted)]
		cur, ok := m.svc.Get(keyFor(ip))
		if ok && parseOwner(cur) == owner {
			continue // already correctly assigned
		}
		setCtx, setCancel := context.WithTimeout(context.Background(), 10*time.Second)
		err := m.svc.Set(setCtx, keyFor(ip), encodeOwner(owner))
		setCancel()
		if err != nil {
			return
		}
	}
}

// Owned lists the virtual IPs this member currently serves.
func (m *Manager) Owned() []IP {
	// The owned map is only mutated from the node's event loop (watch
	// callback); reads race benignly for diagnostics, but we serialize
	// through the replicated map for correctness.
	var out []IP
	for _, ip := range m.pool {
		if v, ok := m.svc.Get(keyFor(ip)); ok && parseOwner(v) == m.id {
			out = append(out, ip)
		}
	}
	return out
}

// Assignments snapshots the full VIP table from the local replica.
func (m *Manager) Assignments() map[IP]core.NodeID {
	out := make(map[IP]core.NodeID, len(m.pool))
	for _, ip := range m.pool {
		if v, ok := m.svc.Get(keyFor(ip)); ok {
			out[ip] = parseOwner(v)
		}
	}
	return out
}

// Pool returns the configured pool.
func (m *Manager) Pool() []IP { return append([]IP(nil), m.pool...) }

func ipFromKey(key string) (IP, bool) {
	if !strings.HasPrefix(key, "vip/") {
		return "", false
	}
	return IP(strings.TrimPrefix(key, "vip/")), true
}

func encodeOwner(id core.NodeID) []byte {
	return []byte{byte(id), byte(id >> 8), byte(id >> 16), byte(id >> 24)}
}

func parseOwner(b []byte) core.NodeID {
	if len(b) < 4 {
		return 0
	}
	return core.NodeID(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
}
