package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Fake is a manually advanced Clock for deterministic tests. Time only
// moves when Advance or AdvanceTo is called; timers scheduled at or before
// the new time fire synchronously (their channels are buffered, so Advance
// never blocks on a receiver).
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	timers  timerHeap
	nextSeq uint64
}

// NewFake returns a fake clock starting at the given time. A zero start is
// replaced by an arbitrary fixed epoch so durations stay positive.
func NewFake(start time.Time) *Fake {
	if start.IsZero() {
		start = time.Date(2001, 4, 23, 0, 0, 0, 0, time.UTC) // IPPS 2001
	}
	return &Fake{now: start}
}

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Advance moves the clock forward by d, firing due timers in order.
func (f *Fake) Advance(d time.Duration) {
	f.AdvanceTo(f.Now().Add(d))
}

// AdvanceTo moves the clock to t (no-op if t is in the past), firing due
// timers in deadline order. Timers created by callbacks of already-fired
// timers are honored if they fall before t.
func (f *Fake) AdvanceTo(t time.Time) {
	for {
		f.mu.Lock()
		if len(f.timers) == 0 || f.timers[0].when.After(t) {
			if t.After(f.now) {
				f.now = t
			}
			f.mu.Unlock()
			return
		}
		ft := heap.Pop(&f.timers).(*fakeTimer)
		if ft.when.After(f.now) {
			f.now = ft.when
		}
		ft.pending = false
		f.mu.Unlock()
		if ft.fn != nil {
			ft.fn()
			continue
		}
		// Buffered channel: the send cannot block.
		ft.ch <- ft.when
	}
}

// PendingTimers reports how many timers are armed; useful in tests.
func (f *Fake) PendingTimers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.timers)
}

// NewTimer implements Clock.
func (f *Fake) NewTimer(d time.Duration) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	ft := &fakeTimer{
		clk:     f,
		ch:      make(chan time.Time, 1),
		when:    f.now.Add(d),
		pending: true,
		seq:     f.nextSeq,
	}
	f.nextSeq++
	heap.Push(&f.timers, ft)
	return ft
}

// After implements Clock.
func (f *Fake) After(d time.Duration) <-chan time.Time { return f.NewTimer(d).C() }

// AfterFunc implements Clock. The callback runs synchronously inside
// Advance/AdvanceTo when the deadline is reached.
func (f *Fake) AfterFunc(d time.Duration, fn func()) Timer {
	f.mu.Lock()
	defer f.mu.Unlock()
	ft := &fakeTimer{
		clk:     f,
		ch:      make(chan time.Time, 1),
		fn:      fn,
		when:    f.now.Add(d),
		pending: true,
		seq:     f.nextSeq,
	}
	f.nextSeq++
	heap.Push(&f.timers, ft)
	return ft
}

// Sleep implements Clock. With a fake clock Sleep blocks until some other
// goroutine advances time past the deadline.
func (f *Fake) Sleep(d time.Duration) { <-f.After(d) }

type fakeTimer struct {
	clk     *Fake
	ch      chan time.Time
	fn      func() // non-nil for AfterFunc timers
	when    time.Time
	pending bool
	seq     uint64 // FIFO tie-break for equal deadlines
	index   int
}

func (t *fakeTimer) C() <-chan time.Time { return t.ch }

func (t *fakeTimer) Stop() bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	if !t.pending {
		return false
	}
	t.pending = false
	heap.Remove(&t.clk.timers, t.index)
	return true
}

func (t *fakeTimer) Reset(d time.Duration) bool {
	t.clk.mu.Lock()
	defer t.clk.mu.Unlock()
	was := t.pending
	if t.pending {
		heap.Remove(&t.clk.timers, t.index)
	}
	// Drain a stale fire so a reset timer delivers only the new deadline.
	select {
	case <-t.ch:
	default:
	}
	t.when = t.clk.now.Add(d)
	t.pending = true
	heap.Push(&t.clk.timers, t)
	return was
}

type timerHeap []*fakeTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].when.Equal(h[j].when) {
		return h[i].seq < h[j].seq
	}
	return h[i].when.Before(h[j].when)
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*fakeTimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
