package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNow(t *testing.T) {
	c := NewReal()
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v, want between %v and %v", got, before, after)
	}
}

func TestRealTimerFires(t *testing.T) {
	c := NewReal()
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(2 * time.Second):
		t.Fatal("real timer did not fire")
	}
}

func TestRealAfter(t *testing.T) {
	select {
	case <-NewReal().After(time.Millisecond):
	case <-time.After(2 * time.Second):
		t.Fatal("After channel did not fire")
	}
}

func TestFakeAdvanceFiresInOrder(t *testing.T) {
	f := NewFake(time.Time{})
	var fired []int
	t1 := f.NewTimer(10 * time.Millisecond)
	t2 := f.NewTimer(5 * time.Millisecond)
	t3 := f.NewTimer(20 * time.Millisecond)

	f.Advance(15 * time.Millisecond)
	drain := func(tm Timer, id int) {
		select {
		case <-tm.C():
			fired = append(fired, id)
		default:
		}
	}
	drain(t2, 2)
	drain(t1, 1)
	drain(t3, 3)
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 1 {
		t.Fatalf("fired = %v, want [2 1]", fired)
	}
	f.Advance(10 * time.Millisecond)
	drain(t3, 3)
	if len(fired) != 3 || fired[2] != 3 {
		t.Fatalf("fired = %v, want trailing 3", fired)
	}
}

func TestFakeTimerStop(t *testing.T) {
	f := NewFake(time.Time{})
	tm := f.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer reported false")
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
	f.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
}

func TestFakeTimerReset(t *testing.T) {
	f := NewFake(time.Time{})
	tm := f.NewTimer(time.Second)
	if !tm.Reset(3 * time.Second) {
		t.Fatal("Reset on pending timer reported false")
	}
	f.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired before reset deadline")
	default:
	}
	f.Advance(2 * time.Second)
	select {
	case <-tm.C():
	default:
		t.Fatal("timer did not fire after reset deadline")
	}
}

func TestFakeResetAfterFireDrainsStaleTick(t *testing.T) {
	f := NewFake(time.Time{})
	tm := f.NewTimer(time.Millisecond)
	f.Advance(time.Millisecond)
	// Timer has fired; channel holds a stale tick. Reset must drain it.
	if tm.Reset(time.Hour) {
		t.Fatal("Reset after fire reported pending")
	}
	select {
	case <-tm.C():
		t.Fatal("stale tick survived Reset")
	default:
	}
	f.Advance(time.Hour)
	select {
	case <-tm.C():
	default:
		t.Fatal("timer did not fire after re-arm")
	}
}

func TestFakeAdvanceToPastIsNoop(t *testing.T) {
	f := NewFake(time.Time{})
	start := f.Now()
	f.AdvanceTo(start.Add(-time.Hour))
	if !f.Now().Equal(start) {
		t.Fatalf("AdvanceTo past moved clock: %v -> %v", start, f.Now())
	}
}

func TestFakeSleepWakesOnAdvance(t *testing.T) {
	f := NewFake(time.Time{})
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.Sleep(time.Second)
		close(done)
	}()
	// Let the sleeper arm its timer before advancing.
	for f.PendingTimers() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	f.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not wake on Advance")
	}
	wg.Wait()
}

func TestFakeEqualDeadlinesFIFO(t *testing.T) {
	f := NewFake(time.Time{})
	a := f.NewTimer(time.Second)
	b := f.NewTimer(time.Second)
	f.Advance(time.Second)
	// Both fired; FIFO order is observable through the heap pop order,
	// which filled a's channel first. Both channels must hold a tick.
	for i, tm := range []Timer{a, b} {
		select {
		case <-tm.C():
		default:
			t.Fatalf("timer %d did not fire", i)
		}
	}
}

func TestFakePendingTimers(t *testing.T) {
	f := NewFake(time.Time{})
	if n := f.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers = %d, want 0", n)
	}
	tm := f.NewTimer(time.Minute)
	if n := f.PendingTimers(); n != 1 {
		t.Fatalf("PendingTimers = %d, want 1", n)
	}
	tm.Stop()
	if n := f.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers after Stop = %d, want 0", n)
	}
}

func TestRealAfterFunc(t *testing.T) {
	done := make(chan struct{})
	NewReal().AfterFunc(time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("AfterFunc callback did not run")
	}
}

func TestFakeAfterFunc(t *testing.T) {
	f := NewFake(time.Time{})
	var ran bool
	f.AfterFunc(time.Second, func() { ran = true })
	f.Advance(500 * time.Millisecond)
	if ran {
		t.Fatal("callback ran early")
	}
	f.Advance(time.Second)
	if !ran {
		t.Fatal("callback did not run on Advance")
	}
}

func TestFakeAfterFuncStop(t *testing.T) {
	f := NewFake(time.Time{})
	var ran bool
	tm := f.AfterFunc(time.Second, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop reported not pending")
	}
	f.Advance(2 * time.Second)
	if ran {
		t.Fatal("stopped AfterFunc still ran")
	}
}
