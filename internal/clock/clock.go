// Package clock abstracts time so that protocol code can run against the
// real wall clock in production and against a controllable fake clock in
// deterministic tests and simulations.
package clock

import "time"

// Clock supplies the current time and timer construction. Implementations
// must be safe for concurrent use.
type Clock interface {
	// Now reports the current time.
	Now() time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// After returns a channel that receives the fire time after d.
	After(d time.Duration) <-chan time.Time
	// AfterFunc schedules f to run once after d, in its own goroutine
	// for the real clock and synchronously from Advance for fakes. The
	// returned Timer's Stop cancels the callback.
	AfterFunc(d time.Duration, f func()) Timer
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
}

// Timer is a single-shot timer, mirroring time.Timer but usable with both
// real and fake clocks.
type Timer interface {
	// C returns the channel on which the fire time is delivered.
	C() <-chan time.Time
	// Stop prevents the timer from firing. It reports whether the timer
	// was still pending.
	Stop() bool
	// Reset re-arms the timer to fire after d. It reports whether the
	// timer was still pending before the reset.
	Reset(d time.Duration) bool
}

// Real is a Clock backed by package time.
type Real struct{}

// NewReal returns the wall-clock implementation.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer { return realTimer{time.AfterFunc(d, f)} }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

type realTimer struct{ t *time.Timer }

func (r realTimer) C() <-chan time.Time        { return r.t.C }
func (r realTimer) Stop() bool                 { return r.t.Stop() }
func (r realTimer) Reset(d time.Duration) bool { return r.t.Reset(d) }
