package simnet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collect installs a receiver that appends payloads into a mutex-guarded
// slice and returns a reader.
func collect(e *Endpoint) func() []string {
	var mu sync.Mutex
	var got []string
	e.SetReceiver(func(_ Addr, p []byte) {
		mu.Lock()
		got = append(got, string(p))
		mu.Unlock()
	})
	return func() []string {
		mu.Lock()
		defer mu.Unlock()
		return append([]string(nil), got...)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timeout: " + msg)
}

func TestBasicDelivery(t *testing.T) {
	n := New(Options{})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	got := collect(b)
	if err := a.Send("b", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(got()) == 1 }, "packet not delivered")
	if got()[0] != "hi" {
		t.Fatalf("payload = %q", got()[0])
	}
}

func TestPayloadCopied(t *testing.T) {
	n := New(Options{})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	got := collect(b)
	buf := []byte("orig")
	if err := a.Send("b", buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // sender reuses its buffer immediately
	waitFor(t, func() bool { return len(got()) == 1 }, "packet not delivered")
	if got()[0] != "orig" {
		t.Fatalf("payload aliased sender buffer: %q", got()[0])
	}
}

func TestLatency(t *testing.T) {
	n := New(Options{Default: Profile{Latency: 30 * time.Millisecond}})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	var deliveredAt atomic.Int64
	b.SetReceiver(func(Addr, []byte) { deliveredAt.Store(time.Now().UnixNano()) })
	start := time.Now()
	a.Send("b", []byte("x"))
	waitFor(t, func() bool { return deliveredAt.Load() != 0 }, "no delivery")
	if lat := time.Duration(deliveredAt.Load() - start.UnixNano()); lat < 25*time.Millisecond {
		t.Fatalf("latency %v, want >= ~30ms", lat)
	}
}

func TestLossDropsRoughlyProportionally(t *testing.T) {
	n := New(Options{Default: Profile{Loss: 0.5}, Seed: 7})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	got := collect(b)
	const total = 2000
	for i := 0; i < total; i++ {
		a.Send("b", []byte{byte(i)})
	}
	time.Sleep(50 * time.Millisecond)
	delivered := len(got())
	if delivered < total/4 || delivered > 3*total/4 {
		t.Fatalf("delivered %d of %d with 50%% loss", delivered, total)
	}
	if n.Stats().Counter(MetricDropLoss).Load()+int64(delivered) != total {
		t.Fatalf("loss counter %d + delivered %d != %d",
			n.Stats().Counter(MetricDropLoss).Load(), delivered, total)
	}
}

func TestCutLinkAndRestore(t *testing.T) {
	n := New(Options{})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	got := collect(b)
	n.CutLink("a", "b")
	a.Send("b", []byte("lost"))
	time.Sleep(10 * time.Millisecond)
	if len(got()) != 0 {
		t.Fatal("packet crossed a cut link")
	}
	if n.Stats().Counter(MetricDropCut).Load() == 0 {
		t.Fatal("cut drop not counted")
	}
	n.RestoreLink("a", "b")
	a.Send("b", []byte("ok"))
	waitFor(t, func() bool { return len(got()) == 1 }, "restored link did not deliver")
}

func TestCutKillsInFlight(t *testing.T) {
	n := New(Options{Default: Profile{Latency: 50 * time.Millisecond}})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	got := collect(b)
	a.Send("b", []byte("x"))
	n.CutLink("a", "b") // cut while packet is in flight
	time.Sleep(100 * time.Millisecond)
	if len(got()) != 0 {
		t.Fatal("in-flight packet survived the cut")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New(Options{})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	c := n.MustEndpoint("c")
	gotB := collect(b)
	gotC := collect(c)
	n.Partition([]Addr{"a", "b"}, []Addr{"c"})
	a.Send("b", []byte("same-side"))
	a.Send("c", []byte("cross"))
	waitFor(t, func() bool { return len(gotB()) == 1 }, "same-side blocked")
	time.Sleep(10 * time.Millisecond)
	if len(gotC()) != 0 {
		t.Fatal("cross-partition packet delivered")
	}
	n.Heal()
	a.Send("c", []byte("healed"))
	waitFor(t, func() bool { return len(gotC()) == 1 }, "healed partition did not deliver")
}

func TestNodeDown(t *testing.T) {
	n := New(Options{})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	got := collect(b)
	n.SetNodeDown("b", true)
	a.Send("b", []byte("x"))
	time.Sleep(10 * time.Millisecond)
	if len(got()) != 0 {
		t.Fatal("down node received a packet")
	}
	n.SetNodeDown("b", false)
	a.Send("b", []byte("y"))
	waitFor(t, func() bool { return len(got()) == 1 }, "revived node did not receive")
	// A down sender cannot transmit either.
	n.SetNodeDown("a", true)
	a.Send("b", []byte("z"))
	time.Sleep(10 * time.Millisecond)
	if len(got()) != 1 {
		t.Fatal("down sender transmitted")
	}
}

func TestMTU(t *testing.T) {
	n := New(Options{Default: Profile{MTU: 10}})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	got := collect(b)
	a.Send("b", make([]byte, 11))
	a.Send("b", make([]byte, 10))
	waitFor(t, func() bool { return len(got()) == 1 }, "MTU-sized packet dropped")
	if n.Stats().Counter(MetricDropMTU).Load() != 1 {
		t.Fatal("oversized packet not counted")
	}
}

func TestPerLinkProfileOverride(t *testing.T) {
	n := New(Options{Default: Profile{}})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	got := collect(b)
	n.SetLinkProfile("a", "b", Profile{Loss: 1.0})
	a.Send("b", []byte("x"))
	time.Sleep(10 * time.Millisecond)
	if len(got()) != 0 {
		t.Fatal("override loss=1.0 still delivered")
	}
}

func TestDuplicateAddressRejected(t *testing.T) {
	n := New(Options{})
	defer n.Close()
	n.MustEndpoint("a")
	if _, err := n.Endpoint("a"); err == nil {
		t.Fatal("duplicate registration succeeded")
	}
}

func TestSendAfterEndpointClose(t *testing.T) {
	n := New(Options{})
	defer n.Close()
	a := n.MustEndpoint("a")
	n.MustEndpoint("b")
	a.Close()
	if err := a.Send("b", []byte("x")); err == nil {
		t.Fatal("send on closed endpoint succeeded")
	}
}

func TestNetworkCloseStopsTraffic(t *testing.T) {
	n := New(Options{})
	a := n.MustEndpoint("a")
	n.MustEndpoint("b")
	n.Close()
	if err := a.Send("b", []byte("x")); err == nil {
		t.Fatal("send on closed network succeeded")
	}
	if _, err := n.Endpoint("c"); err == nil {
		t.Fatal("register on closed network succeeded")
	}
}

func TestFIFOPerLink(t *testing.T) {
	n := New(Options{Default: Profile{Latency: time.Millisecond}})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	got := collect(b)
	const total = 200
	for i := 0; i < total; i++ {
		a.Send("b", []byte{byte(i)})
	}
	waitFor(t, func() bool { return len(got()) == total }, "not all delivered")
	for i, p := range got() {
		if p[0] != byte(i) {
			t.Fatalf("packet %d out of order: got %d", i, p[0])
		}
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 8 KB/s: a 1000-byte packet occupies the link for ~1s; three packets
	// must take >= ~2s to all arrive. Use small numbers to keep the test
	// fast: 800_000 bps -> 1000 B = 10ms serialization.
	n := New(Options{Default: Profile{BandwidthBps: 800_000}})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	var last atomic.Int64
	var count atomic.Int32
	b.SetReceiver(func(Addr, []byte) {
		last.Store(time.Now().UnixNano())
		count.Add(1)
	})
	start := time.Now()
	for i := 0; i < 3; i++ {
		a.Send("b", make([]byte, 1000))
	}
	waitFor(t, func() bool { return count.Load() == 3 }, "bandwidth-limited packets missing")
	elapsed := time.Duration(last.Load() - start.UnixNano())
	if elapsed < 25*time.Millisecond {
		t.Fatalf("3 x 10ms packets arrived in %v, want >= ~30ms", elapsed)
	}
}

func TestInboxOverflowCounted(t *testing.T) {
	n := New(Options{InboxDepth: 1})
	defer n.Close()
	a := n.MustEndpoint("a")
	b := n.MustEndpoint("b")
	// No receiver: dispatcher drains slowly only when handler installed;
	// with no handler installed the dispatcher still consumes, so stall it
	// with a blocking handler instead.
	block := make(chan struct{})
	var first sync.Once
	b.SetReceiver(func(Addr, []byte) {
		first.Do(func() { <-block })
	})
	for i := 0; i < 50; i++ {
		a.Send("b", []byte{1})
	}
	waitFor(t, func() bool {
		return n.Stats().Counter(MetricDropOverflow).Load() > 0
	}, "overflow never counted")
	close(block)
}

func TestDeterministicLossWithSeed(t *testing.T) {
	run := func() int64 {
		n := New(Options{Default: Profile{Loss: 0.3}, Seed: 42})
		defer n.Close()
		a := n.MustEndpoint("a")
		n.MustEndpoint("b")
		for i := 0; i < 500; i++ {
			a.Send("b", []byte{1})
		}
		time.Sleep(20 * time.Millisecond)
		return n.Stats().Counter(MetricDropLoss).Load()
	}
	if x, y := run(), run(); x != y {
		t.Fatalf("same seed produced different loss: %d vs %d", x, y)
	}
}
