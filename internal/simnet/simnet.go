// Package simnet is an in-memory packet network standing in for the
// switched Fast Ethernet testbed of the paper's evaluation. It offers the
// unreliable unicast datagram service the Raincore Transport Service
// requires (§2.1), with per-link latency, jitter, loss, bandwidth
// serialization, link cuts and group partitions, so failure scenarios
// (split brain, cable pulls, lossy links) run deterministically on a laptop.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/stats"
)

// Addr is a network address. One node may own several addresses to model
// the paper's redundant-link configuration (§2.1).
type Addr string

// Profile describes one direction of a link.
type Profile struct {
	// Latency is the base propagation delay; Jitter adds a uniform
	// random extra in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// Loss is the independent drop probability in [0, 1].
	Loss float64
	// BandwidthBps serializes packets: a packet of S bytes occupies the
	// link for S*8/BandwidthBps seconds. Zero means infinite.
	BandwidthBps int64
	// MTU drops packets larger than this many bytes. Zero means no limit.
	MTU int
}

// Options configure a Network.
type Options struct {
	// Default is the profile applied to links without an override.
	Default Profile
	// Seed makes loss and jitter deterministic.
	Seed int64
	// InboxDepth bounds each endpoint's receive queue; overflowing
	// packets are dropped (counted in Dropped). Zero means 4096.
	InboxDepth int
}

// Network is the simulated switch fabric.
type Network struct {
	mu        sync.Mutex
	endpoints map[Addr]*Endpoint
	overrides map[linkKey]Profile
	cut       map[linkKey]bool
	partition map[Addr]int // addr -> group index; absent means group 0
	partOn    bool
	down      map[Addr]bool
	lastBusy  map[linkKey]time.Time // bandwidth serialization horizon
	queues    map[linkKey]*linkQueue
	def       Profile
	rng       *rand.Rand
	inboxN    int
	reg       *stats.Registry
	done      chan struct{}
	closed    bool
}

type linkKey struct{ from, to Addr }

// linkQueue delivers packets of one directed link in FIFO order: a single
// goroutine sleeps until each packet's arrival time, so equal or close
// deadlines cannot be reordered by timer races.
type linkQueue struct {
	ch chan timedPacket
}

type timedPacket struct {
	arrival time.Time
	from    Addr
	to      Addr
	payload []byte
}

const linkQueueDepth = 1 << 14

func (n *Network) linkQueueLocked(key linkKey) *linkQueue {
	q, ok := n.queues[key]
	if !ok {
		q = &linkQueue{ch: make(chan timedPacket, linkQueueDepth)}
		n.queues[key] = q
		go n.runLink(q)
	}
	return q
}

func (n *Network) runLink(q *linkQueue) {
	for {
		select {
		case <-n.done:
			return
		case p := <-q.ch:
			if wait := time.Until(p.arrival); wait > 0 {
				select {
				case <-n.done:
					return
				case <-time.After(wait):
				}
			}
			n.deliver(p.from, p.to, p.payload)
		}
	}
}

// Metric names specific to the simulated network.
const (
	MetricDropLoss      = "simnet_drop_loss"
	MetricDropCut       = "simnet_drop_cut"
	MetricDropPartition = "simnet_drop_partition"
	MetricDropDown      = "simnet_drop_down"
	MetricDropOverflow  = "simnet_drop_overflow"
	MetricDropMTU       = "simnet_drop_mtu"
	MetricDelivered     = "simnet_delivered"
)

// New creates an empty network.
func New(opts Options) *Network {
	if opts.InboxDepth <= 0 {
		opts.InboxDepth = 4096
	}
	return &Network{
		endpoints: make(map[Addr]*Endpoint),
		overrides: make(map[linkKey]Profile),
		cut:       make(map[linkKey]bool),
		partition: make(map[Addr]int),
		down:      make(map[Addr]bool),
		lastBusy:  make(map[linkKey]time.Time),
		queues:    make(map[linkKey]*linkQueue),
		def:       opts.Default,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		inboxN:    opts.InboxDepth,
		reg:       stats.NewRegistry(),
		done:      make(chan struct{}),
	}
}

// Stats exposes the network's drop and delivery counters.
func (n *Network) Stats() *stats.Registry { return n.reg }

// Endpoint registers addr and returns its endpoint. Registering a
// duplicate address is an error.
func (n *Network) Endpoint(addr Addr) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("simnet: network closed")
	}
	if _, dup := n.endpoints[addr]; dup {
		return nil, fmt.Errorf("simnet: address %q already registered", addr)
	}
	e := &Endpoint{
		net:   n,
		addr:  addr,
		inbox: make(chan packet, n.inboxN),
		done:  make(chan struct{}),
	}
	n.endpoints[addr] = e
	go e.dispatch()
	return e, nil
}

// MustEndpoint is Endpoint for tests and examples where registration
// cannot fail.
func (n *Network) MustEndpoint(addr Addr) *Endpoint {
	e, err := n.Endpoint(addr)
	if err != nil {
		panic(err)
	}
	return e
}

// SetDefaultProfile replaces the default link profile.
func (n *Network) SetDefaultProfile(p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.def = p
}

// SetLinkProfile overrides the profile of the directed link from -> to.
func (n *Network) SetLinkProfile(from, to Addr, p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.overrides[linkKey{from, to}] = p
}

// CutLink severs both directions between a and b — the paper's unplugged
// cable (§3.2). In-flight packets are still dropped at delivery time.
func (n *Network) CutLink(a, b Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[linkKey{a, b}] = true
	n.cut[linkKey{b, a}] = true
}

// RestoreLink undoes CutLink.
func (n *Network) RestoreLink(a, b Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, linkKey{a, b})
	delete(n.cut, linkKey{b, a})
}

// Partition splits the network into the given groups; traffic across
// groups is dropped. Addresses not listed fall into group 0. This induces
// the split-brain scenario of §2.4.
func (n *Network) Partition(groups ...[]Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[Addr]int)
	for i, g := range groups {
		for _, a := range g {
			n.partition[a] = i
		}
	}
	n.partOn = true
}

// Heal removes the partition.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[Addr]int)
	n.partOn = false
}

// SetNodeDown silences an address entirely (crash model): it neither sends
// nor receives while down.
func (n *Network) SetNodeDown(a Addr, isDown bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if isDown {
		n.down[a] = true
	} else {
		delete(n.down, a)
	}
}

// Close shuts down all endpoints.
func (n *Network) Close() {
	n.mu.Lock()
	eps := make([]*Endpoint, 0, len(n.endpoints))
	for _, e := range n.endpoints {
		eps = append(eps, e)
	}
	alreadyClosed := n.closed
	n.closed = true
	n.mu.Unlock()
	if !alreadyClosed {
		close(n.done)
	}
	for _, e := range eps {
		e.Close()
	}
}

// blockedLocked reports whether a packet from -> to would be discarded by
// topology state (cut, partition, down). Caller holds n.mu.
func (n *Network) blockedLocked(from, to Addr) (string, bool) {
	if n.down[from] || n.down[to] {
		return MetricDropDown, true
	}
	if n.cut[linkKey{from, to}] {
		return MetricDropCut, true
	}
	if n.partOn && n.partition[from] != n.partition[to] {
		return MetricDropPartition, true
	}
	return "", false
}

// send is invoked by Endpoint.Send with the network lock NOT held.
func (n *Network) send(from, to Addr, payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return errors.New("simnet: network closed")
	}
	if reason, blocked := n.blockedLocked(from, to); blocked {
		n.reg.Counter(reason).Inc()
		n.mu.Unlock()
		return nil // unreliable medium: silent drop
	}
	key := linkKey{from, to}
	prof, ok := n.overrides[key]
	if !ok {
		prof = n.def
	}
	if prof.MTU > 0 && len(payload) > prof.MTU {
		n.reg.Counter(MetricDropMTU).Inc()
		n.mu.Unlock()
		return nil
	}
	if prof.Loss > 0 && n.rng.Float64() < prof.Loss {
		n.reg.Counter(MetricDropLoss).Inc()
		n.mu.Unlock()
		return nil
	}
	delay := prof.Latency
	if prof.Jitter > 0 {
		delay += time.Duration(n.rng.Int63n(int64(prof.Jitter)))
	}
	now := time.Now()
	arrival := now.Add(delay)
	if prof.BandwidthBps > 0 {
		busy := time.Duration(float64(len(payload)*8) / float64(prof.BandwidthBps) * float64(time.Second))
		horizon := n.lastBusy[key]
		if horizon.Before(now) {
			horizon = now
		}
		horizon = horizon.Add(busy)
		n.lastBusy[key] = horizon
		if a := horizon.Add(delay); a.After(arrival) {
			arrival = a
		}
	}
	// Copy the payload: the caller may reuse its buffer.
	data := append([]byte(nil), payload...)
	q := n.linkQueueLocked(key)
	n.mu.Unlock()

	select {
	case q.ch <- timedPacket{arrival: arrival, from: from, to: to, payload: data}:
	default:
		n.reg.Counter(MetricDropOverflow).Inc()
	}
	return nil
}

func (n *Network) deliver(from, to Addr, payload []byte) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	// Topology is re-checked at delivery so a cable cut also kills
	// packets already in flight.
	if reason, blocked := n.blockedLocked(from, to); blocked {
		n.reg.Counter(reason).Inc()
		n.mu.Unlock()
		return
	}
	e, ok := n.endpoints[to]
	n.mu.Unlock()
	if !ok {
		return
	}
	select {
	case e.inbox <- packet{from: from, payload: payload}:
		n.reg.Counter(MetricDelivered).Inc()
	default:
		n.reg.Counter(MetricDropOverflow).Inc()
	}
}

type packet struct {
	from    Addr
	payload []byte
}

// Endpoint is one registered address on the network. It satisfies the
// transport.PacketConn contract.
type Endpoint struct {
	net  *Network
	addr Addr

	mu      sync.Mutex
	handler func(from Addr, payload []byte)
	closed  bool

	inbox chan packet
	done  chan struct{}
}

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() Addr { return e.addr }

// LocalAddrs returns the endpoint's single address.
func (e *Endpoint) LocalAddrs() []Addr { return []Addr{e.addr} }

// Send transmits payload to the given address with best-effort semantics:
// a nil error means "accepted by the medium", not "delivered".
func (e *Endpoint) Send(to Addr, payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return errors.New("simnet: endpoint closed")
	}
	e.mu.Unlock()
	return e.net.send(e.addr, to, payload)
}

// SetReceiver installs the receive callback. Packets arriving before a
// receiver is installed are queued (up to the inbox depth).
func (e *Endpoint) SetReceiver(fn func(from Addr, payload []byte)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.handler = fn
}

// Close unregisters the endpoint and stops its dispatcher.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	close(e.done)
	e.net.mu.Lock()
	delete(e.net.endpoints, e.addr)
	e.net.mu.Unlock()
	return nil
}

// dispatch serializes handler invocations per endpoint, preserving per-link
// FIFO order for packets that survive the medium.
func (e *Endpoint) dispatch() {
	for {
		select {
		case <-e.done:
			return
		case p := <-e.inbox:
			e.mu.Lock()
			h := e.handler
			e.mu.Unlock()
			if h != nil {
				h(p.from, p.payload)
			}
		}
	}
}
