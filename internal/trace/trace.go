// Package trace is a lightweight structured event log for protocol
// diagnostics: a fixed-capacity ring buffer of timestamped events that
// the session runtime feeds and operators dump when something looks off.
// It deliberately avoids any I/O on the hot path.
package trace

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Kind classifies trace events.
type Kind uint8

// Event kinds recorded by the session runtime.
const (
	// KindTokenRecv is a token arrival.
	KindTokenRecv Kind = iota
	// KindTokenPass is a confirmed token handoff.
	KindTokenPass
	// KindTokenLostPeer is a failed pass (failure detection fired).
	KindTokenLostPeer
	// KindStateChange is a HUNGRY/EATING/STARVING/DOWN transition.
	KindStateChange
	// KindMembership is a membership view change.
	KindMembership
	// KindDeliver is an application delivery.
	KindDeliver
	// Kind911 is a 911 sent or received.
	Kind911
	// KindRegen is a token regeneration.
	KindRegen
	// KindMerge is a completed group merge.
	KindMerge
	// KindCustom is free-form.
	KindCustom
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindTokenRecv:
		return "token-recv"
	case KindTokenPass:
		return "token-pass"
	case KindTokenLostPeer:
		return "token-lost-peer"
	case KindStateChange:
		return "state"
	case KindMembership:
		return "membership"
	case KindDeliver:
		return "deliver"
	case Kind911:
		return "911"
	case KindRegen:
		return "regen"
	case KindMerge:
		return "merge"
	default:
		return "custom"
	}
}

// Event is one trace record.
type Event struct {
	At   time.Time
	Kind Kind
	Msg  string
}

// Log is a concurrency-safe fixed-capacity ring buffer of events. The zero
// value is unusable; call New.
type Log struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	total uint64
	// filter, when non-zero, drops kinds whose bit is cleared.
	filter uint32
}

// New returns a log holding up to capacity events (minimum 16).
func New(capacity int) *Log {
	if capacity < 16 {
		capacity = 16
	}
	return &Log{buf: make([]Event, 0, capacity)}
}

// SetFilter restricts recording to the given kinds; no kinds = record all.
func (l *Log) SetFilter(kinds ...Kind) {
	var f uint32
	for _, k := range kinds {
		f |= 1 << k
	}
	l.mu.Lock()
	l.filter = f
	l.mu.Unlock()
}

// Add records an event.
func (l *Log) Add(kind Kind, format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.filter != 0 && l.filter&(1<<kind) == 0 {
		return
	}
	ev := Event{At: time.Now(), Kind: kind, Msg: fmt.Sprintf(format, args...)}
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, ev)
	} else {
		l.buf[l.next] = ev
	}
	l.next = (l.next + 1) % cap(l.buf)
	l.total++
}

// Total reports how many events were ever recorded (including overwritten).
func (l *Log) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Events returns the retained events in chronological order.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) < cap(l.buf) {
		return append([]Event(nil), l.buf...)
	}
	out := make([]Event, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// Dump renders the retained events, newest last.
func (l *Log) Dump() string {
	var b strings.Builder
	for _, e := range l.Events() {
		fmt.Fprintf(&b, "%s %-16s %s\n", e.At.Format("15:04:05.000000"), e.Kind, e.Msg)
	}
	return b.String()
}

// CountKind reports how many retained events have the given kind.
func (l *Log) CountKind(kind Kind) int {
	n := 0
	for _, e := range l.Events() {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
