package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestAddAndEvents(t *testing.T) {
	l := New(16)
	l.Add(KindTokenRecv, "seq=%d", 1)
	l.Add(KindDeliver, "payload %q", "x")
	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Kind != KindTokenRecv || evs[0].Msg != "seq=1" {
		t.Fatalf("ev0 = %+v", evs[0])
	}
	if evs[1].Msg != `payload "x"` {
		t.Fatalf("ev1 = %+v", evs[1])
	}
}

func TestRingBufferWrapsChronologically(t *testing.T) {
	l := New(16)
	for i := 0; i < 40; i++ {
		l.Add(KindCustom, "%d", i)
	}
	evs := l.Events()
	if len(evs) != 16 {
		t.Fatalf("retained %d, want 16", len(evs))
	}
	if evs[0].Msg != "24" || evs[15].Msg != "39" {
		t.Fatalf("window = %s..%s, want 24..39", evs[0].Msg, evs[15].Msg)
	}
	if l.Total() != 40 {
		t.Fatalf("total = %d", l.Total())
	}
}

func TestFilter(t *testing.T) {
	l := New(16)
	l.SetFilter(KindRegen, KindMerge)
	l.Add(KindTokenRecv, "dropped")
	l.Add(KindRegen, "kept")
	l.Add(KindMerge, "kept too")
	if got := len(l.Events()); got != 2 {
		t.Fatalf("events = %d, want filtered 2", got)
	}
	// Clearing the filter records everything again.
	l.SetFilter()
	l.Add(KindTokenRecv, "now kept")
	if got := len(l.Events()); got != 3 {
		t.Fatalf("events = %d after filter clear", got)
	}
}

func TestDumpFormat(t *testing.T) {
	l := New(16)
	l.Add(KindMembership, "view [1 2 3]")
	out := l.Dump()
	if !strings.Contains(out, "membership") || !strings.Contains(out, "view [1 2 3]") {
		t.Fatalf("dump = %q", out)
	}
}

func TestCountKind(t *testing.T) {
	l := New(32)
	for i := 0; i < 5; i++ {
		l.Add(Kind911, "n")
	}
	l.Add(KindRegen, "r")
	if got := l.CountKind(Kind911); got != 5 {
		t.Fatalf("CountKind(911) = %d", got)
	}
	if got := l.CountKind(KindRegen); got != 1 {
		t.Fatalf("CountKind(regen) = %d", got)
	}
}

func TestMinimumCapacity(t *testing.T) {
	l := New(1)
	for i := 0; i < 20; i++ {
		l.Add(KindCustom, "%d", i)
	}
	if got := len(l.Events()); got != 16 {
		t.Fatalf("minimum capacity = %d, want 16", got)
	}
}

func TestConcurrentAdd(t *testing.T) {
	l := New(64)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Add(KindDeliver, "x")
			}
		}()
	}
	wg.Wait()
	if l.Total() != 800 {
		t.Fatalf("total = %d", l.Total())
	}
	if len(l.Events()) != 64 {
		t.Fatalf("retained = %d", len(l.Events()))
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{KindTokenRecv, KindTokenPass, KindTokenLostPeer, KindStateChange,
		KindMembership, KindDeliver, Kind911, KindRegen, KindMerge, KindCustom}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("kind %d string %q duplicate or empty", k, s)
		}
		seen[s] = true
	}
}
