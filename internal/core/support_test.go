package core

import (
	"time"

	"repro/internal/simnet"
	"repro/internal/transport"
)

// Shorthands keeping the integration tests readable.

type transportConn = transport.PacketConn

type transportAddr = transport.Addr

func transportSim(ep *simnet.Endpoint) transport.PacketConn { return transport.NewSimConn(ep) }

func transportCfg() transport.Config {
	cfg := transport.DefaultConfig()
	cfg.AckTimeout = 10 * time.Millisecond
	return cfg
}

func simnetOptions(loss float64, seed int64) simnet.Options {
	return simnet.Options{Default: simnet.Profile{Loss: loss}, Seed: seed}
}
