package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/clock"
	"repro/internal/ring"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Runtime is the sharded multi-ring runtime: it owns one shared transport
// (one set of PacketConns) and spawns and supervises S Node instances, one
// per ring, demultiplexed by the RingID every wire frame carries. Each ring
// circulates its own token and totally orders its own traffic, so the
// aggregate ordered-multicast throughput of the runtime scales with the
// number of rings while per-ring ordering is preserved — the keyspace
// partitioning layer (dds.Sharded) maps keys onto rings.
//
// The paper's hierarchy composition (§ hierarchy) stacks groups vertically;
// the runtime shards them horizontally over the same membership.
type Runtime struct {
	id    NodeID
	tr    *transport.Transport
	demux *transport.Demux
	nodes []*Node
	reg   *stats.Registry

	mu       sync.Mutex
	ringDown map[RingID]string // ring -> shutdown reason
	closed   bool
}

// RuntimeConfig assembles a sharded runtime.
type RuntimeConfig struct {
	// ID is the node identity, shared by every ring (required, non-zero).
	ID NodeID
	// Rings is the shard count S (>= 1). Ring IDs are 0..Rings-1.
	Rings int
	// Ring is the per-ring protocol template; ID and SeqBase are filled
	// in per instance.
	Ring ring.Config
	// Transport tunes the shared reliable unicast layer.
	Transport transport.Config
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Registry defaults to a private registry shared by the transport
	// and every ring, so runtime metrics aggregate across shards.
	Registry *stats.Registry
	// Trace, when non-nil, records protocol events of every ring.
	Trace *trace.Log
}

// ErrUnknownRing is returned for a ring index outside the runtime's shard
// count.
var ErrUnknownRing = errors.New("core: unknown ring")

// NewRuntime builds a runtime over the given conns. Nodes are created
// unstarted so callers can attach per-ring layers (for example dds
// replicas) before Start.
func NewRuntime(cfg RuntimeConfig, conns []transport.PacketConn) (*Runtime, error) {
	if cfg.ID == wire.NoNode {
		return nil, errors.New("core: RuntimeConfig.ID must be non-zero")
	}
	if cfg.Rings <= 0 {
		cfg.Rings = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.Registry == nil {
		cfg.Registry = stats.NewRegistry()
	}
	tr := transport.New(cfg.ID, conns, cfg.Clock, cfg.Registry, cfg.Transport)
	demux := transport.NewDemux(tr)
	r := &Runtime{
		id:       cfg.ID,
		tr:       tr,
		demux:    demux,
		reg:      cfg.Registry,
		ringDown: make(map[RingID]string),
	}
	for i := 0; i < cfg.Rings; i++ {
		rc := cfg.Ring
		if rc.SeqBase != 0 {
			// Distinct per-ring bases: each ring is an independent
			// (origin, seq) namespace, but distinct bases keep traces
			// unambiguous.
			rc.SeqBase += uint64(i) << 24
		}
		n, err := NewNodeOnDemux(Config{
			ID:        cfg.ID,
			RingID:    RingID(i),
			Ring:      rc,
			Transport: cfg.Transport,
			Clock:     cfg.Clock,
			Registry:  cfg.Registry,
			Trace:     cfg.Trace,
		}, demux)
		if err != nil {
			r.Close()
			return nil, fmt.Errorf("core: ring %d: %w", i, err)
		}
		ringID := RingID(i)
		n.setStopHook(func(reason string) {
			r.mu.Lock()
			r.ringDown[ringID] = reason
			r.mu.Unlock()
		})
		r.nodes = append(r.nodes, n)
	}
	return r, nil
}

// ID returns the runtime's node identity.
func (r *Runtime) ID() NodeID { return r.id }

// Rings returns the shard count S.
func (r *Runtime) Rings() int { return len(r.nodes) }

// Node returns the ring's protocol node, or nil for an out-of-range ring.
func (r *Runtime) Node(ring RingID) *Node {
	if int(ring) >= len(r.nodes) {
		return nil
	}
	return r.nodes[ring]
}

// Nodes returns the per-ring nodes in ring order.
func (r *Runtime) Nodes() []*Node { return append([]*Node(nil), r.nodes...) }

// Transport exposes the shared transport for peer registration.
func (r *Runtime) Transport() *transport.Transport { return r.tr }

// Demux exposes the ring demultiplexer.
func (r *Runtime) Demux() *transport.Demux { return r.demux }

// Stats returns the runtime's aggregate metric registry.
func (r *Runtime) Stats() *stats.Registry { return r.reg }

// SetPeer registers a peer's physical addresses on the shared transport;
// every ring reaches the peer through them.
func (r *Runtime) SetPeer(id NodeID, addrs []transport.Addr) { r.tr.SetPeer(id, addrs) }

// Start boots every ring.
func (r *Runtime) Start() {
	for _, n := range r.nodes {
		n.Start()
	}
}

// RingHealth is one ring's slice of the combined health view.
type RingHealth struct {
	Ring    RingID
	State   ring.NodeState
	Epoch   uint64
	Members []NodeID
	// Down carries the shutdown reason when the ring's node stopped
	// itself (quorum loss, critical resource failure, voluntary leave).
	Down   string
	Exited bool
}

// Health returns the combined per-ring membership and health view.
func (r *Runtime) Health() []RingHealth {
	r.mu.Lock()
	down := make(map[RingID]string, len(r.ringDown))
	for k, v := range r.ringDown {
		down[k] = v
	}
	r.mu.Unlock()
	out := make([]RingHealth, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = RingHealth{
			Ring:    RingID(i),
			State:   n.State(),
			Epoch:   n.Epoch(),
			Members: n.Members(),
			Down:    down[RingID(i)],
			Exited:  n.Stopped(),
		}
	}
	return out
}

// Healthy reports whether every ring is running.
func (r *Runtime) Healthy() bool {
	for _, h := range r.Health() {
		if h.Exited || h.Down != "" {
			return false
		}
	}
	return true
}

// Members returns the combined membership view: the set of nodes present
// in every ring's membership. A peer mid-failure is typically detected by
// some rings before others; the intersection is the conservative view a
// sharded service can rely on across all shards.
func (r *Runtime) Members() []NodeID {
	if len(r.nodes) == 0 {
		return nil
	}
	count := make(map[NodeID]int)
	for _, n := range r.nodes {
		for _, m := range n.Members() {
			count[m]++
		}
	}
	var out []NodeID
	for id, c := range count {
		if c == len(r.nodes) {
			out = append(out, id)
		}
	}
	return wire.SortedIDs(out)
}

// Multicast submits a payload on the given ring with agreed ordering.
func (r *Runtime) Multicast(ring RingID, payload []byte) error {
	n := r.Node(ring)
	if n == nil {
		return fmt.Errorf("%w: %v of %d", ErrUnknownRing, ring, len(r.nodes))
	}
	return n.Multicast(payload)
}

// Close stops every ring and then the shared transport.
func (r *Runtime) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.mu.Unlock()
	for _, n := range r.nodes {
		n.Close()
	}
	return r.tr.Close()
}
