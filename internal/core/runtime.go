package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/clock"
	"repro/internal/ring"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Runtime is the sharded multi-ring runtime: it owns one shared transport
// (one set of PacketConns) and spawns and supervises one Node per ring,
// demultiplexed by the RingID every wire frame carries. Each ring
// circulates its own token and totally orders its own traffic, so the
// aggregate ordered-multicast throughput of the runtime scales with the
// number of rings while per-ring ordering is preserved — the keyspace
// partitioning layer (dds.Sharded) maps keys onto rings.
//
// The ring set is elastic: the Runtime owns the epoch-versioned routing
// table (see routing.go) that names the active rings, and AddRing /
// RemoveRing grow and shrink it at runtime with an ordered keyspace
// handoff when a Resharder is attached.
//
// The paper's hierarchy composition (§ hierarchy) stacks groups vertically;
// the runtime shards them horizontally over the same membership.
type Runtime struct {
	id    NodeID
	tr    *transport.Transport
	demux *transport.Demux
	reg   *stats.Registry

	// Spawn template for dynamically added rings.
	clk          clock.Clock
	trc          *trace.Log
	ringTemplate ring.Config
	transportCfg transport.Config

	rejoin bool

	mu       sync.Mutex
	nodes    map[RingID]*Node // every spawned ring, including mid-handoff ones
	table    RoutingView      // the published routing epoch
	ringDown map[RingID]string
	closed   bool
	// spawnedHigh is the high-water mark of ring ids ever spawned, so a
	// re-grow never reuses a removed ring's id even after its node is
	// gone from the map (peers may still hold frames for it).
	spawnedHigh RingID

	// Elastic-resharding state (see routing.go).
	resharding bool
	resharder  Resharder
	spawnHooks []func(RingID, *Node)
	watchers   []func(RoutingView)
	tableCh    chan struct{}    // closed and replaced on every publish/abort
	abortErrs  map[uint64]error // target epoch -> abort cause
	// removalWatchers observe ordered membership removals per ring — the
	// primitive a layer uses to resolve a dead transaction or handoff
	// coordinator deterministically (the removal is a position in the
	// ring's stream).
	removalWatchers []func(RingID, NodeID)
}

// RuntimeConfig assembles a sharded runtime.
type RuntimeConfig struct {
	// ID is the node identity, shared by every ring (required, non-zero).
	ID NodeID
	// Rings is the initial shard count S (>= 1). Ring IDs are 0..Rings-1;
	// AddRing and RemoveRing change the set at runtime.
	Rings int
	// RingIDs, when non-empty, names the exact initial ring set and
	// overrides Rings — a node restarting from a persisted routing
	// snapshot spawns the ring ids it hosted at crash time (which, after
	// grows and shrinks, need not be 0..S-1).
	RingIDs []RingID
	// RoutingEpoch, when non-zero, seeds the published routing epoch
	// (default 1); restored alongside RingIDs.
	RoutingEpoch uint64
	// Rejoin boots every initial ring through the 911 join path instead
	// of singleton formation: set by a node restarting from durable
	// state, so it is admitted by the surviving group (with a delta
	// state transfer) rather than merging into it (a full resync).
	// Rings grown later always form normally.
	Rejoin bool
	// Ring is the per-ring protocol template; ID and SeqBase are filled
	// in per instance.
	Ring ring.Config
	// Transport tunes the shared reliable unicast layer.
	Transport transport.Config
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Registry defaults to a private registry shared by the transport
	// and every ring, so runtime metrics aggregate across shards.
	Registry *stats.Registry
	// Trace, when non-nil, records protocol events of every ring.
	Trace *trace.Log
}

// ErrUnknownRing is returned for a ring index outside the runtime's shard
// count.
var ErrUnknownRing = errors.New("core: unknown ring")

// NewShardedRuntime builds a runtime over the given conns. Nodes are
// created unstarted so callers can attach per-ring layers (for example
// dds replicas) before Start.
func NewShardedRuntime(cfg RuntimeConfig, conns []transport.PacketConn) (*Runtime, error) {
	if cfg.ID == wire.NoNode {
		return nil, errors.New("core: RuntimeConfig.ID must be non-zero")
	}
	if cfg.Rings <= 0 {
		cfg.Rings = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.Registry == nil {
		cfg.Registry = stats.NewRegistry()
	}
	tr := transport.New(cfg.ID, conns, cfg.Clock, cfg.Registry, cfg.Transport)
	demux := transport.NewDemux(tr)
	r := &Runtime{
		id:           cfg.ID,
		tr:           tr,
		demux:        demux,
		reg:          cfg.Registry,
		clk:          cfg.Clock,
		trc:          cfg.Trace,
		ringTemplate: cfg.Ring,
		transportCfg: cfg.Transport,
		rejoin:       cfg.Rejoin,
		nodes:        make(map[RingID]*Node),
		ringDown:     make(map[RingID]string),
		tableCh:      make(chan struct{}),
		abortErrs:    make(map[uint64]error),
	}
	ringIDs := cfg.RingIDs
	if len(ringIDs) == 0 {
		for i := 0; i < cfg.Rings; i++ {
			ringIDs = append(ringIDs, RingID(i))
		}
	} else {
		ringIDs = append([]RingID(nil), ringIDs...)
		sort.Slice(ringIDs, func(i, j int) bool { return ringIDs[i] < ringIDs[j] })
	}
	var rings []RingID
	for _, id := range ringIDs {
		if _, err := r.spawnNode(id); err != nil {
			r.Close()
			return nil, err
		}
		rings = append(rings, id)
	}
	epoch := cfg.RoutingEpoch
	if epoch == 0 {
		epoch = 1
	}
	r.table = RoutingView{Epoch: epoch, Rings: rings}
	return r, nil
}

// spawnNode builds one ring's node on the shared demux and records it.
// The node is returned unstarted.
func (r *Runtime) spawnNode(id RingID) (*Node, error) {
	rc := r.ringTemplate
	if rc.SeqBase != 0 {
		// Distinct per-ring bases: each ring is an independent
		// (origin, seq) namespace, but distinct bases keep traces
		// unambiguous.
		rc.SeqBase += uint64(id) << 24
	}
	n, err := NewNodeOnDemux(Config{
		ID:        r.id,
		RingID:    id,
		Ring:      rc,
		Transport: r.transportCfg,
		Clock:     r.clk,
		Registry:  r.reg,
		Trace:     r.trc,
	}, r.demux)
	if err != nil {
		return nil, fmt.Errorf("core: ring %v: %w", id, err)
	}
	ringID := id
	n.setStopHook(func(reason string) {
		r.mu.Lock()
		r.ringDown[ringID] = reason
		r.mu.Unlock()
	})
	n.setSysTee(func(e SysEvent) {
		if e.Kind != wire.SysNodeRemoved {
			return
		}
		r.mu.Lock()
		watchers := make([]func(RingID, NodeID), len(r.removalWatchers))
		copy(watchers, r.removalWatchers)
		r.mu.Unlock()
		for _, fn := range watchers {
			fn(ringID, e.Subject)
		}
	})
	r.mu.Lock()
	r.nodes[id] = n
	if id >= r.spawnedHigh {
		r.spawnedHigh = id + 1
	}
	r.mu.Unlock()
	return n, nil
}

// dropNode closes a spawned ring's node and forgets it (abort paths).
// A ring present in the published routing table is never dropped: the
// check is atomic with the table, closing the race where a handoff's
// flip commits just as an abort path gives up on it.
func (r *Runtime) dropNode(id RingID) {
	r.mu.Lock()
	if r.table.Has(id) {
		r.mu.Unlock()
		return
	}
	n := r.nodes[id]
	delete(r.nodes, id)
	delete(r.ringDown, id)
	r.mu.Unlock()
	if n != nil {
		n.Close()
	}
}

// ID returns the runtime's node identity.
func (r *Runtime) ID() NodeID { return r.id }

// Rings returns the active shard count S (rings in the routing table).
func (r *Runtime) Rings() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.table.Rings)
}

// Node returns the ring's protocol node, or nil for an unknown ring.
func (r *Runtime) Node(ring RingID) *Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nodes[ring]
}

// Nodes returns the per-ring nodes in ascending ring order, including a
// ring still mid-handoff.
func (r *Runtime) Nodes() []*Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nodesLocked()
}

func (r *Runtime) nodesLocked() []*Node {
	ids := make([]RingID, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]*Node, 0, len(ids))
	for _, id := range ids {
		out = append(out, r.nodes[id])
	}
	return out
}

// OnMemberRemoved registers an observer of ordered membership removals:
// fn runs at the removal's position in the given ring's stream, before
// the application's OnSys handler. A ring typically detects a dead peer
// at its own pace, so fn fires once per (ring, peer) — consumers that
// need a combined view (for example a transaction coordinator resolving a
// dead participant) key off the first observation. Observers must not
// block: they run on the ring's event loop.
func (r *Runtime) OnMemberRemoved(fn func(RingID, NodeID)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.removalWatchers = append(r.removalWatchers, fn)
}

// Transport exposes the shared transport for peer registration.
func (r *Runtime) Transport() *transport.Transport { return r.tr }

// Demux exposes the ring demultiplexer.
func (r *Runtime) Demux() *transport.Demux { return r.demux }

// Stats returns the runtime's aggregate metric registry.
func (r *Runtime) Stats() *stats.Registry { return r.reg }

// SetPeer registers a peer's physical addresses on the shared transport;
// every ring reaches the peer through them.
func (r *Runtime) SetPeer(id NodeID, addrs []transport.Addr) { r.tr.SetPeer(id, addrs) }

// Start boots every ring — through the rejoin path when the runtime was
// assembled from persisted state (RuntimeConfig.Rejoin).
func (r *Runtime) Start() {
	for _, n := range r.Nodes() {
		if r.rejoin {
			n.StartJoining()
		} else {
			n.Start()
		}
	}
}

// RingHealth is one ring's slice of the combined health view.
type RingHealth struct {
	Ring    RingID
	State   ring.NodeState
	Epoch   uint64
	Members []NodeID
	// Down carries the shutdown reason when the ring's node stopped
	// itself (quorum loss, critical resource failure, voluntary leave).
	Down   string
	Exited bool
}

// RuntimeHealth is the combined health view: per-ring membership and
// liveness, the routing epoch, and the demux drop counters that make a
// peer on a different routing epoch visible.
type RuntimeHealth struct {
	// Routing is the published routing table.
	Routing RoutingView
	// Resharding reports an epoch handoff in progress on this node.
	Resharding bool
	// Rings holds one entry per spawned ring, ascending ring order.
	Rings []RingHealth
	// DemuxDrops is the total count of frames dropped for rings this
	// node hosts no receiver for; DropsByRing splits it per ring.
	DemuxDrops  int64
	DropsByRing map[RingID]int64
}

// Health returns the combined per-ring membership and health view.
func (r *Runtime) Health() []RingHealth {
	r.mu.Lock()
	down := make(map[RingID]string, len(r.ringDown))
	for k, v := range r.ringDown {
		down[k] = v
	}
	nodes := r.nodesLocked()
	r.mu.Unlock()
	out := make([]RingHealth, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, RingHealth{
			Ring:    n.Ring(),
			State:   n.State(),
			Epoch:   n.Epoch(),
			Members: n.Members(),
			Down:    down[n.Ring()],
			Exited:  n.Stopped(),
		})
	}
	return out
}

// HealthView returns the full runtime health: ring health plus the routing
// epoch and the unknown-ring frame drops. Frames for a ring this node does
// not host are dropped by the demux; surfacing the counters here makes a
// mis-epoch'd peer operable instead of invisible.
func (r *Runtime) HealthView() RuntimeHealth {
	rings := r.Health()
	r.mu.Lock()
	view := r.table.clone()
	resharding := r.resharding
	r.mu.Unlock()
	drops := r.demux.Drops()
	var total int64
	for _, n := range drops {
		total += n
	}
	return RuntimeHealth{
		Routing:     view,
		Resharding:  resharding,
		Rings:       rings,
		DemuxDrops:  total,
		DropsByRing: drops,
	}
}

// Healthy reports whether every ring is running.
func (r *Runtime) Healthy() bool {
	for _, h := range r.Health() {
		if h.Exited || h.Down != "" {
			return false
		}
	}
	return true
}

// Members returns the combined membership view: the set of nodes present
// in every active ring's membership. A peer mid-failure is typically
// detected by some rings before others; the intersection is the
// conservative view a sharded service can rely on across all shards. A
// ring still assembling mid-handoff is excluded until it joins the table.
func (r *Runtime) Members() []NodeID {
	r.mu.Lock()
	var nodes []*Node
	for _, id := range r.table.Rings {
		if n := r.nodes[id]; n != nil {
			nodes = append(nodes, n)
		}
	}
	r.mu.Unlock()
	if len(nodes) == 0 {
		return nil
	}
	count := make(map[NodeID]int)
	for _, n := range nodes {
		for _, m := range n.Members() {
			count[m]++
		}
	}
	var out []NodeID
	for id, c := range count {
		if c == len(nodes) {
			out = append(out, id)
		}
	}
	return wire.SortedIDs(out)
}

// Multicast submits a payload on the given ring with agreed ordering.
func (r *Runtime) Multicast(ring RingID, payload []byte) error {
	n := r.Node(ring)
	if n == nil {
		return fmt.Errorf("%w: %v", ErrUnknownRing, ring)
	}
	return n.Multicast(payload)
}

// Close stops every ring and then the shared transport.
func (r *Runtime) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	nodes := r.nodesLocked()
	r.mu.Unlock()
	for _, n := range nodes {
		n.Close()
	}
	return r.tr.Close()
}
