package core

import (
	"fmt"
	"time"

	"repro/internal/ring"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestCluster assembles a full Raincore cluster over a simulated network.
// It is exported (rather than living in a _test file) because the
// benchmark harness, the Rainwall simulator and the examples all build on
// it; it is not part of the stable public API.
type TestCluster struct {
	Net   *simnet.Network
	Nodes map[NodeID]*Node
	IDs   []NodeID
}

// ClusterOptions tune NewTestCluster.
type ClusterOptions struct {
	// N is the number of nodes (IDs 1..N).
	N int
	// Ring overrides the protocol timers; ID and Eligible are filled in.
	Ring ring.Config
	// Transport overrides the transport config.
	Transport transport.Config
	// Net overrides the simulated network profile.
	Net simnet.Options
	// Handlers, when non-nil, is invoked per node before Start so tests
	// can subscribe to deliveries.
	Handlers func(id NodeID) Handlers
	// DeferStart leaves the nodes unstarted; callers attach layers (for
	// example dds replicas) and then call StartAll. Layers must observe
	// the ordered stream from the very first event.
	DeferStart bool
}

// FastRing is a protocol config with tight timers for simulation: the
// token circulates every few milliseconds, failure detection converges in
// tens of milliseconds.
func FastRing() ring.Config {
	return ring.Config{
		TokenHold:        2 * time.Millisecond,
		HungryTimeout:    40 * time.Millisecond,
		StarvingRetry:    30 * time.Millisecond,
		BodyodorInterval: 20 * time.Millisecond,
	}
}

// PaperRing approximates the deployment regime implied by the paper's
// fail-over numbers (§3.2): sub-two-second recovery.
func PaperRing() ring.Config {
	return ring.Config{
		TokenHold:        100 * time.Millisecond,
		HungryTimeout:    500 * time.Millisecond,
		StarvingRetry:    400 * time.Millisecond,
		BodyodorInterval: time.Second,
	}
}

// Addr returns the simnet address of a node.
func Addr(id NodeID) simnet.Addr { return simnet.Addr(fmt.Sprintf("node-%d", id)) }

// NewTestCluster builds and starts an N-node cluster. All nodes are
// mutually eligible, so they assemble into one group via discovery.
func NewTestCluster(opts ClusterOptions) (*TestCluster, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("core: cluster size %d", opts.N)
	}
	if opts.Ring.TokenHold == 0 {
		opts.Ring = FastRing()
	}
	if opts.Transport.Attempts == 0 {
		opts.Transport = transport.DefaultConfig()
		opts.Transport.AckTimeout = 10 * time.Millisecond
	}
	net := simnet.New(opts.Net)
	tc := &TestCluster{Net: net, Nodes: make(map[NodeID]*Node)}
	var ids []NodeID
	for i := 1; i <= opts.N; i++ {
		ids = append(ids, NodeID(i))
	}
	tc.IDs = ids
	for _, id := range ids {
		ep, err := net.Endpoint(Addr(id))
		if err != nil {
			net.Close()
			return nil, err
		}
		rc := opts.Ring
		rc.Eligible = ids
		rc.SeqBase = uint64(id) << 32 // deterministic distinct bases
		n, err := NewNode(Config{ID: id, Ring: rc, Transport: opts.Transport},
			[]transport.PacketConn{transport.NewSimConn(ep)})
		if err != nil {
			net.Close()
			return nil, err
		}
		tc.Nodes[id] = n
	}
	for _, id := range ids {
		for _, other := range ids {
			if other != id {
				tc.Nodes[id].SetPeer(other, []transport.Addr{transport.Addr(Addr(other))})
			}
		}
	}
	for _, id := range ids {
		if opts.Handlers != nil {
			tc.Nodes[id].SetHandlers(opts.Handlers(id))
		}
	}
	if !opts.DeferStart {
		tc.StartAll()
	}
	return tc, nil
}

// StartAll boots every node; used with DeferStart.
func (tc *TestCluster) StartAll() {
	for _, id := range tc.IDs {
		tc.Nodes[id].Start()
	}
}

// WaitAssembled blocks until every node's view equals the full ID set, or
// the timeout elapses.
func (tc *TestCluster) WaitAssembled(timeout time.Duration) error {
	return tc.WaitMembership(timeout, tc.IDs...)
}

// WaitMembership blocks until every listed node's view is exactly the
// listed set.
func (tc *TestCluster) WaitMembership(timeout time.Duration, want ...NodeID) error {
	deadline := time.Now().Add(timeout)
	wantSorted := fmt.Sprint(wire.SortedIDs(want))
	for time.Now().Before(deadline) {
		ok := true
		for _, id := range want {
			if fmt.Sprint(wire.SortedIDs(tc.Nodes[id].Members())) != wantSorted {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	var views []string
	for _, id := range want {
		views = append(views, fmt.Sprintf("%v:%v", id, wire.SortedIDs(tc.Nodes[id].Members())))
	}
	return fmt.Errorf("core: membership did not converge to %s within %v (%v)", wantSorted, timeout, views)
}

// Close stops all nodes and the network.
func (tc *TestCluster) Close() {
	for _, n := range tc.Nodes {
		n.Close()
	}
	tc.Net.Close()
}

// TestGrid assembles a sharded multi-ring cluster over a simulated
// network: N runtimes (one per node), each hosting S rings over one shared
// transport. The benchmark harness and the sharded-dds tests build on it.
type TestGrid struct {
	Net      *simnet.Network
	Runtimes map[NodeID]*Runtime
	IDs      []NodeID
	Shards   int
}

// GridOptions tune NewTestGrid.
type GridOptions struct {
	// N is the number of nodes (IDs 1..N).
	N int
	// Rings is the shard count S (default 1).
	Rings int
	// Ring overrides the protocol timers; ID and Eligible are filled in.
	Ring ring.Config
	// Transport overrides the transport config.
	Transport transport.Config
	// Net overrides the simulated network profile.
	Net simnet.Options
	// DeferStart leaves the runtimes unstarted; callers attach layers
	// (for example sharded dds replicas) and then call StartAll.
	DeferStart bool
}

// NewTestGrid builds and (unless deferred) starts an N-node, S-ring grid.
func NewTestGrid(opts GridOptions) (*TestGrid, error) {
	if opts.N <= 0 {
		return nil, fmt.Errorf("core: grid size %d", opts.N)
	}
	if opts.Rings <= 0 {
		opts.Rings = 1
	}
	if opts.Ring.TokenHold == 0 {
		opts.Ring = FastRing()
	}
	if opts.Transport.Attempts == 0 {
		opts.Transport = transport.DefaultConfig()
		opts.Transport.AckTimeout = 10 * time.Millisecond
	}
	net := simnet.New(opts.Net)
	g := &TestGrid{Net: net, Runtimes: make(map[NodeID]*Runtime), Shards: opts.Rings}
	var ids []NodeID
	for i := 1; i <= opts.N; i++ {
		ids = append(ids, NodeID(i))
	}
	g.IDs = ids
	for _, id := range ids {
		ep, err := net.Endpoint(Addr(id))
		if err != nil {
			g.Close()
			return nil, err
		}
		rc := opts.Ring
		rc.Eligible = ids
		rc.SeqBase = uint64(id) << 32 // deterministic distinct bases
		rt, err := NewShardedRuntime(RuntimeConfig{
			ID: id, Rings: opts.Rings, Ring: rc, Transport: opts.Transport,
		}, []transport.PacketConn{transport.NewSimConn(ep)})
		if err != nil {
			g.Close()
			return nil, err
		}
		g.Runtimes[id] = rt
	}
	for _, id := range ids {
		for _, other := range ids {
			if other != id {
				g.Runtimes[id].SetPeer(other, []transport.Addr{transport.Addr(Addr(other))})
			}
		}
	}
	if !opts.DeferStart {
		g.StartAll()
	}
	return g, nil
}

// StartAll boots every runtime; used with DeferStart.
func (g *TestGrid) StartAll() {
	for _, id := range g.IDs {
		g.Runtimes[id].Start()
	}
}

// WaitAssembled blocks until every ring of every runtime has converged to
// the full ID set, or the timeout elapses.
func (g *TestGrid) WaitAssembled(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	wantSorted := fmt.Sprint(wire.SortedIDs(g.IDs))
	for time.Now().Before(deadline) {
		ok := true
		for _, id := range g.IDs {
			if fmt.Sprint(g.Runtimes[id].Members()) != wantSorted {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	var views []string
	for _, id := range g.IDs {
		views = append(views, fmt.Sprintf("%v:%v", id, g.Runtimes[id].Members()))
	}
	return fmt.Errorf("core: grid did not converge to %s within %v (%v)", wantSorted, timeout, views)
}

// Close stops all runtimes and the network.
func (g *TestGrid) Close() {
	for _, rt := range g.Runtimes {
		rt.Close()
	}
	g.Net.Close()
}
