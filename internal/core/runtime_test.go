package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// gridRecorder collects deliveries per (node, ring).
type gridRecorder struct {
	mu  sync.Mutex
	got map[NodeID]map[RingID][]string
}

func newGridRecorder() *gridRecorder {
	return &gridRecorder{got: map[NodeID]map[RingID][]string{}}
}

func (r *gridRecorder) handlers(id NodeID, ring RingID) Handlers {
	return Handlers{OnDeliver: func(d Delivery) {
		r.mu.Lock()
		if r.got[id] == nil {
			r.got[id] = map[RingID][]string{}
		}
		r.got[id][ring] = append(r.got[id][ring], string(d.Payload))
		r.mu.Unlock()
	}}
}

func (r *gridRecorder) payloads(id NodeID, ring RingID) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.got[id][ring]...)
}

func (r *gridRecorder) waitPayload(t *testing.T, id NodeID, ring RingID, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, p := range r.payloads(id, ring) {
			if p == want {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("node %v ring %v never delivered %q (got %v)", id, ring, want, r.payloads(id, ring))
}

// startGrid builds an N-node S-ring grid with per-ring recorders attached.
func startGrid(t *testing.T, n, rings int, rec *gridRecorder) *TestGrid {
	t.Helper()
	g, err := NewTestGrid(GridOptions{N: n, Rings: rings, DeferStart: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	if rec != nil {
		for _, id := range g.IDs {
			for ring := 0; ring < rings; ring++ {
				g.Runtimes[id].Node(RingID(ring)).SetHandlers(rec.handlers(id, RingID(ring)))
			}
		}
	}
	g.StartAll()
	if err := g.WaitAssembled(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestRuntimeMultiRingAssembly checks that S rings over one shared
// transport all converge to the full membership and stay isolated: a
// multicast on one ring is delivered on that ring everywhere and on no
// other ring.
func TestRuntimeMultiRingAssembly(t *testing.T) {
	rec := newGridRecorder()
	g := startGrid(t, 3, 3, rec)
	if err := g.Runtimes[1].Multicast(1, []byte("on-ring-1")); err != nil {
		t.Fatal(err)
	}
	if err := g.Runtimes[2].Multicast(2, []byte("on-ring-2")); err != nil {
		t.Fatal(err)
	}
	for _, id := range g.IDs {
		rec.waitPayload(t, id, 1, "on-ring-1", 5*time.Second)
		rec.waitPayload(t, id, 2, "on-ring-2", 5*time.Second)
	}
	// Isolation: nothing leaked onto ring 0, and the ring-1 payload did
	// not appear on ring 2 or vice versa.
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, id := range g.IDs {
		if n := len(rec.got[id][0]); n != 0 {
			t.Errorf("node %v ring 0 delivered %d messages, want 0", id, n)
		}
		for _, p := range rec.got[id][1] {
			if p != "on-ring-1" {
				t.Errorf("node %v ring 1 delivered %q", id, p)
			}
		}
		for _, p := range rec.got[id][2] {
			if p != "on-ring-2" {
				t.Errorf("node %v ring 2 delivered %q", id, p)
			}
		}
	}
}

func TestRuntimeUnknownRing(t *testing.T) {
	g := startGrid(t, 2, 2, nil)
	rt := g.Runtimes[1]
	if err := rt.Multicast(5, []byte("x")); !errors.Is(err, ErrUnknownRing) {
		t.Fatalf("Multicast on ring 5 = %v, want ErrUnknownRing", err)
	}
	if rt.Node(5) != nil {
		t.Fatal("Node(5) != nil for a 2-ring runtime")
	}
	if rt.Rings() != 2 {
		t.Fatalf("Rings() = %d, want 2", rt.Rings())
	}
}

// TestRuntimeCombinedMembership checks the conservative combined view: a
// failed node disappears from Members() once every ring detected it.
func TestRuntimeCombinedMembership(t *testing.T) {
	g := startGrid(t, 3, 2, nil)
	got := g.Runtimes[1].Members()
	if len(got) != 3 {
		t.Fatalf("Members() = %v, want 3 nodes", got)
	}
	// Hard-kill node 3 (transport and all): both rings must converge.
	g.Runtimes[3].Close()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		m := g.Runtimes[1].Members()
		if len(m) == 2 && m[0] == 1 && m[1] == 2 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("combined view never converged: %v", g.Runtimes[1].Members())
}

// TestRuntimeSupervisionRingDown drives one ring's node through a
// voluntary leave and checks the runtime's health view reflects the dead
// ring while the others keep running.
func TestRuntimeSupervisionRingDown(t *testing.T) {
	g := startGrid(t, 2, 2, nil)
	rt := g.Runtimes[2]
	if !rt.Healthy() {
		t.Fatalf("runtime unhealthy after assembly: %+v", rt.Health())
	}
	rt.Node(1).Leave()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && rt.Healthy() {
		time.Sleep(time.Millisecond)
	}
	h := rt.Health()
	if len(h) != 2 {
		t.Fatalf("health entries = %d, want 2", len(h))
	}
	if !h[1].Exited || h[1].Down == "" {
		t.Fatalf("ring 1 health = %+v, want exited with reason", h[1])
	}
	if h[0].Exited {
		t.Fatalf("ring 0 exited too: %+v", h[0])
	}
	// Ring 0 still orders traffic.
	if err := rt.Multicast(0, []byte("still-alive")); err != nil {
		t.Fatal(err)
	}
}

// TestOpenClientSendRing covers open-group forwarding into a chosen ring,
// plus the ID-collision and unknown-ring error paths.
func TestOpenClientSendRing(t *testing.T) {
	rec := newGridRecorder()
	g := startGrid(t, 3, 2, rec)
	ep, err := g.Net.Endpoint("client-9")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewOpenClient(900, []transportConn{transportSim(ep)}, nil, stats.NewRegistry(), transportCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.SetRings(2); err != nil {
		t.Fatal(err)
	}
	if err := cl.SetMember(2, []transportAddr{transportAddr(Addr(2))}); err != nil {
		t.Fatal(err)
	}

	// Forward into ring 1 via member 2: all members deliver it on ring 1.
	if err := cl.SendRing(1, 2, []byte("outside-ring-1"), false); err != nil {
		t.Fatal(err)
	}
	for _, id := range g.IDs {
		rec.waitPayload(t, id, 1, "outside-ring-1", 5*time.Second)
	}
	rec.mu.Lock()
	for _, id := range g.IDs {
		if n := len(rec.got[id][0]); n != 0 {
			t.Errorf("node %v ring 0 delivered %d messages, want 0", id, n)
		}
	}
	rec.mu.Unlock()

	// Unknown ring: rejected locally, nothing sent.
	if err := cl.SendRing(7, 2, []byte("x"), false); !errors.Is(err, ErrUnknownRing) {
		t.Fatalf("SendRing(7) = %v, want ErrUnknownRing", err)
	}
	// ID collision: addressing a member with the client's own ID.
	if err := cl.SendRing(0, 900, []byte("x"), false); !errors.Is(err, ErrIDCollision) {
		t.Fatalf("SendRing(via=self) = %v, want ErrIDCollision", err)
	}
	if err := cl.SetMember(900, nil); !errors.Is(err, ErrIDCollision) {
		t.Fatalf("SetMember(self) = %v, want ErrIDCollision", err)
	}
	if err := cl.SetRings(0); err == nil {
		t.Fatal("SetRings(0) succeeded")
	}
}

// TestNodeIgnoresForeignRingFrames checks the defence in depth on a node
// without a demux: frames stamped with another ring are dropped even when
// they arrive on its exclusive transport.
func TestNodeIgnoresForeignRingFrames(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 2, rec)
	// Hand node 1 a forward stamped for ring 3; its protocol node is on
	// ring 0 and must ignore it.
	ep, err := tc.Net.Endpoint("intruder")
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.New(99, []transportConn{transportSim(ep)}, nil, stats.NewRegistry(), transportCfg())
	defer tr.Close()
	tr.SetPeer(1, []transportAddr{transportAddr(Addr(1))})
	f := wire.Forward{From: 99, Payload: []byte("foreign")}
	if err := tr.SendSync(1, wire.EncodeForwardRing(3, &f)); err != nil {
		t.Fatal(err)
	}
	if err := tr.SendSync(1, wire.EncodeForwardRing(0, &f)); err != nil {
		t.Fatal(err)
	}
	// The ring-0 forward is multicast and delivered; the ring-3 one is not.
	rec.waitPayload(t, 1, "foreign", 5*time.Second)
	rec.mu.Lock()
	defer rec.mu.Unlock()
	count := 0
	for _, d := range rec.byNode[1] {
		if string(d.Payload) == "foreign" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("delivered %d copies, want 1 (ring-3 frame must be dropped)", count)
	}
}

// TestOnMemberRemoved checks the runtime's ordered removal observation:
// when a peer dies, every ring reports its removal to the registered
// watchers at that ring's own ordered position — the primitive a layer
// uses to resolve a dead transaction or handoff coordinator.
func TestOnMemberRemoved(t *testing.T) {
	g, err := NewTestGrid(GridOptions{N: 3, Rings: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if err := g.WaitAssembled(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	removed := map[RingID][]NodeID{}
	g.Runtimes[1].OnMemberRemoved(func(ring RingID, id NodeID) {
		mu.Lock()
		removed[ring] = append(removed[ring], id)
		mu.Unlock()
	})
	g.Runtimes[3].Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		ok := len(removed[0]) > 0 && len(removed[1]) > 0
		mu.Unlock()
		if ok {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("removal never observed on both rings: %v", removed)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	for ring, ids := range removed {
		for _, id := range ids {
			if id != 3 {
				t.Fatalf("ring %v observed removal of %v, want only node 3", ring, id)
			}
		}
	}
}
