package core

import (
	"errors"
	"fmt"

	"repro/internal/clock"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// OpenClient implements open group communication (§2.6): a node outside
// the Raincore group sends a message to any member, and that member
// forwards it to the entire group with the usual atomicity and ordering
// guarantees. Against a sharded runtime the client targets one ring per
// message; Send targets ring 0, SendRing picks the ring explicitly.
type OpenClient struct {
	id    NodeID
	tr    *transport.Transport
	rings int
}

// ErrIDCollision is returned when the client's ID collides with the ID of
// the member it is addressing: the member's transport would misattribute
// the client's frames to itself.
var ErrIDCollision = errors.New("core: client ID collides with a member ID")

// NewOpenClient builds a client with its own transport. The client ID must
// be non-zero and must not collide with any member ID. The client assumes
// a single-ring cluster until SetRings raises the shard count.
func NewOpenClient(id NodeID, conns []transport.PacketConn, clk clock.Clock, reg *stats.Registry, cfg transport.Config) (*OpenClient, error) {
	if id == wire.NoNode {
		return nil, errors.New("core: client ID must be non-zero")
	}
	return &OpenClient{id: id, tr: transport.New(id, conns, clk, reg, cfg), rings: 1}, nil
}

// SetRings declares the cluster's shard count so SendRing can reject
// out-of-range rings locally (the receiving member would silently drop
// such a frame: its demux has no receiver for the ring).
func (c *OpenClient) SetRings(n int) error {
	if n < 1 {
		return fmt.Errorf("core: ring count %d, want >= 1", n)
	}
	c.rings = n
	return nil
}

// SetMember registers a member's addresses as a forwarding target.
func (c *OpenClient) SetMember(id NodeID, addrs []transport.Addr) error {
	if id == c.id {
		return fmt.Errorf("%w: %v", ErrIDCollision, id)
	}
	c.tr.SetPeer(id, addrs)
	return nil
}

// Send forwards payload into ring 0 through the given member. The call
// blocks until the member acknowledged receipt (not group-wide delivery).
func (c *OpenClient) Send(via NodeID, payload []byte, safe bool) error {
	return c.SendRing(wire.Ring0, via, payload, safe)
}

// SendRing forwards payload into the chosen ring of a sharded cluster
// through the given member.
func (c *OpenClient) SendRing(ring RingID, via NodeID, payload []byte, safe bool) error {
	if int(ring) >= c.rings {
		return fmt.Errorf("%w: %v of %d", ErrUnknownRing, ring, c.rings)
	}
	if via == c.id {
		return fmt.Errorf("%w: %v", ErrIDCollision, via)
	}
	f := wire.Forward{From: c.id, Safe: safe, Payload: payload}
	return c.tr.SendSync(via, wire.EncodeForwardRing(ring, &f))
}

// Close releases the client's transport.
func (c *OpenClient) Close() error { return c.tr.Close() }
