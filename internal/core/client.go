package core

import (
	"errors"

	"repro/internal/clock"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// OpenClient implements open group communication (§2.6): a node outside
// the Raincore group sends a message to any member, and that member
// forwards it to the entire group with the usual atomicity and ordering
// guarantees.
type OpenClient struct {
	id NodeID
	tr *transport.Transport
}

// NewOpenClient builds a client with its own transport. The client ID must
// not collide with a member ID.
func NewOpenClient(id NodeID, conns []transport.PacketConn, clk clock.Clock, reg *stats.Registry, cfg transport.Config) (*OpenClient, error) {
	if id == wire.NoNode {
		return nil, errors.New("core: client ID must be non-zero")
	}
	return &OpenClient{id: id, tr: transport.New(id, conns, clk, reg, cfg)}, nil
}

// SetMember registers a member's addresses as a forwarding target.
func (c *OpenClient) SetMember(id NodeID, addrs []transport.Addr) {
	c.tr.SetPeer(id, addrs)
}

// Send forwards payload into the group through the given member. The call
// blocks until the member acknowledged receipt (not group-wide delivery).
func (c *OpenClient) Send(via NodeID, payload []byte, safe bool) error {
	f := wire.Forward{From: c.id, Safe: safe, Payload: payload}
	return c.tr.SendSync(via, wire.EncodeForward(&f))
}

// Close releases the client's transport.
func (c *OpenClient) Close() error { return c.tr.Close() }
