package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/rcerr"
	"repro/internal/wire"
)

// RoutingView is an immutable snapshot of the runtime's routing table: the
// set of active rings at one routing epoch. The Runtime owns the table;
// the keyspace layer (dds.Sharded) consults it on every route and tooling
// reads it for diagnostics. The epoch advances exactly once per completed
// grow or shrink, and every consumer that caches a derived structure (for
// example a consistent-hash ring) keys the cache on the epoch.
type RoutingView struct {
	// Epoch versions the table; 0 is never a valid epoch.
	Epoch uint64
	// Rings lists the active rings, ascending. Ring IDs are not
	// necessarily contiguous: removing ring 1 from {0,1,2} leaves {0,2}.
	Rings []RingID
}

func (v RoutingView) clone() RoutingView {
	return RoutingView{Epoch: v.Epoch, Rings: append([]RingID(nil), v.Rings...)}
}

// Has reports whether the ring is in the view.
func (v RoutingView) Has(id RingID) bool {
	for _, r := range v.Rings {
		if r == id {
			return true
		}
	}
	return false
}

// String renders the view for logs.
func (v RoutingView) String() string {
	return fmt.Sprintf("routing{epoch=%d rings=%v}", v.Epoch, v.Rings)
}

// Resharder migrates keyspace state between two routing epochs. The
// runtime invokes it on the coordinating node (the lowest combined
// member) after the rings of the new view have assembled; the
// implementation must freeze the moving keyspace slice, snapshot it out
// of the source shards, install it into the targets through their rings'
// ordered streams, and publish the new epoch on every node (via
// PublishRouting) before returning. Returning an error means the handoff
// aborted and every node stays on the old epoch.
type Resharder interface {
	Reshard(ctx context.Context, old, new RoutingView) error
}

// Routing-table errors. The retryable ones carry the shared rcerr
// classification so facade-level retry loops recognize them via
// errors.Is(err, rcerr.ErrRetryable) instead of enumerating sentinels.
var (
	// ErrReshardInProgress rejects a second concurrent grow/shrink. It is
	// deliberately NOT classified retryable: blindly re-running the
	// caller's grow after the in-flight one completes would change the
	// ring count twice.
	ErrReshardInProgress = errors.New("core: reshard already in progress")
	// ErrReshardAborted reports a handoff that failed and rolled back to
	// the old routing epoch; the ring set is unchanged and the operation
	// can be retried.
	ErrReshardAborted = rcerr.New("core: reshard aborted")
	// ErrEpochChanged reports that the routing epoch a caller pinned has
	// advanced (or a handoff toward the next epoch is in flight). It is
	// retryable: re-pin against the new table and try again.
	ErrEpochChanged = rcerr.New("core: pinned routing epoch changed")
)

// EpochPin freezes a caller's view of the routing epoch for the life of a
// multi-step operation. A cross-shard transaction coordinator pins the
// epoch when it begins and re-checks the pin at each phase boundary: any
// epoch advance — or a handoff in flight toward one — deterministically
// aborts the operation instead of letting it straddle two keyspace
// layouts. The pin is advisory (it does not block resharding); the
// authoritative backstop is the ordered freeze/retired checks on each
// ring, which reject writes into moving slices with ErrResharding.
type EpochPin struct {
	rt    *Runtime
	epoch uint64
}

// PinEpoch captures the current routing epoch.
func (r *Runtime) PinEpoch() EpochPin {
	return EpochPin{rt: r, epoch: r.Routing().Epoch}
}

// Epoch returns the pinned epoch.
func (p EpochPin) Epoch() uint64 { return p.epoch }

// Check returns nil while the pinned epoch is still the published epoch
// and no handoff is in flight; otherwise it returns ErrEpochChanged.
func (p EpochPin) Check() error {
	p.rt.mu.Lock()
	cur := p.rt.table.Epoch
	moving := p.rt.resharding
	p.rt.mu.Unlock()
	if cur != p.epoch {
		return fmt.Errorf("%w: pinned %d, published %d", ErrEpochChanged, p.epoch, cur)
	}
	if moving {
		return fmt.Errorf("%w: handoff toward epoch %d in flight", ErrEpochChanged, cur+1)
	}
	return nil
}

// Routing returns the current routing table.
func (r *Runtime) Routing() RoutingView {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.table.clone()
}

// SetResharder attaches the keyspace migration layer consulted by AddRing
// and RemoveRing. Without one, epoch flips move no data (pure multicast
// deployments).
func (r *Runtime) SetResharder(h Resharder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resharder = h
}

// OnRingSpawn registers a hook invoked for every dynamically spawned ring
// after its node is built but before it starts, so layers (dds replicas)
// can attach and observe the ring's ordered stream from the first event.
// Hooks run in registration order.
func (r *Runtime) OnRingSpawn(fn func(RingID, *Node)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spawnHooks = append(r.spawnHooks, fn)
}

// RoutingWatch registers a callback invoked after every routing-epoch
// publication with the new view.
func (r *Runtime) RoutingWatch(fn func(RoutingView)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.watchers = append(r.watchers, fn)
}

// PublishRouting installs a new routing epoch. It is called by the
// resharding layer when the handoff's flip applies on this node (every
// node publishes the same view at its own flip position), and internally
// for reshards that move no data. Stale epochs are ignored.
func (r *Runtime) PublishRouting(view RoutingView) {
	view = view.clone()
	sort.Slice(view.Rings, func(i, j int) bool { return view.Rings[i] < view.Rings[j] })
	r.mu.Lock()
	if view.Epoch <= r.table.Epoch {
		r.mu.Unlock()
		return
	}
	r.table = view
	r.resharding = false
	close(r.tableCh)
	r.tableCh = make(chan struct{})
	watchers := make([]func(RoutingView), len(r.watchers))
	copy(watchers, r.watchers)
	r.mu.Unlock()
	for _, fn := range watchers {
		fn(view.clone())
	}
}

// RoutingSignal returns a channel that is closed at the next
// routing-table event on this node — an epoch publication or a handoff
// abort. A retry loop blocked on a retryable rejection waits on it (with
// a backoff cap) instead of polling blindly: both the flip that unfreezes
// a moving slice and the abort that rolls it back fire the signal. After
// the channel closes, call RoutingSignal again for the next event.
func (r *Runtime) RoutingSignal() <-chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tableCh
}

// FailRouting records that the handoff targeting the given epoch aborted,
// waking any AddRing/RemoveRing caller waiting for that epoch. The
// resharding layer calls it when it observes an ordered abort.
func (r *Runtime) FailRouting(epoch uint64, cause error) {
	if cause == nil {
		cause = ErrReshardAborted
	}
	r.mu.Lock()
	if r.abortErrs[epoch] == nil {
		r.abortErrs[epoch] = cause
	}
	close(r.tableCh)
	r.tableCh = make(chan struct{})
	r.mu.Unlock()
}

// waitEpoch blocks until the routing table reaches the epoch, the handoff
// targeting it aborts, or ctx expires.
func (r *Runtime) waitEpoch(ctx context.Context, epoch uint64) error {
	for {
		r.mu.Lock()
		cur := r.table.Epoch
		var cause error
		if cur < epoch {
			// A reached epoch outranks a late abort record (a handoff
			// can only publish if it committed).
			if cause = r.abortErrs[epoch]; cause != nil {
				delete(r.abortErrs, epoch)
			}
		}
		ch := r.tableCh
		r.mu.Unlock()
		if cause != nil {
			return fmt.Errorf("%w: %v", ErrReshardAborted, cause)
		}
		if cur >= epoch {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ch:
		}
	}
}

// beginReshard marks a grow/shrink in progress (one at a time per node).
func (r *Runtime) beginReshard() (RoutingView, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return RoutingView{}, errors.New("core: runtime closed")
	}
	if r.resharding {
		return RoutingView{}, ErrReshardInProgress
	}
	r.resharding = true
	// A retry after an abort targets the same epoch number again; the
	// stale abort record must not fail it preemptively.
	delete(r.abortErrs, r.table.Epoch+1)
	return r.table.clone(), nil
}

func (r *Runtime) endReshard() {
	r.mu.Lock()
	r.resharding = false
	r.mu.Unlock()
}

// nextRingID picks the lowest ring id above every ring ever spawned, so a
// re-grow after a shrink never reuses a removed ring's id (peers may still
// hold frames for it). The high-water mark survives the removed ring's
// node being dropped.
func (r *Runtime) nextRingID() RingID {
	r.mu.Lock()
	defer r.mu.Unlock()
	next := r.spawnedHigh
	for _, id := range r.table.Rings {
		if id >= next {
			next = id + 1
		}
	}
	return next
}

// isCoordinator reports whether this node should drive the handoff: the
// lowest node in the combined membership, mirroring the paper's
// lowest-ID group-leader convention (§2.4).
func (r *Runtime) isCoordinator() bool {
	m := r.Members()
	return len(m) > 0 && m[0] == r.id
}

// AddRing grows the runtime by one ring. Every node of the cluster must
// call AddRing (the ring assembles across nodes via the discovery
// protocol, exactly like the initial rings); once the new ring's
// membership matches the runtime's combined membership, the lowest member
// coordinates the keyspace handoff and every node publishes the new
// routing epoch at its ordered flip point. Callers on the other nodes
// block until their node publishes the epoch or ctx expires.
//
// On abort (source or target ring dies mid-handoff, coordinator failure,
// ctx expiry) the spawned ring is torn down, the routing table stays on
// the old epoch, and the error wraps ErrReshardAborted where the abort
// was observed protocol-side.
func (r *Runtime) AddRing(ctx context.Context) (RingID, error) {
	old, err := r.beginReshard()
	if err != nil {
		return 0, err
	}
	defer r.endReshard()
	id := r.nextRingID()
	n, err := r.spawnNode(id)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	hooks := make([]func(RingID, *Node), len(r.spawnHooks))
	copy(hooks, r.spawnHooks)
	r.mu.Unlock()
	for _, fn := range hooks {
		fn(id, n)
	}
	n.Start()
	if err := r.waitRingAssembled(ctx, id); err != nil {
		r.dropNode(id)
		return 0, fmt.Errorf("core: ring %v never assembled: %w", id, err)
	}
	next := RoutingView{Epoch: old.Epoch + 1, Rings: append(append([]RingID(nil), old.Rings...), id)}
	if err := r.commitReshard(ctx, old, next); err != nil {
		if r.Routing().Has(id) {
			// The ordered flip committed while this (typically
			// follower-side ctx expiry) error raced it: the grow
			// succeeded and the ring is live.
			return id, nil
		}
		r.dropNode(id)
		return 0, err
	}
	return id, nil
}

// RemoveRing shrinks the runtime by one ring, handing the ring's keyspace
// slice off to the survivors. Like AddRing it must be called on every
// node; the lowest member coordinates, the rest follow the epoch flip.
// Ring 0 is not removable: it anchors version-1 frames and discovery.
func (r *Runtime) RemoveRing(ctx context.Context, id RingID) error {
	if id == wire.Ring0 {
		return errors.New("core: ring 0 anchors version-1 peers and cannot be removed")
	}
	old, err := r.beginReshard()
	if err != nil {
		return err
	}
	defer r.endReshard()
	if !old.Has(id) {
		return fmt.Errorf("%w: %v", ErrUnknownRing, id)
	}
	if len(old.Rings) <= 1 {
		return errors.New("core: cannot remove the last ring")
	}
	next := RoutingView{Epoch: old.Epoch + 1}
	for _, rid := range old.Rings {
		if rid != id {
			next.Rings = append(next.Rings, rid)
		}
	}
	if err := r.commitReshard(ctx, old, next); err != nil {
		if r.Routing().Has(id) {
			return err
		}
		// The flip committed while the error (typically a ctx expiry)
		// raced it: finish the retirement.
	}
	r.retireNode(ctx, id)
	return nil
}

// commitReshard drives (coordinator) or follows (everyone else) the epoch
// transition. With no resharder attached there is no keyspace to migrate
// and no ordered channel to synchronize on, so each node publishes
// locally once its rings are ready.
func (r *Runtime) commitReshard(ctx context.Context, old, next RoutingView) error {
	r.mu.Lock()
	resharder := r.resharder
	r.mu.Unlock()
	if resharder == nil {
		r.PublishRouting(next)
		return nil
	}
	if r.isCoordinator() {
		if err := resharder.Reshard(ctx, old.clone(), next.clone()); err != nil {
			return err
		}
		return nil
	}
	return r.waitEpoch(ctx, next.Epoch)
}

// retireNode gracefully stops a ring removed from the table: ordered
// leave, bounded wait, then close.
func (r *Runtime) retireNode(ctx context.Context, id RingID) {
	r.mu.Lock()
	n := r.nodes[id]
	r.mu.Unlock()
	if n == nil {
		return
	}
	n.Leave()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !n.Stopped() {
		select {
		case <-ctx.Done():
			deadline = time.Now()
		default:
		}
		time.Sleep(time.Millisecond)
	}
	r.dropNode(id)
}

// waitRingAssembled blocks until the ring's membership matches the
// runtime's combined membership (all peers spawned the ring too).
func (r *Runtime) waitRingAssembled(ctx context.Context, id RingID) error {
	n := r.Node(id)
	if n == nil {
		return fmt.Errorf("%w: %v", ErrUnknownRing, id)
	}
	for {
		want := r.Members()
		if len(want) > 0 && sameIDs(want, n.Members()) {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

func sameIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	bs := wire.SortedIDs(b)
	for i, id := range wire.SortedIDs(a) {
		if bs[i] != id {
			return false
		}
	}
	return true
}
