package core

import (
	"testing"
	"time"

	"repro/internal/ring"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

func TestTraceRecordsProtocolEvents(t *testing.T) {
	net := simnet.New(simnet.Options{})
	t.Cleanup(net.Close)
	log := trace.New(256)
	rc := FastRing()
	rc.Eligible = []NodeID{1, 2}
	n1, err := NewNode(Config{ID: 1, Ring: rc, Trace: log},
		[]transport.PacketConn{transport.NewSimConn(net.MustEndpoint("a"))})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n1.Close() })
	rc2 := FastRing()
	rc2.Eligible = []NodeID{1, 2}
	n2, err := NewNode(Config{ID: 2, Ring: rc2},
		[]transport.PacketConn{transport.NewSimConn(net.MustEndpoint("b"))})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n2.Close() })
	n1.SetPeer(2, []transport.Addr{"b"})
	n2.SetPeer(1, []transport.Addr{"a"})
	n1.Start()
	n2.Start()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && len(n1.Members()) != 2 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let the token circulate
	if log.CountKind(trace.KindMembership) == 0 {
		t.Fatal("no membership events traced")
	}
	if log.CountKind(trace.KindTokenRecv) == 0 && log.CountKind(trace.KindTokenPass) == 0 {
		t.Fatalf("no token events traced:\n%s", log.Dump())
	}
	if log.CountKind(trace.KindMerge) == 0 && log.CountKind(trace.KindStateChange) == 0 {
		t.Fatal("no state/merge events traced")
	}
}

func TestMulticastPayloadIsolated(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 2, rec)
	buf := []byte("original")
	if err := tc.Nodes[1].Multicast(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // caller reuses the buffer immediately
	rec.waitPayload(t, 2, "original", 5*time.Second)
}

func TestDoubleCloseIsSafe(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 2, rec)
	if err := tc.Nodes[1].Close(); err != nil {
		t.Fatal(err)
	}
	if err := tc.Nodes[1].Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEpochAdvancesOnRegeneration(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 3, rec)
	before := tc.Nodes[1].Epoch()
	// Kill whoever holds the token long enough to force a regeneration.
	tc.Net.SetNodeDown(Addr(2), true)
	tc.Net.SetNodeDown(Addr(3), true)
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if len(tc.Nodes[1].Members()) == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := tc.Nodes[1].Epoch(); got < before {
		t.Fatalf("epoch went backwards: %d -> %d", before, got)
	}
	if tc.Nodes[1].State() == ring.Down {
		t.Fatal("survivor shut down")
	}
}

func TestStateReflectsTokenPossession(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 1, rec)
	// A singleton always holds its token.
	if got := tc.Nodes[1].State(); got != ring.Eating {
		t.Fatalf("singleton state = %v, want EATING", got)
	}
}

func TestZeroIDRejected(t *testing.T) {
	net := simnet.New(simnet.Options{})
	t.Cleanup(net.Close)
	_, err := NewNode(Config{ID: 0},
		[]transport.PacketConn{transport.NewSimConn(net.MustEndpoint("z"))})
	if err == nil {
		t.Fatal("zero ID accepted")
	}
}

func TestSetEligibleExpandsDiscovery(t *testing.T) {
	// Two nodes that initially do not know each other; updating the
	// eligible membership online (§2.4) lets them merge.
	net := simnet.New(simnet.Options{})
	t.Cleanup(net.Close)
	mk := func(id NodeID, addr simnet.Addr) *Node {
		rc := FastRing()
		rc.Eligible = []NodeID{id} // alone
		n, err := NewNode(Config{ID: id, Ring: rc},
			[]transport.PacketConn{transport.NewSimConn(net.MustEndpoint(addr))})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Close() })
		return n
	}
	n1 := mk(1, "e1")
	n2 := mk(2, "e2")
	n1.SetPeer(2, []transport.Addr{"e2"})
	n2.SetPeer(1, []transport.Addr{"e1"})
	n1.Start()
	n2.Start()
	time.Sleep(100 * time.Millisecond)
	if len(n1.Members()) != 1 || len(n2.Members()) != 1 {
		t.Fatal("nodes merged without eligibility")
	}
	n1.SetEligible([]NodeID{1, 2})
	n2.SetEligible([]NodeID{1, 2})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(n1.Members()) == 2 && len(n2.Members()) == 2 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("online eligibility update did not merge: %v / %v", n1.Members(), n2.Members())
}

func TestTokenRoundTripHistogramPopulates(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 3, rec)
	time.Sleep(100 * time.Millisecond)
	sum := tc.Nodes[1].Stats().Histogram(stats.HistTokenRoundTrip).Summary()
	if sum.Count == 0 {
		t.Fatal("token round-trip histogram empty")
	}
	if sum.Mean <= 0 {
		t.Fatalf("round trip mean = %v", sum.Mean)
	}
}

func TestMulticastLatencyHistogramPopulates(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 2, rec)
	for i := 0; i < 5; i++ {
		if err := tc.Nodes[1].Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if tc.Nodes[1].Stats().Histogram(stats.HistMulticastLatency).Count() >= 5 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("multicast latency histogram did not reach 5 samples")
}

var _ = wire.NoNode
