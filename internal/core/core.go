package core
