// Package core is the Raincore Distributed Session Service: the public,
// runnable form of the protocols in internal/ring. A Node owns one protocol
// state machine, drives it with a single event loop, and exposes group
// membership, atomic reliable multicast with agreed or safe ordering
// (§2.6), and the token-based mutual exclusion service (§2.7) on top of
// the Raincore Transport Service (§2.1).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/ring"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

// NodeID re-exports the cluster member identity.
type NodeID = wire.NodeID

// Delivery is one multicast message handed to the application, in the
// agreed total order.
type Delivery struct {
	Origin  NodeID
	Seq     uint64
	Safe    bool
	Payload []byte
}

// MembershipEvent reports a change of the node's membership view.
type MembershipEvent struct {
	Members []NodeID
	Epoch   uint64
}

// SysEvent reports an ordered system announcement (node joined/removed,
// group merged). These arrive in the same total order as Deliveries, which
// is what replicated state machines such as the lock manager key off.
type SysEvent struct {
	Kind    wire.SysKind
	Subject NodeID
	Origin  NodeID
}

// Handlers are the application callbacks. They are invoked from the node's
// event loop: they observe a consistent total order and must not block.
type Handlers struct {
	// OnDeliver receives application multicasts in agreed total order.
	OnDeliver func(Delivery)
	// OnMembership receives membership view changes.
	OnMembership func(MembershipEvent)
	// OnSys receives ordered system announcements.
	OnSys func(SysEvent)
	// OnShutdown is called once when the node stops itself (voluntary
	// leave, critical resource loss, quorum loss).
	OnShutdown func(reason string)
}

// RingID identifies one ring of a sharded multi-ring runtime.
type RingID = wire.RingID

// Config assembles a node.
type Config struct {
	// ID is the node identity (required, non-zero).
	ID NodeID
	// RingID selects which ring this node's protocol instance belongs
	// to. Single-ring deployments leave it zero; a sharded Runtime runs
	// one node per ring over a shared transport.
	RingID RingID
	// Ring tunes the protocol timers, eligible membership and quorum.
	// Ring.ID is overwritten with ID.
	Ring ring.Config
	// Transport tunes the reliable unicast layer.
	Transport transport.Config
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Registry defaults to a private registry.
	Registry *stats.Registry
	// Trace, when non-nil, records protocol events for diagnostics.
	Trace *trace.Log
}

// ErrStopped is returned by operations on a stopped node.
var ErrStopped = errors.New("core: node stopped")

// Node is one member of a Raincore cluster (one protocol instance on one
// ring).
type Node struct {
	id     NodeID
	ringID RingID
	clk    clock.Clock
	reg    *stats.Registry
	tr     *transport.Transport
	sm     *ring.SM
	trc    *trace.Log

	// demux is non-nil when the node shares its transport with other
	// rings; the node then owns only its ring registration, not the
	// transport itself.
	demux *transport.Demux

	events chan ring.Event
	done   chan struct{}
	loopWG sync.WaitGroup

	timers    [ring.NumTimers]clock.Timer
	timerGen  [ring.NumTimers]uint64
	handlers  Handlers
	handlerMu sync.Mutex
	// stopHook is a supervisor callback (separate from Handlers so a
	// Runtime can observe ring shutdowns without occupying the
	// application's handler slot).
	stopHook func(reason string)
	// sysTee observes ordered system events without occupying the
	// application's handler slot, so a Runtime can watch membership
	// removals (coordinator-death observation) while a layer such as the
	// data service owns Handlers. It runs before the application handler
	// at the same ordered position.
	sysTee func(SysEvent)

	// Receive-path state. onPacket may run concurrently (one callback per
	// conn on the batched UDP path), so the chunk assembler has its own
	// lock.
	pktMu      sync.Mutex
	asm        *wire.Assembler
	asmDropped int64

	// chunkFrameID numbers this node's outgoing chunked token frames; the
	// receiver uses it to supersede stale partial frames.
	chunkFrameID atomic.Uint64

	// lastTokArrival is the wall-clock nanotime the token last arrived at
	// this node (atomic: read by the bounded-staleness read path off the
	// loop goroutine). A token visit with nothing to deliver still proves
	// every multicast ordered before it has been seen, so it bounds how
	// stale this node's replicas can be.
	lastTokArrival atomic.Int64

	// tokenHooks run on the loop goroutine at every token arrival, before
	// the state machine steps — the natural flush clock for layers that
	// coalesce submissions (ops buffered since the last visit cannot be
	// ordered any earlier than this arrival). Hooks must be fast and must
	// not call Multicast or post events synchronously: the loop goroutine
	// is the events channel's consumer, so a synchronous post can
	// deadlock when the channel is full. Kick a goroutine instead.
	tokenHooks atomic.Pointer[[]func()]

	// Zero-copy pinning, owned by the loop goroutine: while the possessed
	// token's payload views alias a pooled receive buffer, pinBuf holds a
	// reference to it and pinTok identifies the token (pointer identity
	// against sm.PossessedToken).
	pinBuf *wire.Buf
	pinTok *wire.Token
	// viewStep marks steps whose deliveries may alias a pooled buffer;
	// deliver then copies payloads before handing them up.
	viewStep bool

	// Adaptive attach-budget controller state (loop goroutine only).
	adaptive     bool
	holdD        time.Duration
	rttEWMA      time.Duration
	msgBytesEWMA float64
	curBudget    int

	// Snapshot state maintained by the loop, read by API methods.
	mu          sync.Mutex
	members     []NodeID
	epoch       uint64
	state       ring.NodeState
	stopped     bool
	lastToken   time.Time
	submitTimes []time.Time // FIFO of Multicast submit times for latency
	lockWaiter  chan struct{}
	lockHeld    bool

	stopOnce sync.Once
}

// tokenArrival wraps EvTokenReceived with the pooled receive buffer backing
// the token's zero-copy payload views; the loop unwraps it before Step and
// decides whether to pin the buffer. Embedding keeps it a valid ring.Event
// so it rides the events channel.
type tokenArrival struct {
	ring.EvTokenReceived
	buf *wire.Buf
}

// newNode builds the transport-independent part of a node.
func newNode(cfg Config) (*Node, error) {
	if cfg.ID == wire.NoNode {
		return nil, errors.New("core: Config.ID must be non-zero")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.Registry == nil {
		cfg.Registry = stats.NewRegistry()
	}
	cfg.Ring.ID = cfg.ID
	if cfg.Ring.SeqBase == 0 {
		// New incarnations must not reuse sequence numbers: derive the
		// base from the wall clock.
		cfg.Ring.SeqBase = uint64(time.Now().UnixNano())
	}
	holdD := cfg.Ring.TokenHold
	if holdD <= 0 {
		holdD = 10 * time.Millisecond // ring.Config's default hold interval
	}
	return &Node{
		id:       cfg.ID,
		ringID:   cfg.RingID,
		clk:      cfg.Clock,
		reg:      cfg.Registry,
		sm:       ring.New(cfg.Ring),
		trc:      cfg.Trace,
		asm:      wire.NewAssembler(),
		adaptive: cfg.Ring.AdaptiveBatch,
		holdD:    holdD,
		events:   make(chan ring.Event, 1024),
		done:     make(chan struct{}),
		state:    ring.Down,
	}, nil
}

// NewNode builds a node over the given transport conns (one per local
// physical address). The node owns the transport exclusively; use
// NewNodeOnDemux to share one transport between several rings. Call Start
// to boot it as a singleton group; groups assemble via the
// eligible-membership discovery protocol or Join.
func NewNode(cfg Config, conns []transport.PacketConn) (*Node, error) {
	n, err := newNode(cfg)
	if err != nil {
		return nil, err
	}
	n.tr = transport.New(cfg.ID, conns, cfg.Clock, n.reg, cfg.Transport)
	n.tr.SetHandler(n.onPacket)
	return n, nil
}

// NewNodeOnDemux builds a node on a shared transport: the node sends
// through the demux's transport and receives only the frames addressed to
// its cfg.RingID. Closing the node releases the ring registration but
// leaves the shared transport (and the other rings on it) running; the
// transport's owner — typically a Runtime — closes it.
func NewNodeOnDemux(cfg Config, d *transport.Demux) (*Node, error) {
	if cfg.Registry == nil {
		// Share the transport's registry so per-ring protocol metrics
		// and transport metrics aggregate in one place by default.
		cfg.Registry = d.Transport().Stats()
	}
	n, err := newNode(cfg)
	if err != nil {
		return nil, err
	}
	n.tr = d.Transport()
	n.demux = d
	if err := d.Register(cfg.RingID, n.onPacket); err != nil {
		return nil, err
	}
	return n, nil
}

// ID returns the node identity.
func (n *Node) ID() NodeID { return n.id }

// Ring returns the ring this node's protocol instance belongs to.
func (n *Node) Ring() RingID { return n.ringID }

// Stats returns the node's metric registry.
func (n *Node) Stats() *stats.Registry { return n.reg }

// LastTokenArrival reports the wall-clock time the ring's token last
// arrived at this node (zero before the first arrival). Safe to call from
// any goroutine.
func (n *Node) LastTokenArrival() time.Time {
	ns := n.lastTokArrival.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}

// Transport exposes the transport layer for peer registration.
func (n *Node) Transport() *transport.Transport { return n.tr }

// SetPeer registers a peer's physical addresses.
func (n *Node) SetPeer(id NodeID, addrs []transport.Addr) { n.tr.SetPeer(id, addrs) }

// SetHandlers installs the application callbacks. Must be called before
// Start to observe every event.
func (n *Node) SetHandlers(h Handlers) {
	n.handlerMu.Lock()
	defer n.handlerMu.Unlock()
	n.handlers = h
}

func (n *Node) getHandlers() Handlers {
	n.handlerMu.Lock()
	defer n.handlerMu.Unlock()
	return n.handlers
}

// OnTokenArrival registers fn to run on the node's loop goroutine at
// every token arrival, before the arrival steps the state machine. See
// the tokenHooks field for the contract: fn must be cheap and must not
// synchronously post events (spawn a goroutine for any submission).
// Hooks cannot be unregistered; register once per layer.
func (n *Node) OnTokenArrival(fn func()) {
	n.handlerMu.Lock()
	defer n.handlerMu.Unlock()
	var cur []func()
	if p := n.tokenHooks.Load(); p != nil {
		cur = *p
	}
	next := make([]func(), len(cur)+1)
	copy(next, cur)
	next[len(cur)] = fn
	n.tokenHooks.Store(&next)
}

// setStopHook installs the supervisor shutdown callback.
func (n *Node) setStopHook(fn func(reason string)) {
	n.handlerMu.Lock()
	defer n.handlerMu.Unlock()
	n.stopHook = fn
}

func (n *Node) getStopHook() func(string) {
	n.handlerMu.Lock()
	defer n.handlerMu.Unlock()
	return n.stopHook
}

// setSysTee installs the supervisor's ordered system-event observer.
func (n *Node) setSysTee(fn func(SysEvent)) {
	n.handlerMu.Lock()
	defer n.handlerMu.Unlock()
	n.sysTee = fn
}

func (n *Node) getSysTee() func(SysEvent) {
	n.handlerMu.Lock()
	defer n.handlerMu.Unlock()
	return n.sysTee
}

// Start boots the node as a singleton group and begins the event loop.
func (n *Node) Start() {
	n.loopWG.Add(1)
	go n.loop()
	n.post(ring.EvStart{})
}

// StartJoining boots the node as a rejoining member: instead of forming
// a singleton group it sends 911 join requests to its eligible peers
// (§2.3) until an existing group admits it, seeding a fresh group only
// when no peer outranks it. A node restarting from a durable WAL uses
// this path so it re-enters through the ordered join announcement — and
// the delta state transfer keyed off its recovered applied vector —
// rather than a discovery merge's full resync.
func (n *Node) StartJoining() {
	n.loopWG.Add(1)
	go n.loop()
	n.post(ring.EvStartJoining{})
}

// post enqueues an event for the loop; drops if the node stopped.
func (n *Node) post(ev ring.Event) {
	select {
	case <-n.done:
	case n.events <- ev:
	}
}

// loop is the single goroutine that owns the state machine.
func (n *Node) loop() {
	defer n.loopWG.Done()
	for {
		select {
		case <-n.done:
			return
		case ev := <-n.events:
			var buf *wire.Buf
			var tok *wire.Token
			if ta, ok := ev.(tokenArrival); ok {
				buf, tok = ta.buf, ta.Tok
				ev = ta.EvTokenReceived
			}
			if _, ok := ev.(ring.EvTokenReceived); ok {
				// Every arrival counts — including bufferless merge and
				// recovery tokens — for both the staleness stamp and the
				// registered flush hooks.
				n.lastTokArrival.Store(time.Now().UnixNano())
				if hooks := n.tokenHooks.Load(); hooks != nil {
					for _, fn := range *hooks {
						fn()
					}
				}
			}
			n.countTaskSwitch(ev)
			n.traceEvent(ev)
			acts := n.sm.Step(ev)
			rel0, rel1 := n.updatePin(buf, tok)
			n.execute(acts)
			// Buffers are released only after the step's actions ran:
			// deliveries among them may still read the payload views.
			rel0.Release()
			rel1.Release()
		}
	}
}

// updatePin reconciles buffer pinning with token possession after a Step.
// The pooled receive buffer backing the possessed token's payload views
// must live exactly as long as the state machine can reference those views:
// an incoming buffer is adopted when its token became the possessed one,
// and the previous pin is dropped when its token moved on. Returned buffers
// are for the caller to release after executing the step's actions.
func (n *Node) updatePin(buf *wire.Buf, tok *wire.Token) (rel0, rel1 *wire.Buf) {
	poss := n.sm.PossessedToken()
	if n.pinBuf != nil && n.pinTok != poss {
		rel0 = n.pinBuf
		n.pinBuf, n.pinTok = nil, nil
	}
	if buf != nil {
		if tok != nil && poss == tok {
			n.pinBuf, n.pinTok = buf, tok // adopt the receive path's reference
		} else {
			rel1 = buf // token dropped, superseded, or held only as a view
		}
	}
	n.viewStep = n.pinBuf != nil || rel0 != nil || rel1 != nil
	return rel0, rel1
}

// countTaskSwitch implements the paper's §4.1 CPU overhead metric: one
// task switch per wake-up of the group-communication layer, i.e. per
// received protocol packet and per protocol timer fire. Transport-level
// acknowledgements and delivery notifications are handled in the
// transport's context (like NIC interrupts in the paper's model) and do
// not count; neither do local API calls, which run on application time.
func (n *Node) countTaskSwitch(ev ring.Event) {
	switch ev.(type) {
	case ring.EvTokenReceived, ring.Ev911Received, ring.Ev911ReplyReceived,
		ring.EvBodyodorReceived, ring.EvForwardReceived, ring.EvTimer:
		n.reg.Counter(stats.MetricTaskSwitches).Inc()
	}
}

// traceEvent records notable protocol events when tracing is enabled.
func (n *Node) traceEvent(ev ring.Event) {
	if n.trc == nil {
		return
	}
	switch e := ev.(type) {
	case ring.EvTokenReceived:
		n.trc.Add(trace.KindTokenRecv, "from %v epoch=%d seq=%d msgs=%d",
			e.From, e.Tok.Epoch, e.Tok.Seq, len(e.Tok.Msgs))
	case ring.EvTokenSendFailed:
		n.trc.Add(trace.KindTokenLostPeer, "pass to %v failed (epoch=%d seq=%d)", e.To, e.Epoch, e.Seq)
	case ring.Ev911Received:
		n.trc.Add(trace.Kind911, "911 from %v copy=(%d,%d)", e.M.From, e.M.Epoch, e.M.Seq)
	}
}

// onPacket decodes a session message from the transport and posts it. buf,
// when non-nil, is the pooled receive buffer backing payload: the decode is
// zero-copy, so token payload views alias it and the loop pins it for as
// long as the token stays possessed. Chunked (version-3) frames are
// reassembled first; a reassembled frame is owned, so its views need no
// pinning.
func (n *Node) onPacket(from wire.NodeID, payload []byte, buf *wire.Buf) {
	if wire.IsChunk(payload) {
		if ringID, err := wire.PeekRing(payload); err != nil || ringID != n.ringID {
			return
		}
		n.pktMu.Lock()
		frame, err := n.asm.Add(from, payload)
		dropped := n.asm.Dropped - n.asmDropped
		n.asmDropped = n.asm.Dropped
		n.pktMu.Unlock()
		if dropped > 0 {
			n.reg.Counter(stats.MetricChunkDrops).Add(dropped)
		}
		if err != nil || frame == nil {
			return
		}
		n.reg.Counter(stats.MetricChunksAssembled).Inc()
		payload, buf = frame, nil
	}
	env, err := wire.DecodeView(payload)
	if err != nil {
		return // corrupt or foreign frame
	}
	if env.Ring != n.ringID {
		return // another ring's frame (only reachable without a demux)
	}
	switch env.Kind {
	case wire.KindToken:
		tok := env.Token
		if buf == nil {
			n.post(ring.EvTokenReceived{From: from, Tok: tok})
			return
		}
		if tok.TBM {
			// Merge tokens are parked by the state machine until our own
			// token arrives; own them instead of pinning a receive buffer
			// for an unbounded wait.
			n.post(ring.EvTokenReceived{From: from, Tok: tok.Clone()})
			return
		}
		buf.Retain()
		n.postToken(tokenArrival{ring.EvTokenReceived{From: from, Tok: tok}, buf})
	case wire.Kind911:
		n.post(ring.Ev911Received{M: *env.M911})
	case wire.Kind911Reply:
		n.post(ring.Ev911ReplyReceived{M: *env.M911R})
	case wire.KindBodyodor:
		n.post(ring.EvBodyodorReceived{M: *env.Bodyodor})
	case wire.KindForward:
		m := *env.Forward
		if buf != nil {
			// The state machine queues forwards beyond this callback; the
			// payload view must not outlive the receive buffer.
			m.Payload = append([]byte(nil), m.Payload...)
		}
		n.post(ring.EvForwardReceived{M: m})
	}
}

// postToken enqueues a token arrival carrying a retained buffer reference,
// releasing it if the node is already stopping.
func (n *Node) postToken(ta tokenArrival) {
	select {
	case <-n.done:
		ta.buf.Release()
	case n.events <- ta:
	}
}

// execute applies the state machine's actions to the outside world.
func (n *Node) execute(acts []ring.Action) {
	for _, a := range acts {
		switch act := a.(type) {
		case ring.ActSendToken:
			n.sendToken(act)
		case ring.ActSend911:
			m := act.M
			to := act.To
			n.tr.Send(to, wire.Encode911Ring(n.ringID, &m), func(err error) {
				if err != nil {
					n.post(ring.Ev911SendFailed{To: to, ReqID: m.ReqID})
				}
			})
		case ring.ActSend911Reply:
			m := act.M
			n.tr.Send(act.To, wire.Encode911ReplyRing(n.ringID, &m), nil)
		case ring.ActSendBodyodor:
			m := act.M
			n.tr.Send(act.To, wire.EncodeBodyodorRing(n.ringID, &m), nil)
		case ring.ActSetTimer:
			n.setTimer(act.Kind, act.D)
		case ring.ActStopTimer:
			n.stopTimer(act.Kind)
		case ring.ActDeliver:
			n.deliver(act.Msg)
		case ring.ActMembershipChanged:
			n.mu.Lock()
			n.members = append([]NodeID(nil), act.Members...)
			n.epoch = act.Epoch
			n.mu.Unlock()
			if n.trc != nil {
				n.trc.Add(trace.KindMembership, "view %v epoch=%d", act.Members, act.Epoch)
			}
			if h := n.getHandlers().OnMembership; h != nil {
				h(MembershipEvent{Members: act.Members, Epoch: act.Epoch})
			}
		case ring.ActStateChanged:
			n.mu.Lock()
			n.state = act.State
			n.mu.Unlock()
			if n.trc != nil {
				n.trc.Add(trace.KindStateChange, "%v", act.State)
			}
		case ring.ActHoldGranted:
			n.mu.Lock()
			n.lockHeld = true
			w := n.lockWaiter
			n.lockWaiter = nil
			n.mu.Unlock()
			if w != nil {
				close(w)
			}
		case ring.ActTokenRegenerated:
			n.reg.Counter(stats.MetricTokenRegens).Inc()
			if n.trc != nil {
				n.trc.Add(trace.KindRegen, "regenerated epoch=%d", act.Epoch)
			}
		case ring.ActMergeCompleted:
			n.reg.Counter(stats.MetricMerges).Inc()
			if n.trc != nil {
				n.trc.Add(trace.KindMerge, "merged view %v epoch=%d", act.Members, act.Epoch)
			}
		case ring.ActShutdown:
			n.mu.Lock()
			n.stopped = true
			n.mu.Unlock()
			if h := n.getHandlers().OnShutdown; h != nil {
				h(act.Reason)
			}
			if hook := n.getStopHook(); hook != nil {
				hook(act.Reason)
			}
			go n.Close() // release resources outside the loop
		}
	}
}

func (n *Node) sendToken(act ring.ActSendToken) {
	tok := act.Tok
	to := act.To
	n.observeTokenInterval()
	size := wire.EncodedTokenSize(n.ringID, tok)
	if n.adaptive {
		n.adaptBatch(tok, size)
	}
	if size > transport.MaxSessionFrame {
		n.sendTokenChunked(to, tok, size)
		return
	}
	fb := wire.GetBufSize(size)
	frame := wire.AppendTokenRing(fb.B[:0], n.ringID, tok)
	n.tr.Send(to, frame, func(err error) {
		if err != nil {
			n.post(ring.EvTokenSendFailed{To: to, Epoch: tok.Epoch, Seq: tok.Seq})
			return
		}
		n.reg.Counter(stats.MetricTokenPasses).Inc()
		if n.trc != nil {
			n.trc.Add(trace.KindTokenPass, "to %v epoch=%d seq=%d", to, tok.Epoch, tok.Seq)
		}
		n.post(ring.EvTokenAcked{To: to, Epoch: tok.Epoch, Seq: tok.Seq})
	})
	fb.Release() // Send framed the payload into its own pooled buffer
}

// sendTokenChunked splits an oversized token frame — typically a master-lock
// release burst, whose holder is exempt from the attach budget — into
// version-3 chunks and reports one aggregated outcome to the state machine:
// the first failed chunk fails the pass, the last acknowledged chunk
// completes it.
func (n *Node) sendTokenChunked(to wire.NodeID, tok *wire.Token, size int) {
	frame := wire.AppendTokenRing(make([]byte, 0, size), n.ringID, tok)
	chunks, err := wire.ChunkFrame(frame, n.ringID, n.chunkFrameID.Add(1), transport.MaxSessionFrame)
	if err != nil {
		n.post(ring.EvTokenSendFailed{To: to, Epoch: tok.Epoch, Seq: tok.Seq})
		return
	}
	n.reg.Counter(stats.MetricChunkedFrames).Inc()
	epoch, seq := tok.Epoch, tok.Seq
	remaining := new(atomic.Int64)
	failed := new(atomic.Bool)
	remaining.Store(int64(len(chunks)))
	cb := func(err error) {
		if err != nil && !failed.Swap(true) {
			n.post(ring.EvTokenSendFailed{To: to, Epoch: epoch, Seq: seq})
		}
		if remaining.Add(-1) == 0 && !failed.Load() {
			n.reg.Counter(stats.MetricTokenPasses).Inc()
			if n.trc != nil {
				n.trc.Add(trace.KindTokenPass, "to %v epoch=%d seq=%d (%d chunks)",
					to, epoch, seq, len(chunks))
			}
			n.post(ring.EvTokenAcked{To: to, Epoch: epoch, Seq: seq})
		}
	}
	for _, c := range chunks {
		n.tr.Send(to, c, cb)
	}
}

// adaptBatch retunes the ring's attach budget from what this pass observed.
// The EWMA encoded size of an attached message and the datagram headroom
// left after the token header bound how many messages fit one datagram; the
// observed token round-trip, relative to the configured hold interval,
// scales how many datagram-fulls one possession should drain — a slow
// rotation accumulates more backlog per visit, and chunking absorbs the
// overflow when a burst exceeds a single datagram anyway.
func (n *Node) adaptBatch(tok *wire.Token, size int) {
	hdr := *tok
	hdr.Msgs = nil
	base := wire.EncodedTokenSize(n.ringID, &hdr)
	if m := len(tok.Msgs); m > 0 {
		per := float64(size-base) / float64(m)
		if n.msgBytesEWMA == 0 {
			n.msgBytesEWMA = per
		} else {
			n.msgBytesEWMA += 0.2 * (per - n.msgBytesEWMA)
		}
	}
	per := n.msgBytesEWMA
	if per < 16 {
		per = 16 // prior before the first observation, floor thereafter
	}
	headroom := transport.MaxSessionFrame - base
	if headroom < 0 {
		headroom = 0
	}
	fit := float64(headroom) / per
	rounds := 1.0
	if n.rttEWMA > 0 && n.holdD > 0 {
		rounds = float64(n.rttEWMA) / float64(n.holdD)
		if rounds < 1 {
			rounds = 1
		} else if rounds > 8 {
			rounds = 8
		}
	}
	budget := int(fit * rounds)
	const hardCap = 1 << 14
	if budget > hardCap {
		budget = hardCap
	}
	if budget < 1 {
		budget = 1
	}
	if n.curBudget > 0 {
		diff := budget - n.curBudget
		if diff < 0 {
			diff = -diff
		}
		if diff*8 < n.curBudget {
			return // within the hysteresis band: keep the current budget
		}
	}
	n.curBudget = budget
	n.reg.Gauge(stats.GaugeAdaptiveBatch).Set(int64(budget))
	select {
	case n.events <- ring.EvSetBatchBudget{Budget: budget}:
	default: // queue full; retune on a later pass
	}
}

// observeTokenInterval records the spacing of outgoing token passes, which
// over a full ring equals the token round-trip (§4.1's L).
func (n *Node) observeTokenInterval() {
	now := n.clk.Now()
	n.mu.Lock()
	last := n.lastToken
	n.lastToken = now
	n.mu.Unlock()
	if !last.IsZero() {
		d := now.Sub(last)
		n.reg.Histogram(stats.HistTokenRoundTrip).Observe(d)
		if n.rttEWMA == 0 {
			n.rttEWMA = d
		} else {
			n.rttEWMA += (d - n.rttEWMA) / 5
		}
	}
}

func (n *Node) deliver(m wire.Message) {
	n.reg.Counter(stats.MetricMsgsDelivered).Inc()
	h := n.getHandlers()
	if m.Sys != wire.SysApp {
		ev := SysEvent{Kind: m.Sys, Subject: m.Subject, Origin: m.Origin}
		if tee := n.getSysTee(); tee != nil {
			tee(ev)
		}
		if h.OnSys != nil {
			h.OnSys(ev)
		}
		return
	}
	if m.Origin == n.id {
		n.mu.Lock()
		if len(n.submitTimes) > 0 {
			n.reg.Histogram(stats.HistMulticastLatency).Observe(n.clk.Now().Sub(n.submitTimes[0]))
			n.submitTimes = n.submitTimes[1:]
		}
		n.mu.Unlock()
	}
	if h.OnDeliver != nil {
		pay := m.Payload
		if n.viewStep && len(pay) > 0 {
			// The payload is a zero-copy view into a pooled receive buffer
			// that may be recycled after this step; the application owns
			// what it is handed, so copy exactly here, at the boundary.
			pay = append([]byte(nil), pay...)
		}
		h.OnDeliver(Delivery{Origin: m.Origin, Seq: m.Seq, Safe: m.Safe, Payload: pay})
	}
}

func (n *Node) setTimer(kind ring.TimerKind, d time.Duration) {
	if t := n.timers[kind]; t != nil {
		t.Stop()
	}
	n.mu.Lock()
	n.timerGen[kind]++
	gen := n.timerGen[kind]
	n.mu.Unlock()
	k := kind
	n.timers[kind] = n.clk.AfterFunc(d, func() {
		n.mu.Lock()
		valid := n.timerGen[k] == gen
		n.mu.Unlock()
		if valid {
			n.post(ring.EvTimer{Kind: k})
		}
	})
}

func (n *Node) stopTimer(kind ring.TimerKind) {
	if t := n.timers[kind]; t != nil {
		t.Stop()
	}
	n.mu.Lock()
	n.timerGen[kind]++
	n.mu.Unlock()
}

// Multicast submits a payload for atomic reliable multicast with agreed
// ordering (§2.6). Delivery to the local application happens through the
// OnDeliver handler like everywhere else.
func (n *Node) Multicast(payload []byte) error {
	return n.submit(payload, false)
}

// MulticastSafe submits a payload with safe ordering: delivery is withheld
// until every member provably holds the message (§2.6).
func (n *Node) MulticastSafe(payload []byte) error {
	return n.submit(payload, true)
}

func (n *Node) submit(payload []byte, safe bool) error {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return ErrStopped
	}
	n.submitTimes = append(n.submitTimes, n.clk.Now())
	n.mu.Unlock()
	n.reg.Counter(stats.MetricMsgsSent).Inc()
	n.post(ring.EvSubmit{Payload: append([]byte(nil), payload...), Safe: safe})
	return nil
}

// Members returns the current membership view.
func (n *Node) Members() []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]NodeID(nil), n.members...)
}

// Epoch returns the current group epoch.
func (n *Node) Epoch() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// State returns the node's protocol state.
func (n *Node) State() ring.NodeState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

// Stopped reports whether the node shut down.
func (n *Node) Stopped() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped
}

// Lock acquires the cluster master lock (§2.7): it returns once this node
// holds the token and the token is pinned. While held, no other node can
// be EATING, so changes to shared state are authoritative.
func (n *Node) Lock(ctx context.Context) error {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return ErrStopped
	}
	if n.lockHeld {
		n.mu.Unlock()
		return errors.New("core: master lock already held by this node")
	}
	if n.lockWaiter != nil {
		n.mu.Unlock()
		return errors.New("core: concurrent Lock in progress")
	}
	w := make(chan struct{})
	n.lockWaiter = w
	n.mu.Unlock()
	n.post(ring.EvHoldRequest{})
	select {
	case <-w:
		return nil
	case <-ctx.Done():
		n.mu.Lock()
		stillWaiting := n.lockWaiter == w
		if stillWaiting {
			n.lockWaiter = nil
		}
		held := n.lockHeld
		n.mu.Unlock()
		if !stillWaiting && held {
			// Granted concurrently with cancellation: release it.
			n.Unlock()
		} else {
			n.post(ring.EvHoldRelease{})
		}
		return ctx.Err()
	case <-n.done:
		return ErrStopped
	}
}

// Unlock releases the master lock and lets the token circulate again.
func (n *Node) Unlock() {
	n.mu.Lock()
	n.lockHeld = false
	n.mu.Unlock()
	n.post(ring.EvHoldRelease{})
}

// Join sends a 911 join request to a known member (§2.3). The group admits
// this node and sends it the token; membership change is observable via
// OnMembership. Join is best-effort: retry until Members grows.
func (n *Node) Join(seed NodeID) error {
	n.mu.Lock()
	stopped := n.stopped
	n.mu.Unlock()
	if stopped {
		return ErrStopped
	}
	m := wire.Msg911{From: n.id, Epoch: 0, Seq: 0, ReqID: uint64(time.Now().UnixNano())}
	errCh := make(chan error, 1)
	n.tr.Send(seed, wire.Encode911Ring(n.ringID, &m), func(err error) { errCh <- err })
	if err := <-errCh; err != nil {
		return fmt.Errorf("core: join via %v: %w", seed, err)
	}
	return nil
}

// Leave removes the node from the group gracefully and stops it.
func (n *Node) Leave() {
	n.post(ring.EvLeave{})
}

// FailCriticalResource reports a critical resource failure (§2.4): the
// node removes itself from the group and shuts down.
func (n *Node) FailCriticalResource(name string) {
	n.post(ring.EvCriticalResourceFailed{Resource: name})
}

// SetEligible replaces the eligible membership online (§2.4).
func (n *Node) SetEligible(ids []NodeID) {
	n.post(ring.EvSetEligible{IDs: ids})
}

// Close stops the event loop and releases the node's transport resources:
// an exclusively owned transport is closed, a shared (demux) transport only
// loses this node's ring registration. It does not announce a graceful
// leave; use Leave for that.
func (n *Node) Close() error {
	n.stopOnce.Do(func() {
		close(n.done)
		n.loopWG.Wait()
		for _, t := range n.timers {
			if t != nil {
				t.Stop()
			}
		}
		n.mu.Lock()
		n.stopped = true
		w := n.lockWaiter
		n.lockWaiter = nil
		n.mu.Unlock()
		if w != nil {
			close(w)
		}
		if n.demux != nil {
			n.demux.Unregister(n.ringID)
		} else {
			n.tr.Close()
		}
		// Receive callbacks are done now: release the pinned buffer and any
		// token buffers still queued behind the stopped loop.
		if n.pinBuf != nil {
			n.pinBuf.Release()
			n.pinBuf, n.pinTok = nil, nil
		}
	drain:
		for {
			select {
			case ev := <-n.events:
				if ta, ok := ev.(tokenArrival); ok {
					ta.buf.Release()
				}
			default:
				break drain
			}
		}
	})
	return nil
}
