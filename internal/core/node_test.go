package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/wire"
)

// recorder collects deliveries and events per node, concurrency-safe.
type recorder struct {
	mu       sync.Mutex
	byNode   map[NodeID][]Delivery
	sys      map[NodeID][]SysEvent
	shutdown map[NodeID]string
}

func newRecorder() *recorder {
	return &recorder{
		byNode:   make(map[NodeID][]Delivery),
		sys:      make(map[NodeID][]SysEvent),
		shutdown: make(map[NodeID]string),
	}
}

func (r *recorder) handlers(id NodeID) Handlers {
	return Handlers{
		OnDeliver: func(d Delivery) {
			r.mu.Lock()
			r.byNode[id] = append(r.byNode[id], d)
			r.mu.Unlock()
		},
		OnSys: func(e SysEvent) {
			r.mu.Lock()
			r.sys[id] = append(r.sys[id], e)
			r.mu.Unlock()
		},
		OnShutdown: func(reason string) {
			r.mu.Lock()
			r.shutdown[id] = reason
			r.mu.Unlock()
		},
	}
}

func (r *recorder) payloads(id NodeID) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for _, d := range r.byNode[id] {
		out = append(out, string(d.Payload))
	}
	return out
}

func (r *recorder) waitPayload(t *testing.T, id NodeID, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, p := range r.payloads(id) {
			if p == want {
				return
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("node %v never delivered %q; got %v", id, want, r.payloads(id))
}

func startCluster(t *testing.T, n int, rec *recorder) *TestCluster {
	t.Helper()
	tc, err := NewTestCluster(ClusterOptions{
		N:        n,
		Handlers: rec.handlers,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tc.Close)
	if err := tc.WaitAssembled(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return tc
}

func TestClusterAssembles(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 4, rec)
	for _, id := range tc.IDs {
		got := wire.SortedIDs(tc.Nodes[id].Members())
		if len(got) != 4 {
			t.Fatalf("node %v members = %v", id, got)
		}
	}
}

func TestMulticastReachesAllNodes(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 4, rec)
	if err := tc.Nodes[2].Multicast([]byte("hello group")); err != nil {
		t.Fatal(err)
	}
	for _, id := range tc.IDs {
		rec.waitPayload(t, id, "hello group", 5*time.Second)
	}
}

func TestSafeMulticastReachesAllNodes(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 3, rec)
	if err := tc.Nodes[1].MulticastSafe([]byte("safe msg")); err != nil {
		t.Fatal(err)
	}
	for _, id := range tc.IDs {
		rec.waitPayload(t, id, "safe msg", 5*time.Second)
	}
}

func TestAgreedOrderingUnderConcurrentSenders(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 4, rec)
	const perNode = 10
	for i := 0; i < perNode; i++ {
		for _, id := range tc.IDs {
			if err := tc.Nodes[id].Multicast([]byte(fmt.Sprintf("m-%v-%d", id, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := perNode * len(tc.IDs)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, id := range tc.IDs {
			if len(rec.payloads(id)) < want {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// All nodes must agree on the exact global order (§2.6).
	ref := rec.payloads(1)
	if len(ref) != want {
		t.Fatalf("node 1 delivered %d of %d", len(ref), want)
	}
	for _, id := range tc.IDs[1:] {
		got := rec.payloads(id)
		if len(got) != want {
			t.Fatalf("node %v delivered %d of %d", id, len(got), want)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("order diverges at %d: node %v has %q, node 1 has %q", i, id, got[i], ref[i])
			}
		}
	}
}

func TestCrashFailoverShrinksMembership(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 4, rec)
	tc.Net.SetNodeDown(Addr(3), true)
	if err := tc.WaitMembership(10*time.Second, 1, 2, 4); err != nil {
		t.Fatal(err)
	}
	// The removal is announced as an ordered system event.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		rec.mu.Lock()
		var seen bool
		for _, e := range rec.sys[1] {
			if e.Kind == wire.SysNodeRemoved && e.Subject == 3 {
				seen = true
			}
		}
		rec.mu.Unlock()
		if seen {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Multicast still works for survivors.
	if err := tc.Nodes[1].Multicast([]byte("post-failure")); err != nil {
		t.Fatal(err)
	}
	for _, id := range []NodeID{1, 2, 4} {
		rec.waitPayload(t, id, "post-failure", 5*time.Second)
	}
}

func TestNodeRejoinsAfterIsolationHeals(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 3, rec)
	tc.Net.Partition([]simnet.Addr{Addr(1), Addr(2)}, []simnet.Addr{Addr(3)})
	if err := tc.WaitMembership(10*time.Second, 1, 2); err != nil {
		t.Fatal(err)
	}
	tc.Net.Heal()
	if err := tc.WaitAssembled(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSplitAndMerge(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 4, rec)
	tc.Net.Partition([]simnet.Addr{Addr(1), Addr(2)}, []simnet.Addr{Addr(3), Addr(4)})
	// Generous deadlines: partition convergence is failure-detector
	// timing and misses tight budgets on loaded single-core CI hosts.
	if err := tc.WaitMembership(30*time.Second, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tc.WaitMembership(30*time.Second, 3, 4); err != nil {
		t.Fatal(err)
	}
	// Both halves keep serving multicasts.
	tc.Nodes[1].Multicast([]byte("left"))
	tc.Nodes[3].Multicast([]byte("right"))
	rec.waitPayload(t, 2, "left", 5*time.Second)
	rec.waitPayload(t, 4, "right", 5*time.Second)
	tc.Net.Heal()
	if err := tc.WaitAssembled(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	tc.Nodes[2].Multicast([]byte("reunified"))
	for _, id := range tc.IDs {
		rec.waitPayload(t, id, "reunified", 5*time.Second)
	}
}

func TestMasterLockMutualExclusion(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 3, rec)
	var mu sync.Mutex
	inCS := 0
	maxCS := 0
	var wg sync.WaitGroup
	for _, id := range tc.IDs {
		wg.Add(1)
		go func(id NodeID) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				if err := tc.Nodes[id].Lock(ctx); err != nil {
					cancel()
					t.Errorf("node %v lock: %v", id, err)
					return
				}
				mu.Lock()
				inCS++
				if inCS > maxCS {
					maxCS = inCS
				}
				mu.Unlock()
				time.Sleep(2 * time.Millisecond)
				mu.Lock()
				inCS--
				mu.Unlock()
				tc.Nodes[id].Unlock()
				cancel()
			}
		}(id)
	}
	wg.Wait()
	if maxCS != 1 {
		t.Fatalf("max concurrent critical sections = %d, want 1", maxCS)
	}
}

func TestLockContextCancellation(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 2, rec)
	// Node 1 takes and holds the lock.
	ctx := context.Background()
	if err := tc.Nodes[1].Lock(ctx); err != nil {
		t.Fatal(err)
	}
	defer tc.Nodes[1].Unlock()
	// Node 2's attempt times out cleanly.
	ctx2, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := tc.Nodes[2].Lock(ctx2); err == nil {
		tc.Nodes[2].Unlock()
		t.Fatal("lock acquired while node 1 held it")
	}
}

func TestOpenGroupClient(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 3, rec)
	ep, err := tc.Net.Endpoint("client-1")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewOpenClient(1000, []transportConn{transportSim(ep)}, nil, stats.NewRegistry(), transportCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetMember(2, []transportAddr{transportAddr(Addr(2))})
	if err := cl.Send(2, []byte("from outside"), false); err != nil {
		t.Fatal(err)
	}
	for _, id := range tc.IDs {
		rec.waitPayload(t, id, "from outside", 5*time.Second)
	}
	// The forwarding member is the origin inside the group.
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for _, d := range rec.byNode[1] {
		if string(d.Payload) == "from outside" && d.Origin != 2 {
			t.Fatalf("origin = %v, want forwarding member 2", d.Origin)
		}
	}
}

func TestVoluntaryLeaveAnnounced(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 3, rec)
	tc.Nodes[3].Leave()
	if err := tc.WaitMembership(10*time.Second, 1, 2); err != nil {
		t.Fatal(err)
	}
	rec.mu.Lock()
	reason := rec.shutdown[3]
	rec.mu.Unlock()
	if reason == "" {
		t.Fatal("no shutdown callback on leaving node")
	}
}

func TestCriticalResourceShutdown(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 3, rec)
	tc.Nodes[2].FailCriticalResource("internet-uplink")
	if err := tc.WaitMembership(10*time.Second, 1, 3); err != nil {
		t.Fatal(err)
	}
	if !tc.Nodes[2].Stopped() {
		t.Fatal("node 2 still running after critical resource failure")
	}
}

func TestJoinViaSeed(t *testing.T) {
	// A node with no eligible membership configured joins via an
	// explicit 911 to a seed member (§2.3).
	rec := newRecorder()
	tc, err := NewTestCluster(ClusterOptions{N: 2, Handlers: rec.handlers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tc.Close)
	if err := tc.WaitAssembled(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Build node 7 by hand with empty eligible membership.
	ep, err := tc.Net.Endpoint("node-7")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{ID: 7, Ring: FastRing()}
	n7, err := NewNode(cfg, []transportConn{transportSim(ep)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n7.Close() })
	n7.SetHandlers(rec.handlers(7))
	n7.SetPeer(1, []transportAddr{transportAddr(Addr(1))})
	n7.SetPeer(2, []transportAddr{transportAddr(Addr(2))})
	tc.Nodes[1].SetPeer(7, []transportAddr{"node-7"})
	tc.Nodes[2].SetPeer(7, []transportAddr{"node-7"})
	n7.Start()
	if err := n7.Join(1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if len(n7.Members()) == 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := wire.SortedIDs(n7.Members()); len(got) != 3 {
		t.Fatalf("joiner members = %v, want 3", got)
	}
	tc.Nodes[1].Multicast([]byte("welcome"))
	rec.waitPayload(t, 7, "welcome", 5*time.Second)
}

func TestMulticastAfterCloseFails(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 2, rec)
	tc.Nodes[1].Close()
	if err := tc.Nodes[1].Multicast([]byte("x")); err == nil {
		t.Fatal("multicast on closed node succeeded")
	}
}

func TestTaskSwitchCounterAdvances(t *testing.T) {
	rec := newRecorder()
	tc := startCluster(t, 3, rec)
	before := tc.Nodes[1].Stats().Counter(stats.MetricTaskSwitches).Load()
	time.Sleep(50 * time.Millisecond)
	after := tc.Nodes[1].Stats().Counter(stats.MetricTaskSwitches).Load()
	if after <= before {
		t.Fatal("task switch counter not advancing with a circulating token")
	}
}

func TestLossyNetworkStillDelivers(t *testing.T) {
	rec := newRecorder()
	tc, err := NewTestCluster(ClusterOptions{
		N:        3,
		Handlers: rec.handlers,
		Net:      simnetOptions(0.2, 17),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tc.Close)
	if err := tc.WaitAssembled(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := tc.Nodes[1].Multicast([]byte(fmt.Sprintf("lossy-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range tc.IDs {
		for i := 0; i < 5; i++ {
			rec.waitPayload(t, id, fmt.Sprintf("lossy-%d", i), 20*time.Second)
		}
	}
}
