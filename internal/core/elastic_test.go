package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// TestAddRemoveRingWithoutResharder covers the pure-multicast elastic
// path: with no keyspace layer attached, AddRing/RemoveRing flip the
// routing table locally once the ring set is ready.
func TestAddRemoveRingWithoutResharder(t *testing.T) {
	rec := newGridRecorder()
	g := startGrid(t, 2, 2, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	ids := make(map[NodeID]RingID)
	errs := make(map[NodeID]error)
	var mu sync.Mutex
	for _, id := range g.IDs {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			rid, err := g.Runtimes[id].AddRing(ctx)
			mu.Lock()
			ids[id], errs[id] = rid, err
			mu.Unlock()
		}()
	}
	wg.Wait()
	for _, id := range g.IDs {
		if errs[id] != nil {
			t.Fatalf("AddRing on %v: %v", id, errs[id])
		}
		if ids[id] != 2 {
			t.Fatalf("AddRing on %v returned ring %v, want 2", id, ids[id])
		}
		view := g.Runtimes[id].Routing()
		if view.Epoch != 2 || len(view.Rings) != 3 {
			t.Fatalf("node %v routing = %v, want epoch 2 with 3 rings", id, view)
		}
		if g.Runtimes[id].Rings() != 3 {
			t.Fatalf("node %v Rings() = %d", id, g.Runtimes[id].Rings())
		}
	}
	// The grown ring orders traffic.
	for _, id := range g.IDs {
		g.Runtimes[id].Node(2).SetHandlers(rec.handlers(id, 2))
	}
	if err := g.Runtimes[1].Multicast(2, []byte("on-new-ring")); err != nil {
		t.Fatal(err)
	}
	for _, id := range g.IDs {
		rec.waitPayload(t, id, 2, "on-new-ring", 10*time.Second)
	}

	// Shrink ring 1 away: table flips, the node retires, health stays
	// clean (a deliberate removal is not a failure).
	for _, id := range g.IDs {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := g.Runtimes[id].RemoveRing(ctx, 1)
			mu.Lock()
			errs[id] = err
			mu.Unlock()
		}()
	}
	wg.Wait()
	for _, id := range g.IDs {
		if errs[id] != nil {
			t.Fatalf("RemoveRing on %v: %v", id, errs[id])
		}
		rt := g.Runtimes[id]
		if view := rt.Routing(); view.Epoch != 3 || view.Has(1) {
			t.Fatalf("node %v routing after remove = %v", id, view)
		}
		if rt.Node(1) != nil {
			t.Fatalf("node %v still hosts ring 1", id)
		}
		if !rt.Healthy() {
			t.Fatalf("node %v unhealthy after deliberate removal: %+v", id, rt.Health())
		}
	}
}

// TestRemoveRingValidation covers the error paths of the shrink API.
func TestRemoveRingValidation(t *testing.T) {
	g := startGrid(t, 1, 2, nil)
	rt := g.Runtimes[1]
	ctx := context.Background()
	if err := rt.RemoveRing(ctx, 0); err == nil {
		t.Fatal("removing ring 0 succeeded; it anchors version-1 peers")
	}
	if err := rt.RemoveRing(ctx, 7); !errors.Is(err, ErrUnknownRing) {
		t.Fatalf("RemoveRing(7) = %v, want ErrUnknownRing", err)
	}
	if err := rt.RemoveRing(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := rt.RemoveRing(ctx, 1); !errors.Is(err, ErrUnknownRing) {
		t.Fatalf("second RemoveRing(1) = %v, want ErrUnknownRing", err)
	}
	if view := rt.Routing(); view.Epoch != 2 || len(view.Rings) != 1 {
		t.Fatalf("routing = %v", view)
	}
	// The last ring is not removable.
	if err := rt.RemoveRing(ctx, 0); err == nil {
		t.Fatal("removing the last ring succeeded")
	}
}

// TestHealthViewShowsDemuxDrops checks the mis-epoch'd-peer visibility:
// frames for a ring this node does not host surface as counted drops in
// the runtime health view instead of disappearing.
func TestHealthViewShowsDemuxDrops(t *testing.T) {
	g := startGrid(t, 2, 2, nil)
	rt := g.Runtimes[1]
	if h := rt.HealthView(); h.DemuxDrops != 0 || h.Routing.Epoch != 1 {
		t.Fatalf("pristine health view: %+v", h)
	}

	// A peer on a different routing epoch sends to ring 7.
	ep, err := g.Net.Endpoint("mis-epoch-peer")
	if err != nil {
		t.Fatal(err)
	}
	tr := transport.New(99, []transportConn{transportSim(ep)}, nil, stats.NewRegistry(), transportCfg())
	defer tr.Close()
	tr.SetPeer(1, []transportAddr{transportAddr(Addr(1))})
	f := wire.Forward{From: 99, Payload: []byte("lost")}
	if err := tr.SendSync(1, wire.EncodeForwardRing(7, &f)); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		h := rt.HealthView()
		if h.DemuxDrops > 0 && h.DropsByRing[7] > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drop never surfaced in health view: %+v", h)
		}
		time.Sleep(time.Millisecond)
	}
	if n := rt.Stats().Counter(stats.MetricDemuxDrops).Load(); n == 0 {
		t.Fatal("MetricDemuxDrops not incremented")
	}
}
