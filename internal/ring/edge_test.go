package ring

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/wire"
)

// Additional edge-case coverage for the protocol state machine, beyond the
// scenario and property suites.

func TestSubmitWhilePassingWaitsForToken(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2)
	s.Step(EvTimer{Kind: TimerTokenHold}) // pass in flight (unacked)
	acts := s.Step(EvSubmit{Payload: []byte("queued")})
	// The message must not attach to the in-flight token.
	if len(deliveries(acts)) != 0 {
		t.Fatal("delivered while the pass was in flight")
	}
	s.Step(EvTokenAcked{To: 2, Epoch: 2, Seq: 11})
	// Next token arrival attaches and delivers.
	acts = receiveRingToken(s, 2, 12, 1, 2)
	del := deliveries(acts)
	if len(del) != 1 || string(del[0].Payload) != "queued" {
		t.Fatalf("deliveries after token return = %v", del)
	}
}

func TestSubmitWhileHoldingMasterLockDeliversImmediately(t *testing.T) {
	// The master-lock + multicast deadlock regression (§2.7): a node
	// pinning the token must still be able to multicast.
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2)
	s.Step(EvHoldRequest{})
	acts := s.Step(EvSubmit{Payload: []byte("under lock")})
	del := deliveries(acts)
	if len(del) != 1 || string(del[0].Payload) != "under lock" {
		t.Fatalf("deliveries while locked = %v", del)
	}
	// Release: the token leaves carrying the message.
	acts = s.Step(EvHoldRelease{})
	toks := sentTokens(acts)
	if len(toks) != 1 {
		t.Fatal("token did not move after release")
	}
	found := false
	for _, m := range toks[0].Tok.Msgs {
		if string(m.Payload) == "under lock" {
			found = true
		}
	}
	if !found {
		t.Fatal("message not carried by the released token")
	}
}

func TestShutdownWhilePassingDoesNotSendTwice(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2, 3)
	s.Step(EvTimer{Kind: TimerTokenHold}) // pass in flight
	acts := s.Step(EvLeave{})
	// The token is already on its way to the successor; leaving must not
	// emit a second token.
	if len(sentTokens(acts)) != 0 {
		t.Fatal("leave emitted a duplicate token while passing")
	}
	if s.State() != Down {
		t.Fatalf("state = %v", s.State())
	}
}

func TestHungryTimerWhileEatingIgnored(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2)
	acts := s.Step(EvTimer{Kind: TimerHungry})
	if s.State() != Eating {
		t.Fatalf("state = %v after spurious hungry fire", s.State())
	}
	if len(sent911s(acts)) != 0 {
		t.Fatal("spurious hungry fire sent 911s")
	}
}

func Test911RetryUsesFreshRequestID(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2, 3)
	s.Step(EvTimer{Kind: TimerTokenHold})
	s.Step(EvTokenAcked{To: 2, Epoch: 2, Seq: 11})
	acts := s.Step(EvTimer{Kind: TimerHungry})
	first := sent911s(acts)[0].M.ReqID
	acts = s.Step(EvTimer{Kind: TimerStarvingRetry})
	second := sent911s(acts)[0].M.ReqID
	if second <= first {
		t.Fatalf("retry reqID %d not fresher than %d", second, first)
	}
	// A stale reply for the first round is ignored.
	acts = s.Step(Ev911ReplyReceived{M: wire.Msg911Reply{From: 2, ReqID: first, Grant: true}})
	s.Step(Ev911ReplyReceived{M: wire.Msg911Reply{From: 3, ReqID: first, Grant: true}})
	if s.State() != Starving {
		t.Fatal("stale-round grants regenerated the token")
	}
	_ = acts
}

func TestDuplicateJoinRequestsAdmitOnce(t *testing.T) {
	s := newStarted(t, 1)
	s.Step(Ev911Received{M: wire.Msg911{From: 9, ReqID: 1}})
	acts := s.Step(Ev911Received{M: wire.Msg911{From: 9, ReqID: 2}})
	count := 0
	for _, m := range s.Members() {
		if m == 9 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("joiner appears %d times in membership", count)
	}
	_ = acts
}

func TestMergeConcatenatesAttachedMessages(t *testing.T) {
	// The paper's merge rule: "concatenate the multicast messages
	// attached to the two tokens" (§2.4). Build the situation directly:
	// our token and an arriving TBM token both carry in-flight messages;
	// after the merge the combined token must carry both, and both are
	// delivered as the merged ring circulates.
	s := New(Config{ID: 1, Eligible: []wire.NodeID{1, 2, 3}})
	s.Step(EvStart{})
	s.Step(EvSubmit{Payload: []byte("from-A")}) // singleton: delivered locally, pruned

	// Queue a second message but keep it attached by making the ring
	// non-singleton first: receive a token for ring {1, 5}.
	receiveRingToken(s, 2, 10, 1, 5)
	s.Step(EvSubmit{Payload: []byte("still-attached-A")})
	if n := len(s.possessed.Msgs); n != 1 {
		t.Fatalf("own token carries %d messages, want 1", n)
	}
	// A TBM token from group {2,3} arrives with its own in-flight message.
	tbm := &wire.Token{Epoch: 3, Seq: 30, TBM: true,
		Members: []wire.NodeID{2, 3, 1},
		Msgs:    []wire.Message{{Origin: 2, Seq: 7, Visited: 1, Payload: []byte("from-B")}}}
	acts := s.Step(EvTokenReceived{From: 2, Tok: tbm})
	if !hasAction[ActMergeCompleted](acts) {
		t.Fatal("merge did not complete")
	}
	// Both messages ride the merged token.
	var carried []string
	for _, m := range s.possessed.Msgs {
		if m.Sys == wire.SysApp {
			carried = append(carried, string(m.Payload))
		}
	}
	want := map[string]bool{"still-attached-A": true, "from-B": true}
	if len(carried) != 2 || !want[carried[0]] || !want[carried[1]] {
		t.Fatalf("merged token carries %v, want both groups' messages", carried)
	}
	// The foreign message was delivered here during the merge ingest.
	sawB := false
	for _, d := range deliveries(acts) {
		if string(d.Payload) == "from-B" {
			sawB = true
		}
	}
	if !sawB {
		t.Fatal("foreign in-flight message not delivered after merge")
	}
}

func TestLargeMulticastBurst(t *testing.T) {
	// A burst much larger than one round's capacity drains completely
	// and in order.
	ids := []wire.NodeID{1, 2, 3}
	c := newCluster(t, defaultCfg(ids...), ids...)
	c.assemble()
	const burst = 200
	for i := 0; i < burst; i++ {
		c.inject(2, EvSubmit{Payload: []byte(fmt.Sprintf("b%03d", i))})
	}
	c.run(5 * time.Second)
	for _, id := range c.live() {
		got := appPayloads(c.nodes[id])
		if len(got) != burst {
			t.Fatalf("node %v delivered %d of %d", id, len(got), burst)
		}
		for i, p := range got {
			if p != fmt.Sprintf("b%03d", i) {
				t.Fatalf("node %v out of order at %d: %q", id, i, p)
			}
		}
	}
}

func TestSafeMessageSurvivesMemberRemoval(t *testing.T) {
	// A safe message in its collect phase when a member dies must still
	// be delivered to all survivors (the visited threshold shrinks with
	// the membership).
	ids := []wire.NodeID{1, 2, 3, 4}
	c := newCluster(t, defaultCfg(ids...), ids...)
	c.assemble()
	c.inject(1, EvSubmit{Payload: []byte("safe-under-churn"), Safe: true})
	c.run(3 * time.Millisecond) // partial collect round
	c.crash(3)
	c.run(3 * time.Second)
	for _, id := range c.live() {
		found := false
		for _, p := range appPayloads(c.nodes[id]) {
			if p == "safe-under-churn" {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %v missed the safe message after churn", id)
		}
	}
}

func TestGroupIDFollowsMembership(t *testing.T) {
	ids := []wire.NodeID{3, 5, 9}
	c := newCluster(t, defaultCfg(ids...), ids...)
	c.assemble()
	for _, id := range c.live() {
		if gid := c.nodes[id].sm.GroupID(); gid != 3 {
			t.Fatalf("group ID = %v, want 3", gid)
		}
	}
	c.crash(3)
	c.run(2 * time.Second)
	for _, id := range c.live() {
		if gid := c.nodes[id].sm.GroupID(); gid != 5 {
			t.Fatalf("group ID after leader death = %v, want 5", gid)
		}
	}
}

func TestTimerKindStrings(t *testing.T) {
	for k := TimerKind(0); k < numTimers; k++ {
		if k.String() == "unknown" {
			t.Fatalf("timer kind %d has no name", k)
		}
	}
	if TimerKind(200).String() != "unknown" {
		t.Fatal("unknown timer kind mislabeled")
	}
}

func TestNodeStateStrings(t *testing.T) {
	for _, s := range []NodeState{Hungry, Eating, Starving, Down} {
		if s.String() == "UNKNOWN" {
			t.Fatalf("state %d has no name", s)
		}
	}
	if NodeState(99).String() != "UNKNOWN" {
		t.Fatal("unknown state mislabeled")
	}
}
