package ring

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/wire"
)

// These tests drive full clusters of state machines through the paper's
// scenarios on the deterministic virtual-time harness.

func TestClusterAssemblesThroughDiscovery(t *testing.T) {
	// Four singleton groups discover each other through BODYODOR beacons
	// and merge into one ring (§2.4).
	c := newCluster(t, defaultCfg(1, 2, 3, 4), 1, 2, 3, 4)
	c.assemble()
	// The group ID is the lowest node ID.
	for _, id := range c.live() {
		if gid := c.nodes[id].sm.GroupID(); gid != 1 {
			t.Fatalf("node %v group ID = %v, want 1", id, gid)
		}
	}
}

func TestMulticastAtomicityAndOrder(t *testing.T) {
	c := newCluster(t, defaultCfg(1, 2, 3, 4), 1, 2, 3, 4)
	c.assemble()
	want := map[string]bool{}
	for i, id := range []wire.NodeID{1, 2, 3, 4} {
		p := fmt.Sprintf("msg-%d-from-%v", i, id)
		want[p] = true
		c.inject(id, EvSubmit{Payload: []byte(p)})
	}
	c.run(time.Second)
	c.requireAtomicDelivery(want)
	c.requireConsistentOrder()
}

func TestSafeMulticastDeliversEverywhere(t *testing.T) {
	c := newCluster(t, defaultCfg(1, 2, 3), 1, 2, 3)
	c.assemble()
	c.inject(2, EvSubmit{Payload: []byte("safe-one"), Safe: true})
	c.run(time.Second)
	c.requireAtomicDelivery(map[string]bool{"safe-one": true})
	for _, id := range c.live() {
		for _, m := range c.nodes[id].delivered {
			if m.Sys == wire.SysApp && !m.Safe {
				t.Fatalf("node %v delivered message without safe flag", id)
			}
		}
	}
}

func TestSafeDeliveryLagsAgreedDelivery(t *testing.T) {
	// The safe message needs roughly one extra token round (§2.6): nodes
	// other than the last must deliver the agreed message strictly before
	// the safe one submitted at the same instant.
	c := newCluster(t, defaultCfg(1, 2, 3, 4), 1, 2, 3, 4)
	c.assemble()
	c.inject(1, EvSubmit{Payload: []byte("agreed"), Safe: false})
	c.inject(1, EvSubmit{Payload: []byte("safe"), Safe: true})
	c.run(time.Second)
	c.requireAtomicDelivery(map[string]bool{"agreed": true, "safe": true})
	for _, id := range c.live() {
		got := appPayloads(c.nodes[id])
		if len(got) != 2 || got[0] != "agreed" || got[1] != "safe" {
			t.Fatalf("node %v order = %v, want [agreed safe]", id, got)
		}
	}
}

func TestCrashDetectedAndMembershipShrinks(t *testing.T) {
	c := newCluster(t, defaultCfg(1, 2, 3, 4), 1, 2, 3, 4)
	c.assemble()
	c.crash(3)
	c.run(2 * time.Second)
	c.requireMembershipAgreement() // live = {1,2,4}
	c.requireSingleToken()
	// Survivors keep multicasting.
	c.inject(1, EvSubmit{Payload: []byte("after-crash")})
	c.run(time.Second)
	c.requireAtomicDelivery(map[string]bool{"after-crash": true})
}

func TestTokenHolderCrashTriggers911Regeneration(t *testing.T) {
	c := newCluster(t, defaultCfg(1, 2, 3, 4), 1, 2, 3, 4)
	c.assemble()
	// Crash whoever holds the token right now (and is not mid-pass, so
	// the token genuinely dies with it).
	var holder wire.NodeID
	for i := 0; i < 100 && holder == wire.NoNode; i++ {
		for _, id := range c.live() {
			sm := c.nodes[id].sm
			if sm.HasToken() && !sm.passing {
				holder = id
				break
			}
		}
		if holder == wire.NoNode {
			c.run(time.Millisecond)
		}
	}
	if holder == wire.NoNode {
		t.Fatal("no settled token holder found")
	}
	c.crash(holder)
	c.run(3 * time.Second)
	c.requireMembershipAgreement()
	c.requireSingleToken()
	regens := 0
	for _, id := range c.live() {
		regens += c.nodes[id].regens
	}
	if regens == 0 {
		t.Fatal("token-holder crash did not regenerate via 911")
	}
	// Exactly one node won the regeneration race.
	if regens > 1 {
		t.Fatalf("%d regenerations, want exactly 1", regens)
	}
}

func TestMessagesSurviveTokenRegeneration(t *testing.T) {
	// A message in flight when the holder dies must still reach all
	// surviving members (atomicity, §2.6): the freshest copy carries it.
	c := newCluster(t, defaultCfg(1, 2, 3, 4), 1, 2, 3, 4)
	c.assemble()
	c.inject(2, EvSubmit{Payload: []byte("survivor")})
	c.run(8 * time.Millisecond) // partial circulation
	var holder wire.NodeID
	for _, id := range c.live() {
		if c.nodes[id].sm.HasToken() {
			holder = id
		}
	}
	if holder == 2 {
		t.Skip("submitter still holds the token; scenario needs it in flight")
	}
	if holder != wire.NoNode {
		c.crash(holder)
	}
	c.run(3 * time.Second)
	want := map[string]bool{"survivor": true}
	for _, id := range c.live() {
		got := appPayloads(c.nodes[id])
		if len(got) != 1 || got[0] != "survivor" {
			t.Fatalf("node %v delivered %v, want [survivor]", id, got)
		}
	}
	_ = want
}

func TestFalseAlarmNodeRejoins(t *testing.T) {
	// Cut both links around node 3's position long enough for it to be
	// removed, then restore: its 911 is treated as a join request and it
	// automatically rejoins (§2.3).
	c := newCluster(t, defaultCfg(1, 2, 3), 1, 2, 3)
	c.assemble()
	c.partition([]wire.NodeID{1, 2}, []wire.NodeID{3})
	c.run(500 * time.Millisecond)
	// Node 3 was removed from the main group's view.
	for _, id := range []wire.NodeID{1, 2} {
		for _, m := range c.nodes[id].sm.Members() {
			if m == 3 {
				t.Fatalf("node %v still lists 3 after partition", id)
			}
		}
	}
	c.heal()
	c.run(2 * time.Second)
	c.requireMembershipAgreement() // all three again
	c.requireSingleToken()
}

func TestPartitionSplitsAndMergesBack(t *testing.T) {
	c := newCluster(t, defaultCfg(1, 2, 3, 4), 1, 2, 3, 4)
	c.assemble()
	c.partition([]wire.NodeID{1, 2}, []wire.NodeID{3, 4})
	c.run(2 * time.Second)
	// Both sides keep functioning with their own tokens (§2.4).
	sideA := wire.SortedIDs(c.nodes[1].sm.Members())
	sideB := wire.SortedIDs(c.nodes[3].sm.Members())
	if fmt.Sprint(sideA) != "[n1 n2]" {
		t.Fatalf("side A membership = %v, want [1 2]", sideA)
	}
	if fmt.Sprint(sideB) != "[n3 n4]" {
		t.Fatalf("side B membership = %v, want [3 4]", sideB)
	}
	// Messages multicast inside each partition are delivered there.
	c.inject(1, EvSubmit{Payload: []byte("in-A")})
	c.inject(3, EvSubmit{Payload: []byte("in-B")})
	c.run(time.Second)
	// Heal: discovery + merge reunify the group.
	c.heal()
	c.run(3 * time.Second)
	c.requireMembershipAgreement()
	c.requireSingleToken()
	merges := 0
	for _, id := range c.live() {
		merges += c.nodes[id].merges
	}
	if merges == 0 {
		t.Fatal("no merge happened after heal")
	}
	// Post-merge multicasts reach everyone.
	c.inject(4, EvSubmit{Payload: []byte("after-merge")})
	c.run(time.Second)
	for _, id := range c.live() {
		found := false
		for _, p := range appPayloads(c.nodes[id]) {
			if p == "after-merge" {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %v missed the post-merge multicast", id)
		}
	}
	c.requireConsistentOrder()
}

func TestThreeWayPartitionMerge(t *testing.T) {
	// Three sub-groups re-merge without deadlock thanks to the group-ID
	// ordering (§2.4).
	c := newCluster(t, defaultCfg(1, 2, 3, 4, 5, 6), 1, 2, 3, 4, 5, 6)
	c.assemble()
	c.partition([]wire.NodeID{1, 2}, []wire.NodeID{3, 4}, []wire.NodeID{5, 6})
	c.run(2 * time.Second)
	c.heal()
	c.run(4 * time.Second)
	c.requireMembershipAgreement()
	c.requireSingleToken()
}

func TestMasterLockMutualExclusion(t *testing.T) {
	c := newCluster(t, defaultCfg(1, 2, 3), 1, 2, 3)
	c.assemble()
	c.inject(1, EvHoldRequest{})
	c.inject(2, EvHoldRequest{})
	c.run(time.Second)
	// Both were eventually granted (the token circulates fairly) but
	// never simultaneously: whenever one held, the other had no token.
	total := c.nodes[1].holds + c.nodes[2].holds
	if total == 0 {
		t.Fatal("no hold ever granted")
	}
	eating := 0
	for _, id := range c.live() {
		if c.nodes[id].sm.HasToken() {
			eating++
		}
	}
	if eating > 1 {
		t.Fatalf("%d nodes hold the token", eating)
	}
	// Release both; the ring resumes.
	c.inject(1, EvHoldRelease{})
	c.inject(2, EvHoldRelease{})
	c.run(time.Second)
	c.requireSingleToken()
}

func TestLockFairnessBothGranted(t *testing.T) {
	c := newCluster(t, defaultCfg(1, 2), 1, 2)
	c.assemble()
	// Node 1 locks, then releases; node 2 must get its turn.
	c.inject(1, EvHoldRequest{})
	c.run(200 * time.Millisecond)
	if c.nodes[1].holds != 1 {
		t.Fatalf("node 1 holds = %d, want 1", c.nodes[1].holds)
	}
	c.inject(2, EvHoldRequest{})
	c.inject(1, EvHoldRelease{})
	c.run(500 * time.Millisecond)
	if c.nodes[2].holds != 1 {
		t.Fatalf("node 2 holds = %d, want 1 after node 1 released", c.nodes[2].holds)
	}
}

func TestVoluntaryLeave(t *testing.T) {
	c := newCluster(t, defaultCfg(1, 2, 3), 1, 2, 3)
	c.assemble()
	c.inject(2, EvLeave{})
	c.run(2 * time.Second)
	c.requireMembershipAgreement() // {1, 3}
	c.requireSingleToken()
}

func TestCrashedNodeRestartsAndRejoins(t *testing.T) {
	c := newCluster(t, defaultCfg(1, 2, 3), 1, 2, 3)
	c.assemble()
	c.crash(2)
	c.run(time.Second)
	c.requireMembershipAgreement() // {1, 3}
	c.revive(2)
	c.run(3 * time.Second)
	c.requireMembershipAgreement() // {1, 2, 3} again via discovery/join
	c.requireSingleToken()
}

func TestSequentialCrashesDownToOne(t *testing.T) {
	c := newCluster(t, defaultCfg(1, 2, 3, 4), 1, 2, 3, 4)
	c.assemble()
	for _, victim := range []wire.NodeID{4, 3, 2} {
		c.crash(victim)
		c.run(2 * time.Second)
		c.requireMembershipAgreement()
		c.requireSingleToken()
	}
	if got := c.nodes[1].sm.Members(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("final membership = %v, want [1]", got)
	}
	// The last survivor still serves multicasts.
	c.inject(1, EvSubmit{Payload: []byte("alone")})
	c.run(100 * time.Millisecond)
	found := false
	for _, p := range appPayloads(c.nodes[1]) {
		if p == "alone" {
			found = true
		}
	}
	if !found {
		t.Fatal("singleton multicast lost")
	}
}

func TestHeavyMulticastLoadStaysConsistent(t *testing.T) {
	c := newCluster(t, defaultCfg(1, 2, 3, 4, 5), 1, 2, 3, 4, 5)
	c.assemble()
	want := map[string]bool{}
	for round := 0; round < 20; round++ {
		for _, id := range c.live() {
			p := fmt.Sprintf("r%d-%v", round, id)
			want[p] = true
			c.inject(id, EvSubmit{Payload: []byte(p)})
		}
		c.run(10 * time.Millisecond)
	}
	c.run(2 * time.Second)
	c.requireAtomicDelivery(want)
	c.requireConsistentOrder()
}

func TestQuorumPolicyShutsMinoritySideDown(t *testing.T) {
	// With MinQuorum = 3 on a 4-node cluster, a 1-3 partition shuts the
	// singleton side down (§2.4's quorum-decider strategy).
	cfg := func(id wire.NodeID) Config {
		c := defaultCfg(1, 2, 3, 4)(id)
		c.MinQuorum = 3
		return c
	}
	c := newCluster(t, cfg, 1, 2, 3, 4)
	c.assemble()
	c.partition([]wire.NodeID{1}, []wire.NodeID{2, 3, 4})
	c.run(2 * time.Second)
	if !c.nodes[1].shutdown {
		t.Fatal("minority node did not shut down below quorum")
	}
	live := c.live()
	if len(live) != 3 {
		t.Fatalf("live = %v, want the majority trio", live)
	}
	c.requireMembershipAgreement()
	c.requireSingleToken()
}
