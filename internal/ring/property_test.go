package ring

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/wire"
)

// Property tests: random fault schedules (crashes, revivals, partitions,
// heals) interleaved with multicasts must preserve the paper's guarantees
// once the system reaches a quiescent period (§2.5, §2.6):
//
//   P1  membership agreement: all live, mutually reachable nodes agree on
//       the membership, which equals the live set;
//   P2  single token: the group converges to exactly one token;
//   P3  exactly-once delivery: no node delivers a message twice;
//   P4  agreed ordering: any two nodes deliver common messages in the
//       same relative order;
//   P5  atomicity for quiescent-period messages: a message submitted
//       after the last fault is delivered by every live node.

func runChaos(t *testing.T, seed int64) {
	ids := []wire.NodeID{1, 2, 3, 4, 5}
	c := newCluster(t, defaultCfg(ids...), ids...)
	c.rng = rand.New(rand.NewSource(seed))
	c.startAll()
	c.run(time.Second)

	crashed := map[wire.NodeID]bool{}
	msgSeq := 0
	submit := func() {
		live := c.live()
		if len(live) == 0 {
			return
		}
		id := live[c.rng.Intn(len(live))]
		msgSeq++
		c.inject(id, EvSubmit{
			Payload: []byte(fmt.Sprintf("chaos-%d", msgSeq)),
			Safe:    c.rng.Intn(4) == 0,
		})
	}

	for step := 0; step < 25; step++ {
		switch c.rng.Intn(6) {
		case 0: // crash someone (keep at least two nodes up)
			if len(c.live()) > 2 {
				victim := c.live()[c.rng.Intn(len(c.live()))]
				c.crash(victim)
				crashed[victim] = true
			}
		case 1: // revive someone
			for id := range crashed {
				c.revive(id)
				delete(crashed, id)
				break
			}
		case 2: // partition in two
			k := 1 + c.rng.Intn(len(ids)-1)
			c.partition(ids[:k], ids[k:])
		case 3: // heal
			c.heal()
		default:
			submit()
		}
		c.run(time.Duration(10+c.rng.Intn(100)) * time.Millisecond)

		// P3 holds at every step, even mid-fault.
		for _, id := range c.live() {
			seen := map[wire.MessageID]bool{}
			for _, m := range c.nodes[id].delivered {
				if seen[m.ID()] {
					t.Fatalf("seed %d step %d: node %v delivered %v twice", seed, step, id, m.ID())
				}
				seen[m.ID()] = true
			}
		}
	}

	// End of faults: heal everything, revive everyone, let it settle.
	c.heal()
	for id := range crashed {
		c.revive(id)
	}
	c.run(5 * time.Second)

	c.requireMembershipAgreement() // P1
	c.requireSingleToken()         // P2

	// P4 + P5 for quiescent-period messages. (Agreed ordering is a
	// per-group guarantee: messages delivered inside different
	// partitions have no global order, so the order check is performed
	// on probes submitted after the final heal.)
	probes := map[wire.MessageID]bool{}
	live := c.live()
	for i := 0; i < 3; i++ {
		origin := live[i%len(live)]
		before := appIDs(c.nodes[origin])
		c.inject(origin, EvSubmit{Payload: []byte(fmt.Sprintf("probe-%d", i))})
		c.run(500 * time.Millisecond)
		after := appIDs(c.nodes[origin])
		for _, id := range after[len(before):] {
			probes[id] = true
		}
	}
	c.run(2 * time.Second)
	filterProbes := func(n *simNode) []wire.MessageID {
		var out []wire.MessageID
		for _, id := range appIDs(n) {
			if probes[id] {
				out = append(out, id)
			}
		}
		return out
	}
	for _, id := range c.live() {
		got := filterProbes(c.nodes[id])
		if len(got) != 3 {
			t.Fatalf("seed %d: node %v delivered %d of 3 quiescent probes", seed, id, len(got))
		}
	}
	for i := 0; i < len(live); i++ {
		for j := i + 1; j < len(live); j++ {
			a, b := filterProbes(c.nodes[live[i]]), filterProbes(c.nodes[live[j]])
			if !sameRelativeOrder(a, b) {
				t.Fatalf("seed %d: probe order differs between %v (%v) and %v (%v)",
					seed, live[i], a, live[j], b)
			}
		}
	}
}

func TestChaosInvariants(t *testing.T) {
	for seed := int64(1); seed <= 150; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaos(t, seed)
		})
	}
}

// TestRepeatedPartitionHealCycles stresses the merge protocol specifically.
func TestRepeatedPartitionHealCycles(t *testing.T) {
	ids := []wire.NodeID{1, 2, 3, 4}
	c := newCluster(t, defaultCfg(ids...), ids...)
	c.assemble()
	for cycle := 0; cycle < 8; cycle++ {
		k := 1 + cycle%3
		c.partition(ids[:k], ids[k:])
		c.run(800 * time.Millisecond)
		c.heal()
		c.run(2 * time.Second)
		c.requireMembershipAgreement()
		c.requireSingleToken()
	}
}

// TestTokenSeqMonotonicPerEpoch verifies that observed token sequence
// numbers are strictly increasing within an epoch at each node — the
// property underpinning the 911 freshness comparison (§2.3).
func TestTokenSeqMonotonicPerEpoch(t *testing.T) {
	ids := []wire.NodeID{1, 2, 3}
	c := newCluster(t, defaultCfg(ids...), ids...)
	c.assemble()
	type es struct{ e, s uint64 }
	last := map[wire.NodeID]es{}
	for i := 0; i < 300; i++ {
		c.run(time.Millisecond)
		for _, id := range c.live() {
			sm := c.nodes[id].sm
			cur := es{sm.copyEpoch, sm.copySeq}
			prev := last[id]
			if cur.e < prev.e {
				t.Fatalf("node %v epoch went backwards: %d -> %d", id, prev.e, cur.e)
			}
			if cur.e == prev.e && cur.s < prev.s {
				t.Fatalf("node %v seq went backwards within epoch %d: %d -> %d", id, cur.e, prev.s, cur.s)
			}
			last[id] = cur
		}
	}
}

// TestNoDeliveryToDownNodes confirms a shutdown node stops delivering.
func TestNoDeliveryToDownNodes(t *testing.T) {
	ids := []wire.NodeID{1, 2, 3}
	c := newCluster(t, defaultCfg(ids...), ids...)
	c.assemble()
	c.inject(3, EvLeave{})
	c.run(time.Second)
	before := len(c.nodes[3].delivered)
	c.inject(1, EvSubmit{Payload: []byte("post-leave")})
	c.run(time.Second)
	if after := len(c.nodes[3].delivered); after != before {
		t.Fatalf("departed node received %d new deliveries", after-before)
	}
}
