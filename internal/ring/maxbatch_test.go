package ring

import (
	"fmt"
	"testing"

	"repro/internal/wire"
)

// TestMaxBatchBoundsAttachmentsPerHop submits more messages than the batch
// bound and checks each token visit attaches at most MaxBatch, draining
// the backlog over successive visits in FIFO order.
func TestMaxBatchBoundsAttachmentsPerHop(t *testing.T) {
	s := New(Config{ID: 2, MaxBatch: 3})
	s.Step(EvStart{})
	var attached []string
	visit := func(seq uint64) int {
		tok := &wire.Token{Epoch: 5, Seq: seq, Members: []wire.NodeID{1, 2, 3}}
		s.Step(EvTokenReceived{From: 1, Tok: tok})
		acts := s.Step(EvTimer{Kind: TimerTokenHold})
		sent := sentTokens(acts)
		if len(sent) != 1 {
			t.Fatalf("visit seq=%d: %d tokens sent, want 1", seq, len(sent))
		}
		n := 0
		for _, m := range sent[0].Tok.Msgs {
			if m.Origin == 2 {
				attached = append(attached, string(m.Payload))
				n++
			}
		}
		// Complete the pass so the next visit finds the node idle.
		s.Step(EvTokenAcked{To: sent[0].To, Epoch: sent[0].Tok.Epoch, Seq: sent[0].Tok.Seq})
		return n
	}
	// First visit adopts the ring membership and hands the token off, so
	// the backlog below queues while the token is elsewhere.
	if got := visit(1); got != 0 {
		t.Fatalf("assembly visit attached %d, want 0", got)
	}
	for i := 0; i < 8; i++ {
		s.Step(EvSubmit{Payload: []byte(fmt.Sprintf("m%d", i))})
	}
	// Token visits: 3 + 3 + 2, never more than MaxBatch per hop. Between
	// visits the token is elsewhere, so each visit sees a fresh token
	// (older attachments pruned after their full round).
	if got := visit(10); got != 3 {
		t.Fatalf("first visit attached %d, want 3", got)
	}
	if got := visit(20); got != 3 {
		t.Fatalf("second visit attached %d, want 3", got)
	}
	if got := visit(30); got != 2 {
		t.Fatalf("third visit attached %d, want 2", got)
	}
	for i, p := range attached {
		if want := fmt.Sprintf("m%d", i); p != want {
			t.Fatalf("attachment %d = %q, want %q (FIFO violated)", i, p, want)
		}
	}
}

// TestMaxBatchCapsSubmitsDuringPossession checks the budget is per token
// possession, not per attach call: submissions arriving while the node
// holds the token attach immediately only until the budget is spent.
func TestMaxBatchCapsSubmitsDuringPossession(t *testing.T) {
	s := New(Config{ID: 2, MaxBatch: 3})
	s.Step(EvStart{})
	// Receive the ring token and keep holding it (no hold-timer fire).
	s.Step(EvTokenReceived{From: 1, Tok: &wire.Token{Epoch: 5, Seq: 1, Members: []wire.NodeID{1, 2, 3}}})
	var immediate int
	for i := 0; i < 10; i++ {
		immediate += len(deliveries(s.Step(EvSubmit{Payload: []byte("x")})))
	}
	if immediate != 3 {
		t.Fatalf("%d immediate attach-deliveries while holding, want 3 (the budget)", immediate)
	}
	// Passing and re-acquiring refreshes the budget and drains the rest.
	sent := sentTokens(s.Step(EvTimer{Kind: TimerTokenHold}))
	if len(sent) != 1 {
		t.Fatalf("%d tokens sent, want 1", len(sent))
	}
	s.Step(EvTokenAcked{To: sent[0].To, Epoch: sent[0].Tok.Epoch, Seq: sent[0].Tok.Seq})
	next := deliveries(s.Step(EvTokenReceived{From: 1, Tok: &wire.Token{Epoch: 5, Seq: 9, Members: []wire.NodeID{1, 2, 3}}}))
	if len(next) != 3 {
		t.Fatalf("next possession attached %d, want 3", len(next))
	}
}

// TestMaxBatchExemptsMasterLockHolder guards the no-deadlock guarantee: a
// node pinning the token under the master lock must be able to attach (and
// so locally deliver) more than MaxBatch multicasts, or an application
// waiting on its own multicast before releasing the lock would hang the
// whole ring.
func TestMaxBatchExemptsMasterLockHolder(t *testing.T) {
	s := New(Config{ID: 2, MaxBatch: 3})
	s.Step(EvStart{})
	s.Step(EvTokenReceived{From: 1, Tok: &wire.Token{Epoch: 5, Seq: 1, Members: []wire.NodeID{1, 2, 3}}})
	if !hasAction[ActHoldGranted](s.Step(EvHoldRequest{})) {
		t.Fatal("master lock not granted while possessing the token")
	}
	var got int
	for i := 0; i < 10; i++ {
		got += len(deliveries(s.Step(EvSubmit{Payload: []byte("x")})))
	}
	if got != 10 {
		t.Fatalf("lock holder attach-delivered %d of 10 submissions; budget must not apply while pinned", got)
	}
}

// TestMaxBatchResetOn911Regeneration guards the other possession-start
// path: a node that exhausts its budget, passes the token, loses it, and
// regenerates via 911 must begin the regenerated possession with a fresh
// budget, not the stale exhausted one.
func TestMaxBatchResetOn911Regeneration(t *testing.T) {
	s := New(Config{ID: 1, MaxBatch: 3})
	s.Step(EvStart{})
	// Join a ring, exhaust the budget, pass the token on.
	s.Step(EvTokenReceived{From: 2, Tok: &wire.Token{Epoch: 2, Seq: 10, Members: []wire.NodeID{1, 2, 3}}})
	for i := 0; i < 3; i++ {
		s.Step(EvSubmit{Payload: []byte("x")})
	}
	sent := sentTokens(s.Step(EvTimer{Kind: TimerTokenHold}))
	if len(sent) != 1 {
		t.Fatalf("%d tokens sent, want 1", len(sent))
	}
	s.Step(EvTokenAcked{To: sent[0].To, Epoch: sent[0].Tok.Epoch, Seq: sent[0].Tok.Seq})
	// Token lost: starve and regenerate with unanimous grants.
	acts := s.Step(EvTimer{Kind: TimerHungry})
	reqID := sent911s(acts)[0].M.ReqID
	s.Step(Ev911ReplyReceived{M: wire.Msg911Reply{From: 2, ReqID: reqID, Grant: true}})
	acts = s.Step(Ev911ReplyReceived{M: wire.Msg911Reply{From: 3, ReqID: reqID, Grant: true}})
	if !hasAction[ActTokenRegenerated](acts) {
		t.Fatal("unanimous grants did not regenerate")
	}
	// The regenerated possession must accept a full fresh batch.
	var delivered int
	for i := 0; i < 3; i++ {
		delivered += len(deliveries(s.Step(EvSubmit{Payload: []byte("y")})))
	}
	if delivered != 3 {
		t.Fatalf("regenerated possession attached %d of 3, want a fresh budget", delivered)
	}
}

// TestMaxBatchIgnoredBySingleton checks a singleton ring delivers its
// whole backlog immediately regardless of the bound: its token never
// travels, so there is no frame to protect.
func TestMaxBatchIgnoredBySingleton(t *testing.T) {
	s := New(Config{ID: 1, MaxBatch: 2})
	s.Step(EvStart{})
	var got int
	for i := 0; i < 7; i++ {
		acts := s.Step(EvSubmit{Payload: []byte("x")})
		got += len(deliveries(acts))
	}
	if got != 7 {
		t.Fatalf("singleton delivered %d of 7 submissions", got)
	}
}

// TestZeroMaxBatchUnlimited checks the default keeps the previous
// attach-everything behavior.
func TestZeroMaxBatchUnlimited(t *testing.T) {
	s := New(Config{ID: 2})
	s.Step(EvStart{})
	// Adopt the ring and hand the token off so submissions queue.
	s.Step(EvTokenReceived{From: 1, Tok: &wire.Token{Epoch: 5, Seq: 1, Members: []wire.NodeID{1, 2}}})
	first := sentTokens(s.Step(EvTimer{Kind: TimerTokenHold}))
	if len(first) != 1 {
		t.Fatalf("%d tokens sent on assembly pass, want 1", len(first))
	}
	s.Step(EvTokenAcked{To: first[0].To, Epoch: first[0].Tok.Epoch, Seq: first[0].Tok.Seq})
	for i := 0; i < 50; i++ {
		s.Step(EvSubmit{Payload: []byte("x")})
	}
	tok := &wire.Token{Epoch: 5, Seq: 10, Members: []wire.NodeID{1, 2}}
	s.Step(EvTokenReceived{From: 1, Tok: tok})
	acts := s.Step(EvTimer{Kind: TimerTokenHold})
	sent := sentTokens(acts)
	if len(sent) != 1 {
		t.Fatalf("%d tokens sent, want 1", len(sent))
	}
	mine := 0
	for _, m := range sent[0].Tok.Msgs {
		if m.Origin == 2 {
			mine++
		}
	}
	if mine != 50 {
		t.Fatalf("attached %d, want all 50", mine)
	}
}
