package ring

import (
	"fmt"
	"time"

	"repro/internal/wire"
)

// Config parameterizes one node's protocol instance. Durations follow the
// paper's regime: the token circulates at a regular interval (§2.2), the
// HUNGRY timeout triggers the 911 protocol (§2.3), and BODYODOR beacons
// run at a low frequency (§2.4).
type Config struct {
	// ID is this node's identity. Must be non-zero.
	ID wire.NodeID
	// TokenHold is how long the node keeps the token before passing it.
	TokenHold time.Duration
	// HungryTimeout is how long HUNGRY lasts before STARVING.
	HungryTimeout time.Duration
	// StarvingRetry is the period between 911 rounds while starving.
	StarvingRetry time.Duration
	// BodyodorInterval paces discovery beacons. Zero disables discovery.
	BodyodorInterval time.Duration
	// MergeTimeout bounds how long a group that handed its token away
	// for a merge vouches for it. Zero derives 4x HungryTimeout.
	MergeTimeout time.Duration
	// Eligible is the eligible membership (§2.4), this node included.
	Eligible []wire.NodeID
	// MinQuorum, when > 0, shuts the node down if the membership drops
	// below this size — the paper's quorum-decider strategy (§2.4).
	MinQuorum int
	// MaxBatch, when > 0, bounds how many queued multicasts this node
	// attaches to the token per hop; the rest wait for the next visit.
	// Bounding the batch keeps token frames within datagram limits and
	// gives each ring a deterministic per-hop throughput ceiling (which
	// the E5 shard-scaling benchmark measures against). Zero means
	// unlimited. Singleton rings ignore the bound: their token never
	// travels, so batching has nothing to protect. A master-lock holder
	// (§2.7) is also exempt — capping it would deadlock an application
	// that awaits its own multicast before unlocking — so everything it
	// submits during the hold travels in one frame on release; do not
	// bulk-multicast under the lock if datagram size is the reason for
	// the bound. Oversized frames no longer destroy the pass — the
	// runtime chunks them across datagrams — but the budget is still what
	// keeps steady-state tokens single-datagram.
	MaxBatch int
	// AdaptiveBatch lets the runtime retune the attach budget online via
	// EvSetBatchBudget, from observed token round-trip time and datagram
	// headroom. MaxBatch then serves as the initial (and minimum) budget;
	// zero MaxBatch with AdaptiveBatch starts unlimited until the first
	// adjustment arrives.
	AdaptiveBatch bool
	// SeqBase seeds this node's per-origin multicast sequence numbers.
	// It must be higher than any sequence the node used in a previous
	// incarnation, or peers will suppress its messages as duplicates;
	// the runtime derives it from the wall clock.
	SeqBase uint64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.TokenHold <= 0 {
		out.TokenHold = 10 * time.Millisecond
	}
	if out.HungryTimeout <= 0 {
		out.HungryTimeout = 50 * time.Millisecond
	}
	if out.StarvingRetry <= 0 {
		out.StarvingRetry = out.HungryTimeout
	}
	if out.MergeTimeout <= 0 {
		out.MergeTimeout = 4 * out.HungryTimeout
	}
	return out
}

// outMsg is an application multicast waiting for the token.
type outMsg struct {
	payload []byte
	safe    bool
}

// SM is the protocol state machine for one node. It is not safe for
// concurrent use; the runtime serializes events.
type SM struct {
	cfg Config
	id  wire.NodeID

	state   NodeState
	members []wire.NodeID

	// Token possession. possessed is non-nil while this node holds the
	// live token, including the window where a pass awaits its transport
	// acknowledgement (the token must survive a failed pass, §2.2).
	possessed *wire.Token
	passing   bool
	passTBM   bool
	passTo    wire.NodeID
	passEpoch uint64
	passSeq   uint64

	// copyEpoch/copySeq identify the freshest token state this node has
	// seen or sent; tokenCopy is the local copy kept for 911
	// regeneration (§2.3).
	copyEpoch uint64
	copySeq   uint64
	tokenCopy *wire.Token

	// Multicast bookkeeping.
	nextSeq   uint64 // per-origin sequence for our own messages
	outbox    []outMsg
	delivered map[wire.MessageID]bool
	highWater map[wire.NodeID]uint64
	// attachUsed counts outbox attachments during the current token
	// possession; the batch budget bounds it per possession, not per
	// attachOutbox call, so submissions arriving while the token is
	// held cannot bypass the per-hop budget.
	attachUsed int
	// batchBudget is the runtime-tuned attach budget (EvSetBatchBudget);
	// zero falls back to cfg.MaxBatch. Only honored with AdaptiveBatch.
	batchBudget int

	// Master lock (§2.7).
	holdRequested bool
	holding       bool

	// 911 state (§2.3).
	reqID        uint64
	grants       map[wire.NodeID]bool
	unreachable  map[wire.NodeID]bool
	denied       bool
	pendingJoins []wire.NodeID
	// joining marks a rejoin boot (EvStartJoining): the node holds no
	// token and runs join rounds against its eligible peers instead of
	// member 911 rounds, until a token admits it or it seeds a group.
	joining bool

	// Discovery / merge state (§2.4).
	eligible      map[wire.NodeID]bool
	pendingMerges []wire.NodeID
	tbmTokens     []*wire.Token
	mergePending  bool

	stopped bool
}

// New constructs a state machine. Call Step(EvStart{}) to boot it.
func New(cfg Config) *SM {
	if cfg.ID == wire.NoNode {
		panic("ring: Config.ID must be non-zero")
	}
	c := cfg.withDefaults()
	s := &SM{
		cfg:       c,
		id:        c.ID,
		state:     Down,
		nextSeq:   c.SeqBase,
		delivered: make(map[wire.MessageID]bool),
		highWater: make(map[wire.NodeID]uint64),
		eligible:  make(map[wire.NodeID]bool),
	}
	for _, e := range c.Eligible {
		if e != c.ID {
			s.eligible[e] = true
		}
	}
	return s
}

// ID returns the node's identity.
func (s *SM) ID() wire.NodeID { return s.id }

// State returns the current protocol state.
func (s *SM) State() NodeState { return s.state }

// Members returns the node's current membership view.
func (s *SM) Members() []wire.NodeID { return append([]wire.NodeID(nil), s.members...) }

// GroupID returns the current group ID: the lowest member ID (§2.4).
func (s *SM) GroupID() wire.NodeID {
	g := wire.NoNode
	for _, m := range s.members {
		if g == wire.NoNode || m < g {
			g = m
		}
	}
	return g
}

// HasToken reports whether the node currently possesses the token.
func (s *SM) HasToken() bool { return s.possessed != nil }

// PossessedToken returns the token this node currently holds, or nil. The
// runtime uses pointer identity to track which receive buffer (if any)
// backs the possessed token's zero-copy payload views; the caller must not
// mutate the token.
func (s *SM) PossessedToken() *wire.Token { return s.possessed }

// BatchBudget returns the attach budget currently in force: the adaptive
// budget when one has been set, cfg.MaxBatch otherwise (0 = unlimited).
func (s *SM) BatchBudget() int {
	if s.cfg.AdaptiveBatch && s.batchBudget > 0 {
		return s.batchBudget
	}
	return s.cfg.MaxBatch
}

// Step applies one event and returns the resulting actions in order.
func (s *SM) Step(ev Event) []Action {
	if s.stopped {
		return nil
	}
	var acts []Action
	switch e := ev.(type) {
	case EvStart:
		s.start(&acts)
	case EvStartJoining:
		s.startJoining(&acts)
	case EvTokenReceived:
		s.onToken(e, &acts)
	case EvTokenAcked:
		s.onTokenAcked(e, &acts)
	case EvTokenSendFailed:
		s.onTokenSendFailed(e, &acts)
	case Ev911Received:
		s.on911(e.M, &acts)
	case Ev911ReplyReceived:
		s.on911Reply(e.M, &acts)
	case Ev911SendFailed:
		s.on911SendFailed(e, &acts)
	case EvBodyodorReceived:
		s.onBodyodor(e.M, &acts)
	case EvForwardReceived:
		s.outbox = append(s.outbox, outMsg{payload: e.M.Payload, safe: e.M.Safe})
		s.flushIfPossessed(&acts)
	case EvTimer:
		s.onTimer(e.Kind, &acts)
	case EvSubmit:
		s.outbox = append(s.outbox, outMsg{payload: e.Payload, safe: e.Safe})
		s.flushIfPossessed(&acts)
	case EvHoldRequest:
		s.holdRequested = true
		if s.state == Eating && !s.passing && !s.holding {
			s.holding = true
			acts = append(acts, ActHoldGranted{})
		}
	case EvHoldRelease:
		s.holdRequested = false
		if s.holding {
			s.holding = false
			if s.possessed != nil && !s.passing {
				s.passToken(&acts)
			}
		}
	case EvLeave:
		s.shutdown("voluntary leave", &acts)
	case EvCriticalResourceFailed:
		s.shutdown(fmt.Sprintf("critical resource failed: %s", e.Resource), &acts)
	case EvSetEligible:
		s.eligible = make(map[wire.NodeID]bool, len(e.IDs))
		for _, id := range e.IDs {
			if id != s.id {
				s.eligible[id] = true
			}
		}
	case EvSetBatchBudget:
		if s.cfg.AdaptiveBatch && e.Budget > 0 {
			b := e.Budget
			// The configured MaxBatch is the floor: adaptation may only
			// raise the budget, never starve below the static setting.
			if s.cfg.MaxBatch > 0 && b < s.cfg.MaxBatch {
				b = s.cfg.MaxBatch
			}
			s.batchBudget = b
		}
	}
	return acts
}

// start boots the node as a singleton group with a fresh token.
func (s *SM) start(acts *[]Action) {
	s.members = []wire.NodeID{s.id}
	tok := &wire.Token{Epoch: 1, Seq: 0, Members: []wire.NodeID{s.id}}
	s.possessed = tok
	s.noteCopy(tok)
	s.setState(Eating, acts)
	*acts = append(*acts, ActMembershipChanged{Members: s.Members(), Epoch: tok.Epoch})
	*acts = append(*acts, ActSetTimer{Kind: TimerTokenHold, D: s.cfg.TokenHold})
	if s.cfg.BodyodorInterval > 0 {
		*acts = append(*acts, ActSetTimer{Kind: TimerBodyodor, D: s.cfg.BodyodorInterval})
	}
}

// startJoining boots the node as a rejoining member (§2.3): tokenless
// and STARVING from the first instant, it runs join rounds against the
// eligible peers until a group's token admits it. tokenCopy seeds the
// epoch-0 singleton the node falls back to when no peer answers — the
// single-node-cluster restart.
func (s *SM) startJoining(acts *[]Action) {
	s.members = []wire.NodeID{s.id}
	s.joining = true
	s.tokenCopy = &wire.Token{Members: []wire.NodeID{s.id}}
	*acts = append(*acts, ActMembershipChanged{Members: s.Members(), Epoch: 0})
	s.setState(Starving, acts)
	s.startJoinRound(acts)
	if s.joining {
		*acts = append(*acts, ActSetTimer{Kind: TimerStarvingRetry, D: s.cfg.StarvingRetry})
	}
	if s.cfg.BodyodorInterval > 0 {
		*acts = append(*acts, ActSetTimer{Kind: TimerBodyodor, D: s.cfg.BodyodorInterval})
	}
}

// setState transitions the protocol state, emitting an action on change.
func (s *SM) setState(st NodeState, acts *[]Action) {
	if s.state == st {
		return
	}
	s.state = st
	*acts = append(*acts, ActStateChanged{State: st})
}

// noteCopy records tok as this node's freshest known token state and keeps
// a deep local copy for 911 regeneration (§2.3).
func (s *SM) noteCopy(tok *wire.Token) {
	s.copyEpoch, s.copySeq = tok.Epoch, tok.Seq
	s.tokenCopy = tok.Clone()
}

// flushIfPossessed attaches queued messages immediately when this node
// holds the token. This matters in two cases: a singleton's token never
// travels, and a node pinning the token with the master lock (§2.7) would
// otherwise deadlock waiting for its own multicast to attach.
func (s *SM) flushIfPossessed(acts *[]Action) {
	if s.possessed != nil && !s.passing && len(s.outbox) > 0 {
		s.attachOutbox(s.possessed, acts)
	}
}

// onTimer dispatches timer fires.
func (s *SM) onTimer(kind TimerKind, acts *[]Action) {
	switch kind {
	case TimerTokenHold:
		if s.possessed == nil || s.passing {
			return
		}
		if s.holdRequested || s.holding {
			if !s.holding {
				s.holding = true
				*acts = append(*acts, ActHoldGranted{})
			}
			return // master lock held: the token stays (§2.7)
		}
		s.passToken(acts)
	case TimerHungry:
		if s.state != Hungry {
			return
		}
		if s.mergePending {
			// The token is with a merging group; do not start 911 while
			// the merge window is open (§2.4).
			*acts = append(*acts, ActSetTimer{Kind: TimerHungry, D: s.cfg.HungryTimeout})
			return
		}
		s.setState(Starving, acts)
		s.start911(acts)
		*acts = append(*acts, ActSetTimer{Kind: TimerStarvingRetry, D: s.cfg.StarvingRetry})
	case TimerStarvingRetry:
		if s.state != Starving {
			return
		}
		if s.joining {
			s.startJoinRound(acts)
		} else {
			s.start911(acts)
		}
		if s.state == Starving {
			*acts = append(*acts, ActSetTimer{Kind: TimerStarvingRetry, D: s.cfg.StarvingRetry})
		}
	case TimerBodyodor:
		s.sendBodyodors(acts)
		if s.cfg.BodyodorInterval > 0 {
			*acts = append(*acts, ActSetTimer{Kind: TimerBodyodor, D: s.cfg.BodyodorInterval})
		}
	case TimerMergePending:
		s.mergePending = false
	}
}

// onToken handles a TOKEN arrival (§2.2).
func (s *SM) onToken(e EvTokenReceived, acts *[]Action) {
	tok := e.Tok
	if tok.TBM {
		// A merge token from another group (§2.4): epochs across groups
		// are incomparable, so accept regardless of our copy's epoch.
		// Hold it until our own token arrives, then merge; if we possess
		// our token right now, merge immediately.
		s.tbmTokens = append(s.tbmTokens, tok)
		if s.possessed != nil && !s.passing {
			s.mergeHeldTokens(acts)
		}
		return
	}
	// Stale token from before a regeneration or merge: discard. The
	// sender will starve and re-learn the fresh state through 911.
	if tok.Epoch < s.copyEpoch {
		return
	}
	if !tok.HasMember(s.id) {
		// We are not in this token's membership: we were removed and the
		// token leaked to us anyway. Ignore; the 911/join path recovers.
		return
	}
	// A fresh token supersedes any pass still awaiting acknowledgement.
	s.possessed = tok
	s.passing = false
	s.joining = false // an admitting token completes a rejoin boot
	s.attachUsed = 0  // a new possession starts a fresh attach budget
	s.setState(Eating, acts)
	*acts = append(*acts, ActStopTimer{Kind: TimerHungry})
	*acts = append(*acts, ActStopTimer{Kind: TimerStarvingRetry})
	s.clear911()
	if s.mergePending {
		s.mergePending = false
		*acts = append(*acts, ActStopTimer{Kind: TimerMergePending})
	}

	s.adoptMembers(tok, acts)
	s.ingest(tok, acts)

	// Merge any TBM tokens we have been holding (§2.4).
	if len(s.tbmTokens) > 0 {
		s.mergeHeldTokens(acts)
	}

	// Admit pending joiners (§2.3): add to the membership, announce in
	// the agreed order, and pass the token to the newest joiner.
	s.admitJoiners(tok, acts)

	// Attach queued multicasts (§2.6).
	s.attachOutbox(tok, acts)

	s.noteCopy(tok)

	// Initiate a pending merge (§2.4); this may send the token away.
	s.processMerges(tok, acts)

	if s.holdRequested && !s.holding && !s.passing {
		s.holding = true
		*acts = append(*acts, ActHoldGranted{})
	}
	*acts = append(*acts, ActSetTimer{Kind: TimerTokenHold, D: s.cfg.TokenHold})
}

// adoptMembers installs the token's authoritative membership as the local
// view (§2.5) and applies the quorum policy.
func (s *SM) adoptMembers(tok *wire.Token, acts *[]Action) {
	if equalIDs(s.members, tok.Members) {
		return
	}
	shrank := len(tok.Members) < len(s.members)
	s.members = append(s.members[:0:0], tok.Members...)
	*acts = append(*acts, ActMembershipChanged{Members: s.Members(), Epoch: tok.Epoch})
	if shrank {
		s.checkQuorum(acts)
	}
}

// checkQuorum applies the quorum-decider strategy (§2.4). It is only
// invoked when the membership shrinks: groups must be allowed to assemble
// from singletons, so growth never trips the policy.
func (s *SM) checkQuorum(acts *[]Action) {
	if s.cfg.MinQuorum > 0 && len(s.members) < s.cfg.MinQuorum {
		s.shutdown(fmt.Sprintf("membership %d below quorum %d", len(s.members), s.cfg.MinQuorum), acts)
	}
}

// admitJoiners adds pending joiners to the token (§2.3). The token is then
// sent to the first admitted joiner, naturally bypassing any broken link.
func (s *SM) admitJoiners(tok *wire.Token, acts *[]Action) {
	if len(s.pendingJoins) == 0 || s.passing {
		return
	}
	admitted := false
	for _, j := range s.pendingJoins {
		if tok.HasMember(j) {
			continue
		}
		tok.InsertAfter(s.id, j)
		s.appendSys(tok, wire.SysNodeJoined, j, acts)
		admitted = true
	}
	s.pendingJoins = s.pendingJoins[:0]
	if admitted {
		s.adoptMembersFromLocal(tok, false, acts)
	}
}

// adoptMembersFromLocal refreshes the local view after this node itself
// edited the token's membership; shrank selects whether the quorum policy
// applies (removals yes, joins and merges no).
func (s *SM) adoptMembersFromLocal(tok *wire.Token, shrank bool, acts *[]Action) {
	s.members = append(s.members[:0:0], tok.Members...)
	*acts = append(*acts, ActMembershipChanged{Members: s.Members(), Epoch: tok.Epoch})
	if shrank {
		s.checkQuorum(acts)
	}
}

// appendSys attaches a system message (node joined/removed, merge) to the
// token so every replica observes the change at the same point in the
// agreed total order, and delivers it locally.
func (s *SM) appendSys(tok *wire.Token, kind wire.SysKind, subject wire.NodeID, acts *[]Action) {
	s.nextSeq++
	m := wire.Message{
		Origin:  s.id,
		Seq:     s.nextSeq,
		Sys:     kind,
		Subject: subject,
		Visited: 1,
	}
	tok.Msgs = append(tok.Msgs, m)
	s.delivered[m.ID()] = true
	*acts = append(*acts, ActDeliver{Msg: m})
}

// attachOutbox appends queued application multicasts to the token and
// delivers the agreed-ordered ones locally (the origin's position in the
// total order is its attach point, §2.6).
func (s *SM) attachOutbox(tok *wire.Token, acts *[]Action) {
	limit := len(s.outbox)
	// The batch budget bounds how much one possession adds to the
	// traveling token frame. A node pinning the token under the master
	// lock (§2.7) is exempt: its token is not traveling, and capping it
	// would recreate the deadlock flushIfPossessed exists to prevent —
	// a lock holder waiting on its own (budget-starved) multicast.
	if ceil := s.BatchBudget(); ceil > 0 && len(tok.Members) > 1 && !s.holding {
		budget := ceil - s.attachUsed
		if budget < 0 {
			budget = 0
		}
		if limit > budget {
			limit = budget
		}
		s.attachUsed += limit
	}
	for _, om := range s.outbox[:limit] {
		s.nextSeq++
		m := wire.Message{
			Origin:  s.id,
			Seq:     s.nextSeq,
			Safe:    om.safe,
			Phase:   wire.PhaseCollect,
			Visited: 1,
			Payload: om.payload,
		}
		if !om.safe {
			s.delivered[m.ID()] = true
			*acts = append(*acts, ActDeliver{Msg: m})
		}
		tok.Msgs = append(tok.Msgs, m)
	}
	s.outbox = s.outbox[:copy(s.outbox, s.outbox[limit:])]
	// A singleton ring never passes the token, so complete local cycles
	// here: visited==1 >= members==1 prunes agreed messages and walks
	// safe messages through their phases.
	if len(tok.Members) == 1 {
		s.ingest(tok, acts)
		if len(tok.Msgs) > 0 {
			s.ingest(tok, acts) // release phase of safe messages
		}
		s.noteCopy(tok)
	}
}

// ingest processes the token's piggybacked messages at this node: delivery
// with dedup, visited accounting, safe-phase transitions and pruning
// (§2.6).
func (s *SM) ingest(tok *wire.Token, acts *[]Action) {
	n := uint16(len(tok.Members))
	kept := tok.Msgs[:0]
	for i := range tok.Msgs {
		m := tok.Msgs[i]
		m.Visited++
		switch {
		case !m.Safe:
			s.deliverOnce(m, acts)
			if m.Visited >= n {
				continue // full round: every member has it; prune
			}
		case m.Phase == wire.PhaseCollect:
			if m.Visited >= n {
				// Whole membership holds the message: release it. This
				// node is the first to deliver in the release round.
				m.Phase = wire.PhaseRelease
				m.Visited = 1
				s.deliverOnce(m, acts)
			}
		default: // PhaseRelease
			s.deliverOnce(m, acts)
			if m.Visited >= n {
				continue
			}
		}
		kept = append(kept, m)
	}
	tok.Msgs = kept
	s.pruneDelivered(tok)
}

// deliverOnce delivers m upward unless it was already delivered.
func (s *SM) deliverOnce(m wire.Message, acts *[]Action) {
	id := m.ID()
	if m.Seq <= s.highWater[m.Origin] || s.delivered[id] {
		return
	}
	s.delivered[id] = true
	*acts = append(*acts, ActDeliver{Msg: m})
}

// pruneDelivered drops dedup entries for messages no longer on the token,
// advancing the per-origin high-water mark so replays from regenerated
// token copies are still suppressed.
func (s *SM) pruneDelivered(tok *wire.Token) {
	if len(s.delivered) == 0 {
		return
	}
	onToken := make(map[wire.MessageID]bool, len(tok.Msgs))
	for i := range tok.Msgs {
		onToken[tok.Msgs[i].ID()] = true
	}
	for id := range s.delivered {
		if !onToken[id] {
			delete(s.delivered, id)
			if id.Seq > s.highWater[id.Origin] {
				s.highWater[id.Origin] = id.Seq
			}
		}
	}
}

// passToken sends the possessed token to the ring successor (§2.2).
func (s *SM) passToken(acts *[]Action) {
	tok := s.possessed
	succ := tok.Successor(s.id)
	if succ == s.id || succ == wire.NoNode {
		// Singleton: run a local cycle and keep eating.
		s.ingest(tok, acts)
		s.noteCopy(tok)
		*acts = append(*acts, ActSetTimer{Kind: TimerTokenHold, D: s.cfg.TokenHold})
		return
	}
	tok.Seq++
	s.passing = true
	s.passTBM = false
	s.passTo = succ
	s.passEpoch, s.passSeq = tok.Epoch, tok.Seq
	s.noteCopy(tok) // our copy reflects the state we sent (§2.3)
	*acts = append(*acts, ActSendToken{To: succ, Tok: tok.Clone()})
}

// onTokenAcked completes a pass: the successor holds the token now.
func (s *SM) onTokenAcked(e EvTokenAcked, acts *[]Action) {
	if !s.passing || e.Epoch != s.passEpoch || e.Seq != s.passSeq || e.To != s.passTo {
		return // stale acknowledgement
	}
	s.passing = false
	s.possessed = nil
	if s.passTBM {
		// We handed our token to a merging group's representative: vouch
		// for it (deny 911s) until the merged token appears or the merge
		// window expires (§2.4).
		s.passTBM = false
		s.mergePending = true
		*acts = append(*acts, ActSetTimer{Kind: TimerMergePending, D: s.cfg.MergeTimeout})
	}
	s.setState(Hungry, acts)
	*acts = append(*acts, ActSetTimer{Kind: TimerHungry, D: s.cfg.HungryTimeout})
}

// onTokenSendFailed is the aggressive failure detector (§2.2): the target
// is immediately removed from the membership and the token forwarded to
// the next healthy member.
func (s *SM) onTokenSendFailed(e EvTokenSendFailed, acts *[]Action) {
	if !s.passing || e.Epoch != s.passEpoch || e.Seq != s.passSeq || e.To != s.passTo {
		return // stale failure
	}
	s.passing = false
	s.passTBM = false
	tok := s.possessed
	tok.TBM = false // a failed TBM pass aborts the merge attempt
	if tok.RemoveMember(e.To) {
		s.appendSys(tok, wire.SysNodeRemoved, e.To, acts)
		s.adoptMembersFromLocal(tok, true, acts)
		if s.stopped {
			return // quorum policy shut us down
		}
	}
	s.passToken(acts)
}

// shutdown stops the node. If it holds the token, the token is passed on
// with this node removed so the group continues without interruption.
func (s *SM) shutdown(reason string, acts *[]Action) {
	if s.stopped {
		return
	}
	if s.possessed != nil && !s.passing {
		tok := s.possessed
		if tok.RemoveMember(s.id) && len(tok.Members) > 0 {
			s.appendSys(tok, wire.SysNodeRemoved, s.id, acts)
			succ := tok.Members[0]
			tok.Seq++
			*acts = append(*acts, ActSendToken{To: succ, Tok: tok.Clone()})
		}
	}
	s.stopped = true
	s.possessed = nil
	s.state = Down
	for k := TimerKind(0); k < numTimers; k++ {
		*acts = append(*acts, ActStopTimer{Kind: k})
	}
	*acts = append(*acts, ActStateChanged{State: Down})
	*acts = append(*acts, ActShutdown{Reason: reason})
}

// equalIDs compares two membership slices in order.
func equalIDs(a, b []wire.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
