package ring

import (
	"reflect"
	"testing"

	"repro/internal/wire"
)

// actionsOf filters actions by example type.
func deliveries(acts []Action) []wire.Message {
	var out []wire.Message
	for _, a := range acts {
		if d, ok := a.(ActDeliver); ok {
			out = append(out, d.Msg)
		}
	}
	return out
}

func sentTokens(acts []Action) []ActSendToken {
	var out []ActSendToken
	for _, a := range acts {
		if s, ok := a.(ActSendToken); ok {
			out = append(out, s)
		}
	}
	return out
}

func sent911s(acts []Action) []ActSend911 {
	var out []ActSend911
	for _, a := range acts {
		if s, ok := a.(ActSend911); ok {
			out = append(out, s)
		}
	}
	return out
}

func replies911(acts []Action) []ActSend911Reply {
	var out []ActSend911Reply
	for _, a := range acts {
		if s, ok := a.(ActSend911Reply); ok {
			out = append(out, s)
		}
	}
	return out
}

func hasAction[T Action](acts []Action) bool {
	for _, a := range acts {
		if _, ok := a.(T); ok {
			return true
		}
	}
	return false
}

func newStarted(t *testing.T, id wire.NodeID) *SM {
	t.Helper()
	s := New(Config{ID: id})
	s.Step(EvStart{})
	return s
}

// receiveRingToken hands s a token for the given ring membership, as if
// sent by the predecessor.
func receiveRingToken(s *SM, epoch, seq uint64, members ...wire.NodeID) []Action {
	tok := &wire.Token{Epoch: epoch, Seq: seq, Members: members}
	return s.Step(EvTokenReceived{From: members[0], Tok: tok})
}

func TestStartBootsSingletonEating(t *testing.T) {
	s := New(Config{ID: 1})
	acts := s.Step(EvStart{})
	if s.State() != Eating {
		t.Fatalf("state = %v, want EATING", s.State())
	}
	if !s.HasToken() {
		t.Fatal("singleton does not hold its token")
	}
	if got := s.Members(); !reflect.DeepEqual(got, []wire.NodeID{1}) {
		t.Fatalf("members = %v, want [1]", got)
	}
	if !hasAction[ActMembershipChanged](acts) {
		t.Fatal("no membership action on start")
	}
	if !hasAction[ActSetTimer](acts) {
		t.Fatal("no timer armed on start")
	}
	if s.GroupID() != 1 {
		t.Fatalf("group ID = %v, want 1", s.GroupID())
	}
}

func TestZeroIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero ID did not panic")
		}
	}()
	New(Config{})
}

func TestSingletonMulticastDeliversImmediately(t *testing.T) {
	s := newStarted(t, 1)
	acts := s.Step(EvSubmit{Payload: []byte("solo")})
	del := deliveries(acts)
	if len(del) != 1 || string(del[0].Payload) != "solo" {
		t.Fatalf("deliveries = %v", del)
	}
	// The message must be pruned from the token after the local cycle.
	if n := len(s.possessed.Msgs); n != 0 {
		t.Fatalf("token still carries %d messages", n)
	}
}

func TestSingletonSafeMulticastDelivers(t *testing.T) {
	s := newStarted(t, 1)
	acts := s.Step(EvSubmit{Payload: []byte("safe"), Safe: true})
	del := deliveries(acts)
	if len(del) != 1 || !del[0].Safe {
		t.Fatalf("safe deliveries = %v", del)
	}
	if n := len(s.possessed.Msgs); n != 0 {
		t.Fatalf("token still carries %d messages", n)
	}
}

func TestHoldTimerPassesToSuccessor(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2, 3)
	acts := s.Step(EvTimer{Kind: TimerTokenHold})
	toks := sentTokens(acts)
	if len(toks) != 1 || toks[0].To != 2 {
		t.Fatalf("sent tokens = %+v, want one to node 2", toks)
	}
	if toks[0].Tok.Seq != 11 {
		t.Fatalf("passed seq = %d, want 11 (incremented per hop)", toks[0].Tok.Seq)
	}
	// Until acked we still possess the token for safety.
	if !s.HasToken() {
		t.Fatal("token dropped before acknowledgement")
	}
	acts = s.Step(EvTokenAcked{To: 2, Epoch: 2, Seq: 11})
	if s.HasToken() {
		t.Fatal("token retained after acknowledgement")
	}
	if s.State() != Hungry {
		t.Fatalf("state = %v, want HUNGRY", s.State())
	}
	if !hasAction[ActSetTimer](acts) {
		t.Fatal("hungry timer not armed")
	}
}

func TestStaleAckIgnored(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2)
	s.Step(EvTimer{Kind: TimerTokenHold})
	// Wrong seq: must not release the token.
	s.Step(EvTokenAcked{To: 2, Epoch: 2, Seq: 999})
	if !s.HasToken() {
		t.Fatal("stale ack released the token")
	}
}

func TestSendFailureRemovesMemberAndForwards(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2, 3)
	s.Step(EvTimer{Kind: TimerTokenHold}) // pass to 2
	acts := s.Step(EvTokenSendFailed{To: 2, Epoch: 2, Seq: 11})
	if got := s.Members(); !reflect.DeepEqual(got, []wire.NodeID{1, 3}) {
		t.Fatalf("members = %v, want [1 3]", got)
	}
	// A SysNodeRemoved announcement is delivered locally and attached.
	del := deliveries(acts)
	if len(del) != 1 || del[0].Sys != wire.SysNodeRemoved || del[0].Subject != 2 {
		t.Fatalf("deliveries = %+v, want SysNodeRemoved(2)", del)
	}
	// The token is forwarded to the next healthy member.
	toks := sentTokens(acts)
	if len(toks) != 1 || toks[0].To != 3 {
		t.Fatalf("sent tokens = %+v, want one to node 3", toks)
	}
	if !toks[0].Tok.HasMember(3) || toks[0].Tok.HasMember(2) {
		t.Fatalf("forwarded token members = %v", toks[0].Tok.Members)
	}
}

func TestSendFailureCollapsesToSingleton(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2)
	s.Step(EvTimer{Kind: TimerTokenHold})
	acts := s.Step(EvTokenSendFailed{To: 2, Epoch: 2, Seq: 11})
	if got := s.Members(); !reflect.DeepEqual(got, []wire.NodeID{1}) {
		t.Fatalf("members = %v, want [1]", got)
	}
	if len(sentTokens(acts)) != 0 {
		t.Fatal("singleton sent the token to someone")
	}
	if !s.HasToken() || s.State() != Eating {
		t.Fatal("singleton must keep eating")
	}
}

func Test911FromNonMemberIsJoinRequest(t *testing.T) {
	s := newStarted(t, 1)
	acts := s.Step(Ev911Received{M: wire.Msg911{From: 5, Epoch: 1, Seq: 0, ReqID: 1}})
	reps := replies911(acts)
	if len(reps) != 1 || !reps[0].M.JoinPending || reps[0].To != 5 {
		t.Fatalf("replies = %+v, want JoinPending to 5", reps)
	}
	// Since we hold the token, the joiner is admitted at once and the
	// token is sent to it (§2.3).
	toks := sentTokens(acts)
	if len(toks) != 1 || toks[0].To != 5 {
		t.Fatalf("sent tokens = %+v, want token to joiner 5", toks)
	}
	if !toks[0].Tok.HasMember(5) {
		t.Fatalf("token members = %v, joiner missing", toks[0].Tok.Members)
	}
	del := deliveries(acts)
	if len(del) != 1 || del[0].Sys != wire.SysNodeJoined || del[0].Subject != 5 {
		t.Fatalf("deliveries = %+v, want SysNodeJoined(5)", del)
	}
}

func Test911DeniedWhileHoldingToken(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2)
	acts := s.Step(Ev911Received{M: wire.Msg911{From: 2, Epoch: 2, Seq: 9, ReqID: 1}})
	reps := replies911(acts)
	if len(reps) != 1 || reps[0].M.Grant {
		t.Fatalf("replies = %+v, want denial while holding token", reps)
	}
}

func Test911FreshnessComparison(t *testing.T) {
	s := newStarted(t, 3)
	receiveRingToken(s, 2, 10, 2, 3)
	s.Step(EvTimer{Kind: TimerTokenHold})
	s.Step(EvTokenAcked{To: 2, Epoch: 2, Seq: 11}) // now hungry, copy = (2, 11)

	// Requester with an older copy: denied.
	acts := s.Step(Ev911Received{M: wire.Msg911{From: 2, Epoch: 2, Seq: 10, ReqID: 7}})
	if reps := replies911(acts); len(reps) != 1 || reps[0].M.Grant {
		t.Fatalf("replies = %+v, want denial for stale requester", reps)
	}
	// Requester with a fresher copy: granted.
	acts = s.Step(Ev911Received{M: wire.Msg911{From: 2, Epoch: 2, Seq: 12, ReqID: 8}})
	if reps := replies911(acts); len(reps) != 1 || !reps[0].M.Grant {
		t.Fatalf("replies = %+v, want grant for fresher requester", reps)
	}
	// Equal copies: the higher node ID refuses the lower's request.
	acts = s.Step(Ev911Received{M: wire.Msg911{From: 2, Epoch: 2, Seq: 11, ReqID: 9}})
	if reps := replies911(acts); len(reps) != 1 || reps[0].M.Grant {
		t.Fatalf("replies = %+v, want denial by ID tie-break (3 > 2)", reps)
	}
}

func TestStarvingRunsA911RoundAndRegenerates(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2, 3)
	s.Step(EvTimer{Kind: TimerTokenHold})
	s.Step(EvTokenAcked{To: 2, Epoch: 2, Seq: 11})
	acts := s.Step(EvTimer{Kind: TimerHungry})
	if s.State() != Starving {
		t.Fatalf("state = %v, want STARVING", s.State())
	}
	reqs := sent911s(acts)
	if len(reqs) != 2 {
		t.Fatalf("911 requests = %+v, want fan-out to 2 members", reqs)
	}
	if reqs[0].M.Epoch != 2 || reqs[0].M.Seq != 11 {
		t.Fatalf("911 carries copy (%d,%d), want (2,11)", reqs[0].M.Epoch, reqs[0].M.Seq)
	}
	reqID := reqs[0].M.ReqID

	// One grant is not enough.
	acts = s.Step(Ev911ReplyReceived{M: wire.Msg911Reply{From: 2, ReqID: reqID, Grant: true}})
	if hasAction[ActTokenRegenerated](acts) {
		t.Fatal("regenerated with only one grant")
	}
	// Second grant completes the round.
	acts = s.Step(Ev911ReplyReceived{M: wire.Msg911Reply{From: 3, ReqID: reqID, Grant: true}})
	if !hasAction[ActTokenRegenerated](acts) {
		t.Fatal("unanimous grants did not regenerate")
	}
	if !s.HasToken() || s.State() != Eating {
		t.Fatal("regeneration did not restore EATING")
	}
	if s.copyEpoch != 3 {
		t.Fatalf("regenerated epoch = %d, want 3", s.copyEpoch)
	}
}

func TestDenialBlocksRegeneration(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2, 3)
	s.Step(EvTimer{Kind: TimerTokenHold})
	s.Step(EvTokenAcked{To: 2, Epoch: 2, Seq: 11})
	acts := s.Step(EvTimer{Kind: TimerHungry})
	reqID := sent911s(acts)[0].M.ReqID
	s.Step(Ev911ReplyReceived{M: wire.Msg911Reply{From: 2, ReqID: reqID, Grant: false}})
	acts = s.Step(Ev911ReplyReceived{M: wire.Msg911Reply{From: 3, ReqID: reqID, Grant: true}})
	if hasAction[ActTokenRegenerated](acts) {
		t.Fatal("regenerated despite a denial")
	}
	if s.State() != Starving {
		t.Fatalf("state = %v, want still STARVING", s.State())
	}
}

func TestUnreachableMembersCountTowardRegeneration(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2, 3)
	s.Step(EvTimer{Kind: TimerTokenHold})
	s.Step(EvTokenAcked{To: 2, Epoch: 2, Seq: 11})
	acts := s.Step(EvTimer{Kind: TimerHungry})
	reqID := sent911s(acts)[0].M.ReqID
	s.Step(Ev911SendFailed{To: 2, ReqID: reqID})
	acts = s.Step(Ev911ReplyReceived{M: wire.Msg911Reply{From: 3, ReqID: reqID, Grant: true}})
	if !hasAction[ActTokenRegenerated](acts) {
		t.Fatal("grant + unreachable did not regenerate")
	}
}

func TestJoinPendingFromFresherReplierDoesNotRegenerate(t *testing.T) {
	// A falsely removed node must not regenerate: it was removed, the
	// live token still circulates among the others, whose copies are
	// strictly fresher.
	s := newStarted(t, 2)
	receiveRingToken(s, 2, 10, 1, 2)
	s.Step(EvTimer{Kind: TimerTokenHold})
	s.Step(EvTokenAcked{To: 1, Epoch: 2, Seq: 11})
	acts := s.Step(EvTimer{Kind: TimerHungry})
	reqID := sent911s(acts)[0].M.ReqID
	acts = s.Step(Ev911ReplyReceived{M: wire.Msg911Reply{
		From: 1, ReqID: reqID, JoinPending: true, Epoch: 2, Seq: 13, // fresher
	}})
	if hasAction[ActTokenRegenerated](acts) {
		t.Fatal("regenerated despite fresher JoinPending reply")
	}
	if s.State() != Starving {
		t.Fatalf("state = %v, want STARVING until re-admitted", s.State())
	}
}

func TestJoinPendingFromStalerReplierCountsAsGrant(t *testing.T) {
	// If the replier's copy is staler than ours, it must not be able to
	// block regeneration forever (it may itself hold a stale view).
	s := newStarted(t, 2)
	receiveRingToken(s, 2, 10, 1, 2)
	s.Step(EvTimer{Kind: TimerTokenHold})
	s.Step(EvTokenAcked{To: 1, Epoch: 2, Seq: 11})
	acts := s.Step(EvTimer{Kind: TimerHungry})
	reqID := sent911s(acts)[0].M.ReqID
	acts = s.Step(Ev911ReplyReceived{M: wire.Msg911Reply{
		From: 1, ReqID: reqID, JoinPending: true, Epoch: 2, Seq: 5, // staler
	}})
	if !hasAction[ActTokenRegenerated](acts) {
		t.Fatal("staler JoinPending reply blocked regeneration")
	}
}

func TestSeqBaseSeparatesIncarnations(t *testing.T) {
	s := New(Config{ID: 1, SeqBase: 1 << 32})
	s.Step(EvStart{})
	acts := s.Step(EvSubmit{Payload: []byte("x")})
	del := deliveries(acts)
	if len(del) != 1 || del[0].Seq <= 1<<32 {
		t.Fatalf("first message seq = %d, want > SeqBase", del[0].Seq)
	}
}

func TestStaleTokenDropped(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 3, 20, 1, 2) // copy epoch now 3
	acts := s.Step(EvTokenReceived{From: 2, Tok: &wire.Token{Epoch: 2, Seq: 99, Members: []wire.NodeID{1, 2}}})
	if len(acts) != 0 {
		t.Fatalf("stale token produced actions: %+v", acts)
	}
}

func TestTokenForNonMemberDropped(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2)
	s.Step(EvTimer{Kind: TimerTokenHold})
	s.Step(EvTokenAcked{To: 2, Epoch: 2, Seq: 11})
	// A token that does not list us must be ignored.
	acts := s.Step(EvTokenReceived{From: 2, Tok: &wire.Token{Epoch: 2, Seq: 12, Members: []wire.NodeID{2, 3}}})
	if s.HasToken() {
		t.Fatal("accepted a token we are not a member of")
	}
	_ = acts
}

func TestMasterLockHoldAndRelease(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2)
	acts := s.Step(EvHoldRequest{})
	if !hasAction[ActHoldGranted](acts) {
		t.Fatal("hold not granted while EATING")
	}
	// The hold timer fires but the token must not move (§2.7).
	acts = s.Step(EvTimer{Kind: TimerTokenHold})
	if len(sentTokens(acts)) != 0 {
		t.Fatal("token passed while master lock held")
	}
	// Releasing resumes circulation immediately.
	acts = s.Step(EvHoldRelease{})
	if toks := sentTokens(acts); len(toks) != 1 || toks[0].To != 2 {
		t.Fatalf("release did not pass the token: %+v", toks)
	}
}

func TestHoldRequestWhileHungryGrantsOnTokenArrival(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2)
	s.Step(EvTimer{Kind: TimerTokenHold})
	s.Step(EvTokenAcked{To: 2, Epoch: 2, Seq: 11})
	acts := s.Step(EvHoldRequest{})
	if hasAction[ActHoldGranted](acts) {
		t.Fatal("hold granted without the token")
	}
	acts = receiveRingToken(s, 2, 12, 1, 2)
	if !hasAction[ActHoldGranted](acts) {
		t.Fatal("hold not granted when the token arrived")
	}
}

func TestLeavePassesTokenOn(t *testing.T) {
	s := newStarted(t, 1)
	receiveRingToken(s, 2, 10, 1, 2, 3)
	acts := s.Step(EvLeave{})
	toks := sentTokens(acts)
	if len(toks) != 1 {
		t.Fatalf("leaving holder sent %d tokens, want 1", len(toks))
	}
	if toks[0].Tok.HasMember(1) {
		t.Fatal("departed node still in token membership")
	}
	if !hasAction[ActShutdown](acts) {
		t.Fatal("no shutdown action")
	}
	if s.State() != Down {
		t.Fatalf("state = %v, want DOWN", s.State())
	}
	// Events after shutdown are ignored.
	if acts := s.Step(EvTimer{Kind: TimerTokenHold}); len(acts) != 0 {
		t.Fatalf("stopped SM produced actions: %+v", acts)
	}
}

func TestCriticalResourceFailureShutsDown(t *testing.T) {
	s := newStarted(t, 1)
	acts := s.Step(EvCriticalResourceFailed{Resource: "uplink"})
	if !hasAction[ActShutdown](acts) {
		t.Fatal("no shutdown on critical resource failure")
	}
}

func TestQuorumShutdown(t *testing.T) {
	s := New(Config{ID: 1, MinQuorum: 2})
	s.Step(EvStart{}) // singleton is below quorum only once membership is adopted from a token
	receiveRingToken(s, 2, 10, 1, 2, 3)
	s.Step(EvTimer{Kind: TimerTokenHold})
	acts := s.Step(EvTokenSendFailed{To: 2, Epoch: 2, Seq: 11})
	// Removing 2 leaves {1,3}: quorum holds. Then 3 fails too.
	if hasAction[ActShutdown](acts) {
		t.Fatal("premature quorum shutdown")
	}
	acts = s.Step(EvTokenSendFailed{To: 3, Epoch: 2, Seq: 12})
	if !hasAction[ActShutdown](acts) {
		t.Fatal("no quorum shutdown at membership 1 < 2")
	}
}

func TestAgreedOrderingAcrossMessages(t *testing.T) {
	// A node receiving a token with foreign messages delivers them in
	// token order before its own attach-time deliveries.
	s := newStarted(t, 2)
	s.Step(EvSubmit{Payload: []byte("mine")}) // queued: singleton delivers locally at once
	tok := &wire.Token{Epoch: 2, Seq: 5, Members: []wire.NodeID{1, 2}, Msgs: []wire.Message{
		{Origin: 1, Seq: 1, Visited: 1, Payload: []byte("first")},
		{Origin: 1, Seq: 2, Visited: 1, Payload: []byte("second")},
	}}
	acts := s.Step(EvTokenReceived{From: 1, Tok: tok})
	del := deliveries(acts)
	if len(del) != 2 {
		t.Fatalf("deliveries = %d, want 2 foreign messages", len(del))
	}
	if string(del[0].Payload) != "first" || string(del[1].Payload) != "second" {
		t.Fatalf("order = %q, %q", del[0].Payload, del[1].Payload)
	}
}

func TestDuplicateMessagesNotRedelivered(t *testing.T) {
	s := newStarted(t, 2)
	msg := wire.Message{Origin: 1, Seq: 1, Visited: 1, Payload: []byte("x")}
	tok := &wire.Token{Epoch: 2, Seq: 5, Members: []wire.NodeID{1, 2, 3}, Msgs: []wire.Message{msg}}
	acts := s.Step(EvTokenReceived{From: 1, Tok: tok})
	if len(deliveries(acts)) != 1 {
		t.Fatal("first delivery missing")
	}
	s.Step(EvTimer{Kind: TimerTokenHold})
	s.Step(EvTokenAcked{To: 3, Epoch: 2, Seq: 6})
	// A regenerated token replays the same message (e.g., after a 911).
	tok2 := &wire.Token{Epoch: 3, Seq: 7, Members: []wire.NodeID{1, 2, 3}, Msgs: []wire.Message{
		{Origin: 1, Seq: 1, Visited: 1, Payload: []byte("x")},
	}}
	acts = s.Step(EvTokenReceived{From: 1, Tok: tok2})
	if n := len(deliveries(acts)); n != 0 {
		t.Fatalf("replayed message redelivered %d times", n)
	}
}

func TestForwardQueuesMulticast(t *testing.T) {
	s := newStarted(t, 1)
	acts := s.Step(EvForwardReceived{M: wire.Forward{From: 99, Payload: []byte("open-group")}})
	del := deliveries(acts)
	if len(del) != 1 || string(del[0].Payload) != "open-group" {
		t.Fatalf("deliveries = %+v", del)
	}
	if del[0].Origin != 1 {
		t.Fatalf("origin = %v, want the forwarding member 1", del[0].Origin)
	}
}

func TestBodyodorTriggersTBMSend(t *testing.T) {
	// Node 2 (group {2,3}, GID 2) hears a beacon from node 1 (GID 1 < 2):
	// it must add 1 and send it the TBM token.
	s := New(Config{ID: 2, Eligible: []wire.NodeID{1, 2, 3}})
	s.Step(EvStart{})
	receiveRingToken(s, 2, 10, 2, 3)
	acts := s.Step(EvBodyodorReceived{M: wire.Bodyodor{From: 1, GroupID: 1, Epoch: 1}})
	toks := sentTokens(acts)
	if len(toks) != 1 || toks[0].To != 1 {
		t.Fatalf("sent tokens = %+v, want TBM token to 1", toks)
	}
	if !toks[0].Tok.TBM {
		t.Fatal("token not marked TBM")
	}
	if !toks[0].Tok.HasMember(1) {
		t.Fatalf("TBM token members = %v, beacon sender missing", toks[0].Tok.Members)
	}
}

func TestBodyodorFromHigherGroupIgnored(t *testing.T) {
	s := New(Config{ID: 1, Eligible: []wire.NodeID{1, 5}})
	s.Step(EvStart{})
	acts := s.Step(EvBodyodorReceived{M: wire.Bodyodor{From: 5, GroupID: 5, Epoch: 1}})
	if len(sentTokens(acts)) != 0 {
		t.Fatal("acted on a beacon from a higher group ID")
	}
}

func TestBodyodorFromNonEligibleIgnored(t *testing.T) {
	s := New(Config{ID: 2, Eligible: []wire.NodeID{2, 3}})
	s.Step(EvStart{})
	acts := s.Step(EvBodyodorReceived{M: wire.Bodyodor{From: 1, GroupID: 1, Epoch: 1}})
	if len(sentTokens(acts)) != 0 {
		t.Fatal("acted on a beacon from a non-eligible node")
	}
}

func TestTBMTokenMergesWithOwnToken(t *testing.T) {
	// Node 1 is a singleton holding its token; a TBM token arrives from
	// group {2,3}. The merge happens immediately.
	s := New(Config{ID: 1, Eligible: []wire.NodeID{1, 2, 3}})
	s.Step(EvStart{})
	tbm := &wire.Token{Epoch: 4, Seq: 40, TBM: true, Members: []wire.NodeID{2, 3, 1},
		Msgs: []wire.Message{{Origin: 2, Seq: 1, Visited: 2, Payload: []byte("theirs")}}}
	acts := s.Step(EvTokenReceived{From: 2, Tok: tbm})
	if !hasAction[ActMergeCompleted](acts) {
		t.Fatal("merge did not complete")
	}
	got := wire.SortedIDs(s.Members())
	if !reflect.DeepEqual(got, []wire.NodeID{1, 2, 3}) {
		t.Fatalf("merged members = %v, want [1 2 3]", got)
	}
	if s.copyEpoch != 5 {
		t.Fatalf("merged epoch = %d, want max(1,4)+1 = 5", s.copyEpoch)
	}
	// The foreign message is delivered here as part of the new round.
	var sawForeign bool
	for _, d := range deliveries(acts) {
		if d.Origin == 2 && string(d.Payload) == "theirs" {
			sawForeign = true
		}
	}
	if !sawForeign {
		t.Fatal("foreign message not delivered after merge")
	}
}

func TestBodyodorTimerBeaconsToAbsentEligibles(t *testing.T) {
	s := New(Config{ID: 1, Eligible: []wire.NodeID{1, 2, 3}, BodyodorInterval: 1})
	s.Step(EvStart{})
	acts := s.Step(EvTimer{Kind: TimerBodyodor})
	var beacons []ActSendBodyodor
	for _, a := range acts {
		if b, ok := a.(ActSendBodyodor); ok {
			beacons = append(beacons, b)
		}
	}
	if len(beacons) != 2 {
		t.Fatalf("beacons = %+v, want to nodes 2 and 3", beacons)
	}
	for _, b := range beacons {
		if b.M.GroupID != 1 || b.M.From != 1 {
			t.Fatalf("beacon = %+v", b.M)
		}
	}
}

func TestSetEligibleOnline(t *testing.T) {
	s := New(Config{ID: 2})
	s.Step(EvStart{})
	// Initially node 1 is not eligible; its beacon is ignored.
	if acts := s.Step(EvBodyodorReceived{M: wire.Bodyodor{From: 1, GroupID: 1}}); len(sentTokens(acts)) != 0 {
		t.Fatal("non-eligible beacon acted on")
	}
	s.Step(EvSetEligible{IDs: []wire.NodeID{1, 2}})
	acts := s.Step(EvBodyodorReceived{M: wire.Bodyodor{From: 1, GroupID: 1}})
	if len(sentTokens(acts)) != 1 {
		t.Fatal("eligible beacon ignored after online update")
	}
}

func TestMergePendingDeniesAndSuppresses911(t *testing.T) {
	// Node 2 sends its token TBM to node 1 and the pass is acked: while
	// the merge window is open, 911s are denied and our own hungry
	// timeout does not start a 911 round.
	s := New(Config{ID: 2, Eligible: []wire.NodeID{1, 2, 3}})
	s.Step(EvStart{})
	receiveRingToken(s, 2, 10, 2, 3)
	acts := s.Step(EvBodyodorReceived{M: wire.Bodyodor{From: 1, GroupID: 1}})
	tok := sentTokens(acts)[0]
	s.Step(EvTokenAcked{To: 1, Epoch: tok.Tok.Epoch, Seq: tok.Tok.Seq})
	// 911 from a member is denied during the merge window.
	acts = s.Step(Ev911Received{M: wire.Msg911{From: 3, Epoch: 2, Seq: 9, ReqID: 1}})
	if reps := replies911(acts); len(reps) != 1 || reps[0].M.Grant {
		t.Fatalf("replies = %+v, want denial while merge pending", reps)
	}
	// Our own hungry timeout re-arms instead of starving.
	acts = s.Step(EvTimer{Kind: TimerHungry})
	if s.State() == Starving {
		t.Fatal("starved during merge window")
	}
	if len(sent911s(acts)) != 0 {
		t.Fatal("sent 911s during merge window")
	}
	// After the merge window expires, starving works again.
	s.Step(EvTimer{Kind: TimerMergePending})
	s.Step(EvTimer{Kind: TimerHungry})
	if s.State() != Starving {
		t.Fatalf("state = %v, want STARVING after merge window", s.State())
	}
}
