package ring

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/wire"
)

// The harness runs several state machines against a virtual-time scheduler
// that models the Raincore Transport Service's semantics: a send either
// arrives (after a delay) and is acknowledged, or the sender receives a
// failure-on-delivery notification. Everything is deterministic given the
// seed, so protocol scenarios (crashes, partitions, merges) replay exactly.

type simEvent struct {
	at    time.Duration
	seq   uint64
	node  wire.NodeID
	ev    Event
	timer *timerRef // non-nil for timer events: fire only if still armed
}

type timerRef struct {
	kind TimerKind
	gen  uint64
}

type eventHeap []*simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)     { *h = append(*h, x.(*simEvent)) }
func (h *eventHeap) Pop() any       { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() *simEvent { return h[0] }

type simNode struct {
	sm        *SM
	timers    [numTimers]uint64 // generation; odd = armed
	crashed   bool
	delivered []wire.Message
	members   []wire.NodeID
	shutdown  bool
	regens    int
	merges    int
	holds     int
}

type cluster struct {
	t      testing.TB
	nodes  map[wire.NodeID]*simNode
	order  []wire.NodeID
	events eventHeap
	now    time.Duration
	seq    uint64
	rng    *rand.Rand

	delay time.Duration // one-way message delay
	cut   map[[2]wire.NodeID]bool
	part  map[wire.NodeID]int
}

func newCluster(t testing.TB, cfgOf func(id wire.NodeID) Config, ids ...wire.NodeID) *cluster {
	c := &cluster{
		t:     t,
		nodes: make(map[wire.NodeID]*simNode),
		rng:   rand.New(rand.NewSource(1)),
		delay: time.Millisecond,
		cut:   make(map[[2]wire.NodeID]bool),
		part:  make(map[wire.NodeID]int),
	}
	for _, id := range ids {
		cfg := cfgOf(id)
		cfg.ID = id
		c.nodes[id] = &simNode{sm: New(cfg)}
		c.order = append(c.order, id)
	}
	return c
}

// defaultCfg is a tight-timer config for fast simulations.
func defaultCfg(eligible ...wire.NodeID) func(wire.NodeID) Config {
	return func(id wire.NodeID) Config {
		return Config{
			TokenHold:        5 * time.Millisecond,
			HungryTimeout:    40 * time.Millisecond,
			StarvingRetry:    30 * time.Millisecond,
			BodyodorInterval: 25 * time.Millisecond,
			Eligible:         eligible,
		}
	}
}

func (c *cluster) startAll() {
	for _, id := range c.order {
		c.inject(id, EvStart{})
	}
}

// inject feeds an event to a node immediately and executes its actions.
func (c *cluster) inject(id wire.NodeID, ev Event) {
	n := c.nodes[id]
	if n.crashed || n.shutdown {
		return
	}
	c.apply(id, n.sm.Step(ev))
}

// schedule queues an event for later delivery.
func (c *cluster) schedule(d time.Duration, id wire.NodeID, ev Event, tr *timerRef) {
	c.seq++
	heap.Push(&c.events, &simEvent{at: c.now + d, seq: c.seq, node: id, ev: ev, timer: tr})
}

// reachable mirrors simnet topology rules.
func (c *cluster) reachable(from, to wire.NodeID) bool {
	if c.nodes[to] == nil || c.nodes[to].crashed || c.nodes[to].shutdown {
		return false
	}
	if c.nodes[from] == nil || c.nodes[from].crashed {
		return false
	}
	if c.cut[[2]wire.NodeID{from, to}] || c.cut[[2]wire.NodeID{to, from}] {
		return false
	}
	if c.part[from] != c.part[to] {
		return false
	}
	return true
}

// apply executes a node's actions against the simulated world.
func (c *cluster) apply(id wire.NodeID, acts []Action) {
	n := c.nodes[id]
	for _, a := range acts {
		switch act := a.(type) {
		case ActSendToken:
			if c.reachable(id, act.To) {
				c.schedule(c.delay, act.To, EvTokenReceived{From: id, Tok: act.Tok}, nil)
				c.schedule(2*c.delay, id, EvTokenAcked{To: act.To, Epoch: act.Tok.Epoch, Seq: act.Tok.Seq}, nil)
			} else {
				// Failure-on-delivery after the transport's retry budget.
				c.schedule(3*c.delay, id, EvTokenSendFailed{To: act.To, Epoch: act.Tok.Epoch, Seq: act.Tok.Seq}, nil)
			}
		case ActSend911:
			if c.reachable(id, act.To) {
				c.schedule(c.delay, act.To, Ev911Received{M: act.M}, nil)
			} else {
				c.schedule(3*c.delay, id, Ev911SendFailed{To: act.To, ReqID: act.M.ReqID}, nil)
			}
		case ActSend911Reply:
			if c.reachable(id, act.To) {
				c.schedule(c.delay, act.To, Ev911ReplyReceived{M: act.M}, nil)
			}
		case ActSendBodyodor:
			if c.reachable(id, act.To) {
				c.schedule(c.delay, act.To, EvBodyodorReceived{M: act.M}, nil)
			}
		case ActSetTimer:
			n.timers[act.Kind]++ // invalidates any previously scheduled fire
			c.schedule(act.D, id, EvTimer{Kind: act.Kind}, &timerRef{kind: act.Kind, gen: n.timers[act.Kind]})
		case ActStopTimer:
			n.timers[act.Kind]++ // disarm
		case ActDeliver:
			n.delivered = append(n.delivered, act.Msg)
		case ActMembershipChanged:
			n.members = append([]wire.NodeID(nil), act.Members...)
		case ActTokenRegenerated:
			n.regens++
		case ActMergeCompleted:
			n.merges++
		case ActHoldGranted:
			n.holds++
		case ActShutdown:
			n.shutdown = true
		case ActStateChanged:
			// observable via sm.State()
		}
	}
}

// run processes events until the virtual deadline.
func (c *cluster) run(until time.Duration) {
	deadline := c.now + until
	for len(c.events) > 0 && c.events.Peek().at <= deadline {
		e := heap.Pop(&c.events).(*simEvent)
		c.now = e.at
		n := c.nodes[e.node]
		if n == nil || n.crashed || n.shutdown {
			continue
		}
		if e.timer != nil && n.timers[e.timer.kind] != e.timer.gen {
			continue // timer was re-armed or stopped since scheduling
		}
		c.apply(e.node, n.sm.Step(e.ev))
	}
	if c.now < deadline {
		c.now = deadline
	}
}

func (c *cluster) crash(id wire.NodeID) { c.nodes[id].crashed = true }

func (c *cluster) revive(id wire.NodeID) {
	n := c.nodes[id]
	n.crashed = false
	n.shutdown = false
	// A restarted node is a new incarnation: its multicast sequence
	// numbers must not reuse the old range (Config.SeqBase).
	cfg := n.sm.cfg
	cfg.SeqBase = n.sm.nextSeq + 1<<32
	n.sm = New(cfg)
	n.delivered = nil
	c.inject(id, EvStart{})
}

func (c *cluster) partition(groups ...[]wire.NodeID) {
	c.part = make(map[wire.NodeID]int)
	for i, g := range groups {
		for _, id := range g {
			c.part[id] = i
		}
	}
}

func (c *cluster) heal() { c.part = make(map[wire.NodeID]int) }

// live returns IDs of nodes that are running.
func (c *cluster) live() []wire.NodeID {
	var out []wire.NodeID
	for _, id := range c.order {
		n := c.nodes[id]
		if !n.crashed && !n.shutdown {
			out = append(out, id)
		}
	}
	return out
}

// --- invariant checks ---

// requireMembershipAgreement asserts that all live nodes share the same
// membership view equal to exactly the live set (§2.5, quiescent period).
func (c *cluster) requireMembershipAgreement() {
	c.t.Helper()
	want := wire.SortedIDs(c.live())
	for _, id := range c.live() {
		got := wire.SortedIDs(c.nodes[id].sm.Members())
		if fmt.Sprint(got) != fmt.Sprint(want) {
			c.t.Fatalf("node %v membership = %v, want %v", id, got, want)
		}
	}
}

// requireSingleToken asserts the group has converged to exactly one
// circulating token. A pass in flight legitimately shows the token at two
// nodes (the sender retains it until the acknowledgement, §2.2), so the
// check advances the simulation to a settled instant: exactly one node
// possessing the token with no pass outstanding.
func (c *cluster) requireSingleToken() {
	c.t.Helper()
	for attempt := 0; attempt < 400; attempt++ {
		settled, holders := 0, 0
		for _, id := range c.live() {
			sm := c.nodes[id].sm
			if sm.HasToken() {
				holders++
				if !sm.passing {
					settled++
				}
			}
		}
		if settled > 1 {
			c.t.Fatalf("%d settled token holders, want at most 1", settled)
		}
		if settled == 1 && holders == 1 {
			return
		}
		c.run(500 * time.Microsecond)
	}
	c.t.Fatal("token never settled at a single holder")
}

// appPayloads filters a node's deliveries to application messages.
func appPayloads(n *simNode) []string {
	var out []string
	for _, m := range n.delivered {
		if m.Sys == wire.SysApp {
			out = append(out, string(m.Payload))
		}
	}
	return out
}

// requireAtomicDelivery asserts every live node delivered exactly the
// given set of payloads (any order check is separate).
func (c *cluster) requireAtomicDelivery(want map[string]bool) {
	c.t.Helper()
	for _, id := range c.live() {
		got := appPayloads(c.nodes[id])
		if len(got) != len(want) {
			c.t.Fatalf("node %v delivered %d messages (%v), want %d", id, len(got), got, len(want))
		}
		seen := map[string]bool{}
		for _, p := range got {
			if seen[p] {
				c.t.Fatalf("node %v delivered %q twice", id, p)
			}
			seen[p] = true
			if !want[p] {
				c.t.Fatalf("node %v delivered unexpected %q", id, p)
			}
		}
	}
}

// requireConsistentOrder asserts any two live nodes deliver their common
// application messages in the same relative order (agreed ordering, §2.6).
func (c *cluster) requireConsistentOrder() {
	c.t.Helper()
	ids := c.live()
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a := appIDs(c.nodes[ids[i]])
			b := appIDs(c.nodes[ids[j]])
			if !sameRelativeOrder(a, b) {
				c.t.Fatalf("nodes %v and %v disagree on delivery order:\n%v\n%v",
					ids[i], ids[j], a, b)
			}
		}
	}
}

func appIDs(n *simNode) []wire.MessageID {
	var out []wire.MessageID
	for _, m := range n.delivered {
		if m.Sys == wire.SysApp {
			out = append(out, m.ID())
		}
	}
	return out
}

// sameRelativeOrder checks that the common elements of a and b appear in
// the same order in both.
func sameRelativeOrder(a, b []wire.MessageID) bool {
	posB := make(map[wire.MessageID]int, len(b))
	for i, id := range b {
		posB[id] = i
	}
	last := -1
	for _, id := range a {
		if p, ok := posB[id]; ok {
			if p < last {
				return false
			}
			last = p
		}
	}
	return true
}

// assemble boots all nodes and lets discovery merge them into one group.
func (c *cluster) assemble() {
	c.t.Helper()
	c.startAll()
	c.run(2 * time.Second)
	c.requireMembershipAgreement()
	c.requireSingleToken()
}
