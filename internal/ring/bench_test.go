package ring

import (
	"testing"
	"time"

	"repro/internal/wire"
)

// BenchmarkStepTokenReceive measures the pure state machine's cost of one
// token arrival carrying typical piggybacked traffic — the hot path of the
// whole protocol.
func BenchmarkStepTokenReceive(b *testing.B) {
	s := New(Config{ID: 1})
	s.Step(EvStart{})
	members := []wire.NodeID{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok := &wire.Token{
			Epoch:   2,
			Seq:     uint64(10 + i),
			Members: members,
			Msgs: []wire.Message{
				{Origin: 2, Seq: uint64(i)*4 + 1, Visited: 1, Payload: make([]byte, 128)},
				{Origin: 3, Seq: uint64(i)*4 + 2, Visited: 2, Payload: make([]byte, 128)},
			},
		}
		s.Step(EvTokenReceived{From: 4, Tok: tok})
		s.Step(EvTimer{Kind: TimerTokenHold})
		s.Step(EvTokenAcked{To: 2, Epoch: 2, Seq: uint64(10+i) + 1})
	}
}

// BenchmarkStepSubmit measures message submission while holding the token.
func BenchmarkStepSubmit(b *testing.B) {
	s := New(Config{ID: 1})
	s.Step(EvStart{})
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step(EvSubmit{Payload: payload})
	}
}

// BenchmarkFullVirtualRound measures a complete simulated 8-node token
// round on the deterministic harness (no I/O, no real time).
func BenchmarkFullVirtualRound(b *testing.B) {
	ids := []wire.NodeID{1, 2, 3, 4, 5, 6, 7, 8}
	c := newCluster(b, defaultCfg(ids...), ids...)
	c.startAll()
	c.run(2 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One hold interval per member approximates one full round.
		c.run(8 * 5 * time.Millisecond)
	}
}
