// Package ring implements the Raincore token-ring protocol (§2.2), the 911
// token-recovery and join protocol (§2.3), and the discovery/merge
// protocols (§2.4) as a pure state machine: events in, actions out, no
// goroutines, no clocks, no sockets. The runtime in internal/core wires it
// to the Raincore Transport Service and real timers; tests drive it
// synchronously and deterministically.
package ring

import (
	"time"

	"repro/internal/wire"
)

// NodeState is the per-node protocol state of §2.2/§2.3.
type NodeState uint8

const (
	// Hungry: the node does not have the TOKEN.
	Hungry NodeState = iota
	// Eating: the node has the TOKEN.
	Eating
	// Starving: HUNGRY persisted past the timeout; the node suspects
	// token loss and is running the 911 protocol.
	Starving
	// Down: the node has shut itself down (critical resource loss,
	// quorum loss, or voluntary leave).
	Down
)

// String names the state.
func (s NodeState) String() string {
	switch s {
	case Hungry:
		return "HUNGRY"
	case Eating:
		return "EATING"
	case Starving:
		return "STARVING"
	case Down:
		return "DOWN"
	default:
		return "UNKNOWN"
	}
}

// TimerKind identifies the protocol timers the state machine asks the
// runtime to arm.
type TimerKind uint8

const (
	// TimerTokenHold fires when the node has held the token for the
	// regular passing interval (§2.2).
	TimerTokenHold TimerKind = iota
	// TimerHungry fires when HUNGRY has lasted long enough to suspect
	// token loss (§2.3).
	TimerHungry
	// TimerStarvingRetry re-runs the 911 round while starving.
	TimerStarvingRetry
	// TimerBodyodor paces discovery beacons (§2.4).
	TimerBodyodor
	// TimerMergePending bounds how long a group that handed its token to
	// another group's representative vouches for that token.
	TimerMergePending
	numTimers
)

// NumTimers is the number of timer kinds, for runtimes that keep per-kind
// timer state.
const NumTimers = int(numTimers)

// String names the timer.
func (k TimerKind) String() string {
	switch k {
	case TimerTokenHold:
		return "token-hold"
	case TimerHungry:
		return "hungry"
	case TimerStarvingRetry:
		return "starving-retry"
	case TimerBodyodor:
		return "bodyodor"
	case TimerMergePending:
		return "merge-pending"
	default:
		return "unknown"
	}
}

// Event is an input to the state machine.
type Event interface{ isEvent() }

// EvStart boots the node as a singleton group holding its own token.
// Groups assemble through the 911 join path or the discovery/merge path.
type EvStart struct{}

// EvStartJoining boots the node as a rejoining member: no token is
// created; instead the node sends 911 join requests to its eligible
// peers (§2.3) until an existing group admits it, and falls back to a
// fresh singleton only when every peer is unreachable or equally cold.
// A node restarting from durable state uses this path so it re-enters
// through the ordered join announcement — and its delta state transfer —
// rather than the discovery/merge path's full resync.
type EvStartJoining struct{}

// EvTokenReceived delivers a TOKEN (§2.2). From is the transport-level
// sender.
type EvTokenReceived struct {
	From wire.NodeID
	Tok  *wire.Token
}

// EvTokenAcked reports that the transport confirmed delivery of the token
// this node passed (identified by epoch and seq).
type EvTokenAcked struct {
	To    wire.NodeID
	Epoch uint64
	Seq   uint64
}

// EvTokenSendFailed is the failure-on-delivery notification for a token
// pass: the basis of the aggressive failure detection (§2.2).
type EvTokenSendFailed struct {
	To    wire.NodeID
	Epoch uint64
	Seq   uint64
}

// Ev911Received delivers a 911 request (§2.3).
type Ev911Received struct{ M wire.Msg911 }

// Ev911ReplyReceived delivers a grant/denial of our 911 request.
type Ev911ReplyReceived struct{ M wire.Msg911Reply }

// Ev911SendFailed reports that a 911 request could not be delivered; the
// target is presumed dead for this 911 round.
type Ev911SendFailed struct {
	To    wire.NodeID
	ReqID uint64
}

// EvBodyodorReceived delivers a discovery beacon (§2.4).
type EvBodyodorReceived struct{ M wire.Bodyodor }

// EvForwardReceived delivers an open-group message to be multicast into
// the group by this member (§2.6).
type EvForwardReceived struct{ M wire.Forward }

// EvTimer reports that a previously armed timer fired.
type EvTimer struct{ Kind TimerKind }

// EvSubmit queues an application multicast (§2.6). Safe selects safe
// ordering; otherwise the message is delivered with agreed ordering.
type EvSubmit struct {
	Payload []byte
	Safe    bool
}

// EvHoldRequest asks for the master lock (§2.7): once the node is EATING
// it keeps the token until EvHoldRelease.
type EvHoldRequest struct{}

// EvHoldRelease releases the master lock; the token resumes circulating.
type EvHoldRelease struct{}

// EvLeave removes this node from the group voluntarily.
type EvLeave struct{}

// EvCriticalResourceFailed reports loss of a critical resource; per §2.4
// the node shuts itself down.
type EvCriticalResourceFailed struct{ Resource string }

// EvSetEligible replaces the eligible membership (§2.4); it can be updated
// online.
type EvSetEligible struct{ IDs []wire.NodeID }

// EvSetBatchBudget retunes the per-possession attach budget online. The
// runtime derives Budget from observed token round-trip time and datagram
// headroom; it is honored only when Config.AdaptiveBatch is set, and never
// drops below the configured MaxBatch floor.
type EvSetBatchBudget struct{ Budget int }

func (EvStart) isEvent()                  {}
func (EvStartJoining) isEvent()           {}
func (EvTokenReceived) isEvent()          {}
func (EvTokenAcked) isEvent()             {}
func (EvTokenSendFailed) isEvent()        {}
func (Ev911Received) isEvent()            {}
func (Ev911ReplyReceived) isEvent()       {}
func (Ev911SendFailed) isEvent()          {}
func (EvBodyodorReceived) isEvent()       {}
func (EvForwardReceived) isEvent()        {}
func (EvTimer) isEvent()                  {}
func (EvSubmit) isEvent()                 {}
func (EvHoldRequest) isEvent()            {}
func (EvHoldRelease) isEvent()            {}
func (EvLeave) isEvent()                  {}
func (EvCriticalResourceFailed) isEvent() {}
func (EvSetEligible) isEvent()            {}
func (EvSetBatchBudget) isEvent()         {}

// Action is an output of the state machine, executed by the runtime.
type Action interface{ isAction() }

// ActSendToken asks the runtime to send the token via the reliable
// transport and to report EvTokenAcked or EvTokenSendFailed for the
// token's (epoch, seq).
type ActSendToken struct {
	To  wire.NodeID
	Tok *wire.Token
}

// ActSend911 sends a 911 request; the runtime reports Ev911SendFailed on
// failure-on-delivery.
type ActSend911 struct {
	To wire.NodeID
	M  wire.Msg911
}

// ActSend911Reply answers a 911 (fire-and-forget reliability).
type ActSend911Reply struct {
	To wire.NodeID
	M  wire.Msg911Reply
}

// ActSendBodyodor emits a discovery beacon (fire-and-forget).
type ActSendBodyodor struct {
	To wire.NodeID
	M  wire.Bodyodor
}

// ActSetTimer (re-)arms a timer.
type ActSetTimer struct {
	Kind TimerKind
	D    time.Duration
}

// ActStopTimer cancels a timer.
type ActStopTimer struct{ Kind TimerKind }

// ActDeliver hands a multicast message (application or system) to the
// upper layer, in the agreed total order (§2.6).
type ActDeliver struct{ Msg wire.Message }

// ActMembershipChanged reports the node's current local membership view.
type ActMembershipChanged struct {
	Members []wire.NodeID
	Epoch   uint64
}

// ActStateChanged reports EATING/HUNGRY/STARVING transitions.
type ActStateChanged struct{ State NodeState }

// ActHoldGranted reports that the master lock is now held (§2.7).
type ActHoldGranted struct{}

// ActTokenRegenerated reports a successful 911 regeneration (§2.3).
type ActTokenRegenerated struct{ Epoch uint64 }

// ActMergeCompleted reports a completed group merge (§2.4).
type ActMergeCompleted struct {
	Members []wire.NodeID
	Epoch   uint64
}

// ActShutdown reports that the node stopped (voluntary leave, critical
// resource loss, or quorum loss).
type ActShutdown struct{ Reason string }

func (ActSendToken) isAction()         {}
func (ActSend911) isAction()           {}
func (ActSend911Reply) isAction()      {}
func (ActSendBodyodor) isAction()      {}
func (ActSetTimer) isAction()          {}
func (ActStopTimer) isAction()         {}
func (ActDeliver) isAction()           {}
func (ActMembershipChanged) isAction() {}
func (ActStateChanged) isAction()      {}
func (ActHoldGranted) isAction()       {}
func (ActTokenRegenerated) isAction()  {}
func (ActMergeCompleted) isAction()    {}
func (ActShutdown) isAction()          {}
