package ring

import "repro/internal/wire"

// This file implements the split-brain recovery protocols of §2.4: the
// Raincore Discovery Protocol (BODYODOR beacons against the configured
// Eligible Membership) and the Raincore Merge Protocol (TBM tokens, with
// group-ID ordering as the deadlock-free tie-breaker).

// sendBodyodors beacons to every eligible node absent from the current
// membership (§2.4).
func (s *SM) sendBodyodors(acts *[]Action) {
	// A rejoining node stays silent: beaconing would invite a group merge
	// (full resync) when the ordered join path (delta fast-forward) is
	// the whole point of the rejoin boot.
	if s.stopped || s.joining || len(s.members) == 0 {
		return
	}
	gid := s.GroupID()
	for id := range s.eligible {
		if s.isMember(id) {
			continue
		}
		*acts = append(*acts, ActSendBodyodor{
			To: id,
			M:  wire.Bodyodor{From: s.id, GroupID: gid, Epoch: s.copyEpoch},
		})
	}
}

// onBodyodor handles a discovery beacon. The beacon is a merge-join
// request if and only if the sender's group ID is lower than ours (§2.4);
// the strict ordering makes multi-way merges deadlock-free.
func (s *SM) onBodyodor(m wire.Bodyodor, acts *[]Action) {
	if m.From == s.id || s.isMember(m.From) || !s.eligible[m.From] {
		return
	}
	if m.GroupID >= s.GroupID() {
		// Their beacons to us are ignored; our beacons to them will make
		// them absorb us instead.
		return
	}
	s.queueMerge(m.From)
	if s.possessed != nil && !s.passing {
		s.processMerges(s.possessed, acts)
	}
}

// queueMerge records a merge target, deduplicated.
func (s *SM) queueMerge(id wire.NodeID) {
	for _, t := range s.pendingMerges {
		if t == id {
			return
		}
	}
	s.pendingMerges = append(s.pendingMerges, id)
}

// processMerges sends our token, marked TBM, to the first pending merge
// target (§2.4): wait for our token, check the sender is absent, add it to
// the membership, set the TBM flag, send it the token.
func (s *SM) processMerges(tok *wire.Token, acts *[]Action) {
	if s.passing || s.holding {
		return
	}
	for len(s.pendingMerges) > 0 {
		target := s.pendingMerges[0]
		s.pendingMerges = s.pendingMerges[1:]
		if tok.HasMember(target) {
			continue // already merged through another path
		}
		tok.InsertAfter(s.id, target)
		s.adoptMembersFromLocal(tok, false, acts)
		if s.stopped {
			return
		}
		tok.TBM = true
		tok.Seq++
		s.passing = true
		s.passTBM = true
		s.passTo = target
		s.passEpoch, s.passSeq = tok.Epoch, tok.Seq
		s.noteCopy(tok)
		*acts = append(*acts, ActSendToken{To: target, Tok: tok.Clone()})
		return
	}
}

// mergeHeldTokens merges the TBM tokens we received from other groups with
// our own token (§2.4): union the memberships, concatenate the multicast
// messages, bump the epoch, and continue with a single token.
func (s *SM) mergeHeldTokens(acts *[]Action) {
	tok := s.possessed
	if tok == nil || s.passing || len(s.tbmTokens) == 0 {
		return
	}
	maxEpoch, maxSeq := tok.Epoch, tok.Seq
	for _, other := range s.tbmTokens {
		for _, m := range other.Members {
			if !tok.HasMember(m) {
				tok.Members = append(tok.Members, m)
			}
		}
		// Concatenate messages, skipping IDs already on our token.
		have := make(map[wire.MessageID]bool, len(tok.Msgs))
		for i := range tok.Msgs {
			have[tok.Msgs[i].ID()] = true
		}
		for _, m := range other.Msgs {
			if !have[m.ID()] {
				tok.Msgs = append(tok.Msgs, m)
			}
		}
		if other.Epoch > maxEpoch {
			maxEpoch = other.Epoch
		}
		if other.Seq > maxSeq {
			maxSeq = other.Seq
		}
	}
	s.tbmTokens = nil
	tok.Epoch = maxEpoch + 1
	tok.Seq = maxSeq + 1
	tok.TBM = false
	// Every message restarts its round under the merged membership: no
	// member is counted yet; our own ingest below counts us first.
	for i := range tok.Msgs {
		tok.Msgs[i].Visited = 0
	}
	s.adoptMembersFromLocal(tok, false, acts)
	if s.stopped {
		return
	}
	s.appendSysMerge(tok, acts)
	s.ingest(tok, acts)
	s.noteCopy(tok)
	*acts = append(*acts, ActMergeCompleted{Members: s.Members(), Epoch: tok.Epoch})
	*acts = append(*acts, ActSetTimer{Kind: TimerTokenHold, D: s.cfg.TokenHold})
}

// appendSysMerge announces the merge in the agreed total order.
func (s *SM) appendSysMerge(tok *wire.Token, acts *[]Action) {
	s.nextSeq++
	m := wire.Message{
		Origin:  s.id,
		Seq:     s.nextSeq,
		Sys:     wire.SysGroupMerged,
		Subject: tok.GroupID(),
		Visited: 0, // counted by the ingest that follows
	}
	tok.Msgs = append(tok.Msgs, m)
}
