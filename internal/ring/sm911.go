package ring

import "repro/internal/wire"

// This file implements the 911 token-recovery and join protocol (§2.3).
//
// A starving node fans a 911 request out to every other member of its
// view, carrying the (epoch, seq) of its freshest token copy. Each member
// replies with a grant or a denial; the request is denied by any node that
// holds the live token, is vouching for a token handed to a merging group,
// or possesses a fresher copy. Regeneration requires a grant from every
// live member — members whose 911 delivery fails outright are presumed
// dead for the round. A 911 from a node outside the receiver's membership
// is treated as a join request, which also heals broken links and failure
// detector false alarms exactly as described in the paper.

// start911 begins a new 911 round.
func (s *SM) start911(acts *[]Action) {
	s.reqID++
	s.grants = make(map[wire.NodeID]bool)
	s.unreachable = make(map[wire.NodeID]bool)
	s.denied = false
	others := 0
	for _, m := range s.members {
		if m == s.id {
			continue
		}
		others++
		*acts = append(*acts, ActSend911{
			To: m,
			M:  wire.Msg911{From: s.id, Epoch: s.copyEpoch, Seq: s.copySeq, ReqID: s.reqID},
		})
	}
	if others == 0 {
		// Defensive: a singleton cannot lose its token to another node,
		// but if we ever starve alone, regenerate immediately.
		s.regenerate(acts)
	}
}

// startJoinRound begins a rejoin round (§2.3): the tokenless node asks
// every eligible peer for admission. A peer that is a member of a live
// group treats the 911 as a join request and admits us on its next
// token; a peer as cold as we are answers with its own epoch-0 state,
// and the freshness tie-break (node ID) elects exactly one node to seed
// the group the rest then join. With no eligible peers at all — the
// single-node cluster — the node seeds immediately.
func (s *SM) startJoinRound(acts *[]Action) {
	s.reqID++
	s.grants = make(map[wire.NodeID]bool)
	s.unreachable = make(map[wire.NodeID]bool)
	s.denied = false
	targets := 0
	for id := range s.eligible {
		targets++
		*acts = append(*acts, ActSend911{
			To: id,
			M:  wire.Msg911{From: s.id, Epoch: s.copyEpoch, Seq: s.copySeq, ReqID: s.reqID},
		})
	}
	if targets == 0 {
		s.regenerate(acts)
	}
}

// maybeSettleJoin seeds a fresh group once every eligible peer has
// proven unable to admit us — unreachable, or no fresher lineage than
// ours after the ID tie-break. Any fresher peer instead sets denied and
// we keep waiting for its group's token.
func (s *SM) maybeSettleJoin(acts *[]Action) {
	if !s.joining || s.state != Starving || s.denied {
		return
	}
	for id := range s.eligible {
		if !s.grants[id] && !s.unreachable[id] {
			return
		}
	}
	s.regenerate(acts)
}

// clear911 resets round state after the token reappears.
func (s *SM) clear911() {
	s.grants = nil
	s.unreachable = nil
	s.denied = false
}

// on911 answers a 911 request (§2.3).
func (s *SM) on911(m wire.Msg911, acts *[]Action) {
	if m.From == s.id {
		return
	}
	reply := wire.Msg911Reply{
		From:  s.id,
		ReqID: m.ReqID,
		Epoch: s.copyEpoch,
		Seq:   s.copySeq,
	}
	if !s.isMember(m.From) {
		// Join request: admit on our next token (§2.3). This is also how
		// falsely removed nodes automatically rejoin.
		s.queueJoin(m.From)
		reply.JoinPending = true
		*acts = append(*acts, ActSend911Reply{To: m.From, M: reply})
		s.flushJoinsIfPossible(acts)
		return
	}
	switch {
	case s.possessed != nil:
		// The token is not lost: deny (§2.3).
	case s.mergePending:
		// We handed the token to a merging group and vouch for it.
	case s.fresherThan(m.Epoch, m.Seq, m.From):
		// Our local copy is more recent: deny (§2.3).
	default:
		reply.Grant = true
	}
	*acts = append(*acts, ActSend911Reply{To: m.From, M: reply})
}

// fresherThan reports whether our copy is strictly fresher than the
// requester's, with the node ID as the deterministic tie-breaker so that
// at most one node can win a symmetric round.
func (s *SM) fresherThan(epoch, seq uint64, from wire.NodeID) bool {
	if s.copyEpoch != epoch {
		return s.copyEpoch > epoch
	}
	if s.copySeq != seq {
		return s.copySeq > seq
	}
	return s.id > from
}

// on911Reply processes a grant/denial for our current round.
func (s *SM) on911Reply(m wire.Msg911Reply, acts *[]Action) {
	if s.state != Starving || m.ReqID != s.reqID {
		return
	}
	if s.joining {
		// Rejoin round: a fresher lineage exists somewhere — wait for its
		// group to admit us. A peer no fresher than us (after the ID
		// tie-break) cannot admit us, whatever it answered; once every
		// eligible peer is in that bucket or unreachable, we seed.
		if s.fresherThan(m.Epoch, m.Seq, m.From) {
			s.grants[m.From] = true
			s.maybeSettleJoin(acts)
		} else {
			s.denied = true
		}
		return
	}
	switch {
	case m.JoinPending:
		// We are not in the replier's membership. If the replier's token
		// copy is fresher than ours, a live-er lineage exists: wait for
		// that group to admit us (§2.3). If ours is fresher, the replier
		// is itself behind a stale view and must not be allowed to block
		// regeneration forever — count it as a grant; any duplicate
		// lineage that results is reconciled by the epoch rule and the
		// merge protocol.
		if s.fresherThan(m.Epoch, m.Seq, m.From) {
			s.grants[m.From] = true
			s.maybeRegenerate(acts)
		} else {
			s.denied = true
		}
	case m.Grant:
		s.grants[m.From] = true
		s.maybeRegenerate(acts)
	default:
		// A denial means a fresher copy or a live token exists; this
		// round is over, the retry timer starts the next one.
		s.denied = true
	}
}

// on911SendFailed marks a member unreachable for this round.
func (s *SM) on911SendFailed(e Ev911SendFailed, acts *[]Action) {
	if s.state != Starving || e.ReqID != s.reqID {
		return
	}
	s.unreachable[e.To] = true
	if s.joining {
		s.maybeSettleJoin(acts)
	} else {
		s.maybeRegenerate(acts)
	}
}

// maybeRegenerate regenerates the token once every other member of our
// view has granted or is unreachable and nobody denied (§2.3).
func (s *SM) maybeRegenerate(acts *[]Action) {
	if s.state != Starving || s.denied {
		return
	}
	for _, m := range s.members {
		if m == s.id {
			continue
		}
		if !s.grants[m] && !s.unreachable[m] {
			return
		}
	}
	s.regenerate(acts)
}

// regenerate recreates the token from the local copy: epoch bumped so
// stale in-flight tokens are discarded, visited counters reset so every
// surviving message makes one full round under the new epoch.
func (s *SM) regenerate(acts *[]Action) {
	wasJoining := s.joining
	tok := s.tokenCopy.Clone()
	tok.Epoch++
	tok.Seq++
	tok.TBM = false
	for i := range tok.Msgs {
		tok.Msgs[i].Visited = 0
	}
	s.possessed = tok
	s.passing = false
	s.joining = false
	s.attachUsed = 0 // regeneration starts a fresh possession and budget
	s.clear911()
	s.setState(Eating, acts)
	*acts = append(*acts, ActStopTimer{Kind: TimerHungry})
	*acts = append(*acts, ActStopTimer{Kind: TimerStarvingRetry})
	*acts = append(*acts, ActTokenRegenerated{Epoch: tok.Epoch})
	if wasJoining && equalIDs(s.members, tok.Members) {
		// The rejoin fallback seeds the group with the same singleton
		// view it booted with, so adoptMembers alone would not emit: a
		// replica recovered from its WAL keys on a live-token membership
		// event to adopt that state as the ring state, so the anchor
		// must fire even though the member list is unchanged.
		*acts = append(*acts, ActMembershipChanged{Members: s.Members(), Epoch: tok.Epoch})
	} else {
		s.adoptMembers(tok, acts)
	}
	if s.stopped {
		return
	}
	// Deliver anything on the regenerated token we had not seen (we are
	// the first visit of the new round).
	s.ingest(tok, acts)
	s.noteCopy(tok)
	*acts = append(*acts, ActSetTimer{Kind: TimerTokenHold, D: s.cfg.TokenHold})
}

// isMember reports whether id is in our current view.
func (s *SM) isMember(id wire.NodeID) bool {
	for _, m := range s.members {
		if m == id {
			return true
		}
	}
	return false
}

// queueJoin records a join request, deduplicated.
func (s *SM) queueJoin(id wire.NodeID) {
	for _, j := range s.pendingJoins {
		if j == id {
			return
		}
	}
	s.pendingJoins = append(s.pendingJoins, id)
}

// flushJoinsIfPossible admits pending joiners immediately when we already
// hold the token; otherwise they wait for the next token arrival.
func (s *SM) flushJoinsIfPossible(acts *[]Action) {
	if s.possessed == nil || s.passing {
		return
	}
	tok := s.possessed
	s.admitJoiners(tok, acts)
	// Pass promptly so the joiner receives the token (§2.3): the paper
	// sends the token to the new node right after admitting it.
	if !s.holding {
		s.passToken(acts)
	}
}
