package health

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestHealthyResourcesNeverFire(t *testing.T) {
	clk := clock.NewFake(time.Time{})
	fired := make(chan string, 1)
	m := NewMonitor(Config{Interval: time.Second, Clock: clk}, func(r string) { fired <- r })
	m.Register("ok", func() error { return nil })
	m.Start()
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second)
	}
	select {
	case r := <-fired:
		t.Fatalf("healthy resource %q reported dead", r)
	default:
	}
}

func TestFailureThreshold(t *testing.T) {
	clk := clock.NewFake(time.Time{})
	fired := make(chan string, 1)
	m := NewMonitor(Config{Interval: time.Second, FailThreshold: 3, Clock: clk}, func(r string) { fired <- r })
	var mu sync.Mutex
	failing := false
	m.Register("uplink", func() error {
		mu.Lock()
		defer mu.Unlock()
		if failing {
			return errors.New("down")
		}
		return nil
	})
	m.Start()
	clk.Advance(time.Second) // healthy round
	mu.Lock()
	failing = true
	mu.Unlock()
	clk.Advance(time.Second)
	clk.Advance(time.Second)
	select {
	case <-fired:
		t.Fatal("fired before threshold")
	default:
	}
	clk.Advance(time.Second) // third consecutive failure
	select {
	case r := <-fired:
		if r != "uplink" {
			t.Fatalf("fired for %q", r)
		}
	default:
		t.Fatal("did not fire at threshold")
	}
}

func TestRecoveryResetsCount(t *testing.T) {
	clk := clock.NewFake(time.Time{})
	fired := make(chan string, 1)
	m := NewMonitor(Config{Interval: time.Second, FailThreshold: 2, Clock: clk}, func(r string) { fired <- r })
	var mu sync.Mutex
	fail := false
	m.Register("flappy", func() error {
		mu.Lock()
		defer mu.Unlock()
		if fail {
			return errors.New("x")
		}
		return nil
	})
	m.Start()
	for i := 0; i < 5; i++ {
		mu.Lock()
		fail = true
		mu.Unlock()
		clk.Advance(time.Second) // one failure
		mu.Lock()
		fail = false
		mu.Unlock()
		clk.Advance(time.Second) // recovery resets
	}
	select {
	case <-fired:
		t.Fatal("flapping below threshold fired")
	default:
	}
}

func TestManualResource(t *testing.T) {
	clk := clock.NewFake(time.Time{})
	fired := make(chan string, 1)
	m := NewMonitor(Config{Interval: time.Second, FailThreshold: 2, Clock: clk}, func(r string) { fired <- r })
	m.RegisterManual("cable")
	m.Start()
	clk.Advance(time.Second)
	m.SetHealthy("cable", false)
	clk.Advance(time.Second)
	clk.Advance(time.Second)
	select {
	case r := <-fired:
		if r != "cable" {
			t.Fatalf("fired for %q", r)
		}
	default:
		t.Fatal("manual resource failure not reported")
	}
}

func TestFiresAtMostOnce(t *testing.T) {
	clk := clock.NewFake(time.Time{})
	var mu sync.Mutex
	count := 0
	m := NewMonitor(Config{Interval: time.Second, Clock: clk}, func(string) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	m.Register("dead", func() error { return errors.New("x") })
	m.Start()
	for i := 0; i < 5; i++ {
		clk.Advance(time.Second)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("onFail invoked %d times, want 1", count)
	}
}

func TestStopHaltsProbing(t *testing.T) {
	clk := clock.NewFake(time.Time{})
	var mu sync.Mutex
	probes := 0
	m := NewMonitor(Config{Interval: time.Second, Clock: clk}, nil)
	m.Register("r", func() error {
		mu.Lock()
		probes++
		mu.Unlock()
		return nil
	})
	m.Start()
	clk.Advance(time.Second)
	m.Stop()
	clk.Advance(5 * time.Second)
	mu.Lock()
	defer mu.Unlock()
	if probes != 1 {
		t.Fatalf("probes = %d after stop, want 1", probes)
	}
}

func TestStatusListsResources(t *testing.T) {
	m := NewMonitor(Config{}, nil)
	m.Register("a", func() error { return nil })
	if s := m.Status(); s == "" {
		t.Fatal("empty status")
	}
}
