// Package health implements the critical-resource monitor of §2.4/§3.2:
// each member node watches a configurable set of critical resources
// (applications, network interfaces, remote Internet links) and shuts
// itself down — removing itself from the cluster so traffic shifts away —
// when any of them fails.
package health

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/clock"
)

// Check probes one resource; a non-nil error means the probe failed.
type Check func() error

// Config tunes the monitor.
type Config struct {
	// Interval between probe rounds.
	Interval time.Duration
	// FailThreshold is how many consecutive probe failures declare the
	// resource dead; it absorbs transient glitches. Minimum 1.
	FailThreshold int
	// Clock defaults to the real clock.
	Clock clock.Clock
}

// Monitor watches registered resources and reports the first failure.
type Monitor struct {
	cfg    Config
	onFail func(resource string)

	mu        sync.Mutex
	resources map[string]*resource
	timer     clock.Timer
	running   bool
	stopped   bool
	fired     bool
}

type resource struct {
	check    Check
	failures int
	manual   bool
	healthy  bool
}

// NewMonitor builds a monitor; onFail is invoked at most once, with the
// name of the first resource declared dead.
func NewMonitor(cfg Config, onFail func(resource string)) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.FailThreshold < 1 {
		cfg.FailThreshold = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	return &Monitor{cfg: cfg, onFail: onFail, resources: make(map[string]*resource)}
}

// Register adds a probed resource. Registering an existing name replaces
// its check and resets its failure count.
func (m *Monitor) Register(name string, check Check) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resources[name] = &resource{check: check}
}

// RegisterManual adds a resource whose health is set externally with
// SetHealthy (e.g. a link-state callback). It starts healthy.
func (m *Monitor) RegisterManual(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.resources[name] = &resource{manual: true, healthy: true}
}

// SetHealthy updates a manual resource. Marking it unhealthy counts as one
// probe failure per monitoring round until restored.
func (m *Monitor) SetHealthy(name string, healthy bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.resources[name]; ok && r.manual {
		r.healthy = healthy
		if healthy {
			r.failures = 0
		}
	}
}

// Start begins probing. It is idempotent.
func (m *Monitor) Start() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.running || m.stopped {
		return
	}
	m.running = true
	m.armLocked()
}

func (m *Monitor) armLocked() {
	m.timer = m.cfg.Clock.AfterFunc(m.cfg.Interval, m.round)
}

// round probes every resource once.
func (m *Monitor) round() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	type probe struct {
		name  string
		check Check
	}
	var probes []probe
	for name, r := range m.resources {
		if r.manual {
			if !r.healthy {
				r.failures++
			}
			continue
		}
		probes = append(probes, probe{name, r.check})
	}
	m.mu.Unlock()

	// Run checks without holding the lock: probes may be slow.
	results := make(map[string]error, len(probes))
	for _, p := range probes {
		results[p.name] = p.check()
	}

	m.mu.Lock()
	var dead string
	for name, err := range results {
		r, ok := m.resources[name]
		if !ok {
			continue
		}
		if err != nil {
			r.failures++
		} else {
			r.failures = 0
		}
	}
	for name, r := range m.resources {
		if r.failures >= m.cfg.FailThreshold {
			dead = name
			break
		}
	}
	if dead != "" && !m.fired {
		m.fired = true
		cb := m.onFail
		m.mu.Unlock()
		if cb != nil {
			cb(dead)
		}
		return // a dead critical resource stops the monitor (§2.4)
	}
	if m.running && !m.stopped {
		m.armLocked()
	}
	m.mu.Unlock()
}

// Stop halts probing.
func (m *Monitor) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stopped = true
	m.running = false
	if m.timer != nil {
		m.timer.Stop()
	}
}

// Status summarizes resource states for diagnostics.
func (m *Monitor) Status() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := ""
	for name, r := range m.resources {
		out += fmt.Sprintf("%s: failures=%d\n", name, r.failures)
	}
	return out
}
