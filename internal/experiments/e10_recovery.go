package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	raincore "repro"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/transport"
)

// --- E10: durability — WAL write overhead and crash-restart recovery ---
//
// The durability subsystem's claim is twofold. First, appending every
// ordered apply to a checksummed per-replica WAL is cheap as long as the
// sync policy batches: the ring's token cadence, not the disk, bounds
// ordered write throughput, so fsync_mode=batch must stay within a few
// percent of running with no storage at all (the acceptance bar is 10%).
// Second, a crashed member that restarts from its WAL replays its local
// snapshot + log tail and fast-forwards through a delta state transfer
// covering only the ops it missed, instead of retransferring the full
// keyspace — so recovery cost tracks the downtime gap, not the keyspace.
//
// E10 measures both end to end through the public facade: four identical
// write runs (no storage, then file-backed WALs under fsync none, batch
// and always), followed by a loaded 3-node cluster whose highest member
// is crashed kill -9 style (silenced on the switch, runtime reaped, WAL
// left on disk), restarted from its WAL dir, and timed back to keyspace
// equivalence; the same crash is then repeated with the WAL dir wiped,
// forcing the full-retransfer path the WAL exists to avoid.

// E10Config sizes the durability experiment.
type E10Config struct {
	// Nodes and Shards size the cluster (the crash victim is the
	// highest node ID, never the ring leader).
	Nodes  int
	Shards int
	// TokenHoldMS and MaxBatch pin the ordered ceiling.
	TokenHoldMS int
	MaxBatch    int
	// Writers is the closed-loop writer count for the overhead phases.
	Writers int
	// Keys bounds the overhead keyspace (reused keys keep the state
	// small while the log grows, exercising compaction).
	Keys int
	// PayloadBytes sizes each written value.
	PayloadBytes int
	// Warmup and Duration bound each overhead phase's measurement, and
	// Reps is how many windows each mode runs: the phase reports the
	// best one, so a scheduler stall or a compaction landing inside one
	// window does not masquerade as steady-state fsync cost.
	Warmup   time.Duration
	Duration time.Duration
	Reps     int
	// SeedKeys load the cluster before the crash; GapKeys are written
	// while the victim is down and must flow through state transfer.
	SeedKeys int
	GapKeys  int
	// SnapshotEveryBytes is the WAL compaction threshold, sized small
	// enough that the overhead phases compact at least once.
	SnapshotEveryBytes int64
}

// DefaultE10 runs 8 writers against a 3-node, 2-shard cluster with
// second-long measurement windows.
func DefaultE10() E10Config {
	return E10Config{
		Nodes:              3,
		Shards:             2,
		TokenHoldMS:        4,
		MaxBatch:           8,
		Writers:            8,
		Keys:               128,
		PayloadBytes:       128,
		Warmup:             250 * time.Millisecond,
		Duration:           1000 * time.Millisecond,
		Reps:               3,
		SeedKeys:           400,
		GapKeys:            160,
		SnapshotEveryBytes: 64 << 10,
	}
}

// QuickE10 is the CI size: shorter windows, smaller keyspace.
func QuickE10() E10Config {
	cfg := DefaultE10()
	cfg.Writers = 4
	cfg.Warmup = 100 * time.Millisecond
	cfg.Duration = 350 * time.Millisecond
	cfg.Reps = 2
	cfg.SeedKeys = 120
	cfg.GapKeys = 48
	cfg.SnapshotEveryBytes = 32 << 10
	return cfg
}

// E10Overhead is one write-throughput phase under a durability mode.
type E10Overhead struct {
	// Mode is "off" (no storage) or a WAL fsync mode.
	Mode string `json:"fsync_mode"`
	// SetsPS is the completed ordered writes per second in the window.
	SetsPS float64 `json:"sets_per_sec"`
	// WALAppends and WALFsyncs count the WAL work the window generated,
	// summed across members.
	WALAppends int64 `json:"wal_appends"`
	WALFsyncs  int64 `json:"wal_fsyncs"`
	// Compactions counts snapshot compactions during the window.
	Compactions int64 `json:"snapshot_compactions"`
	// OverheadPct is the throughput cost vs the "off" baseline.
	OverheadPct float64 `json:"overhead_pct"`
}

// E10Recovery is one crash-restart measurement.
type E10Recovery struct {
	// Path is "wal_delta" (restart from the WAL dir) or
	// "full_retransfer" (WAL dir wiped before the restart).
	Path string `json:"path"`
	// Millis is open-to-caught-up: from reopening the member to its
	// replica serving the last key written during its downtime.
	Millis float64 `json:"recovery_ms"`
	// Replayed counts WAL records replayed locally at open.
	Replayed int64 `json:"replayed_records"`
	// Deltas and Fulls count the state transfers the survivors served
	// for this rejoin: the WAL path must be all deltas, the wiped path
	// all fulls.
	Deltas int64 `json:"deltas_served"`
	Fulls  int64 `json:"fulls_served"`
}

// E10Result is the complete durability measurement.
type E10Result struct {
	Overhead []E10Overhead `json:"overhead"`
	Recovery []E10Recovery `json:"recovery"`
	// SpeedupX is full-retransfer recovery time over WAL recovery time.
	SpeedupX float64 `json:"recovery_speedup_x"`
	// BatchWithinTarget reports the acceptance bar: fsync_mode=batch
	// write overhead at or under 10%.
	BatchWithinTarget bool `json:"batch_overhead_within_10pct"`
}

// e10Grid is a facade cluster over one simulated switch whose members
// can be crashed (silenced + reaped, storage left behind) and reopened.
type e10Grid struct {
	net  *simnet.Network
	ids  []core.NodeID
	cls  map[core.NodeID]*raincore.Cluster
	dirs map[core.NodeID]string
	cfg  E10Config
	mode string
	// batch overrides the write-coalescer configuration on every member
	// (nil keeps the library default). E11 sweeps it; E10 leaves it alone.
	batch *raincore.WriteBatching
}

// e10Open builds the grid. mode "off" disables storage; any other value
// is the WAL fsync mode, with per-member dirs under root.
func e10Open(cfg E10Config, mode, root string) (*e10Grid, error) {
	return e10OpenBatched(cfg, mode, root, nil)
}

// e10OpenBatched is e10Open with a write-batching override for the E11
// phases.
func e10OpenBatched(cfg E10Config, mode, root string, batch *raincore.WriteBatching) (*e10Grid, error) {
	g := &e10Grid{
		net:   simnet.New(simnet.Options{}),
		cls:   make(map[core.NodeID]*raincore.Cluster),
		dirs:  make(map[core.NodeID]string),
		cfg:   cfg,
		mode:  mode,
		batch: batch,
	}
	for i := 1; i <= cfg.Nodes; i++ {
		g.ids = append(g.ids, core.NodeID(i))
	}
	for _, id := range g.ids {
		if mode != "off" {
			g.dirs[id] = filepath.Join(root, fmt.Sprintf("n%d", id))
		}
		if err := g.openMember(id); err != nil {
			g.Close()
			return nil, err
		}
	}
	return g, nil
}

// openMember opens (or reopens) one member over the switch. SeqBase is
// left at zero so a restarted incarnation seeds a fresh sequence range
// from the wall clock, exactly like a production restart.
func (g *e10Grid) openMember(id core.NodeID) error {
	ep, err := g.net.Endpoint(core.Addr(id))
	if err != nil {
		return err
	}
	tc := transport.DefaultConfig()
	tc.AckTimeout = 10 * time.Millisecond
	rc := core.FastRing()
	rc.TokenHold = time.Duration(g.cfg.TokenHoldMS) * time.Millisecond
	rc.MaxBatch = g.cfg.MaxBatch
	rc.Eligible = g.ids
	opts := []raincore.Option{
		raincore.WithID(id),
		raincore.WithRings(g.cfg.Shards),
		raincore.WithRingConfig(rc),
		raincore.WithTransportConfig(tc),
	}
	if dir := g.dirs[id]; dir != "" {
		opts = append(opts,
			raincore.WithStorage(dir),
			raincore.WithFsyncMode(g.mode),
			raincore.WithSnapshotEvery(g.cfg.SnapshotEveryBytes))
	}
	if g.batch != nil {
		opts = append(opts, raincore.WithWriteBatching(*g.batch))
	}
	for _, other := range g.ids {
		if other != id {
			opts = append(opts, raincore.WithPeer(other, transport.Addr(core.Addr(other))))
		}
	}
	cl, err := raincore.Open(context.Background(), []raincore.PacketConn{transport.NewSimConn(ep)}, opts...)
	if err != nil {
		return err
	}
	g.cls[id] = cl
	return nil
}

// crash silences id on the switch and reaps its runtime — no leave, no
// goodbye; the WAL dir survives like a disk.
func (g *e10Grid) crash(id core.NodeID) {
	g.net.SetNodeDown(core.Addr(id), true)
	_ = g.cls[id].Runtime().Close()
}

// waitAssembled blocks until every member sees the full ID set.
func (g *e10Grid) waitAssembled(timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	for _, id := range g.ids {
		if err := g.cls[id].WaitMembers(ctx, len(g.ids)); err != nil {
			return fmt.Errorf("member %v: %w", id, err)
		}
	}
	return nil
}

// counterSum adds a registry counter across every member.
func (g *e10Grid) counterSum(name string) int64 {
	var total int64
	for _, cl := range g.cls {
		total += cl.Stats().Counter(name).Load()
	}
	return total
}

// Close shuts every member down and stops the switch.
func (g *e10Grid) Close() {
	for _, cl := range g.cls {
		_ = cl.Close()
	}
	g.net.Close()
}

// e10WriteWindow runs the closed-loop write workload through member 1
// and returns completed sets/sec over the recorded window.
func e10WriteWindow(cfg E10Config, g *e10Grid) (float64, error) {
	cl := g.cls[g.ids[0]]
	payload := make([]byte, cfg.PayloadBytes)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var recording atomic.Bool
	var sets atomic.Int64
	errCh := make(chan error, cfg.Writers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ctx.Err() == nil; i++ {
				key := fmt.Sprintf("e10-%d-%d", w, i%cfg.Keys)
				sctx, scancel := context.WithTimeout(ctx, 10*time.Second)
				err := cl.Set(sctx, key, payload)
				scancel()
				if err != nil {
					if ctx.Err() == nil {
						select {
						case errCh <- err:
						default:
						}
					}
					return
				}
				if recording.Load() {
					sets.Add(1)
				}
			}
		}()
	}
	time.Sleep(cfg.Warmup)
	recording.Store(true)
	time.Sleep(cfg.Duration)
	recording.Store(false)
	cancel()
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return float64(sets.Load()) / cfg.Duration.Seconds(), nil
}

// e10OverheadPhase measures one durability mode from a fresh grid.
func e10OverheadPhase(cfg E10Config, mode string) (E10Overhead, error) {
	row := E10Overhead{Mode: mode}
	root := ""
	if mode != "off" {
		var err error
		if root, err = os.MkdirTemp("", "e10-"+mode+"-"); err != nil {
			return row, err
		}
		defer os.RemoveAll(root)
	}
	g, err := e10Open(cfg, mode, root)
	if err != nil {
		return row, err
	}
	defer g.Close()
	if err := g.waitAssembled(30 * time.Second); err != nil {
		return row, err
	}
	appendsBefore := g.counterSum(stats.MetricWALAppends)
	fsyncsBefore := g.counterSum(stats.MetricWALFsyncs)
	compactBefore := g.counterSum(stats.MetricSnapshotCompactions)
	// Best of Reps windows: steady-state cost, not whichever window a
	// scheduler stall or a compaction happened to land in. WAL counters
	// accumulate over the whole phase so the log keeps growing (and
	// compacting) between windows, like a long-running member's would.
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	for rep := 0; rep < reps; rep++ {
		setsPS, err := e10WriteWindow(cfg, g)
		if err != nil {
			return row, err
		}
		if setsPS > row.SetsPS {
			row.SetsPS = setsPS
		}
	}
	row.WALAppends = g.counterSum(stats.MetricWALAppends) - appendsBefore
	row.WALFsyncs = g.counterSum(stats.MetricWALFsyncs) - fsyncsBefore
	row.Compactions = g.counterSum(stats.MetricSnapshotCompactions) - compactBefore
	return row, nil
}

// e10WaitValue polls an eventual read on cl until key holds a value.
func e10WaitValue(cl *raincore.Cluster, key string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if _, ok, _ := cl.Get(context.Background(), key); ok {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("key %q never appeared within %v", key, timeout)
}

// e10CrashRestart crashes the victim, waits for the survivors to remove
// it, writes the downtime gap through a survivor, optionally wipes the
// victim's WAL dir, reopens it, and times it back to keyspace
// equivalence with the survivors.
func e10CrashRestart(cfg E10Config, g *e10Grid, victim core.NodeID, gapPrefix string, wipe bool) (E10Recovery, error) {
	rec := E10Recovery{Path: "wal_delta"}
	if wipe {
		rec.Path = "full_retransfer"
	}
	survivor := g.cls[g.ids[0]]
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// A burst right before the crash leaves fresh records in the victim's
	// WAL tail: a restart after a quiet spell would find its whole state
	// compacted into the snapshot and replay nothing, which is a fine
	// recovery but an empty "replayed" measurement.
	for i := 0; i < 16; i++ {
		if err := survivor.Set(ctx, fmt.Sprintf("%s-pre-%d", gapPrefix, i), []byte("p")); err != nil {
			return rec, fmt.Errorf("pre-crash write: %w", err)
		}
	}
	if err := e10WaitValue(g.cls[victim], fmt.Sprintf("%s-pre-%d", gapPrefix, 15), 30*time.Second); err != nil {
		return rec, fmt.Errorf("pre-crash replication: %w", err)
	}
	g.crash(victim)
	// The rejoin under measurement is the paper's crash-detect-readmit
	// cycle. Restarting before the failure detector has removed the
	// victim would re-admit the same member with no membership change —
	// and so no state transfer at all — so the gap only starts once
	// every survivor has seen the death.
	for _, id := range g.ids {
		if id != victim {
			if err := g.cls[id].WaitMembers(ctx, len(g.ids)-1); err != nil {
				return rec, fmt.Errorf("survivors never removed the victim: %w", err)
			}
		}
	}
	for i := 0; i < cfg.GapKeys; i++ {
		if err := survivor.Set(ctx, fmt.Sprintf("%s-%d", gapPrefix, i), []byte("g")); err != nil {
			return rec, fmt.Errorf("gap write: %w", err)
		}
	}
	if wipe {
		if err := os.RemoveAll(g.dirs[victim]); err != nil {
			return rec, err
		}
	}
	var deltasBefore, fullsBefore int64
	for _, id := range g.ids {
		if id != victim {
			deltasBefore += g.cls[id].Stats().Counter(stats.MetricRecoveryDeltas).Load()
			fullsBefore += g.cls[id].Stats().Counter(stats.MetricRecoveryFulls).Load()
		}
	}
	g.net.SetNodeDown(core.Addr(victim), false)
	start := time.Now()
	if err := g.openMember(victim); err != nil {
		return rec, err
	}
	restarted := g.cls[victim]
	// Caught up means keyspace equivalence with a survivor — the same
	// key count and the last key written before and during the downtime
	// — not just one sentinel landing early off the admitting token.
	lastGap := fmt.Sprintf("%s-%d", gapPrefix, cfg.GapKeys-1)
	lastSeed := fmt.Sprintf("e10-seed-%d", cfg.SeedKeys-1)
	for _, key := range []string{lastGap, lastSeed} {
		if err := e10WaitValue(restarted, key, 60*time.Second); err != nil {
			return rec, fmt.Errorf("%s: %w", rec.Path, err)
		}
	}
	want := len(survivor.Keys())
	deadline := time.Now().Add(60 * time.Second)
	for len(restarted.Keys()) != want {
		if time.Now().After(deadline) {
			return rec, fmt.Errorf("%s: restarted member holds %d keys, survivors hold %d",
				rec.Path, len(restarted.Keys()), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	rec.Millis = float64(time.Since(start).Microseconds()) / 1000
	rec.Replayed = restarted.Stats().Counter(stats.MetricRecoveryReplayed).Load()
	for _, id := range g.ids {
		if id != victim {
			rec.Deltas += g.cls[id].Stats().Counter(stats.MetricRecoveryDeltas).Load()
			rec.Fulls += g.cls[id].Stats().Counter(stats.MetricRecoveryFulls).Load()
		}
	}
	rec.Deltas -= deltasBefore
	rec.Fulls -= fullsBefore
	return rec, nil
}

// e10MeasuredRestart runs e10CrashRestart until the rejoin is served
// through the counted join-path responder. The ring protocol has a
// second, legitimate rejoin route — the restarted node seeds a
// singleton group and the merge's sync-fallback leader broadcasts an
// authoritative snapshot — but that broadcast bypasses the delta/full
// responder the experiment classifies by, so a run that raced onto it
// cannot be labeled. Which route wins is a freshness race at 911 time;
// re-crashing the victim re-rolls it.
func e10MeasuredRestart(cfg E10Config, g *e10Grid, victim core.NodeID, gapPrefix string, wipe bool) (E10Recovery, error) {
	const attempts = 4
	var rec E10Recovery
	var err error
	for a := 0; a < attempts; a++ {
		rec, err = e10CrashRestart(cfg, g, victim, fmt.Sprintf("%s-r%d", gapPrefix, a), wipe)
		if err != nil {
			return rec, err
		}
		if wipe {
			if rec.Fulls > 0 && rec.Replayed == 0 {
				return rec, nil
			}
		} else if rec.Deltas > 0 && rec.Fulls == 0 && rec.Replayed > 0 {
			return rec, nil
		}
	}
	return rec, fmt.Errorf("%s: rejoin kept taking the uncounted merge route after %d attempts (replayed=%d deltas=%d fulls=%d)",
		rec.Path, attempts, rec.Replayed, rec.Deltas, rec.Fulls)
}

// e10Modes lists the overhead phases; "off" is the baseline.
var e10Modes = []string{"off", "none", "batch", "always"}

// E10Durability runs the full experiment.
func E10Durability(cfg E10Config) (*E10Result, error) {
	if cfg.Nodes < 2 || cfg.Writers < 1 || cfg.SeedKeys < 1 || cfg.GapKeys < 1 {
		return nil, fmt.Errorf("E10: need >= 2 nodes, >= 1 writer, seed and gap keys")
	}
	res := &E10Result{}

	// Part 1: write overhead per durability mode.
	var baseline float64
	for _, mode := range e10Modes {
		row, err := e10OverheadPhase(cfg, mode)
		if err != nil {
			return nil, fmt.Errorf("E10 overhead %s: %w", mode, err)
		}
		if mode == "off" {
			baseline = row.SetsPS
		} else if baseline > 0 {
			row.OverheadPct = 100 * (baseline - row.SetsPS) / baseline
		}
		res.Overhead = append(res.Overhead, row)
	}
	for _, row := range res.Overhead {
		if row.Mode == "batch" {
			res.BatchWithinTarget = row.OverheadPct <= 10
		}
	}

	// Part 2: crash-restart recovery, WAL then wiped.
	root, err := os.MkdirTemp("", "e10-recovery-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	g, err := e10Open(cfg, "batch", root)
	if err != nil {
		return nil, err
	}
	defer g.Close()
	if err := g.waitAssembled(30 * time.Second); err != nil {
		return nil, err
	}
	seedCl := g.cls[g.ids[0]]
	victim := g.ids[len(g.ids)-1]
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	payload := make([]byte, cfg.PayloadBytes)
	for i := 0; i < cfg.SeedKeys; i++ {
		if err := seedCl.Set(ctx, fmt.Sprintf("e10-seed-%d", i), payload); err != nil {
			return nil, fmt.Errorf("E10 seed: %w", err)
		}
	}
	// Every seed write must be in the victim's replica (and WAL) before
	// the crash, or the "replayed" count would undercount the load.
	if err := e10WaitValue(g.cls[victim], fmt.Sprintf("e10-seed-%d", cfg.SeedKeys-1), 30*time.Second); err != nil {
		return nil, fmt.Errorf("E10 seed replication: %w", err)
	}

	// Best-of-Reps, like the write windows: a restart's wall clock folds
	// in 911 retry timers and token-admission cadence, so the minimum is
	// the cleanest view of the delta-vs-full transfer cost itself.
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	measure := func(prefix string, wipe bool) (E10Recovery, error) {
		var best E10Recovery
		for rep := 0; rep < reps; rep++ {
			rec, err := e10MeasuredRestart(cfg, g, victim, fmt.Sprintf("%s%d", prefix, rep), wipe)
			if err != nil {
				return rec, err
			}
			if rep == 0 || rec.Millis < best.Millis {
				best = rec
			}
		}
		return best, nil
	}
	walRec, err := measure("e10-gap-a", false)
	if err != nil {
		return nil, err
	}
	res.Recovery = append(res.Recovery, walRec)
	fullRec, err := measure("e10-gap-b", true)
	if err != nil {
		return nil, err
	}
	res.Recovery = append(res.Recovery, fullRec)
	if walRec.Millis > 0 {
		res.SpeedupX = fullRec.Millis / walRec.Millis
	}
	return res, nil
}

// E10Table renders the result.
func E10Table(res *E10Result, cfg E10Config) *Table {
	t := &Table{
		Title:   "E10: durability — WAL write overhead and crash-restart recovery",
		Columns: []string{"phase", "sets/s", "wal appends", "fsyncs", "compactions", "overhead", "recovery ms", "replayed", "transfer"},
		Notes: []string{
			fmt.Sprintf("%d writers, %dB payloads, %d nodes x %d shards; WAL compaction every %d KiB",
				cfg.Writers, cfg.PayloadBytes, cfg.Nodes, cfg.Shards, cfg.SnapshotEveryBytes>>10),
			"overhead is ordered-write throughput lost vs running with no storage; the bar for fsync batch is 10%",
			fmt.Sprintf("recovery: %d keys seeded, %d written during the downtime gap; WAL restart must fast-forward by delta, the wiped restart pays a full retransfer",
				cfg.SeedKeys, cfg.GapKeys),
		},
	}
	for _, r := range res.Overhead {
		overhead := "baseline"
		if r.Mode != "off" {
			overhead = fmt.Sprintf("%.1f%%", r.OverheadPct)
		}
		t.Rows = append(t.Rows, []string{
			"write/" + r.Mode,
			fmt.Sprintf("%.0f", r.SetsPS),
			fmt.Sprintf("%d", r.WALAppends),
			fmt.Sprintf("%d", r.WALFsyncs),
			fmt.Sprintf("%d", r.Compactions),
			overhead, "", "", "",
		})
	}
	for _, r := range res.Recovery {
		t.Rows = append(t.Rows, []string{
			"restart/" + r.Path, "", "", "", "", "",
			fmt.Sprintf("%.1f", r.Millis),
			fmt.Sprintf("%d", r.Replayed),
			fmt.Sprintf("%d delta, %d full", r.Deltas, r.Fulls),
		})
	}
	return t
}

// E10Baseline is the persisted benchmark baseline (BENCH_E10.json).
type E10Baseline struct {
	Experiment string    `json:"experiment"`
	Timestamp  string    `json:"timestamp"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Config     E10Config `json:"config"`
	Result     E10Result `json:"result"`
}

// WriteE10JSON persists the result as a JSON baseline at path.
func WriteE10JSON(path string, cfg E10Config, res *E10Result) error {
	b := E10Baseline{
		Experiment: "e10-durability-recovery",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Config:     cfg,
		Result:     *res,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
