package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dds"
	"repro/internal/rcerr"
)

// --- E8: consistency-moded local reads vs node count ---
//
// Every node of a ring holds a full replica of that ring's state, so a
// read need not ride the token at all — only writes (and read fences)
// do. E8 measures the consequence: at a FIXED shard count, aggregate
// read capacity in the local modes (eventual, session, bounded
// staleness, leased-linearizable) grows with the node count, while the
// ordered-write rate — and the per-read-fence linearizable mode, which
// turns every read into an ordered no-op — stays pinned to the token.
//
// Local-mode readers are paced open-loop workers (a fixed per-node
// demand, the regime of a network element querying its local replica on
// the data path) so the measured aggregate is served demand: it scales
// with N exactly while the replicas keep serving locally. The write and
// fence phases are closed-loop, the same regime as E5, so their
// token-bound ceilings are directly comparable to the E5 baseline.

// E8Config sizes the read-scaling experiment.
type E8Config struct {
	// Nodes lists the cluster sizes to measure; speedups are relative to
	// the first entry.
	Nodes []int
	// Shards is the FIXED ring count: reads must scale with nodes even
	// when the ordered capacity does not change.
	Shards int
	// TokenHoldMS and MaxBatch pin each ring's ordered ceiling to the
	// token rate, matching E5's write regime for comparability.
	TokenHoldMS int
	MaxBatch    int
	// WriteWorkers is the closed-loop Set workers per node (the E5
	// regime) for the write-baseline phase.
	WriteWorkers int
	// ReadWorkers and ReadPace fix the per-node open-loop read demand:
	// each worker issues one read every ReadPace.
	ReadWorkers int
	ReadPace    time.Duration
	// MaxStale is the bounded-staleness phase's bound.
	MaxStale time.Duration
	// Lease is the leased-linearizable phase's lease window.
	Lease time.Duration
	// Keys is the preloaded keyspace size; PayloadBytes each value's size.
	Keys         int
	PayloadBytes int
	// Warmup and Duration bound each measurement phase.
	Warmup   time.Duration
	Duration time.Duration
}

// DefaultE8 measures 1, 2 and 4 nodes at 4 shards with E5's write knobs,
// so the 4-node write row is directly comparable to BENCH_E5's 4-shard
// row.
func DefaultE8() E8Config {
	return E8Config{
		Nodes:        []int{1, 2, 4},
		Shards:       4,
		TokenHoldMS:  4,
		MaxBatch:     8,
		WriteWorkers: 48,
		ReadWorkers:  16,
		ReadPace:     time.Millisecond,
		MaxStale:     50 * time.Millisecond,
		Lease:        100 * time.Millisecond,
		Keys:         512,
		PayloadBytes: 64,
		Warmup:       300 * time.Millisecond,
		Duration:     1200 * time.Millisecond,
	}
}

// QuickE8 is the CI size: two cluster sizes, short phases.
func QuickE8() E8Config {
	cfg := DefaultE8()
	cfg.Nodes = []int{1, 2}
	cfg.WriteWorkers = 24
	cfg.ReadWorkers = 8
	cfg.Keys = 128
	cfg.Warmup = 150 * time.Millisecond
	cfg.Duration = 400 * time.Millisecond
	return cfg
}

// E8Row is one cluster size's measurement. The *PS columns are aggregate
// completed operations per second across all nodes; the *X columns are
// speedups over the first (smallest) row.
type E8Row struct {
	Nodes      int     `json:"nodes"`
	WriteOpsPS float64 `json:"write_ops_per_sec"`
	WriteX     float64 `json:"write_speedup"`
	EventualPS float64 `json:"eventual_reads_per_sec"`
	EventualX  float64 `json:"eventual_speedup"`
	SessionPS  float64 `json:"session_reads_per_sec"`
	SessionX   float64 `json:"session_speedup"`
	BoundedPS  float64 `json:"bounded_reads_per_sec"`
	BoundedX   float64 `json:"bounded_speedup"`
	LeasePS    float64 `json:"lease_reads_per_sec"`
	LeaseX     float64 `json:"lease_speedup"`
	FencePS    float64 `json:"fenced_reads_per_sec"`
	FenceX     float64 `json:"fenced_speedup"`
}

// e8Cluster is one measurement grid: N nodes, cfg.Shards rings, one
// Sharded router per node, keyspace preloaded.
type e8Cluster struct {
	g    *core.TestGrid
	svcs map[core.NodeID]*dds.Sharded
	keys []string
}

func e8Start(cfg E8Config, nodes int) (*e8Cluster, error) {
	rc := core.FastRing()
	rc.TokenHold = time.Duration(cfg.TokenHoldMS) * time.Millisecond
	rc.HungryTimeout = 400 * time.Millisecond
	rc.StarvingRetry = 300 * time.Millisecond
	rc.BodyodorInterval = 50 * time.Millisecond
	rc.MaxBatch = cfg.MaxBatch
	g, err := core.NewTestGrid(core.GridOptions{
		N: nodes, Rings: cfg.Shards, Ring: rc, DeferStart: true,
	})
	if err != nil {
		return nil, err
	}
	c := &e8Cluster{g: g, svcs: make(map[core.NodeID]*dds.Sharded)}
	for id, rt := range g.Runtimes {
		s, err := dds.AttachSharded(rt)
		if err != nil {
			g.Close()
			return nil, err
		}
		c.svcs[id] = s
	}
	g.StartAll()
	if err := g.WaitAssembled(30 * time.Second); err != nil {
		g.Close()
		return nil, err
	}
	// Preload the keyspace from node 1, a few writers deep so the token
	// batches them.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	c.keys = make([]string, cfg.Keys)
	payload := make([]byte, cfg.PayloadBytes)
	errCh := make(chan error, 16)
	sem := make(chan struct{}, 16)
	for i := range c.keys {
		c.keys[i] = fmt.Sprintf("e8-key-%d", i)
		sem <- struct{}{}
		go func(key string) {
			defer func() { <-sem }()
			if err := c.svcs[1].Set(ctx, key, payload); err != nil {
				select {
				case errCh <- err:
				default:
				}
			}
		}(c.keys[i])
	}
	for i := 0; i < cap(sem); i++ {
		sem <- struct{}{}
	}
	select {
	case err := <-errCh:
		g.Close()
		return nil, fmt.Errorf("preload: %w", err)
	default:
	}
	return c, nil
}

// e8Measure runs fn as a worker loop (W per node), counting completions
// over the measurement window.
func (c *e8Cluster) e8Measure(cfg E8Config, workers int, fn func(ctx context.Context, id core.NodeID, svc *dds.Sharded, seed int) error) (float64, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ops atomic.Int64
	errCh := make(chan error, 1)
	for _, id := range c.g.IDs {
		svc := c.svcs[id]
		for w := 0; w < workers; w++ {
			id, seed := id, int(id)*1000+w
			go func() {
				for i := 0; ; i++ {
					if ctx.Err() != nil {
						return
					}
					if err := fn(ctx, id, svc, seed*7919+i*131); err != nil {
						if errors.Is(err, context.Canceled) || errors.Is(err, rcerr.ErrRetryable) {
							continue
						}
						select {
						case errCh <- err:
						default:
						}
						return
					}
					ops.Add(1)
				}
			}()
		}
	}
	time.Sleep(cfg.Warmup)
	before := ops.Load()
	time.Sleep(cfg.Duration)
	rate := float64(ops.Load()-before) / cfg.Duration.Seconds()
	cancel()
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return rate, nil
}

// E8ReadScaling measures every phase at every configured cluster size.
func E8ReadScaling(cfg E8Config) ([]E8Row, error) {
	var rows []E8Row
	for _, n := range cfg.Nodes {
		c, err := e8Start(cfg, n)
		if err != nil {
			return nil, fmt.Errorf("E8 N=%d: %w", n, err)
		}
		row := E8Row{Nodes: n}
		payload := make([]byte, cfg.PayloadBytes)
		key := func(seed int) string { return c.keys[((seed%len(c.keys))+len(c.keys))%len(c.keys)] }

		// Write baseline: closed-loop ordered Sets, the E5 regime. This is
		// the token-bound ceiling reads must NOT be paying.
		row.WriteOpsPS, err = c.e8Measure(cfg, cfg.WriteWorkers,
			func(ctx context.Context, _ core.NodeID, svc *dds.Sharded, seed int) error {
				return svc.Set(ctx, key(seed), payload)
			})
		if err != nil {
			c.g.Close()
			return nil, fmt.Errorf("E8 N=%d writes: %w", n, err)
		}

		// pacedRead builds a paced open-loop read worker for one mode.
		pacedRead := func(opts func(id core.NodeID, svc *dds.Sharded) []dds.ReadOption) func(context.Context, core.NodeID, *dds.Sharded, int) error {
			perNode := make(map[core.NodeID][]dds.ReadOption, len(c.g.IDs))
			for _, id := range c.g.IDs {
				perNode[id] = opts(id, c.svcs[id])
			}
			return func(ctx context.Context, id core.NodeID, svc *dds.Sharded, seed int) error {
				if _, ok, err := svc.Get(ctx, key(seed), perNode[id]...); err != nil {
					return err
				} else if !ok {
					return fmt.Errorf("key %q missing", key(seed))
				}
				time.Sleep(cfg.ReadPace)
				return nil
			}
		}

		row.EventualPS, err = c.e8Measure(cfg, cfg.ReadWorkers,
			pacedRead(func(core.NodeID, *dds.Sharded) []dds.ReadOption { return nil }))
		if err != nil {
			c.g.Close()
			return nil, fmt.Errorf("E8 N=%d eventual: %w", n, err)
		}

		// Session phase: one session per node; each writes a spread of
		// keys first so its reads carry marks on every shard.
		sessErr := error(nil)
		row.SessionPS, err = c.e8Measure(cfg, cfg.ReadWorkers,
			pacedRead(func(id core.NodeID, svc *dds.Sharded) []dds.ReadOption {
				sess := svc.NewSession()
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				for i := 0; i < 2*cfg.Shards; i++ {
					if err := sess.Set(ctx, key(int(id)*31+i*97), payload); err != nil && sessErr == nil {
						sessErr = err
					}
				}
				return []dds.ReadOption{dds.WithSession(sess)}
			}))
		if err == nil {
			err = sessErr
		}
		if err != nil {
			c.g.Close()
			return nil, fmt.Errorf("E8 N=%d session: %w", n, err)
		}

		row.BoundedPS, err = c.e8Measure(cfg, cfg.ReadWorkers,
			pacedRead(func(core.NodeID, *dds.Sharded) []dds.ReadOption {
				return []dds.ReadOption{dds.WithMaxStaleness(cfg.MaxStale)}
			}))
		if err != nil {
			c.g.Close()
			return nil, fmt.Errorf("E8 N=%d bounded: %w", n, err)
		}

		row.LeasePS, err = c.e8Measure(cfg, cfg.ReadWorkers,
			pacedRead(func(core.NodeID, *dds.Sharded) []dds.ReadOption {
				return []dds.ReadOption{dds.WithReadLease(cfg.Lease)}
			}))
		if err != nil {
			c.g.Close()
			return nil, fmt.Errorf("E8 N=%d lease: %w", n, err)
		}

		// Per-read fences are closed-loop: this mode's ceiling is the
		// token, and pacing would hide it.
		row.FencePS, err = c.e8Measure(cfg, cfg.ReadWorkers,
			func(ctx context.Context, _ core.NodeID, svc *dds.Sharded, seed int) error {
				_, _, err := svc.Get(ctx, key(seed), dds.WithLinearizable())
				return err
			})
		if err != nil {
			c.g.Close()
			return nil, fmt.Errorf("E8 N=%d fenced: %w", n, err)
		}

		c.g.Close()
		rows = append(rows, row)
	}
	if len(rows) > 0 {
		base := rows[0]
		div := func(a, b float64) float64 {
			if b <= 0 {
				return 0
			}
			return a / b
		}
		for i := range rows {
			rows[i].WriteX = div(rows[i].WriteOpsPS, base.WriteOpsPS)
			rows[i].EventualX = div(rows[i].EventualPS, base.EventualPS)
			rows[i].SessionX = div(rows[i].SessionPS, base.SessionPS)
			rows[i].BoundedX = div(rows[i].BoundedPS, base.BoundedPS)
			rows[i].LeaseX = div(rows[i].LeasePS, base.LeasePS)
			rows[i].FenceX = div(rows[i].FencePS, base.FencePS)
		}
	}
	return rows, nil
}

// E8Table renders E8 rows.
func E8Table(rows []E8Row, cfg E8Config) *Table {
	t := &Table{
		Title: "E8: consistency-moded local reads vs node count (fixed shards)",
		Columns: []string{
			"nodes", "writes/s", "eventual/s", "x", "session/s", "x",
			"bounded/s", "x", "lease/s", "x", "fenced/s", "x",
		},
		Notes: []string{
			fmt.Sprintf("%d shards fixed; writes and fenced reads ride the token (TokenHold=%dms MaxBatch=%d), every other mode serves the local replica", cfg.Shards, cfg.TokenHoldMS, cfg.MaxBatch),
			fmt.Sprintf("local modes run %d open-loop readers/node paced at one read per %v (fixed per-node demand); writes and fenced reads are closed-loop", cfg.ReadWorkers, cfg.ReadPace),
			fmt.Sprintf("bounded staleness %v; read lease %v; speedups relative to the %d-node row", cfg.MaxStale, cfg.Lease, cfg.Nodes[0]),
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Nodes),
			fmt.Sprintf("%.0f", r.WriteOpsPS),
			fmt.Sprintf("%.0f", r.EventualPS), fmt.Sprintf("%.2fx", r.EventualX),
			fmt.Sprintf("%.0f", r.SessionPS), fmt.Sprintf("%.2fx", r.SessionX),
			fmt.Sprintf("%.0f", r.BoundedPS), fmt.Sprintf("%.2fx", r.BoundedX),
			fmt.Sprintf("%.0f", r.LeasePS), fmt.Sprintf("%.2fx", r.LeaseX),
			fmt.Sprintf("%.0f", r.FencePS), fmt.Sprintf("%.2fx", r.FenceX),
		})
	}
	return t
}

// E8Baseline is the persisted benchmark baseline (BENCH_E8.json).
type E8Baseline struct {
	Experiment string   `json:"experiment"`
	Timestamp  string   `json:"timestamp"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Config     E8Config `json:"config"`
	Rows       []E8Row  `json:"rows"`
	// E5WriteRef4Shards, when nonzero, is the E5 baseline's 4-shard
	// closed-loop write rate, recorded so the write-regression check
	// (E8's largest-N write row must stay within 10%) is self-contained.
	E5WriteRef4Shards float64 `json:"e5_write_ref_4_shards,omitempty"`
}

// WriteE8JSON persists the rows as a JSON baseline at path. e5Ref may be
// zero when no E5 baseline was available for cross-reference.
func WriteE8JSON(path string, cfg E8Config, rows []E8Row, e5Ref float64) error {
	b := E8Baseline{
		Experiment:        "e8-read-scaling",
		Timestamp:         time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		Config:            cfg,
		Rows:              rows,
		E5WriteRef4Shards: e5Ref,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// E5WriteRef extracts the 4-shard closed-loop write rate from an E5
// baseline file, for BENCH_E8's cross-reference; zero if unavailable.
func E5WriteRef(e5Path string) float64 {
	data, err := os.ReadFile(e5Path)
	if err != nil {
		return 0
	}
	var b E5Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return 0
	}
	for _, r := range b.Rows {
		if r.Shards == 4 {
			return r.DDSOpsPS
		}
	}
	return 0
}
