package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/rainwall"
)

// E4Row is one fail-over measurement.
type E4Row struct {
	Nodes   int
	GapSecs float64
	Paper   string
}

// E4Config sizes the fail-over experiment.
type E4Config struct {
	Sizes   []int
	Ticks   int
	TickLen time.Duration
	FailAt  int
}

// DefaultE4 uses the paper's deployment-regime timers (PaperRing) so the
// measured hiccup is comparable to the "under two seconds" claim.
func DefaultE4() E4Config {
	return E4Config{Sizes: []int{2, 4}, Ticks: 400, TickLen: 20 * time.Millisecond, FailAt: 50}
}

// E4Failover pulls a gateway's network cable mid-transfer and measures the
// client-visible interruption until throughput is back to 90% of the
// pre-failure rate (§3.2).
func E4Failover(cfg E4Config) ([]E4Row, error) {
	var rows []E4Row
	for _, n := range cfg.Sizes {
		gap, err := failoverGap(n, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, E4Row{
			Nodes:   n,
			GapSecs: gap.Seconds(),
			Paper:   "under two seconds (\"about 2-seconds hick-up\")",
		})
	}
	return rows, nil
}

func failoverGap(n int, cfg E4Config) (time.Duration, error) {
	c, err := rainwall.NewCluster(rainwall.ClusterConfig{N: n, Ring: core.PaperRing()})
	if err != nil {
		return 0, err
	}
	defer c.Close()
	if err := c.WaitReady(30 * time.Second); err != nil {
		return 0, err
	}
	// Offer load the survivors can absorb, so recovery is visible as a
	// return to the pre-failure rate.
	offered := rainwall.DefaultCapacityBps * float64(n-1) * 0.9
	w := rainwall.NewWorkload(rainwall.WorkloadConfig{
		Seed: int64(2000 + n), Flows: 50 * n, TotalBps: offered, VIPs: len(c.Pool), WebTraffic: true,
	})
	victim := core.NodeID(n) // never the lowest (leader) for determinism
	samples := c.Run(w, rainwall.RunOptions{
		Ticks:   cfg.Ticks,
		TickLen: cfg.TickLen,
		Paced:   true,
		OnTick: func(i int) {
			if i == cfg.FailAt {
				c.FailNode(victim)
			}
		},
	})
	tickBits := rainwall.MeanTickBits(samples[10:cfg.FailAt])
	recovered := -1
	const hold = 10
	for i := cfg.FailAt; i < len(samples)-hold; i++ {
		ok := true
		for j := i; j < i+hold; j++ {
			if samples[j].DeliveredBits < 0.9*tickBits {
				ok = false
				break
			}
		}
		if ok {
			recovered = i
			break
		}
	}
	if recovered < 0 {
		return 0, fmt.Errorf("E4: %d-node cluster never recovered (pre=%.1f Mbps)",
			n, tickBits/cfg.TickLen.Seconds()/1e6)
	}
	return time.Duration(recovered-cfg.FailAt) * cfg.TickLen, nil
}

// E4Table renders the fail-over results.
func E4Table(rows []E4Row, cfg E4Config) *Table {
	t := &Table{
		Title:   "E4 (§3.2): client-visible fail-over time after a cable pull",
		Columns: []string{"nodes", "traffic gap (s)", "paper"},
		Notes: []string{
			"paper-regime timers: token 100ms, hungry timeout 500ms, 911 retry 400ms",
			"gap = failure instant until aggregate throughput reaches the post-failover steady state (95%, held 10 ticks)",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Nodes), fmt.Sprintf("%.2f", r.GapSecs), r.Paper,
		})
	}
	return t
}
