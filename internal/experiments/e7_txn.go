package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	raincore "repro"
	"repro/internal/core"
	"repro/internal/stats"
)

// --- E7: cross-shard transactions ---
//
// PR 3 adds epoch-pinned 2PC over the per-ring master locks; PR 4 puts
// the raincore.Cluster facade in front of it. E7 measures what the
// transaction path costs through the facade and how it behaves under
// elastic resharding: a cluster serves a closed-loop workload of
// multi-key cross-shard transactions (Cluster.Txn: lock in global order,
// prepare and commit one ordered multicast per participant ring), then
// grows by one ring mid-run. The facade re-runs retryable aborts — the
// epoch-pin and freeze rejections the design trades for never straddling
// two keyspace layouts — so workers only ever see commits; the abort
// pressure is read from the retry-layer metrics.

// E7Config sizes the cross-shard transaction experiment.
type E7Config struct {
	// N is the cluster size (nodes, each hosting every ring).
	N int
	// Shards is the initial ring count.
	Shards int
	// Workers is the number of concurrent transaction loops per node.
	Workers int
	// Keys is the keyspace size workers draw from.
	Keys int
	// KeysPerTxn is the write-set size of each transaction (>= 2 makes
	// most transactions cross-shard).
	KeysPerTxn int
	// PayloadBytes sizes each written value.
	PayloadBytes int
	// Warmup and Duration bound each throughput measurement phase.
	Warmup   time.Duration
	Duration time.Duration
	// Grow, when true, adds one ring between the two measurement phases
	// and reports the abort rate the handoff induced.
	Grow bool
}

// DefaultE7 exercises 2-key transactions on a 3-node, 2-ring grid grown
// to 3 rings mid-run.
func DefaultE7() E7Config {
	return E7Config{
		N:            3,
		Shards:       2,
		Workers:      12,
		Keys:         512,
		KeysPerTxn:   2,
		PayloadBytes: 32,
		Warmup:       300 * time.Millisecond,
		Duration:     1200 * time.Millisecond,
		Grow:         true,
	}
}

// QuickE7 is the CI-sized run (seconds, not tens of seconds).
func QuickE7() E7Config {
	cfg := DefaultE7()
	cfg.Workers = 8
	cfg.Keys = 128
	cfg.Warmup = 150 * time.Millisecond
	cfg.Duration = 500 * time.Millisecond
	return cfg
}

// E7Row is one phase's measurement.
type E7Row struct {
	// Phase is "before", "grow" or "after".
	Phase string `json:"phase"`
	// Shards is the ring count during the phase.
	Shards int `json:"shards"`
	// CommitsPS is the aggregate transaction commit rate (txn/second).
	CommitsPS float64 `json:"commits_per_sec"`
	// Aborts counts the retryable transaction aborts the facade's retry
	// layer re-ran during the phase (each one a full re-execution).
	Aborts int64 `json:"aborts"`
	// AbortRate is aborts / (commits + aborts) for the phase.
	AbortRate float64 `json:"abort_rate"`
}

// E7Result is the full experiment outcome.
type E7Result struct {
	Rows []E7Row `json:"rows"`
	// GrowMS is the wall time of the mid-run grow (ring assembly plus
	// ordered handoff, including facade-level abort retries), 0 when
	// Grow was off.
	GrowMS float64 `json:"grow_ms"`
	// Indeterminate counts phase-2 failures (must stay 0 in a healthy
	// run; nonzero means a commit partially applied). The facade never
	// retries these.
	Indeterminate int64 `json:"indeterminate"`
}

// E7TxnThroughput runs the cross-shard transaction experiment.
func E7TxnThroughput(cfg E7Config) (E7Result, error) {
	var res E7Result
	if cfg.N < 2 || cfg.Shards < 2 || cfg.KeysPerTxn < 1 {
		return res, fmt.Errorf("E7: need >= 2 nodes, >= 2 shards, >= 1 key per txn")
	}
	rc := core.FastRing()
	rc.HungryTimeout = 400 * time.Millisecond
	rc.StarvingRetry = 300 * time.Millisecond
	rc.BodyodorInterval = 50 * time.Millisecond
	g, err := newClusterGrid(cfg.N, cfg.Shards, rc)
	if err != nil {
		return res, err
	}
	defer g.Close()
	if err := g.WaitAssembled(30 * time.Second); err != nil {
		return res, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var commits, indeterminate atomic.Int64
	payload := make([]byte, cfg.PayloadBytes)
	for _, id := range g.IDs {
		cl := g.Clusters[id]
		for w := 0; w < cfg.Workers; w++ {
			rng := rand.New(rand.NewSource(int64(id)*1000 + int64(w)))
			go func() {
				for {
					if ctx.Err() != nil {
						return
					}
					t := cl.Txn()
					base := rng.Intn(cfg.Keys)
					for k := 0; k < cfg.KeysPerTxn; k++ {
						t.Set(fmt.Sprintf("e7-key-%d", (base+k*97)%cfg.Keys), payload)
					}
					tctx, tcancel := context.WithTimeout(ctx, 10*time.Second)
					_, err := t.Commit(tctx)
					tcancel()
					switch {
					case err == nil:
						commits.Add(1)
					case errors.Is(err, raincore.ErrTxnIndeterminate):
						indeterminate.Add(1)
					case ctx.Err() != nil:
						return
					}
				}
			}()
		}
	}
	measure := func(phase string, shards int) E7Row {
		time.Sleep(cfg.Warmup)
		c0, a0 := commits.Load(), g.txnRetriesAbsorbed()
		time.Sleep(cfg.Duration)
		dc, da := commits.Load()-c0, g.txnRetriesAbsorbed()-a0
		row := E7Row{Phase: phase, Shards: shards, CommitsPS: stats.Rate(dc, cfg.Duration), Aborts: da}
		if dc+da > 0 {
			row.AbortRate = float64(da) / float64(dc+da)
		}
		return row
	}

	res.Rows = append(res.Rows, measure("before", cfg.Shards))

	if cfg.Grow {
		a0 := g.txnRetriesAbsorbed()
		c0 := commits.Load()
		start := time.Now()
		// A handoff's freeze can land while a transaction is mid-prepare
		// on the source shard; the staged transaction rejects the freeze
		// and the grow aborts retryably. Each member's facade Grow
		// absorbs those aborts and re-runs until its node flips.
		gctx, gcancel := context.WithTimeout(ctx, 60*time.Second)
		err := g.Grow(gctx)
		gcancel()
		if err != nil {
			return res, fmt.Errorf("E7: grow to %d shards: %w", cfg.Shards+1, err)
		}
		growDur := time.Since(start)
		res.GrowMS = float64(growDur.Microseconds()) / 1000
		da, dc := g.txnRetriesAbsorbed()-a0, commits.Load()-c0
		grow := E7Row{Phase: "grow", Shards: cfg.Shards + 1, CommitsPS: stats.Rate(dc, growDur), Aborts: da}
		if dc+da > 0 {
			grow.AbortRate = float64(da) / float64(dc+da)
		}
		res.Rows = append(res.Rows, grow)
		res.Rows = append(res.Rows, measure("after", cfg.Shards+1))
	}
	res.Indeterminate = indeterminate.Load()
	if res.Indeterminate > 0 {
		return res, fmt.Errorf("E7: %d transactions ended indeterminate (partial commit)", res.Indeterminate)
	}
	return res, nil
}

// E7Table renders the result.
func E7Table(res E7Result, cfg E7Config) *Table {
	t := &Table{
		Title:   "E7: cross-shard transactions (facade Txn, epoch-pinned 2PC, grow under load)",
		Columns: []string{"phase", "shards", "commits/s", "aborts", "abort rate"},
		Notes: []string{
			fmt.Sprintf("%d nodes, %d-key transactions over %d keys; %d worker loops/node",
				cfg.N, cfg.KeysPerTxn, cfg.Keys, cfg.Workers),
			"aborts are the retryable re-runs the facade absorbed (epoch pin / frozen-slice rejections); indeterminate commits must be 0",
		},
	}
	if res.GrowMS > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("mid-run grow (+1 ring) took %.1f ms wall", res.GrowMS))
	}
	for _, r := range res.Rows {
		t.Rows = append(t.Rows, []string{
			r.Phase, fmt.Sprint(r.Shards),
			fmt.Sprintf("%.0f", r.CommitsPS), fmt.Sprint(r.Aborts), fmt.Sprintf("%.1f%%", 100*r.AbortRate),
		})
	}
	return t
}

// E7Baseline is the persisted benchmark baseline (BENCH_E7.json).
type E7Baseline struct {
	Experiment string   `json:"experiment"`
	Timestamp  string   `json:"timestamp"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Config     E7Config `json:"config"`
	Result     E7Result `json:"result"`
}

// WriteE7JSON persists the result as a JSON baseline at path.
func WriteE7JSON(path string, cfg E7Config, res E7Result) error {
	b := E7Baseline{
		Experiment: "e7-cross-shard-txn",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Config:     cfg,
		Result:     res,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
