package experiments

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// --- EC: facade overhead ---
//
// The raincore.Cluster facade wraps every data operation in a retry
// layer (classification check, policy bookkeeping, error wrapping). EC
// measures what that wrapper costs on the hot path by running the same
// closed-loop sharded write workload twice on identical grids — once
// against the raw dds.Sharded router (the pre-facade composition) and
// once through Cluster.Set — and asserting the facade lands within noise
// of the raw path. Both runs use the deterministic token-rate-bound
// regime of E5 (TokenHold x MaxBatch fixes the per-ring ceiling), so a
// real regression shows up as a rate gap, not CPU noise.

// ECConfig sizes the facade-overhead comparison.
type ECConfig struct {
	// N is the cluster size; Shards the ring count (static, no grow).
	N, Shards int
	// TokenHoldMS and MaxBatch fix the per-ring throughput ceiling.
	TokenHoldMS int
	MaxBatch    int
	// DDSWorkers is the number of concurrent Set loops per node.
	DDSWorkers int
	// PayloadBytes sizes each value.
	PayloadBytes int
	// Warmup and Duration bound each measurement phase.
	Warmup   time.Duration
	Duration time.Duration
	// MaxOverheadFrac is the assertion threshold: the run fails if the
	// facade path is more than this fraction slower than the raw path.
	MaxOverheadFrac float64
}

// DefaultEC mirrors the E5/E6 regime on a 4-node, 2-ring grid and allows
// 15% before calling the wrapper a regression (the token-bound ceiling
// makes the expected gap ~0; the margin is scheduler noise).
func DefaultEC() ECConfig {
	return ECConfig{
		N:               4,
		Shards:          2,
		TokenHoldMS:     4,
		MaxBatch:        8,
		DDSWorkers:      48,
		PayloadBytes:    64,
		Warmup:          300 * time.Millisecond,
		Duration:        1200 * time.Millisecond,
		MaxOverheadFrac: 0.15,
	}
}

// ECResult is the comparison outcome.
type ECResult struct {
	// RawOpsPS is the aggregate Set rate against dds.Sharded directly.
	RawOpsPS float64 `json:"raw_ops_per_sec"`
	// ClusterOpsPS is the aggregate Cluster.Set rate through the facade.
	ClusterOpsPS float64 `json:"cluster_ops_per_sec"`
	// OverheadFrac is (raw - cluster) / raw; negative means the facade
	// run measured faster (pure noise).
	OverheadFrac float64 `json:"overhead_frac"`
}

// ecFacadeRate measures the aggregate Cluster.Set rate on a fresh grid.
func ecFacadeRate(cfg ECConfig) (float64, error) {
	rc := core.FastRing()
	rc.TokenHold = time.Duration(cfg.TokenHoldMS) * time.Millisecond
	rc.HungryTimeout = 400 * time.Millisecond
	rc.StarvingRetry = 300 * time.Millisecond
	rc.BodyodorInterval = 50 * time.Millisecond
	rc.MaxBatch = cfg.MaxBatch
	g, err := newClusterGrid(cfg.N, cfg.Shards, rc)
	if err != nil {
		return 0, err
	}
	defer g.Close()
	if err := g.WaitAssembled(30 * time.Second); err != nil {
		return 0, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ops atomic.Int64
	payload := make([]byte, cfg.PayloadBytes)
	for _, id := range g.IDs {
		cl := g.Clusters[id]
		for w := 0; w < cfg.DDSWorkers; w++ {
			seed := int(id)*1000 + w
			go func() {
				for i := 0; ; i++ {
					key := fmt.Sprintf("e5-key-%d", (seed*7919+i*131)%1024)
					if cl.Set(ctx, key, payload) != nil {
						return
					}
					ops.Add(1)
				}
			}()
		}
	}
	time.Sleep(cfg.Warmup)
	before := ops.Load()
	time.Sleep(cfg.Duration)
	return float64(ops.Load()-before) / cfg.Duration.Seconds(), nil
}

// EClusterOverhead runs the comparison: raw path first (reusing the E5
// write-phase harness), then the facade path, on identical regimes.
func EClusterOverhead(cfg ECConfig) (ECResult, error) {
	var res ECResult
	e5cfg := E5Config{
		N:            cfg.N,
		TokenHoldMS:  cfg.TokenHoldMS,
		MaxBatch:     cfg.MaxBatch,
		DDSWorkers:   cfg.DDSWorkers,
		PayloadBytes: cfg.PayloadBytes,
		Warmup:       cfg.Warmup,
		Duration:     cfg.Duration,
	}
	raw, err := e5DDS(e5cfg, cfg.Shards)
	if err != nil {
		return res, fmt.Errorf("EC raw phase: %w", err)
	}
	facade, err := ecFacadeRate(cfg)
	if err != nil {
		return res, fmt.Errorf("EC facade phase: %w", err)
	}
	res.RawOpsPS, res.ClusterOpsPS = raw, facade
	if raw > 0 {
		res.OverheadFrac = (raw - facade) / raw
	}
	if res.OverheadFrac > cfg.MaxOverheadFrac {
		return res, fmt.Errorf("EC: facade path %.0f ops/s vs raw %.0f ops/s (%.1f%% overhead exceeds the %.0f%% noise budget)",
			facade, raw, 100*res.OverheadFrac, 100*cfg.MaxOverheadFrac)
	}
	return res, nil
}

// ECTable renders the comparison.
func ECTable(res ECResult, cfg ECConfig) *Table {
	return &Table{
		Title:   "EC: Cluster facade overhead (retry wrapper vs raw sharded dds)",
		Columns: []string{"path", "dds set/s", "overhead"},
		Notes: []string{
			fmt.Sprintf("%d nodes, %d rings, %d closed-loop writers/node; token-rate-bound regime (hold %dms x batch %d)",
				cfg.N, cfg.Shards, cfg.DDSWorkers, cfg.TokenHoldMS, cfg.MaxBatch),
			fmt.Sprintf("assertion: facade within %.0f%% of raw (negative overhead = noise in the facade's favor)", 100*cfg.MaxOverheadFrac),
		},
		Rows: [][]string{
			{"raw dds.Sharded", fmt.Sprintf("%.0f", res.RawOpsPS), "-"},
			{"raincore.Cluster", fmt.Sprintf("%.0f", res.ClusterOpsPS), fmt.Sprintf("%.1f%%", 100*res.OverheadFrac)},
		},
	}
}
