package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// --- E6: elastic resharding ---
//
// PR 1's sharded runtime scales ordered throughput with the ring count,
// but the count was frozen at construction. E6 measures what elastic
// resharding buys and what it costs: a cluster starts at FromShards
// rings, serves a closed-loop write workload through the raincore.Cluster
// facade, grows one ring at a time to ToShards under load, and keeps
// serving. The facade's retry layer absorbs the handoff windows — a
// writer never sees a resharding rejection — so the per-step cost shows
// up as the
// handoff pause and the count of rejections the retry layer rode through,
// both read from the runtime's metric registry.

// E6Config sizes the elastic-resharding experiment.
type E6Config struct {
	// N is the cluster size (nodes, each hosting every ring).
	N int
	// FromShards and ToShards bound the grow sequence (one grid-wide
	// Grow per step).
	FromShards, ToShards int
	// TokenHoldMS and MaxBatch fix each ring's deterministic throughput
	// ceiling exactly as in E5, so the post-grow gain is ring-count
	// scaling, not CPU noise.
	TokenHoldMS int
	MaxBatch    int
	// DDSWorkers is the number of concurrent Set loops per node.
	DDSWorkers int
	// Keys is the keyspace size the workers cycle over.
	Keys int
	// PayloadBytes sizes each value.
	PayloadBytes int
	// Warmup and Duration bound each throughput measurement phase.
	Warmup   time.Duration
	Duration time.Duration
}

// DefaultE6 mirrors the E5 regime (token-rate-bound rings) growing 2 -> 4.
func DefaultE6() E6Config {
	return E6Config{
		N:            4,
		FromShards:   2,
		ToShards:     4,
		TokenHoldMS:  4,
		MaxBatch:     8,
		DDSWorkers:   48,
		Keys:         1024,
		PayloadBytes: 64,
		Warmup:       300 * time.Millisecond,
		Duration:     1200 * time.Millisecond,
	}
}

// E6Row is one shard count's steady-state measurement.
type E6Row struct {
	Shards int `json:"shards"`
	// DDSOpsPS is the aggregate Cluster.Set completion rate across all
	// nodes (ops/second).
	DDSOpsPS float64 `json:"dds_ops_per_sec"`
	// SpeedupX is the gain over the FromShards row.
	SpeedupX float64 `json:"speedup"`
}

// E6Grow is one grow step's handoff cost.
type E6Grow struct {
	// ToShards is the ring count after this step.
	ToShards int `json:"to_shards"`
	// PauseMS is the coordinator-observed handoff window (first freeze
	// submitted to epoch flip) in milliseconds. Only writes into the
	// moving slices are rejected during it.
	PauseMS float64 `json:"handoff_pause_ms"`
	// KeysMoved counts keys installed into the new shard.
	KeysMoved int64 `json:"keys_moved"`
	// FrozenRejects counts the retryable rejections the facade's retry
	// layer absorbed during the step (the writes that observed a frozen
	// slice, retried, and succeeded — invisible to the workers).
	FrozenRejects int64 `json:"frozen_writes_rejected"`
}

// E6Result is the full experiment outcome.
type E6Result struct {
	Rows  []E6Row  `json:"rows"`
	Grows []E6Grow `json:"grows"`
}

// E6Resharding runs the grow-under-load experiment.
func E6Resharding(cfg E6Config) (E6Result, error) {
	var res E6Result
	if cfg.FromShards < 1 || cfg.ToShards < cfg.FromShards {
		return res, fmt.Errorf("E6: bad shard range %d -> %d", cfg.FromShards, cfg.ToShards)
	}
	rc := core.FastRing()
	rc.TokenHold = time.Duration(cfg.TokenHoldMS) * time.Millisecond
	rc.HungryTimeout = 400 * time.Millisecond
	rc.StarvingRetry = 300 * time.Millisecond
	rc.BodyodorInterval = 50 * time.Millisecond
	rc.MaxBatch = cfg.MaxBatch
	g, err := newClusterGrid(cfg.N, cfg.FromShards, rc)
	if err != nil {
		return res, err
	}
	defer g.Close()
	if err := g.WaitAssembled(30 * time.Second); err != nil {
		return res, err
	}

	// Closed-loop writers through the facade: the retry layer rides
	// through handoff windows, so a worker only stops on a real failure.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ops atomic.Int64
	payload := make([]byte, cfg.PayloadBytes)
	for _, id := range g.IDs {
		cl := g.Clusters[id]
		for w := 0; w < cfg.DDSWorkers; w++ {
			seed := int(id)*1000 + w
			go func() {
				for i := 0; ; i++ {
					key := fmt.Sprintf("e6-key-%d", (seed*7919+i*131)%cfg.Keys)
					if cl.Set(ctx, key, payload) != nil {
						return
					}
					ops.Add(1)
				}
			}()
		}
	}
	measure := func() float64 {
		time.Sleep(cfg.Warmup)
		before := ops.Load()
		time.Sleep(cfg.Duration)
		return stats.Rate(ops.Load()-before, cfg.Duration)
	}

	res.Rows = append(res.Rows, E6Row{Shards: cfg.FromShards, DDSOpsPS: measure()})

	coord := g.Clusters[g.IDs[0]]
	for s := cfg.FromShards; s < cfg.ToShards; s++ {
		keysBefore := coord.Stats().Counter(stats.MetricReshardKeysMoved).Load()
		rejBefore := g.frozenRejects()
		start := time.Now()
		gctx, gcancel := context.WithTimeout(ctx, 60*time.Second)
		err := g.Grow(gctx)
		gcancel()
		if err != nil {
			return res, fmt.Errorf("E6: grow to %d shards: %w", s+1, err)
		}
		// The grow includes ring assembly; the handoff window itself is
		// the coordinator's reshard_pause histogram sample.
		pause := time.Since(start)
		if h := coord.Stats().Histogram(stats.HistReshardPause).Summary(); h.Count > 0 {
			pause = h.Max
			coord.Stats().Histogram(stats.HistReshardPause).Reset()
		}
		res.Grows = append(res.Grows, E6Grow{
			ToShards:      s + 1,
			PauseMS:       float64(pause.Microseconds()) / 1000,
			KeysMoved:     coord.Stats().Counter(stats.MetricReshardKeysMoved).Load() - keysBefore,
			FrozenRejects: g.frozenRejects() - rejBefore,
		})
	}

	res.Rows = append(res.Rows, E6Row{Shards: cfg.ToShards, DDSOpsPS: measure()})
	if base := res.Rows[0].DDSOpsPS; base > 0 {
		for i := range res.Rows {
			res.Rows[i].SpeedupX = res.Rows[i].DDSOpsPS / base
		}
	}
	return res, nil
}

// E6Table renders the result.
func E6Table(res E6Result, cfg E6Config) *Table {
	t := &Table{
		Title:   "E6: elastic resharding (grow under live facade write load)",
		Columns: []string{"phase", "shards", "dds set/s", "speedup", "pause ms", "keys moved", "rejects"},
		Notes: []string{
			fmt.Sprintf("%d nodes; grown one ring at a time %d -> %d under %d closed-loop Cluster.Set writers/node",
				cfg.N, cfg.FromShards, cfg.ToShards, cfg.DDSWorkers),
			"pause = coordinator freeze->flip window; rejects = retryable rejections the facade's retry layer absorbed (workers saw none)",
		},
	}
	t.Rows = append(t.Rows, []string{
		"before", fmt.Sprint(res.Rows[0].Shards),
		fmt.Sprintf("%.0f", res.Rows[0].DDSOpsPS), fmt.Sprintf("%.2fx", res.Rows[0].SpeedupX),
		"-", "-", "-",
	})
	for _, gr := range res.Grows {
		t.Rows = append(t.Rows, []string{
			"grow", fmt.Sprint(gr.ToShards), "-", "-",
			fmt.Sprintf("%.1f", gr.PauseMS), fmt.Sprint(gr.KeysMoved), fmt.Sprint(gr.FrozenRejects),
		})
	}
	last := res.Rows[len(res.Rows)-1]
	t.Rows = append(t.Rows, []string{
		"after", fmt.Sprint(last.Shards),
		fmt.Sprintf("%.0f", last.DDSOpsPS), fmt.Sprintf("%.2fx", last.SpeedupX),
		"-", "-", "-",
	})
	return t
}

// E6Baseline is the persisted benchmark baseline (BENCH_E6.json).
type E6Baseline struct {
	Experiment string   `json:"experiment"`
	Timestamp  string   `json:"timestamp"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Config     E6Config `json:"config"`
	Result     E6Result `json:"result"`
}

// WriteE6JSON persists the result as a JSON baseline at path.
func WriteE6JSON(path string, cfg E6Config, res E6Result) error {
	b := E6Baseline{
		Experiment: "e6-elastic-resharding",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Config:     cfg,
		Result:     res,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
