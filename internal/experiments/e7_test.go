package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestE7TxnShape runs the CI-sized E7 and checks the invariants the
// baseline records: transactions commit before, through and after a grow,
// no commit ends indeterminate, and the grow induces only retryable
// aborts. The full-sized run is `rainbench e7`.
func TestE7TxnShape(t *testing.T) {
	cfg := QuickE7()
	res, err := E7TxnThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("result shape: %+v", res)
	}
	for _, r := range res.Rows {
		if r.Phase != "grow" && r.CommitsPS <= 0 {
			t.Fatalf("phase %q committed nothing: %+v", r.Phase, r)
		}
		// Steady-state phases should rarely abort; the grow phase aborts
		// freely by design (the epoch pin drains transactions so the
		// handoff's freezes can land).
		if r.Phase != "grow" && r.AbortRate > 0.5 {
			t.Errorf("phase %q abort rate %.0f%%: the cluster is thrashing", r.Phase, 100*r.AbortRate)
		}
	}
	if res.Indeterminate != 0 {
		t.Fatalf("%d indeterminate commits", res.Indeterminate)
	}
	if res.GrowMS <= 0 {
		t.Fatalf("grow reported no wall time: %+v", res)
	}
	t.Log("\n" + E7Table(res, cfg).String())
}

// TestWriteE7JSON checks the persisted baseline round-trips.
func TestWriteE7JSON(t *testing.T) {
	res := E7Result{
		Rows: []E7Row{
			{Phase: "before", Shards: 2, CommitsPS: 800, Aborts: 0},
			{Phase: "grow", Shards: 3, CommitsPS: 500, Aborts: 12, AbortRate: 0.1},
			{Phase: "after", Shards: 3, CommitsPS: 900, Aborts: 1},
		},
		GrowMS: 140.5,
	}
	path := filepath.Join(t.TempDir(), "BENCH_E7.json")
	if err := WriteE7JSON(path, DefaultE7(), res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got E7Baseline
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "e7-cross-shard-txn" || len(got.Result.Rows) != 3 || got.Result.Rows[1].Aborts != 12 {
		t.Fatalf("baseline round-trip mismatch: %+v", got)
	}
}
