package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// E2Row is one protocol/size measurement of the §4.1 network overhead
// analysis: each of N nodes multicasts one message of MsgBytes; the paper
// predicts ~N(N-1) data packets of M bytes for unicast-emulated broadcast
// (doubled by acknowledgements) versus N token-carried packets of ~N*M
// bytes for Raincore.
type E2Row struct {
	Protocol  string
	N         int
	MsgBytes  int
	Packets   int64
	Bytes     int64
	Predicted string
}

// E2Config sizes the experiment.
type E2Config struct {
	Ns       []int
	MsgBytes int
}

// DefaultE2 uses the message size class of cluster state updates.
func DefaultE2() E2Config { return E2Config{Ns: []int{2, 4, 8}, MsgBytes: 256} }

// E2NetworkOverhead measures wire packets and bytes for one all-to-all
// exchange round under both protocols.
func E2NetworkOverhead(cfg E2Config) ([]E2Row, error) {
	var rows []E2Row
	for _, n := range cfg.Ns {
		r, err := e2Raincore(n, cfg.MsgBytes)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r)
		rows = append(rows, e2Broadcast(n, cfg.MsgBytes))
	}
	return rows, nil
}

// e2Raincore submits one message per node and counts the wire traffic
// until everyone has delivered everything, subtracting the token's idle
// baseline measured over an equal window.
func e2Raincore(n, msgBytes int) (E2Row, error) {
	ring := core.FastRing()
	ring.TokenHold = 2 * time.Millisecond
	tc, err := core.NewTestCluster(core.ClusterOptions{N: n, Ring: ring})
	if err != nil {
		return E2Row{}, err
	}
	defer tc.Close()
	if err := tc.WaitAssembled(15 * time.Second); err != nil {
		return E2Row{}, err
	}
	var mu sync.Mutex
	got := make(map[core.NodeID]int)
	done := make(chan struct{})
	for _, id := range tc.IDs {
		id := id
		tc.Nodes[id].SetHandlers(core.Handlers{OnDeliver: func(core.Delivery) {
			mu.Lock()
			got[id]++
			all := true
			for _, other := range tc.IDs {
				if got[other] < n {
					all = false
				}
			}
			mu.Unlock()
			if all {
				select {
				case <-done:
				default:
					close(done)
				}
			}
		}})
	}
	// Idle baseline: token circulation without application messages.
	idleWindow := 500 * time.Millisecond
	p0, b0 := sumWire(tc)
	time.Sleep(idleWindow)
	p1, b1 := sumWire(tc)
	idlePkts := float64(p1-p0) / idleWindow.Seconds()
	idleBytes := float64(b1-b0) / idleWindow.Seconds()

	start := time.Now()
	for _, id := range tc.IDs {
		if err := tc.Nodes[id].Multicast(make([]byte, msgBytes)); err != nil {
			return E2Row{}, err
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		return E2Row{}, fmt.Errorf("E2: exchange did not complete")
	}
	elapsed := time.Since(start)
	p2, b2 := sumWire(tc)
	pkts := float64(p2-p1) - idlePkts*elapsed.Seconds()
	bytes := float64(b2-b1) - idleBytes*elapsed.Seconds()
	if pkts < 0 {
		pkts = 0
	}
	if bytes < 0 {
		bytes = 0
	}
	return E2Row{
		Protocol: "raincore-token",
		N:        n,
		MsgBytes: msgBytes,
		Packets:  int64(pkts),
		Bytes:    int64(bytes),
		Predicted: fmt.Sprintf("~N packets of ~N*M bytes = %d pkts, %d B payload",
			n, n*n*msgBytes),
	}, nil
}

func sumWire(tc *core.TestCluster) (int64, int64) {
	var pkts, bytes int64
	for _, id := range tc.IDs {
		reg := tc.Nodes[id].Stats()
		pkts += reg.Counter(stats.MetricPacketsSent).Load()
		bytes += reg.Counter(stats.MetricBytesSent).Load()
	}
	return pkts, bytes
}

func e2Broadcast(n, msgBytes int) E2Row {
	net := simnet.New(simnet.Options{Seed: 7})
	defer net.Close()
	tcfg := transport.DefaultConfig()
	tcfg.AckTimeout = 50 * time.Millisecond
	var nodes []*broadcast.Node
	var trs []*transport.Transport
	var mu sync.Mutex
	got := make([]int, n)
	done := make(chan struct{})
	for i := 1; i <= n; i++ {
		tr := transport.New(wire.NodeID(i),
			[]transport.PacketConn{transport.NewSimConn(net.MustEndpoint(simnet.Addr(fmt.Sprintf("b%d", i))))},
			nil, stats.NewRegistry(), tcfg)
		trs = append(trs, tr)
	}
	defer func() {
		for _, tr := range trs {
			tr.Close()
		}
	}()
	for i, tr := range trs {
		var peers []wire.NodeID
		for j := 1; j <= n; j++ {
			if j != i+1 {
				tr.SetPeer(wire.NodeID(j), []transport.Addr{transport.Addr(fmt.Sprintf("b%d", j))})
				peers = append(peers, wire.NodeID(j))
			}
		}
		bn := broadcast.New(tr, peers, broadcast.Unordered, tr.Stats())
		idx := i
		bn.SetHandler(func(broadcast.Delivery) {
			mu.Lock()
			got[idx]++
			all := true
			for _, g := range got {
				if g < n {
					all = false
				}
			}
			mu.Unlock()
			if all {
				select {
				case <-done:
				default:
					close(done)
				}
			}
		})
		nodes = append(nodes, bn)
	}
	for _, bn := range nodes {
		_ = bn.Multicast(make([]byte, msgBytes))
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
	}
	// Give trailing acks a moment to be counted.
	time.Sleep(50 * time.Millisecond)
	var pkts, bytes int64
	for _, tr := range trs {
		pkts += tr.Stats().Counter(stats.MetricPacketsSent).Load()
		bytes += tr.Stats().Counter(stats.MetricBytesSent).Load()
	}
	return E2Row{
		Protocol: "broadcast-unicast-fanout",
		N:        n,
		MsgBytes: msgBytes,
		Packets:  pkts,
		Bytes:    bytes,
		Predicted: fmt.Sprintf("~N*(N-1) data pkts of M bytes, x2 with acks = %d pkts, %d B payload",
			2*n*(n-1), n*(n-1)*msgBytes),
	}
}

// E2Table renders E2 rows.
func E2Table(rows []E2Row, cfg E2Config) *Table {
	t := &Table{
		Title:   "E2 (§4.1): network overhead of one all-to-all exchange (every node multicasts one message)",
		Columns: []string{"protocol", "N", "msg bytes", "packets", "bytes on wire", "paper prediction"},
		Notes: []string{
			"raincore numbers are idle-token-corrected; bytes include frame headers",
			"the token aggregates all N messages into N larger packets; broadcast sends N*(N-1) small ones plus acks",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Protocol, fmt.Sprint(r.N), fmt.Sprint(r.MsgBytes),
			fmt.Sprint(r.Packets), fmt.Sprint(r.Bytes), r.Predicted,
		})
	}
	return t
}
