package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestE6ReshardingShape runs a reduced E6 (grow 2 -> 3 on a 3-node grid)
// and checks the elastic-resharding invariants the baseline records: the
// cluster keeps serving through the grow, throughput does not collapse,
// and every grow step reports a bounded handoff pause. The acceptance
// configuration (4 nodes, 2 -> 4, >= 1.3x) is the rainbench e6 run.
func TestE6ReshardingShape(t *testing.T) {
	cfg := DefaultE6()
	cfg.N = 3
	cfg.FromShards = 2
	cfg.ToShards = 3
	cfg.DDSWorkers = 24
	cfg.Keys = 256
	cfg.Warmup = 200 * time.Millisecond
	cfg.Duration = 600 * time.Millisecond
	res, err := E6Resharding(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Grows) != 1 {
		t.Fatalf("result shape: %+v", res)
	}
	if res.Rows[0].DDSOpsPS <= 0 || res.Rows[1].DDSOpsPS <= 0 {
		t.Fatalf("zero throughput: %+v", res.Rows)
	}
	// The grow must help, or at the very least not collapse throughput;
	// the strict >= 1.3x bound belongs to the 2 -> 4 baseline run.
	if res.Rows[1].SpeedupX < 1.0 {
		t.Errorf("post-grow throughput %.2fx of baseline, want >= 1.0x", res.Rows[1].SpeedupX)
	}
	gr := res.Grows[0]
	if gr.ToShards != 3 || gr.PauseMS <= 0 {
		t.Fatalf("grow step: %+v", gr)
	}
	if gr.KeysMoved == 0 {
		t.Error("no keys moved by the grow")
	}
	t.Log("\n" + E6Table(res, cfg).String())
}

// TestWriteE6JSON checks the persisted baseline round-trips.
func TestWriteE6JSON(t *testing.T) {
	res := E6Result{
		Rows:  []E6Row{{Shards: 2, DDSOpsPS: 1000, SpeedupX: 1}, {Shards: 4, DDSOpsPS: 1700, SpeedupX: 1.7}},
		Grows: []E6Grow{{ToShards: 3, PauseMS: 12.5, KeysMoved: 300}, {ToShards: 4, PauseMS: 10.1, KeysMoved: 250}},
	}
	path := filepath.Join(t.TempDir(), "BENCH_E6.json")
	if err := WriteE6JSON(path, DefaultE6(), res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got E6Baseline
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "e6-elastic-resharding" || len(got.Result.Rows) != 2 || got.Result.Grows[1].ToShards != 4 {
		t.Fatalf("baseline round-trip mismatch: %+v", got)
	}
}
