package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	raincore "repro"
	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/stats"
)

// --- E9: gateway request coalescing under zipfian fan-in ---
//
// The gateway tier's claim is that fronting the ordered core with a
// coalescing HTTP layer converts N concurrent fetches of a hot key into
// one upstream read. E9 measures it end to end: a facade cluster on the
// simulated switch, a real gateway HTTP server in front of one member,
// and a fleet of closed-loop HTTP clients drawing keys from a zipfian
// distribution — the canonical hot-key workload. Every read mode runs
// twice, coalescing on and off, with the TTL micro-cache off in both so
// the comparison isolates the fan-in itself.
//
// The interesting regime is the fenced modes: a linearizable read costs
// an ordered no-op on the key's ring (milliseconds), so while one fence
// is in flight every concurrent fetch of that key can ride it — the
// upstream-read reduction approaches the per-key fan-in. Eventual reads
// complete in microseconds, leaving almost no window to share, and the
// measured reduction is correspondingly ~1x: coalescing is a fenced-read
// optimization, which is exactly why the gateway keys flights by
// key×mode instead of coalescing blindly.
//
// During each phase the run also scrapes /metrics from the loaded
// gateway and validates the Prometheus exposition — observability under
// load is part of the contract, not an afterthought.

// E9Config sizes the gateway coalescing experiment.
type E9Config struct {
	// Nodes and Shards size the backing cluster.
	Nodes  int
	Shards int
	// TokenHoldMS and MaxBatch pin the rings' ordered ceiling (the cost
	// of a fence).
	TokenHoldMS int
	MaxBatch    int
	// Clients is the closed-loop concurrent HTTP client count (the
	// acceptance floor is 64).
	Clients int
	// Keys is the keyspace size; ZipfS the zipfian skew exponent (> 1;
	// higher concentrates traffic on fewer keys).
	Keys  int
	ZipfS float64
	// PayloadBytes sizes each preloaded value.
	PayloadBytes int
	// TimeoutMS is the per-request ?timeout= the clients send.
	TimeoutMS int
	// Warmup and Duration bound each mode×coalesce phase.
	Warmup   time.Duration
	Duration time.Duration
}

// DefaultE9 runs 96 clients over 256 zipfian keys against a 2-node,
// 2-shard cluster.
func DefaultE9() E9Config {
	return E9Config{
		Nodes:        2,
		Shards:       2,
		TokenHoldMS:  4,
		MaxBatch:     8,
		Clients:      96,
		Keys:         256,
		ZipfS:        2.2,
		PayloadBytes: 64,
		TimeoutMS:    10000,
		Warmup:       250 * time.Millisecond,
		Duration:     1000 * time.Millisecond,
	}
}

// QuickE9 is the CI size: still ≥ 64 concurrent clients (the point of
// the experiment is fan-in), shorter phases.
func QuickE9() E9Config {
	cfg := DefaultE9()
	cfg.Clients = 64
	cfg.Keys = 128
	cfg.Warmup = 120 * time.Millisecond
	cfg.Duration = 350 * time.Millisecond
	return cfg
}

// E9Side is one phase's measurement (a read mode with coalescing either
// on or off).
type E9Side struct {
	// Requests and ReqPS count completed client requests in the window.
	Requests int64   `json:"requests"`
	ReqPS    float64 `json:"requests_per_sec"`
	// Upstream counts reads that actually reached the cluster; Coalesced
	// counts requests served by fanning in on another's flight.
	Upstream  int64 `json:"upstream_reads"`
	Coalesced int64 `json:"coalesced"`
	// UpstreamPerReq is Upstream/Requests — the fraction of requests
	// that paid an upstream read.
	UpstreamPerReq float64 `json:"upstream_per_request"`
	// P50MS and P99MS are client-observed request latencies.
	P50MS float64 `json:"p50_ms"`
	P99MS float64 `json:"p99_ms"`
	// Errors counts non-200 responses (must stay 0 in a healthy run).
	Errors int64 `json:"errors"`
}

// E9Row compares coalescing on vs off for one read mode.
type E9Row struct {
	Mode string `json:"mode"`
	On   E9Side `json:"coalesce_on"`
	Off  E9Side `json:"coalesce_off"`
	// UpstreamReduction is Off.UpstreamPerReq / On.UpstreamPerReq — how
	// many upstream reads coalescing saved per request served.
	UpstreamReduction float64 `json:"upstream_reduction"`
}

// e9Modes lists the read modes measured, fenced modes last (they are
// the slow phases).
var e9Modes = []string{"eventual", "bounded", "lease", "linearizable"}

// e9Phase drives one mode×coalesce measurement against a fresh gateway
// over cl, returning the side plus any /metrics validation failure.
func e9Phase(cfg E9Config, cl *raincore.Cluster, mode string, coalesce bool) (E9Side, error) {
	var side E9Side
	reg := stats.NewRegistry()
	gw, err := gateway.New(gateway.Options{
		Backend:         cl,
		Registry:        reg,
		DisableCoalesce: !coalesce,
		// No CacheTTL: the micro-cache stays off on both sides so the
		// comparison isolates coalescing.
		DefaultTimeout: time.Duration(cfg.TimeoutMS) * time.Millisecond,
	})
	if err != nil {
		return side, err
	}
	addr, err := gw.Start("127.0.0.1:0")
	if err != nil {
		return side, err
	}
	defer gw.Close()

	httpc := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Clients * 2,
		MaxIdleConnsPerHost: cfg.Clients * 2,
	}}
	defer httpc.CloseIdleConnections()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var recording atomic.Bool
	var requests, errors atomic.Int64
	lats := make([][]float64, cfg.Clients)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Clients; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
			url := fmt.Sprintf("http://%s/kv/", addr)
			suffix := fmt.Sprintf("?mode=%s&timeout=%dms", mode, cfg.TimeoutMS)
			for ctx.Err() == nil {
				key := fmt.Sprintf("e9-key-%d", zipf.Uint64())
				start := time.Now()
				req, _ := http.NewRequestWithContext(ctx, "GET", url+key+suffix, nil)
				resp, err := httpc.Do(req)
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					if recording.Load() {
						errors.Add(1)
					}
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if recording.Load() {
					if resp.StatusCode != http.StatusOK {
						errors.Add(1)
					} else {
						requests.Add(1)
						lats[w] = append(lats[w], float64(time.Since(start).Microseconds())/1000)
					}
				}
			}
		}()
	}

	time.Sleep(cfg.Warmup)
	upBefore := reg.Counter(stats.MetricGatewayUpstream).Load()
	coBefore := reg.Counter(stats.MetricGatewayCoalesced).Load()
	recording.Store(true)
	// Scrape /metrics from the loaded gateway mid-window: the exposition
	// must parse while the fleet hammers it.
	time.Sleep(cfg.Duration / 2)
	expoErr := e9Scrape(httpc, addr)
	time.Sleep(cfg.Duration / 2)
	recording.Store(false)
	side.Upstream = reg.Counter(stats.MetricGatewayUpstream).Load() - upBefore
	side.Coalesced = reg.Counter(stats.MetricGatewayCoalesced).Load() - coBefore
	cancel()
	wg.Wait()
	if expoErr != nil {
		return side, fmt.Errorf("/metrics under load: %w", expoErr)
	}

	side.Requests = requests.Load()
	side.Errors = errors.Load()
	side.ReqPS = float64(side.Requests) / cfg.Duration.Seconds()
	if side.Requests > 0 {
		side.UpstreamPerReq = float64(side.Upstream) / float64(side.Requests)
	}
	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	pct := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		return all[int(p*float64(len(all)-1))]
	}
	side.P50MS, side.P99MS = pct(0.50), pct(0.99)
	return side, nil
}

// e9Scrape fetches and validates the Prometheus exposition.
func e9Scrape(httpc *http.Client, addr string) error {
	resp, err := httpc.Get("http://" + addr + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain") {
		return fmt.Errorf("content type %q", resp.Header.Get("Content-Type"))
	}
	return stats.ValidateExposition(strings.NewReader(string(body)))
}

// E9GatewayCoalescing runs every mode with coalescing on and off.
func E9GatewayCoalescing(cfg E9Config) ([]E9Row, error) {
	if cfg.Clients < 2 || cfg.Keys < 2 || cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("E9: need >= 2 clients, >= 2 keys, zipf s > 1")
	}
	rc := core.FastRing()
	rc.TokenHold = time.Duration(cfg.TokenHoldMS) * time.Millisecond
	rc.HungryTimeout = 400 * time.Millisecond
	rc.StarvingRetry = 300 * time.Millisecond
	rc.BodyodorInterval = 50 * time.Millisecond
	rc.MaxBatch = cfg.MaxBatch
	g, err := newClusterGrid(cfg.Nodes, cfg.Shards, rc)
	if err != nil {
		return nil, err
	}
	defer g.Close()
	if err := g.WaitAssembled(30 * time.Second); err != nil {
		return nil, err
	}

	// Preload the keyspace through the member the gateway will front.
	cl := g.Clusters[g.IDs[0]]
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	payload := make([]byte, cfg.PayloadBytes)
	sem := make(chan struct{}, 16)
	errCh := make(chan error, 1)
	for i := 0; i < cfg.Keys; i++ {
		sem <- struct{}{}
		go func(key string) {
			defer func() { <-sem }()
			if err := cl.Set(ctx, key, payload); err != nil {
				select {
				case errCh <- err:
				default:
				}
			}
		}(fmt.Sprintf("e9-key-%d", i))
	}
	for i := 0; i < cap(sem); i++ {
		sem <- struct{}{}
	}
	select {
	case err := <-errCh:
		return nil, fmt.Errorf("E9 preload: %w", err)
	default:
	}

	var rows []E9Row
	for _, mode := range e9Modes {
		row := E9Row{Mode: mode}
		if row.On, err = e9Phase(cfg, cl, mode, true); err != nil {
			return nil, fmt.Errorf("E9 %s coalesce=on: %w", mode, err)
		}
		if row.Off, err = e9Phase(cfg, cl, mode, false); err != nil {
			return nil, fmt.Errorf("E9 %s coalesce=off: %w", mode, err)
		}
		if row.On.UpstreamPerReq > 0 {
			row.UpstreamReduction = row.Off.UpstreamPerReq / row.On.UpstreamPerReq
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E9Table renders E9 rows.
func E9Table(rows []E9Row, cfg E9Config) *Table {
	t := &Table{
		Title: "E9: gateway request coalescing under zipfian fan-in",
		Columns: []string{
			"mode", "req/s on", "p99ms on", "up/req on",
			"req/s off", "p99ms off", "up/req off", "upstream cut",
		},
		Notes: []string{
			fmt.Sprintf("%d closed-loop HTTP clients, %d keys, zipf s=%.1f; %d nodes x %d shards behind one gateway",
				cfg.Clients, cfg.Keys, cfg.ZipfS, cfg.Nodes, cfg.Shards),
			"TTL micro-cache off on both sides: the upstream cut is coalescing alone",
			"fenced modes (linearizable) are where fan-in pays: a fence costs an ordered no-op, and every concurrent fetch of the key rides one flight",
			"/metrics scraped and validated mid-load in every phase",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Mode,
			fmt.Sprintf("%.0f", r.On.ReqPS), fmt.Sprintf("%.2f", r.On.P99MS), fmt.Sprintf("%.3f", r.On.UpstreamPerReq),
			fmt.Sprintf("%.0f", r.Off.ReqPS), fmt.Sprintf("%.2f", r.Off.P99MS), fmt.Sprintf("%.3f", r.Off.UpstreamPerReq),
			fmt.Sprintf("%.1fx", r.UpstreamReduction),
		})
	}
	return t
}

// E9Baseline is the persisted benchmark baseline (BENCH_E9.json).
type E9Baseline struct {
	Experiment string   `json:"experiment"`
	Timestamp  string   `json:"timestamp"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Config     E9Config `json:"config"`
	Rows       []E9Row  `json:"rows"`
}

// WriteE9JSON persists the rows as a JSON baseline at path.
func WriteE9JSON(path string, cfg E9Config, rows []E9Row) error {
	b := E9Baseline{
		Experiment: "e9-gateway-coalescing",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Config:     cfg,
		Rows:       rows,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
