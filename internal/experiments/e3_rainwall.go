package experiments

import (
	"fmt"
	"time"

	"repro/internal/rainwall"
	"repro/internal/stats"
)

// E3Row is one cluster-size measurement of Figure 3.
type E3Row struct {
	Nodes          int
	ThroughputMbps float64
	Scaling        float64 // vs the 1-node run
	PaperMbps      float64
	PaperScaling   float64
	RaincoreCPUPct float64
}

// E3Config sizes the Rainwall scaling experiment.
type E3Config struct {
	Sizes       []int
	OfferedMbps float64
	Flows       int
	Ticks       int
	TickLen     time.Duration
	// TaskSwitchCost converts the §4.1 task-switch count into an
	// estimated CPU share (the paper reports Rainwall CPU below 1%).
	TaskSwitchCost time.Duration
}

// DefaultE3 mirrors the paper's setup: enough offered web traffic to
// saturate every configuration (the 360 MHz-era gateways forward ~95
// Mbit/s each).
func DefaultE3() E3Config {
	return E3Config{
		Sizes:          []int{1, 2, 4},
		OfferedMbps:    600,
		Flows:          400,
		Ticks:          150,
		TickLen:        10 * time.Millisecond,
		TaskSwitchCost: 20 * time.Microsecond,
	}
}

// paperFigure3 holds the published series.
var paperFigure3 = map[int]struct {
	mbps    float64
	scaling float64
}{
	1: {95, 1.0},
	2: {187, 1.97},
	4: {357, 3.76},
}

// E3RainwallScaling regenerates Figure 3: aggregate Rainwall throughput at
// 1, 2 and 4 gateways, plus the Raincore CPU share.
func E3RainwallScaling(cfg E3Config) ([]E3Row, error) {
	var rows []E3Row
	var base float64
	for _, n := range cfg.Sizes {
		c, err := rainwall.NewCluster(rainwall.ClusterConfig{N: n})
		if err != nil {
			return nil, err
		}
		if err := c.WaitReady(20 * time.Second); err != nil {
			c.Close()
			return nil, err
		}
		w := rainwall.NewWorkload(rainwall.WorkloadConfig{
			Seed:       int64(1000 + n),
			Flows:      cfg.Flows,
			TotalBps:   cfg.OfferedMbps * 1e6,
			VIPs:       len(c.Pool),
			WebTraffic: true,
		})
		// Measure Raincore CPU over the same wall-clock window.
		wallStart := time.Now()
		var switchesBefore int64
		for _, g := range c.Gateways {
			switchesBefore += g.TaskSwitches()
		}
		samples := c.Run(w, rainwall.RunOptions{Ticks: cfg.Ticks, TickLen: cfg.TickLen})
		var switchesAfter int64
		for _, g := range c.Gateways {
			switchesAfter += g.TaskSwitches()
		}
		wall := time.Since(wallStart).Seconds()
		mbps := rainwall.SteadyThroughput(samples, cfg.Ticks/10) / 1e6
		cpu := 0.0
		if wall > 0 {
			perNodePerSec := float64(switchesAfter-switchesBefore) / float64(n) / wall
			cpu = perNodePerSec * cfg.TaskSwitchCost.Seconds() * 100
		}
		c.Close()
		if n == cfg.Sizes[0] {
			base = mbps
		}
		row := E3Row{
			Nodes:          n,
			ThroughputMbps: mbps,
			Scaling:        mbps / base,
			RaincoreCPUPct: cpu,
		}
		if p, ok := paperFigure3[n]; ok {
			row.PaperMbps = p.mbps
			row.PaperScaling = p.scaling
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E3Table renders Figure 3's reproduction.
func E3Table(rows []E3Row, cfg E3Config) *Table {
	t := &Table{
		Title: "E3 (Figure 3): Rainwall throughput and scaling",
		Columns: []string{"nodes", "throughput (Mbit/s)", "scaling", "paper (Mbit/s)",
			"paper scaling", "raincore CPU %"},
		Notes: []string{
			fmt.Sprintf("offered load %.0f Mbit/s of web traffic over %d connections; per-node capacity %.0f Mbit/s",
				cfg.OfferedMbps, cfg.Flows, rainwall.DefaultCapacityBps/1e6),
			"absolute Mbit/s are calibrated to the paper's single-node result; the scaling SHAPE is the measured outcome",
			"paper: \"Throughout the test, Rainwall CPU usage is below 1%\"",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Nodes),
			fmt.Sprintf("%.1f", r.ThroughputMbps),
			fmt.Sprintf("%.2fx", r.Scaling),
			fmt.Sprintf("%.0f", r.PaperMbps),
			fmt.Sprintf("%.2fx", r.PaperScaling),
			fmt.Sprintf("%.3f%%", r.RaincoreCPUPct),
		})
	}
	return t
}

// taskSwitchRate is a helper shared with A3.
func taskSwitchRate(before, after int64, nodes int, wall time.Duration) float64 {
	if wall <= 0 || nodes == 0 {
		return 0
	}
	return float64(after-before) / float64(nodes) / wall.Seconds()
}

var _ = stats.MetricTaskSwitches // keep the §4.1 metric name referenced
