package experiments

import (
	"context"
	"fmt"
	"time"

	raincore "repro"
	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// clusterGrid is the facade-level analogue of core.TestGrid: N cluster
// members over one simulated switch, each opened with raincore.Open so
// the experiments exercise exactly the composition and retry path a
// downstream application gets — not a hand-assembled runtime.
type clusterGrid struct {
	Net      *simnet.Network
	Clusters map[core.NodeID]*raincore.Cluster
	IDs      []core.NodeID
}

// newClusterGrid opens an N-node, rings-shard grid through the public
// facade and leaves it assembling (callers WaitAssembled).
func newClusterGrid(n, rings int, rc ring.Config) (*clusterGrid, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: grid size %d", n)
	}
	tc := transport.DefaultConfig()
	tc.AckTimeout = 10 * time.Millisecond
	net := simnet.New(simnet.Options{})
	g := &clusterGrid{Net: net, Clusters: make(map[core.NodeID]*raincore.Cluster)}
	for i := 1; i <= n; i++ {
		g.IDs = append(g.IDs, core.NodeID(i))
	}
	for _, id := range g.IDs {
		ep, err := net.Endpoint(core.Addr(id))
		if err != nil {
			g.Close()
			return nil, err
		}
		nodeRC := rc
		nodeRC.Eligible = g.IDs
		nodeRC.SeqBase = uint64(id) << 32 // deterministic distinct bases
		opts := []raincore.Option{
			raincore.WithID(id),
			raincore.WithRings(rings),
			raincore.WithRingConfig(nodeRC),
			raincore.WithTransportConfig(tc),
		}
		for _, other := range g.IDs {
			if other != id {
				opts = append(opts, raincore.WithPeer(other, transport.Addr(core.Addr(other))))
			}
		}
		cl, err := raincore.Open(context.Background(), []raincore.PacketConn{transport.NewSimConn(ep)}, opts...)
		if err != nil {
			g.Close()
			return nil, err
		}
		g.Clusters[id] = cl
	}
	return g, nil
}

// WaitAssembled blocks until every member's combined view holds the full
// ID set, or the timeout elapses.
func (g *clusterGrid) WaitAssembled(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	wantSorted := fmt.Sprint(wire.SortedIDs(g.IDs))
	for time.Now().Before(deadline) {
		ok := true
		for _, id := range g.IDs {
			if fmt.Sprint(g.Clusters[id].Members()) != wantSorted {
				ok = false
				break
			}
		}
		if ok {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	var views []string
	for _, id := range g.IDs {
		views = append(views, fmt.Sprintf("%v:%v", id, g.Clusters[id].Members()))
	}
	return fmt.Errorf("experiments: grid did not converge to %s within %v (%v)", wantSorted, timeout, views)
}

// Grow adds one ring on every member concurrently — the whole-cluster
// grow the facade API requires — and returns the first error. Each
// member's Grow already retries aborted handoffs (a freeze landing on a
// staged transaction, for example) under its own retry policy.
func (g *clusterGrid) Grow(ctx context.Context) error {
	errCh := make(chan error, len(g.IDs))
	for _, id := range g.IDs {
		cl := g.Clusters[id]
		go func() {
			_, err := cl.Grow(ctx)
			errCh <- err
		}()
	}
	var first error
	for range g.IDs {
		if err := <-errCh; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// counterSum adds one registry counter across every member — the
// grid-wide view of the facade's retry metrics.
func (g *clusterGrid) counterSum(name string) int64 {
	var total int64
	for _, cl := range g.Clusters {
		total += cl.Stats().Counter(name).Load()
	}
	return total
}

// frozenRejects reports the writes rejected grid-wide because they
// addressed a frozen (mid-handoff) keyspace slice — the facade's retry
// layer absorbs and re-runs each of them.
func (g *clusterGrid) frozenRejects() int64 { return g.counterSum(stats.MetricFrozenWrites) }

// txnRetriesAbsorbed reports the transaction aborts re-run grid-wide.
func (g *clusterGrid) txnRetriesAbsorbed() int64 { return g.counterSum(stats.MetricClusterTxnRetries) }

// Close shuts every member down and stops the network.
func (g *clusterGrid) Close() {
	for _, cl := range g.Clusters {
		cl.Close()
	}
	g.Net.Close()
}
