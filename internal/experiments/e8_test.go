package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestE8ReadShape runs the CI-sized E8 and checks the claims the baseline
// records: every mode serves reads at every cluster size, the local modes
// scale UP with node count while the ordered write rate does not, and the
// leased mode stays within 2x of eventual (the lease really is amortizing
// the fence). The full-sized run is `rainbench e8`.
func TestE8ReadShape(t *testing.T) {
	cfg := QuickE8()
	rows, err := E8ReadScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Nodes) {
		t.Fatalf("result shape: %+v", rows)
	}
	for _, r := range rows {
		if r.WriteOpsPS <= 0 || r.EventualPS <= 0 || r.SessionPS <= 0 ||
			r.BoundedPS <= 0 || r.LeasePS <= 0 || r.FencePS <= 0 {
			t.Fatalf("a phase served nothing at N=%d: %+v", r.Nodes, r)
		}
	}
	last := rows[len(rows)-1]
	// Local reads must scale with nodes: lenient floors (the acceptance
	// bar is checked on the full-sized rainbench run, not under CI load).
	if growth := float64(last.Nodes) / float64(rows[0].Nodes); growth >= 2 {
		if last.EventualX < 1.3 {
			t.Errorf("eventual reads did not scale with nodes: %+v", rows)
		}
		if last.SessionX < 1.3 {
			t.Errorf("session reads did not scale with nodes: %+v", rows)
		}
		// Writes are token-bound: adding nodes must not multiply them the
		// way it multiplies local reads.
		if last.WriteX > last.EventualX {
			t.Errorf("writes scaled faster than local reads — the read path is riding the token: %+v", rows)
		}
	}
	if last.LeasePS < last.EventualPS/2 {
		t.Errorf("leased reads %.0f/s are more than 2x below eventual %.0f/s: the lease is not amortizing the fence", last.LeasePS, last.EventualPS)
	}
	t.Log("\n" + E8Table(rows, cfg).String())
}

// TestWriteE8JSON checks the persisted baseline round-trips, including
// the E5 write cross-reference.
func TestWriteE8JSON(t *testing.T) {
	rows := []E8Row{
		{Nodes: 1, WriteOpsPS: 5000, EventualPS: 15000, EventualX: 1},
		{Nodes: 4, WriteOpsPS: 5100, WriteX: 1.02, EventualPS: 60000, EventualX: 4},
	}
	path := filepath.Join(t.TempDir(), "BENCH_E8.json")
	if err := WriteE8JSON(path, DefaultE8(), rows, 5400); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got E8Baseline
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "e8-read-scaling" || len(got.Rows) != 2 ||
		got.Rows[1].EventualX != 4 || got.E5WriteRef4Shards != 5400 {
		t.Fatalf("baseline round-trip mismatch: %+v", got)
	}
}

// TestE5WriteRef checks the cross-reference extractor tolerates a missing
// or malformed file.
func TestE5WriteRef(t *testing.T) {
	if got := E5WriteRef(filepath.Join(t.TempDir(), "missing.json")); got != 0 {
		t.Fatalf("missing file -> %v, want 0", got)
	}
	path := filepath.Join(t.TempDir(), "e5.json")
	if err := WriteE5JSON(path, DefaultE5(), []E5Row{{Shards: 1, DDSOpsPS: 2000}, {Shards: 4, DDSOpsPS: 5400}}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if got := E5WriteRef(path); got != 5400 {
		t.Fatalf("E5WriteRef = %v, want 5400", got)
	}
}
