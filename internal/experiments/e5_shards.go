package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dds"
)

// --- E5: sharded multi-ring scaling ---
//
// The paper's session service totally orders all traffic through one
// circulating token, so a group's ordered-multicast throughput is capped
// at one token circulation regardless of node count. E5 measures how the
// sharded runtime breaks that ceiling: S independent rings over the same
// nodes and one shared transport, with the DDS keyspace consistent-hashed
// across them. Aggregate throughput should scale ~linearly in S while
// per-ring (and hence per-key) ordering is preserved.
//
// To make the per-ring ceiling deterministic rather than CPU-bound, the
// rings run with a bounded per-hop batch (ring.Config.MaxBatch): one ring
// can deliver at most N*MaxBatch messages per token round no matter how
// hard the producers push, which is exactly the regime where adding rings
// is the only way up.

// E5Config sizes the shard-scaling experiment.
type E5Config struct {
	// N is the cluster size (nodes, each hosting every ring).
	N int
	// Shards lists the ring counts to measure.
	Shards []int
	// TokenHoldMS is the per-hop token hold in milliseconds; with
	// MaxBatch it fixes each ring's throughput ceiling.
	TokenHoldMS int
	// MaxBatch bounds multicast attachments per token hop.
	MaxBatch int
	// AdaptiveBatch lets each node raise its attach budget above MaxBatch
	// from observed token RTT and datagram headroom (ring.Config
	// .AdaptiveBatch), turning the fixed per-hop ceiling into a
	// transport-bound one.
	AdaptiveBatch bool
	// Window is the closed-loop in-flight multicast count per node per
	// ring; it must exceed MaxBatch to keep every hop's batch full.
	Window int
	// Warmup and Duration bound each measurement phase.
	Warmup   time.Duration
	Duration time.Duration
	// DDSWorkers is the number of concurrent Set loops per node driving
	// the sharded data service phase.
	DDSWorkers int
	// PayloadBytes sizes each multicast payload.
	PayloadBytes int
}

// DefaultE5 keeps the per-ring ceiling low enough (token-rate-bound, not
// CPU-bound) that shard scaling is visible even on a single-core host.
func DefaultE5() E5Config {
	return E5Config{
		N:            4,
		Shards:       []int{1, 2, 4},
		TokenHoldMS:  4,
		MaxBatch:     8,
		Window:       32,
		Warmup:       300 * time.Millisecond,
		Duration:     1200 * time.Millisecond,
		DDSWorkers:   48,
		PayloadBytes: 64,
	}
}

// AdaptiveE5 is DefaultE5 with the fixed per-hop attach cap replaced by
// the adaptive budget controller. The closed-loop window grows with it:
// with the cap gone, in-flight credit is what keeps each hop's batch full.
func AdaptiveE5() E5Config {
	cfg := DefaultE5()
	cfg.AdaptiveBatch = true
	cfg.Window = 256
	return cfg
}

// E5Row is one shard count's measurement.
type E5Row struct {
	Shards int `json:"shards"`
	// MulticastPS is the aggregate ordered-multicast delivery rate
	// observed at one node across all rings (messages/second).
	MulticastPS float64 `json:"multicast_per_sec"`
	// MulticastX is the speedup over the 1-shard row.
	MulticastX float64 `json:"multicast_speedup"`
	// DDSOpsPS is the aggregate sharded-dds Set completion rate across
	// all nodes (ops/second).
	DDSOpsPS float64 `json:"dds_ops_per_sec"`
	// DDSX is the speedup over the 1-shard row.
	DDSX float64 `json:"dds_speedup"`
}

// e5Grid builds the measurement grid: fast token, slow failure detection
// (the grid is loaded, not faulty), bounded batches.
func e5Grid(cfg E5Config, shards int) (*core.TestGrid, error) {
	rc := core.FastRing()
	rc.TokenHold = time.Duration(cfg.TokenHoldMS) * time.Millisecond
	rc.HungryTimeout = 400 * time.Millisecond
	rc.StarvingRetry = 300 * time.Millisecond
	rc.BodyodorInterval = 50 * time.Millisecond
	rc.MaxBatch = cfg.MaxBatch
	rc.AdaptiveBatch = cfg.AdaptiveBatch
	return core.NewTestGrid(core.GridOptions{
		N: cfg.N, Rings: shards, Ring: rc, DeferStart: true,
	})
}

// e5Multicast measures aggregate closed-loop multicast throughput at the
// given shard count: every node keeps Window messages in flight on every
// ring; deliveries are counted at node 1 across all rings.
func e5Multicast(cfg E5Config, shards int) (float64, error) {
	g, err := e5Grid(cfg, shards)
	if err != nil {
		return 0, err
	}
	defer g.Close()

	var delivered atomic.Int64
	stop := make(chan struct{})
	type lane struct {
		node    *core.Node
		credits chan struct{}
	}
	var lanes []lane
	for _, id := range g.IDs {
		for ring := 0; ring < shards; ring++ {
			n := g.Runtimes[id].Node(core.RingID(ring))
			l := lane{node: n, credits: make(chan struct{}, 4*cfg.Window)}
			id := id
			n.SetHandlers(core.Handlers{OnDeliver: func(d core.Delivery) {
				if id == 1 {
					delivered.Add(1)
				}
				if d.Origin == id {
					select {
					case l.credits <- struct{}{}:
					default:
					}
				}
			}})
			lanes = append(lanes, l)
		}
	}
	g.StartAll()
	if err := g.WaitAssembled(30 * time.Second); err != nil {
		return 0, err
	}
	payload := make([]byte, cfg.PayloadBytes)
	for _, l := range lanes {
		l := l
		go func() {
			for i := 0; i < cfg.Window; i++ {
				if l.node.Multicast(payload) != nil {
					return
				}
			}
			for {
				select {
				case <-stop:
					return
				case <-l.credits:
					if l.node.Multicast(payload) != nil {
						return
					}
				}
			}
		}()
	}
	time.Sleep(cfg.Warmup)
	before := delivered.Load()
	time.Sleep(cfg.Duration)
	rate := float64(delivered.Load()-before) / cfg.Duration.Seconds()
	close(stop)
	return rate, nil
}

// e5DDS measures aggregate sharded data-service write throughput: every
// node runs DDSWorkers closed-loop Set workers against a Sharded router
// whose keyspace is consistent-hashed across the rings.
func e5DDS(cfg E5Config, shards int) (float64, error) {
	g, err := e5Grid(cfg, shards)
	if err != nil {
		return 0, err
	}
	defer g.Close()
	svcs := make(map[core.NodeID]*dds.Sharded)
	for id, rt := range g.Runtimes {
		s, err := dds.AttachSharded(rt)
		if err != nil {
			return 0, err
		}
		svcs[id] = s
	}
	g.StartAll()
	if err := g.WaitAssembled(30 * time.Second); err != nil {
		return 0, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ops atomic.Int64
	payload := make([]byte, cfg.PayloadBytes)
	for _, id := range g.IDs {
		svc := svcs[id]
		for w := 0; w < cfg.DDSWorkers; w++ {
			seed := int(id)*1000 + w
			go func() {
				for i := 0; ; i++ {
					key := fmt.Sprintf("e5-key-%d", (seed*7919+i*131)%1024)
					if svc.Set(ctx, key, payload) != nil {
						return
					}
					ops.Add(1)
				}
			}()
		}
	}
	time.Sleep(cfg.Warmup)
	before := ops.Load()
	time.Sleep(cfg.Duration)
	rate := float64(ops.Load()-before) / cfg.Duration.Seconds()
	cancel()
	return rate, nil
}

// E5ShardScaling measures aggregate multicast and dds throughput at each
// configured shard count.
func E5ShardScaling(cfg E5Config) ([]E5Row, error) {
	var rows []E5Row
	for _, s := range cfg.Shards {
		mcast, err := e5Multicast(cfg, s)
		if err != nil {
			return nil, fmt.Errorf("E5 multicast S=%d: %w", s, err)
		}
		ddsRate, err := e5DDS(cfg, s)
		if err != nil {
			return nil, fmt.Errorf("E5 dds S=%d: %w", s, err)
		}
		rows = append(rows, E5Row{Shards: s, MulticastPS: mcast, DDSOpsPS: ddsRate})
	}
	if len(rows) > 0 && rows[0].MulticastPS > 0 {
		for i := range rows {
			rows[i].MulticastX = rows[i].MulticastPS / rows[0].MulticastPS
		}
	}
	if len(rows) > 0 && rows[0].DDSOpsPS > 0 {
		for i := range rows {
			rows[i].DDSX = rows[i].DDSOpsPS / rows[0].DDSOpsPS
		}
	}
	return rows, nil
}

// E5Table renders E5 rows.
func E5Table(rows []E5Row, cfg E5Config) *Table {
	title := "E5: sharded multi-ring scaling (aggregate ordered throughput)"
	ceiling := fmt.Sprintf("%d nodes; per-ring ceiling = token rate x %d msgs/hop (MaxBatch), so scaling comes only from added rings", cfg.N, cfg.MaxBatch)
	if cfg.AdaptiveBatch {
		title = "E5: sharded multi-ring scaling (adaptive attach budget)"
		ceiling = fmt.Sprintf("%d nodes; attach budget adapts to token RTT and datagram headroom (floor MaxBatch=%d), so each ring runs transport-bound", cfg.N, cfg.MaxBatch)
	}
	t := &Table{
		Title:   title,
		Columns: []string{"shards", "multicast msg/s", "speedup", "dds set/s", "speedup"},
		Notes: []string{
			ceiling,
			"one transport per node is shared by all rings; the DDS keyspace is consistent-hashed across rings",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.Shards),
			fmt.Sprintf("%.0f", r.MulticastPS),
			fmt.Sprintf("%.2fx", r.MulticastX),
			fmt.Sprintf("%.0f", r.DDSOpsPS),
			fmt.Sprintf("%.2fx", r.DDSX),
		})
	}
	return t
}

// E5Baseline is the persisted benchmark baseline (BENCH_E5.json). Rows
// holds the fixed-MaxBatch measurement; AdaptiveRows, when present, holds
// the same grid re-run with the adaptive attach-budget controller on.
type E5Baseline struct {
	Experiment     string    `json:"experiment"`
	Timestamp      string    `json:"timestamp"`
	GoMaxProcs     int       `json:"gomaxprocs"`
	Config         E5Config  `json:"config"`
	Rows           []E5Row   `json:"rows"`
	AdaptiveConfig *E5Config `json:"adaptive_config,omitempty"`
	AdaptiveRows   []E5Row   `json:"adaptive_rows,omitempty"`
}

// WriteE5JSON persists the rows as a JSON baseline at path. adaptiveRows
// may be nil when only the fixed-batch grid was run.
func WriteE5JSON(path string, cfg E5Config, rows []E5Row, adaptiveCfg *E5Config, adaptiveRows []E5Row) error {
	b := E5Baseline{
		Experiment:     "e5-shard-scaling",
		Timestamp:      time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:     runtime.GOMAXPROCS(0),
		Config:         cfg,
		Rows:           rows,
		AdaptiveConfig: adaptiveCfg,
		AdaptiveRows:   adaptiveRows,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
