package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestE5ShardScalingShape runs a reduced E5 and checks the aggregate
// ordered throughput grows with the shard count. The full acceptance run
// (4 shards >= 2.5x) is the rainbench e5 / BenchmarkE5ShardScaling
// configuration; the tier-1 test keeps a conservative bound so it stays
// robust on loaded CI hosts.
func TestE5ShardScalingShape(t *testing.T) {
	cfg := DefaultE5()
	cfg.N = 3
	cfg.Shards = []int{1, 2}
	cfg.Warmup = 200 * time.Millisecond
	cfg.Duration = 600 * time.Millisecond
	cfg.DDSWorkers = 24
	rows, err := E5ShardScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.MulticastPS <= 0 || r.DDSOpsPS <= 0 {
			t.Fatalf("zero throughput: %+v", r)
		}
	}
	if rows[1].MulticastX < 1.3 {
		t.Errorf("2-shard multicast speedup = %.2fx, want >= 1.3x", rows[1].MulticastX)
	}
	if rows[1].DDSX < 1.3 {
		t.Errorf("2-shard dds speedup = %.2fx, want >= 1.3x", rows[1].DDSX)
	}
	t.Log("\n" + E5Table(rows, cfg).String())
}

// TestWriteE5JSON checks the persisted baseline round-trips.
func TestWriteE5JSON(t *testing.T) {
	rows := []E5Row{
		{Shards: 1, MulticastPS: 1000, MulticastX: 1, DDSOpsPS: 900, DDSX: 1},
		{Shards: 4, MulticastPS: 3900, MulticastX: 3.9, DDSOpsPS: 3000, DDSX: 3.33},
	}
	path := filepath.Join(t.TempDir(), "BENCH_E5.json")
	if err := WriteE5JSON(path, DefaultE5(), rows, nil, nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got E5Baseline
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "e5-shard-scaling" || len(got.Rows) != 2 || got.Rows[1].Shards != 4 {
		t.Fatalf("baseline round-trip mismatch: %+v", got)
	}
}
