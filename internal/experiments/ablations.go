package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/transport"
	"repro/internal/wire"
)

// --- A1: safe vs agreed ordering (§2.6) ---

// A1Row compares delivery latency of the two ordering levels.
type A1Row struct {
	Ordering  string
	N         int
	MeanMs    float64
	P99Ms     float64
	RoundsEst string
}

// A1SafeVsAgreed measures origin-side submit-to-deliver latency for agreed
// and safe ordering: safe costs roughly one extra token round.
func A1SafeVsAgreed(n, msgs int) ([]A1Row, error) {
	var rows []A1Row
	for _, safe := range []bool{false, true} {
		ring := core.FastRing()
		ring.TokenHold = 2 * time.Millisecond
		tc, err := core.NewTestCluster(core.ClusterOptions{N: n, Ring: ring})
		if err != nil {
			return nil, err
		}
		if err := tc.WaitAssembled(15 * time.Second); err != nil {
			tc.Close()
			return nil, err
		}
		node := tc.Nodes[1]
		var mu sync.Mutex
		delivered := 0
		done := make(chan struct{})
		node.SetHandlers(core.Handlers{OnDeliver: func(d core.Delivery) {
			if d.Origin != 1 {
				return
			}
			mu.Lock()
			delivered++
			if delivered == msgs {
				close(done)
			}
			mu.Unlock()
		}})
		for i := 0; i < msgs; i++ {
			var err error
			if safe {
				err = node.MulticastSafe(make([]byte, 64))
			} else {
				err = node.Multicast(make([]byte, 64))
			}
			if err != nil {
				tc.Close()
				return nil, err
			}
			time.Sleep(5 * time.Millisecond) // pace submissions
		}
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			tc.Close()
			return nil, fmt.Errorf("A1: deliveries incomplete")
		}
		sum := node.Stats().Histogram(stats.HistMulticastLatency).Summary()
		tc.Close()
		name, rounds := "agreed", "~1 token round"
		if safe {
			name, rounds = "safe", "~2 token rounds (extra round proves group-wide receipt)"
		}
		rows = append(rows, A1Row{
			Ordering:  name,
			N:         n,
			MeanMs:    float64(sum.Mean) / float64(time.Millisecond),
			P99Ms:     float64(sum.P99) / float64(time.Millisecond),
			RoundsEst: rounds,
		})
	}
	return rows, nil
}

// A1Table renders the ordering-level ablation.
func A1Table(rows []A1Row) *Table {
	t := &Table{
		Title:   "A1 (§2.6 ablation): delivery latency, agreed vs safe ordering",
		Columns: []string{"ordering", "N", "mean (ms)", "p99 (ms)", "expected cost"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Ordering, fmt.Sprint(r.N),
			fmt.Sprintf("%.2f", r.MeanMs), fmt.Sprintf("%.2f", r.P99Ms), r.RoundsEst,
		})
	}
	return t
}

// --- A2: sequential vs parallel multi-address sending (§2.1) ---

// A2Row compares the send strategies under a failed primary link.
type A2Row struct {
	Strategy    string
	MeanMs      float64
	PacketsSent int64
	Failures    int64
}

// A2SendStrategy sends over a peer with two physical addresses whose
// primary link is dead: sequential retries walk to the backup address,
// parallel hits both at once — latency vs packet cost.
func A2SendStrategy(msgs int) ([]A2Row, error) {
	var rows []A2Row
	for _, strat := range []transport.Strategy{transport.Sequential, transport.Parallel} {
		net := simnet.New(simnet.Options{Seed: 11})
		cfg := transport.DefaultConfig()
		cfg.AckTimeout = 10 * time.Millisecond
		cfg.Attempts = 6
		cfg.Strategy = strat
		sender := transport.New(1, []transport.PacketConn{transport.NewSimConn(net.MustEndpoint("a"))},
			nil, stats.NewRegistry(), cfg)
		recvA := net.MustEndpoint("b1")
		recvB := net.MustEndpoint("b2")
		receiver := transport.New(2, []transport.PacketConn{
			transport.NewSimConn(recvA), transport.NewSimConn(recvB)}, nil, stats.NewRegistry(), cfg)
		receiver.SetHandler(func(wire.NodeID, []byte, *wire.Buf) {})
		sender.SetPeer(2, []transport.Addr{"b1", "b2"})
		receiver.SetPeer(1, []transport.Addr{"a"})
		net.CutLink("a", "b1") // primary dead

		var total time.Duration
		for i := 0; i < msgs; i++ {
			start := time.Now()
			if err := sender.SendSync(2, make([]byte, 128)); err != nil {
				// failure-on-delivery: counted below via stats
				_ = err
			}
			total += time.Since(start)
		}
		name := "sequential"
		if strat == transport.Parallel {
			name = "parallel"
		}
		rows = append(rows, A2Row{
			Strategy:    name,
			MeanMs:      float64(total) / float64(msgs) / float64(time.Millisecond),
			PacketsSent: sender.Stats().Counter(stats.MetricPacketsSent).Load(),
			Failures:    sender.Stats().Counter(stats.MetricSendFailures).Load(),
		})
		sender.Close()
		receiver.Close()
		net.Close()
	}
	return rows, nil
}

// A2Table renders the strategy ablation.
func A2Table(rows []A2Row, msgs int) *Table {
	t := &Table{
		Title:   "A2 (§2.1 ablation): sequential vs parallel multi-address sending, primary link dead",
		Columns: []string{"strategy", "mean delivery (ms)", "packets sent", "delivery failures"},
		Notes: []string{
			fmt.Sprintf("%d messages to a peer with two physical addresses; the first address is unreachable", msgs),
			"sequential pays one ack-timeout to discover the dead primary; parallel pays duplicate packets instead",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Strategy, fmt.Sprintf("%.2f", r.MeanMs),
			fmt.Sprint(r.PacketsSent), fmt.Sprint(r.Failures),
		})
	}
	return t
}

// --- A3: token interval sweep (§2.2) ---

// A3Row shows the §2.2 design trade-off: a faster token detects failures
// sooner but costs more task switches.
type A3Row struct {
	TokenHold    time.Duration
	DetectMs     float64
	SwitchesPS   float64
	RoundTripMs  float64
	HungryFactor int
}

// A3TokenInterval sweeps the hold interval on a 4-node cluster, measuring
// failure-detection latency (node kill to membership convergence) and the
// idle task-switch rate.
func A3TokenInterval(holds []time.Duration) ([]A3Row, error) {
	var rows []A3Row
	for _, hold := range holds {
		ring := core.FastRing()
		ring.TokenHold = hold
		ring.HungryTimeout = 10 * hold * 4 // 10 round-trips of slack
		ring.StarvingRetry = ring.HungryTimeout
		tc, err := core.NewTestCluster(core.ClusterOptions{N: 4, Ring: ring})
		if err != nil {
			return nil, err
		}
		if err := tc.WaitAssembled(30 * time.Second); err != nil {
			tc.Close()
			return nil, err
		}
		// Idle switch rate.
		window := 1 * time.Second
		var before int64
		for _, id := range tc.IDs {
			before += tc.Nodes[id].Stats().Counter(stats.MetricTaskSwitches).Load()
		}
		time.Sleep(window)
		var after int64
		for _, id := range tc.IDs {
			after += tc.Nodes[id].Stats().Counter(stats.MetricTaskSwitches).Load()
		}
		rtt := tc.Nodes[1].Stats().Histogram(stats.HistTokenRoundTrip).Summary()
		// Failure detection: kill node 4, time convergence of survivors.
		start := time.Now()
		tc.Net.SetNodeDown(core.Addr(4), true)
		err = tc.WaitMembership(60*time.Second, 1, 2, 3)
		detect := time.Since(start)
		tc.Close()
		if err != nil {
			return nil, err
		}
		rows = append(rows, A3Row{
			TokenHold:   hold,
			DetectMs:    float64(detect) / float64(time.Millisecond),
			SwitchesPS:  taskSwitchRate(before, after, 4, window),
			RoundTripMs: float64(rtt.Mean) / float64(time.Millisecond),
		})
	}
	return rows, nil
}

// A3Table renders the sweep.
func A3Table(rows []A3Row) *Table {
	t := &Table{
		Title:   "A3 (§2.2 ablation): token interval vs failure detection vs CPU overhead (4 nodes)",
		Columns: []string{"token hold", "detect (ms)", "switches/s/node", "round trip (ms)"},
		Notes: []string{
			"hungry timeout scales with the hold interval (10 round-trips)",
			"faster tokens detect failures sooner but wake the CPU more often — the paper's central trade-off",
		},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.TokenHold.String(),
			fmt.Sprintf("%.0f", r.DetectMs),
			fmt.Sprintf("%.0f", r.SwitchesPS),
			fmt.Sprintf("%.2f", r.RoundTripMs),
		})
	}
	return t
}
