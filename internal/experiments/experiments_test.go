package experiments

import (
	"strings"
	"testing"
	"time"
)

// These tests run scaled-down versions of every experiment: they verify
// the harnesses work end to end and that the paper's qualitative claims
// hold, without the full measurement windows rainbench uses.

func TestE1RaincoreFlatInN(t *testing.T) {
	cfg := E1Config{Ns: []int{2, 6}, M: 100, L: 50, Duration: 600 * time.Millisecond}
	rows, err := E1TaskSwitching(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byProto := map[string]map[int]float64{}
	for _, r := range rows {
		if byProto[r.Protocol] == nil {
			byProto[r.Protocol] = map[int]float64{}
		}
		byProto[r.Protocol][r.N] = r.SwitchesPS
	}
	rc := byProto["raincore-token"]
	// Raincore must NOT grow with N: allow 2x slack for quantization.
	if rc[6] > 2*rc[2]+50 {
		t.Fatalf("raincore switches grew with N: %v", rc)
	}
	bc := byProto["broadcast-unordered"]
	// Broadcast must grow roughly 5x from N=2 to N=6 (M*(N-1)).
	if bc[6] < 3*bc[2] {
		t.Fatalf("broadcast switches did not scale with N: %v", bc)
	}
	// Ordered 2PC must cost a clear multiple of unordered. The margin is
	// generous (1.4x instead of the nominal 3x) because instrumented
	// runs, e.g. under the race detector, slow the submission tickers.
	tp := byProto["broadcast-2pc-ordered"]
	if tp[6] < 1.4*bc[6] {
		t.Fatalf("2pc %f not a multiple of unordered %f", tp[6], bc[6])
	}
	// Raincore beats both baselines at N=6.
	if rc[6] > bc[6] {
		t.Fatalf("raincore (%f) not cheaper than broadcast (%f) at N=6", rc[6], bc[6])
	}
	out := E1Table(rows, cfg).String()
	if !strings.Contains(out, "raincore-token") {
		t.Fatal("table missing protocol rows")
	}
}

func TestE2BroadcastPacketCountExact(t *testing.T) {
	cfg := E2Config{Ns: []int{3}, MsgBytes: 128}
	rows, err := E2NetworkOverhead(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var bcast, token *E2Row
	for i := range rows {
		switch rows[i].Protocol {
		case "broadcast-unicast-fanout":
			bcast = &rows[i]
		case "raincore-token":
			token = &rows[i]
		}
	}
	if bcast == nil || token == nil {
		t.Fatalf("missing rows: %+v", rows)
	}
	// Exactly 2*N*(N-1) packets: data + acks, no loss on the clean net.
	if want := int64(2 * 3 * 2); bcast.Packets != want {
		t.Fatalf("broadcast packets = %d, want %d", bcast.Packets, want)
	}
	// The token aggregates: strictly fewer packets than broadcast.
	if token.Packets >= bcast.Packets {
		t.Fatalf("token packets %d not fewer than broadcast %d", token.Packets, bcast.Packets)
	}
	if token.Bytes <= 0 {
		t.Fatal("token bytes not measured")
	}
	_ = E2Table(rows, cfg).String()
}

func TestE3ScalingShape(t *testing.T) {
	cfg := DefaultE3()
	cfg.Sizes = []int{1, 2}
	cfg.Ticks = 60
	rows, err := E3RainwallScaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].ThroughputMbps < 90 || rows[0].ThroughputMbps > 96 {
		t.Fatalf("1-node throughput %.1f, want ~95", rows[0].ThroughputMbps)
	}
	if rows[1].Scaling < 1.8 || rows[1].Scaling > 2.0 {
		t.Fatalf("2-node scaling %.2f, want ~1.96", rows[1].Scaling)
	}
	if rows[0].RaincoreCPUPct > 1.0 {
		t.Fatalf("raincore CPU %.2f%%, paper claims < 1%%", rows[0].RaincoreCPUPct)
	}
	_ = E3Table(rows, cfg).String()
}

func TestE4FailoverUnderTwoSeconds(t *testing.T) {
	cfg := DefaultE4()
	cfg.Sizes = []int{2}
	cfg.Ticks = 250
	rows, err := E4Failover(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].GapSecs > 2.0 {
		t.Fatalf("failover gap %.2fs exceeds the paper's two seconds", rows[0].GapSecs)
	}
	_ = E4Table(rows, cfg).String()
}

func TestA1SafeCostsMoreThanAgreed(t *testing.T) {
	rows, err := A1SafeVsAgreed(3, 15)
	if err != nil {
		t.Fatal(err)
	}
	var agreed, safe float64
	for _, r := range rows {
		switch r.Ordering {
		case "agreed":
			agreed = r.MeanMs
		case "safe":
			safe = r.MeanMs
		}
	}
	if safe <= agreed {
		t.Fatalf("safe (%.2fms) not slower than agreed (%.2fms)", safe, agreed)
	}
	_ = A1Table(rows).String()
}

func TestA2ParallelFasterThanSequential(t *testing.T) {
	rows, err := A2SendStrategy(30)
	if err != nil {
		t.Fatal(err)
	}
	var seq, par A2Row
	for _, r := range rows {
		if r.Strategy == "sequential" {
			seq = r
		} else {
			par = r
		}
	}
	if par.MeanMs >= seq.MeanMs {
		t.Fatalf("parallel (%.2fms) not faster than sequential (%.2fms)", par.MeanMs, seq.MeanMs)
	}
	if seq.Failures != 0 || par.Failures != 0 {
		t.Fatalf("redundant links failed to mask the dead primary: seq=%d par=%d",
			seq.Failures, par.Failures)
	}
	_ = A2Table(rows, 30).String()
}

func TestA3FasterTokenMoreSwitches(t *testing.T) {
	rows, err := A3TokenInterval([]time.Duration{2 * time.Millisecond, 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].SwitchesPS <= rows[1].SwitchesPS {
		t.Fatalf("faster token did not cost more switches: %v vs %v",
			rows[0].SwitchesPS, rows[1].SwitchesPS)
	}
	if rows[0].RoundTripMs >= rows[1].RoundTripMs {
		t.Fatalf("round trip not ordered by hold interval: %+v", rows)
	}
	_ = A3Table(rows).String()
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"x", "y"}, {"wider-cell", "z"}},
		Notes:   []string{"n1"},
	}
	out := tab.String()
	for _, want := range []string{"T\n", "long-column", "wider-cell", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // title, header, separator, 2 rows, note
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
}
