package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	raincore "repro"
	"repro/internal/stats"
)

// --- E11: end-to-end write batching — coalesced frames and group commit ---
//
// The write-batching claim is that one ordered multicast can carry K
// writes end to end: concurrent Set/Delete callers coalesce into a
// multi-op frame per shard, the frame is applied as one ordered
// delivery (one COW bucket clone per touched bucket, not per op), and
// the WAL logs it as one group-commit record — one fsync per batch
// under fsync_mode=always instead of one per op. Ordered throughput
// then scales with the coalescing factor, not the token cadence, while
// a lone writer (Linger=0, the self-clocking default) still flushes
// immediately and keeps its pre-batching latency.
//
// E11 measures this through the public facade: closed-loop writer
// pools sweep the coalescer configuration (off, Linger=0, Linger=1ms)
// against the durability ladder (no storage, then fsync none/batch/
// always). The acceptance bars: batched throughput at least 3x the
// unbatched no-storage baseline at equal node count, and the
// fsync=always row within 15% of fsync=none once group commit
// amortizes the sync.

// E11Config sizes the write-batching experiment.
type E11Config struct {
	// Nodes and Shards size the cluster.
	Nodes  int
	Shards int
	// TokenHoldMS and MaxBatch pin the ordered ceiling — MaxBatch is
	// the ring's frames-per-token-visit budget, the bottleneck the
	// coalescer exists to stop paying per op.
	TokenHoldMS int
	MaxBatch    int
	// Writers is the closed-loop writer count. Batching only pays when
	// writers contend, so this is sized well above E10's pool.
	Writers int
	// Keys bounds the keyspace and PayloadBytes sizes each value.
	Keys         int
	PayloadBytes int
	// Warmup and Duration bound each measurement window; each phase
	// runs Reps windows and reports the best one.
	Warmup   time.Duration
	Duration time.Duration
	Reps     int
	// MaxOps and MaxBytes cap one coalesced frame (0 = library
	// default).
	MaxOps   int
	MaxBytes int
}

// DefaultE11 runs 64 writers against a 3-node, 2-shard cluster with
// second-long measurement windows.
func DefaultE11() E11Config {
	return E11Config{
		Nodes:        3,
		Shards:       2,
		TokenHoldMS:  4,
		MaxBatch:     8,
		Writers:      64,
		Keys:         256,
		PayloadBytes: 64,
		Warmup:       250 * time.Millisecond,
		Duration:     1000 * time.Millisecond,
		Reps:         3,
		MaxOps:       128,
	}
}

// QuickE11 is the CI size: fewer writers, shorter windows.
func QuickE11() E11Config {
	cfg := DefaultE11()
	cfg.Writers = 32
	cfg.Warmup = 100 * time.Millisecond
	cfg.Duration = 350 * time.Millisecond
	cfg.Reps = 2
	return cfg
}

// E11Row is one batching x durability phase.
type E11Row struct {
	// Batching is "unbatched", "linger0" (self-clocking default) or
	// "linger1ms".
	Batching string `json:"batching"`
	// Fsync is "off" (no storage) or the WAL fsync mode.
	Fsync string `json:"fsync_mode"`
	// SetsPS is completed ordered writes per second in the best window.
	SetsPS float64 `json:"sets_per_sec"`
	// Flushes and BatchedOps count the coalescer's work across members;
	// OpsPerFlush is their ratio — the achieved coalescing factor.
	Flushes     int64   `json:"batch_flushes"`
	BatchedOps  int64   `json:"batched_ops"`
	OpsPerFlush float64 `json:"ops_per_flush"`
	// WALBatchAppends counts group-commit records; WALFsyncs counts the
	// syncs they cost. Under always, fsyncs track batches, not ops.
	WALBatchAppends int64 `json:"wal_batch_appends"`
	WALFsyncs       int64 `json:"wal_fsyncs"`
	// SpeedupX is SetsPS over the unbatched no-storage baseline.
	SpeedupX float64 `json:"speedup_x"`
}

// E11Result is the complete write-batching measurement.
type E11Result struct {
	Rows []E11Row `json:"rows"`
	// BaselineSetsPS is the unbatched no-storage row's throughput.
	BaselineSetsPS float64 `json:"baseline_sets_per_sec"`
	// BestSpeedupX is the largest batched speedup observed.
	BestSpeedupX float64 `json:"best_speedup_x"`
	// AlwaysOverheadPct is the fsync=always throughput cost vs
	// fsync=none — the group-commit bill — for the batching mode that
	// amortizes it best (named by AlwaysOverheadBatching): the deeper
	// the coalescing, the fewer syncs per op.
	AlwaysOverheadPct      float64 `json:"always_overhead_pct"`
	AlwaysOverheadBatching string  `json:"always_overhead_batching"`
	// The acceptance bars.
	SpeedupWithinTarget bool `json:"batched_at_least_3x"`
	AlwaysWithinTarget  bool `json:"always_overhead_within_15pct"`
}

// e11Batching maps a row label to the facade option.
func e11Batching(cfg E11Config, label string) raincore.WriteBatching {
	switch label {
	case "unbatched":
		return raincore.WriteBatching{Disabled: true}
	case "linger1ms":
		return raincore.WriteBatching{MaxOps: cfg.MaxOps, MaxBytes: cfg.MaxBytes, Linger: time.Millisecond}
	default: // linger0: the self-clocking default
		return raincore.WriteBatching{MaxOps: cfg.MaxOps, MaxBytes: cfg.MaxBytes}
	}
}

// e11GridConfig adapts the E11 sizing onto the shared e10 grid. The
// compaction threshold is left at its production size: E11 measures the
// coalescer, not snapshot churn.
func e11GridConfig(cfg E11Config) E10Config {
	return E10Config{
		Nodes:              cfg.Nodes,
		Shards:             cfg.Shards,
		TokenHoldMS:        cfg.TokenHoldMS,
		MaxBatch:           cfg.MaxBatch,
		Writers:            cfg.Writers,
		Keys:               cfg.Keys,
		PayloadBytes:       cfg.PayloadBytes,
		Warmup:             cfg.Warmup,
		Duration:           cfg.Duration,
		Reps:               cfg.Reps,
		SnapshotEveryBytes: 4 << 20,
	}
}

// e11Phase measures one batching x durability combination from a fresh
// grid.
func e11Phase(cfg E11Config, batching, fsync string) (E11Row, error) {
	row := E11Row{Batching: batching, Fsync: fsync}
	root := ""
	if fsync != "off" {
		var err error
		if root, err = os.MkdirTemp("", "e11-"+batching+"-"+fsync+"-"); err != nil {
			return row, err
		}
		defer os.RemoveAll(root)
	}
	batch := e11Batching(cfg, batching)
	gcfg := e11GridConfig(cfg)
	g, err := e10OpenBatched(gcfg, fsync, root, &batch)
	if err != nil {
		return row, err
	}
	defer g.Close()
	if err := g.waitAssembled(30 * time.Second); err != nil {
		return row, err
	}
	flushesBefore := g.counterSum(stats.MetricDDSBatchFlushes)
	opsBefore := g.counterSum(stats.MetricDDSBatchedOps)
	walBatchBefore := g.counterSum(stats.MetricWALBatchAppends)
	fsyncsBefore := g.counterSum(stats.MetricWALFsyncs)
	reps := cfg.Reps
	if reps < 1 {
		reps = 1
	}
	for rep := 0; rep < reps; rep++ {
		setsPS, err := e10WriteWindow(gcfg, g)
		if err != nil {
			return row, err
		}
		if setsPS > row.SetsPS {
			row.SetsPS = setsPS
		}
	}
	row.Flushes = g.counterSum(stats.MetricDDSBatchFlushes) - flushesBefore
	row.BatchedOps = g.counterSum(stats.MetricDDSBatchedOps) - opsBefore
	row.WALBatchAppends = g.counterSum(stats.MetricWALBatchAppends) - walBatchBefore
	row.WALFsyncs = g.counterSum(stats.MetricWALFsyncs) - fsyncsBefore
	if row.Flushes > 0 {
		row.OpsPerFlush = float64(row.BatchedOps) / float64(row.Flushes)
	}
	return row, nil
}

// e11Phases lists the sweep: the unbatched baseline and its fsync=always
// contrast row, then both batched modes across the durability ladder.
var e11Phases = []struct{ batching, fsync string }{
	{"unbatched", "off"},
	{"unbatched", "always"},
	{"linger0", "off"},
	{"linger0", "none"},
	{"linger0", "batch"},
	{"linger0", "always"},
	{"linger1ms", "off"},
	{"linger1ms", "none"},
	{"linger1ms", "always"},
}

// E11WriteBatching runs the full experiment.
func E11WriteBatching(cfg E11Config) (*E11Result, error) {
	if cfg.Nodes < 2 || cfg.Writers < 1 {
		return nil, fmt.Errorf("E11: need >= 2 nodes and >= 1 writer")
	}
	res := &E11Result{}
	noneBy := map[string]float64{}
	alwaysBy := map[string]float64{}
	for _, ph := range e11Phases {
		row, err := e11Phase(cfg, ph.batching, ph.fsync)
		if err != nil {
			return nil, fmt.Errorf("E11 %s/%s: %w", ph.batching, ph.fsync, err)
		}
		if ph.batching == "unbatched" && ph.fsync == "off" {
			res.BaselineSetsPS = row.SetsPS
		}
		if res.BaselineSetsPS > 0 {
			row.SpeedupX = row.SetsPS / res.BaselineSetsPS
		}
		if ph.batching != "unbatched" {
			switch ph.fsync {
			case "none":
				noneBy[ph.batching] = row.SetsPS
			case "always":
				alwaysBy[ph.batching] = row.SetsPS
			}
			if row.SpeedupX > res.BestSpeedupX {
				res.BestSpeedupX = row.SpeedupX
			}
		}
		res.Rows = append(res.Rows, row)
	}
	res.SpeedupWithinTarget = res.BestSpeedupX >= 3
	// The group-commit bill is whatever the best-amortizing batching
	// mode pays: deeper coalescing spreads each sync over more ops.
	first := true
	for batching, none := range noneBy {
		if none <= 0 {
			continue
		}
		pct := 100 * (none - alwaysBy[batching]) / none
		if first || pct < res.AlwaysOverheadPct {
			res.AlwaysOverheadPct = pct
			res.AlwaysOverheadBatching = batching
			first = false
		}
	}
	res.AlwaysWithinTarget = !first && res.AlwaysOverheadPct <= 15
	return res, nil
}

// E11Table renders the result.
func E11Table(res *E11Result, cfg E11Config) *Table {
	t := &Table{
		Title:   "E11: end-to-end write batching — coalesced frames and WAL group commit",
		Columns: []string{"batching", "fsync", "sets/s", "speedup", "flushes", "ops/flush", "wal batches", "fsyncs"},
		Notes: []string{
			fmt.Sprintf("%d writers, %dB payloads, %d nodes x %d shards; coalescer cap %d ops/frame",
				cfg.Writers, cfg.PayloadBytes, cfg.Nodes, cfg.Shards, cfg.MaxOps),
			"baseline is the unbatched no-storage row; the bar is 3x for batched throughput",
			"group commit: under fsync always, one sync per coalesced frame — the bar is 15% vs fsync none",
		},
	}
	for _, r := range res.Rows {
		speedup := "baseline"
		if !(r.Batching == "unbatched" && r.Fsync == "off") {
			speedup = fmt.Sprintf("%.2fx", r.SpeedupX)
		}
		t.Rows = append(t.Rows, []string{
			r.Batching,
			r.Fsync,
			fmt.Sprintf("%.0f", r.SetsPS),
			speedup,
			fmt.Sprintf("%d", r.Flushes),
			fmt.Sprintf("%.1f", r.OpsPerFlush),
			fmt.Sprintf("%d", r.WALBatchAppends),
			fmt.Sprintf("%d", r.WALFsyncs),
		})
	}
	return t
}

// E11Baseline is the persisted benchmark baseline (BENCH_E11.json).
type E11Baseline struct {
	Experiment string    `json:"experiment"`
	Timestamp  string    `json:"timestamp"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Config     E11Config `json:"config"`
	Result     E11Result `json:"result"`
}

// WriteE11JSON persists the result as a JSON baseline at path.
func WriteE11JSON(path string, cfg E11Config, res *E11Result) error {
	b := E11Baseline{
		Experiment: "e11-write-batching",
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Config:     cfg,
		Result:     *res,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
