package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestE10DurabilityShape runs the CI-sized E10 and checks the claims the
// baseline records: every durability mode still serves ordered writes and
// generates WAL work, the WAL restart recovers exclusively through delta
// state transfer while the wiped restart pays a full retransfer, and the
// restarted replica really replayed its log. The throughput acceptance
// bar (batch overhead <= 10%) is checked on the full-sized rainbench run,
// not under CI load.
func TestE10DurabilityShape(t *testing.T) {
	cfg := QuickE10()
	res, err := E10Durability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Overhead) != len(e10Modes) {
		t.Fatalf("overhead shape: %+v", res.Overhead)
	}
	for _, r := range res.Overhead {
		if r.SetsPS <= 0 {
			t.Fatalf("mode %s served no writes: %+v", r.Mode, r)
		}
		switch r.Mode {
		case "off":
			if r.WALAppends != 0 {
				t.Errorf("storage off but WAL appended %d records", r.WALAppends)
			}
		default:
			if r.WALAppends <= 0 {
				t.Errorf("mode %s generated no WAL appends: %+v", r.Mode, r)
			}
		}
		if r.Mode == "always" && r.WALFsyncs <= 0 {
			t.Errorf("fsync always recorded no fsyncs: %+v", r)
		}
	}
	if len(res.Recovery) != 2 {
		t.Fatalf("recovery shape: %+v", res.Recovery)
	}
	wal, full := res.Recovery[0], res.Recovery[1]
	if wal.Path != "wal_delta" || full.Path != "full_retransfer" {
		t.Fatalf("recovery order: %+v", res.Recovery)
	}
	// The durable restart must replay its log and fast-forward by delta —
	// a full snapshot on this path means recovery fell back to the
	// retransfer the WAL exists to avoid.
	if wal.Replayed <= 0 {
		t.Errorf("WAL restart replayed nothing: %+v", wal)
	}
	if wal.Deltas <= 0 || wal.Fulls != 0 {
		t.Errorf("WAL restart transfers: want deltas only, got %+v", wal)
	}
	// The wiped restart has nothing local and must retransfer in full.
	if full.Replayed != 0 {
		t.Errorf("wiped restart replayed %d records from a deleted log", full.Replayed)
	}
	if full.Fulls <= 0 {
		t.Errorf("wiped restart served no full snapshot: %+v", full)
	}
	if wal.Millis <= 0 || full.Millis <= 0 {
		t.Errorf("recovery timings missing: %+v", res.Recovery)
	}
	t.Log("\n" + E10Table(res, cfg).String())
}

// TestWriteE10JSON checks the persisted baseline round-trips.
func TestWriteE10JSON(t *testing.T) {
	res := &E10Result{
		Overhead: []E10Overhead{
			{Mode: "off", SetsPS: 5000},
			{Mode: "batch", SetsPS: 4800, WALAppends: 9600, WALFsyncs: 120, OverheadPct: 4},
		},
		Recovery: []E10Recovery{
			{Path: "wal_delta", Millis: 120, Replayed: 400, Deltas: 2},
			{Path: "full_retransfer", Millis: 480, Fulls: 2},
		},
		SpeedupX:          4,
		BatchWithinTarget: true,
	}
	path := filepath.Join(t.TempDir(), "BENCH_E10.json")
	if err := WriteE10JSON(path, DefaultE10(), res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back E10Baseline
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Experiment != "e10-durability-recovery" || len(back.Result.Overhead) != 2 ||
		len(back.Result.Recovery) != 2 || !back.Result.BatchWithinTarget {
		t.Fatalf("round-trip mismatch: %+v", back)
	}
	if back.Result.Recovery[0].Replayed != 400 || back.Result.SpeedupX != 4 {
		t.Fatalf("round-trip mismatch: %+v", back.Result)
	}
}
