package dds

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/stats"
)

// Cross-shard consistent snapshot.
//
// The same ordered-barrier machinery the resharding handoff uses gives a
// consistent cut across all shards: the coordinator raises a FREEZE
// barrier on every ring (an ordered position per ring past which new map
// writes and transaction prepares are rejected retryably), then CAPTUREs
// each shard at an ordered position where no staged transaction remains,
// and finally RELEASEs the barriers. Because prepares are blocked from
// each ring's freeze position on and every capture waits for the staged
// transactions in front of it to commit or abort, a cross-shard
// transaction is either in every shard's capture or in none — the cut
// cannot split a commit. Plain single-key writes are paused for the whole
// window, so the union of captures is also a causally consistent
// stop-the-world snapshot.
//
// A dead snapshot coordinator cannot wedge the cluster: each ring's
// replicas release the barrier at the coordinator's ordered membership
// removal, the same path that aborts a dead reshard coordinator's
// handoff.

// shardCapture carries one shard's captured map to the coordinator.
type shardCapture struct {
	shard int
	kv    map[string][]byte
}

// leadSnap is the snapshot coordinator's in-flight state.
type leadSnap struct {
	id    uint64
	capCh chan shardCapture
	seen  map[int]bool
}

// snapCaptureRetry paces capture retries while staged transactions drain.
const snapCaptureRetry = 2 * time.Millisecond

// Snapshot captures a consistent cut of the whole sharded keyspace: every
// key of every shard, as of one barrier window during which cross-shard
// transactions are either fully included or fully excluded. It conflicts
// with an in-flight reshard (either side fails retryably; the shard's
// ordered stream decides who was first) and with a concurrent snapshot.
// The barrier window is bounded by ctx; on error the barrier is released
// best-effort and the keyspace is unchanged.
func (s *Sharded) Snapshot(ctx context.Context) (map[string][]byte, error) {
	s.mu.RLock()
	epoch := s.epoch
	ring := s.ring
	s.mu.RUnlock()
	shards := ring.shardIDs()

	snapID := s.NewTxnID()
	lead := &leadSnap{id: snapID, capCh: make(chan shardCapture, len(shards)), seen: make(map[int]bool)}
	s.reshardMu.Lock()
	if s.snapLead != nil {
		s.reshardMu.Unlock()
		return nil, fmt.Errorf("%w: a snapshot is already in progress on this node", ErrSnapshotting)
	}
	s.snapLead = lead
	s.reshardMu.Unlock()
	defer func() {
		s.reshardMu.Lock()
		if s.snapLead == lead {
			s.snapLead = nil
		}
		s.reshardMu.Unlock()
	}()

	// Release is idempotent on the participant side; run it on every exit
	// path once any barrier may be up. A barrier a release cannot reach
	// (ring torn down) is lifted by this node's eventual ordered removal.
	var frozen []int
	release := func() {
		for _, sid := range frozen {
			svc := s.Shard(sid)
			if svc == nil {
				continue
			}
			rctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_ = svc.doOp(rctx, func(reqID uint64) []byte { return encodeSnapRelease(snapID, reqID) })
			cancel()
		}
	}

	// Phase 1: raise the barrier on every ring, in shard order.
	for _, sid := range shards {
		svc := s.Shard(sid)
		if svc == nil {
			release()
			return nil, fmt.Errorf("dds: snapshot: shard %d is gone", sid)
		}
		if err := svc.doOp(ctx, func(reqID uint64) []byte { return encodeSnapFreeze(snapID, reqID) }); err != nil {
			release()
			return nil, fmt.Errorf("dds: snapshot freeze shard %d: %w", sid, err)
		}
		frozen = append(frozen, sid)
	}

	// Phase 2: capture each shard once its staged transactions drained.
	out := make(map[string][]byte)
	for _, sid := range shards {
		svc := s.Shard(sid)
		if svc == nil {
			release()
			return nil, fmt.Errorf("dds: snapshot: shard %d is gone", sid)
		}
		for {
			err := svc.doOp(ctx, func(reqID uint64) []byte { return encodeSnapCapture(snapID, reqID) })
			if err == nil {
				break
			}
			if errors.Is(err, errSnapBusy) {
				select {
				case <-ctx.Done():
					release()
					return nil, fmt.Errorf("dds: snapshot capture shard %d: %w", sid, ctx.Err())
				case <-time.After(snapCaptureRetry):
				}
				continue
			}
			release()
			return nil, fmt.Errorf("dds: snapshot capture shard %d: %w", sid, err)
		}
		select {
		case c := <-lead.capCh:
			// Keys are filtered by current ownership, like Keys(): a
			// source replica between a past handoff's flip and purge may
			// still hold moved keys it no longer owns.
			for k, v := range c.kv {
				if ring.lookup(k) == c.shard {
					out[k] = v
				}
			}
		case <-ctx.Done():
			release()
			return nil, fmt.Errorf("dds: snapshot: waiting for shard %d capture: %w", sid, ctx.Err())
		}
	}

	// Phase 3: lift the barriers.
	release()
	if got := s.Epoch(); got != epoch {
		// Cannot happen while the barrier held (freezes reject reshards),
		// so this only trips if the barrier was lost — treat as a failed
		// snapshot rather than returning a cut of two epochs.
		return nil, fmt.Errorf("%w: routing epoch moved %d -> %d during snapshot", ErrSnapshotting, epoch, got)
	}
	if s.reg != nil {
		s.reg.Counter(stats.MetricSnapshots).Inc()
	}
	return out, nil
}

// wantsSnapCapture reports whether this node coordinates the snapshot and
// still needs the shard's capture; replicas elsewhere skip building it.
func (s *Sharded) wantsSnapCapture(id uint64) bool {
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()
	return s.snapLead != nil && s.snapLead.id == id
}

// snapCaptured delivers one shard's capture to the waiting coordinator.
func (s *Sharded) snapCaptured(shard int, id uint64, kv map[string][]byte) {
	s.reshardMu.Lock()
	lead := s.snapLead
	want := lead != nil && lead.id == id && !lead.seen[shard]
	if want {
		lead.seen[shard] = true
	}
	s.reshardMu.Unlock()
	if want {
		lead.capCh <- shardCapture{shard: shard, kv: kv}
	}
}
