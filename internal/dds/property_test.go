package dds

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
)

// TestRandomOpsConverge drives random Set/Delete/Lock/Unlock traffic from
// all replicas concurrently, then checks that every replica's key-value
// state and lock table are identical — the replicated-state-machine
// property under contention.
func TestRandomOpsConverge(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			dc := startDDS(t, 3)
			ctx := context.Background()
			done := make(chan struct{})
			for _, id := range dc.tc.IDs {
				id := id
				go func() {
					rng := rand.New(rand.NewSource(seed + int64(id)))
					defer func() { done <- struct{}{} }()
					held := map[string]bool{}
					for i := 0; i < 30; i++ {
						key := fmt.Sprintf("k%d", rng.Intn(5))
						lock := fmt.Sprintf("l%d", rng.Intn(3))
						switch rng.Intn(4) {
						case 0:
							_ = dc.svcs[id].Set(ctx, key, []byte(fmt.Sprintf("%v-%d", id, i)))
						case 1:
							_ = dc.svcs[id].Delete(ctx, key)
						case 2:
							if !held[lock] {
								lctx, cancel := context.WithTimeout(ctx, 2*time.Second)
								if dc.svcs[id].Lock(lctx, lock) == nil {
									held[lock] = true
								}
								cancel()
							}
						default:
							if held[lock] {
								if dc.svcs[id].Unlock(ctx, lock) == nil {
									held[lock] = false
								}
							}
						}
					}
					for lock := range held {
						if held[lock] {
							_ = dc.svcs[id].Unlock(ctx, lock)
						}
					}
				}()
			}
			for range dc.tc.IDs {
				<-done
			}
			// Let the last writes circulate, then compare replicas.
			time.Sleep(300 * time.Millisecond)
			ref := dc.svcs[1]
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				if replicasEqual(dc) {
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			for _, id := range dc.tc.IDs {
				t.Logf("replica %v: keys=%v", id, dc.svcs[id].Keys())
			}
			_ = ref
			t.Fatal("replicas did not converge after random ops")
		})
	}
}

func replicasEqual(dc *ddsCluster) bool {
	ref := dc.svcs[dc.tc.IDs[0]]
	refKeys := map[string]string{}
	for _, k := range ref.Keys() {
		v, _ := ref.Get(k)
		refKeys[k] = string(v)
	}
	for _, id := range dc.tc.IDs[1:] {
		svc := dc.svcs[id]
		keys := svc.Keys()
		if len(keys) != len(refKeys) {
			return false
		}
		for _, k := range keys {
			v, _ := svc.Get(k)
			if refKeys[k] != string(v) {
				return false
			}
		}
		// Lock holders must agree too.
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("l%d", i)
			h1, ok1 := ref.Holder(name)
			h2, ok2 := svc.Holder(name)
			if ok1 != ok2 || h1 != h2 {
				return false
			}
		}
	}
	return true
}

// TestConvergenceAcrossPartitionChurn mixes partitions into the random
// traffic: after healing, all replicas converge to one state.
func TestConvergenceAcrossPartitionChurn(t *testing.T) {
	dc := startDDS(t, 3)
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		dc.tc.Net.Partition(
			[]simnet.Addr{core.Addr(1), core.Addr(2)},
			[]simnet.Addr{core.Addr(3)})
		// Writes on both sides of the split.
		sctx, cancel := context.WithTimeout(ctx, 3*time.Second)
		_ = dc.svcs[1].Set(sctx, "shared", []byte(fmt.Sprintf("majority-%d", round)))
		_ = dc.svcs[3].Set(sctx, "lonely", []byte(fmt.Sprintf("minority-%d", round)))
		cancel()
		dc.tc.Net.Heal()
		if err := dc.tc.WaitAssembled(15 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if replicasEqual(dc) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, id := range dc.tc.IDs {
		t.Logf("replica %v keys %v", id, dc.svcs[id].Keys())
	}
	t.Fatal("replicas diverged after partition churn")
}
