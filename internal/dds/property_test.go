package dds

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rcerr"
	"repro/internal/simnet"
)

// TestRandomOpsConverge drives random Set/Delete/Lock/Unlock traffic from
// all replicas concurrently, then checks that every replica's key-value
// state and lock table are identical — the replicated-state-machine
// property under contention.
func TestRandomOpsConverge(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			dc := startDDS(t, 3)
			ctx := context.Background()
			done := make(chan struct{})
			for _, id := range dc.tc.IDs {
				id := id
				go func() {
					rng := rand.New(rand.NewSource(seed + int64(id)))
					defer func() { done <- struct{}{} }()
					held := map[string]bool{}
					for i := 0; i < 30; i++ {
						key := fmt.Sprintf("k%d", rng.Intn(5))
						lock := fmt.Sprintf("l%d", rng.Intn(3))
						switch rng.Intn(4) {
						case 0:
							_ = dc.svcs[id].Set(ctx, key, []byte(fmt.Sprintf("%v-%d", id, i)))
						case 1:
							_ = dc.svcs[id].Delete(ctx, key)
						case 2:
							if !held[lock] {
								lctx, cancel := context.WithTimeout(ctx, 2*time.Second)
								if dc.svcs[id].Lock(lctx, lock) == nil {
									held[lock] = true
								}
								cancel()
							}
						default:
							if held[lock] {
								if dc.svcs[id].Unlock(ctx, lock) == nil {
									held[lock] = false
								}
							}
						}
					}
					for lock := range held {
						if held[lock] {
							_ = dc.svcs[id].Unlock(ctx, lock)
						}
					}
				}()
			}
			for range dc.tc.IDs {
				<-done
			}
			// Let the last writes circulate, then compare replicas.
			time.Sleep(300 * time.Millisecond)
			ref := dc.svcs[1]
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				if replicasEqual(dc) {
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			for _, id := range dc.tc.IDs {
				t.Logf("replica %v: keys=%v", id, dc.svcs[id].Keys())
			}
			_ = ref
			t.Fatal("replicas did not converge after random ops")
		})
	}
}

func replicasEqual(dc *ddsCluster) bool {
	ref := dc.svcs[dc.tc.IDs[0]]
	refKeys := map[string]string{}
	for _, k := range ref.Keys() {
		v, _ := ref.Get(k)
		refKeys[k] = string(v)
	}
	for _, id := range dc.tc.IDs[1:] {
		svc := dc.svcs[id]
		keys := svc.Keys()
		if len(keys) != len(refKeys) {
			return false
		}
		for _, k := range keys {
			v, _ := svc.Get(k)
			if refKeys[k] != string(v) {
				return false
			}
		}
		// Lock holders must agree too.
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("l%d", i)
			h1, ok1 := ref.Holder(name)
			h2, ok2 := svc.Holder(name)
			if ok1 != ok2 || h1 != h2 {
				return false
			}
		}
	}
	return true
}

// TestBatchedWritesFreshAcrossGrow is the write-batching companion to
// TestBoundedStalenessAcrossGrow: with the coalescer forced into its most
// aggressive shape (1ms linger, so concurrent writes really share
// multi-op frames), the write-path guarantees must survive a live
// 2 -> 3 -> 4 ring grow under load:
//
//   - session read-your-writes: every session read through ANOTHER
//     node's router observes the session's latest completed Set, exactly;
//   - the degenerate staleness bound d=0 (fence every read) never
//     returns a value older than the newest write completed before the
//     read began.
//
// The run only counts if the coalescer actually coalesced: at the end
// more ops must have ridden batch frames than frames were flushed.
func TestBatchedWritesFreshAcrossGrow(t *testing.T) {
	sc := startSharded(t, 2, 2)
	for _, id := range sc.g.IDs {
		sc.svcs[id].SetWriteBatching(BatchConfig{Linger: time.Millisecond})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	var mu sync.Mutex
	completed := make(map[int]time.Time) // writer 0's seq -> completion time
	floorAt := func(t0 time.Time) int {
		mu.Lock()
		defer mu.Unlock()
		best := 0
		for seq, at := range completed {
			if !at.After(t0) && seq > best {
				best = seq
			}
		}
		return best
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan string, 8)
	parse := func(v []byte, ok bool) int {
		if !ok {
			return 0
		}
		n, _ := strconv.Atoi(string(v))
		return n
	}

	// Six concurrent session writers on node 1's router: enough traffic
	// per shard that the 1ms linger windows really merge writes. Each
	// write is followed by a session read through node 2 — RYW, no slop.
	const writers = 6
	counts := make([]int, writers)
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := sc.svcs[1].NewSession()
			key := fmt.Sprintf("bw-%d", w)
			for seq := 1; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := sess.Set(ctx, key, []byte(strconv.Itoa(seq))); err != nil {
					if errors.Is(err, rcerr.ErrRetryable) {
						seq--
						time.Sleep(2 * time.Millisecond)
						continue
					}
					fail <- fmt.Sprintf("writer %d: %v", w, err)
					return
				}
				mu.Lock()
				if w == 0 {
					completed[seq] = time.Now()
				}
				counts[w] = seq
				mu.Unlock()
				v, ok, err := sc.svcs[2].Get(ctx, key, WithSession(sess))
				if err != nil {
					if errors.Is(err, rcerr.ErrRetryable) || errors.Is(err, context.Canceled) {
						continue
					}
					fail <- fmt.Sprintf("session reader %d: %v", w, err)
					return
				}
				if got := parse(v, ok); got < seq {
					fail <- fmt.Sprintf("batched session read on writer %d returned seq %d after the session wrote seq %d", w, got, seq)
					return
				}
			}
		}()
	}

	// Fenced reader on node 2 against writer 0's key: d=0 means the read
	// must reflect every write completed before it began, batches or not.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			start := time.Now()
			v, ok, err := sc.svcs[2].Get(ctx, "bw-0", WithMaxStaleness(0))
			if err != nil {
				if errors.Is(err, rcerr.ErrRetryable) || errors.Is(err, context.Canceled) {
					continue
				}
				fail <- fmt.Sprintf("fenced reader: %v", err)
				return
			}
			if got, want := parse(v, ok), floorAt(start); got < want {
				fail <- fmt.Sprintf("fenced read returned seq %d, but seq %d had completed before the read began", got, want)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	checkFail := func() {
		select {
		case msg := <-fail:
			close(stop)
			wg.Wait()
			t.Fatal(msg)
		default:
		}
	}

	time.Sleep(400 * time.Millisecond)
	checkFail()
	growAll(t, sc, 60*time.Second)
	time.Sleep(400 * time.Millisecond)
	checkFail()
	growAll(t, sc, 60*time.Second)
	time.Sleep(400 * time.Millisecond)

	close(stop)
	wg.Wait()
	checkFail()

	mu.Lock()
	for w, n := range counts {
		if n < 20 {
			mu.Unlock()
			t.Fatalf("writer %d completed only %d writes across the grows; load too thin", w, n)
		}
	}
	mu.Unlock()

	// The counters are per-node registries (shared across that node's
	// shards), so sample one shard per node. Strictly more ops than
	// flushes means at least some frames carried multiple writes.
	var flushes, ops int64
	for _, id := range sc.g.IDs {
		b := sc.svcs[id].Shard(0).batcher
		flushes += b.cFlushes.Load()
		ops += b.cOps.Load()
	}
	if flushes == 0 || ops <= flushes {
		t.Fatalf("coalescer never formed a multi-op frame (flushes=%d ops=%d); the batched property was not exercised", flushes, ops)
	}
}

// TestConvergenceAcrossPartitionChurn mixes partitions into the random
// traffic: after healing, all replicas converge to one state.
func TestConvergenceAcrossPartitionChurn(t *testing.T) {
	dc := startDDS(t, 3)
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		dc.tc.Net.Partition(
			[]simnet.Addr{core.Addr(1), core.Addr(2)},
			[]simnet.Addr{core.Addr(3)})
		// Writes on both sides of the split.
		sctx, cancel := context.WithTimeout(ctx, 3*time.Second)
		_ = dc.svcs[1].Set(sctx, "shared", []byte(fmt.Sprintf("majority-%d", round)))
		_ = dc.svcs[3].Set(sctx, "lonely", []byte(fmt.Sprintf("minority-%d", round)))
		cancel()
		dc.tc.Net.Heal()
		if err := dc.tc.WaitAssembled(15 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if replicasEqual(dc) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, id := range dc.tc.IDs {
		t.Logf("replica %v keys %v", id, dc.svcs[id].Keys())
	}
	t.Fatal("replicas diverged after partition churn")
}
