package dds

import (
	"context"
	"fmt"
	"time"

	"repro/internal/stats"
)

// Cross-shard transaction primitives (2PC, coordinator side). The
// higher-level transaction API — lock acquisition in global order, epoch
// pinning, the prepare/commit drive — lives in internal/txn; these
// methods are the per-ring ordered legs it stands on.
//
// Each primitive is one multicast on the participant ring's ordered
// stream and returns once the op has applied on the local replica. A
// prepare's rejection (ErrResharding for a key mid-handoff,
// ErrSnapshotting under a snapshot barrier) is decided at the op's
// ordered position, identically on every replica of the ring.

// NewTxnID mints a transaction id unique across the cluster: the local
// node id in the high bits, a local counter in the low bits. The counter
// seeds from the wall clock so a restarted coordinator cannot mint an id
// an earlier incarnation used — a stale replicated commit record under a
// reused id would wrongly commit the new transaction.
func (s *Sharded) NewTxnID() uint64 {
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()
	if s.nextTxn == 0 {
		s.nextTxn = uint64(time.Now().UnixNano()) & (1<<32 - 1)
	}
	s.nextTxn++
	return uint64(s.id)<<32 | (s.nextTxn & (1<<32 - 1))
}

// TxnPrepare stages a transaction's writes for one shard on every replica
// of its ring, at one ordered position. epoch is the routing epoch the
// coordinator pinned; it rides in the stage so diagnostics can attribute
// an abort to an epoch change. decideRing names the ring carrying the
// transaction's replicated commit record (-1 for the legacy
// presumed-abort protocol): it rides in the stage so a replica orphaned
// by the coordinator's removal knows where to look for the verdict.
func (s *Sharded) TxnPrepare(ctx context.Context, shard int, id uint64, epoch uint64, decideRing int, writes map[string][]byte, dels []string) error {
	svc := s.Shard(shard)
	if svc == nil {
		return fmt.Errorf("dds: no shard %d for txn %d", shard, id)
	}
	return svc.doOp(ctx, func(reqID uint64) []byte {
		return encodeTxnPrepare(id, epoch, decideRing, writes, dels, reqID)
	})
}

// TxnDecide orders the transaction's replicated commit record on the
// decide ring. Once this returns, the commit is durable against
// coordinator failure: any replica holding an orphaned stage resolves it
// toward commit from the record.
func (s *Sharded) TxnDecide(ctx context.Context, ring int, id uint64) error {
	svc := s.Shard(ring)
	if svc == nil {
		return fmt.Errorf("dds: no decide ring %d for txn %d", ring, id)
	}
	return svc.doOp(ctx, func(reqID uint64) []byte { return encodeTxnDecide(id, s.id, reqID) })
}

// TxnCommit applies the staged transaction on one shard at an ordered
// position of its ring.
func (s *Sharded) TxnCommit(ctx context.Context, shard int, id uint64) error {
	svc := s.Shard(shard)
	if svc == nil {
		return fmt.Errorf("dds: no shard %d for txn %d", shard, id)
	}
	err := svc.doOp(ctx, func(reqID uint64) []byte { return encodeTxnCommit(id, reqID) })
	if err == nil && s.reg != nil {
		s.reg.Counter(stats.MetricTxnCommits).Inc()
	}
	return err
}

// TxnAbort drops the staged transaction on one shard (idempotent; a shard
// that never staged it applies a no-op).
func (s *Sharded) TxnAbort(ctx context.Context, shard int, id uint64) error {
	svc := s.Shard(shard)
	if svc == nil {
		return fmt.Errorf("dds: no shard %d for txn %d", shard, id)
	}
	return svc.doOp(ctx, func(reqID uint64) []byte { return encodeTxnAbort(id, reqID) })
}

// PendingTxns sums the staged (prepared, unresolved) transactions across
// this node's shard replicas — diagnostics and test assertions.
func (s *Sharded) PendingTxns() int {
	s.mu.RLock()
	svcs := make([]*Service, 0, len(s.shards))
	for _, svc := range s.shards {
		svcs = append(svcs, svc)
	}
	s.mu.RUnlock()
	total := 0
	for _, svc := range svcs {
		total += svc.PendingTxns()
	}
	return total
}
