package dds

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rcerr"
)

// TestSessionReadYourWrites writes through a session bound to node 1's
// router and reads with WithSession through EVERY node's router: each
// read must observe the session's latest write immediately, with no
// convergence sleep — the read-your-writes guarantee the eventual mode
// deliberately does not give.
func TestSessionReadYourWrites(t *testing.T) {
	sc := startSharded(t, 3, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sess := sc.svcs[1].NewSession()
	for i := 0; i < 40; i++ {
		key := fmt.Sprintf("ryw-%d", i%8) // overwrites exercise latest-write
		want := fmt.Sprintf("v%d", i)
		if err := sess.Set(ctx, key, []byte(want)); err != nil {
			t.Fatalf("session Set %d: %v", i, err)
		}
		for _, id := range sc.g.IDs {
			v, ok, err := sc.svcs[id].Get(ctx, key, WithSession(sess))
			if err != nil {
				t.Fatalf("session Get %q on node %v: %v", key, id, err)
			}
			if !ok || string(v) != want {
				t.Fatalf("session Get %q on node %v = %q,%v; want %q (write %d not observed)",
					key, id, v, ok, want, i)
			}
		}
	}
	// Deletes are writes too: a session read after Delete must miss.
	if err := sess.Delete(ctx, "ryw-0"); err != nil {
		t.Fatal(err)
	}
	for _, id := range sc.g.IDs {
		if _, ok, err := sc.svcs[id].Get(ctx, "ryw-0", WithSession(sess)); err != nil || ok {
			t.Fatalf("node %v still sees deleted key via session (ok=%v err=%v)", id, ok, err)
		}
	}
}

// TestSessionReadWithoutSession checks the option misuse error.
func TestSessionReadWithoutSession(t *testing.T) {
	sc := startSharded(t, 2, 1)
	if _, _, err := sc.svcs[1].Get(context.Background(), "k", WithSession(nil)); err == nil {
		t.Fatal("WithSession(nil) read succeeded")
	}
}

// TestLinearizableReadObservesCompletedWrites interleaves writes on node
// 1 with linearizable reads on node 2: every read must return a value at
// least as new as the last write that COMPLETED before the read began —
// the fence orders behind it.
func TestLinearizableReadObservesCompletedWrites(t *testing.T) {
	sc := startSharded(t, 3, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	const key = "lin-key"
	for i := 1; i <= 25; i++ {
		if err := sc.svcs[1].Set(ctx, key, []byte(strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
		v, ok, err := sc.svcs[2].Get(ctx, key, WithLinearizable())
		if err != nil {
			t.Fatalf("linearizable Get after write %d: %v", i, err)
		}
		got, _ := strconv.Atoi(string(v))
		if !ok || got < i {
			t.Fatalf("linearizable Get after write %d = %q,%v; want >= %d", i, v, ok, i)
		}
	}
}

// TestReadLeaseAmortizesFences checks the lease actually skips fences
// (the fence counter stops advancing inside the window) and that a
// routing-epoch change invalidates it.
func TestReadLeaseAmortizesFences(t *testing.T) {
	sc := startSharded(t, 2, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const key = "lease-key"
	if err := sc.svcs[1].Set(ctx, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	r := sc.svcs[2]
	shard := r.ShardFor(key)
	fences := func() int64 { return r.Shard(shard).cReadFences.Load() }

	// First leased read fences; the next ones inside the window must not.
	before := fences()
	for i := 0; i < 10; i++ {
		if _, ok, err := r.Get(ctx, key, WithReadLease(10*time.Second)); err != nil || !ok {
			t.Fatalf("leased read %d: ok=%v err=%v", i, ok, err)
		}
	}
	if got := fences() - before; got != 1 {
		t.Fatalf("10 leased reads issued %d fences, want exactly 1", got)
	}

	// An elastic grow advances the routing epoch: the lease must die with
	// it, so the next leased read fences again (on the key's new shard).
	growAll(t, sc, 60*time.Second)
	shard2 := r.ShardFor(key)
	before2 := r.Shard(shard2).cReadFences.Load()
	if _, _, err := r.Get(ctx, key, WithReadLease(10*time.Second)); err != nil {
		t.Fatalf("leased read after grow: %v", err)
	}
	if got := r.Shard(shard2).cReadFences.Load() - before2; got != 1 {
		t.Fatalf("first leased read after epoch flip issued %d fences, want 1 (stale lease honored?)", got)
	}
}

// TestBoundedStalenessAcrossGrow is the flagship read-path property test:
// a 2-ring cluster grows to 3 and then 4 rings while a writer bumps a
// counter key and readers check, across every handoff:
//
//   - bounded staleness: a read with WithMaxStaleness(d) never returns a
//     value older than the newest write that completed d (plus scheduling
//     slop) before the read began;
//   - the degenerate bound d=0 (fence every read) never returns a value
//     older than the newest write completed before the read began;
//   - session mode always observes the session's own prior Set, with no
//     staleness allowance at all.
//
// Writers and readers both tolerate retryable rejections (a write racing
// a frozen slice, a read waiting on a shard that shut down for the
// handoff) — that is the documented contract — but never a stale value.
func TestBoundedStalenessAcrossGrow(t *testing.T) {
	sc := startSharded(t, 2, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const key = "bs-counter"
	const bound = 300 * time.Millisecond
	// Slop covers the gap between a write's ordered position and the
	// writer recording its completion, plus scheduler noise on a loaded
	// single-core host.
	const slop = 500 * time.Millisecond

	var mu sync.Mutex
	completed := make(map[int]time.Time) // seq -> completion time at writer
	var lastSeq int

	// floorAt returns the newest seq whose write completed at or before t.
	floorAt := func(t0 time.Time) int {
		mu.Lock()
		defer mu.Unlock()
		best := 0
		for seq, at := range completed {
			if !at.After(t0) && seq > best {
				best = seq
			}
		}
		return best
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan string, 8)

	// Writer: node 1 bumps the counter, retrying retryable rejections.
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := 1
		for {
			select {
			case <-stop:
				return
			default:
			}
			err := sc.svcs[1].Set(ctx, key, []byte(strconv.Itoa(seq)))
			if err != nil {
				if errors.Is(err, rcerr.ErrRetryable) {
					time.Sleep(2 * time.Millisecond)
					continue
				}
				fail <- fmt.Sprintf("writer: %v", err)
				return
			}
			mu.Lock()
			completed[seq] = time.Now()
			lastSeq = seq
			mu.Unlock()
			seq++
			time.Sleep(time.Millisecond)
		}
	}()

	// parse maps a read result to a seq (absent key = 0, pre-first-write).
	parse := func(v []byte, ok bool) int {
		if !ok {
			return 0
		}
		n, _ := strconv.Atoi(string(v))
		return n
	}

	// Bounded reader on node 2 with a real bound.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			start := time.Now()
			v, ok, err := sc.svcs[2].Get(ctx, key, WithMaxStaleness(bound))
			if err != nil {
				if errors.Is(err, rcerr.ErrRetryable) || errors.Is(err, context.Canceled) {
					continue
				}
				fail <- fmt.Sprintf("bounded reader: %v", err)
				return
			}
			if got, want := parse(v, ok), floorAt(start.Add(-bound-slop)); got < want {
				fail <- fmt.Sprintf("bounded read returned seq %d, but seq %d completed more than %v before the read", got, want, bound+slop)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Degenerate-bound reader on node 2: d=0 fences every read, so the
	// result must reflect every write completed before the read began.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			start := time.Now()
			v, ok, err := sc.svcs[2].Get(ctx, key, WithMaxStaleness(0))
			if err != nil {
				if errors.Is(err, rcerr.ErrRetryable) || errors.Is(err, context.Canceled) {
					continue
				}
				fail <- fmt.Sprintf("fencing reader: %v", err)
				return
			}
			if got, want := parse(v, ok), floorAt(start); got < want {
				fail <- fmt.Sprintf("fenced read returned seq %d, but seq %d had completed before the read began", got, want)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Session writer/reader pair across the grow: writes on node 1's
	// router, session reads on node 2's. Every read must see the
	// session's own latest completed write — exactly, no slop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := sc.svcs[1].NewSession()
		last := 0
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := sess.Set(ctx, "sess-counter", []byte(strconv.Itoa(i))); err != nil {
				if errors.Is(err, rcerr.ErrRetryable) {
					time.Sleep(2 * time.Millisecond)
					continue
				}
				fail <- fmt.Sprintf("session writer: %v", err)
				return
			}
			last = i
			v, ok, err := sc.svcs[2].Get(ctx, "sess-counter", WithSession(sess))
			if err != nil {
				if errors.Is(err, rcerr.ErrRetryable) || errors.Is(err, context.Canceled) {
					continue
				}
				fail <- fmt.Sprintf("session reader: %v", err)
				return
			}
			if got := parse(v, ok); got < last {
				fail <- fmt.Sprintf("session read returned seq %d after the session wrote seq %d", got, last)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	checkFail := func() {
		select {
		case msg := <-fail:
			close(stop)
			wg.Wait()
			t.Fatal(msg)
		default:
		}
	}

	// Let traffic settle, then grow 2 -> 3 -> 4 under load.
	time.Sleep(500 * time.Millisecond)
	checkFail()
	growAll(t, sc, 60*time.Second)
	time.Sleep(500 * time.Millisecond)
	checkFail()
	growAll(t, sc, 60*time.Second)
	time.Sleep(500 * time.Millisecond)

	close(stop)
	wg.Wait()
	checkFail()

	mu.Lock()
	n := lastSeq
	mu.Unlock()
	if n < 50 {
		t.Fatalf("writer completed only %d writes across the grows; load too thin for the property to mean anything", n)
	}
}

// TestReadAllocBudgetEventual pins the eventual read path's allocation
// budget: a zero-option Sharded.Get must cost at most the returned value
// copy (1 alloc). The assertion is < 2 rather than == 1 because
// AllocsPerRun measures the whole process — the token loop allocates in
// the background — which many runs amortize below one.
func TestReadAllocBudgetEventual(t *testing.T) {
	sc := startSharded(t, 1, 1)
	ctx := context.Background()
	const key = "alloc-key"
	if err := sc.svcs[1].Set(ctx, key, []byte("steady-state-value")); err != nil {
		t.Fatal(err)
	}
	r := sc.svcs[1]
	allocs := testing.AllocsPerRun(10000, func() {
		v, ok, err := r.Get(ctx, key)
		if err != nil || !ok || len(v) == 0 {
			t.Fatal("read failed mid-measurement")
		}
	})
	if allocs >= 2 {
		t.Fatalf("eventual Get = %.2f allocs/op, budget is 1 (+ background noise < 1)", allocs)
	}
	// GetLocal shares the same path and budget.
	allocs = testing.AllocsPerRun(10000, func() {
		if v, ok := r.GetLocal(key); !ok || len(v) == 0 {
			t.Fatal("GetLocal failed mid-measurement")
		}
	})
	if allocs >= 2 {
		t.Fatalf("GetLocal = %.2f allocs/op, budget is 1 (+ background noise < 1)", allocs)
	}
}

// TestFenceAvailableDuringHandoff checks a linearizable read of a key in
// a FROZEN slice still completes: the fence op is exempt from the
// freeze/retired rejections, so reads stay available mid-handoff even
// though writes are rejected.
func TestFenceAvailableDuringHandoff(t *testing.T) {
	sc := startSharded(t, 2, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < 32; i++ {
		if err := sc.svcs[1].Set(ctx, fmt.Sprintf("fz-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Linearizable reads hammer every key while the grow's freeze and
	// flip sweep through; none may fail with a non-retryable error.
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		for i := 0; ; i++ {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			key := fmt.Sprintf("fz-%d", i%32)
			_, ok, err := sc.svcs[2].Get(ctx, key, WithLinearizable())
			if err != nil && !errors.Is(err, rcerr.ErrRetryable) {
				done <- fmt.Errorf("linearizable Get %q: %v", key, err)
				return
			}
			if err == nil && !ok {
				done <- fmt.Errorf("linearizable Get %q lost the key", key)
				return
			}
		}
	}()
	growAll(t, sc, 60*time.Second)
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// BenchmarkLocalRead measures the per-mode local read cost on a live
// single-node grid — the CI perf smoke runs it with -benchtime=100x.
func BenchmarkLocalRead(b *testing.B) {
	g, err := core.NewTestGrid(core.GridOptions{N: 1, Rings: 1, DeferStart: true})
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	svc, err := AttachSharded(g.Runtimes[1])
	if err != nil {
		b.Fatal(err)
	}
	g.StartAll()
	if err := g.WaitAssembled(20 * time.Second); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	const key = "bench-key"
	if err := svc.Set(ctx, key, []byte("bench-value")); err != nil {
		b.Fatal(err)
	}
	b.Run("eventual", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok, err := svc.Get(ctx, key); err != nil || !ok {
				b.Fatal("read failed")
			}
		}
	})
	b.Run("session", func(b *testing.B) {
		sess := svc.NewSession()
		if err := sess.Set(ctx, key, []byte("bench-value")); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok, err := svc.Get(ctx, key, WithSession(sess)); err != nil || !ok {
				b.Fatal("read failed")
			}
		}
	})
	b.Run("lease", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok, err := svc.Get(ctx, key, WithReadLease(time.Second)); err != nil || !ok {
				b.Fatal("read failed")
			}
		}
	})
}
