package dds

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
)

// Sharded routes the distributed data service across the rings of a
// sharded multi-ring runtime. Keys and lock names are consistent-hashed
// onto one Service replica per ring, so each ring totally orders only its
// slice of the keyspace: per-key (and per-lock) ordering is preserved
// while aggregate throughput scales with the ring count. Snapshot/state
// transfer stays a per-shard concern — each underlying Service syncs its
// own ring exactly as in the single-ring deployment.
//
// Cross-shard atomicity is intentionally NOT provided: two keys on
// different shards are ordered independently, the same trade every
// hash-sharded store makes.
type Sharded struct {
	shards []*Service
	ring   *hashRing
}

// NewSharded builds the router over one Service replica per ring, in ring
// order. The shard list is fixed for the lifetime of the router; every
// node of the cluster must construct it with the same shard count.
func NewSharded(shards []*Service) (*Sharded, error) {
	if len(shards) == 0 {
		return nil, errors.New("dds: sharded service needs at least one shard")
	}
	for i, s := range shards {
		if s == nil {
			return nil, fmt.Errorf("dds: shard %d is nil", i)
		}
	}
	return &Sharded{
		shards: append([]*Service(nil), shards...),
		ring:   newHashRing(len(shards), defaultReplicas),
	}, nil
}

// AttachSharded builds one Service replica per ring of the runtime and
// routes across them. Call before Runtime.Start so every replica observes
// its ring's ordered stream from the first event.
func AttachSharded(rt *core.Runtime) (*Sharded, error) {
	var shards []*Service
	for _, n := range rt.Nodes() {
		shards = append(shards, New(n))
	}
	return NewSharded(shards)
}

// NumShards returns the shard (ring) count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardFor returns the shard index owning the key or lock name.
func (s *Sharded) ShardFor(key string) int { return s.ring.lookup(key) }

// Shard returns the underlying per-ring replica (nil if out of range).
func (s *Sharded) Shard(i int) *Service {
	if i < 0 || i >= len(s.shards) {
		return nil
	}
	return s.shards[i]
}

func (s *Sharded) forKey(key string) *Service { return s.shards[s.ring.lookup(key)] }

// --- locks ---

// Lock acquires the named lock on its owning shard, blocking until granted
// or ctx is done.
func (s *Sharded) Lock(ctx context.Context, name string) error {
	return s.forKey(name).Lock(ctx, name)
}

// Unlock releases the named lock held by this node.
func (s *Sharded) Unlock(name string) error { return s.forKey(name).Unlock(name) }

// Holder reports the current owner of the named lock.
func (s *Sharded) Holder(name string) (core.NodeID, bool) { return s.forKey(name).Holder(name) }

// --- replicated map ---

// Set writes key=val on the key's shard and returns once the write has
// applied locally (read-your-writes).
func (s *Sharded) Set(ctx context.Context, key string, val []byte) error {
	return s.forKey(key).Set(ctx, key, val)
}

// Get reads a key from its shard's local replica.
func (s *Sharded) Get(key string) ([]byte, bool) { return s.forKey(key).Get(key) }

// Delete removes a key on its shard.
func (s *Sharded) Delete(ctx context.Context, key string) error {
	return s.forKey(key).Delete(ctx, key)
}

// Keys lists the union of all shards' keys, sorted.
func (s *Sharded) Keys() []string {
	var out []string
	for _, sh := range s.shards {
		out = append(out, sh.Keys()...)
	}
	sort.Strings(out)
	return out
}

// Watch registers a callback for key changes on every shard. Callbacks for
// one shard arrive in that shard's apply order; there is no cross-shard
// order, matching the sharded consistency model.
func (s *Sharded) Watch(fn func(key string, val []byte, deleted bool)) {
	for _, sh := range s.shards {
		sh.Watch(fn)
	}
}

// String summarizes the router (diagnostics).
func (s *Sharded) String() string {
	return fmt.Sprintf("dds.Sharded{shards=%d}", len(s.shards))
}
