package dds

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/stats"
)

// Sharded routes the distributed data service across the rings of a
// sharded multi-ring runtime. Keys and lock names are consistent-hashed
// onto one Service replica per ring, so each ring totally orders only its
// slice of the keyspace: per-key (and per-lock) ordering is preserved
// while aggregate throughput scales with the ring count.
//
// The shard set is elastic. The router consults the runtime's
// epoch-versioned routing table on every route: a grow or shrink
// (Runtime.AddRing / Runtime.RemoveRing) moves exactly the keyspace
// slices the consistent-hash diff names, through an ordered handoff
// (resharding.go) that freezes the moving slices, snapshots them out of
// the source shards, installs them into the targets via their rings'
// ordered streams, and flips every node to the new epoch at an ordered
// position — so per-key ordering survives the move. During the handoff
// window, writes into a moving slice fail with the retryable
// ErrResharding; every other key is routed and served without pause.
//
// Cross-shard atomicity is intentionally NOT provided: two keys on
// different shards are ordered independently, the same trade every
// hash-sharded store makes.
type Sharded struct {
	rt  *core.Runtime   // nil for a static (fixed shard list) router
	reg *stats.Registry // runtime registry for handoff metrics
	id  core.NodeID     // local node identity

	mu       sync.RWMutex
	epoch    uint64
	ring     *hashRing        // current epoch's key -> ring id map
	shards   map[int]*Service // by ring id; includes a mid-handoff target
	watchers []func(key string, val []byte, deleted bool)
	applyObs []func(ApplyEvent)
	// Write-coalescer settings, replayed onto replicas attached by later
	// grows so every shard batches the same way.
	batchCfg *BatchConfig
	batchObs func(ops int)

	// Handoff observation state (participant side) and coordination
	// state (coordinator side); see resharding.go.
	reshardMu sync.Mutex
	obsID     uint64       // reshard id currently being observed
	obsFlips  map[int]bool // targets flipped for obsID
	lead      *leadReshard
	nextRID   uint64
	// Cross-shard transaction ids and the in-flight snapshot coordinator
	// state (see txn_api.go and snapshot.go).
	nextTxn  uint64
	snapLead *leadSnap

	// Per-shard read leases for linearizable reads (see read.go).
	leaseMu sync.Mutex
	leases  map[int]readLease
}

// NewSharded builds a static router over one Service replica per ring, in
// ring order (ring ids 0..len-1). The shard list is fixed for the
// lifetime of the router; every node of the cluster must construct it
// with the same shard count. Use AttachSharded for an elastic router.
func NewSharded(shards []*Service) (*Sharded, error) {
	if len(shards) == 0 {
		return nil, errors.New("dds: sharded service needs at least one shard")
	}
	for i, s := range shards {
		if s == nil {
			return nil, fmt.Errorf("dds: shard %d is nil", i)
		}
	}
	s := &Sharded{
		epoch:  1,
		ring:   newHashRing(len(shards), defaultReplicas),
		shards: make(map[int]*Service, len(shards)),
	}
	for i, svc := range shards {
		s.shards[i] = svc
	}
	return s, nil
}

// AttachSharded builds one Service replica per ring of the runtime,
// routes across them by the runtime's routing table, and registers as the
// runtime's Resharder so AddRing/RemoveRing migrate the keyspace through
// the ordered handoff. Call before Runtime.Start so every replica
// observes its ring's ordered stream from the first event.
func AttachSharded(rt *core.Runtime) (*Sharded, error) {
	view := rt.Routing()
	s := &Sharded{
		rt:     rt,
		reg:    rt.Stats(),
		id:     rt.ID(),
		epoch:  view.Epoch,
		shards: make(map[int]*Service, len(view.Rings)),
	}
	ids := make([]int, 0, len(view.Rings))
	for _, rid := range view.Rings {
		n := rt.Node(rid)
		if n == nil {
			return nil, fmt.Errorf("dds: runtime has no node for ring %v", rid)
		}
		s.attachReplica(int(rid), n)
		ids = append(ids, int(rid))
	}
	s.ring = newHashRingFor(ids, defaultReplicas)
	// Seed each replica's ownership guard: ordered writes for keys a
	// shard does not own are rejected, the backstop against writes
	// routed under a stale epoch.
	for _, id := range ids {
		s.shards[id].setRetired(complementRanges(s.ring, id))
	}
	rt.OnRingSpawn(func(id core.RingID, n *core.Node) { s.attachReplica(int(id), n) })
	rt.SetResharder(s)
	return s, nil
}

// attachReplica builds the replica for one ring and adds it to the shard
// map. A dynamically spawned ring's replica exists before the ring joins
// the routing table — it only becomes routable at the epoch flip.
func (s *Sharded) attachReplica(ringID int, n *core.Node) *Service {
	svc := New(n)
	svc.bindRouter(s, ringID)
	if s.ring != nil && !s.ring.hasID(ringID) {
		// A freshly spawned target ring owns nothing until its flip: the
		// whole circle is retired, so no stray write can land before the
		// handoff installs state.
		svc.setRetired(complementRanges(s.ring, ringID))
	}
	s.mu.Lock()
	next := make(map[int]*Service, len(s.shards)+1)
	for id, sh := range s.shards {
		next[id] = sh
	}
	next[ringID] = svc
	s.shards = next
	watchers := make([]func(string, []byte, bool), len(s.watchers))
	copy(watchers, s.watchers)
	applyObs := make([]func(ApplyEvent), len(s.applyObs))
	copy(applyObs, s.applyObs)
	batchCfg, batchObs := s.batchCfg, s.batchObs
	s.mu.Unlock()
	for _, fn := range watchers {
		svc.Watch(fn)
	}
	for _, fn := range applyObs {
		svc.OnApply(fn)
	}
	if batchCfg != nil {
		svc.SetWriteBatching(*batchCfg)
	}
	if batchObs != nil {
		svc.OnWriteBatch(batchObs)
	}
	return svc
}

// SetWriteBatching configures every shard's write coalescer (current
// replicas and those attached by later grows). Call before the runtime
// starts.
func (s *Sharded) SetWriteBatching(cfg BatchConfig) {
	s.mu.Lock()
	s.batchCfg = &cfg
	shards := s.shards
	s.mu.Unlock()
	for _, svc := range shards {
		svc.SetWriteBatching(cfg)
	}
}

// OnWriteBatch registers one observer of flushed batch sizes across
// every shard (the gateway's batch-size histogram). Call before the
// runtime starts; only one observer is supported.
func (s *Sharded) OnWriteBatch(fn func(ops int)) {
	s.mu.Lock()
	s.batchObs = fn
	shards := s.shards
	s.mu.Unlock()
	for _, svc := range shards {
		svc.OnWriteBatch(fn)
	}
}

// Epoch returns the routing epoch the router currently routes by.
func (s *Sharded) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// NumShards returns the active shard (ring) count of the current epoch.
func (s *Sharded) NumShards() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.ring.ids)
}

// ShardFor returns the ring id owning the key or lock name.
func (s *Sharded) ShardFor(key string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.lookup(key)
}

// Shard returns the replica for a ring id (nil if unknown). A target ring
// mid-handoff is present before it becomes routable.
func (s *Sharded) Shard(i int) *Service {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.shards[i]
}

// routeRead picks the replica serving reads for the key. Reads never
// block on a handoff: until the flip the source shard serves the frozen
// slice, after it the target does.
func (s *Sharded) routeRead(key string) *Service {
	s.mu.RLock()
	svc := s.shards[s.ring.lookup(key)]
	s.mu.RUnlock()
	return svc
}

// routeWrite picks the replica accepting writes for the key, failing fast
// with ErrResharding while the key's slice is frozen mid-handoff. The
// check here is advisory (no round trip); the ordered apply path enforces
// the same predicate authoritatively for writes racing the freeze.
func (s *Sharded) routeWrite(key string) (*Service, error) {
	h := fnv64a(key)
	s.mu.RLock()
	svc := s.shards[s.ring.owner(h)]
	s.mu.RUnlock()
	if svc == nil {
		return nil, fmt.Errorf("dds: no shard for key %q", key)
	}
	if svc.frozenContains(h) {
		if s.reg != nil {
			s.reg.Counter(stats.MetricFrozenWrites).Inc()
		}
		return nil, fmt.Errorf("%w: key %q", ErrResharding, key)
	}
	return svc, nil
}

// --- locks ---

// Lock acquires the named lock on its owning shard, blocking until
// granted or ctx is done. During a handoff of the lock's slice it fails
// with the retryable ErrResharding.
func (s *Sharded) Lock(ctx context.Context, name string) error {
	svc, err := s.routeWrite(name)
	if err != nil {
		return err
	}
	return svc.Lock(ctx, name)
}

// Unlock releases the named lock held by this node, waiting for the
// ordered apply at most until ctx is done. During a handoff of the
// lock's slice it fails with the retryable ErrResharding.
func (s *Sharded) Unlock(ctx context.Context, name string) error {
	svc, err := s.routeWrite(name)
	if err != nil {
		return err
	}
	return svc.Unlock(ctx, name)
}

// Holder reports the current owner of the named lock.
func (s *Sharded) Holder(name string) (core.NodeID, bool) { return s.routeRead(name).Holder(name) }

// --- replicated map ---

// Set writes key=val on the key's shard and returns once the write has
// applied locally (read-your-writes). During a handoff of the key's slice
// it fails with the retryable ErrResharding.
func (s *Sharded) Set(ctx context.Context, key string, val []byte) error {
	svc, err := s.routeWrite(key)
	if err != nil {
		return err
	}
	return svc.Set(ctx, key, val)
}

// GetLocal reads a key from its shard's local replica with no
// coordination — the eventual fast path (Get with no options is
// equivalent, minus the error return). It reflects every op the local
// replica has applied, not necessarily every op the ring has ordered.
func (s *Sharded) GetLocal(key string) ([]byte, bool) { return s.routeRead(key).Get(key) }

// routeReadShard is routeRead plus the shard id the key resolved to —
// the moded read path needs the id for session marks and read leases.
func (s *Sharded) routeReadShard(key string) (*Service, int) {
	s.mu.RLock()
	id := s.ring.lookup(key)
	svc := s.shards[id]
	s.mu.RUnlock()
	return svc, id
}

// Delete removes a key on its shard.
func (s *Sharded) Delete(ctx context.Context, key string) error {
	svc, err := s.routeWrite(key)
	if err != nil {
		return err
	}
	return svc.Delete(ctx, key)
}

// Keys lists the union of all active shards' keys, sorted. Each shard
// contributes only the keys it owns under the current epoch: between a
// handoff's flip and its ordered purge the source replica still holds
// (and serves reads of) the moved keys, which must not be double-counted.
func (s *Sharded) Keys() []string {
	s.mu.RLock()
	ring := s.ring
	type shardKeys struct {
		id  int
		svc *Service
	}
	svcs := make([]shardKeys, 0, len(ring.ids))
	for _, id := range ring.ids {
		if svc := s.shards[id]; svc != nil {
			svcs = append(svcs, shardKeys{id, svc})
		}
	}
	s.mu.RUnlock()
	var out []string
	for _, sh := range svcs {
		for _, k := range sh.svc.Keys() {
			if ring.lookup(k) == sh.id {
				out = append(out, k)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Watch registers a callback for key changes on every shard, including
// shards attached by later grows. Callbacks for one shard arrive in that
// shard's apply order; there is no cross-shard order, matching the
// sharded consistency model. A handed-off key re-announces its value from
// the target shard at the flip, and because the source replica's stream
// may lag in real time, callbacks for a moving key can interleave between
// the two shards around a handoff — per-key monotonicity is guaranteed
// for routed reads (Get), not across watcher streams.
func (s *Sharded) Watch(fn func(key string, val []byte, deleted bool)) {
	s.mu.Lock()
	s.watchers = append(s.watchers, fn)
	svcs := make([]*Service, 0, len(s.shards))
	for _, sh := range s.shards {
		svcs = append(svcs, sh)
	}
	s.mu.Unlock()
	for _, sh := range svcs {
		sh.Watch(fn)
	}
}

// OnApply registers an apply-stream observer on every shard, including
// shards attached by later grows. Events for one shard arrive in that
// shard's apply order; there is no cross-shard order (the sharded
// consistency model). The gateway's micro-cache invalidation rides this.
func (s *Sharded) OnApply(fn func(ApplyEvent)) {
	s.mu.Lock()
	s.applyObs = append(s.applyObs, fn)
	svcs := make([]*Service, 0, len(s.shards))
	for _, sh := range s.shards {
		svcs = append(svcs, sh)
	}
	s.mu.Unlock()
	for _, sh := range svcs {
		sh.OnApply(fn)
	}
}

// kickOrphans re-evaluates every shard's orphaned transaction stages
// against the decide ring's verdicts. Invoked from the shards' kick
// points: a decide record applying, a membership change, a completed
// state transfer.
func (s *Sharded) kickOrphans() {
	s.mu.RLock()
	svcs := make([]*Service, 0, len(s.shards))
	for _, svc := range s.shards {
		svcs = append(svcs, svc)
	}
	s.mu.RUnlock()
	for _, svc := range svcs {
		svc.resolveOrphans()
	}
}

// DecideRing returns the ring carrying replicated commit records: the
// lowest active ring id of the current epoch. Every coordinator and
// every replica resolves the same ring for a given routing table, and
// the lowest ring survives shrinks (RemoveRing retires high ids).
func (s *Sharded) DecideRing() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	best := -1
	for _, id := range s.ring.ids {
		if best == -1 || id < best {
			best = id
		}
	}
	return best
}

// decideVerdict consults the local decide-ring replica for transaction
// id's outcome (every node hosts a replica of every ring).
func (s *Sharded) decideVerdict(ring int, id uint64, coord core.NodeID) int {
	svc := s.Shard(ring)
	if svc == nil {
		return verdictPending
	}
	return svc.localVerdict(id, coord)
}

// decideSelfVerdict resolves a WAL-recovered stage this node itself
// coordinated (see Service.localSelfVerdict).
func (s *Sharded) decideSelfVerdict(ring int, id uint64) int {
	svc := s.Shard(ring)
	if svc == nil {
		return verdictPending
	}
	return svc.localSelfVerdict(id)
}

// String summarizes the router (diagnostics).
func (s *Sharded) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return fmt.Sprintf("dds.Sharded{epoch=%d rings=%v}", s.epoch, s.ring.ids)
}
