package dds

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// Consistency-moded local reads. Every node hosts a full replica of each
// of its rings' state, so reads need not ride the token at all — the
// question is only how stale the local replica may be. The router's
// Get(ctx, key, ...ReadOption) answers it per call:
//
//   - eventual (default, no options): serve the local view as-is. This is
//     exactly what bare reads have always returned.
//   - session (WithSession): read-your-writes. The session records, per
//     shard, the ordered position of its own writes; a read waits until
//     the serving replica has applied past those marks.
//   - bounded staleness (WithMaxStaleness(d)): serve locally only if the
//     replica proved itself caught up within d — its last ordered apply
//     or token arrival — otherwise fence first.
//   - linearizable (WithLinearizable): order a no-op fence on the key's
//     ring and wait for its local apply; the lookup then reflects every
//     write ordered before the read began. WithReadLease(d) amortizes
//     the fence: after one fence, reads in the next d are served locally
//     under an epoch-pinned lease (see the lease note below).
//
// Only the fence rides the token, so eventual/session/bounded/lease
// reads scale with node count while the token carries writes.

// ReadConsistency selects a read mode; zero value is ReadEventual.
type ReadConsistency int

const (
	// ReadEventual serves the local replica with no coordination.
	ReadEventual ReadConsistency = iota
	// ReadSession guarantees read-your-writes for one Session's writes.
	ReadSession
	// ReadBounded guarantees the replica was caught up within a bound.
	ReadBounded
	// ReadLinearizable guarantees the read observes every write ordered
	// before it began (fence, or epoch-pinned lease).
	ReadLinearizable
)

// readOptions is the resolved option set of one Get call.
type readOptions struct {
	mode     ReadConsistency
	sess     *Session
	maxStale time.Duration
	lease    time.Duration
}

// ReadOption configures one Get call's consistency mode.
type ReadOption func(*readOptions)

// WithEventual selects the eventual mode explicitly (the default).
func WithEventual() ReadOption {
	return func(ro *readOptions) { ro.mode = ReadEventual }
}

// WithSession selects session (read-your-writes) mode: the read observes
// every prior write made through sess, waiting for the local replica to
// catch up if needed (bounded by ctx).
func WithSession(sess *Session) ReadOption {
	return func(ro *readOptions) {
		ro.mode = ReadSession
		ro.sess = sess
	}
}

// WithMaxStaleness selects bounded-staleness mode: serve locally only if
// the replica proved itself caught up within d (last ordered apply or
// token arrival); otherwise fence on the ring first. d <= 0 fences every
// read.
func WithMaxStaleness(d time.Duration) ReadOption {
	return func(ro *readOptions) {
		ro.mode = ReadBounded
		ro.maxStale = d
	}
}

// WithLinearizable selects linearizable mode: the read fences on the
// key's ring (one ordered no-op) before serving, so it observes every
// write ordered before it began.
func WithLinearizable() ReadOption {
	return func(ro *readOptions) { ro.mode = ReadLinearizable }
}

// WithReadLease amortizes linearizable fences: after a fence, reads for
// the next d are served from the local replica under a lease pinned to
// the current routing epoch (implies WithLinearizable). A lease-hit read
// observes at least every write the last fence ordered behind, and the
// replica keeps applying between fences, so its staleness is bounded by
// d — the classic read-lease trade: per-read fencing strictness for
// local-speed reads. Pass d=0 (or omit) to fence every read.
func WithReadLease(d time.Duration) ReadOption {
	return func(ro *readOptions) {
		ro.mode = ReadLinearizable
		ro.lease = d
	}
}

// Get reads a key from its shard's local replica under the requested
// consistency mode (eventual when no options are given — the documented
// default, identical to GetLocal). Modes that wait — session catch-up
// and fences — honor ctx; the returned error is retryable (matches
// rcerr.ErrRetryable) when the shard shut down mid-wait, e.g. for an
// elastic shrink, and the caller should re-route and retry.
func (s *Sharded) Get(ctx context.Context, key string, opts ...ReadOption) ([]byte, bool, error) {
	if len(opts) == 0 {
		// Hot path: no option funcs to run, no ordered wait possible, so
		// no ctx poll either — this is the ≤1 alloc/op read (the alloc is
		// the returned value copy).
		svc := s.routeRead(key)
		if svc == nil {
			return nil, false, fmt.Errorf("dds: no shard for key %q", key)
		}
		svc.cReadEventual.Inc()
		v, ok := svc.rview.get(key)
		return v, ok, nil
	}
	var ro readOptions
	for _, o := range opts {
		o(&ro)
	}
	return s.getModed(ctx, key, &ro)
}

func (s *Sharded) getModed(ctx context.Context, key string, ro *readOptions) ([]byte, bool, error) {
	if ro.mode == ReadSession && ro.sess == nil {
		return nil, false, errors.New("dds: session read without a session (use WithSession)")
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		// A session read must route under an epoch at least as new as the
		// session's last write: across an elastic handoff the writer's node
		// flips before this one, and until the flip arrives here the old
		// routing would send the read to the source shard — which never saw
		// writes the session already made to the target.
		if ro.mode == ReadSession {
			if err := s.waitEpoch(ctx, ro.sess.writeEpoch()); err != nil {
				return nil, false, err
			}
		}
		svc, shard := s.routeReadShard(key)
		if svc == nil {
			return nil, false, fmt.Errorf("dds: no shard for key %q", key)
		}
		switch ro.mode {
		case ReadEventual:
			svc.cReadEventual.Inc()

		case ReadSession:
			for _, m := range ro.sess.marksFor(shard) {
				if svc.AppliedSeq(m.origin) >= m.seq {
					continue
				}
				svc.cSessionWaits.Inc()
				if err := svc.WaitCaughtUp(ctx, m.origin, m.seq); err != nil {
					return nil, false, err
				}
			}
			svc.cReadSession.Inc()

		case ReadBounded:
			fresh := svc.Freshness()
			if fresh.IsZero() || time.Since(fresh) > ro.maxStale {
				if err := svc.Fence(ctx); err != nil {
					return nil, false, err
				}
			}
			svc.cReadBounded.Inc()

		case ReadLinearizable:
			if ro.lease > 0 && s.leaseValid(shard) {
				svc.cLeaseHits.Inc()
			} else {
				// The lease starts at the fence's submission, not its apply:
				// writes ordered during the fence's round are only guaranteed
				// visible if ordered before the submission.
				start := time.Now()
				if err := svc.Fence(ctx); err != nil {
					return nil, false, err
				}
				if ro.lease > 0 {
					s.grantLease(shard, start.Add(ro.lease))
				}
			}
			svc.cReadLin.Inc()

		default:
			return nil, false, fmt.Errorf("dds: unknown read consistency %d", ro.mode)
		}
		v, ok := svc.rview.get(key)
		// A handoff may have flipped while the mode's wait blocked, moving
		// the key to another shard and purging it from the replica just
		// read. The local flip swaps the router before it purges, so the
		// read is valid exactly if the routing still names the shard it
		// came from; otherwise re-route and redo the wait there.
		if _, again := s.routeReadShard(key); again == shard {
			return v, ok, nil
		}
	}
}

// waitEpoch blocks until the router's epoch reaches at least epoch. The
// flip that advances it is already ordered (the session observed its
// effect on the writing node), so this only rides out cross-node skew.
func (s *Sharded) waitEpoch(ctx context.Context, epoch uint64) error {
	for {
		s.mu.RLock()
		e := s.epoch
		s.mu.RUnlock()
		if e >= epoch {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// --- read leases ---

// readLease lets linearizable reads skip the fence for a window: valid
// until its deadline, and only while the routing epoch it was granted
// under still stands (an elastic handoff mid-lease could move the key to
// a shard whose replica this lease never fenced).
type readLease struct {
	until  int64 // unixnano
	pin    core.EpochPin
	pinned bool
}

func (s *Sharded) leaseValid(shard int) bool {
	s.leaseMu.Lock()
	l, ok := s.leases[shard]
	s.leaseMu.Unlock()
	if !ok || time.Now().UnixNano() >= l.until {
		return false
	}
	if l.pinned && l.pin.Check() != nil {
		return false
	}
	return true
}

func (s *Sharded) grantLease(shard int, until time.Time) {
	l := readLease{until: until.UnixNano()}
	if s.rt != nil {
		l.pin = s.rt.PinEpoch()
		l.pinned = true
	}
	s.leaseMu.Lock()
	if s.leases == nil {
		s.leases = make(map[int]readLease)
	}
	s.leases[shard] = l
	s.leaseMu.Unlock()
}

// --- sessions ---

// Session provides read-your-writes across the cluster: writes made
// through it record their ordered position per shard, and session reads
// (Get with WithSession) on ANY node's router wait until the serving
// replica has applied past those positions. Safe for concurrent use; a
// session is a consistency token, not a connection.
//
// Marks are keyed by shard id plus originating node, using the ring's
// own per-origin multicast sequences — raw apply counters would not be
// comparable across replicas (snapshots collapse many ops into one
// apply). A key that resharded to a different shard since the write
// carries no mark there; that is safe, because the ordered handoff
// installs the write's effect on the target before the target serves
// reads.
type Session struct {
	r *Sharded

	mu    sync.Mutex
	epoch uint64                         // newest routing epoch written under
	marks map[int]map[core.NodeID]uint64 // shard -> origin -> min applied seq
}

// NewSession starts an empty read-your-writes session bound to this
// router for its writes. The session itself may be shared with readers
// on other nodes.
func (s *Sharded) NewSession() *Session {
	return &Session{r: s, marks: make(map[int]map[core.NodeID]uint64)}
}

// Set writes key=val through the session's router and records the
// write's ordered position, so later session reads observe it.
func (sess *Session) Set(ctx context.Context, key string, val []byte) error {
	svc, shard, epoch, err := sess.r.routeWriteShard(key)
	if err != nil {
		return err
	}
	if err := svc.Set(ctx, key, val); err != nil {
		return err
	}
	sess.observeWrite(shard, epoch, svc)
	return nil
}

// Delete removes a key through the session's router and records the
// deletion's ordered position, so later session reads observe it.
func (sess *Session) Delete(ctx context.Context, key string) error {
	svc, shard, epoch, err := sess.r.routeWriteShard(key)
	if err != nil {
		return err
	}
	if err := svc.Delete(ctx, key); err != nil {
		return err
	}
	sess.observeWrite(shard, epoch, svc)
	return nil
}

// Get reads a key at session consistency.
func (sess *Session) Get(ctx context.Context, key string) ([]byte, bool, error) {
	return sess.r.Get(ctx, key, WithSession(sess))
}

// observeWrite records that this session's latest write on shard applied
// at the writing replica's current position for its own origin, under the
// routing epoch the write routed by. The position can only
// over-approximate (later self-ops may have applied since), which is
// safe: session reads wait at least as long as needed.
func (sess *Session) observeWrite(shard int, epoch uint64, svc *Service) {
	origin := svc.id
	seq := svc.AppliedSeq(origin)
	sess.mu.Lock()
	if epoch > sess.epoch {
		sess.epoch = epoch
	}
	m := sess.marks[shard]
	if m == nil {
		m = make(map[core.NodeID]uint64, 1)
		sess.marks[shard] = m
	}
	if seq > m[origin] {
		m[origin] = seq
	}
	sess.mu.Unlock()
}

// writeEpoch reports the newest routing epoch the session wrote under.
func (sess *Session) writeEpoch() uint64 {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.epoch
}

// sessionMark is one (origin, seq) a session read must wait behind.
type sessionMark struct {
	origin core.NodeID
	seq    uint64
}

// marksFor snapshots the session's marks for one shard.
func (sess *Session) marksFor(shard int) []sessionMark {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	m := sess.marks[shard]
	if len(m) == 0 {
		return nil
	}
	out := make([]sessionMark, 0, len(m))
	for origin, seq := range m {
		out = append(out, sessionMark{origin: origin, seq: seq})
	}
	return out
}

// routeWriteShard is routeWrite plus the shard id the key resolved to and
// the routing epoch it resolved under, for session write marks.
func (s *Sharded) routeWriteShard(key string) (*Service, int, uint64, error) {
	h := fnv64a(key)
	s.mu.RLock()
	id := s.ring.owner(h)
	epoch := s.epoch
	svc := s.shards[id]
	s.mu.RUnlock()
	if svc == nil {
		return nil, 0, 0, fmt.Errorf("dds: no shard for key %q", key)
	}
	if svc.frozenContains(h) {
		if s.reg != nil {
			s.reg.Counter(stats.MetricFrozenWrites).Inc()
		}
		return nil, 0, 0, fmt.Errorf("%w: key %q", ErrResharding, key)
	}
	return svc, id, epoch, nil
}
