package dds

import (
	"encoding/binary"
	"errors"

	"repro/internal/core"
	"repro/internal/wire"
)

// Data-service operations ride inside ordinary Raincore multicasts. The
// first two bytes distinguish them from application payloads.

const (
	ddsMagic   = 0xD5
	ddsVersion = 1
)

type opKind byte

const (
	opAcquire opKind = iota + 1
	opRelease
	opCancel
	opSet
	opDel
	opSnapshot
	opSnapReq
)

type op struct {
	kind   opKind
	key    string
	val    []byte
	reqID  uint64
	target core.NodeID
}

func header(kind opKind) []byte { return []byte{ddsMagic, ddsVersion, byte(kind)} }

func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func encodeAcquire(name string, reqID uint64) []byte {
	b := header(opAcquire)
	b = appendStr(b, name)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

func encodeRelease(name string, reqID uint64) []byte {
	b := header(opRelease)
	b = appendStr(b, name)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

func encodeCancel(name string, reqID uint64) []byte {
	b := header(opCancel)
	b = appendStr(b, name)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

func encodeSet(key string, val []byte, reqID uint64) []byte {
	b := header(opSet)
	b = appendStr(b, key)
	b = appendBytes(b, val)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

func encodeDel(key string, reqID uint64) []byte {
	b := header(opDel)
	b = appendStr(b, key)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

func encodeSnapReq() []byte { return header(opSnapReq) }

// decodeOp parses a data-service op; ok=false means the payload belongs to
// the application.
func decodeOp(p []byte) (op, bool) {
	if len(p) < 3 || p[0] != ddsMagic || p[1] != ddsVersion {
		return op{}, false
	}
	r := opReader{buf: p[3:]}
	o := op{kind: opKind(p[2])}
	var err error
	switch o.kind {
	case opAcquire, opRelease, opCancel, opDel:
		if o.key, err = r.str(); err == nil {
			o.reqID, err = r.u64()
		}
	case opSet:
		if o.key, err = r.str(); err == nil {
			if o.val, err = r.bytes(); err == nil {
				o.reqID, err = r.u64()
			}
		}
	case opSnapshot:
		var t uint32
		if t, err = r.u32(); err == nil {
			o.target = core.NodeID(t)
			o.val, err = r.bytes()
		}
	case opSnapReq:
	default:
		return op{}, false
	}
	if err != nil {
		return op{}, false
	}
	return o, true
}

// --- snapshot state codec ---

type snapshotState struct {
	kv      map[string][]byte
	locks   map[string]*lockState
	applied map[core.NodeID]uint64
}

func encodeSnapshot(target core.NodeID, st snapshotState) []byte {
	b := header(opSnapshot)
	b = binary.LittleEndian.AppendUint32(b, uint32(target))
	body := encodeSnapshotState(st)
	return appendBytes(b, body)
}

func encodeSnapshotState(st snapshotState) []byte {
	var b []byte
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.kv)))
	for k, v := range st.kv {
		b = appendStr(b, k)
		b = appendBytes(b, v)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.locks)))
	for name, ls := range st.locks {
		b = appendStr(b, name)
		b = binary.LittleEndian.AppendUint32(b, uint32(ls.owner))
		b = binary.LittleEndian.AppendUint64(b, ls.ownerReq)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(ls.queue)))
		for _, q := range ls.queue {
			b = binary.LittleEndian.AppendUint32(b, uint32(q.node))
			b = binary.LittleEndian.AppendUint64(b, q.reqID)
		}
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.applied)))
	for node, seq := range st.applied {
		b = binary.LittleEndian.AppendUint32(b, uint32(node))
		b = binary.LittleEndian.AppendUint64(b, seq)
	}
	return b
}

func decodeSnapshotState(p []byte) (snapshotState, error) {
	r := opReader{buf: p}
	st := snapshotState{kv: make(map[string][]byte), locks: make(map[string]*lockState)}
	nkv, err := r.u32()
	if err != nil {
		return st, err
	}
	for i := uint32(0); i < nkv; i++ {
		k, err := r.str()
		if err != nil {
			return st, err
		}
		v, err := r.bytes()
		if err != nil {
			return st, err
		}
		st.kv[k] = v
	}
	nlocks, err := r.u32()
	if err != nil {
		return st, err
	}
	for i := uint32(0); i < nlocks; i++ {
		name, err := r.str()
		if err != nil {
			return st, err
		}
		owner, err := r.u32()
		if err != nil {
			return st, err
		}
		ownerReq, err := r.u64()
		if err != nil {
			return st, err
		}
		qlen, err := r.u32()
		if err != nil {
			return st, err
		}
		ls := &lockState{owner: wire.NodeID(owner), ownerReq: ownerReq}
		for j := uint32(0); j < qlen; j++ {
			node, err := r.u32()
			if err != nil {
				return st, err
			}
			reqID, err := r.u64()
			if err != nil {
				return st, err
			}
			ls.queue = append(ls.queue, lockReq{node: wire.NodeID(node), reqID: reqID})
		}
		st.locks[name] = ls
	}
	st.applied = make(map[core.NodeID]uint64)
	napp, err := r.u32()
	if err != nil {
		return st, err
	}
	for i := uint32(0); i < napp; i++ {
		node, err := r.u32()
		if err != nil {
			return st, err
		}
		seq, err := r.u64()
		if err != nil {
			return st, err
		}
		st.applied[wire.NodeID(node)] = seq
	}
	return st, nil
}

type opReader struct{ buf []byte }

var errShort = errors.New("dds: truncated op")

func (r *opReader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, errShort
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v, nil
}

func (r *opReader) u64() (uint64, error) {
	if len(r.buf) < 8 {
		return 0, errShort
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v, nil
}

func (r *opReader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint32(len(r.buf)) < n {
		return nil, errShort
	}
	v := append([]byte(nil), r.buf[:n]...)
	r.buf = r.buf[n:]
	return v, nil
}

func (r *opReader) str() (string, error) {
	b, err := r.bytes()
	return string(b), err
}
