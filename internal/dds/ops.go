package dds

import (
	"encoding/binary"
	"errors"
	"sort"

	"repro/internal/core"
	"repro/internal/wire"
)

// Data-service operations ride inside ordinary Raincore multicasts. The
// first two bytes distinguish them from application payloads.

const (
	ddsMagic   = 0xD5
	ddsVersion = 1
)

type opKind byte

const (
	opAcquire opKind = iota + 1
	opRelease
	opCancel
	opSet
	opDel
	opSnapshot
	opSnapReq
	// Elastic-resharding control ops. They ride the affected rings'
	// ordered streams so every replica observes the handoff state machine
	// at the same position relative to the data ops it affects:
	// opFreeze on each source ring (stop writes to the moving slice),
	// opInstall then opFlip on each target ring (stage the snapshot,
	// then atomically adopt it and the new routing epoch), opAbortReshard
	// anywhere to roll back to the old epoch.
	opFreeze
	opInstall
	opFlip
	opAbortReshard
	// opPurge garbage-collects a handed-off slice from the source shard
	// after the flip committed, at an ordered position of the source's
	// own stream (so every replica purges the same state).
	opPurge
	// Cross-shard transaction ops (2PC over the per-ring ordered
	// streams). opTxnPrepare stages a transaction's writes for this
	// shard on every replica at one ordered position; opTxnCommit makes
	// the staged writes live (atomically, at its own ordered position);
	// opTxnAbort drops them. The ordered removal of a dead coordinator
	// aborts its staged transactions deterministically, mirroring the
	// resharding abort path.
	opTxnPrepare
	opTxnCommit
	opTxnAbort
	// Cross-shard snapshot barrier ops. opSnapFreeze starts the barrier
	// on a ring: from its ordered position new writes and prepares are
	// rejected (retryably) while staged transactions drain. opSnapCapture
	// captures the shard's map at its ordered position once no staged
	// transactions remain. opSnapRelease lifts the barrier.
	opSnapFreeze
	opSnapCapture
	opSnapRelease
	// opFence is the read-path fence: a no-op that merely occupies an
	// ordered position. A linearizable (or staleness-fenced) read submits
	// one and waits for its local apply — every write ordered before the
	// read's invocation is then applied on this replica, so the local
	// lookup that follows is as fresh as a token-carried read would be.
	// Fences apply unconditionally: freezes, snapshot barriers and
	// retired ranges never reject them, so reads stay available through
	// handoffs.
	opFence
	// opTxnDecide is the replicated commit record: the coordinator orders
	// it on the designated decide ring after every prepare acknowledged
	// and before any phase-2 commit fan-out. Its presence on the decide
	// ring means the transaction is committed; its absence at the ordered
	// position of the coordinator's removal means no participant can have
	// committed, so survivors abort. Either way in-doubt stages terminate
	// deterministically.
	opTxnDecide
	// opSnapReqFrom is a rejoining node's state-transfer request carrying
	// its recovered applied-sequence vector (and removal count). The
	// deterministic responder answers with either an opSnapDelta holding
	// just the ops the joiner missed, or a full targeted opSnapshot when
	// the gap is not coverable from its recent-op log.
	opSnapReqFrom
	// opSnapDelta fast-forwards a WAL-recovered joiner: the ops (and
	// membership removals) it missed, in ring order, instead of the full
	// keyspace.
	opSnapDelta
	// opBatch is the write coalescer's multi-op frame: K Set/Delete
	// entries from one origin riding a single ordered position, applied
	// atomically (all entries published before any waiter wakes) and
	// logged as one WAL record — the group-commit unit. Builds predating
	// the kind treat the frame as an application payload, so the
	// coalescer must only be enabled once the whole group speaks it;
	// single-op frames from older builds decode unchanged either way.
	opBatch
)

type op struct {
	kind   opKind
	key    string
	val    []byte
	reqID  uint64
	target core.NodeID

	// Resharding fields (opFreeze/opInstall/opFlip/opAbortReshard).
	rid     uint64 // reshard attempt / transaction / snapshot identifier
	epoch   uint64 // new routing epoch (flip/abort) or pinned epoch (prepare)
	ranges  []keyRange
	rings   []int // flip: the new table's ring ids
	targets []int // flip: the handoff's target ring ids
	kv      map[string][]byte
	locks   map[string]*lockState
	dels    []string // txn prepare: keys the transaction deletes

	// Durability / recovery fields.
	decideRing int                    // txn prepare: decide ring id, -1 = presumed-abort (legacy)
	applied    map[core.NodeID]uint64 // snap-req-from: the joiner's recovered vector
	removals   uint64                 // snap-req-from: removals the joiner has applied
	wantFull   bool                   // snap-req-from: joiner needs a full snapshot
	delta      []deltaEntry           // snap-delta: the ops the joiner missed, in order

	// Write-batching field (opBatch): the coalesced entries, in the
	// order the callers enqueued them (applied in that order).
	batch []batchEntry
}

// batchEntry is one caller's write inside an opBatch frame.
type batchEntry struct {
	del   bool
	key   string
	val   []byte // nil for deletes
	reqID uint64
}

// deltaEntry is one element of a fast-forward delta: either a missed op
// (raw payload, replayed through the filtered-apply path) or a missed
// membership removal (replayed through the dead-node cleanup path).
type deltaEntry struct {
	origin  core.NodeID // op entry: originating node
	seq     uint64      // op entry: per-origin sequence
	raw     []byte      // op entry: encoded op as delivered
	removal core.NodeID // removal entry: the removed node (wire.NoNode for op entries)
	remIdx  uint64      // removal entry: position in the removal sequence
}

func header(kind opKind) []byte { return []byte{ddsMagic, ddsVersion, byte(kind)} }

func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func encodeAcquire(name string, reqID uint64) []byte {
	b := header(opAcquire)
	b = appendStr(b, name)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

func encodeRelease(name string, reqID uint64) []byte {
	b := header(opRelease)
	b = appendStr(b, name)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

func encodeCancel(name string, reqID uint64) []byte {
	b := header(opCancel)
	b = appendStr(b, name)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

func encodeSet(key string, val []byte, reqID uint64) []byte {
	b := header(opSet)
	b = appendStr(b, key)
	b = appendBytes(b, val)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

func encodeDel(key string, reqID uint64) []byte {
	b := header(opDel)
	b = appendStr(b, key)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

func encodeSnapReq() []byte { return header(opSnapReq) }

// --- write-batch frame codec ---
//
// Layout: header(opBatch) | u32 count | count × entry, where an entry is
// u8 del | str key | bytes val (sets only) | u64 reqID. The coalescer
// builds the frame incrementally in a reused buffer — batchFrameStart
// writes the header with a zero count, appendBatchSet/appendBatchDel add
// entries as callers arrive, and batchFramePatch fixes the count at
// flush — so the amortized encode cost stays at the entry append itself.

// batchFrameOverhead is the fixed frame cost: 3-byte header + u32 count.
const batchFrameOverhead = 7

// batchFrameStart begins an opBatch frame in buf (reusing its capacity).
func batchFrameStart(buf []byte) []byte {
	b := append(buf[:0], ddsMagic, ddsVersion, byte(opBatch))
	return append(b, 0, 0, 0, 0) // count, patched at flush
}

func appendBatchSet(b []byte, key string, val []byte, reqID uint64) []byte {
	b = append(b, 0)
	b = appendStr(b, key)
	b = appendBytes(b, val)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

func appendBatchDel(b []byte, key string, reqID uint64) []byte {
	b = append(b, 1)
	b = appendStr(b, key)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

// batchFramePatch writes the final entry count into a started frame.
func batchFramePatch(b []byte, count int) {
	binary.LittleEndian.PutUint32(b[3:7], uint32(count))
}

// encodeBatch builds a complete opBatch frame in one call (tests and
// single-shot paths; the coalescer uses the incremental form above).
func encodeBatch(entries []batchEntry) []byte {
	b := batchFrameStart(nil)
	for _, e := range entries {
		if e.del {
			b = appendBatchDel(b, e.key, e.reqID)
		} else {
			b = appendBatchSet(b, e.key, e.val, e.reqID)
		}
	}
	batchFramePatch(b, len(entries))
	return b
}

// --- resharding control op codecs ---

func appendRanges(b []byte, rs []keyRange) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(rs)))
	for _, r := range rs {
		b = binary.LittleEndian.AppendUint64(b, r.lo)
		b = binary.LittleEndian.AppendUint64(b, r.hi)
		b = binary.LittleEndian.AppendUint32(b, uint32(r.from))
		b = binary.LittleEndian.AppendUint32(b, uint32(r.to))
	}
	return b
}

func (r *opReader) readRanges() ([]keyRange, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	out := make([]keyRange, 0, n)
	for i := uint32(0); i < n; i++ {
		var kr keyRange
		if kr.lo, err = r.u64(); err != nil {
			return nil, err
		}
		if kr.hi, err = r.u64(); err != nil {
			return nil, err
		}
		from, err := r.u32()
		if err != nil {
			return nil, err
		}
		to, err := r.u32()
		if err != nil {
			return nil, err
		}
		kr.from, kr.to = int(int32(from)), int(int32(to))
		out = append(out, kr)
	}
	return out, nil
}

func appendKV(b []byte, kv map[string][]byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(kv)))
	for k, v := range kv {
		b = appendStr(b, k)
		b = appendBytes(b, v)
	}
	return b
}

func (r *opReader) readKV() (map[string][]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	kv := make(map[string][]byte, n)
	for i := uint32(0); i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.bytes()
		if err != nil {
			return nil, err
		}
		kv[k] = v
	}
	return kv, nil
}

func appendLocks(b []byte, locks map[string]*lockState) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(locks)))
	for name, ls := range locks {
		b = appendStr(b, name)
		b = binary.LittleEndian.AppendUint32(b, uint32(ls.owner))
		b = binary.LittleEndian.AppendUint64(b, ls.ownerReq)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(ls.queue)))
		for _, q := range ls.queue {
			b = binary.LittleEndian.AppendUint32(b, uint32(q.node))
			b = binary.LittleEndian.AppendUint64(b, q.reqID)
		}
	}
	return b
}

func (r *opReader) readLocks() (map[string]*lockState, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	locks := make(map[string]*lockState, n)
	for i := uint32(0); i < n; i++ {
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		owner, err := r.u32()
		if err != nil {
			return nil, err
		}
		ownerReq, err := r.u64()
		if err != nil {
			return nil, err
		}
		qlen, err := r.u32()
		if err != nil {
			return nil, err
		}
		ls := &lockState{owner: wire.NodeID(owner), ownerReq: ownerReq}
		for j := uint32(0); j < qlen; j++ {
			node, err := r.u32()
			if err != nil {
				return nil, err
			}
			reqID, err := r.u64()
			if err != nil {
				return nil, err
			}
			ls.queue = append(ls.queue, lockReq{node: wire.NodeID(node), reqID: reqID})
		}
		locks[name] = ls
	}
	return locks, nil
}

// encodeFreeze freezes the given hash ranges of the carrying ring's
// shard; epoch is the routing epoch the handoff targets.
func encodeFreeze(rid, epoch uint64, ranges []keyRange, reqID uint64) []byte {
	b := header(opFreeze)
	b = binary.LittleEndian.AppendUint64(b, rid)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = appendRanges(b, ranges)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

// encodeInstall stages moved keys and locks on the carrying ring's shard.
func encodeInstall(rid, epoch uint64, kv map[string][]byte, locks map[string]*lockState, reqID uint64) []byte {
	b := header(opInstall)
	b = binary.LittleEndian.AppendUint64(b, rid)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = appendKV(b, kv)
	b = appendLocks(b, locks)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

// encodeFlip commits the handoff on the carrying (target) ring: adopt the
// staged state and, once every target flipped, the new routing epoch.
func encodeFlip(rid, epoch uint64, rings, targets []int, reqID uint64) []byte {
	b := header(opFlip)
	b = binary.LittleEndian.AppendUint64(b, rid)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(rings)))
	for _, id := range rings {
		b = binary.LittleEndian.AppendUint32(b, uint32(id))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(targets)))
	for _, id := range targets {
		b = binary.LittleEndian.AppendUint32(b, uint32(id))
	}
	return binary.LittleEndian.AppendUint64(b, reqID)
}

// encodeAbortReshard rolls the handoff back on the carrying ring.
func encodeAbortReshard(rid, epoch uint64) []byte {
	b := header(opAbortReshard)
	b = binary.LittleEndian.AppendUint64(b, rid)
	return binary.LittleEndian.AppendUint64(b, epoch)
}

// encodePurge garbage-collects the flipped handoff's slice on the source.
func encodePurge(rid, epoch uint64, reqID uint64) []byte {
	b := header(opPurge)
	b = binary.LittleEndian.AppendUint64(b, rid)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

// --- transaction and snapshot op codecs ---

func appendStrList(b []byte, ss []string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ss)))
	for _, s := range ss {
		b = appendStr(b, s)
	}
	return b
}

func (r *opReader) readStrList() ([]string, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// encodeTxnPrepare stages a transaction's writes on the carrying ring's
// shard; epoch is the routing epoch the coordinator pinned for the
// transaction's lifetime. decideRing is the ring carrying the replicated
// commit record (-1: legacy presumed-abort, the stage dies with its
// coordinator).
func encodeTxnPrepare(id, epoch uint64, decideRing int, kv map[string][]byte, dels []string, reqID uint64) []byte {
	b := header(opTxnPrepare)
	b = binary.LittleEndian.AppendUint64(b, id)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(decideRing)))
	b = appendKV(b, kv)
	b = appendStrList(b, dels)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

// encodeTxnDecide orders the replicated commit record for transaction id
// (coordinated by coord) on the carrying decide ring.
func encodeTxnDecide(id uint64, coord core.NodeID, reqID uint64) []byte {
	b := header(opTxnDecide)
	b = binary.LittleEndian.AppendUint64(b, id)
	b = binary.LittleEndian.AppendUint32(b, uint32(coord))
	return binary.LittleEndian.AppendUint64(b, reqID)
}

// encodeSnapReqFrom is a recovered joiner's targeted state request: its
// applied vector and removal count let the responder compute a delta.
func encodeSnapReqFrom(applied map[core.NodeID]uint64, removals, epoch uint64, wantFull bool) []byte {
	b := header(opSnapReqFrom)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = binary.LittleEndian.AppendUint64(b, removals)
	if wantFull {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(applied)))
	for _, node := range sortedNodeIDs(applied) {
		b = binary.LittleEndian.AppendUint32(b, uint32(node))
		b = binary.LittleEndian.AppendUint64(b, applied[node])
	}
	return b
}

func sortedNodeIDs(m map[core.NodeID]uint64) []core.NodeID {
	out := make([]core.NodeID, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// encodeSnapDelta carries the ops and removals the joiner missed.
func encodeSnapDelta(target core.NodeID, entries []deltaEntry) []byte {
	b := header(opSnapDelta)
	b = binary.LittleEndian.AppendUint32(b, uint32(target))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(entries)))
	for _, e := range entries {
		if e.removal != wire.NoNode {
			b = append(b, 1)
			b = binary.LittleEndian.AppendUint32(b, uint32(e.removal))
			b = binary.LittleEndian.AppendUint64(b, e.remIdx)
			continue
		}
		b = append(b, 0)
		b = binary.LittleEndian.AppendUint32(b, uint32(e.origin))
		b = binary.LittleEndian.AppendUint64(b, e.seq)
		b = appendBytes(b, e.raw)
	}
	return b
}

// encodeTxnCommit applies the staged transaction on the carrying ring.
func encodeTxnCommit(id uint64, reqID uint64) []byte {
	b := header(opTxnCommit)
	b = binary.LittleEndian.AppendUint64(b, id)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

// encodeTxnAbort drops the staged transaction on the carrying ring.
func encodeTxnAbort(id uint64, reqID uint64) []byte {
	b := header(opTxnAbort)
	b = binary.LittleEndian.AppendUint64(b, id)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

// encodeSnapFreeze starts the snapshot barrier on the carrying ring.
func encodeSnapFreeze(id uint64, reqID uint64) []byte {
	b := header(opSnapFreeze)
	b = binary.LittleEndian.AppendUint64(b, id)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

// encodeSnapCapture captures the shard's map at its ordered position.
func encodeSnapCapture(id uint64, reqID uint64) []byte {
	b := header(opSnapCapture)
	b = binary.LittleEndian.AppendUint64(b, id)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

// encodeSnapRelease lifts the snapshot barrier on the carrying ring.
func encodeSnapRelease(id uint64, reqID uint64) []byte {
	b := header(opSnapRelease)
	b = binary.LittleEndian.AppendUint64(b, id)
	return binary.LittleEndian.AppendUint64(b, reqID)
}

// encodeFence orders a read fence on the carrying ring.
func encodeFence(reqID uint64) []byte {
	return binary.LittleEndian.AppendUint64(header(opFence), reqID)
}

// decodeOp parses a data-service op; ok=false means the payload belongs to
// the application.
func decodeOp(p []byte) (op, bool) {
	if len(p) < 3 || p[0] != ddsMagic || p[1] != ddsVersion {
		return op{}, false
	}
	r := opReader{buf: p[3:]}
	o := op{kind: opKind(p[2])}
	var err error
	switch o.kind {
	case opAcquire, opRelease, opCancel, opDel:
		if o.key, err = r.str(); err == nil {
			o.reqID, err = r.u64()
		}
	case opSet:
		if o.key, err = r.str(); err == nil {
			if o.val, err = r.bytes(); err == nil {
				o.reqID, err = r.u64()
			}
		}
	case opSnapshot:
		var t uint32
		if t, err = r.u32(); err == nil {
			o.target = core.NodeID(t)
			o.val, err = r.bytes()
		}
	case opSnapReq:
	case opFreeze:
		if o.rid, err = r.u64(); err == nil {
			if o.epoch, err = r.u64(); err == nil {
				if o.ranges, err = r.readRanges(); err == nil {
					o.reqID, err = r.u64()
				}
			}
		}
	case opInstall:
		if o.rid, err = r.u64(); err == nil {
			if o.epoch, err = r.u64(); err == nil {
				if o.kv, err = r.readKV(); err == nil {
					if o.locks, err = r.readLocks(); err == nil {
						o.reqID, err = r.u64()
					}
				}
			}
		}
	case opFlip:
		if o.rid, err = r.u64(); err == nil {
			if o.epoch, err = r.u64(); err == nil {
				if o.rings, err = r.readIntList(); err == nil {
					if o.targets, err = r.readIntList(); err == nil {
						o.reqID, err = r.u64()
					}
				}
			}
		}
	case opAbortReshard:
		if o.rid, err = r.u64(); err == nil {
			o.epoch, err = r.u64()
		}
	case opPurge:
		if o.rid, err = r.u64(); err == nil {
			if o.epoch, err = r.u64(); err == nil {
				o.reqID, err = r.u64()
			}
		}
	case opTxnPrepare:
		if o.rid, err = r.u64(); err == nil {
			if o.epoch, err = r.u64(); err == nil {
				var dr uint32
				if dr, err = r.u32(); err == nil {
					o.decideRing = int(int32(dr))
					if o.kv, err = r.readKV(); err == nil {
						if o.dels, err = r.readStrList(); err == nil {
							o.reqID, err = r.u64()
						}
					}
				}
			}
		}
	case opTxnDecide:
		if o.rid, err = r.u64(); err == nil {
			var coord uint32
			if coord, err = r.u32(); err == nil {
				o.target = core.NodeID(coord)
				o.reqID, err = r.u64()
			}
		}
	case opSnapReqFrom:
		if o.epoch, err = r.u64(); err == nil {
			if o.removals, err = r.u64(); err == nil {
				var wf byte
				if wf, err = r.u8(); err == nil {
					o.wantFull = wf == 1
					var n uint32
					if n, err = r.u32(); err == nil {
						o.applied = make(map[core.NodeID]uint64, n)
						for i := uint32(0); i < n && err == nil; i++ {
							var node uint32
							var seq uint64
							if node, err = r.u32(); err == nil {
								if seq, err = r.u64(); err == nil {
									o.applied[core.NodeID(node)] = seq
								}
							}
						}
					}
				}
			}
		}
	case opSnapDelta:
		var t, n uint32
		if t, err = r.u32(); err == nil {
			o.target = core.NodeID(t)
			if n, err = r.u32(); err == nil {
				o.delta = make([]deltaEntry, 0, n)
				for i := uint32(0); i < n && err == nil; i++ {
					var typ byte
					if typ, err = r.u8(); err != nil {
						break
					}
					var e deltaEntry
					if typ == 1 {
						var node uint32
						if node, err = r.u32(); err == nil {
							e.removal = core.NodeID(node)
							e.remIdx, err = r.u64()
						}
					} else {
						var node uint32
						if node, err = r.u32(); err == nil {
							e.origin = core.NodeID(node)
							if e.seq, err = r.u64(); err == nil {
								e.raw, err = r.bytes()
							}
						}
					}
					if err == nil {
						o.delta = append(o.delta, e)
					}
				}
			}
		}
	case opTxnCommit, opTxnAbort, opSnapFreeze, opSnapCapture, opSnapRelease:
		if o.rid, err = r.u64(); err == nil {
			o.reqID, err = r.u64()
		}
	case opFence:
		o.reqID, err = r.u64()
	case opBatch:
		var n uint32
		if n, err = r.u32(); err == nil {
			// Each entry costs at least 13 bytes (del + empty key + reqID);
			// cap the prealloc so a corrupt count cannot balloon memory.
			cap32 := n
			if max := uint32(len(r.buf) / 13); cap32 > max {
				cap32 = max
			}
			o.batch = make([]batchEntry, 0, cap32)
			for i := uint32(0); i < n && err == nil; i++ {
				var del byte
				if del, err = r.u8(); err != nil {
					break
				}
				var e batchEntry
				e.del = del == 1
				if e.key, err = r.str(); err == nil {
					if !e.del {
						e.val, err = r.bytes()
					}
					if err == nil {
						e.reqID, err = r.u64()
					}
				}
				if err == nil {
					o.batch = append(o.batch, e)
				}
			}
		}
	default:
		return op{}, false
	}
	if err != nil {
		return op{}, false
	}
	return o, true
}

// --- snapshot state codec ---

type snapshotState struct {
	kv      map[string][]byte
	locks   map[string]*lockState
	applied map[core.NodeID]uint64
	// Resharding state rides in snapshots so a replica syncing mid-handoff
	// makes the same frozen-write decisions as everyone else. The fields
	// are appended to the encoding; snapshots from builds predating them
	// decode with the zero values.
	frozenID    uint64
	frozenBy    core.NodeID
	frozenEpoch uint64
	frozen      []keyRange
	retired     []keyRange
	staged      *stagedInstall
	// Cross-shard transaction state (second trailer): staged prepares and
	// the snapshot barrier, so a replica syncing mid-transaction resolves
	// the same commits/aborts as everyone else.
	txns   map[uint64]*txnStage
	snapID uint64
	snapBy core.NodeID
	// Durability extension (third trailer): the count of membership
	// removals this replica has applied, the replicated commit records
	// held by a decide-ring replica (in arrival order), and the nodes
	// whose ordered removal this decide-ring replica has witnessed. They
	// ride snapshots and the WAL so a recovered or freshly synced replica
	// reaches the same in-doubt transaction verdicts as everyone else.
	removals  uint64
	decisions []uint64
	removed   []core.NodeID
}

// txnStage is one staged (prepared but unresolved) cross-shard
// transaction on a shard replica: the writes it will apply at commit.
// by/epoch identify the coordinating node and the routing epoch it
// pinned, so the ordered removal of a dead coordinator aborts the stage.
type txnStage struct {
	id    uint64
	by    core.NodeID
	epoch uint64
	kv    map[string][]byte
	dels  []string
	// decideRing is the ring carrying this transaction's replicated
	// commit record; -1 means the prepare predates commit records (or
	// they are disabled) and the stage dies with its coordinator.
	decideRing int
}

// stagedInstall is a target replica's handoff state: installs are staged
// aside and only merged into the live map when the ordered flip applies,
// so an aborted handoff leaves the replica untouched. by/epoch identify
// the coordinating node and the target routing epoch, so the ordered
// removal of a dead coordinator can roll the stage back.
type stagedInstall struct {
	id    uint64
	by    core.NodeID
	epoch uint64
	kv    map[string][]byte
	locks map[string]*lockState
}

func encodeSnapshot(target core.NodeID, st snapshotState) []byte {
	b := header(opSnapshot)
	b = binary.LittleEndian.AppendUint32(b, uint32(target))
	body := encodeSnapshotState(st)
	return appendBytes(b, body)
}

func encodeSnapshotState(st snapshotState) []byte {
	var b []byte
	b = appendKV(b, st.kv)
	b = appendLocks(b, st.locks)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.applied)))
	for node, seq := range st.applied {
		b = binary.LittleEndian.AppendUint32(b, uint32(node))
		b = binary.LittleEndian.AppendUint64(b, seq)
	}
	// Resharding extension (optional trailer).
	b = binary.LittleEndian.AppendUint64(b, st.frozenID)
	b = binary.LittleEndian.AppendUint32(b, uint32(st.frozenBy))
	b = binary.LittleEndian.AppendUint64(b, st.frozenEpoch)
	b = appendRanges(b, st.frozen)
	b = appendRanges(b, st.retired)
	if st.staged == nil {
		b = append(b, 0)
	} else {
		b = append(b, 1)
		b = binary.LittleEndian.AppendUint64(b, st.staged.id)
		b = binary.LittleEndian.AppendUint32(b, uint32(st.staged.by))
		b = binary.LittleEndian.AppendUint64(b, st.staged.epoch)
		b = appendKV(b, st.staged.kv)
		b = appendLocks(b, st.staged.locks)
	}
	// Transaction extension (second optional trailer).
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.txns)))
	for _, tx := range sortedTxnStages(st.txns) {
		b = binary.LittleEndian.AppendUint64(b, tx.id)
		b = binary.LittleEndian.AppendUint32(b, uint32(tx.by))
		b = binary.LittleEndian.AppendUint64(b, tx.epoch)
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(tx.decideRing)))
		b = appendKV(b, tx.kv)
		b = appendStrList(b, tx.dels)
	}
	b = binary.LittleEndian.AppendUint64(b, st.snapID)
	b = binary.LittleEndian.AppendUint32(b, uint32(st.snapBy))
	// Durability extension (third optional trailer).
	b = binary.LittleEndian.AppendUint64(b, st.removals)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.decisions)))
	for _, id := range st.decisions {
		b = binary.LittleEndian.AppendUint64(b, id)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(st.removed)))
	for _, n := range st.removed {
		b = binary.LittleEndian.AppendUint32(b, uint32(n))
	}
	return b
}

// sortedTxnStages orders staged transactions by id for a deterministic
// snapshot encoding.
func sortedTxnStages(txns map[uint64]*txnStage) []*txnStage {
	out := make([]*txnStage, 0, len(txns))
	for _, tx := range txns {
		out = append(out, tx)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func decodeSnapshotState(p []byte) (snapshotState, error) {
	r := opReader{buf: p}
	st := snapshotState{}
	var err error
	if st.kv, err = r.readKV(); err != nil {
		return st, err
	}
	if st.locks, err = r.readLocks(); err != nil {
		return st, err
	}
	st.applied = make(map[core.NodeID]uint64)
	napp, err := r.u32()
	if err != nil {
		return st, err
	}
	for i := uint32(0); i < napp; i++ {
		node, err := r.u32()
		if err != nil {
			return st, err
		}
		seq, err := r.u64()
		if err != nil {
			return st, err
		}
		st.applied[wire.NodeID(node)] = seq
	}
	// Resharding extension: absent in snapshots from older builds.
	if len(r.buf) == 0 {
		return st, nil
	}
	if st.frozenID, err = r.u64(); err != nil {
		return st, err
	}
	frozenBy, err := r.u32()
	if err != nil {
		return st, err
	}
	st.frozenBy = core.NodeID(frozenBy)
	if st.frozenEpoch, err = r.u64(); err != nil {
		return st, err
	}
	if st.frozen, err = r.readRanges(); err != nil {
		return st, err
	}
	if st.retired, err = r.readRanges(); err != nil {
		return st, err
	}
	hasStaged, err := r.u8()
	if err != nil {
		return st, err
	}
	if hasStaged == 1 {
		sg := &stagedInstall{}
		if sg.id, err = r.u64(); err != nil {
			return st, err
		}
		by, err := r.u32()
		if err != nil {
			return st, err
		}
		sg.by = core.NodeID(by)
		if sg.epoch, err = r.u64(); err != nil {
			return st, err
		}
		if sg.kv, err = r.readKV(); err != nil {
			return st, err
		}
		if sg.locks, err = r.readLocks(); err != nil {
			return st, err
		}
		st.staged = sg
	}
	// Transaction extension: absent in snapshots from older builds.
	if len(r.buf) == 0 {
		return st, nil
	}
	ntx, err := r.u32()
	if err != nil {
		return st, err
	}
	st.txns = make(map[uint64]*txnStage, ntx)
	for i := uint32(0); i < ntx; i++ {
		tx := &txnStage{}
		if tx.id, err = r.u64(); err != nil {
			return st, err
		}
		by, err := r.u32()
		if err != nil {
			return st, err
		}
		tx.by = core.NodeID(by)
		if tx.epoch, err = r.u64(); err != nil {
			return st, err
		}
		dr, err := r.u32()
		if err != nil {
			return st, err
		}
		tx.decideRing = int(int32(dr))
		if tx.kv, err = r.readKV(); err != nil {
			return st, err
		}
		if tx.dels, err = r.readStrList(); err != nil {
			return st, err
		}
		st.txns[tx.id] = tx
	}
	if st.snapID, err = r.u64(); err != nil {
		return st, err
	}
	snapBy, err := r.u32()
	if err != nil {
		return st, err
	}
	st.snapBy = core.NodeID(snapBy)
	// Durability extension: absent in snapshots from older builds.
	if len(r.buf) == 0 {
		return st, nil
	}
	if st.removals, err = r.u64(); err != nil {
		return st, err
	}
	ndec, err := r.u32()
	if err != nil {
		return st, err
	}
	for i := uint32(0); i < ndec; i++ {
		id, err := r.u64()
		if err != nil {
			return st, err
		}
		st.decisions = append(st.decisions, id)
	}
	nrem, err := r.u32()
	if err != nil {
		return st, err
	}
	for i := uint32(0); i < nrem; i++ {
		n, err := r.u32()
		if err != nil {
			return st, err
		}
		st.removed = append(st.removed, core.NodeID(n))
	}
	return st, nil
}

type opReader struct{ buf []byte }

var errShort = errors.New("dds: truncated op")

func (r *opReader) u8() (byte, error) {
	if len(r.buf) < 1 {
		return 0, errShort
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v, nil
}

func (r *opReader) readIntList() ([]int, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	out := make([]int, 0, n)
	for i := uint32(0); i < n; i++ {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		out = append(out, int(v))
	}
	return out, nil
}

func (r *opReader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, errShort
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v, nil
}

func (r *opReader) u64() (uint64, error) {
	if len(r.buf) < 8 {
		return 0, errShort
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v, nil
}

func (r *opReader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if uint32(len(r.buf)) < n {
		return nil, errShort
	}
	v := append([]byte(nil), r.buf[:n]...)
	r.buf = r.buf[n:]
	return v, nil
}

func (r *opReader) str() (string, error) {
	b, err := r.bytes()
	return string(b), err
}
