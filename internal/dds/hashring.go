package dds

import (
	"fmt"
	"sort"

	"repro/internal/hashmix"
)

// hashRing consistent-hashes strings onto shard identifiers (ring IDs).
// Each shard owns `replicas` virtual points on a 64-bit circle; a key maps
// to the shard owning the first point at or clockwise after the key's
// hash. Virtual points keep the keyspace split near-uniform, and — unlike
// a bare hash-mod-S — adding or removing one shard only moves the keys
// adjacent to that shard's points. The elastic-resharding handoff relies
// on that: moved(old, new) computes exactly the hash ranges that change
// owner between two routing epochs, and only those ranges are frozen and
// migrated.
//
// Shard identifiers are the sharded runtime's ring IDs. They need not be
// contiguous: removing ring 1 from {0,1,2} leaves a ring over {0,2} whose
// remaining points are untouched.
type hashRing struct {
	points []ringPoint // sorted by hash
	ids    []int       // shard ids, sorted ascending
}

type ringPoint struct {
	hash  uint64
	shard int
}

// defaultReplicas is the virtual-point count per shard. 64 points keep the
// max/min keyspace share within ~2x for small shard counts, plenty for a
// load split across token rings.
const defaultReplicas = 64

// newHashRing builds a ring over the contiguous shard ids 0..shards-1,
// the static split a fixed-size deployment uses.
func newHashRing(shards, replicas int) *hashRing {
	if shards < 1 {
		shards = 1
	}
	ids := make([]int, shards)
	for i := range ids {
		ids[i] = i
	}
	return newHashRingFor(ids, replicas)
}

// newHashRingFor builds a ring over an explicit shard id set (one id per
// runtime ring). The ids are deduplicated and sorted; point placement
// depends only on the id value, so two epochs sharing an id share that
// shard's points exactly.
func newHashRingFor(ids []int, replicas int) *hashRing {
	if replicas < 1 {
		replicas = defaultReplicas
	}
	uniq := make(map[int]bool, len(ids))
	var sorted []int
	for _, id := range ids {
		if !uniq[id] {
			uniq[id] = true
			sorted = append(sorted, id)
		}
	}
	sort.Ints(sorted)
	if len(sorted) == 0 {
		sorted = []int{0}
	}
	h := &hashRing{ids: sorted, points: make([]ringPoint, 0, len(sorted)*replicas)}
	for _, s := range sorted {
		for r := 0; r < replicas; r++ {
			h.points = append(h.points, ringPoint{
				hash:  fnv64a(fmt.Sprintf("shard-%d#%d", s, r)),
				shard: s,
			})
		}
	}
	sort.Slice(h.points, func(i, j int) bool { return h.points[i].hash < h.points[j].hash })
	return h
}

// shardIDs returns the shard ids, sorted ascending.
func (h *hashRing) shardIDs() []int { return append([]int(nil), h.ids...) }

// hasID reports whether the shard id is part of the ring.
func (h *hashRing) hasID(id int) bool {
	for _, v := range h.ids {
		if v == id {
			return true
		}
	}
	return false
}

// lookup returns the shard owning the key.
func (h *hashRing) lookup(key string) int {
	if len(h.ids) == 1 {
		return h.ids[0]
	}
	return h.owner(fnv64a(key))
}

// owner returns the shard owning a point of the hash circle.
func (h *hashRing) owner(v uint64) int {
	i := sort.Search(len(h.points), func(i int) bool { return h.points[i].hash >= v })
	if i == len(h.points) {
		i = 0 // wrap around the circle
	}
	return h.points[i].shard
}

// keyRange is one contiguous slice of the hash circle changing owner
// between two routing epochs. Bounds are inclusive; lo > hi means the
// range wraps through the top of the 64-bit circle.
type keyRange struct {
	lo, hi uint64
	// from and to are the shard ids owning the range in the old and new
	// epoch respectively.
	from, to int
}

// contains reports whether the hash lies inside the range.
func (r keyRange) contains(v uint64) bool {
	if r.lo <= r.hi {
		return v >= r.lo && v <= r.hi
	}
	return v >= r.lo || v <= r.hi
}

// rangesContain reports whether any range contains the hash.
func rangesContain(rs []keyRange, v uint64) bool {
	for _, r := range rs {
		if r.contains(v) {
			return true
		}
	}
	return false
}

// moved computes the exact hash ranges whose owner differs between the old
// and new rings, the diff the ordered handoff freezes and migrates. The
// owner of any hash is constant between two adjacent virtual points, so
// the diff walks the union of both rings' points: each segment (prev,
// point] has one old owner and one new owner, and the segment is emitted
// iff they differ.
func moved(old, new *hashRing) []keyRange {
	union := make([]uint64, 0, len(old.points)+len(new.points))
	for _, p := range old.points {
		union = append(union, p.hash)
	}
	for _, p := range new.points {
		union = append(union, p.hash)
	}
	sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
	// Deduplicate in place.
	uniq := union[:0]
	for i, v := range union {
		if i == 0 || v != union[i-1] {
			uniq = append(uniq, v)
		}
	}
	union = uniq
	if len(union) == 0 {
		return nil
	}
	var out []keyRange
	for i, hi := range union {
		var lo uint64
		if i == 0 {
			// The wrap segment: everything clockwise of the last point
			// up to and including the first point.
			lo = union[len(union)-1] + 1
		} else {
			lo = union[i-1] + 1
		}
		from, to := old.owner(hi), new.owner(hi)
		if from != to {
			out = append(out, keyRange{lo: lo, hi: hi, from: from, to: to})
		}
	}
	return out
}

// complementRanges returns the slices of the hash circle the shard does
// NOT own under the ring, adjacent segments coalesced. A replica keeps
// this as its "retired" set: ordered writes for keys it does not own are
// rejected, which makes a write routed under a stale epoch fail with a
// retryable error instead of resurrecting state the handoff moved away.
func complementRanges(h *hashRing, shard int) []keyRange {
	if len(h.ids) == 1 && h.ids[0] == shard {
		return nil
	}
	owned := false
	for _, id := range h.ids {
		if id == shard {
			owned = true
			break
		}
	}
	if !owned {
		// The shard owns nothing (for example a freshly spawned target
		// ring before its flip): the whole circle is retired.
		return []keyRange{{lo: 0, hi: ^uint64(0)}}
	}
	var out []keyRange
	pts := h.points
	for i, p := range pts {
		if p.shard == shard {
			continue
		}
		var lo uint64
		if i == 0 {
			lo = pts[len(pts)-1].hash + 1
		} else {
			lo = pts[i-1].hash + 1
		}
		// Coalesce with the previous segment when contiguous.
		if n := len(out); n > 0 && out[n-1].hi+1 == lo {
			out[n-1].hi = p.hash
			continue
		}
		out = append(out, keyRange{lo: lo, hi: p.hash, from: shard, to: p.shard})
	}
	// The first and last segments may meet across the wrap point.
	if n := len(out); n > 1 && out[n-1].hi+1 == out[0].lo {
		out[0].lo = out[n-1].lo
		out = out[:n-1]
	}
	return out
}

// fnv64a is the 64-bit FNV-1a hash with an avalanche finalizer. Bare
// FNV-1a clusters badly on the short, near-identical strings a keyspace is
// made of (measured: a 4-shard ring gave one shard 5% and another 39% of
// the keys); the finalizer restores a near-uniform split.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return hashmix.Mix(h)
}
