package dds

import (
	"fmt"
	"sort"

	"repro/internal/hashmix"
)

// hashRing consistent-hashes strings onto shard indices. Each shard owns
// `replicas` virtual points on a 64-bit circle; a key maps to the shard
// owning the first point at or clockwise after the key's hash. Virtual
// points keep the keyspace split near-uniform, and — unlike a bare
// hash-mod-S — adding or removing one shard only moves the keys adjacent
// to that shard's points, which is what the planned shard-rebalancing work
// relies on.
type hashRing struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// defaultReplicas is the virtual-point count per shard. 64 points keep the
// max/min keyspace share within ~2x for small shard counts, plenty for a
// load split across token rings.
const defaultReplicas = 64

func newHashRing(shards, replicas int) *hashRing {
	if shards < 1 {
		shards = 1
	}
	if replicas < 1 {
		replicas = defaultReplicas
	}
	h := &hashRing{shards: shards, points: make([]ringPoint, 0, shards*replicas)}
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			h.points = append(h.points, ringPoint{
				hash:  fnv64a(fmt.Sprintf("shard-%d#%d", s, r)),
				shard: s,
			})
		}
	}
	sort.Slice(h.points, func(i, j int) bool { return h.points[i].hash < h.points[j].hash })
	return h
}

// lookup returns the shard owning the key.
func (h *hashRing) lookup(key string) int {
	if h.shards == 1 {
		return 0
	}
	v := fnv64a(key)
	i := sort.Search(len(h.points), func(i int) bool { return h.points[i].hash >= v })
	if i == len(h.points) {
		i = 0 // wrap around the circle
	}
	return h.points[i].shard
}

// fnv64a is the 64-bit FNV-1a hash with an avalanche finalizer. Bare
// FNV-1a clusters badly on the short, near-identical strings a keyspace is
// made of (measured: a 4-shard ring gave one shard 5% and another 39% of
// the keys); the finalizer restores a near-uniform split.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return hashmix.Mix(h)
}
