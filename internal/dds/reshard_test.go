package dds

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// growAll calls AddRing on every runtime concurrently (the admin fan-out
// a real deployment performs) and returns the new ring id.
func growAll(t *testing.T, sc *shardedCluster, timeout time.Duration) core.RingID {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var wg sync.WaitGroup
	ids := make(map[core.NodeID]core.RingID)
	errs := make(map[core.NodeID]error)
	var mu sync.Mutex
	for _, id := range sc.g.IDs {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			rid, err := sc.g.Runtimes[id].AddRing(ctx)
			mu.Lock()
			ids[id], errs[id] = rid, err
			mu.Unlock()
		}()
	}
	wg.Wait()
	var ring core.RingID
	for _, id := range sc.g.IDs {
		if errs[id] != nil {
			t.Fatalf("AddRing on node %v: %v", id, errs[id])
		}
		ring = ids[id]
	}
	for _, id := range sc.g.IDs {
		if ids[id] != ring {
			t.Fatalf("nodes disagree on the new ring id: %v", ids)
		}
	}
	return ring
}

// shrinkAll calls RemoveRing on every runtime concurrently.
func shrinkAll(t *testing.T, sc *shardedCluster, ring core.RingID, timeout time.Duration) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(map[core.NodeID]error)
	var mu sync.Mutex
	for _, id := range sc.g.IDs {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := sc.g.Runtimes[id].RemoveRing(ctx, ring)
			mu.Lock()
			errs[id] = err
			mu.Unlock()
		}()
	}
	wg.Wait()
	for _, id := range sc.g.IDs {
		if errs[id] != nil {
			t.Fatalf("RemoveRing(%v) on node %v: %v", ring, id, errs[id])
		}
	}
}

// TestGrowUnderLiveTraffic is the flagship elastic-resharding scenario: a
// 2-ring cluster grows to 3 rings while Map and Lock traffic flows.
// It proves the acceptance properties:
//   - every key routed by the new epoch serves reads reflecting all
//     pre-handoff writes,
//   - writes into the frozen (moving) slice fail only with the retryable
//     ErrResharding during the handoff window,
//   - keys outside the moving slice never pause,
//   - a held lock in the moving slice migrates with its owner.
func TestGrowUnderLiveTraffic(t *testing.T) {
	sc := startSharded(t, 3, 2)
	ctx := context.Background()

	// Split a seed corpus by what the 2->3 diff will move.
	oldRing := newHashRingFor([]int{0, 1}, defaultReplicas)
	grown := newHashRingFor([]int{0, 1, 2}, defaultReplicas)
	var movedKeys, stableKeys []string
	for i := 0; len(movedKeys) < 24 || len(stableKeys) < 24; i++ {
		k := fmt.Sprintf("seed-%d", i)
		if oldRing.lookup(k) != grown.lookup(k) {
			movedKeys = append(movedKeys, k)
		} else {
			stableKeys = append(stableKeys, k)
		}
	}
	for _, k := range append(append([]string(nil), movedKeys...), stableKeys...) {
		if err := sc.svcs[1].Set(ctx, k, []byte(k+"-v")); err != nil {
			t.Fatal(err)
		}
	}

	// A lock in the moving slice, held across the whole handoff.
	var movedLock string
	for i := 0; ; i++ {
		movedLock = fmt.Sprintf("seed-lock-%d", i)
		if oldRing.lookup(movedLock) != grown.lookup(movedLock) {
			break
		}
	}
	if err := sc.svcs[1].Lock(ctx, movedLock); err != nil {
		t.Fatal(err)
	}

	// Live traffic. The stable writer must never fail; the moved writer
	// may only ever see ErrResharding.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var rejects, stableFails atomic.Int64
	var badErr atomic.Value
	for n := 0; n < 3; n++ {
		node := sc.g.IDs[n]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := movedKeys[i%len(movedKeys)]
				wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
				err := sc.svcs[node].Set(wctx, k, []byte(k+"-v"))
				cancel()
				if errors.Is(err, ErrResharding) {
					rejects.Add(1)
				} else if err != nil {
					badErr.Store(fmt.Errorf("moved-key write on node %v: %w", node, err))
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := stableKeys[i%len(stableKeys)]
				wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
				err := sc.svcs[node].Set(wctx, k, []byte(k+"-v"))
				cancel()
				if err != nil {
					stableFails.Add(1)
					badErr.Store(fmt.Errorf("stable-key write on node %v paused/failed: %w", node, err))
					return
				}
			}
		}()
	}

	newRing := growAll(t, sc, 60*time.Second)
	if newRing != 2 {
		t.Fatalf("new ring id = %v, want 2", newRing)
	}
	// Let the writers run a beat on the new epoch, then stop them.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if e := badErr.Load(); e != nil {
		t.Fatal(e)
	}
	if stableFails.Load() != 0 {
		t.Fatalf("%d non-moving writes failed during the handoff", stableFails.Load())
	}
	if rejects.Load() == 0 {
		t.Fatal("no write ever observed ErrResharding during the handoff window")
	}

	// Every node routes by the new epoch.
	for _, id := range sc.g.IDs {
		if e := sc.svcs[id].Epoch(); e != 2 {
			t.Fatalf("node %v epoch = %d, want 2", id, e)
		}
		view := sc.g.Runtimes[id].Routing()
		if view.Epoch != 2 || len(view.Rings) != 3 {
			t.Fatalf("node %v routing = %v", id, view)
		}
	}

	// Pre-handoff writes all readable through the new epoch, everywhere,
	// and each key lives on exactly its owning shard.
	someOnNew := false
	for _, k := range append(append([]string(nil), movedKeys...), stableKeys...) {
		shard := sc.svcs[1].ShardFor(k)
		if shard == 2 {
			someOnNew = true
		}
		for _, id := range sc.g.IDs {
			sc.waitKey(t, id, k, k+"-v", 10*time.Second)
			if got := sc.svcs[id].ShardFor(k); got != shard {
				t.Fatalf("node %v routes %q to shard %d, node 1 to %d", id, k, got, shard)
			}
		}
	}
	if !someOnNew {
		t.Fatal("no seed key moved to the new shard")
	}
	waitSingleHome(t, sc, append(append([]string(nil), movedKeys...), stableKeys...))

	// The held moved lock migrated with its owner: node 1 still holds it
	// on the new shard, node 2 blocks until node 1 releases.
	if owner, ok := sc.svcs[2].Holder(movedLock); !ok || owner != 1 {
		t.Fatalf("holder(%s) after handoff = %v, %v, want node 1", movedLock, owner, ok)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- sc.svcs[2].Lock(ctx, movedLock) }()
	select {
	case err := <-acquired:
		t.Fatalf("node 2 acquired migrated lock while node 1 held it (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := unlockRetry(ctx, sc.svcs[1], movedLock); err != nil {
		t.Fatal(err)
	}
	if err := <-acquired; err != nil {
		t.Fatal(err)
	}
	if err := unlockRetry(ctx, sc.svcs[2], movedLock); err != nil {
		t.Fatal(err)
	}

	// The handoff pause was recorded on the coordinator.
	if c := sc.g.Runtimes[1].Stats().Histogram(stats.HistReshardPause).Summary(); c.Count != 1 {
		t.Fatalf("reshard pause histogram count = %d, want 1", c.Count)
	}
}

// waitSingleHome asserts each key converges to exactly one shard replica
// on every node (the source's copy was purged after the flip).
func waitSingleHome(t *testing.T, sc *shardedCluster, keys []string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for _, k := range keys {
		for _, id := range sc.g.IDs {
			for {
				svc := sc.svcs[id]
				view := sc.g.Runtimes[id].Routing()
				homes := 0
				for _, rid := range view.Rings {
					if sh := svc.Shard(int(rid)); sh != nil {
						if _, ok := sh.Get(k); ok {
							homes++
						}
					}
				}
				if homes == 1 {
					break
				}
				if time.Now().After(deadline) {
					t.Fatalf("node %v: key %q present on %d shards, want 1", id, k, homes)
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
}

func unlockRetry(ctx context.Context, s *Sharded, name string) error {
	for {
		err := s.Unlock(context.Background(), name)
		if !errors.Is(err, ErrResharding) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestRemoveRingHandsKeyspaceBack shrinks 3 rings to 2 and checks the
// removed ring's slice redistributes to the survivors with nothing lost.
func TestRemoveRingHandsKeyspaceBack(t *testing.T) {
	sc := startSharded(t, 2, 3)
	ctx := context.Background()
	keys := make([]string, 48)
	for i := range keys {
		keys[i] = fmt.Sprintf("shrink-%d", i)
		if err := sc.svcs[1].Set(ctx, keys[i], []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	shrinkAll(t, sc, 2, 60*time.Second)
	for _, id := range sc.g.IDs {
		rt := sc.g.Runtimes[id]
		view := rt.Routing()
		if view.Epoch != 2 || fmt.Sprint(view.Rings) != "[r0 r1]" {
			t.Fatalf("node %v routing = %v, want epoch 2 rings [r0 r1]", id, view)
		}
		if rt.Node(2) != nil {
			t.Fatalf("node %v still hosts ring 2", id)
		}
		for _, k := range keys {
			if s := sc.svcs[id].ShardFor(k); s == 2 {
				t.Fatalf("node %v still routes %q to removed shard", id, k)
			}
			sc.waitKey(t, id, k, "v", 10*time.Second)
		}
	}
	waitSingleHome(t, sc, keys)
}

// TestReshardAbortStaysOnOldEpoch drives the coordinator against a target
// shard that does not exist: the handoff must freeze, fail to install,
// multicast the ordered abort, and leave every node on the old epoch with
// the keyspace unfrozen and intact.
func TestReshardAbortStaysOnOldEpoch(t *testing.T) {
	sc := startSharded(t, 2, 2)
	ctx := context.Background()
	keys := make([]string, 32)
	for i := range keys {
		keys[i] = fmt.Sprintf("abort-%d", i)
		if err := sc.svcs[1].Set(ctx, keys[i], []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	old := sc.g.Runtimes[1].Routing()
	phantom := core.RoutingView{Epoch: old.Epoch + 1, Rings: append(append([]core.RingID(nil), old.Rings...), 9)}
	rctx, cancel := context.WithTimeout(ctx, 20*time.Second)
	defer cancel()
	err := sc.svcs[1].Reshard(rctx, old, phantom)
	if !errors.Is(err, core.ErrReshardAborted) {
		t.Fatalf("Reshard against phantom ring = %v, want ErrReshardAborted", err)
	}
	// Both nodes stay on the old epoch and every write works again once
	// the ordered abort unfreezes the slices.
	for _, id := range sc.g.IDs {
		if e := sc.svcs[id].Epoch(); e != old.Epoch {
			t.Fatalf("node %v epoch = %d after abort, want %d", id, e, old.Epoch)
		}
		if v := sc.g.Runtimes[id].Routing(); v.Epoch != old.Epoch {
			t.Fatalf("node %v routing epoch = %d after abort", id, v.Epoch)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for _, k := range keys {
		for {
			wctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			err := sc.svcs[2].Set(wctx, k, []byte("v2"))
			cancel()
			if err == nil {
				break
			}
			if !errors.Is(err, ErrResharding) || time.Now().After(deadline) {
				t.Fatalf("write of %q after abort: %v", k, err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if n := sc.g.Runtimes[1].Stats().Counter(stats.MetricReshardAborts).Load(); n == 0 {
		t.Fatal("abort not counted on coordinator")
	}
}

// TestCoordinatorDeathUnfreezes covers the participant-side abort: a
// coordinator freezes a slice and dies before the handoff can flip. The
// ordered removal of the dead coordinator must unfreeze the slice on the
// survivors, leaving them on the old epoch with the data intact.
func TestCoordinatorDeathUnfreezes(t *testing.T) {
	sc := startSharded(t, 3, 2)
	ctx := context.Background()

	// Pick a key owned by shard 0 and seed it.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("cd-%d", i)
		if sc.svcs[2].ShardFor(key) == 0 {
			break
		}
	}
	if err := sc.svcs[2].Set(ctx, key, []byte("before")); err != nil {
		t.Fatal(err)
	}

	// Node 1 plays a coordinator that froze shard 0's whole keyspace
	// (reshard 999 targeting epoch 99) and then crashed before
	// installing anything.
	ranges := []keyRange{{lo: 0, hi: ^uint64(0), from: 0, to: 1}}
	if err := sc.svcs[1].Shard(0).node.Multicast(encodeFreeze(999, 99, ranges, 0)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		wctx, cancel := context.WithTimeout(ctx, time.Second)
		err := sc.svcs[2].Set(wctx, key, []byte("during"))
		cancel()
		if errors.Is(err, ErrResharding) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("freeze never took effect on node 2 (last err: %v)", err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Hard-kill the coordinator. Its ordered removal from ring 0 must
	// abort the orphaned freeze on the survivors.
	sc.g.Runtimes[1].Close()
	deadline = time.Now().Add(20 * time.Second)
	for {
		wctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		err := sc.svcs[2].Set(wctx, key, []byte("after"))
		cancel()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slice still frozen after coordinator death: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, id := range []core.NodeID{2, 3} {
		if e := sc.svcs[id].Epoch(); e != 1 {
			t.Fatalf("node %v epoch = %d after orphaned handoff, want 1", id, e)
		}
	}
	sc.waitKey(t, 3, key, "after", 10*time.Second)
}

// TestRingLifecycleChurn races AddRing/AddRing/RemoveRing against
// concurrent Map and Lock traffic and asserts no operation is lost,
// duplicated, or reordered per key across the epoch flips.
func TestRingLifecycleChurn(t *testing.T) {
	sc := startSharded(t, 3, 2)
	ctx := context.Background()
	const nkeys = 48
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("churn-%d", i)
	}

	// Per-key order across the epoch flips: values carry a strictly
	// increasing sequence per key, and on any single node the ROUTED
	// read of a key must never go backwards — the target serves a key
	// only after it holds everything the source ordered before the
	// freeze. (Watcher callbacks are per-shard streams and may
	// interleave across a handoff; routed reads are the per-key
	// contract.)
	var wmu sync.Mutex
	seen := make(map[string]int) // "node/key" -> highest sequence read
	var monotonicViolation error
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	for _, id := range sc.g.IDs {
		id := id
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stopReaders:
					return
				default:
				}
				key := keys[i%nkeys]
				val, ok := sc.svcs[id].GetLocal(key)
				if !ok {
					continue
				}
				n, err := strconv.Atoi(string(val))
				if err != nil {
					continue
				}
				sk := fmt.Sprintf("%v/%s", id, key)
				wmu.Lock()
				if n < seen[sk] && monotonicViolation == nil {
					monotonicViolation = fmt.Errorf("read of %s went backwards: %d after %d", sk, n, seen[sk])
				}
				if n > seen[sk] {
					seen[sk] = n
				}
				wmu.Unlock()
			}
		}()
	}

	// Three writers (one per node), each owning a disjoint key slice so
	// per-key sequences have a single producer. Writes retry on
	// ErrResharding — the contract during a handoff window.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	lastWritten := make([]atomic.Int64, nkeys)
	var writerErr atomic.Value
	for w := 0; w < 3; w++ {
		w := w
		node := sc.g.IDs[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			seq := 0
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ki := (i*3 + w) % nkeys // writer w owns keys congruent to w mod 3
				seq++
				val := []byte(strconv.Itoa(seq))
				for {
					wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
					err := sc.svcs[node].Set(wctx, keys[ki], val)
					cancel()
					if err == nil {
						lastWritten[ki].Store(int64(seq))
						break
					}
					if !errors.Is(err, ErrResharding) {
						writerErr.Store(fmt.Errorf("writer %d key %s: %w", w, keys[ki], err))
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	// Lock traffic across the churn: repeated acquire/release of a few
	// names, retrying through handoff windows.
	var lockErr atomic.Value
	for w := 0; w < 2; w++ {
		w := w
		node := sc.g.IDs[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			name := fmt.Sprintf("churn-lock-%d", w)
			for {
				select {
				case <-stop:
					return
				default:
				}
				lctx, cancel := context.WithTimeout(ctx, 10*time.Second)
				err := sc.svcs[node].Lock(lctx, name)
				cancel()
				if errors.Is(err, ErrResharding) {
					time.Sleep(time.Millisecond)
					continue
				}
				if err != nil {
					lockErr.Store(fmt.Errorf("lock %s on node %v: %w", name, node, err))
					return
				}
				if err := unlockRetry(ctx, sc.svcs[node], name); err != nil {
					lockErr.Store(fmt.Errorf("unlock %s on node %v: %w", name, node, err))
					return
				}
			}
		}()
	}

	// The churn: grow 2->3, grow 3->4, shrink back to 3 — all under load.
	r3 := growAll(t, sc, 60*time.Second)
	time.Sleep(150 * time.Millisecond)
	r4 := growAll(t, sc, 60*time.Second)
	time.Sleep(150 * time.Millisecond)
	shrinkAll(t, sc, r3, 60*time.Second)
	time.Sleep(150 * time.Millisecond)

	close(stop)
	wg.Wait()
	close(stopReaders)
	readers.Wait()
	if e := writerErr.Load(); e != nil {
		t.Fatal(e)
	}
	if e := lockErr.Load(); e != nil {
		t.Fatal(e)
	}

	// Final routing: epoch 4 (three flips), rings {0,1,r4}.
	for _, id := range sc.g.IDs {
		view := sc.g.Runtimes[id].Routing()
		if view.Epoch != 4 {
			t.Fatalf("node %v epoch = %d, want 4", id, view.Epoch)
		}
		if view.Has(r3) || !view.Has(r4) || len(view.Rings) != 3 {
			t.Fatalf("node %v rings = %v, want {0,1,%v}", id, view.Rings, r4)
		}
	}

	// Nothing lost: every key converges everywhere to its last written
	// value; nothing duplicated: exactly one shard holds each key.
	var written []string
	for i, k := range keys {
		if n := lastWritten[i].Load(); n > 0 {
			written = append(written, k)
			for _, id := range sc.g.IDs {
				sc.waitKey(t, id, k, strconv.FormatInt(n, 10), 15*time.Second)
			}
		}
	}
	if len(written) < nkeys/2 {
		t.Fatalf("only %d of %d keys were ever written; churn starved the writers", len(written), nkeys)
	}
	waitSingleHome(t, sc, written)

	// Nothing reordered: no node ever read a per-key sequence going
	// backwards across the epoch flips.
	wmu.Lock()
	defer wmu.Unlock()
	if monotonicViolation != nil {
		t.Fatal(monotonicViolation)
	}
}
