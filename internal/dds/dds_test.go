package dds

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/wire"
)

// ddsCluster builds a session cluster with a data-service replica per node.
type ddsCluster struct {
	tc   *core.TestCluster
	svcs map[core.NodeID]*Service
}

func startDDS(t *testing.T, n int) *ddsCluster {
	t.Helper()
	tc, err := core.NewTestCluster(core.ClusterOptions{N: n, DeferStart: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tc.Close)
	dc := &ddsCluster{tc: tc, svcs: make(map[core.NodeID]*Service)}
	for id, node := range tc.Nodes {
		dc.svcs[id] = New(node)
	}
	tc.StartAll()
	if err := tc.WaitAssembled(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	return dc
}

func (dc *ddsCluster) waitKey(t *testing.T, id core.NodeID, key, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if v, ok := dc.svcs[id].Get(key); ok && string(v) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	v, _ := dc.svcs[id].Get(key)
	t.Fatalf("node %v key %q = %q, want %q", id, key, v, want)
}

func TestReplicatedSetVisibleEverywhere(t *testing.T) {
	dc := startDDS(t, 3)
	ctx := context.Background()
	if err := dc.svcs[1].Set(ctx, "color", []byte("blue")); err != nil {
		t.Fatal(err)
	}
	for _, id := range dc.tc.IDs {
		dc.waitKey(t, id, "color", "blue", 5*time.Second)
	}
}

func TestReadYourWrites(t *testing.T) {
	dc := startDDS(t, 3)
	if err := dc.svcs[2].Set(context.Background(), "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Set returns only after local apply.
	if v, ok := dc.svcs[2].Get("k"); !ok || string(v) != "v" {
		t.Fatalf("read-your-writes violated: %q %v", v, ok)
	}
}

func TestDeleteReplicates(t *testing.T) {
	dc := startDDS(t, 3)
	ctx := context.Background()
	if err := dc.svcs[1].Set(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	for _, id := range dc.tc.IDs {
		dc.waitKey(t, id, "k", "v", 5*time.Second)
	}
	if err := dc.svcs[1].Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		gone := true
		for _, id := range dc.tc.IDs {
			if _, ok := dc.svcs[id].Get("k"); ok {
				gone = false
			}
		}
		if gone {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("delete did not replicate")
}

func TestLastWriterWinsConsistency(t *testing.T) {
	dc := startDDS(t, 4)
	ctx := context.Background()
	var wg sync.WaitGroup
	for _, id := range dc.tc.IDs {
		wg.Add(1)
		go func(id core.NodeID) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if err := dc.svcs[id].Set(ctx, "contended", []byte(fmt.Sprintf("%v-%d", id, i))); err != nil {
					t.Error(err)
				}
			}
		}(id)
	}
	wg.Wait()
	time.Sleep(200 * time.Millisecond) // let the last write circulate
	ref, ok := dc.svcs[1].Get("contended")
	if !ok {
		t.Fatal("key missing after contention")
	}
	for _, id := range dc.tc.IDs {
		got, _ := dc.svcs[id].Get("contended")
		if string(got) != string(ref) {
			t.Fatalf("replicas diverge: node %v has %q, node 1 has %q", id, got, ref)
		}
	}
}

func TestLockMutualExclusion(t *testing.T) {
	dc := startDDS(t, 3)
	var mu sync.Mutex
	inCS, maxCS := 0, 0
	var wg sync.WaitGroup
	for _, id := range dc.tc.IDs {
		wg.Add(1)
		go func(id core.NodeID) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				if err := dc.svcs[id].Lock(ctx, "L"); err != nil {
					cancel()
					t.Errorf("node %v: %v", id, err)
					return
				}
				mu.Lock()
				inCS++
				if inCS > maxCS {
					maxCS = inCS
				}
				mu.Unlock()
				time.Sleep(time.Millisecond)
				mu.Lock()
				inCS--
				mu.Unlock()
				if err := dc.svcs[id].Unlock(ctx, "L"); err != nil {
					t.Errorf("node %v unlock: %v", id, err)
				}
				cancel()
			}
		}(id)
	}
	wg.Wait()
	if maxCS != 1 {
		t.Fatalf("max concurrent holders = %d, want 1", maxCS)
	}
}

func TestLockQueueFIFOAcrossNodes(t *testing.T) {
	dc := startDDS(t, 2)
	ctx := context.Background()
	if err := dc.svcs[1].Lock(ctx, "q"); err != nil {
		t.Fatal(err)
	}
	got := make(chan core.NodeID, 1)
	go func() {
		if err := dc.svcs[2].Lock(ctx, "q"); err == nil {
			got <- 2
		}
	}()
	time.Sleep(50 * time.Millisecond)
	select {
	case <-got:
		t.Fatal("lock granted while held")
	default:
	}
	if err := dc.svcs[1].Unlock(context.Background(), "q"); err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-got:
		if id != 2 {
			t.Fatalf("granted to %v", id)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued waiter never granted")
	}
	if err := dc.svcs[2].Unlock(context.Background(), "q"); err != nil {
		t.Fatal(err)
	}
}

func TestUnlockWithoutHoldingFails(t *testing.T) {
	dc := startDDS(t, 2)
	if err := dc.svcs[1].Unlock(context.Background(), "nope"); err != ErrNotHolder {
		t.Fatalf("err = %v, want ErrNotHolder", err)
	}
}

func TestLockCancellationWithdrawsRequest(t *testing.T) {
	dc := startDDS(t, 2)
	ctx := context.Background()
	if err := dc.svcs[1].Lock(ctx, "c"); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if err := dc.svcs[2].Lock(ctx2, "c"); err == nil {
		t.Fatal("lock acquired while held")
	}
	// After cancellation, releasing must leave the lock free (the queued
	// request was withdrawn), and a fresh acquire succeeds immediately.
	if err := dc.svcs[1].Unlock(context.Background(), "c"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, held := dc.svcs[1].Holder("c"); !held {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if holder, held := dc.svcs[1].Holder("c"); held {
		t.Fatalf("lock still held by %v after release + withdrawn queue entry", holder)
	}
}

func TestDeadHolderLockReleased(t *testing.T) {
	dc := startDDS(t, 3)
	ctx := context.Background()
	if err := dc.svcs[2].Lock(ctx, "hot"); err != nil {
		t.Fatal(err)
	}
	// Node 3 queues behind node 2.
	granted := make(chan struct{})
	go func() {
		if err := dc.svcs[3].Lock(ctx, "hot"); err == nil {
			close(granted)
		}
	}()
	time.Sleep(50 * time.Millisecond)
	// Node 2 crashes while holding the lock.
	dc.tc.Net.SetNodeDown(core.Addr(2), true)
	select {
	case <-granted:
		// The ordered SysNodeRemoved released the dead node's lock and
		// promoted node 3 (§2.7).
	case <-time.After(15 * time.Second):
		t.Fatal("lock never released after holder death")
	}
}

func TestJoinerReceivesStateSnapshot(t *testing.T) {
	// Start a 3-node cluster, write state, isolate node 3 long enough to
	// be removed, write more, then heal: the rejoiner must converge to
	// the full state via the ordered snapshot.
	dc := startDDS(t, 3)
	ctx := context.Background()
	if err := dc.svcs[1].Set(ctx, "pre", []byte("1")); err != nil {
		t.Fatal(err)
	}
	dc.tc.Net.Partition([]simnet.Addr{core.Addr(1), core.Addr(2)}, []simnet.Addr{core.Addr(3)})
	if err := dc.tc.WaitMembership(10*time.Second, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := dc.svcs[1].Set(ctx, "during", []byte("2")); err != nil {
		t.Fatal(err)
	}
	dc.tc.Net.Heal()
	if err := dc.tc.WaitAssembled(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	dc.waitKey(t, 3, "pre", "1", 10*time.Second)
	dc.waitKey(t, 3, "during", "2", 10*time.Second)
	// And post-rejoin writes flow everywhere.
	if err := dc.svcs[3].Set(ctx, "post", []byte("3")); err != nil {
		t.Fatal(err)
	}
	for _, id := range dc.tc.IDs {
		dc.waitKey(t, id, "post", "3", 10*time.Second)
	}
}

func TestWatchObservesChangesInOrder(t *testing.T) {
	dc := startDDS(t, 2)
	var mu sync.Mutex
	var seen []string
	dc.svcs[2].Watch(func(key string, val []byte, deleted bool) {
		mu.Lock()
		seen = append(seen, fmt.Sprintf("%s=%s del=%v", key, val, deleted))
		mu.Unlock()
	})
	ctx := context.Background()
	dc.svcs[1].Set(ctx, "a", []byte("1"))
	dc.svcs[1].Set(ctx, "a", []byte("2"))
	dc.svcs[1].Delete(ctx, "a")
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n >= 3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"a=1 del=false", "a=2 del=false", "a= del=true"}
	if len(seen) != 3 {
		t.Fatalf("watch saw %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("watch[%d] = %q, want %q", i, seen[i], want[i])
		}
	}
}

func TestAppPassthroughPreserved(t *testing.T) {
	dc := startDDS(t, 2)
	got := make(chan string, 1)
	dc.svcs[2].SetAppHandlers(core.Handlers{
		OnDeliver: func(d core.Delivery) {
			select {
			case got <- string(d.Payload):
			default:
			}
		},
	})
	if err := dc.tc.Nodes[1].Multicast([]byte("app message")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if p != "app message" {
			t.Fatalf("passthrough payload = %q", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("app payload not passed through")
	}
}

func TestOpCodecRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		enc  []byte
		want op
	}{
		{"acquire", encodeAcquire("l1", 7), op{kind: opAcquire, key: "l1", reqID: 7}},
		{"release", encodeRelease("l2", 8), op{kind: opRelease, key: "l2", reqID: 8}},
		{"cancel", encodeCancel("l3", 9), op{kind: opCancel, key: "l3", reqID: 9}},
		{"set", encodeSet("k", []byte("v"), 10), op{kind: opSet, key: "k", val: []byte("v"), reqID: 10}},
		{"del", encodeDel("k2", 11), op{kind: opDel, key: "k2", reqID: 11}},
		{"snapreq", encodeSnapReq(), op{kind: opSnapReq}},
	}
	for _, c := range cases {
		got, ok := decodeOp(c.enc)
		if !ok {
			t.Fatalf("%s: decode failed", c.name)
		}
		if got.kind != c.want.kind || got.key != c.want.key || got.reqID != c.want.reqID || string(got.val) != string(c.want.val) {
			t.Fatalf("%s: got %+v, want %+v", c.name, got, c.want)
		}
	}
}

func TestAppPayloadNotMistakenForOp(t *testing.T) {
	for _, p := range [][]byte{nil, {}, []byte("hello"), {ddsMagic}, {ddsMagic, 99, 1}} {
		if _, ok := decodeOp(p); ok {
			t.Fatalf("payload %x decoded as dds op", p)
		}
	}
}

func TestSnapshotStateCodec(t *testing.T) {
	st := snapshotState{
		kv: map[string][]byte{"a": []byte("1"), "b": {}},
		locks: map[string]*lockState{
			"L": {owner: 3, ownerReq: 9, queue: []lockReq{{node: 1, reqID: 2}, {node: 2, reqID: 5}}},
		},
	}
	enc := encodeSnapshot(wire.NoNode, st)
	o, ok := decodeOp(enc)
	if !ok || o.kind != opSnapshot {
		t.Fatal("snapshot decode failed")
	}
	got, err := decodeSnapshotState(o.val)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.kv["a"]) != "1" || len(got.kv) != 2 {
		t.Fatalf("kv = %+v", got.kv)
	}
	l := got.locks["L"]
	if l == nil || l.owner != 3 || l.ownerReq != 9 || len(l.queue) != 2 || l.queue[1].reqID != 5 {
		t.Fatalf("locks = %+v", l)
	}
}
