// Package dds is the slice of the Raincore Distributed Data Service the
// paper describes (§2.7, §5): a distributed lock manager whose named locks
// can be held without keeping the token, and a replicated key-value map
// for cluster state (virtual IP assignments, connection tables, load
// figures).
//
// Both are replicated state machines driven by the session service's
// agreed total order: every replica applies the same operations in the
// same sequence, so no further coordination is needed. Membership changes
// arrive as ordered system messages, which lets every replica release a
// dead node's locks at the same logical instant. Joiners and merged
// groups converge through ordered snapshots (state transfer).
package dds

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rcerr"
	"repro/internal/stats"
	"repro/internal/wal"
	"repro/internal/wire"
)

// Service is one node's replica of the distributed data service.
type Service struct {
	node *core.Node
	id   core.NodeID

	mu      sync.RWMutex
	locks   map[string]*lockState
	kv      map[string][]byte
	nextReq uint64

	// rview is the lock-free read side: a COW image of kv kept in sync by
	// the ordered appliers, so Get/Keys never serialize behind token
	// applies (or each other). It also carries the apply-progress stamps
	// the consistency-moded read path keys off.
	rview readView

	// Reader wake machinery for WaitCaughtUp: appliers close waitCh (when
	// readWaiters says anyone is parked) after advancing the applied
	// vector. The atomic gate keeps the write hot path at one atomic load
	// when no reads are waiting.
	readWaiters atomic.Int32
	waitMu      sync.Mutex
	waitCh      chan struct{}

	// Per-mode read counters, resolved once at construction: the eventual
	// read path must not take the stats registry's mutex per op.
	cReadEventual *stats.Counter
	cReadSession  *stats.Counter
	cReadBounded  *stats.Counter
	cReadLin      *stats.Counter
	cReadFences   *stats.Counter
	cLeaseHits    *stats.Counter
	cSessionWaits *stats.Counter

	// Local waiters. The channels carry the outcome: nil on grant/apply,
	// ErrResharding when the ordered apply rejected the op because its
	// key was frozen mid-handoff. opWait holds a list per request:
	// concurrent Unlock calls for the same grant share the release's
	// reqID and must all observe its outcome.
	lockWait map[uint64]chan error // reqID -> granted / rejected
	opWait   map[uint64][]chan error
	pending  map[uint64]pendingAcquire

	// Elastic-resharding state. frozen marks the hash ranges this shard
	// is handing off: ordered writes into them are rejected until the
	// handoff flips or aborts. staged holds installs received as the
	// handoff's target, adopted only at the ordered flip. router links
	// back to the Sharded router when this replica is one shard of one.
	frozen   []keyRange
	frozenID uint64
	// frozenBy/frozenEpoch identify the handoff's coordinator and target
	// epoch: the ordered removal of a dead coordinator aborts the freeze
	// (deterministically — the removal is a position in this ring's
	// stream), so a coordinator crash cannot freeze the slice forever.
	frozenBy    core.NodeID
	frozenEpoch uint64
	staged      *stagedInstall
	router      *Sharded
	shardID     int
	// retired marks the hash ranges this shard does not own under its
	// latest ordered view of the routing table (initial complement, plus
	// slices frozen away, rebuilt at each flip on this ring). Ordered
	// writes into them are rejected, so a write submitted under a stale
	// routing epoch fails retryably instead of resurrecting moved state.
	retired []keyRange
	// purgeRID defers an ordered purge that arrived before this node's
	// router flipped to the handoff's epoch (the source must keep
	// serving reads of the frozen slice until then).
	purgeRID uint64
	// txns holds staged (prepared, unresolved) cross-shard transactions,
	// keyed by transaction id. A stage blocks reshard freezes and
	// snapshot captures on this shard until its ordered commit or abort
	// resolves it; the ordered removal of its dead coordinator aborts it.
	txns map[uint64]*txnStage
	// snapID/snapBy mark an active cross-shard snapshot barrier: new
	// writes and prepares are rejected (retryably) until the ordered
	// release, while staged transactions drain to keep the captured cut
	// consistent across shards.
	snapID uint64
	snapBy core.NodeID
	// postApply queues router callbacks emitted by ordered appliers;
	// they run after s.mu is released (the event loop is serial, so they
	// still run before the next ordered op applies).
	postApply []func()

	// State-transfer mode: while syncing, operations are buffered and
	// replayed after the snapshot applies.
	syncing   bool
	buffer    []bufferedOp
	syncTimer *time.Timer
	// applied records, per origin, the highest multicast sequence whose
	// dds op this replica has applied. It rides inside snapshots so a
	// receiving replica can replay exactly the buffered ops the snapshot
	// does not already include.
	applied map[core.NodeID]uint64
	// recent is a bounded log of applied ops (in apply order). When an
	// authoritative broadcast snapshot arrives at a replica that was not
	// syncing, the ops ordered between the snapshot's capture and its
	// delivery would otherwise be erased by the overwrite; the replica
	// replays them from this log. evictedHigh tracks, per origin, the
	// highest sequence ever evicted, so a replica can tell when the log
	// no longer covers a snapshot's gap and must skip it.
	recent      []bufferedOp
	evictedHigh map[core.NodeID]uint64

	// Durability (internal/wal): storage receives every ordered apply's
	// raw payload at the choke point in applyFilteredLocked; when the log
	// tail outgrows snapshotEvery bytes it is compacted into an on-disk
	// snapshot of the full replica state. recovering suppresses
	// re-appends (and router callbacks) while Recover replays that state
	// back; recovered marks a replica whose rejoin request may advertise
	// its applied vector for a delta fast-forward.
	storage       wal.Log
	snapshotEvery int64
	recovering    bool
	recovered     bool
	// pendingDurable carries one opBatch frame's deferred-ack handle
	// from walAppendLocked to applyBatchLocked within a single
	// applyFilteredLocked call (both under s.mu, same call stack). Set
	// only when the log's group commit pends (always-fsync file WAL):
	// the riders' acks then wait for the off-loop fsync instead of the
	// event loop stalling on it.
	pendingDurable *batchDurable
	// removalCount numbers this ring's ordered membership removals.
	// Removal entries ride the recent log (remEvictedHigh mirrors
	// evictedHigh for them) and the WAL, so a fast-forward delta or a
	// crash recovery replays each missed removal at its exact position
	// in the stream — a removal must precede any later op of the node's
	// next incarnation, which ring FIFO guarantees for the live path.
	removalCount   uint64
	remEvictedHigh uint64
	// decisions holds the replicated commit records (opTxnDecide) this
	// replica has applied, insertion-ordered in decisionSeq for FIFO
	// trimming: a record is only needed for the crash window between a
	// transaction's phase 1 and phase 2. A staged transaction whose
	// coordinator was removed parks in orphans until the decide ring's
	// verdict resolves it — record present means commit, coordinator
	// gone from the decide ring without one means abort.
	decisions   map[uint64]bool
	decisionSeq []uint64
	orphans     map[uint64]core.NodeID
	// live mirrors this ring's current membership (updated by the
	// ordered membership callback) — the decide verdict's "coordinator
	// is gone, and every record it could have ordered has applied here"
	// predicate leans on it.
	live map[core.NodeID]bool
	// applyHooks observe every ordered apply that changed keys, after
	// s.mu is released (post-apply discipline) — the invalidation feed
	// for read-path caches. hookKeys accumulates one apply's changes.
	applyHooks []func(ApplyEvent)
	hookKeys   []string

	// batcher coalesces concurrent Set/Delete calls into multi-op
	// opBatch frames (batch.go). Installed by New, on by default;
	// configured via SetWriteBatching before the node starts.
	batcher *writeBatcher

	watchers    []func(key string, val []byte, deleted bool)
	app         core.Handlers
	memberCount int
	lowest      core.NodeID
	closed      bool
}

type lockState struct {
	owner    core.NodeID
	ownerReq uint64
	queue    []lockReq
}

type lockReq struct {
	node  core.NodeID
	reqID uint64
}

type pendingAcquire struct {
	name  string
	reqID uint64
}

type bufferedOp struct {
	origin core.NodeID
	seq    uint64
	op     op
	// raw is the encoded payload as delivered — appended verbatim to the
	// WAL and forwarded verbatim in fast-forward deltas.
	raw []byte
	// isRemoval marks a membership-removal entry: origin is the removed
	// node and seq its index in this ring's removal sequence.
	isRemoval bool
}

// ApplyEvent describes one ordered apply on a replica: the keys whose
// values changed at position (Origin, Seq) of the shard's ring. A
// snapshot install reports the full diff of the replaced state.
type ApplyEvent struct {
	Shard  int
	Origin core.NodeID
	Seq    uint64
	Keys   []string
}

// snapshotWait bounds how long a syncing replica waits before requesting
// a snapshot explicitly (covers an admitter dying mid-transfer).
const snapshotWait = 2 * time.Second

// New attaches a data service replica to a session node. It installs the
// node's handlers; the application's own handlers go through SetAppHandlers
// so both layers observe the same ordered stream.
func New(node *core.Node) *Service {
	s := &Service{
		node:     node,
		id:       node.ID(),
		locks:    make(map[string]*lockState),
		kv:       make(map[string][]byte),
		lockWait: make(map[uint64]chan error),
		opWait:   make(map[uint64][]chan error),
		pending:  make(map[uint64]pendingAcquire),
		applied:  make(map[core.NodeID]uint64),
		txns:     make(map[uint64]*txnStage),

		evictedHigh: make(map[core.NodeID]uint64),
		decisions:   make(map[uint64]bool),
		orphans:     make(map[uint64]core.NodeID),
	}
	reg := node.Stats()
	s.cReadEventual = reg.Counter(stats.MetricReadsEventual)
	s.cReadSession = reg.Counter(stats.MetricReadsSession)
	s.cReadBounded = reg.Counter(stats.MetricReadsBounded)
	s.cReadLin = reg.Counter(stats.MetricReadsLinearizable)
	s.cReadFences = reg.Counter(stats.MetricReadFences)
	s.cLeaseHits = reg.Counter(stats.MetricReadLeaseHits)
	s.cSessionWaits = reg.Counter(stats.MetricReadSessionWaits)
	s.batcher = newWriteBatcher(s)
	node.OnTokenArrival(s.batcher.tokenKick)
	node.SetHandlers(core.Handlers{
		OnDeliver:    s.onDeliver,
		OnSys:        s.onSys,
		OnMembership: s.onMembership,
		OnShutdown:   s.onShutdown,
	})
	return s
}

// SetAppHandlers registers the application's handlers; deliveries that are
// not data-service operations pass through in order.
func (s *Service) SetAppHandlers(h core.Handlers) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.app = h
}

// Node returns the underlying session node.
func (s *Service) Node() *core.Node { return s.node }

// --- public API: locks ---

// ErrNotHolder is returned by Unlock when this node does not hold the lock.
var ErrNotHolder = errors.New("dds: not the lock holder")

// ErrResharding is returned for writes (Set, Delete, Lock, Unlock) whose
// key lies in a keyspace slice that is mid-handoff between shards. The
// error is transient and retryable (it matches rcerr.ErrRetryable): the
// slice unfreezes as soon as the handoff flips to the new routing epoch
// or aborts back to the old one. Reads never fail with it — the source
// shard keeps serving the frozen slice until the flip.
var ErrResharding = rcerr.New("dds: keyspace slice is resharding, retry")

// ErrSnapshotting is returned for writes (Set, Delete) and transaction
// prepares submitted while a cross-shard consistent snapshot holds its
// barrier on the key's shard. The error is transient and retryable (it
// matches rcerr.ErrRetryable): the barrier lifts as soon as every
// shard's capture completes (or the snapshot coordinator dies, whose
// ordered removal releases it). Reads never fail with it, and staged
// transactions still commit or abort through the barrier — that drain is
// what makes the captured cut consistent.
var ErrSnapshotting = rcerr.New("dds: cross-shard snapshot in progress, retry")

// errSnapBusy tells the snapshot coordinator a capture position still has
// staged transactions in front of it; the coordinator retries until the
// stages drain (new prepares are already rejected by the barrier).
var errSnapBusy = errors.New("dds: staged transactions draining, retry capture")

// bindRouter links the replica to the sharded router it belongs to, using
// the given shard (ring) id for handoff callbacks.
func (s *Service) bindRouter(r *Sharded, shardID int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.router = r
	s.shardID = shardID
}

// frozenContains reports whether the hash lies in a frozen (mid-handoff)
// slice of this shard, the router's submit-time fast path. The ordered
// apply path enforces the same predicate authoritatively.
func (s *Service) frozenContains(h uint64) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.frozenID != 0 && rangesContain(s.frozen, h)
}

// Lock acquires the named lock, blocking until granted or ctx is done.
// Unlike the token master-lock (§2.7), the lock is held without pinning
// the token.
func (s *Service) Lock(ctx context.Context, name string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dds: service closed")
	}
	s.nextReq++
	reqID := s.nextReq
	ch := make(chan error, 1)
	s.lockWait[reqID] = ch
	s.pending[reqID] = pendingAcquire{name: name, reqID: reqID}
	s.mu.Unlock()

	if err := s.node.Multicast(encodeAcquire(name, reqID)); err != nil {
		s.dropWaiter(reqID)
		return err
	}
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		s.dropWaiter(reqID)
		// Withdraw the queued request so it cannot be granted later.
		_ = s.node.Multicast(encodeCancel(name, reqID))
		return ctx.Err()
	}
}

func (s *Service) dropWaiter(reqID uint64) {
	s.mu.Lock()
	delete(s.lockWait, reqID)
	delete(s.pending, reqID)
	s.mu.Unlock()
}

// Unlock releases the named lock held by this node. It returns once the
// release has applied locally, so a release racing a keyspace handoff
// surfaces ErrResharding to the caller (retry after the handoff) instead
// of silently leaving the migrated lock held. It waits for the ordered
// apply at most until ctx is done; a cancelled wait does not withdraw
// the release — it is already in the ordered stream — it only stops
// waiting for the local apply.
func (s *Service) Unlock(ctx context.Context, name string) error {
	s.mu.Lock()
	st := s.locks[name]
	if st == nil || st.owner != s.id {
		s.mu.Unlock()
		return ErrNotHolder
	}
	reqID := st.ownerReq
	inFlight := len(s.opWait[reqID]) > 0
	ch := make(chan error, 1)
	s.opWait[reqID] = append(s.opWait[reqID], ch)
	s.mu.Unlock()
	if !inFlight {
		// First caller multicasts; later concurrent Unlocks share the
		// same release's outcome instead of duplicating the op.
		if err := s.node.Multicast(encodeRelease(name, reqID)); err != nil {
			s.removeOpWaiter(reqID, ch)
			return err
		}
	}
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		s.removeOpWaiter(reqID, ch)
		return ctx.Err()
	}
}

// removeOpWaiter drops one waiter channel after a failed submit.
func (s *Service) removeOpWaiter(reqID uint64, ch chan error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	waiters := s.opWait[reqID]
	for i, w := range waiters {
		if w == ch {
			waiters = append(waiters[:i], waiters[i+1:]...)
			break
		}
	}
	if len(waiters) == 0 {
		delete(s.opWait, reqID)
	} else {
		s.opWait[reqID] = waiters
	}
}

// Holder reports the current owner of the named lock.
func (s *Service) Holder(name string) (core.NodeID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.locks[name]
	if st == nil || st.owner == wire.NoNode {
		return wire.NoNode, false
	}
	return st.owner, true
}

// --- public API: replicated map ---

// Set writes key=val cluster-wide and returns once the write has applied
// locally (read-your-writes). Concurrent Sets on one replica coalesce
// into a single ordered multi-op frame (see batch.go) unless batching
// was disabled.
func (s *Service) Set(ctx context.Context, key string, val []byte) error {
	if s.batchingEnabled() {
		return s.doBatched(ctx, key, val, false)
	}
	return s.doOp(ctx, func(reqID uint64) []byte { return encodeSet(key, val, reqID) })
}

// Delete removes a key cluster-wide. Deletes ride the same coalescer as
// Sets.
func (s *Service) Delete(ctx context.Context, key string) error {
	if s.batchingEnabled() {
		return s.doBatched(ctx, key, nil, true)
	}
	return s.doOp(ctx, func(reqID uint64) []byte { return encodeDel(key, reqID) })
}

func (s *Service) doOp(ctx context.Context, build func(reqID uint64) []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dds: service closed")
	}
	s.nextReq++
	reqID := s.nextReq
	ch := make(chan error, 1)
	s.opWait[reqID] = append(s.opWait[reqID], ch)
	s.mu.Unlock()
	if err := s.node.Multicast(build(reqID)); err != nil {
		s.removeOpWaiter(reqID, ch)
		return err
	}
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		s.removeOpWaiter(reqID, ch)
		return ctx.Err()
	}
}

// Get reads a key from the local replica's lock-free view — an eventual
// read: it reflects every op this replica has applied, not necessarily
// every op the ring has ordered. The returned slice is the caller's.
func (s *Service) Get(key string) ([]byte, bool) {
	return s.rview.get(key)
}

// Keys lists the local replica's keys from the lock-free view.
func (s *Service) Keys() []string {
	return s.rview.keys()
}

// Fence orders a no-op on this replica's ring and waits for its local
// apply. On return, every write ordered before Fence was invoked has
// applied here, so a local read that follows observes it — the read-index
// pattern over the token's total order. Fences are never rejected by
// handoff freezes or snapshot barriers, so fenced reads stay available
// mid-reshard. The wait is bounded by ctx.
func (s *Service) Fence(ctx context.Context) error {
	s.cReadFences.Inc()
	return s.doOp(ctx, func(reqID uint64) []byte { return encodeFence(reqID) })
}

// AppliedSeq reports the highest multicast sequence from origin whose op
// this replica has applied (directly or via snapshot).
func (s *Service) AppliedSeq(origin core.NodeID) uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied[origin]
}

// ApplyIndex counts ordered applies on this replica — a monotone local
// progress measure (not comparable across replicas: snapshots collapse
// many ops into one apply).
func (s *Service) ApplyIndex() uint64 { return s.rview.applyIndex.Load() }

// Freshness reports when this replica last proved it was caught up: the
// later of its last ordered apply and its node's last token arrival (a
// token visit with nothing to deliver is still proof no ordered write is
// missing up to that instant).
func (s *Service) Freshness() time.Time {
	la := s.rview.lastApply()
	if tok := s.node.LastTokenArrival(); tok.After(la) {
		return tok
	}
	return la
}

// WaitCaughtUp blocks until this replica has applied origin's ops through
// seq, ctx expires, or the replica shuts down (retryable ErrResharding —
// the caller re-resolves the shard and retries).
func (s *Service) WaitCaughtUp(ctx context.Context, origin core.NodeID, seq uint64) error {
	for {
		s.mu.RLock()
		done := s.applied[origin] >= seq
		closed := s.closed
		s.mu.RUnlock()
		if done {
			return nil
		}
		if closed {
			return fmt.Errorf("%w: shard shut down", ErrResharding)
		}
		s.readWaiters.Add(1)
		s.waitMu.Lock()
		if s.waitCh == nil {
			s.waitCh = make(chan struct{})
		}
		ch := s.waitCh
		s.waitMu.Unlock()
		// Re-check after registering: an apply between the first check and
		// the channel fetch would otherwise be a missed wakeup.
		s.mu.RLock()
		done = s.applied[origin] >= seq
		closed = s.closed
		s.mu.RUnlock()
		if done || closed {
			s.readWaiters.Add(-1)
			if done {
				return nil
			}
			return fmt.Errorf("%w: shard shut down", ErrResharding)
		}
		select {
		case <-ch:
			s.readWaiters.Add(-1)
		case <-ctx.Done():
			s.readWaiters.Add(-1)
			return ctx.Err()
		}
	}
}

// wakeReadersLocked releases every WaitCaughtUp parked on this replica;
// called after the applied vector advances (and on shutdown). The atomic
// gate keeps the no-waiter case to one load.
func (s *Service) wakeReadersLocked() {
	if s.readWaiters.Load() == 0 {
		return
	}
	s.waitMu.Lock()
	if s.waitCh != nil {
		close(s.waitCh)
		s.waitCh = nil
	}
	s.waitMu.Unlock()
}

// Watch registers a callback for key changes, invoked in apply order.
func (s *Service) Watch(fn func(key string, val []byte, deleted bool)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watchers = append(s.watchers, fn)
}

// OnApply registers an apply-stream observer. Callbacks run after each
// ordered apply that changed at least one key, outside the replica's
// mutex but before the next ordered op applies (the event loop is
// serial) — the invalidation feed for read-path caches.
func (s *Service) OnApply(fn func(ApplyEvent)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applyHooks = append(s.applyHooks, fn)
}

// --- ordered event handlers ---

// onDeliver routes one ordered delivery: data-service ops apply to the
// replica; everything else passes through to the application.
func (s *Service) onDeliver(d core.Delivery) {
	op, ok := decodeOp(d.Payload)
	if !ok {
		s.mu.RLock()
		h := s.app.OnDeliver
		s.mu.RUnlock()
		if h != nil {
			h(d)
		}
		return
	}
	s.mu.Lock()
	switch {
	case op.kind == opSnapDelta:
		// A fast-forward delta replays missed ops under their own
		// (origin, seq) stamps; routing the carrier through
		// applyFilteredLocked would advance the sender's applied entry
		// past the very ops it carries. It also bypasses the sync buffer:
		// it IS the state transfer a syncing replica is waiting for.
		s.applySnapDeltaLocked(d.Origin, d.Seq, op)
	case s.syncing && op.kind != opSnapshot:
		s.buffer = append(s.buffer, bufferedOp{origin: d.Origin, seq: d.Seq, op: op, raw: d.Payload})
	default:
		s.applyFilteredLocked(d.Origin, d.Seq, op, d.Payload)
	}
	post := s.postApply
	s.postApply = nil
	s.mu.Unlock()
	for _, fn := range post {
		fn()
	}
}

// onSys handles ordered membership announcements.
func (s *Service) onSys(e core.SysEvent) {
	switch e.Kind {
	case wire.SysNodeRemoved:
		s.mu.Lock()
		s.removalCount++
		s.logRemovalLocked(e.Subject, s.removalCount)
		s.releaseDeadLocked(e.Subject)
		// A removed coordinator aborts (or, post-commit, garbage
		// collects) the handoff it was driving. This is safe for the
		// benign case — a coordinator retiring its replica of a removed
		// ring after the commit — because its ordered purge precedes
		// its leave in this ring's stream, so the freeze is already
		// resolved by the time the removal applies.
		s.abortDeadCoordinatorLocked(e.Subject)
		s.queueOrphanKickLocked()
		post := s.postApply
		s.postApply = nil
		s.mu.Unlock()
		for _, fn := range post {
			fn()
		}
	case wire.SysNodeJoined:
		s.tracef("SysNodeJoined origin=%d subject=%d", e.Origin, e.Subject)
		if e.Subject == s.id && e.Origin != s.id {
			// We just joined an existing group: buffer until state
			// transfer completes, and ask for exactly what we miss. A
			// replica recovered from its WAL advertises its applied
			// vector so the deterministic responder can fast-forward it
			// with a delta instead of retransferring the full keyspace.
			s.enterSync()
			go s.sendSnapReq()
		}
	case wire.SysGroupMerged:
		// Both sides' replicas may have diverged: everyone resyncs to
		// the merging node's state, buffering until it arrives.
		s.tracef("SysGroupMerged origin=%d subject=%d", e.Origin, e.Subject)
		if e.Origin == s.id {
			snap := s.capture(wire.NoNode) // NoNode = all replicas
			s.enterSync()
			go s.node.Multicast(snap)
		} else {
			s.enterSync()
		}
	}
	s.mu.RLock()
	h := s.app.OnSys
	s.mu.RUnlock()
	if h != nil {
		h(e)
	}
}

func (s *Service) onMembership(e core.MembershipEvent) {
	s.mu.Lock()
	s.memberCount = len(e.Members)
	s.lowest = wire.NoNode
	live := make(map[core.NodeID]bool, len(e.Members))
	for _, m := range e.Members {
		live[m] = true
		if s.lowest == wire.NoNode || m < s.lowest {
			s.lowest = m
		}
	}
	s.live = live
	// A recovered replica that ends up alone holding a live token seeded
	// the ring itself (regeneration, not admission): there is nobody to
	// sync from, so its recovered state IS the ring state. Adopt it and
	// drain whatever buffered while waiting. A joining replica's initial
	// membership event carries Epoch 0 and never triggers this.
	if s.syncing && e.Epoch > 0 && len(e.Members) == 1 && e.Members[0] == s.id {
		s.tracef("seed-exit from sync (epoch=%d buffered=%d)", e.Epoch, len(s.buffer))
		if s.syncTimer != nil {
			s.syncTimer.Stop()
			s.syncTimer = nil
		}
		buf := s.buffer
		s.buffer = nil
		s.syncing = false
		for _, b := range buf {
			s.applyFilteredLocked(b.origin, b.seq, b.op, b.raw)
		}
	}
	router := s.router
	kick := len(s.orphans) > 0
	h := s.app.OnMembership
	post := s.postApply
	s.postApply = nil
	s.mu.Unlock()
	for _, fn := range post {
		fn()
	}
	if kick && router != nil {
		router.kickOrphans()
	}
	if h != nil {
		h(e)
	}
}

// sendSnapReq multicasts this replica's state-transfer request: the
// applied vector and removal count recovered from its WAL (or empty for
// a fresh joiner, which forces the full-snapshot path).
func (s *Service) sendSnapReq() {
	s.mu.RLock()
	router := s.router
	s.mu.RUnlock()
	var epoch uint64
	if router != nil {
		epoch = router.Epoch()
	}
	s.mu.Lock()
	applied := make(map[core.NodeID]uint64, len(s.applied))
	for o, v := range s.applied {
		applied[o] = v
	}
	// Recovered reshard or snapshot-barrier residue is rare and fiddly to
	// fast-forward through; a full snapshot resolves it authoritatively.
	wantFull := !s.recovered || len(applied) == 0 ||
		s.frozenID != 0 || s.staged != nil || s.snapID != 0
	removals := s.removalCount
	s.mu.Unlock()
	_ = s.node.Multicast(encodeSnapReqFrom(applied, removals, epoch, wantFull))
}

func (s *Service) onShutdown(reason string) {
	s.mu.Lock()
	s.closed = true
	// Drain the waiters: an op in flight on a stopping ring may never be
	// ordered. The error is retryable — for an elastically retired ring
	// the retry resolves against the new routing table; for a genuine
	// failure the retry surfaces the stopped node promptly.
	drainErr := fmt.Errorf("%w: shard shut down (%s)", ErrResharding, reason)
	for id, ch := range s.lockWait {
		delete(s.lockWait, id)
		delete(s.pending, id)
		ch <- drainErr
	}
	for id, chans := range s.opWait {
		delete(s.opWait, id)
		for _, ch := range chans {
			ch <- drainErr
		}
	}
	// Parked session/fence readers must not wait out their deadlines on a
	// ring that will never apply again.
	s.wakeReadersLocked()
	h := s.app.OnShutdown
	b := s.batcher
	s.mu.Unlock()
	// Quiesce the write coalescer after the drain: its buffered entries'
	// waiters just got the retryable shutdown error, so the frame they
	// rode in is dead weight — drop it and disarm the linger timer.
	b.stop()
	if h != nil {
		h(reason)
	}
}

// enterSync starts buffering ops until a snapshot applies. If none arrives
// within snapshotWait (the snapshot sender may have died), the replica
// requests one explicitly.
func (s *Service) enterSync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracef("enterSync (already=%v)", s.syncing)
	if !s.syncing {
		s.syncing = true
		s.buffer = nil
	}
	// (Re)arm even when already syncing: a recovered replica enters sync
	// at Recover time without a timer, and the ordered join/merge anchor
	// arriving here is what starts the state-transfer clock.
	s.armSyncTimerLocked()
}

func (s *Service) armSyncTimerLocked() {
	if s.syncTimer != nil {
		s.syncTimer.Stop()
	}
	s.syncTimer = time.AfterFunc(snapshotWait, func() {
		s.mu.Lock()
		stillSyncing := s.syncing
		if stillSyncing {
			s.tracef("sync fallback timer fired (lowest=%d buffered=%d)", s.lowest, len(s.buffer))
		}
		if stillSyncing && s.id == s.lowest {
			// Nobody is going to send us a snapshot (the sender died, or
			// every replica is syncing). As the deterministic leader,
			// adopt the buffered state, then publish an authoritative
			// snapshot so every replica resyncs to the same state at the
			// same ordered position.
			buf := s.buffer
			s.buffer = nil
			s.syncing = false
			for _, b := range buf {
				s.applyFilteredLocked(b.origin, b.seq, b.op, b.raw)
			}
			snap := s.captureTargetLocked(wire.NoNode)
			post := s.postApply
			s.postApply = nil
			s.mu.Unlock()
			for _, fn := range post {
				fn()
			}
			go s.node.Multicast(snap)
			return
		}
		if stillSyncing {
			s.armSyncTimerLocked()
		}
		s.mu.Unlock()
		if stillSyncing {
			_ = s.node.Multicast(encodeSnapReq())
		}
	})
}

// --- replicated state machine ---

// applyFilteredLocked applies an op unless the applied vector shows a
// snapshot already covered it. A filtered op from this node itself must
// still wake its local waiter: the op's effect is present in the snapshot
// state, so the caller's request has succeeded. This is the single
// ordered-apply choke point: the WAL append, the recent-log entry, and
// the apply-stream hooks all hang off it.
func (s *Service) applyFilteredLocked(origin core.NodeID, seq uint64, o op, raw []byte) {
	if seq <= s.applied[origin] {
		if origin == s.id {
			s.ackCoveredSelfOpLocked(o)
		}
		return
	}
	s.applied[origin] = seq
	if o.kind != opSnapshot && o.kind != opSnapReq && o.kind != opSnapReqFrom && o.kind != opSnapDelta {
		s.logRecentLocked(origin, seq, o, raw)
		s.walAppendLocked(origin, seq, o, raw)
	}
	s.applyLocked(origin, o)
	s.rview.stamp()
	s.wakeReadersLocked()
	s.flushApplyHookLocked(origin, seq)
}

// recentLogCap bounds the replay log; snapshots older than this many ops
// cannot be applied by an up-to-date replica and are skipped instead.
const recentLogCap = 4096

func (s *Service) logRecentLocked(origin core.NodeID, seq uint64, o op, raw []byte) {
	s.evictRecentLocked()
	s.recent = append(s.recent, bufferedOp{origin: origin, seq: seq, op: o, raw: raw})
}

func (s *Service) evictRecentLocked() {
	if len(s.recent) < recentLogCap {
		return
	}
	old := s.recent[0]
	if old.isRemoval {
		if old.seq > s.remEvictedHigh {
			s.remEvictedHigh = old.seq
		}
	} else if old.seq > s.evictedHigh[old.origin] {
		s.evictedHigh[old.origin] = old.seq
	}
	s.recent = s.recent[1:]
}

// walRemovalOrigin marks a WAL record carrying a membership removal
// rather than an ordered op: Seq is the removal's index in the ring's
// removal sequence, the payload the removed node's id. Node ids are
// 32-bit but never the all-ones sentinel (wire.NoNode is 0), so the
// marker cannot collide with a real origin.
const walRemovalOrigin = ^uint32(0)

// logRemovalLocked records one ordered membership removal in the recent
// log (so fast-forward deltas can replay it in position) and the WAL (so
// crash recovery re-runs the same dead-node cleanup).
func (s *Service) logRemovalLocked(dead core.NodeID, idx uint64) {
	s.evictRecentLocked()
	s.recent = append(s.recent, bufferedOp{origin: dead, seq: idx, isRemoval: true})
	if s.storage != nil && !s.recovering {
		payload := binary.LittleEndian.AppendUint32(nil, uint32(dead))
		_ = s.storage.Append(wal.Record{Origin: walRemovalOrigin, Seq: idx, Payload: payload})
		s.maybeCompactLocked()
	}
}

// walAppendLocked appends one ordered apply to the attached WAL (raw, as
// delivered) and compacts when the tail outgrows the snapshot threshold.
// Append errors are swallowed: durability degrades, ordering does not.
//
// A coalesced opBatch frame goes through the log's group-commit path:
// still exactly ONE record — replay dedup is keyed on (origin, seq), so
// the durable unit must match the ordered unit — but the backend issues
// one write and, under always-fsync, one fsync for the K ops it carries.
func (s *Service) walAppendLocked(origin core.NodeID, seq uint64, o op, raw []byte) {
	if s.storage == nil || s.recovering || len(raw) == 0 {
		return
	}
	rec := wal.Record{Origin: uint32(origin), Seq: seq, Payload: raw}
	if o.kind == opBatch {
		// Pipelined group commit: the append is buffered here, in order,
		// but under always-fsync the sync runs on the log's syncer
		// goroutine and only the riders' acks wait for it
		// (durable-before-acked) — the event loop, and with it the ring
		// cadence, never stalls on the disk. Groups from consecutive
		// frames share one fsync.
		pd := &batchDurable{origin: origin}
		pending, err := s.storage.AppendBatchDurable([]wal.Record{rec}, func(error) { s.batchDurableDone(pd) })
		if err == nil && pending {
			s.pendingDurable = pd
		}
	} else {
		_ = s.storage.Append(rec)
	}
	s.maybeCompactLocked()
}

func (s *Service) maybeCompactLocked() {
	if s.snapshotEvery > 0 && s.storage.LogBytes() >= s.snapshotEvery {
		s.compactLocked()
	}
}

// compactLocked folds the replica's full state into an atomic on-disk
// snapshot and truncates the WAL tail behind it.
func (s *Service) compactLocked() {
	if s.storage == nil || s.recovering {
		return
	}
	_ = s.storage.SaveSnapshot(encodeSnapshotState(s.snapshotStateLocked()))
}

// flushApplyHookLocked hands one apply's changed keys to the registered
// apply-stream observers via the post-apply queue, so they run outside
// s.mu (the same discipline as router callbacks).
func (s *Service) flushApplyHookLocked(origin core.NodeID, seq uint64) {
	keys := s.hookKeys
	s.hookKeys = nil
	if len(keys) == 0 || len(s.applyHooks) == 0 || s.recovering {
		return
	}
	hooks := s.applyHooks
	ev := ApplyEvent{Shard: s.shardID, Origin: origin, Seq: seq, Keys: keys}
	s.postApply = append(s.postApply, func() {
		for _, h := range hooks {
			h(ev)
		}
	})
}

// ackCoveredSelfOpLocked wakes waiters for a self-op whose effect arrived
// via snapshot rather than direct application.
func (s *Service) ackCoveredSelfOpLocked(o op) {
	switch o.kind {
	case opSet, opDel:
		s.signalOpLocked(s.id, o.reqID, nil)
	case opBatch:
		// Every rider's effect is in the snapshot state; wake them all,
		// and release the coalescer's pacing gate exactly as a direct
		// apply would.
		for i := range o.batch {
			s.signalOpLocked(s.id, o.batch[i].reqID, nil)
		}
		s.batcherAppliedLocked(s.id)
	case opAcquire:
		st := s.locks[o.key]
		if st != nil && st.owner == s.id && st.ownerReq == o.reqID {
			s.grantLocked(s.id, o.reqID)
		}
		// If the snapshot shows us queued, the grant fires when a later
		// release promotes us; if absent, the pending re-request logic
		// in applySnapshotLocked re-submits.
	case opRelease, opFreeze, opInstall, opFlip, opPurge,
		opTxnPrepare, opTxnCommit, opTxnAbort, opTxnDecide,
		opSnapFreeze, opSnapCapture, opSnapRelease, opFence:
		s.signalOpLocked(s.id, o.reqID, nil)
	}
}

// applyLocked applies one op; caller holds s.mu.
func (s *Service) applyLocked(origin core.NodeID, o op) {
	// Freeze enforcement: ordered writes into a mid-handoff slice are
	// rejected — deterministically, since the freeze op itself is ordered
	// — so the state captured at the freeze position stays authoritative
	// until the flip installs it on the target shard.
	if s.frozenID != 0 || len(s.retired) > 0 {
		switch o.kind {
		case opAcquire, opRelease, opCancel, opSet, opDel:
			h := fnv64a(o.key)
			if (s.frozenID != 0 && rangesContain(s.frozen, h)) || rangesContain(s.retired, h) {
				s.rejectFrozenLocked(origin, o)
				return
			}
		}
	}
	// Snapshot-barrier enforcement: while the shard is snap-frozen, new
	// map writes are rejected (retryably, at the same ordered position on
	// every replica) so the captured cut is identical across shards. Lock
	// traffic and staged-transaction commits/aborts still flow: locks are
	// not part of the capture, and the drain of staged transactions is
	// what the capture waits on.
	if s.snapID != 0 {
		switch o.kind {
		case opSet, opDel:
			s.node.Stats().Counter(stats.MetricSnapFrozenWrites).Inc()
			s.signalOpLocked(origin, o.reqID, ErrSnapshotting)
			return
		}
	}
	switch o.kind {
	case opAcquire:
		s.applyAcquireLocked(origin, o)
	case opRelease:
		s.applyReleaseLocked(origin, o)
	case opCancel:
		s.applyCancelLocked(origin, o)
	case opSet:
		s.kv[o.key] = append([]byte(nil), o.val...)
		s.rview.set(o.key, o.val)
		s.notifyLocked(o.key, o.val, false)
		s.signalOpLocked(origin, o.reqID, nil)
	case opDel:
		delete(s.kv, o.key)
		s.rview.del(o.key)
		s.notifyLocked(o.key, nil, true)
		s.signalOpLocked(origin, o.reqID, nil)
	case opBatch:
		// Deliberately absent from the freeze/retired and
		// snapshot-barrier switches above: the frame coalesces
		// independent keys, so those rejections run per entry inside.
		s.applyBatchLocked(origin, o)
	case opFence:
		// Ordered no-op: its apply is the fence. Deliberately exempt from
		// the freeze/retired/snapshot-barrier rejections above — fenced
		// reads must stay available mid-handoff, like plain reads.
		s.signalOpLocked(origin, o.reqID, nil)
	case opSnapshot:
		s.applySnapshotLocked(origin, o)
	case opSnapReq:
		// Deterministic responder: the lowest live member other than
		// the requester captures at this ordered position.
		if s.id != origin && s.id == s.responderLocked(origin) && !s.syncing {
			snap := s.captureTargetLocked(origin)
			go s.node.Multicast(snap)
		}
	case opFreeze:
		s.applyFreezeLocked(origin, o)
	case opInstall:
		s.applyInstallLocked(origin, o)
	case opFlip:
		s.applyFlipLocked(origin, o)
	case opAbortReshard:
		s.applyAbortReshardLocked(origin, o)
	case opPurge:
		s.applyPurgeLocked(origin, o)
	case opTxnPrepare:
		s.applyTxnPrepareLocked(origin, o)
	case opTxnCommit:
		s.applyTxnCommitLocked(origin, o)
	case opTxnAbort:
		s.applyTxnAbortLocked(origin, o)
	case opTxnDecide:
		s.applyTxnDecideLocked(origin, o)
	case opSnapReqFrom:
		s.applySnapReqFromLocked(origin, o)
	case opSnapFreeze:
		s.applySnapFreezeLocked(origin, o)
	case opSnapCapture:
		s.applySnapCaptureLocked(origin, o)
	case opSnapRelease:
		s.applySnapReleaseLocked(origin, o)
	}
}

// --- cross-shard transactions (2PC participant side) ---
//
// A transaction's writes for this shard arrive as one ordered prepare,
// stay staged (invisible) until the ordered commit applies them
// atomically, and vanish on the ordered abort. Staged transactions block
// reshard freezes of this shard (first-wins, retryable on the reshard
// side), so a commit never writes into a slice frozen after its prepare —
// the freeze/prepare order is serialized by the ring.

// applyTxnPrepareLocked stages one transaction's writes. Every touched
// key is checked against the frozen/retired ranges and the snapshot
// barrier, deterministically (all replicas decide at the same position).
func (s *Service) applyTxnPrepareLocked(origin core.NodeID, o op) {
	if s.snapID != 0 {
		s.node.Stats().Counter(stats.MetricSnapFrozenWrites).Inc()
		s.signalOpLocked(origin, o.reqID, ErrSnapshotting)
		return
	}
	reject := func(h uint64) bool {
		return (s.frozenID != 0 && rangesContain(s.frozen, h)) || rangesContain(s.retired, h)
	}
	for k := range o.kv {
		if reject(fnv64a(k)) {
			s.node.Stats().Counter(stats.MetricFrozenWrites).Inc()
			s.signalOpLocked(origin, o.reqID, ErrResharding)
			return
		}
	}
	for _, k := range o.dels {
		if reject(fnv64a(k)) {
			s.node.Stats().Counter(stats.MetricFrozenWrites).Inc()
			s.signalOpLocked(origin, o.reqID, ErrResharding)
			return
		}
	}
	s.txns[o.rid] = &txnStage{id: o.rid, by: origin, epoch: o.epoch, decideRing: o.decideRing, kv: o.kv, dels: o.dels}
	s.signalOpLocked(origin, o.reqID, nil)
}

// applyTxnCommitLocked makes a staged transaction's writes live at this
// ordered position. A commit for an already-resolved transaction (the
// stage was aborted by the coordinator's removal racing a late commit
// frame) is a no-op; nobody is waiting on it.
func (s *Service) applyTxnCommitLocked(origin core.NodeID, o op) {
	st := s.txns[o.rid]
	if st == nil {
		s.signalOpLocked(origin, o.reqID, nil)
		return
	}
	delete(s.txns, o.rid)
	keys := make([]string, 0, len(st.kv))
	for k := range st.kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.kv[k] = st.kv[k]
		s.rview.set(k, s.kv[k])
		s.notifyLocked(k, s.kv[k], false)
	}
	for _, k := range st.dels {
		delete(s.kv, k)
		s.rview.del(k)
		s.notifyLocked(k, nil, true)
	}
	s.signalOpLocked(origin, o.reqID, nil)
}

// applyTxnAbortLocked drops a staged transaction (idempotent).
func (s *Service) applyTxnAbortLocked(origin core.NodeID, o op) {
	if _, staged := s.txns[o.rid]; staged {
		delete(s.txns, o.rid)
		s.node.Stats().Counter(stats.MetricTxnAborts).Inc()
	}
	s.signalOpLocked(origin, o.reqID, nil)
}

// decisionCap bounds the replicated commit-record set: a record is only
// needed for the crash window between a transaction's phase 1 and phase
// 2 (milliseconds), not forever. Trimming is FIFO in apply order, so
// every replica of the decide ring trims identically.
const decisionCap = 1024

// applyTxnDecideLocked records a replicated commit decision on this
// (decide) ring. Once the record is ordered the transaction's outcome is
// commit everywhere: a replica resolving an orphaned stage finds the
// record here, and ring FIFO guarantees the record precedes its
// coordinator's removal in this ring's stream — so "coordinator removed,
// no record" proves phase 2 never started anywhere.
func (s *Service) applyTxnDecideLocked(origin core.NodeID, o op) {
	if !s.decisions[o.rid] {
		s.decisions[o.rid] = true
		s.decisionSeq = append(s.decisionSeq, o.rid)
		for len(s.decisionSeq) > decisionCap {
			delete(s.decisions, s.decisionSeq[0])
			s.decisionSeq = s.decisionSeq[1:]
		}
		s.node.Stats().Counter(stats.MetricTxnDecides).Inc()
	}
	s.signalOpLocked(origin, o.reqID, nil)
	s.queueOrphanKickLocked()
}

// queueOrphanKickLocked schedules an orphan-resolution pass across the
// router's shards after the current apply completes. Kicks fire on every
// event that can change a verdict — a decide record applying, a
// membership change, a sync completing — so no background sweeper is
// needed: verdicts are monotone (a record can never appear after its
// coordinator's removal has been processed), and each kick source covers
// one way a pending verdict becomes final.
func (s *Service) queueOrphanKickLocked() {
	if s.router == nil {
		return
	}
	router := s.router
	s.postApply = append(s.postApply, func() { router.kickOrphans() })
}

// localVerdict is the decide-ring replica's answer for an orphaned
// transaction: commit if the record applied here; abort once this
// replica is synced and the coordinator is gone from the ring's
// membership (every record it could have ordered has applied by then —
// its removal is ordered after them); pending otherwise.
func (s *Service) localVerdict(id uint64, coord core.NodeID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.decisions[id] {
		return verdictCommit
	}
	if s.syncing || s.closed || len(s.live) == 0 {
		return verdictPending
	}
	if !s.live[coord] {
		return verdictAbort
	}
	return verdictPending
}

// localSelfVerdict resolves a recovered stage this node itself
// coordinated: the pre-crash commit driver can never return, so once the
// decide replica is synced the record's presence alone decides.
func (s *Service) localSelfVerdict(id uint64) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.decisions[id] {
		return verdictCommit
	}
	if s.syncing || s.closed || len(s.live) == 0 {
		return verdictPending
	}
	return verdictAbort
}

// resolveOrphans drives every parked orphan stage to the decide ring's
// verdict. Commit records are pushed onto this ring as an ordered
// opTxnCommit by its lowest live member (idempotent — duplicate pushes
// are no-ops, and the orphan entry clears when the commit applies);
// absent records abort the stage locally, which is deterministic across
// replicas because the verdict is monotone. Runs outside s.mu.
func (s *Service) resolveOrphans() {
	s.mu.Lock()
	if len(s.orphans) == 0 {
		s.mu.Unlock()
		return
	}
	router := s.router
	type orphan struct {
		id    uint64
		coord core.NodeID
		ring  int
	}
	pending := make([]orphan, 0, len(s.orphans))
	for id, coord := range s.orphans {
		tx := s.txns[id]
		if tx == nil {
			delete(s.orphans, id) // resolved by an ordered commit/abort
			continue
		}
		pending = append(pending, orphan{id: id, coord: coord, ring: tx.decideRing})
	}
	s.mu.Unlock()
	if router == nil {
		return
	}
	for _, o := range pending {
		var verdict int
		if o.coord == s.id {
			verdict = router.decideSelfVerdict(o.ring, o.id)
		} else {
			verdict = router.decideVerdict(o.ring, o.id, o.coord)
		}
		switch verdict {
		case verdictCommit:
			s.mu.Lock()
			_, still := s.txns[o.id]
			push := still && s.lowest == s.id && !s.closed
			s.mu.Unlock()
			if push {
				// The decide ring holds the record but this ring never saw
				// phase 2: finish it.
				s.node.Stats().Counter(stats.MetricTxnOrphanCommits).Inc()
				payload := encodeTxnCommit(o.id, 0)
				go func() { _ = s.node.Multicast(payload) }()
			}
		case verdictAbort:
			s.mu.Lock()
			if tx := s.txns[o.id]; tx != nil && tx.by == o.coord {
				delete(s.txns, o.id)
				s.node.Stats().Counter(stats.MetricTxnAborts).Inc()
				s.node.Stats().Counter(stats.MetricTxnOrphanAborts).Inc()
			}
			delete(s.orphans, o.id)
			s.mu.Unlock()
		}
	}
}

// PendingTxns reports the number of staged (prepared, unresolved)
// transactions on this replica — diagnostics and test assertions.
func (s *Service) PendingTxns() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.txns)
}

// --- cross-shard snapshot barrier (participant side) ---

// applySnapFreezeLocked raises the snapshot barrier on this shard. A
// shard mid-handoff refuses (the snapshot coordinator releases and
// reports the retryable conflict); a competing snapshot loses to the
// first (first-wins, like reshard freezes).
func (s *Service) applySnapFreezeLocked(origin core.NodeID, o op) {
	if s.frozenID != 0 || s.staged != nil {
		s.signalOpLocked(origin, o.reqID, ErrResharding)
		return
	}
	if s.snapID != 0 && s.snapID != o.rid {
		s.signalOpLocked(origin, o.reqID, ErrSnapshotting)
		return
	}
	s.snapID, s.snapBy = o.rid, origin
	s.signalOpLocked(origin, o.reqID, nil)
}

// applySnapCaptureLocked captures the shard's map at this ordered
// position — but only once every staged transaction has drained, so no
// shard's capture can include half of a cross-shard commit. The barrier
// already rejects new prepares, so the drain is bounded by the in-flight
// transactions' phase 2.
func (s *Service) applySnapCaptureLocked(origin core.NodeID, o op) {
	if s.snapID != o.rid {
		s.signalOpLocked(origin, o.reqID, ErrSnapshotting)
		return
	}
	if len(s.txns) > 0 {
		s.signalOpLocked(origin, o.reqID, errSnapBusy)
		return
	}
	s.signalOpLocked(origin, o.reqID, nil)
	s.queueSnapCaptureLocked(origin)
}

// queueSnapCaptureLocked hands the captured map to the coordinating
// router after the current apply completes (same post-apply discipline as
// the reshard capture).
func (s *Service) queueSnapCaptureLocked(origin core.NodeID) {
	if s.router == nil || !s.router.wantsSnapCapture(s.snapID) {
		return
	}
	kv := make(map[string][]byte, len(s.kv))
	for k, v := range s.kv {
		kv[k] = append([]byte(nil), v...)
	}
	router, shard, rid := s.router, s.shardID, s.snapID
	s.postApply = append(s.postApply, func() {
		router.snapCaptured(shard, rid, kv)
	})
}

// applySnapReleaseLocked lifts the snapshot barrier.
func (s *Service) applySnapReleaseLocked(origin core.NodeID, o op) {
	if s.snapID == o.rid {
		s.snapID, s.snapBy = 0, 0
	}
	s.signalOpLocked(origin, o.reqID, nil)
}

// rejectFrozenLocked refuses one ordered write into a frozen slice. Every
// replica rejects at the same ordered position; the origin's replica also
// wakes the local waiter with the retryable error.
func (s *Service) rejectFrozenLocked(origin core.NodeID, o op) {
	s.node.Stats().Counter(stats.MetricFrozenWrites).Inc()
	if origin != s.id {
		return
	}
	switch o.kind {
	case opSet, opDel:
		s.signalOpLocked(origin, o.reqID, ErrResharding)
	case opAcquire:
		if ch, ok := s.lockWait[o.reqID]; ok {
			delete(s.lockWait, o.reqID)
			delete(s.pending, o.reqID)
			ch <- ErrResharding
		}
	case opRelease:
		// Unlock waits for its apply: surface the rejection so the
		// caller retries against the lock's post-handoff home.
		s.signalOpLocked(origin, o.reqID, ErrResharding)
		// opCancel needs no recovery: queued requests in the moving
		// slice were cancelled at the freeze.
	}
}

// applyFreezeLocked starts the handoff on a source shard: the listed hash
// ranges stop accepting writes, queued lock requests inside them are
// cancelled (their waiters retry against the target shard after the
// flip), and — on the coordinating node — the moving state is captured at
// exactly this ordered position.
func (s *Service) applyFreezeLocked(origin core.NodeID, o op) {
	if s.frozenID != 0 && s.frozenID != o.rid {
		// A competing handoff already froze this shard; first wins. The
		// loser's coordinator gets a prompt retryable failure instead of
		// waiting out its deadline.
		s.signalOpLocked(origin, o.reqID, ErrResharding)
		return
	}
	if s.snapID != 0 {
		// A cross-shard snapshot holds its barrier here; its release is
		// ordered shortly. The handoff coordinator aborts retryably.
		s.signalOpLocked(origin, o.reqID, ErrSnapshotting)
		return
	}
	if len(s.txns) > 0 {
		// Staged cross-shard transactions must resolve before the slice
		// can freeze: their commits write at ordered positions after the
		// prepare, and a freeze in between would strand half a commit in
		// the migrated slice. Aborting the handoff (retryably) keeps the
		// prepare -> commit window free of ownership changes.
		s.signalOpLocked(origin, o.reqID, ErrResharding)
		return
	}
	first := s.frozenID == 0
	s.frozenID = o.rid
	s.frozenBy = origin
	s.frozenEpoch = o.epoch
	s.frozen = append([]keyRange(nil), o.ranges...)
	if first {
		// Cancel queued acquisitions for moving locks. Held owners keep
		// their locks — ownership migrates with the state — but waiting
		// requests re-route to the target shard after the flip.
		for name, st := range s.locks {
			if !rangesContain(s.frozen, fnv64a(name)) {
				continue
			}
			for _, q := range st.queue {
				if q.node != s.id {
					continue
				}
				if ch, ok := s.lockWait[q.reqID]; ok {
					delete(s.lockWait, q.reqID)
					delete(s.pending, q.reqID)
					ch <- ErrResharding
				}
			}
			st.queue = nil
		}
	}
	s.signalOpLocked(origin, o.reqID, nil)
	s.queueCaptureLocked(origin)
}

// queueCaptureLocked hands the frozen slice's state to the router after
// the current apply completes. Frozen ranges are immutable from the
// freeze position on (every replica rejects writes into them), so a
// capture at any later position — including one observed through a
// snapshot during state transfer — is byte-identical to a capture at the
// freeze position itself.
func (s *Service) queueCaptureLocked(origin core.NodeID) {
	if s.router == nil || s.frozenID == 0 || !s.router.wantsCapture(s.frozenID) {
		return
	}
	cap := capturedState{kv: make(map[string][]byte), locks: make(map[string]*lockState)}
	for k, v := range s.kv {
		if rangesContain(s.frozen, fnv64a(k)) {
			cap.kv[k] = append([]byte(nil), v...)
		}
	}
	for name, st := range s.locks {
		if st.owner != wire.NoNode && rangesContain(s.frozen, fnv64a(name)) {
			cap.locks[name] = &lockState{owner: st.owner, ownerReq: st.ownerReq}
		}
	}
	router, shard, rid := s.router, s.shardID, s.frozenID
	s.postApply = append(s.postApply, func() {
		router.freezeApplied(shard, rid, origin, cap)
	})
}

// applyInstallLocked stages moved state on a target shard. Nothing
// touches the live map until the ordered flip, so an abort leaves the
// replica untouched.
func (s *Service) applyInstallLocked(origin core.NodeID, o op) {
	if s.staged != nil && s.staged.id != o.rid {
		s.signalOpLocked(origin, o.reqID, ErrResharding) // competing handoff; first wins
		return
	}
	if s.staged == nil {
		s.staged = &stagedInstall{
			id: o.rid, by: origin, epoch: o.epoch,
			kv: make(map[string][]byte), locks: make(map[string]*lockState),
		}
	}
	for k, v := range o.kv {
		s.staged.kv[k] = append([]byte(nil), v...)
	}
	for name, ls := range o.locks {
		s.staged.locks[name] = &lockState{owner: ls.owner, ownerReq: ls.ownerReq}
	}
	s.signalOpLocked(origin, o.reqID, nil)
}

// applyFlipLocked commits the handoff on a target shard: the staged state
// becomes live at this ordered position — every write submitted after a
// node flips its router is ordered after this point on this ring — and
// the router is told this target flipped so it can adopt the new routing
// epoch once every target has.
func (s *Service) applyFlipLocked(origin core.NodeID, o op) {
	// This ring gained ranges: rebuild the retired set from the flip's
	// authoritative table (an ordered position on this very ring, so
	// every replica rebuilds at the same point).
	if s.router != nil {
		s.retired = complementRanges(newHashRingFor(o.rings, defaultReplicas), s.shardID)
	}
	if s.staged != nil && s.staged.id == o.rid {
		keys := make([]string, 0, len(s.staged.kv))
		for k := range s.staged.kv {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s.kv[k] = s.staged.kv[k]
			s.rview.set(k, s.kv[k])
			s.notifyLocked(k, s.kv[k], false)
		}
		for name, ls := range s.staged.locks {
			s.locks[name] = ls
		}
		s.staged = nil
	}
	s.signalOpLocked(origin, o.reqID, nil)
	if s.router != nil {
		router, shard := s.router, s.shardID
		info := flipInfo{id: o.rid, epoch: o.epoch, rings: append([]int(nil), o.rings...), targets: append([]int(nil), o.targets...)}
		s.postApply = append(s.postApply, func() {
			router.targetFlipped(shard, info)
		})
	}
}

// abortDeadCoordinatorLocked is the participant-side abort: when the
// node that froze this shard (or staged installs on it) is removed from
// the membership, the handoff it was driving can never flip. The removal
// is an ordered position of this ring's stream, so every replica rolls
// back at the same point. If the flip already committed (the ordered
// purge arrived and is merely deferred), the removal finishes the purge
// instead.
func (s *Service) abortDeadCoordinatorLocked(dead core.NodeID) {
	var rid, epoch uint64
	touched := false
	if s.frozenID != 0 && s.frozenBy == dead {
		if s.purgeRID == s.frozenID {
			s.purgeFrozenLocked()
		} else {
			rid, epoch = s.frozenID, s.frozenEpoch
			s.frozenID, s.frozenBy, s.frozenEpoch = 0, 0, 0
			s.frozen = nil
			touched = true
		}
	}
	if s.staged != nil && s.staged.by == dead {
		rid, epoch = s.staged.id, s.staged.epoch
		s.staged = nil
		touched = true
	}
	if touched && s.router != nil {
		router := s.router
		s.postApply = append(s.postApply, func() { router.reshardAborted(rid, epoch) })
	}
	// Staged transactions whose coordinator died: with a replicated
	// commit record (decideRing >= 0) phase 2 may already have started on
	// other rings, so the stage parks as an orphan until the decide
	// ring's verdict — record present, commit; coordinator gone from the
	// decide ring without one, abort. Legacy stages (no decide ring)
	// presumed-abort at the removal as before: the removal is an ordered
	// position of this ring's stream, so every replica aborts the same
	// stages at the same point, and a commit the coordinator managed to
	// order before its removal was already applied.
	for id, tx := range s.txns {
		if tx.by != dead {
			continue
		}
		if tx.decideRing >= 0 {
			s.orphans[id] = dead
			continue
		}
		delete(s.txns, id)
		s.node.Stats().Counter(stats.MetricTxnAborts).Inc()
	}
	// A dead snapshot coordinator releases its barrier the same way.
	if s.snapID != 0 && s.snapBy == dead {
		s.snapID, s.snapBy = 0, 0
	}
}

// applyAbortReshardLocked rolls the handoff back: the source unfreezes
// and keeps its state, the target drops the staged installs, and every
// node stays on the old routing epoch.
func (s *Service) applyAbortReshardLocked(_ core.NodeID, o op) {
	touched := false
	if s.frozenID == o.rid {
		s.frozenID, s.frozenBy, s.frozenEpoch = 0, 0, 0
		s.frozen = nil
		s.purgeRID = 0
		touched = true
	}
	if s.staged != nil && s.staged.id == o.rid {
		s.staged = nil
		touched = true
	}
	if s.router != nil && touched {
		router := s.router
		rid, epoch := o.rid, o.epoch
		s.postApply = append(s.postApply, func() {
			router.reshardAborted(rid, epoch)
		})
	}
}

// applyPurgeLocked garbage-collects the handed-off slice from a source
// replica after the flip committed. The purge op is ordered on the
// source's own stream (after its freeze, so every replica purges the
// same immutable state), but its effect is deferred until this node's
// router has flipped: until then the source still serves reads of the
// frozen slice.
func (s *Service) applyPurgeLocked(origin core.NodeID, o op) {
	s.signalOpLocked(origin, o.reqID, nil)
	if s.frozenID != o.rid {
		return // aborted, already purged, or a different handoff
	}
	if s.router != nil && s.router.Epoch() < o.epoch {
		s.purgeRID = o.rid
		return // router not flipped yet; completeFlip finishes the job
	}
	s.purgeFrozenLocked()
}

// purgeIfPending runs a purge whose ordered op arrived before this
// node's flip; called by the router right after it adopts the epoch.
func (s *Service) purgeIfPending(rid uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.purgeRID != rid || s.frozenID != rid {
		return
	}
	s.purgeFrozenLocked()
}

// purgeFrozenLocked drops the frozen slice: the keys live on the target
// shard now, which the router routes to. The purge is silent — at the
// router level the keys still exist, so no delete notification is due.
func (s *Service) purgeFrozenLocked() {
	for k := range s.kv {
		if rangesContain(s.frozen, fnv64a(k)) {
			delete(s.kv, k)
			s.rview.del(k)
		}
	}
	for name := range s.locks {
		if rangesContain(s.frozen, fnv64a(name)) {
			delete(s.locks, name)
		}
	}
	// The slices left for good: writes into them stay rejected until a
	// later flip on this ring hands some of them back.
	s.retired = append(s.retired, s.frozen...)
	s.frozenID, s.frozenBy, s.frozenEpoch = 0, 0, 0
	s.frozen = nil
	s.purgeRID = 0
}

// setRetired installs the replica's initial not-owned ranges (router
// attach time, before the node starts).
func (s *Service) setRetired(rs []keyRange) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.retired = rs
}

func (s *Service) responderLocked(requester core.NodeID) core.NodeID {
	members := s.node.Members()
	best := wire.NoNode
	for _, m := range members {
		if m == requester {
			continue
		}
		if best == wire.NoNode || m < best {
			best = m
		}
	}
	return best
}

func (s *Service) applyAcquireLocked(origin core.NodeID, o op) {
	st := s.locks[o.key]
	if st == nil {
		st = &lockState{}
		s.locks[o.key] = st
	}
	if st.owner == wire.NoNode {
		st.owner = origin
		st.ownerReq = o.reqID
		s.grantLocked(origin, o.reqID)
	} else {
		st.queue = append(st.queue, lockReq{node: origin, reqID: o.reqID})
	}
}

func (s *Service) applyReleaseLocked(origin core.NodeID, o op) {
	// A stale release (owner already changed by membership cleanup or a
	// merge) still succeeds idempotently for the waiting Unlock caller.
	s.signalOpLocked(origin, o.reqID, nil)
	st := s.locks[o.key]
	if st == nil || st.owner != origin || st.ownerReq != o.reqID {
		return // stale release
	}
	s.promoteLocked(o.key, st)
}

func (s *Service) applyCancelLocked(origin core.NodeID, o op) {
	st := s.locks[o.key]
	if st == nil {
		return
	}
	if st.owner == origin && st.ownerReq == o.reqID {
		// Granted before the cancellation was ordered: treat as release.
		s.promoteLocked(o.key, st)
		return
	}
	for i, q := range st.queue {
		if q.node == origin && q.reqID == o.reqID {
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			return
		}
	}
}

func (s *Service) promoteLocked(name string, st *lockState) {
	if len(st.queue) == 0 {
		st.owner = wire.NoNode
		st.ownerReq = 0
		delete(s.locks, name)
		return
	}
	next := st.queue[0]
	st.queue = st.queue[1:]
	st.owner = next.node
	st.ownerReq = next.reqID
	s.grantLocked(next.node, next.reqID)
}

// grantLocked wakes the local waiter when this replica's node became owner.
func (s *Service) grantLocked(node core.NodeID, reqID uint64) {
	if node != s.id {
		return
	}
	if ch, ok := s.lockWait[reqID]; ok {
		delete(s.lockWait, reqID)
		delete(s.pending, reqID)
		ch <- nil
	}
}

func (s *Service) signalOpLocked(origin core.NodeID, reqID uint64, err error) {
	if origin != s.id {
		return
	}
	for _, ch := range s.opWait[reqID] {
		ch <- err
	}
	delete(s.opWait, reqID)
}

// releaseDeadLocked frees every lock and queue position owned by a node
// that left the membership; ordered, so all replicas do this at the same
// logical instant (§2.7).
func (s *Service) releaseDeadLocked(dead core.NodeID) {
	for name, st := range s.locks {
		filtered := st.queue[:0]
		for _, q := range st.queue {
			if q.node != dead {
				filtered = append(filtered, q)
			}
		}
		st.queue = filtered
		if st.owner == dead {
			s.promoteLocked(name, st)
		}
	}
}

func (s *Service) notifyLocked(key string, val []byte, deleted bool) {
	if len(s.applyHooks) > 0 {
		s.hookKeys = append(s.hookKeys, key)
	}
	for _, w := range s.watchers {
		w(key, val, deleted)
	}
}

// applySnapReqFromLocked answers a joiner's state-transfer request at
// its ordered position. The deterministic responder (lowest live member
// other than the requester) sends either a fast-forward delta — the ops
// and removals the requester's recovered applied vector misses, straight
// out of the recent log — or, when the log no longer covers the gap (or
// the request asked for it), a full targeted snapshot.
func (s *Service) applySnapReqFromLocked(origin core.NodeID, o op) {
	if s.id == origin || s.syncing || s.id != s.responderLocked(origin) {
		return
	}
	reg := s.node.Stats()
	if !o.wantFull {
		if entries, ok := s.deltaForLocked(o); ok {
			s.tracef("serving delta to n%d: %d entries, reqApplied=%v myApplied=%v", origin, len(entries), o.applied, s.applied)
			reg.Counter(stats.MetricRecoveryDeltas).Inc()
			payload := encodeSnapDelta(origin, entries)
			go s.node.Multicast(payload)
			return
		}
	}
	s.tracef("serving full snapshot to n%d (wantFull=%v reqApplied=%v myApplied=%v evictedHigh=%v)", origin, o.wantFull, o.applied, s.applied, s.evictedHigh)
	reg.Counter(stats.MetricRecoveryFulls).Inc()
	snap := s.captureTargetLocked(origin)
	go s.node.Multicast(snap)
}

// deltaSafeKind reports whether an op can ride a fast-forward delta.
// Reshard and snapshot-barrier ops are excluded: their effects depend on
// coordinator state the joiner cannot reconstruct mid-stream, so any gap
// containing one falls back to the full snapshot.
func deltaSafeKind(k opKind) bool {
	switch k {
	case opAcquire, opRelease, opCancel, opSet, opDel, opBatch, opFence,
		opTxnPrepare, opTxnCommit, opTxnAbort, opTxnDecide:
		return true
	}
	return false
}

// deltaForLocked assembles the fast-forward delta for a request, or
// reports that the recent log no longer covers the requester's gap.
func (s *Service) deltaForLocked(o op) ([]deltaEntry, bool) {
	// Mid-handoff or mid-barrier state does not fast-forward; and a
	// requester on another routing epoch needs the authoritative state.
	if s.frozenID != 0 || s.staged != nil || s.snapID != 0 {
		return nil, false
	}
	if s.router != nil && s.router.Epoch() != o.epoch {
		return nil, false
	}
	// Coverage: for every origin where we are ahead, and for the removal
	// sequence, the log must reach back to the requester's position.
	if o.removals > s.removalCount || s.remEvictedHigh > o.removals {
		return nil, false
	}
	for origin, mine := range s.applied {
		if mine > o.applied[origin] && s.evictedHigh[origin] > o.applied[origin] {
			return nil, false
		}
	}
	var out []deltaEntry
	for _, b := range s.recent {
		if b.isRemoval {
			if b.seq > o.removals {
				out = append(out, deltaEntry{removal: b.origin, remIdx: b.seq})
			}
			continue
		}
		if b.seq <= o.applied[b.origin] {
			continue
		}
		if !deltaSafeKind(b.op.kind) || len(b.raw) == 0 {
			return nil, false
		}
		out = append(out, deltaEntry{origin: b.origin, seq: b.seq, raw: b.raw, removal: wire.NoNode})
	}
	return out, true
}

// applySnapDeltaLocked fast-forwards this (targeted, syncing) replica:
// the missed ops and removals replay in ring order through the same
// filtered-apply path a live delivery uses, then the live sync buffer
// drains on top. Non-target replicas only advance the sender's applied
// entry, mirroring the no-effect carrier op.
func (s *Service) applySnapDeltaLocked(origin core.NodeID, seq uint64, o op) {
	if o.target == s.id && s.syncing {
		s.tracef("applying delta from n%d: %d entries, %d buffered", origin, len(o.delta), len(s.buffer))
		s.syncing = false
		if s.syncTimer != nil {
			s.syncTimer.Stop()
		}
		for _, e := range o.delta {
			if e.removal != wire.NoNode {
				s.applyRemovalReplayLocked(e.removal, e.remIdx)
				continue
			}
			if op2, ok := decodeOp(e.raw); ok {
				s.applyFilteredLocked(e.origin, e.seq, op2, e.raw)
			}
		}
		buf := s.buffer
		s.buffer = nil
		for _, b := range buf {
			s.applyFilteredLocked(b.origin, b.seq, b.op, b.raw)
		}
		// The replica is authoritative again: fold the fast-forward into
		// the on-disk snapshot so the next restart resumes from here.
		s.compactLocked()
		s.queueOrphanKickLocked()
	}
	if seq > s.applied[origin] {
		s.applied[origin] = seq
	}
	s.rview.stamp()
	s.wakeReadersLocked()
}

// applyRemovalReplayLocked re-applies a membership removal during gap,
// delta, or WAL replay: the same dead-node cleanup the ordered removal
// ran, guarded by the removal index so a covered removal is a no-op.
// Replaying removals at their recorded position is safe because ring
// FIFO ordered each removal before any op of the node's next
// incarnation.
func (s *Service) applyRemovalReplayLocked(dead core.NodeID, idx uint64) {
	if idx <= s.removalCount {
		return
	}
	s.removalCount = idx
	s.logRemovalLocked(dead, idx)
	s.releaseDeadLocked(dead)
	s.abortDeadCoordinatorLocked(dead)
}

// applySnapshotLocked installs a snapshot and replays buffered ops.
func (s *Service) applySnapshotLocked(origin core.NodeID, o op) {
	s.tracef("applySnapshot from n%d target=%d syncing=%v", origin, o.target, s.syncing)
	if o.target != wire.NoNode {
		// Targeted at one (joining) replica: others skip it, and the
		// target applies it only while waiting for state transfer.
		if o.target != s.id {
			return
		}
		if !s.syncing {
			return
		}
	}
	// Broadcast snapshots (merge resync, fallback resync) are
	// authoritative for every replica, syncing or not: each one is an
	// ordered point where any divergence — for example from the
	// time-based sync fallback racing a snapshot — is healed. A replica
	// that was NOT syncing has applied ops ordered between the snapshot's
	// capture and its delivery; those must be replayed from the recent-op
	// log after the overwrite, or the snapshot must be skipped when the
	// log no longer covers the gap.
	var gapReplay []bufferedOp
	if !s.syncing {
		st0, err0 := decodeSnapshotState(o.val)
		if err0 != nil {
			return
		}
		snapApplied := st0.applied
		for origin, mine := range s.applied {
			if mine > snapApplied[origin] && s.evictedHigh[origin] > snapApplied[origin] {
				return // gap not covered by the log: keep our state
			}
		}
		if s.removalCount > st0.removals && s.remEvictedHigh > st0.removals {
			return // a removal in the gap was evicted: keep our state
		}
		for _, b := range s.recent {
			if b.isRemoval {
				if b.seq > st0.removals {
					gapReplay = append(gapReplay, b)
				}
				continue
			}
			if b.seq > snapApplied[b.origin] {
				gapReplay = append(gapReplay, b)
			}
		}
	}
	st, err := decodeSnapshotState(o.val)
	if err != nil {
		return
	}
	old := s.kv
	s.installSnapshotStateLocked(st)
	// If the handoff's freeze op itself was covered by the snapshot,
	// re-queue the capture so a coordinating router still receives it
	// (frozen slices are immutable, so this capture equals the original).
	if s.frozenID != 0 {
		s.queueCaptureLocked(origin)
	}
	// Adopted stages whose coordinator is already gone from this ring's
	// membership will never see an ordered resolution: park them for the
	// decide ring's verdict, like a locally observed removal would have.
	for id, tx := range s.txns {
		if tx.decideRing >= 0 && len(s.live) > 0 && !s.live[tx.by] {
			s.orphans[id] = tx.by
		}
	}
	s.queueOrphanKickLocked()
	s.syncing = false
	if s.syncTimer != nil {
		s.syncTimer.Stop()
	}
	// Watchers must observe the state transfer: notify the diff between
	// the replaced state and the snapshot, in stable (key-sorted) order.
	var changed []string
	for k, v := range s.kv {
		if ov, ok := old[k]; !ok || string(ov) != string(v) {
			changed = append(changed, k)
		}
	}
	sort.Strings(changed)
	for _, k := range changed {
		s.notifyLocked(k, s.kv[k], false)
	}
	var removed []string
	for k := range old {
		if _, ok := s.kv[k]; !ok {
			removed = append(removed, k)
		}
	}
	sort.Strings(removed)
	for _, k := range removed {
		s.notifyLocked(k, nil, true)
	}
	buf := s.buffer
	s.buffer = nil
	for _, b := range gapReplay {
		if b.isRemoval {
			s.applyRemovalReplayLocked(b.origin, b.seq)
			continue
		}
		s.applyFilteredLocked(b.origin, b.seq, b.op, b.raw)
	}
	for _, b := range buf {
		s.applyFilteredLocked(b.origin, b.seq, b.op, b.raw)
	}
	// An installed snapshot supersedes whatever the WAL held: fold it
	// into the on-disk snapshot so a crash right after the transfer
	// recovers the transferred state, not the pre-transfer log.
	s.compactLocked()
	// Local requests still in flight need no recovery here: the ring's
	// atomic multicast guarantees a live origin's message is eventually
	// delivered (the outbox and token copies survive regeneration and
	// merges), and the applied-vector filter plus ackCoveredSelfOpLocked
	// handle the snapshot-covered case.
}

// installSnapshotStateLocked adopts a decoded snapshot as this replica's
// full state — shared by ordered snapshot installs and WAL recovery. The
// sender's resharding state, staged transactions, and barriers come
// along: the ordered decisions below the snapshot's position must replay
// identically here. The recent log resets to the snapshot's baseline:
// ops applied before it must never replay on top of it (they may come
// from a pre-merge lineage it supersedes), and raising evictedHigh to
// the baseline makes any STALE snapshot deterministically skipped by the
// coverage check instead of rewinding state.
func (s *Service) installSnapshotStateLocked(st snapshotState) {
	s.kv = st.kv
	if s.kv == nil {
		s.kv = make(map[string][]byte)
	}
	s.rview.reload(s.kv)
	s.locks = st.locks
	if s.locks == nil {
		s.locks = make(map[string]*lockState)
	}
	s.applied = st.applied
	if s.applied == nil {
		s.applied = make(map[core.NodeID]uint64)
	}
	s.frozenID = st.frozenID
	s.frozenBy = st.frozenBy
	s.frozenEpoch = st.frozenEpoch
	s.frozen = st.frozen
	s.retired = st.retired
	s.staged = st.staged
	s.txns = st.txns
	if s.txns == nil {
		s.txns = make(map[uint64]*txnStage)
	}
	s.snapID, s.snapBy = st.snapID, st.snapBy
	s.removalCount = st.removals
	s.remEvictedHigh = st.removals
	s.decisionSeq = append([]uint64(nil), st.decisions...)
	s.decisions = make(map[uint64]bool, len(st.decisions))
	for _, id := range st.decisions {
		s.decisions[id] = true
	}
	s.recent = nil
	s.evictedHigh = make(map[core.NodeID]uint64, len(s.applied))
	for o, v := range s.applied {
		s.evictedHigh[o] = v
	}
}

// captureLocked snapshots the current state for the given target (NoNode
// = all replicas). Callers run inside an ordered handler, so the capture
// point is a well-defined position in the total order.
func (s *Service) capture(target core.NodeID) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.captureTargetLocked(target)
}

func (s *Service) captureTargetLocked(target core.NodeID) []byte {
	return encodeSnapshot(target, s.snapshotStateLocked())
}

// snapshotStateLocked assembles the replica's full replicated state —
// the same struct rides targeted transfers, broadcast resyncs, and the
// WAL's compacted on-disk snapshots.
func (s *Service) snapshotStateLocked() snapshotState {
	return snapshotState{
		kv: s.kv, locks: s.locks, applied: s.applied,
		frozenID: s.frozenID, frozenBy: s.frozenBy, frozenEpoch: s.frozenEpoch,
		frozen: s.frozen, retired: s.retired, staged: s.staged,
		txns: s.txns, snapID: s.snapID, snapBy: s.snapBy,
		removals: s.removalCount, decisions: s.decisionSeq,
	}
}

// --- durability: WAL attachment and crash recovery ---

// Orphan-verdict states (see resolveOrphans and localVerdict).
const (
	verdictPending = iota
	verdictCommit
	verdictAbort
)

// SetStorage attaches a write-ahead log to this replica: every ordered
// apply is appended raw, and the tail compacts into a snapshot of the
// full replica state once it exceeds snapshotEvery bytes (0 disables
// size-triggered compaction). Call before the node starts, typically
// followed by Recover.
func (s *Service) SetStorage(log wal.Log, snapshotEvery int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.storage = log
	s.snapshotEvery = snapshotEvery
}

// Recover replays the attached log — compacted snapshot first, then the
// tail — rebuilding the replica's state as of the last append the log
// retained, and returns the number of tail records replayed. Call after
// SetStorage and before the node starts: the recovered applied vector is
// what the rejoin request advertises, so state transfer fast-forwards
// from here instead of retransferring the keyspace.
func (s *Service) Recover() (int, error) {
	s.mu.Lock()
	if s.storage == nil || s.closed {
		s.mu.Unlock()
		return 0, nil
	}
	snap, tail, err := s.storage.Recover()
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.recovering = true
	if snap != nil {
		if st, derr := decodeSnapshotState(snap); derr == nil {
			s.installSnapshotStateLocked(st)
		}
	}
	replayed := 0
	for _, rec := range tail {
		if rec.Origin == walRemovalOrigin {
			if len(rec.Payload) >= 4 {
				s.applyRemovalReplayLocked(core.NodeID(binary.LittleEndian.Uint32(rec.Payload)), rec.Seq)
				replayed++
			}
			continue
		}
		if o, ok := decodeOp(rec.Payload); ok {
			s.applyFilteredLocked(core.NodeID(rec.Origin), rec.Seq, o, rec.Payload)
			replayed++
		}
	}
	// Stages this node itself coordinated are orphans now: the pre-crash
	// commit driver died with the old process, so the decide ring's
	// verdict — not a retry that will never come — must resolve them.
	for id, tx := range s.txns {
		if tx.decideRing >= 0 && tx.by == s.id {
			s.orphans[id] = tx.by
		}
	}
	// Replay must not re-fire router callbacks or apply hooks: the
	// handoffs and captures they served are long resolved.
	s.postApply = nil
	s.hookKeys = nil
	s.recovering = false
	s.recovered = true
	if snap != nil || replayed > 0 {
		// Buffer ordered deliveries until state transfer anchors this
		// replica. The admitting token can still carry recent messages
		// whose delivery precedes the join announcement; applying them
		// now would graft a non-prefix of the ring's order onto the
		// recovered vector, and the rejoin request built from that
		// vector would make the responder's per-origin delta filter
		// replay older ops over newer effects. No fallback timer yet:
		// admission may take arbitrarily long, and the ordered
		// join/merge anchor (enterSync) starts the state-transfer
		// clock. A replica that instead seeds its own ring exits
		// through the singleton membership event.
		s.syncing = true
		s.buffer = nil
	}
	s.mu.Unlock()
	if replayed > 0 {
		s.node.Stats().Counter(stats.MetricRecoveryReplayed).Add(int64(replayed))
	}
	return replayed, nil
}

// String summarizes the replica (diagnostics).
func (s *Service) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return fmt.Sprintf("dds{node=%v keys=%d locks=%d syncing=%v}", s.id, len(s.kv), len(s.locks), s.syncing)
}
