// Package dds is the slice of the Raincore Distributed Data Service the
// paper describes (§2.7, §5): a distributed lock manager whose named locks
// can be held without keeping the token, and a replicated key-value map
// for cluster state (virtual IP assignments, connection tables, load
// figures).
//
// Both are replicated state machines driven by the session service's
// agreed total order: every replica applies the same operations in the
// same sequence, so no further coordination is needed. Membership changes
// arrive as ordered system messages, which lets every replica release a
// dead node's locks at the same logical instant. Joiners and merged
// groups converge through ordered snapshots (state transfer).
package dds

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
)

// Service is one node's replica of the distributed data service.
type Service struct {
	node *core.Node
	id   core.NodeID

	mu      sync.Mutex
	locks   map[string]*lockState
	kv      map[string][]byte
	nextReq uint64

	// Local waiters.
	lockWait map[uint64]chan struct{} // reqID -> granted
	opWait   map[uint64]chan struct{} // reqID -> applied locally
	pending  map[uint64]pendingAcquire

	// State-transfer mode: while syncing, operations are buffered and
	// replayed after the snapshot applies.
	syncing   bool
	buffer    []bufferedOp
	syncTimer *time.Timer
	// applied records, per origin, the highest multicast sequence whose
	// dds op this replica has applied. It rides inside snapshots so a
	// receiving replica can replay exactly the buffered ops the snapshot
	// does not already include.
	applied map[core.NodeID]uint64
	// recent is a bounded log of applied ops (in apply order). When an
	// authoritative broadcast snapshot arrives at a replica that was not
	// syncing, the ops ordered between the snapshot's capture and its
	// delivery would otherwise be erased by the overwrite; the replica
	// replays them from this log. evictedHigh tracks, per origin, the
	// highest sequence ever evicted, so a replica can tell when the log
	// no longer covers a snapshot's gap and must skip it.
	recent      []bufferedOp
	evictedHigh map[core.NodeID]uint64

	watchers    []func(key string, val []byte, deleted bool)
	app         core.Handlers
	memberCount int
	lowest      core.NodeID
	closed      bool
}

type lockState struct {
	owner    core.NodeID
	ownerReq uint64
	queue    []lockReq
}

type lockReq struct {
	node  core.NodeID
	reqID uint64
}

type pendingAcquire struct {
	name  string
	reqID uint64
}

type bufferedOp struct {
	origin core.NodeID
	seq    uint64
	op     op
}

// snapshotWait bounds how long a syncing replica waits before requesting
// a snapshot explicitly (covers an admitter dying mid-transfer).
const snapshotWait = 2 * time.Second

// New attaches a data service replica to a session node. It installs the
// node's handlers; the application's own handlers go through SetAppHandlers
// so both layers observe the same ordered stream.
func New(node *core.Node) *Service {
	s := &Service{
		node:     node,
		id:       node.ID(),
		locks:    make(map[string]*lockState),
		kv:       make(map[string][]byte),
		lockWait: make(map[uint64]chan struct{}),
		opWait:   make(map[uint64]chan struct{}),
		pending:  make(map[uint64]pendingAcquire),
		applied:  make(map[core.NodeID]uint64),

		evictedHigh: make(map[core.NodeID]uint64),
	}
	node.SetHandlers(core.Handlers{
		OnDeliver:    s.onDeliver,
		OnSys:        s.onSys,
		OnMembership: s.onMembership,
		OnShutdown:   s.onShutdown,
	})
	return s
}

// SetAppHandlers registers the application's handlers; deliveries that are
// not data-service operations pass through in order.
func (s *Service) SetAppHandlers(h core.Handlers) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.app = h
}

// Node returns the underlying session node.
func (s *Service) Node() *core.Node { return s.node }

// --- public API: locks ---

// ErrNotHolder is returned by Unlock when this node does not hold the lock.
var ErrNotHolder = errors.New("dds: not the lock holder")

// Lock acquires the named lock, blocking until granted or ctx is done.
// Unlike the token master-lock (§2.7), the lock is held without pinning
// the token.
func (s *Service) Lock(ctx context.Context, name string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dds: service closed")
	}
	s.nextReq++
	reqID := s.nextReq
	ch := make(chan struct{})
	s.lockWait[reqID] = ch
	s.pending[reqID] = pendingAcquire{name: name, reqID: reqID}
	s.mu.Unlock()

	if err := s.node.Multicast(encodeAcquire(name, reqID)); err != nil {
		s.dropWaiter(reqID)
		return err
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		s.dropWaiter(reqID)
		// Withdraw the queued request so it cannot be granted later.
		_ = s.node.Multicast(encodeCancel(name, reqID))
		return ctx.Err()
	}
}

func (s *Service) dropWaiter(reqID uint64) {
	s.mu.Lock()
	delete(s.lockWait, reqID)
	delete(s.pending, reqID)
	s.mu.Unlock()
}

// Unlock releases the named lock held by this node.
func (s *Service) Unlock(name string) error {
	s.mu.Lock()
	st := s.locks[name]
	if st == nil || st.owner != s.id {
		s.mu.Unlock()
		return ErrNotHolder
	}
	reqID := st.ownerReq
	s.mu.Unlock()
	return s.node.Multicast(encodeRelease(name, reqID))
}

// Holder reports the current owner of the named lock.
func (s *Service) Holder(name string) (core.NodeID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.locks[name]
	if st == nil || st.owner == wire.NoNode {
		return wire.NoNode, false
	}
	return st.owner, true
}

// --- public API: replicated map ---

// Set writes key=val cluster-wide and returns once the write has applied
// locally (read-your-writes).
func (s *Service) Set(ctx context.Context, key string, val []byte) error {
	return s.doOp(ctx, func(reqID uint64) []byte { return encodeSet(key, val, reqID) })
}

// Delete removes a key cluster-wide.
func (s *Service) Delete(ctx context.Context, key string) error {
	return s.doOp(ctx, func(reqID uint64) []byte { return encodeDel(key, reqID) })
}

func (s *Service) doOp(ctx context.Context, build func(reqID uint64) []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dds: service closed")
	}
	s.nextReq++
	reqID := s.nextReq
	ch := make(chan struct{})
	s.opWait[reqID] = ch
	s.mu.Unlock()
	if err := s.node.Multicast(build(reqID)); err != nil {
		s.mu.Lock()
		delete(s.opWait, reqID)
		s.mu.Unlock()
		return err
	}
	select {
	case <-ch:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		delete(s.opWait, reqID)
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Get reads a key from the local replica.
func (s *Service) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.kv[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Keys lists the local replica's keys.
func (s *Service) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.kv))
	for k := range s.kv {
		out = append(out, k)
	}
	return out
}

// Watch registers a callback for key changes, invoked in apply order.
func (s *Service) Watch(fn func(key string, val []byte, deleted bool)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watchers = append(s.watchers, fn)
}

// --- ordered event handlers ---

// onDeliver routes one ordered delivery: data-service ops apply to the
// replica; everything else passes through to the application.
func (s *Service) onDeliver(d core.Delivery) {
	op, ok := decodeOp(d.Payload)
	if !ok {
		s.mu.Lock()
		h := s.app.OnDeliver
		s.mu.Unlock()
		if h != nil {
			h(d)
		}
		return
	}
	s.mu.Lock()
	if s.syncing && op.kind != opSnapshot {
		s.buffer = append(s.buffer, bufferedOp{origin: d.Origin, seq: d.Seq, op: op})
		s.mu.Unlock()
		return
	}
	s.applyFilteredLocked(d.Origin, d.Seq, op)
	s.mu.Unlock()
}

// onSys handles ordered membership announcements.
func (s *Service) onSys(e core.SysEvent) {
	switch e.Kind {
	case wire.SysNodeRemoved:
		s.mu.Lock()
		s.releaseDeadLocked(e.Subject)
		s.mu.Unlock()
	case wire.SysNodeJoined:
		if e.Subject == s.id && e.Origin != s.id {
			// We just joined an existing group: buffer until the
			// admitter's snapshot arrives.
			s.enterSync()
		} else if e.Origin == s.id {
			// We admitted the joiner: capture state at this ordered
			// position and send it (targeted at the joiner).
			snap := s.capture(e.Subject)
			go s.node.Multicast(snap)
		}
	case wire.SysGroupMerged:
		// Both sides' replicas may have diverged: everyone resyncs to
		// the merging node's state, buffering until it arrives.
		if e.Origin == s.id {
			snap := s.capture(wire.NoNode) // NoNode = all replicas
			s.enterSync()
			go s.node.Multicast(snap)
		} else {
			s.enterSync()
		}
	}
	s.mu.Lock()
	h := s.app.OnSys
	s.mu.Unlock()
	if h != nil {
		h(e)
	}
}

func (s *Service) onMembership(e core.MembershipEvent) {
	s.mu.Lock()
	s.memberCount = len(e.Members)
	s.lowest = wire.NoNode
	for _, m := range e.Members {
		if s.lowest == wire.NoNode || m < s.lowest {
			s.lowest = m
		}
	}
	h := s.app.OnMembership
	s.mu.Unlock()
	if h != nil {
		h(e)
	}
}

func (s *Service) onShutdown(reason string) {
	s.mu.Lock()
	s.closed = true
	h := s.app.OnShutdown
	s.mu.Unlock()
	if h != nil {
		h(reason)
	}
}

// enterSync starts buffering ops until a snapshot applies. If none arrives
// within snapshotWait (the snapshot sender may have died), the replica
// requests one explicitly.
func (s *Service) enterSync() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.syncing {
		return
	}
	s.syncing = true
	s.buffer = nil
	s.armSyncTimerLocked()
}

func (s *Service) armSyncTimerLocked() {
	if s.syncTimer != nil {
		s.syncTimer.Stop()
	}
	s.syncTimer = time.AfterFunc(snapshotWait, func() {
		s.mu.Lock()
		stillSyncing := s.syncing
		if stillSyncing && s.id == s.lowest {
			// Nobody is going to send us a snapshot (the sender died, or
			// every replica is syncing). As the deterministic leader,
			// adopt the buffered state, then publish an authoritative
			// snapshot so every replica resyncs to the same state at the
			// same ordered position.
			buf := s.buffer
			s.buffer = nil
			s.syncing = false
			for _, b := range buf {
				s.applyFilteredLocked(b.origin, b.seq, b.op)
			}
			snap := s.captureTargetLocked(wire.NoNode)
			s.mu.Unlock()
			go s.node.Multicast(snap)
			return
		}
		if stillSyncing {
			s.armSyncTimerLocked()
		}
		s.mu.Unlock()
		if stillSyncing {
			_ = s.node.Multicast(encodeSnapReq())
		}
	})
}

// --- replicated state machine ---

// applyFilteredLocked applies an op unless the applied vector shows a
// snapshot already covered it. A filtered op from this node itself must
// still wake its local waiter: the op's effect is present in the snapshot
// state, so the caller's request has succeeded.
func (s *Service) applyFilteredLocked(origin core.NodeID, seq uint64, o op) {
	if seq <= s.applied[origin] {
		if origin == s.id {
			s.ackCoveredSelfOpLocked(o)
		}
		return
	}
	s.applied[origin] = seq
	if o.kind != opSnapshot && o.kind != opSnapReq {
		s.logRecentLocked(origin, seq, o)
	}
	s.applyLocked(origin, o)
}

// recentLogCap bounds the replay log; snapshots older than this many ops
// cannot be applied by an up-to-date replica and are skipped instead.
const recentLogCap = 4096

func (s *Service) logRecentLocked(origin core.NodeID, seq uint64, o op) {
	if len(s.recent) >= recentLogCap {
		old := s.recent[0]
		if old.seq > s.evictedHigh[old.origin] {
			s.evictedHigh[old.origin] = old.seq
		}
		s.recent = s.recent[1:]
	}
	s.recent = append(s.recent, bufferedOp{origin: origin, seq: seq, op: o})
}

// ackCoveredSelfOpLocked wakes waiters for a self-op whose effect arrived
// via snapshot rather than direct application.
func (s *Service) ackCoveredSelfOpLocked(o op) {
	switch o.kind {
	case opSet, opDel:
		s.signalOpLocked(s.id, o.reqID)
	case opAcquire:
		st := s.locks[o.key]
		if st != nil && st.owner == s.id && st.ownerReq == o.reqID {
			s.grantLocked(s.id, o.reqID)
		}
		// If the snapshot shows us queued, the grant fires when a later
		// release promotes us; if absent, the pending re-request logic
		// in applySnapshotLocked re-submits.
	}
}

// applyLocked applies one op; caller holds s.mu.
func (s *Service) applyLocked(origin core.NodeID, o op) {
	switch o.kind {
	case opAcquire:
		s.applyAcquireLocked(origin, o)
	case opRelease:
		s.applyReleaseLocked(origin, o)
	case opCancel:
		s.applyCancelLocked(origin, o)
	case opSet:
		s.kv[o.key] = append([]byte(nil), o.val...)
		s.notifyLocked(o.key, o.val, false)
		s.signalOpLocked(origin, o.reqID)
	case opDel:
		delete(s.kv, o.key)
		s.notifyLocked(o.key, nil, true)
		s.signalOpLocked(origin, o.reqID)
	case opSnapshot:
		s.applySnapshotLocked(origin, o)
	case opSnapReq:
		// Deterministic responder: the lowest live member other than
		// the requester captures at this ordered position.
		if s.id != origin && s.id == s.responderLocked(origin) && !s.syncing {
			snap := s.captureTargetLocked(origin)
			go s.node.Multicast(snap)
		}
	}
}

func (s *Service) responderLocked(requester core.NodeID) core.NodeID {
	members := s.node.Members()
	best := wire.NoNode
	for _, m := range members {
		if m == requester {
			continue
		}
		if best == wire.NoNode || m < best {
			best = m
		}
	}
	return best
}

func (s *Service) applyAcquireLocked(origin core.NodeID, o op) {
	st := s.locks[o.key]
	if st == nil {
		st = &lockState{}
		s.locks[o.key] = st
	}
	if st.owner == wire.NoNode {
		st.owner = origin
		st.ownerReq = o.reqID
		s.grantLocked(origin, o.reqID)
	} else {
		st.queue = append(st.queue, lockReq{node: origin, reqID: o.reqID})
	}
}

func (s *Service) applyReleaseLocked(origin core.NodeID, o op) {
	st := s.locks[o.key]
	if st == nil || st.owner != origin || st.ownerReq != o.reqID {
		return // stale release
	}
	s.promoteLocked(o.key, st)
}

func (s *Service) applyCancelLocked(origin core.NodeID, o op) {
	st := s.locks[o.key]
	if st == nil {
		return
	}
	if st.owner == origin && st.ownerReq == o.reqID {
		// Granted before the cancellation was ordered: treat as release.
		s.promoteLocked(o.key, st)
		return
	}
	for i, q := range st.queue {
		if q.node == origin && q.reqID == o.reqID {
			st.queue = append(st.queue[:i], st.queue[i+1:]...)
			return
		}
	}
}

func (s *Service) promoteLocked(name string, st *lockState) {
	if len(st.queue) == 0 {
		st.owner = wire.NoNode
		st.ownerReq = 0
		delete(s.locks, name)
		return
	}
	next := st.queue[0]
	st.queue = st.queue[1:]
	st.owner = next.node
	st.ownerReq = next.reqID
	s.grantLocked(next.node, next.reqID)
}

// grantLocked wakes the local waiter when this replica's node became owner.
func (s *Service) grantLocked(node core.NodeID, reqID uint64) {
	if node != s.id {
		return
	}
	if ch, ok := s.lockWait[reqID]; ok {
		delete(s.lockWait, reqID)
		delete(s.pending, reqID)
		close(ch)
	}
}

func (s *Service) signalOpLocked(origin core.NodeID, reqID uint64) {
	if origin != s.id {
		return
	}
	if ch, ok := s.opWait[reqID]; ok {
		delete(s.opWait, reqID)
		close(ch)
	}
}

// releaseDeadLocked frees every lock and queue position owned by a node
// that left the membership; ordered, so all replicas do this at the same
// logical instant (§2.7).
func (s *Service) releaseDeadLocked(dead core.NodeID) {
	for name, st := range s.locks {
		filtered := st.queue[:0]
		for _, q := range st.queue {
			if q.node != dead {
				filtered = append(filtered, q)
			}
		}
		st.queue = filtered
		if st.owner == dead {
			s.promoteLocked(name, st)
		}
	}
}

func (s *Service) notifyLocked(key string, val []byte, deleted bool) {
	for _, w := range s.watchers {
		w(key, val, deleted)
	}
}

// applySnapshotLocked installs a snapshot and replays buffered ops.
func (s *Service) applySnapshotLocked(origin core.NodeID, o op) {
	if o.target != wire.NoNode {
		// Targeted at one (joining) replica: others skip it, and the
		// target applies it only while waiting for state transfer.
		if o.target != s.id {
			return
		}
		if !s.syncing {
			return
		}
	}
	// Broadcast snapshots (merge resync, fallback resync) are
	// authoritative for every replica, syncing or not: each one is an
	// ordered point where any divergence — for example from the
	// time-based sync fallback racing a snapshot — is healed. A replica
	// that was NOT syncing has applied ops ordered between the snapshot's
	// capture and its delivery; those must be replayed from the recent-op
	// log after the overwrite, or the snapshot must be skipped when the
	// log no longer covers the gap.
	var gapReplay []bufferedOp
	if !s.syncing {
		st0, err0 := decodeSnapshotState(o.val)
		if err0 != nil {
			return
		}
		snapApplied := st0.applied
		for origin, mine := range s.applied {
			if mine > snapApplied[origin] && s.evictedHigh[origin] > snapApplied[origin] {
				return // gap not covered by the log: keep our state
			}
		}
		for _, b := range s.recent {
			if b.seq > snapApplied[b.origin] {
				gapReplay = append(gapReplay, b)
			}
		}
	}
	st, err := decodeSnapshotState(o.val)
	if err != nil {
		return
	}
	old := s.kv
	s.kv = st.kv
	s.locks = st.locks
	s.applied = st.applied
	if s.applied == nil {
		s.applied = make(map[core.NodeID]uint64)
	}
	// The snapshot is a new lineage baseline: ops applied before it must
	// never be replayed on top of a later snapshot (they may come from a
	// pre-merge lineage the snapshot supersedes). Clearing the log and
	// raising evictedHigh to the baseline also makes any STALE snapshot —
	// one captured before this baseline — deterministically skipped by
	// the coverage check instead of rewinding state.
	s.recent = nil
	s.evictedHigh = make(map[core.NodeID]uint64, len(s.applied))
	for o, v := range s.applied {
		s.evictedHigh[o] = v
	}
	s.syncing = false
	if s.syncTimer != nil {
		s.syncTimer.Stop()
	}
	// Watchers must observe the state transfer: notify the diff between
	// the replaced state and the snapshot, in stable (key-sorted) order.
	var changed []string
	for k, v := range s.kv {
		if ov, ok := old[k]; !ok || string(ov) != string(v) {
			changed = append(changed, k)
		}
	}
	sort.Strings(changed)
	for _, k := range changed {
		s.notifyLocked(k, s.kv[k], false)
	}
	var removed []string
	for k := range old {
		if _, ok := s.kv[k]; !ok {
			removed = append(removed, k)
		}
	}
	sort.Strings(removed)
	for _, k := range removed {
		s.notifyLocked(k, nil, true)
	}
	buf := s.buffer
	s.buffer = nil
	for _, b := range gapReplay {
		s.applyFilteredLocked(b.origin, b.seq, b.op)
	}
	for _, b := range buf {
		s.applyFilteredLocked(b.origin, b.seq, b.op)
	}
	// Local requests still in flight need no recovery here: the ring's
	// atomic multicast guarantees a live origin's message is eventually
	// delivered (the outbox and token copies survive regeneration and
	// merges), and the applied-vector filter plus ackCoveredSelfOpLocked
	// handle the snapshot-covered case.
}

// captureLocked snapshots the current state for the given target (NoNode
// = all replicas). Callers run inside an ordered handler, so the capture
// point is a well-defined position in the total order.
func (s *Service) capture(target core.NodeID) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.captureTargetLocked(target)
}

func (s *Service) captureTargetLocked(target core.NodeID) []byte {
	return encodeSnapshot(target, snapshotState{kv: s.kv, locks: s.locks, applied: s.applied})
}

// String summarizes the replica (diagnostics).
func (s *Service) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("dds{node=%v keys=%d locks=%d syncing=%v}", s.id, len(s.kv), len(s.locks), s.syncing)
}
