package dds

import (
	"fmt"
	"os"
)

// traceEnabled gates the state-transfer debug trace. It exists for
// debugging sync/recovery interleavings in tests; production runs leave
// it off and pay only a boolean check.
var traceEnabled = os.Getenv("DDS_TRACE") != ""

func (s *Service) tracef(format string, args ...any) {
	if !traceEnabled {
		return
	}
	fmt.Fprintf(os.Stderr, "[dds n%d %p] %s\n", s.id, s, fmt.Sprintf(format, args...))
}
