package dds

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// Ordered shard handoff.
//
// A routing-epoch change (grow or shrink) moves exactly the keyspace
// slices moved(oldRing, newRing) names. The coordinator — the lowest
// member of the combined membership, invoked through core.Resharder —
// drives a four-phase protocol in which every phase transition is a
// multicast on an affected ring's ordered stream:
//
//	FREEZE   on each source ring: from this ordered position, every
//	         replica rejects writes into the moving slices with
//	         ErrResharding. The coordinator's replica captures the
//	         slices' state at exactly this position.
//	INSTALL  on each target ring: the captured state is staged on every
//	         replica of the target shard (not yet visible).
//	FLIP     on each target ring: the staged state becomes live. When a
//	         node has applied the flip of every target, it atomically
//	         adopts the new epoch — subsequent writes it submits are
//	         ordered after the flip on the target ring — publishes it to
//	         its runtime, and silently purges the handed-off slices from
//	         the source replicas.
//	ABORT    (failure path, any ring) : sources unfreeze keeping their
//	         state, targets drop staged installs, every node stays on
//	         the old epoch. Triggered by the coordinator when a source
//	         or target ring dies mid-handoff or the deadline passes.
//
// Per-key ordering across the move: ops ordered before the freeze apply
// on the source; the capture equals the state at the freeze position
// (later writes are rejected deterministically); installs and the flip
// are ordered on the target before any post-flip write, because a node
// only submits to the target after locally applying the flip. A key's
// history is therefore a single linear sequence: source ops, then the
// handoff copy, then target ops.
//
// Reads never pause: until a node flips, its source replica serves the
// frozen slice; after, its target replica — which applied the installs
// before the flip — serves it. Keys outside the moving slices are
// routed identically in both epochs and never notice the handoff.

// capturedState is one source shard's moving slice, captured at the
// freeze position. Only held locks migrate; queued waiters were
// cancelled with ErrResharding at the freeze and retry against the
// target.
type capturedState struct {
	kv    map[string][]byte
	locks map[string]*lockState
}

// flipInfo is the payload of an ordered flip, everything a participant
// needs to adopt the new epoch with no prior handoff state.
type flipInfo struct {
	id      uint64
	epoch   uint64
	rings   []int
	targets []int
}

// sourceCapture carries one shard's capture to the coordinator.
type sourceCapture struct {
	shard int
	state capturedState
}

// leadReshard is the coordinator's in-flight handoff state.
type leadReshard struct {
	id       uint64
	epoch    uint64
	captured map[int]bool
	capCh    chan sourceCapture
	done     chan struct{}
}

// installChunk bounds keys per install op so a large slice travels as
// several ordered messages instead of one oversized frame.
const installChunk = 64

// Reshard implements core.Resharder: it migrates the keyspace diff
// between the two routing views and returns once this node (and, through
// their own ordered flips, every node) has published the new epoch.
// On error the handoff has been aborted and the old epoch stands.
func (s *Sharded) Reshard(ctx context.Context, old, new core.RoutingView) error {
	oldIDs, newIDs := ringIDsToInts(old.Rings), ringIDsToInts(new.Rings)
	oldRing := newHashRingFor(oldIDs, defaultReplicas)
	newRing := newHashRingFor(newIDs, defaultReplicas)
	ranges := moved(oldRing, newRing)
	bySource := make(map[int][]keyRange)
	targetSet := make(map[int]bool)
	for _, r := range ranges {
		bySource[r.from] = append(bySource[r.from], r)
		targetSet[r.to] = true
	}
	targets := sortedInts(targetSet)
	if len(targets) == 0 {
		// Nothing moves (degenerate diff). Still flip through one ring of
		// the new view so every node observes an ordered epoch change.
		targets = []int{newIDs[0]}
	}
	sources := make([]int, 0, len(bySource))
	for sid := range bySource {
		sources = append(sources, sid)
	}
	sort.Ints(sources)

	s.reshardMu.Lock()
	s.nextRID++
	rid := uint64(s.id)<<32 | s.nextRID
	lead := &leadReshard{
		id:       rid,
		epoch:    new.Epoch,
		captured: make(map[int]bool, len(sources)),
		capCh:    make(chan sourceCapture, len(sources)+1),
		done:     make(chan struct{}, 1),
	}
	s.lead = lead
	s.reshardMu.Unlock()
	defer func() {
		s.reshardMu.Lock()
		if s.lead == lead {
			s.lead = nil
		}
		s.reshardMu.Unlock()
	}()

	start := time.Now()
	abort := func(cause error) error {
		return s.abortReshard(rid, new.Epoch, sources, targets, cause)
	}

	// Phase 1: freeze every source's moving slices.
	for _, sid := range sources {
		svc := s.Shard(sid)
		if svc == nil {
			return abort(fmt.Errorf("dds: source shard %d is gone", sid))
		}
		rs := bySource[sid]
		if err := svc.doOp(ctx, func(reqID uint64) []byte { return encodeFreeze(rid, new.Epoch, rs, reqID) }); err != nil {
			return abort(fmt.Errorf("dds: freeze shard %d: %w", sid, err))
		}
	}

	// Phase 2: collect the captures taken at each freeze position.
	captured := make(map[int]capturedState, len(sources))
	for len(captured) < len(sources) {
		select {
		case c := <-lead.capCh:
			captured[c.shard] = c.state
		case <-ctx.Done():
			return abort(fmt.Errorf("dds: waiting for captures: %w", ctx.Err()))
		}
	}

	// Phase 3: install the moved state on its new owners, chunked.
	installs := make(map[int]*stagedInstall)
	staged := func(t int) *stagedInstall {
		in := installs[t]
		if in == nil {
			in = &stagedInstall{kv: make(map[string][]byte), locks: make(map[string]*lockState)}
			installs[t] = in
		}
		return in
	}
	keysMoved := 0
	for _, st := range captured {
		for k, v := range st.kv {
			staged(newRing.owner(fnv64a(k))).kv[k] = v
			keysMoved++
		}
		for name, ls := range st.locks {
			staged(newRing.owner(fnv64a(name))).locks[name] = ls
		}
	}
	for _, t := range targets {
		in := installs[t]
		if in == nil {
			continue
		}
		svc := s.Shard(t)
		if svc == nil {
			return abort(fmt.Errorf("dds: target shard %d is gone", t))
		}
		for _, chunk := range chunkInstall(in, installChunk) {
			chunk := chunk
			err := svc.doOp(ctx, func(reqID uint64) []byte {
				return encodeInstall(rid, new.Epoch, chunk.kv, chunk.locks, reqID)
			})
			if err != nil {
				return abort(fmt.Errorf("dds: install into shard %d: %w", t, err))
			}
		}
	}

	// Keep source handles across the flip: a shrink drops the removed
	// ring from the router's shard map, but its ordered purge must still
	// be sent so its replicas do not look frozen-by-a-dead-coordinator
	// when the ring later retires.
	srcSvcs := make(map[int]*Service, len(sources))
	for _, sid := range sources {
		srcSvcs[sid] = s.Shard(sid)
	}

	// Phase 4: flip every target; the router completes when the last
	// target's flip has applied locally.
	for _, t := range targets {
		svc := s.Shard(t)
		if svc == nil {
			return abort(fmt.Errorf("dds: target shard %d is gone", t))
		}
		err := svc.doOp(ctx, func(reqID uint64) []byte {
			return encodeFlip(rid, new.Epoch, newIDs, targets, reqID)
		})
		if err != nil {
			return abort(fmt.Errorf("dds: flip shard %d: %w", t, err))
		}
	}
	select {
	case <-lead.done:
	case <-ctx.Done():
		return abort(fmt.Errorf("dds: waiting for epoch flip: %w", ctx.Err()))
	}
	if s.reg != nil {
		s.reg.Histogram(stats.HistReshardPause).Observe(time.Since(start))
		s.reg.Counter(stats.MetricReshardKeysMoved).Add(int64(keysMoved))
	}
	// Epilogue: ordered purge of the handed-off slices on each source's
	// own stream. The handoff is committed — a purge that cannot be
	// delivered (for example the removed ring tearing down) only leaves
	// unreachable garbage behind, so errors are not aborts.
	for _, sid := range sources {
		if svc := srcSvcs[sid]; svc != nil {
			pctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			_ = svc.doOp(pctx, func(reqID uint64) []byte { return encodePurge(rid, new.Epoch, reqID) })
			cancel()
		}
	}
	return nil
}

// abortReshard multicasts the ordered abort on every involved ring (best
// effort — a dead ring is one reason to be here) and reports the cause.
func (s *Sharded) abortReshard(rid, epoch uint64, sources, targets []int, cause error) error {
	payload := encodeAbortReshard(rid, epoch)
	seen := make(map[int]bool)
	for _, id := range append(append([]int(nil), sources...), targets...) {
		if seen[id] {
			continue
		}
		seen[id] = true
		if svc := s.Shard(id); svc != nil {
			_ = svc.node.Multicast(payload)
		}
	}
	return fmt.Errorf("%w: %v", core.ErrReshardAborted, cause)
}

// wantsCapture reports whether this node is coordinating the handoff and
// still needs captures for it — replicas elsewhere skip building the
// capture entirely. reshardMu is a leaf lock, safe under Service.mu.
func (s *Sharded) wantsCapture(rid uint64) bool {
	s.reshardMu.Lock()
	defer s.reshardMu.Unlock()
	return s.lead != nil && s.lead.id == rid
}

// freezeApplied delivers a source shard's capture to the coordinator
// (no-op on every other node).
func (s *Sharded) freezeApplied(shard int, rid uint64, _ core.NodeID, st capturedState) {
	s.reshardMu.Lock()
	lead := s.lead
	want := lead != nil && lead.id == rid && !lead.captured[shard]
	if want {
		lead.captured[shard] = true
	}
	s.reshardMu.Unlock()
	if want {
		lead.capCh <- sourceCapture{shard: shard, state: st}
	}
}

// targetFlipped records one target's ordered flip; once every target of
// the handoff has flipped on this node, the node adopts the new epoch.
func (s *Sharded) targetFlipped(shard int, info flipInfo) {
	s.reshardMu.Lock()
	if s.obsID != info.id {
		s.obsID = info.id
		s.obsFlips = make(map[int]bool)
	}
	s.obsFlips[shard] = true
	complete := true
	for _, t := range info.targets {
		if !s.obsFlips[t] {
			complete = false
			break
		}
	}
	s.reshardMu.Unlock()
	if complete {
		s.completeFlip(info)
	}
}

// completeFlip swaps the router to the new epoch, purges the handed-off
// slices from the source replicas (now unreachable), publishes the view
// to the runtime, and releases a waiting coordinator.
func (s *Sharded) completeFlip(info flipInfo) {
	newRing := newHashRingFor(info.rings, defaultReplicas)
	s.mu.Lock()
	if info.epoch <= s.epoch {
		s.mu.Unlock()
		return // stale replay of an already-adopted flip
	}
	oldShards := s.shards
	next := make(map[int]*Service, len(info.rings))
	for _, id := range info.rings {
		if svc := oldShards[id]; svc != nil {
			next[id] = svc
		}
	}
	s.epoch = info.epoch
	s.ring = newRing
	s.shards = next
	s.mu.Unlock()
	// Finish any source purge whose ordered op arrived before this
	// node's flip (cross-ring skew): the sources are unreachable now.
	for _, svc := range oldShards {
		svc.purgeIfPending(info.id)
	}
	if s.reg != nil {
		s.reg.Counter(stats.MetricReshards).Inc()
	}
	if s.rt != nil {
		rings := make([]core.RingID, 0, len(info.rings))
		for _, id := range info.rings {
			rings = append(rings, core.RingID(id))
		}
		s.rt.PublishRouting(core.RoutingView{Epoch: info.epoch, Rings: rings})
	}
	s.reshardMu.Lock()
	lead := s.lead
	s.reshardMu.Unlock()
	if lead != nil && lead.id == info.id {
		select {
		case lead.done <- struct{}{}:
		default:
		}
	}
}

// reshardAborted is the participant-side abort observation: tell the
// runtime so a blocked AddRing/RemoveRing caller fails fast instead of
// timing out.
func (s *Sharded) reshardAborted(rid, epoch uint64) {
	if s.Epoch() >= epoch {
		return // the handoff committed here; this abort observation is stale
	}
	if s.reg != nil {
		s.reg.Counter(stats.MetricReshardAborts).Inc()
	}
	if s.rt != nil {
		s.rt.FailRouting(epoch, fmt.Errorf("dds: handoff %d aborted", rid))
	}
}

// chunkInstall splits an install into ops of at most n keys (locks ride
// the first chunk; there are few).
func chunkInstall(in *stagedInstall, n int) []*stagedInstall {
	var out []*stagedInstall
	cur := &stagedInstall{kv: make(map[string][]byte), locks: in.locks}
	if cur.locks == nil {
		cur.locks = make(map[string]*lockState)
	}
	for k, v := range in.kv {
		if len(cur.kv) >= n {
			out = append(out, cur)
			cur = &stagedInstall{kv: make(map[string][]byte), locks: make(map[string]*lockState)}
		}
		cur.kv[k] = v
	}
	out = append(out, cur)
	return out
}

func ringIDsToInts(rings []core.RingID) []int {
	out := make([]int, 0, len(rings))
	for _, r := range rings {
		out = append(out, int(r))
	}
	return out
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
