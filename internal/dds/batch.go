package dds

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/stats"
)

// BatchConfig tunes the per-replica write coalescer. The zero value is
// NOT the default — use DefaultBatchConfig (what New installs) and
// override fields from there.
type BatchConfig struct {
	// MaxOps flushes the pending frame once this many writes have
	// coalesced into it.
	MaxOps int
	// MaxBytes flushes the pending frame once its encoding reaches this
	// size, so a burst of large values cannot build an arbitrarily large
	// multicast frame.
	MaxBytes int
	// Linger is the longest a buffered write waits for company before
	// the frame flushes anyway. Zero (the default) selects the
	// self-clocking mode: the first write of a quiet replica flushes
	// immediately — single-writer latency is exactly the pre-batching
	// path — and only writes arriving while a frame is in flight
	// coalesce, flushing when that frame's ordered apply lands. A
	// positive linger instead always buffers, trading up to that much
	// latency for larger frames under sparse concurrency.
	Linger time.Duration
	// Disabled bypasses coalescing entirely: Set/Delete submit one
	// single-op frame each, the pre-batching wire shape.
	Disabled bool
}

// DefaultBatchConfig is the coalescer configuration New installs:
// batching on, self-clocking (linger 0), frames capped at 128 ops or
// 48 KiB, whichever comes first.
func DefaultBatchConfig() BatchConfig {
	return BatchConfig{MaxOps: 128, MaxBytes: 48 << 10}
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.MaxOps <= 0 {
		c.MaxOps = 128
	}
	if c.MaxBytes <= 0 {
		c.MaxBytes = 48 << 10
	}
	return c
}

// writeBatcher coalesces concurrent Set/Delete calls on one replica into
// multi-op opBatch frames, so one ordered multicast (and, downstream,
// one WAL record and one fsync) carries K writes.
//
// Callers register their opWait channel under s.mu first (exactly like
// the unbatched path), then enqueue under the batcher's own mutex —
// never the reverse, so the lock order is always s.mu → b.mu. Flushes
// run with no lock held: Multicast copies the payload on submit, so the
// frame buffer is recycled for the next batch.
//
// Flush triggers, in priority order: the frame fills (MaxOps/MaxBytes);
// the in-flight frame's ordered apply lands (linger 0); the linger timer
// fires (linger > 0); the token arrives (backstop — ops buffered since
// the last visit could not have been ordered earlier anyway, so the
// token is the natural batch clock).
type writeBatcher struct {
	s *Service

	mu    sync.Mutex
	cfg   BatchConfig
	frame []byte   // pending opBatch frame (batchFrameStart'd when count > 0)
	reqs  []uint64 // reqIDs of the pending frame's entries, in order
	count int
	// inFlight paces the self-clocking (linger 0) mode: one frame rides
	// the ring while the next accumulates; its ordered apply (or covered
	// ack, or multicast failure) releases the next flush.
	inFlight bool
	timer    *time.Timer
	spare    []byte // recycled frame buffer

	// hasBuf mirrors count > 0 so the token-arrival hook (which runs on
	// the node's event loop) can bail without taking the mutex.
	hasBuf atomic.Bool
	// kicking gates the token hook's flush goroutine to one at a time.
	kicking atomic.Bool

	cFlushes *stats.Counter
	cOps     *stats.Counter

	// onFlush observes each flush's op count (the gateway's batch-size
	// histogram). Guarded by mu so it can be wired after the node is
	// serving; invoked with no lock held.
	onFlush func(ops int)
}

func newWriteBatcher(s *Service) *writeBatcher {
	reg := s.node.Stats()
	return &writeBatcher{
		s:        s,
		cfg:      DefaultBatchConfig(),
		cFlushes: reg.Counter(stats.MetricDDSBatchFlushes),
		cOps:     reg.Counter(stats.MetricDDSBatchedOps),
	}
}

// add enqueues one write (already registered in s.opWait under reqID)
// and flushes when a trigger fires. Caller must not hold s.mu.
func (b *writeBatcher) add(key string, val []byte, del bool, reqID uint64) {
	b.mu.Lock()
	if b.count == 0 {
		b.frame = batchFrameStart(b.spareLocked())
	}
	if del {
		b.frame = appendBatchDel(b.frame, key, reqID)
	} else {
		b.frame = appendBatchSet(b.frame, key, val, reqID)
	}
	b.reqs = append(b.reqs, reqID)
	b.count++
	b.hasBuf.Store(true)

	var frame []byte
	var reqs []uint64
	var n int
	switch {
	case b.count >= b.cfg.MaxOps || len(b.frame) >= b.cfg.MaxBytes:
		frame, reqs, n = b.takeLocked()
	case b.cfg.Linger > 0:
		if b.timer == nil {
			b.timer = time.AfterFunc(b.cfg.Linger, b.lingerFire)
		}
	case !b.inFlight:
		b.inFlight = true
		frame, reqs, n = b.takeLocked()
	}
	b.mu.Unlock()
	if frame != nil {
		b.flushFrame(frame, reqs, n)
	}
}

// spareLocked returns the recycled frame buffer (or nil for a fresh one).
func (b *writeBatcher) spareLocked() []byte {
	buf := b.spare
	b.spare = nil
	return buf
}

// takeLocked detaches the pending frame, patching its entry count.
func (b *writeBatcher) takeLocked() ([]byte, []uint64, int) {
	frame, reqs, n := b.frame, b.reqs, b.count
	batchFramePatch(frame, n)
	b.frame, b.reqs, b.count = nil, nil, 0
	b.hasBuf.Store(false)
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return frame, reqs, n
}

// flushFrame multicasts one detached frame. Runs with no lock held; must
// not be called from the node's event loop (Multicast would deadlock on
// a full event channel) — loop-side triggers spawn a goroutine.
func (b *writeBatcher) flushFrame(frame []byte, reqs []uint64, n int) {
	err := b.s.node.Multicast(frame)
	b.cFlushes.Inc()
	b.cOps.Add(int64(n))
	b.mu.Lock()
	b.spare = frame[:0]
	fn := b.onFlush
	b.mu.Unlock()
	if fn != nil {
		fn(n)
	}
	if err != nil {
		// The frame never entered the ordered stream: fail every rider
		// and release the pacing gate so the backlog (if any) is flushed
		// by the next add or token visit instead of waiting for an apply
		// that will never come.
		b.s.failBatch(reqs, err)
		b.mu.Lock()
		b.inFlight = false
		b.mu.Unlock()
	}
}

// applied is queued (via the post-apply discipline) when this replica's
// own in-flight frame applies — directly or covered by a snapshot. It
// releases the pacing gate and flushes the backlog that coalesced while
// the frame circled the ring.
func (b *writeBatcher) applied() {
	b.mu.Lock()
	b.inFlight = false
	var frame []byte
	var reqs []uint64
	var n int
	if b.count > 0 && b.cfg.Linger == 0 {
		b.inFlight = true
		frame, reqs, n = b.takeLocked()
	}
	b.mu.Unlock()
	if frame != nil {
		// Post-apply functions run on the node's event loop: flush on a
		// fresh goroutine (see flushFrame's contract).
		go b.flushFrame(frame, reqs, n)
	}
}

// lingerFire flushes the pending frame when its linger expires.
func (b *writeBatcher) lingerFire() {
	b.mu.Lock()
	b.timer = nil
	var frame []byte
	var reqs []uint64
	var n int
	if b.count > 0 {
		frame, reqs, n = b.takeLocked()
	}
	b.mu.Unlock()
	if frame != nil {
		b.flushFrame(frame, reqs, n)
	}
}

// tokenKick runs on the node's event loop at every token arrival — the
// backstop flush clock. It must stay cheap (one atomic load when idle)
// and must not multicast synchronously, so the actual flush rides a
// CAS-gated goroutine.
func (b *writeBatcher) tokenKick() {
	if !b.hasBuf.Load() {
		return
	}
	if !b.kicking.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer b.kicking.Store(false)
		b.mu.Lock()
		var frame []byte
		var reqs []uint64
		var n int
		if b.count > 0 && !b.inFlight {
			if b.cfg.Linger == 0 {
				b.inFlight = true
			}
			frame, reqs, n = b.takeLocked()
		}
		b.mu.Unlock()
		if frame != nil {
			b.flushFrame(frame, reqs, n)
		}
	}()
}

// stop quiesces the batcher at replica shutdown. Buffered entries are
// dropped — their waiters were already drained with the retryable
// shutdown error — and the linger timer is disarmed.
func (b *writeBatcher) stop() {
	b.mu.Lock()
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	b.frame, b.reqs, b.count = nil, nil, 0
	b.hasBuf.Store(false)
	b.mu.Unlock()
}

// --- Service-side glue ---

// SetWriteBatching reconfigures the replica's write coalescer. Call
// before the node starts; zero-valued size fields take the defaults,
// and Disabled reverts Set/Delete to single-op frames.
func (s *Service) SetWriteBatching(cfg BatchConfig) {
	b := s.batcher
	b.mu.Lock()
	b.cfg = cfg.withDefaults()
	b.mu.Unlock()
}

// OnWriteBatch registers an observer called with each flushed frame's op
// count (the gateway feeds its batch-size histogram from this). Safe to
// call while the node is serving.
func (s *Service) OnWriteBatch(fn func(ops int)) {
	b := s.batcher
	b.mu.Lock()
	b.onFlush = fn
	b.mu.Unlock()
}

// batchingEnabled reports whether Set/Delete should ride the coalescer.
func (s *Service) batchingEnabled() bool {
	b := s.batcher
	b.mu.Lock()
	off := b.cfg.Disabled
	b.mu.Unlock()
	return !off
}

// doBatched is the coalesced write path: register the waiter exactly
// like doOp, enqueue into the batcher, and wait for the entry's own
// outcome from the ordered apply.
func (s *Service) doBatched(ctx context.Context, key string, val []byte, del bool) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("dds: service closed")
	}
	s.nextReq++
	reqID := s.nextReq
	ch := make(chan error, 1)
	s.opWait[reqID] = append(s.opWait[reqID], ch)
	s.mu.Unlock()
	s.batcher.add(key, val, del, reqID)
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		s.removeOpWaiter(reqID, ch)
		return ctx.Err()
	}
}

// failBatch fails every rider of a frame whose multicast was rejected.
func (s *Service) failBatch(reqs []uint64, err error) {
	s.mu.Lock()
	for _, reqID := range reqs {
		for _, ch := range s.opWait[reqID] {
			ch <- err
		}
		delete(s.opWait, reqID)
	}
	s.mu.Unlock()
}

// batcherAppliedLocked queues the pacing-gate release when this
// replica's own batch frame has applied (or been covered by a
// snapshot). Post-apply, so the flush of the next frame never runs
// under s.mu.
func (s *Service) batcherAppliedLocked(origin core.NodeID) {
	if origin != s.id {
		return
	}
	s.postApply = append(s.postApply, s.batcher.applied)
}

// applyBatchLocked applies one ordered opBatch frame. The frame
// coalesces K independent writes, so the freeze/retired and
// snapshot-barrier rejections run per entry — each caller gets exactly
// the outcome its op would have gotten ordered alone at this position —
// while the read view publishes all surviving entries in one COW pass
// (each touched bucket cloned once per batch, not once per op).
// Waiters wake only after every survivor is visible in the read view:
// read-your-writes covers the whole batch.
func (s *Service) applyBatchLocked(origin core.NodeID, o op) {
	checkFrozen := s.frozenID != 0 || len(s.retired) > 0
	surv := o.batch
	if checkFrozen || s.snapID != 0 {
		surv = make([]batchEntry, 0, len(o.batch))
		for i := range o.batch {
			e := &o.batch[i]
			if checkFrozen {
				h := fnv64a(e.key)
				if (s.frozenID != 0 && rangesContain(s.frozen, h)) || rangesContain(s.retired, h) {
					s.node.Stats().Counter(stats.MetricFrozenWrites).Inc()
					s.signalOpLocked(origin, e.reqID, ErrResharding)
					continue
				}
			}
			if s.snapID != 0 {
				s.node.Stats().Counter(stats.MetricSnapFrozenWrites).Inc()
				s.signalOpLocked(origin, e.reqID, ErrSnapshotting)
				continue
			}
			surv = append(surv, *e)
		}
	}
	for i := range surv {
		e := &surv[i]
		if e.del {
			delete(s.kv, e.key)
			s.notifyLocked(e.key, nil, true)
		} else {
			s.kv[e.key] = append([]byte(nil), e.val...)
			s.notifyLocked(e.key, e.val, false)
		}
	}
	s.rview.applyBatch(surv)
	// The coalescer's pacing gate releases at APPLY — the next frame
	// flushes while this one's fsync (if any) is still pending, which is
	// what keeps the group-commit pipeline full.
	s.batcherAppliedLocked(origin)
	if pd := s.pendingDurable; pd != nil {
		s.pendingDurable = nil
		pd.applied = true
		if !pd.durable && origin == s.id && len(surv) > 0 {
			// Durable-before-acked: stash the survivors' reqIDs; the
			// WAL's durability callback (batchDurableDone) wakes them.
			pd.reqIDs = make([]uint64, len(surv))
			for i := range surv {
				pd.reqIDs[i] = surv[i].reqID
			}
			return
		}
	}
	for i := range surv {
		s.signalOpLocked(origin, surv[i].reqID, nil)
	}
}

// batchDurable tracks one opBatch frame across its two completion
// events — ordered apply (event loop, under s.mu) and WAL durability
// (the log's syncer goroutine) — which can land in either order. All
// fields are guarded by s.mu. Riders are acked only once both have
// happened; on replicas other than the origin there are no riders and
// the handle is inert bookkeeping.
type batchDurable struct {
	origin  core.NodeID
	applied bool
	durable bool
	reqIDs  []uint64
}

// batchDurableDone is the WAL group-commit callback: the frame's record
// is on stable storage (or covered by a snapshot / the final close
// sync). Wakes any riders whose apply already landed. The sync error,
// if any, is swallowed by the same policy as walAppendLocked's append
// errors — durability degrades, ordering does not, and the op IS
// applied cluster-wide.
func (s *Service) batchDurableDone(pd *batchDurable) {
	s.mu.Lock()
	pd.durable = true
	if pd.applied {
		for _, reqID := range pd.reqIDs {
			s.signalOpLocked(pd.origin, reqID, nil)
		}
		pd.reqIDs = nil
	}
	s.mu.Unlock()
}
