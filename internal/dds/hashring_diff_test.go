package dds

import (
	"fmt"
	"testing"
)

// TestMovedGrowMinimalDisruption is the property test for the ownership
// diff: growing N -> N+1 shards relocates exactly the keys adjacent to the
// new shard's virtual points. Concretely, for every moved range the new
// owner IS the new shard — no key ever moves between two surviving shards
// — and the diff agrees pointwise with the two rings' lookups.
func TestMovedGrowMinimalDisruption(t *testing.T) {
	for n := 1; n <= 6; n++ {
		old := newHashRing(n, defaultReplicas)
		grown := newHashRing(n+1, defaultReplicas)
		ranges := moved(old, grown)
		if len(ranges) == 0 {
			t.Fatalf("grow %d->%d moved no ranges", n, n+1)
		}
		for _, r := range ranges {
			if r.to != n {
				t.Fatalf("grow %d->%d: range %+v moves keys to surviving shard %d", n, n+1, r, r.to)
			}
			if r.from == r.to {
				t.Fatalf("grow %d->%d: degenerate range %+v", n, n+1, r)
			}
		}
		movedKeys, total := 0, 8192
		for i := 0; i < total; i++ {
			k := fmt.Sprintf("prop-key-%d", i)
			h := fnv64a(k)
			a, b := old.lookup(k), grown.lookup(k)
			inDiff := rangesContain(ranges, h)
			if (a != b) != inDiff {
				t.Fatalf("grow %d->%d: key %q owner %d->%d but rangesContain=%v", n, n+1, k, a, b, inDiff)
			}
			if a != b {
				if b != n {
					t.Fatalf("grow %d->%d: key %q moved between old shards %d->%d", n, n+1, k, a, b)
				}
				movedKeys++
			}
		}
		// The moved fraction should be about 1/(n+1); allow generous
		// slack for virtual-point variance.
		frac := float64(movedKeys) / float64(total)
		want := 1.0 / float64(n+1)
		if frac > 2.5*want || (n > 1 && frac < want/4) {
			t.Fatalf("grow %d->%d moved %.1f%% of keys, want about %.1f%%", n, n+1, 100*frac, 100*want)
		}
	}
}

// TestMovedShrink checks the inverse: removing one shard relocates exactly
// that shard's keys, each landing on a surviving shard.
func TestMovedShrink(t *testing.T) {
	old := newHashRingFor([]int{0, 1, 2, 3}, defaultReplicas)
	shrunk := newHashRingFor([]int{0, 2, 3}, defaultReplicas)
	ranges := moved(old, shrunk)
	for _, r := range ranges {
		if r.from != 1 {
			t.Fatalf("shrink: range %+v moves keys away from surviving shard %d", r, r.from)
		}
		if r.to == 1 {
			t.Fatalf("shrink: range %+v moves keys to the removed shard", r)
		}
	}
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("shrink-key-%d", i)
		a, b := old.lookup(k), shrunk.lookup(k)
		if a != 1 && a != b {
			t.Fatalf("key %q on surviving shard %d moved to %d", k, a, b)
		}
		if b == 1 {
			t.Fatalf("key %q still routed to removed shard", k)
		}
		if (a != b) != rangesContain(ranges, fnv64a(k)) {
			t.Fatalf("key %q: diff and lookup disagree", k)
		}
	}
}

// TestMovedEmptyDiff checks the degenerate diff: two rings over the same
// shard set (same epoch, or a reshard that changed nothing) move no
// ranges, for contiguous and sparse id sets alike.
func TestMovedEmptyDiff(t *testing.T) {
	for n := 1; n <= 5; n++ {
		a := newHashRing(n, defaultReplicas)
		b := newHashRing(n, defaultReplicas)
		if got := moved(a, b); len(got) != 0 {
			t.Fatalf("moved(same %d-shard ring) = %d ranges, want 0", n, len(got))
		}
	}
	sparseA := newHashRingFor([]int{0, 2, 5}, defaultReplicas)
	sparseB := newHashRingFor([]int{5, 0, 2}, defaultReplicas) // order must not matter
	if got := moved(sparseA, sparseB); len(got) != 0 {
		t.Fatalf("moved(same sparse ring) = %d ranges, want 0", len(got))
	}
}

// TestMovedSingleShardRing covers the 1-shard edges: a single-shard ring
// diffed against itself moves nothing; growing out of (and shrinking back
// into) a single shard moves every range to/from that shard only.
func TestMovedSingleShardRing(t *testing.T) {
	one := newHashRingFor([]int{0}, defaultReplicas)
	if got := moved(one, newHashRingFor([]int{0}, defaultReplicas)); len(got) != 0 {
		t.Fatalf("moved(single, single) = %d ranges, want 0", len(got))
	}
	two := newHashRingFor([]int{0, 1}, defaultReplicas)
	grow := moved(one, two)
	if len(grow) == 0 {
		t.Fatal("grow out of a single shard moved nothing")
	}
	for _, r := range grow {
		if r.from != 0 || r.to != 1 {
			t.Fatalf("grow 1->2: range %+v, want from=0 to=1", r)
		}
	}
	shrink := moved(two, one)
	if len(shrink) != len(grow) {
		t.Fatalf("shrink ranges = %d, grow ranges = %d; the diff must be symmetric", len(shrink), len(grow))
	}
	for _, r := range shrink {
		if r.from != 1 || r.to != 0 {
			t.Fatalf("shrink 2->1: range %+v, want from=1 to=0", r)
		}
	}
	for i := 0; i < 2048; i++ {
		k := fmt.Sprintf("single-%d", i)
		if o := one.lookup(k); o != 0 {
			t.Fatalf("single-shard ring routed %q to %d", k, o)
		}
	}
}

// TestComplementRangesEdges pins the retired-set computation: a sole
// shard retires nothing, a foreign shard retires the full circle, and for
// any member the complement agrees pointwise with ownership.
func TestComplementRangesEdges(t *testing.T) {
	one := newHashRingFor([]int{3}, defaultReplicas)
	if got := complementRanges(one, 3); got != nil {
		t.Fatalf("sole shard's complement = %v, want nil", got)
	}
	full := complementRanges(one, 7)
	if len(full) != 1 || full[0].lo != 0 || full[0].hi != ^uint64(0) {
		t.Fatalf("foreign shard's complement = %v, want the full circle", full)
	}
	h := newHashRingFor([]int{0, 1, 2}, defaultReplicas)
	for shard := 0; shard <= 2; shard++ {
		comp := complementRanges(h, shard)
		for i := 0; i < 4096; i++ {
			k := fmt.Sprintf("comp-%d", i)
			v := fnv64a(k)
			if got, want := rangesContain(comp, v), h.owner(v) != shard; got != want {
				t.Fatalf("shard %d key %q: complement=%v owner=%d", shard, k, got, h.owner(v))
			}
		}
	}
}

// TestKeyMovesTwiceAcrossEpochs walks a key through two consecutive
// epoch changes (grow 2->3, then shrink 3->2): every key that moved onto
// the new shard must move again when it retires, land back where it
// started, and appear in both diffs — the property a second handoff's
// freeze depends on.
func TestKeyMovesTwiceAcrossEpochs(t *testing.T) {
	e1 := newHashRingFor([]int{0, 1}, defaultReplicas)
	e2 := newHashRingFor([]int{0, 1, 2}, defaultReplicas)
	e3 := newHashRingFor([]int{0, 1}, defaultReplicas)
	d12 := moved(e1, e2)
	d23 := moved(e2, e3)
	movedTwice := 0
	for i := 0; i < 8192; i++ {
		k := fmt.Sprintf("twice-%d", i)
		h := fnv64a(k)
		o1, o2, o3 := e1.owner(h), e2.owner(h), e3.owner(h)
		if o1 != o2 {
			if o2 != 2 {
				t.Fatalf("key %q moved %d->%d in a grow that only added shard 2", k, o1, o2)
			}
			if !rangesContain(d12, h) || !rangesContain(d23, h) {
				t.Fatalf("key %q moves twice but the diffs miss it (d12=%v d23=%v)",
					k, rangesContain(d12, h), rangesContain(d23, h))
			}
			if o3 != o1 {
				t.Fatalf("key %q ended on %d after grow+shrink, started on %d", k, o3, o1)
			}
			movedTwice++
		} else if rangesContain(d12, h) {
			t.Fatalf("stationary key %q is inside the grow diff", k)
		}
	}
	if movedTwice == 0 {
		t.Fatal("no key moved twice across the two epochs")
	}
}

// TestMovedSparseIDsStable checks that shard identity, not position, sets
// point placement: the ring over {0,2} is exactly the 3-shard ring minus
// shard 1's points, so a later re-grow with a fresh id never disturbs the
// survivors.
func TestMovedSparseIDsStable(t *testing.T) {
	full := newHashRingFor([]int{0, 1, 2}, defaultReplicas)
	sparse := newHashRingFor([]int{0, 2}, defaultReplicas)
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("sparse-key-%d", i)
		if o := full.lookup(k); o != 1 && o != sparse.lookup(k) {
			t.Fatalf("key %q moved from %d to %d without its shard being removed", k, o, sparse.lookup(k))
		}
	}
	if got := fmt.Sprint(sparse.shardIDs()); got != "[0 2]" {
		t.Fatalf("shardIDs = %s", got)
	}
}
