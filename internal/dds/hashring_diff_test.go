package dds

import (
	"fmt"
	"testing"
)

// TestMovedGrowMinimalDisruption is the property test for the ownership
// diff: growing N -> N+1 shards relocates exactly the keys adjacent to the
// new shard's virtual points. Concretely, for every moved range the new
// owner IS the new shard — no key ever moves between two surviving shards
// — and the diff agrees pointwise with the two rings' lookups.
func TestMovedGrowMinimalDisruption(t *testing.T) {
	for n := 1; n <= 6; n++ {
		old := newHashRing(n, defaultReplicas)
		grown := newHashRing(n+1, defaultReplicas)
		ranges := moved(old, grown)
		if len(ranges) == 0 {
			t.Fatalf("grow %d->%d moved no ranges", n, n+1)
		}
		for _, r := range ranges {
			if r.to != n {
				t.Fatalf("grow %d->%d: range %+v moves keys to surviving shard %d", n, n+1, r, r.to)
			}
			if r.from == r.to {
				t.Fatalf("grow %d->%d: degenerate range %+v", n, n+1, r)
			}
		}
		movedKeys, total := 0, 8192
		for i := 0; i < total; i++ {
			k := fmt.Sprintf("prop-key-%d", i)
			h := fnv64a(k)
			a, b := old.lookup(k), grown.lookup(k)
			inDiff := rangesContain(ranges, h)
			if (a != b) != inDiff {
				t.Fatalf("grow %d->%d: key %q owner %d->%d but rangesContain=%v", n, n+1, k, a, b, inDiff)
			}
			if a != b {
				if b != n {
					t.Fatalf("grow %d->%d: key %q moved between old shards %d->%d", n, n+1, k, a, b)
				}
				movedKeys++
			}
		}
		// The moved fraction should be about 1/(n+1); allow generous
		// slack for virtual-point variance.
		frac := float64(movedKeys) / float64(total)
		want := 1.0 / float64(n+1)
		if frac > 2.5*want || (n > 1 && frac < want/4) {
			t.Fatalf("grow %d->%d moved %.1f%% of keys, want about %.1f%%", n, n+1, 100*frac, 100*want)
		}
	}
}

// TestMovedShrink checks the inverse: removing one shard relocates exactly
// that shard's keys, each landing on a surviving shard.
func TestMovedShrink(t *testing.T) {
	old := newHashRingFor([]int{0, 1, 2, 3}, defaultReplicas)
	shrunk := newHashRingFor([]int{0, 2, 3}, defaultReplicas)
	ranges := moved(old, shrunk)
	for _, r := range ranges {
		if r.from != 1 {
			t.Fatalf("shrink: range %+v moves keys away from surviving shard %d", r, r.from)
		}
		if r.to == 1 {
			t.Fatalf("shrink: range %+v moves keys to the removed shard", r)
		}
	}
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("shrink-key-%d", i)
		a, b := old.lookup(k), shrunk.lookup(k)
		if a != 1 && a != b {
			t.Fatalf("key %q on surviving shard %d moved to %d", k, a, b)
		}
		if b == 1 {
			t.Fatalf("key %q still routed to removed shard", k)
		}
		if (a != b) != rangesContain(ranges, fnv64a(k)) {
			t.Fatalf("key %q: diff and lookup disagree", k)
		}
	}
}

// TestMovedSparseIDsStable checks that shard identity, not position, sets
// point placement: the ring over {0,2} is exactly the 3-shard ring minus
// shard 1's points, so a later re-grow with a fresh id never disturbs the
// survivors.
func TestMovedSparseIDsStable(t *testing.T) {
	full := newHashRingFor([]int{0, 1, 2}, defaultReplicas)
	sparse := newHashRingFor([]int{0, 2}, defaultReplicas)
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("sparse-key-%d", i)
		if o := full.lookup(k); o != 1 && o != sparse.lookup(k) {
			t.Fatalf("key %q moved from %d to %d without its shard being removed", k, o, sparse.lookup(k))
		}
	}
	if got := fmt.Sprint(sparse.shardIDs()); got != "[0 2]" {
		t.Fatalf("shardIDs = %s", got)
	}
}
