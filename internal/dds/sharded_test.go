package dds

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// shardedCluster builds a multi-ring grid with one Sharded router per node.
type shardedCluster struct {
	g    *core.TestGrid
	svcs map[core.NodeID]*Sharded
}

func startSharded(t *testing.T, n, rings int) *shardedCluster {
	t.Helper()
	g, err := core.NewTestGrid(core.GridOptions{N: n, Rings: rings, DeferStart: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(g.Close)
	sc := &shardedCluster{g: g, svcs: make(map[core.NodeID]*Sharded)}
	for id, rt := range g.Runtimes {
		s, err := AttachSharded(rt)
		if err != nil {
			t.Fatal(err)
		}
		sc.svcs[id] = s
	}
	g.StartAll()
	if err := g.WaitAssembled(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	return sc
}

func (sc *shardedCluster) waitKey(t *testing.T, id core.NodeID, key, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if v, ok := sc.svcs[id].GetLocal(key); ok && string(v) == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	v, _ := sc.svcs[id].GetLocal(key)
	t.Fatalf("node %v key %q = %q, want %q", id, key, v, want)
}

// TestShardedSetVisibleEverywhere writes enough keys to land on every
// shard and checks each is readable on every node — and stored on the SAME
// shard everywhere (the routers agree on the hash split).
func TestShardedSetVisibleEverywhere(t *testing.T) {
	sc := startSharded(t, 3, 4)
	ctx := context.Background()
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		if err := sc.svcs[1].Set(ctx, keys[i], []byte(keys[i]+"-val")); err != nil {
			t.Fatal(err)
		}
	}
	covered := map[int]bool{}
	for _, k := range keys {
		covered[sc.svcs[1].ShardFor(k)] = true
	}
	if len(covered) < 3 {
		t.Fatalf("16 keys landed on only %d of 4 shards", len(covered))
	}
	for _, id := range sc.g.IDs {
		for _, k := range keys {
			sc.waitKey(t, id, k, k+"-val", 5*time.Second)
		}
	}
	// The routers agree: a key is present exactly on its owning shard.
	for _, k := range keys {
		shard := sc.svcs[1].ShardFor(k)
		for _, id := range sc.g.IDs {
			if got := sc.svcs[id].ShardFor(k); got != shard {
				t.Fatalf("node %v routes %q to shard %d, node 1 to %d", id, k, got, shard)
			}
			for i := 0; i < sc.svcs[id].NumShards(); i++ {
				_, ok := sc.svcs[id].Shard(i).Get(k)
				if want := i == shard; ok != want {
					t.Fatalf("node %v shard %d has %q = %v, want %v", id, i, k, ok, want)
				}
			}
		}
	}
}

func TestShardedDeleteAndKeys(t *testing.T) {
	sc := startSharded(t, 2, 2)
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if err := sc.svcs[1].Set(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(sc.svcs[1].Keys()); got != 8 {
		t.Fatalf("Keys() = %d entries, want 8", got)
	}
	if err := sc.svcs[1].Delete(ctx, "k3"); err != nil {
		t.Fatal(err)
	}
	for _, k := range sc.svcs[1].Keys() {
		if k == "k3" {
			t.Fatal("k3 still listed after Delete")
		}
	}
}

// TestShardedLockMutualExclusion takes locks that hash onto different
// shards from different nodes and checks per-lock mutual exclusion.
func TestShardedLockMutualExclusion(t *testing.T) {
	sc := startSharded(t, 3, 2)
	ctx := context.Background()
	names := []string{"lock-a", "lock-b", "lock-c", "lock-d"}
	onShard := map[int]bool{}
	for _, n := range names {
		onShard[sc.svcs[1].ShardFor(n)] = true
	}
	if len(onShard) < 2 {
		t.Fatalf("locks landed on %d shards, want both", len(onShard))
	}
	for _, name := range names {
		if err := sc.svcs[1].Lock(ctx, name); err != nil {
			t.Fatal(err)
		}
		if owner, ok := sc.svcs[1].Holder(name); !ok || owner != 1 {
			t.Fatalf("holder(%s) = %v, %v", name, owner, ok)
		}
		// A second node must block until release.
		acquired := make(chan error, 1)
		go func(name string) { acquired <- sc.svcs[2].Lock(ctx, name) }(name)
		select {
		case err := <-acquired:
			t.Fatalf("node 2 acquired %s while node 1 held it (err=%v)", name, err)
		case <-time.After(50 * time.Millisecond):
		}
		if err := sc.svcs[1].Unlock(context.Background(), name); err != nil {
			t.Fatal(err)
		}
		if err := <-acquired; err != nil {
			t.Fatal(err)
		}
		if err := sc.svcs[2].Unlock(context.Background(), name); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedWatch checks watchers fire for changes on every shard.
func TestShardedWatch(t *testing.T) {
	sc := startSharded(t, 2, 3)
	var mu sync.Mutex
	seen := map[string]string{}
	sc.svcs[2].Watch(func(key string, val []byte, deleted bool) {
		mu.Lock()
		if deleted {
			delete(seen, key)
		} else {
			seen[key] = string(val)
		}
		mu.Unlock()
	})
	ctx := context.Background()
	for i := 0; i < 9; i++ {
		if err := sc.svcs[1].Set(ctx, fmt.Sprintf("w%d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		n := len(seen)
		mu.Unlock()
		if n == 9 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("watcher saw %d keys, want 9", len(seen))
}

func TestShardedConstructorValidation(t *testing.T) {
	if _, err := NewSharded(nil); err == nil {
		t.Fatal("NewSharded(nil) succeeded")
	}
	if _, err := NewSharded([]*Service{nil}); err == nil {
		t.Fatal("NewSharded with nil shard succeeded")
	}
}

// TestHashRingProperties checks determinism, full coverage and rough
// balance of the consistent-hash split.
func TestHashRingProperties(t *testing.T) {
	h := newHashRing(4, defaultReplicas)
	counts := make([]int, 4)
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("key-%d", i)
		s := h.lookup(k)
		if s != h.lookup(k) {
			t.Fatal("lookup not deterministic")
		}
		counts[s]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys: %v", s, counts)
		}
		if c < 4096/4/4 || c > 4096*3/4 {
			t.Fatalf("shard %d badly unbalanced: %v", s, counts)
		}
	}
	// One shard trivially owns everything.
	h1 := newHashRing(1, defaultReplicas)
	if h1.lookup("anything") != 0 {
		t.Fatal("single-shard ring must map everything to shard 0")
	}
	// Consistency: growing 4 -> 5 shards must not reshuffle keys that
	// stay on their shard — only a minority may move.
	h5 := newHashRing(5, defaultReplicas)
	moved := 0
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("key-%d", i)
		a, b := h.lookup(k), h5.lookup(k)
		if a != b {
			if b != 4 {
				// A key that moved between two OLD shards breaks the
				// consistent-hashing property.
				moved++
			}
		}
	}
	if moved > 4096/10 {
		t.Fatalf("%d of 4096 keys moved between old shards on grow", moved)
	}
}
