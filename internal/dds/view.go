package dds

import (
	"sync/atomic"
	"time"
)

// readView is the lock-free read side of a Service replica: a bucketed
// copy-on-write image of the replicated map, swapped via atomic pointers,
// plus apply-progress stamps. Appliers (serialized by the ring's event
// loop, under s.mu) publish each mutation by cloning only the affected
// bucket and atomically storing the clone; readers load a bucket pointer
// and look up in an immutable map — no lock, no copy-per-read of the
// whole map, and no serialization behind token applies.
//
// Buckets are keyed by the same fnv64a hash the router uses, so the
// per-apply copy cost is len(bucket) ≈ keys/viewBuckets instead of the
// full keyspace.
type readView struct {
	buckets [viewBuckets]atomic.Pointer[map[string][]byte]

	// applyIndex counts ordered applies on this replica (any op kind —
	// it measures ordered progress, not just map mutations).
	applyIndex atomic.Uint64
	// applyTime is the wall-clock nanotime of the latest ordered apply;
	// together with the node's last token arrival it bounds how stale
	// this replica can be.
	applyTime atomic.Int64
}

// viewBuckets is the COW granularity. Must be a power of two.
const viewBuckets = 256

func bucketOf(h uint64) int { return int(h & (viewBuckets - 1)) }

// get is the lock-free read: load the bucket pointer, look up in the
// immutable map, and copy the value (callers own the returned slice).
func (v *readView) get(key string) ([]byte, bool) {
	b := v.buckets[bucketOf(fnv64a(key))].Load()
	if b == nil {
		return nil, false
	}
	val, ok := (*b)[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), val...), true
}

// keys lists every key of the view (unsorted). Buckets are loaded
// independently, so the listing is a per-bucket-consistent union, the
// same guarantee the old locked iteration gave a concurrent writer.
func (v *readView) keys() []string {
	var out []string
	for i := range v.buckets {
		if b := v.buckets[i].Load(); b != nil {
			for k := range *b {
				out = append(out, k)
			}
		}
	}
	return out
}

// set publishes key=val: clone the key's bucket, mutate the clone, swap.
// Callers are the serialized appliers (they hold s.mu exclusively).
func (v *readView) set(key string, val []byte) {
	slot := &v.buckets[bucketOf(fnv64a(key))]
	old := slot.Load()
	var next map[string][]byte
	if old == nil {
		next = make(map[string][]byte, 1)
	} else {
		next = make(map[string][]byte, len(*old)+1)
		for k, ov := range *old {
			next[k] = ov
		}
	}
	next[key] = append([]byte(nil), val...)
	slot.Store(&next)
}

// del publishes a deletion the same way; deleting an absent key is a
// no-op (no clone).
func (v *readView) del(key string) {
	slot := &v.buckets[bucketOf(fnv64a(key))]
	old := slot.Load()
	if old == nil {
		return
	}
	if _, ok := (*old)[key]; !ok {
		return
	}
	next := make(map[string][]byte, len(*old)-1)
	for k, ov := range *old {
		if k != key {
			next[k] = ov
		}
	}
	slot.Store(&next)
}

// applyBatch publishes a coalesced batch of sets and deletes, cloning
// each touched bucket exactly once no matter how many entries land in
// it. Entries apply in order, so a later entry for the same key wins —
// the same last-writer semantics K sequential set/del calls would give,
// at 1/K the clone cost when callers hammer a hot bucket.
func (v *readView) applyBatch(entries []batchEntry) {
	// Dirty buckets are tracked in a fixed array (no allocation for the
	// common small batch); dirty[i] holds the pending clone for bucket i.
	var dirty [viewBuckets]*map[string][]byte
	var touched []int
	for i := range entries {
		e := &entries[i]
		bi := bucketOf(fnv64a(e.key))
		next := dirty[bi]
		if next == nil {
			old := v.buckets[bi].Load()
			var clone map[string][]byte
			if old == nil {
				clone = make(map[string][]byte, 1)
			} else {
				clone = make(map[string][]byte, len(*old)+1)
				for k, ov := range *old {
					clone[k] = ov
				}
			}
			next = &clone
			dirty[bi] = next
			touched = append(touched, bi)
		}
		if e.del {
			delete(*next, e.key)
		} else {
			(*next)[e.key] = append([]byte(nil), e.val...)
		}
	}
	for _, bi := range touched {
		v.buckets[bi].Store(dirty[bi])
	}
}

// reload rebuilds every bucket from the authoritative map — the bulk
// path for snapshot installs, where per-key publication would churn the
// same buckets repeatedly.
func (v *readView) reload(kv map[string][]byte) {
	var fresh [viewBuckets]map[string][]byte
	for k, val := range kv {
		i := bucketOf(fnv64a(k))
		if fresh[i] == nil {
			fresh[i] = make(map[string][]byte)
		}
		fresh[i][k] = append([]byte(nil), val...)
	}
	for i := range v.buckets {
		if fresh[i] == nil {
			v.buckets[i].Store(nil)
			continue
		}
		b := fresh[i]
		v.buckets[i].Store(&b)
	}
}

// stamp records one ordered apply.
func (v *readView) stamp() {
	v.applyIndex.Add(1)
	v.applyTime.Store(time.Now().UnixNano())
}

// lastApply returns the wall-clock time of the latest ordered apply
// (zero if nothing has applied yet).
func (v *readView) lastApply() time.Time {
	ns := v.applyTime.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}
