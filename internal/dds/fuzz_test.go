package dds

import (
	"bytes"
	"testing"
)

// FuzzOpBatch feeds arbitrary bytes through the op decoder and checks the
// write-batch codec end to end: multi-op opBatch frames must round-trip
// semantically (decode → re-encode → decode yields the same entries), the
// decoder must never panic or balloon memory on corrupt counts, and the
// pre-batching single-op Set/Delete frames — what older builds put on the
// wire — must keep decoding unchanged alongside the new frame kind.
func FuzzOpBatch(f *testing.F) {
	f.Add(encodeBatch(nil))
	f.Add(encodeBatch([]batchEntry{{key: "k", val: []byte("v"), reqID: 7}}))
	f.Add(encodeBatch([]batchEntry{
		{key: "a", val: []byte("1"), reqID: 1},
		{del: true, key: "b", reqID: 2},
		{key: "", val: nil, reqID: 3},
	}))
	// Old single-op wire shapes ride the same decoder.
	f.Add(encodeSet("legacy-key", []byte("legacy-val"), 42))
	f.Add(encodeDel("legacy-key", 43))
	// A frame whose count lies about the payload.
	huge := encodeBatch([]batchEntry{{key: "x", val: []byte("y"), reqID: 9}})
	batchFramePatch(huge, 1<<30)
	f.Add(huge)
	// A frame torn mid-entry.
	torn := encodeBatch([]batchEntry{{key: "kk", val: bytes.Repeat([]byte{0xAB}, 64), reqID: 5}})
	f.Add(torn[:len(torn)-9])

	f.Fuzz(func(t *testing.T, data []byte) {
		o, ok := decodeOp(data)
		if !ok {
			return
		}
		switch o.kind {
		case opBatch:
			enc := encodeBatch(o.batch)
			o2, ok2 := decodeOp(enc)
			if !ok2 || o2.kind != opBatch || len(o2.batch) != len(o.batch) {
				t.Fatalf("re-encoded batch did not round-trip: ok=%v entries %d want %d",
					ok2, len(o2.batch), len(o.batch))
			}
			for i := range o.batch {
				a, b := o.batch[i], o2.batch[i]
				if a.del != b.del || a.key != b.key || a.reqID != b.reqID || !bytes.Equal(a.val, b.val) {
					t.Fatalf("entry %d diverged: %+v vs %+v", i, a, b)
				}
			}
		case opSet:
			enc := encodeSet(o.key, o.val, o.reqID)
			o2, ok2 := decodeOp(enc)
			if !ok2 || o2.kind != opSet || o2.key != o.key || !bytes.Equal(o2.val, o.val) || o2.reqID != o.reqID {
				t.Fatalf("single-op set round-trip diverged: %+v vs %+v", o, o2)
			}
		case opDel:
			enc := encodeDel(o.key, o.reqID)
			o2, ok2 := decodeOp(enc)
			if !ok2 || o2.kind != opDel || o2.key != o.key || o2.reqID != o.reqID {
				t.Fatalf("single-op del round-trip diverged: %+v vs %+v", o, o2)
			}
		}
	})
}

// TestBatchEncodeZeroAlloc pins the coalescer's amortized encode cost:
// building a full frame in a warm (capacity-recycled) buffer — exactly
// what flushFrame's spare-buffer recycling gives the steady state — must
// stay at or under 1 alloc per op, and in practice at zero.
func TestBatchEncodeZeroAlloc(t *testing.T) {
	key := "alloc-key-0123456789"
	val := bytes.Repeat([]byte{0x5A}, 64)
	buf := make([]byte, 0, 64<<10)
	const ops = 128
	allocs := testing.AllocsPerRun(200, func() {
		b := batchFrameStart(buf)
		for i := 0; i < ops; i++ {
			if i%8 == 7 {
				b = appendBatchDel(b, key, uint64(i))
			} else {
				b = appendBatchSet(b, key, val, uint64(i))
			}
		}
		batchFramePatch(b, ops)
		buf = b[:0] // recycle, as flushFrame does
	})
	if perOp := allocs / float64(ops); perOp > 1 {
		t.Fatalf("batched encode = %.3f allocs/op (%.1f per %d-op frame), budget is <= 1 amortized",
			perOp, allocs, ops)
	}
}
