// Package rcerr carries the retryability classification every Raincore
// layer shares. A handful of sentinel errors across internal/core,
// internal/dds and internal/txn mean the same thing to a caller —
// "transient control flow: back off and try again" — and the public
// facade's retry layer must recognize all of them without enumerating
// layer-specific sentinels. Sentinels constructed with New match
// ErrRetryable under errors.Is while keeping their own identity, so
// `errors.Is(err, dds.ErrResharding)` and `errors.Is(err,
// rcerr.ErrRetryable)` both hold for a resharding rejection.
//
// The package is a leaf (it imports only errors) so any layer can depend
// on it without cycles; the public package re-exports ErrRetryable as
// raincore.ErrRetryable and wraps the check as raincore.IsRetryable.
package rcerr

import "errors"

// ErrRetryable is the class sentinel for transient, retryable failures:
// the operation changed nothing and re-running it after the cluster's
// routing epoch settles is expected to succeed. It is never returned
// directly; concrete sentinels built with New (and anything wrapping
// them) match it under errors.Is.
var ErrRetryable = errors.New("raincore: retryable condition")

// New builds a sentinel error that reads as text, keeps its own identity
// under errors.Is, and additionally matches ErrRetryable.
func New(text string) error { return &retryable{msg: text} }

type retryable struct{ msg string }

func (e *retryable) Error() string { return e.msg }

// Is makes every sentinel built by New a member of the ErrRetryable
// class without affecting identity comparisons against the sentinel
// itself (errors.Is checks == before consulting this method).
func (e *retryable) Is(target error) bool { return target == ErrRetryable }
