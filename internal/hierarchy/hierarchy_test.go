package hierarchy

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ring"
	"repro/internal/simnet"
	"repro/internal/transport"
	"repro/internal/wire"
)

// hcluster is a multi-cell hierarchy over one simulated network.
type hcluster struct {
	net      *simnet.Network
	services map[core.NodeID]*Service
	nodes    map[core.NodeID]*core.Node
	cells    map[int][]core.NodeID

	mu     sync.Mutex
	global map[core.NodeID][]string // global deliveries per node
	local  map[core.NodeID][]string
}

func localAddr(id core.NodeID) simnet.Addr  { return simnet.Addr(fmt.Sprintf("l-%d", id)) }
func globalAddr(id core.NodeID) simnet.Addr { return simnet.Addr(fmt.Sprintf("g-%d", id)) }

// testRing is forgiving about scheduling hiccups: in-process tests share
// one machine, so aggressive LAN-grade timeouts would generate failure
// detector false alarms (§2.3) and make the assertions racy.
func testRing(eligible []core.NodeID) ring.Config {
	rc := core.FastRing()
	rc.TokenHold = 3 * time.Millisecond
	rc.HungryTimeout = 200 * time.Millisecond
	rc.StarvingRetry = 150 * time.Millisecond
	rc.Eligible = eligible
	return rc
}

// buildHierarchy creates cells of the given sizes. Node IDs are
// cellIndex*100 + i.
func buildHierarchy(t *testing.T, cellSizes ...int) *hcluster {
	t.Helper()
	h := &hcluster{
		net:      simnet.New(simnet.Options{Seed: 3}),
		services: make(map[core.NodeID]*Service),
		nodes:    make(map[core.NodeID]*core.Node),
		cells:    make(map[int][]core.NodeID),
		global:   make(map[core.NodeID][]string),
		local:    make(map[core.NodeID][]string),
	}
	t.Cleanup(func() {
		for _, s := range h.services {
			s.Close()
		}
		for _, n := range h.nodes {
			n.Close()
		}
		h.net.Close()
	})
	tcfg := transport.DefaultConfig()
	tcfg.AckTimeout = 25 * time.Millisecond
	tcfg.Attempts = 5

	var allIDs []core.NodeID
	for ci, size := range cellSizes {
		for i := 1; i <= size; i++ {
			id := core.NodeID(ci*100 + i)
			h.cells[ci] = append(h.cells[ci], id)
			allIDs = append(allIDs, id)
		}
	}
	for ci, ids := range h.cells {
		for _, id := range ids {
			ep, err := h.net.Endpoint(localAddr(id))
			if err != nil {
				t.Fatal(err)
			}
			node, err := core.NewNode(core.Config{
				ID:        id,
				Ring:      testRing(ids),
				Transport: tcfg,
			}, []transport.PacketConn{transport.NewSimConn(ep)})
			if err != nil {
				t.Fatal(err)
			}
			for _, other := range ids {
				if other != id {
					node.SetPeer(other, []transport.Addr{transport.Addr(localAddr(other))})
				}
			}
			h.nodes[id] = node

			id := id
			factory := func() (*core.Node, error) {
				gep, err := h.net.Endpoint(globalAddr(id))
				if err != nil {
					return nil, err
				}
				gn, err := core.NewNode(core.Config{
					ID:        id,
					Ring:      testRing(allIDs),
					Transport: tcfg,
				}, []transport.PacketConn{transport.NewSimConn(gep)})
				if err != nil {
					return nil, err
				}
				for _, other := range allIDs {
					if other != id {
						gn.SetPeer(other, []transport.Addr{transport.Addr(globalAddr(other))})
					}
				}
				return gn, nil
			}
			svc := New(ci, node, factory)
			svc.SetHandlers(Handlers{
				OnGlobal: func(d GlobalDelivery) {
					h.mu.Lock()
					h.global[id] = append(h.global[id], string(d.Payload))
					h.mu.Unlock()
				},
				OnLocal: func(d core.Delivery) {
					h.mu.Lock()
					h.local[id] = append(h.local[id], string(d.Payload))
					h.mu.Unlock()
				},
			})
			h.services[id] = svc
		}
	}
	for _, node := range h.nodes {
		node.Start()
	}
	return h
}

func (h *hcluster) globals(id core.NodeID) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.global[id]...)
}

func (h *hcluster) locals(id core.NodeID) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.local[id]...)
}

// waitCells waits until every cell assembled and has a bridge on the
// global ring covering all cells.
func (h *hcluster) waitReady(t *testing.T, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ready := true
		for _, ids := range h.cells {
			live := 0
			for _, id := range ids {
				if !h.nodes[id].Stopped() {
					live++
				}
			}
			for _, id := range ids {
				if !h.nodes[id].Stopped() && len(h.nodes[id].Members()) != live {
					ready = false
				}
			}
		}
		// Every cell's bridge must see all cells on the global ring.
		if ready && h.bridgesConverged() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	for id, svc := range h.services {
		t.Logf("node %v: members=%v bridge=%v gm=%v",
			id, h.nodes[id].Members(), svc.IsBridge(), svc.GlobalMembers())
	}
	t.Fatal("hierarchy never became ready")
}

// bridgesConverged reports whether every cell has exactly one bridge and
// all bridges' global views equal the exact set of current bridges — view
// *identity*, not just size, because stale views from transient bridges
// can have the right length while the ring is still split.
func (h *hcluster) bridgesConverged() bool {
	var bridges []core.NodeID
	for _, ids := range h.cells {
		var b core.NodeID
		for _, id := range ids {
			if h.services[id].IsBridge() {
				if b != wire.NoNode {
					return false // two bridges in one cell: still churning
				}
				b = id
			}
		}
		if b == wire.NoNode {
			return false
		}
		bridges = append(bridges, b)
	}
	want := fmt.Sprint(wire.SortedIDs(bridges))
	for _, b := range bridges {
		if fmt.Sprint(wire.SortedIDs(h.services[b].GlobalMembers())) != want {
			return false
		}
	}
	return true
}

func (h *hcluster) waitGlobalCount(t *testing.T, want int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ok := true
		for id, n := range h.nodes {
			if n.Stopped() {
				continue
			}
			if len(h.globals(id)) < want {
				ok = false
			}
		}
		if ok {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	for id := range h.nodes {
		t.Logf("node %v globals: %v", id, h.globals(id))
	}
	t.Fatalf("not all nodes received %d global messages", want)
}

func TestGlobalMulticastReachesAllCells(t *testing.T) {
	h := buildHierarchy(t, 3, 3)
	h.waitReady(t, 20*time.Second)
	if err := h.services[h.cells[0][1]].MulticastGlobal([]byte("cross-cell")); err != nil {
		t.Fatal(err)
	}
	h.waitGlobalCount(t, 1, 10*time.Second)
	for id := range h.nodes {
		if got := h.globals(id); got[0] != "cross-cell" {
			t.Fatalf("node %v got %v", id, got)
		}
	}
}

func TestGlobalOrderConsistentAcrossCells(t *testing.T) {
	h := buildHierarchy(t, 3, 3, 2)
	h.waitReady(t, 20*time.Second)
	// Concurrent global multicasts from different cells.
	const per = 5
	var wg sync.WaitGroup
	for ci, ids := range h.cells {
		wg.Add(1)
		go func(ci int, origin core.NodeID) {
			defer wg.Done()
			for k := 0; k < per; k++ {
				if err := h.services[origin].MulticastGlobal([]byte(fmt.Sprintf("c%d-%d", ci, k))); err != nil {
					t.Error(err)
				}
				time.Sleep(time.Millisecond)
			}
		}(ci, ids[len(ids)-1])
	}
	wg.Wait()
	total := per * len(h.cells)
	h.waitGlobalCount(t, total, 20*time.Second)
	// Every node in every cell sees the same global order.
	var refID core.NodeID
	for id := range h.nodes {
		refID = id
		break
	}
	ref := h.globals(refID)
	for id := range h.nodes {
		got := h.globals(id)
		if len(got) != len(ref) {
			t.Fatalf("node %v has %d globals, ref %d", id, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("global order differs at %d: node %v=%q ref=%q", i, id, got[i], ref[i])
			}
		}
	}
}

func TestLocalMulticastStaysInCell(t *testing.T) {
	h := buildHierarchy(t, 2, 2)
	h.waitReady(t, 20*time.Second)
	if err := h.services[h.cells[0][0]].MulticastLocal([]byte("cell-0-only")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(h.locals(h.cells[0][1])) == 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, id := range h.cells[0] {
		if got := h.locals(id); len(got) != 1 || got[0] != "cell-0-only" {
			t.Fatalf("cell-0 node %v locals = %v", id, got)
		}
	}
	time.Sleep(50 * time.Millisecond)
	for _, id := range h.cells[1] {
		if got := h.locals(id); len(got) != 0 {
			t.Fatalf("cell-1 node %v leaked locals %v", id, got)
		}
	}
}

func TestExactlyOneBridgePerCell(t *testing.T) {
	h := buildHierarchy(t, 3, 3)
	h.waitReady(t, 20*time.Second)
	for ci, ids := range h.cells {
		bridges := 0
		for _, id := range ids {
			if h.services[id].IsBridge() {
				bridges++
			}
		}
		if bridges != 1 {
			t.Fatalf("cell %d has %d bridges, want 1", ci, bridges)
		}
	}
}

func TestBridgeFailover(t *testing.T) {
	h := buildHierarchy(t, 3, 2)
	h.waitReady(t, 20*time.Second)
	// Kill cell 0's bridge (its leader, the lowest ID).
	victim := h.cells[0][0]
	if !h.services[victim].IsBridge() {
		t.Fatalf("expected %v to bridge cell 0", victim)
	}
	h.net.SetNodeDown(localAddr(victim), true)
	h.net.SetNodeDown(globalAddr(victim), true)
	// A new bridge takes over and global traffic flows again.
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if h.services[h.cells[0][1]].IsBridge() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !h.services[h.cells[0][1]].IsBridge() {
		t.Fatal("no new bridge for cell 0")
	}
	// Wait for the new bridge to merge into the global ring: messages
	// sent while the global ring is still split are best-effort (see the
	// package comment).
	deadline = time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if len(h.services[h.cells[0][1]].GlobalMembers()) == len(h.cells) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := h.services[h.cells[0][1]].GlobalMembers(); len(got) != len(h.cells) {
		t.Fatalf("new bridge global view = %v, want %d bridges", got, len(h.cells))
	}
	if err := h.services[h.cells[0][1]].MulticastGlobal([]byte("post-failover")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for id, n := range h.nodes {
			if n.Stopped() || id == victim {
				continue
			}
			found := false
			for _, p := range h.globals(id) {
				if p == "post-failover" {
					found = true
				}
			}
			if !found {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("post-failover global multicast incomplete")
}

func TestHierCodec(t *testing.T) {
	enc := encodeHier(hierGlobal, 7, 42, 99, []byte("pl"))
	kind, cell, origin, seq, payload, ok := decodeHier(enc)
	if !ok || kind != hierGlobal || cell != 7 || origin != 42 || seq != 99 || string(payload) != "pl" {
		t.Fatalf("round trip: %v %v %v %v %q %v", kind, cell, origin, seq, payload, ok)
	}
	for _, bad := range [][]byte{nil, {hierMagic}, append([]byte{0x00, 1}, make([]byte, 16)...),
		append([]byte{hierMagic, 9}, make([]byte, 16)...)} {
		if _, _, _, _, _, ok := decodeHier(bad); ok {
			t.Fatalf("decoded garbage %x", bad)
		}
	}
	_ = wire.NoNode
}
