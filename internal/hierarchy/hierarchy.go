// Package hierarchy implements the hierarchical extension the paper lists
// as ongoing work (§5): "the hierarchical design that extends the
// scalability of the protocol". The cluster is partitioned into cells,
// each running its own local token ring; the leader of every cell (its
// lowest member, the cell bridge) additionally participates in a global
// token ring. A global multicast travels: origin cell's ring -> origin
// bridge -> global ring -> every bridge -> each cell's ring -> every node.
//
// Ordering: all global multicasts are delivered to applications only
// through the global ring's agreed order (even in the origin cell), so
// every node in every cell observes the same total order of global
// messages. Local multicasts stay inside their cell with the usual cell
// ordering. Token traffic therefore scales with cell size plus the number
// of cells rather than with the full cluster size — the scalability the
// paper is after.
//
// Bridge fail-over is automatic: when a cell's leader changes, the new
// leader joins the global ring (the old bridge is removed by the global
// ring's failure detection). Messages already handed to a bridge that
// dies before forwarding are lost to remote cells (best effort across
// bridge fail-over); in-cell delivery guarantees are unaffected.
package hierarchy

import (
	"encoding/binary"
	"errors"
	"sync"

	"repro/internal/core"
	"repro/internal/wire"
)

// GlobalDelivery is one cross-cell multicast delivered in global order.
type GlobalDelivery struct {
	OriginCell int
	Origin     core.NodeID
	Seq        uint64
	Payload    []byte
}

// Handlers are the application callbacks at the hierarchy level.
type Handlers struct {
	// OnGlobal receives cross-cell multicasts in the global total order.
	OnGlobal func(GlobalDelivery)
	// OnLocal receives cell-local multicasts (plain payloads submitted
	// through the cell node's own Multicast).
	OnLocal func(core.Delivery)
	// OnMembership mirrors the cell node's membership events.
	OnMembership func(core.MembershipEvent)
	// OnBridgeChange reports this node acquiring or losing bridge duty.
	OnBridgeChange func(isBridge bool)
}

// GlobalNodeFactory creates this node's presence on the global plane; it
// is invoked whenever the node becomes its cell's bridge and the returned
// node is closed when it stops being the bridge.
type GlobalNodeFactory func() (*core.Node, error)

// Service runs on every node of every cell.
type Service struct {
	cellID int
	local  *core.Node
	newGN  GlobalNodeFactory

	mu       sync.Mutex
	handlers Handlers
	isBridge bool
	global   *core.Node
	nextSeq  uint64
	closed   bool
}

// New attaches the hierarchy layer to a cell node. It installs the cell
// node's handlers; call before the node starts.
func New(cellID int, local *core.Node, factory GlobalNodeFactory) *Service {
	s := &Service{cellID: cellID, local: local, newGN: factory}
	local.SetHandlers(core.Handlers{
		OnDeliver:    s.onLocalDeliver,
		OnMembership: s.onMembership,
		OnShutdown:   func(string) { s.Close() },
	})
	return s
}

// SetHandlers installs the application callbacks.
func (s *Service) SetHandlers(h Handlers) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers = h
}

// CellID returns this node's cell.
func (s *Service) CellID() int { return s.cellID }

// IsBridge reports whether this node currently bridges its cell.
func (s *Service) IsBridge() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.isBridge
}

// GlobalMembers returns the global ring membership as seen by this node's
// bridge, or nil when this node is not the bridge.
func (s *Service) GlobalMembers() []core.NodeID {
	s.mu.Lock()
	g := s.global
	s.mu.Unlock()
	if g == nil {
		return nil
	}
	return g.Members()
}

// MulticastGlobal submits a payload for delivery to every node of every
// cell, in a single global total order.
func (s *Service) MulticastGlobal(payload []byte) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("hierarchy: service closed")
	}
	s.nextSeq++
	seq := s.nextSeq
	s.mu.Unlock()
	// Phase 1 (toBridge): ride the cell ring to the bridge; the bridge
	// forwards, nobody delivers.
	return s.local.Multicast(encodeHier(hierToBridge, s.cellID, s.local.ID(), seq, payload))
}

// MulticastLocal submits a cell-local multicast (ordinary cell semantics).
func (s *Service) MulticastLocal(payload []byte) error {
	return s.local.Multicast(payload)
}

// onLocalDeliver routes cell-ring deliveries.
func (s *Service) onLocalDeliver(d core.Delivery) {
	kind, cell, origin, seq, payload, ok := decodeHier(d.Payload)
	if !ok {
		s.mu.Lock()
		h := s.handlers.OnLocal
		s.mu.Unlock()
		if h != nil {
			h(d)
		}
		return
	}
	switch kind {
	case hierToBridge:
		// Only the bridge acts; the message is not an app delivery yet.
		s.mu.Lock()
		g := s.global
		bridge := s.isBridge
		s.mu.Unlock()
		if bridge && g != nil {
			_ = g.Multicast(encodeHier(hierGlobal, cell, origin, seq, payload))
		}
	case hierFanOut:
		s.mu.Lock()
		h := s.handlers.OnGlobal
		s.mu.Unlock()
		if h != nil {
			h(GlobalDelivery{OriginCell: cell, Origin: origin, Seq: seq, Payload: payload})
		}
	}
}

// onMembership tracks cell leadership: the lowest member bridges.
func (s *Service) onMembership(e core.MembershipEvent) {
	lead := wire.NoNode
	for _, m := range e.Members {
		if lead == wire.NoNode || m < lead {
			lead = m
		}
	}
	shouldBridge := lead == s.local.ID()
	s.mu.Lock()
	h := s.handlers.OnMembership
	change := shouldBridge != s.isBridge && !s.closed
	s.mu.Unlock()
	if change {
		if shouldBridge {
			s.becomeBridge()
		} else {
			s.resignBridge()
		}
	}
	if h != nil {
		h(e)
	}
}

// becomeBridge joins the global ring.
func (s *Service) becomeBridge() {
	g, err := s.newGN()
	if err != nil {
		return // stay non-bridge; the next membership event retries
	}
	g.SetHandlers(core.Handlers{OnDeliver: s.onGlobalDeliver})
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		g.Close()
		return
	}
	s.isBridge = true
	s.global = g
	cb := s.handlers.OnBridgeChange
	s.mu.Unlock()
	g.Start()
	if cb != nil {
		cb(true)
	}
}

// resignBridge leaves the global ring.
func (s *Service) resignBridge() {
	s.mu.Lock()
	g := s.global
	s.global = nil
	s.isBridge = false
	cb := s.handlers.OnBridgeChange
	s.mu.Unlock()
	if g != nil {
		g.Leave()
		g.Close()
	}
	if cb != nil {
		cb(false)
	}
}

// onGlobalDeliver receives a global-ring message at this bridge and fans
// it out into the local cell; every cell's bridge does the same, so all
// cells deliver global messages in the global ring's order.
func (s *Service) onGlobalDeliver(d core.Delivery) {
	kind, cell, origin, seq, payload, ok := decodeHier(d.Payload)
	if !ok || kind != hierGlobal {
		return
	}
	_ = s.local.Multicast(encodeHier(hierFanOut, cell, origin, seq, payload))
}

// Close stops the hierarchy layer (and the global node if bridging).
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	g := s.global
	s.global = nil
	s.isBridge = false
	s.mu.Unlock()
	if g != nil {
		g.Close()
	}
}

// --- hierarchy payload codec ---

const hierMagic = 0xA7

type hierKind byte

const (
	// hierToBridge rides the origin cell's ring toward its bridge.
	hierToBridge hierKind = 1
	// hierGlobal rides the global ring between bridges.
	hierGlobal hierKind = 2
	// hierFanOut rides each cell's ring for final delivery.
	hierFanOut hierKind = 3
)

func encodeHier(kind hierKind, cell int, origin core.NodeID, seq uint64, payload []byte) []byte {
	b := make([]byte, 0, 18+len(payload))
	b = append(b, hierMagic, byte(kind))
	b = binary.LittleEndian.AppendUint32(b, uint32(cell))
	b = binary.LittleEndian.AppendUint32(b, uint32(origin))
	b = binary.LittleEndian.AppendUint64(b, seq)
	return append(b, payload...)
}

func decodeHier(p []byte) (hierKind, int, core.NodeID, uint64, []byte, bool) {
	if len(p) < 18 || p[0] != hierMagic {
		return 0, 0, 0, 0, nil, false
	}
	kind := hierKind(p[1])
	if kind < hierToBridge || kind > hierFanOut {
		return 0, 0, 0, 0, nil, false
	}
	cell := int(binary.LittleEndian.Uint32(p[2:]))
	origin := core.NodeID(binary.LittleEndian.Uint32(p[6:]))
	seq := binary.LittleEndian.Uint64(p[10:])
	return kind, cell, origin, seq, p[18:], true
}
