package wire

import (
	"sync"
	"sync/atomic"
)

// Buf is a reference-counted, pool-backed byte buffer for wire frames. The
// transport's receive slots and the encode paths draw from these pools so
// steady-state token circulation recycles a fixed working set instead of
// allocating per datagram.
//
// Ownership contract:
//
//   - GetBuf/GetBufSize return a Buf with one reference, owned by the
//     caller.
//   - A consumer that needs the bytes to outlive the call it received them
//     in must Retain before returning and Release when done.
//   - Release drops one reference; when the last reference drops the
//     buffer returns to its pool and its bytes MUST NOT be touched again.
//     Views produced by DecodeView alias these bytes — see DecodeView.
//
// Buffers come in two size classes (small for acks/control frames, large
// for full datagrams); requests beyond the large class are satisfied with
// an unpooled one-shot allocation so the pools never hold giants.
type Buf struct {
	// B is the backing storage. Users slice it (b.B[:0], b.B[:n]); its
	// capacity is at least the size requested from GetBufSize.
	B    []byte
	refs atomic.Int32
	pool *sync.Pool
}

// Size classes. BufSmall fits every control frame (acks, 911s, beacons)
// with room to spare; BufLarge is the maximum UDP datagram, the natural
// unit of the receive path.
const (
	BufSmall = 4 * 1024
	BufLarge = 64 * 1024
)

// Pool usage counters, exported through PoolStats. Global atomics rather
// than per-registry counters: the pools themselves are process-global.
var (
	poolHits   atomic.Int64
	poolMisses atomic.Int64
)

var smallPool, largePool sync.Pool

func init() {
	smallPool.New = func() any {
		poolMisses.Add(1)
		return &Buf{B: make([]byte, BufSmall), pool: &smallPool}
	}
	largePool.New = func() any {
		poolMisses.Add(1)
		return &Buf{B: make([]byte, BufLarge), pool: &largePool}
	}
}

// GetBuf returns a small-class buffer with one reference.
func GetBuf() *Buf { return GetBufSize(BufSmall) }

// GetBufSize returns a buffer whose capacity is at least n, with one
// reference. Requests beyond BufLarge are one-shot allocations that bypass
// the pools (Release simply drops them).
func GetBufSize(n int) *Buf {
	// The pool New funcs count misses; hits are derived as gets-misses at
	// read time, so the fast path costs two atomic adds total.
	poolGets.Add(1)
	var b *Buf
	switch {
	case n <= BufSmall:
		b = smallPool.Get().(*Buf)
	case n <= BufLarge:
		b = largePool.Get().(*Buf)
	default:
		poolMisses.Add(1)
		b = &Buf{B: make([]byte, n)}
	}
	b.B = b.B[:cap(b.B)]
	b.refs.Store(1)
	return b
}

var poolGets atomic.Int64

// Retain adds a reference; the caller must pair it with Release.
func (b *Buf) Retain() {
	if b.refs.Add(1) <= 1 {
		panic("wire: Retain on a released Buf")
	}
}

// Release drops one reference, returning the buffer to its pool when the
// last one goes. Release on a nil Buf is a no-op so callers can treat
// "unpooled payload" (nil) uniformly.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	switch n := b.refs.Add(-1); {
	case n > 0:
		return
	case n < 0:
		panic("wire: Release without matching Retain")
	}
	if b.pool != nil {
		b.pool.Put(b)
	}
}

// Refs returns the current reference count (for tests and leak asserts).
func (b *Buf) Refs() int32 { return b.refs.Load() }

// PoolStatsSnapshot reports cumulative pool traffic.
type PoolStatsSnapshot struct {
	Gets   int64 `json:"gets"`
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
}

// PoolStats returns cumulative frame-pool usage: Hits counts gets served
// from a pooled buffer, Misses counts gets that had to allocate.
func PoolStats() PoolStatsSnapshot {
	gets, misses := poolGets.Load(), poolMisses.Load()
	hits := gets - misses
	if hits < 0 {
		hits = 0
	}
	return PoolStatsSnapshot{Gets: gets, Hits: hits, Misses: misses}
}
