package wire

import (
	"encoding/binary"
	"fmt"
)

// Chunked frames (version 3) split one oversized session frame across
// multiple datagrams. The motivating case is the carried master-lock bug:
// a lock holder releasing a large burst attaches every pending message to
// the token at once (the MaxBatch cap is deliberately lifted while
// holding, see ring.Config.MaxBatch), and the encoded token frame can
// exceed the UDP datagram limit. Instead of silently truncating or
// failing the pass, the sender splits the frame into version-3 chunks and
// the receiver reassembles them before decoding.
//
// Chunk layout:
//
//	byte 0       version (3)
//	byte 1       Kind of the inner frame (advisory, for observability)
//	bytes 2-5    RingID, little-endian — same offset as version 2, so
//	             PeekRing demultiplexes chunks without special casing
//	bytes 6-13   FrameID, little-endian uint64 — identifies the split
//	             frame; all chunks of one frame share it
//	bytes 14-17  Offset, little-endian uint32 — byte offset of this part
//	bytes 18-21  Total, little-endian uint32 — size of the full frame
//	bytes 22-    the part: frame[Offset : Offset+len(part)]
//
// Version-1 and version-2 decoders reject chunks cleanly: their Decode
// sees version byte 3 and returns ErrBadVersion before touching the body.
// That makes chunked sends safe only between upgraded peers — which holds
// because only the new sender emits them, and it only does so for frames
// the old receiver could not have accepted anyway (they exceed its
// datagram limit).

// ChunkHeaderLen is the fixed size of the version-3 chunk header.
const ChunkHeaderLen = 22

// MaxChunkedFrame caps the reassembled frame size an Assembler will
// accept, bounding memory a hostile or corrupt peer can pin. It is sized
// for a worst-case token: MaxPayload plus generous framing headroom.
const MaxChunkedFrame = MaxPayload + (1 << 20)

// ErrChunk wraps chunk-specific decode failures.
var ErrChunk = fmt.Errorf("wire: bad chunk")

// Chunk is one decoded version-3 continuation frame. Part aliases the
// input buffer passed to DecodeChunk.
type Chunk struct {
	Kind    Kind
	Ring    RingID
	FrameID uint64
	Offset  uint32
	Total   uint32
	Part    []byte
}

// IsChunk reports whether an encoded frame is a version-3 chunk.
func IsChunk(b []byte) bool { return len(b) > 0 && b[0] == VersionChunk }

// AppendChunk appends one encoded chunk carrying part (which must be
// frame[offset:offset+len(part)] of a frame of size total) to dst.
func AppendChunk(dst []byte, ring RingID, kind Kind, frameID uint64, offset, total uint32, part []byte) []byte {
	dst = append(dst, VersionChunk, byte(kind))
	dst = appendU32(dst, uint32(ring))
	dst = appendU64(dst, frameID)
	dst = appendU32(dst, offset)
	dst = appendU32(dst, total)
	return append(dst, part...)
}

// ChunkFrame splits an encoded frame into version-3 chunks of at most
// maxDatagram bytes each (header included). frameID must be unique per
// (sender, frame) — a per-sender counter works; the Assembler treats a
// higher frameID from the same sender as superseding any partial frame.
// Chunking is the rare oversize path, so the per-chunk allocations here
// are acceptable.
func ChunkFrame(frame []byte, ring RingID, frameID uint64, maxDatagram int) ([][]byte, error) {
	if maxDatagram <= ChunkHeaderLen {
		return nil, fmt.Errorf("%w: datagram limit %d below header size", ErrChunk, maxDatagram)
	}
	if len(frame) > MaxChunkedFrame {
		return nil, fmt.Errorf("%w: frame %d bytes exceeds %d", ErrTooLarge, len(frame), MaxChunkedFrame)
	}
	if len(frame) == 0 {
		return nil, fmt.Errorf("%w: empty frame", ErrChunk)
	}
	kind := Kind(0)
	if len(frame) >= 2 {
		kind = Kind(frame[1])
	}
	step := maxDatagram - ChunkHeaderLen
	out := make([][]byte, 0, (len(frame)+step-1)/step)
	for off := 0; off < len(frame); off += step {
		end := off + step
		if end > len(frame) {
			end = len(frame)
		}
		c := make([]byte, 0, ChunkHeaderLen+(end-off))
		c = AppendChunk(c, ring, kind, frameID, uint32(off), uint32(len(frame)), frame[off:end])
		out = append(out, c)
	}
	return out, nil
}

// DecodeChunk parses a version-3 chunk header. Part aliases b.
func DecodeChunk(b []byte) (Chunk, error) {
	if len(b) < ChunkHeaderLen {
		return Chunk{}, ErrTruncated
	}
	if b[0] != VersionChunk {
		return Chunk{}, fmt.Errorf("%w: got %d want %d", ErrBadVersion, b[0], VersionChunk)
	}
	c := Chunk{
		Kind:    Kind(b[1]),
		Ring:    RingID(binary.LittleEndian.Uint32(b[2:])),
		FrameID: binary.LittleEndian.Uint64(b[6:]),
		Offset:  binary.LittleEndian.Uint32(b[14:]),
		Total:   binary.LittleEndian.Uint32(b[18:]),
		Part:    b[ChunkHeaderLen:],
	}
	if c.Total == 0 || c.Total > MaxChunkedFrame {
		return Chunk{}, fmt.Errorf("%w: total %d", ErrTooLarge, c.Total)
	}
	if len(c.Part) == 0 {
		return Chunk{}, fmt.Errorf("%w: empty part", ErrChunk)
	}
	if uint64(c.Offset)+uint64(len(c.Part)) > uint64(c.Total) {
		return Chunk{}, fmt.Errorf("%w: part [%d,%d) outside total %d", ErrChunk, c.Offset, int(c.Offset)+len(c.Part), c.Total)
	}
	return c, nil
}

// Assembler reassembles chunked frames, one partial frame per sender.
// Chunks may arrive out of order (transport retries reorder); duplicate
// offsets (retry duplicates that slipped past the dedup window) are
// ignored. A chunk with a higher FrameID than the sender's current
// partial discards the partial — a sender only ever has one oversized
// frame in flight (the token), so a newer frame means the old one is
// obsolete. Lower FrameIDs are dropped as stale.
//
// Assembler is not safe for concurrent use; each ring's receive loop owns
// one.
type Assembler struct {
	partials map[NodeID]*partialFrame
	// Completed counts frames fully reassembled; Dropped counts chunks
	// discarded as stale, duplicate, or inconsistent.
	Completed int64
	Dropped   int64
}

type partialFrame struct {
	frameID uint64
	buf     []byte
	seen    map[uint32]int // offset -> part length
	have    int
}

// NewAssembler returns an empty Assembler.
func NewAssembler() *Assembler {
	return &Assembler{partials: make(map[NodeID]*partialFrame)}
}

// Add feeds one encoded chunk from a sender. When the chunk completes a
// frame, Add returns the reassembled frame (owned by the caller; it does
// not alias b) and forgets the partial. Otherwise it returns nil.
func (a *Assembler) Add(from NodeID, b []byte) ([]byte, error) {
	c, err := DecodeChunk(b)
	if err != nil {
		a.Dropped++
		return nil, err
	}
	p := a.partials[from]
	switch {
	case p == nil || c.FrameID > p.frameID:
		p = &partialFrame{
			frameID: c.FrameID,
			buf:     make([]byte, c.Total),
			seen:    make(map[uint32]int),
		}
		a.partials[from] = p
	case c.FrameID < p.frameID:
		a.Dropped++
		return nil, nil
	}
	if len(p.buf) != int(c.Total) {
		// Same frameID, different claimed size: corrupt or hostile.
		delete(a.partials, from)
		a.Dropped++
		return nil, fmt.Errorf("%w: frame %d total changed %d -> %d", ErrChunk, c.FrameID, len(p.buf), c.Total)
	}
	if n, dup := p.seen[c.Offset]; dup {
		if n != len(c.Part) {
			delete(a.partials, from)
			a.Dropped++
			return nil, fmt.Errorf("%w: frame %d offset %d length changed", ErrChunk, c.FrameID, c.Offset)
		}
		a.Dropped++ // harmless retry duplicate
		return nil, nil
	}
	copy(p.buf[c.Offset:], c.Part)
	p.seen[c.Offset] = len(c.Part)
	p.have += len(c.Part)
	if p.have < len(p.buf) {
		return nil, nil
	}
	delete(a.partials, from)
	if p.have > len(p.buf) {
		// Overlapping parts summed past the total: inconsistent split.
		a.Dropped++
		return nil, fmt.Errorf("%w: frame %d overlapping parts", ErrChunk, c.FrameID)
	}
	a.Completed++
	return p.buf, nil
}

// Forget drops any partial frame from a sender, e.g. when the member
// leaves the ring.
func (a *Assembler) Forget(from NodeID) { delete(a.partials, from) }

// Pending reports how many senders have partial frames outstanding.
func (a *Assembler) Pending() int { return len(a.partials) }
