package wire

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// bigTokenFrame encodes a token frame large enough to need nChunks chunks
// at the given datagram limit.
func bigTokenFrame(t testing.TB, ring RingID, maxDatagram, nChunks int) []byte {
	t.Helper()
	payload := make([]byte, maxDatagram) // each message overflows one datagram alone
	for i := range payload {
		payload[i] = byte(i)
	}
	tok := &Token{Epoch: 7, Seq: 42, Members: []NodeID{1, 2, 3}}
	for len(tok.Msgs) < nChunks {
		tok.Msgs = append(tok.Msgs, Message{
			Origin: 1, Seq: uint64(len(tok.Msgs) + 1), Payload: payload,
		})
	}
	frame := EncodeTokenRing(ring, tok)
	if frame == nil || len(frame) <= maxDatagram*(nChunks-1) {
		t.Fatalf("frame too small to exercise chunking: %d bytes", len(frame))
	}
	return frame
}

func TestChunkRoundTrip(t *testing.T) {
	const maxDG = 1024
	frame := bigTokenFrame(t, 5, maxDG, 4)
	chunks, err := ChunkFrame(frame, 5, 9, maxDG)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 4 {
		t.Fatalf("want >=4 chunks, got %d", len(chunks))
	}
	for _, c := range chunks {
		if len(c) > maxDG {
			t.Fatalf("chunk exceeds datagram limit: %d > %d", len(c), maxDG)
		}
		if !IsChunk(c) {
			t.Fatal("chunk not recognized by IsChunk")
		}
		if ring, err := PeekRing(c); err != nil || ring != 5 {
			t.Fatalf("PeekRing on chunk = %v, %v; want ring 5", ring, err)
		}
		// v1/v2 decoders must reject a chunk cleanly, not misparse it.
		if _, err := Decode(c); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("Decode(chunk) err = %v, want ErrBadVersion", err)
		}
		if _, err := DecodeView(c); !errors.Is(err, ErrBadVersion) {
			t.Fatalf("DecodeView(chunk) err = %v, want ErrBadVersion", err)
		}
	}

	// Reassemble out of order, with a duplicate mixed in.
	rng := rand.New(rand.NewSource(1))
	order := rng.Perm(len(chunks))
	asm := NewAssembler()
	var got []byte
	for i, idx := range order {
		if i == 1 {
			if dup, err := asm.Add(3, chunks[order[0]]); err != nil || dup != nil {
				t.Fatalf("duplicate chunk: got frame %v err %v", dup != nil, err)
			}
		}
		out, err := asm.Add(3, chunks[idx])
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			if i != len(order)-1 {
				t.Fatalf("frame completed early at chunk %d/%d", i+1, len(order))
			}
			got = out
		}
	}
	if !bytes.Equal(got, frame) {
		t.Fatalf("reassembled frame differs: %d vs %d bytes", len(got), len(frame))
	}
	if env, err := Decode(got); err != nil || env.Kind != KindToken || env.Ring != 5 {
		t.Fatalf("reassembled frame decode: %+v, %v", env, err)
	}
	if asm.Completed != 1 || asm.Pending() != 0 {
		t.Fatalf("assembler state: completed=%d pending=%d", asm.Completed, asm.Pending())
	}
}

func TestAssemblerSupersede(t *testing.T) {
	const maxDG = 256
	frame := bigTokenFrame(t, 1, maxDG, 2)
	oldChunks, err := ChunkFrame(frame, 1, 1, maxDG)
	if err != nil {
		t.Fatal(err)
	}
	newChunks, err := ChunkFrame(frame, 1, 2, maxDG)
	if err != nil {
		t.Fatal(err)
	}
	asm := NewAssembler()
	if _, err := asm.Add(7, oldChunks[0]); err != nil {
		t.Fatal(err)
	}
	// A higher frameID supersedes the partial; the stale remainder is
	// dropped when it dribbles in.
	if _, err := asm.Add(7, newChunks[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := asm.Add(7, oldChunks[1]); err != nil {
		t.Fatal(err)
	}
	if asm.Dropped == 0 {
		t.Fatal("stale chunk not counted as dropped")
	}
	var done []byte
	for _, c := range newChunks[1:] {
		if done, err = asm.Add(7, c); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(done, frame) {
		t.Fatal("superseding frame did not reassemble")
	}

	// Same frameID with a different claimed total is rejected.
	asm = NewAssembler()
	if _, err := asm.Add(7, newChunks[0]); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), newChunks[1]...)
	bad[18]++ // Total field
	if _, err := asm.Add(7, bad); err == nil {
		t.Fatal("total mismatch accepted")
	}
	if asm.Pending() != 0 {
		t.Fatal("inconsistent partial not discarded")
	}
	// Forget drops a sender's partial.
	if _, err := asm.Add(7, newChunks[0]); err != nil {
		t.Fatal(err)
	}
	asm.Forget(7)
	if asm.Pending() != 0 {
		t.Fatal("Forget left a partial")
	}
}

func TestChunkFrameErrors(t *testing.T) {
	if _, err := ChunkFrame([]byte{1, 2, 3}, 0, 1, ChunkHeaderLen); err == nil {
		t.Fatal("datagram limit at header size accepted")
	}
	if _, err := ChunkFrame(nil, 0, 1, 1024); err == nil {
		t.Fatal("empty frame accepted")
	}
	if _, err := ChunkFrame(make([]byte, MaxChunkedFrame+1), 0, 1, 1024); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestViewAliasingContract pins down what DecodeView does and does not
// alias: payload bytes are views into the input, everything else is copied
// out. This is the invariant the buffer-pinning runtime relies on.
func TestViewAliasingContract(t *testing.T) {
	tok := &Token{Epoch: 1, Seq: 2, Members: []NodeID{1, 2},
		Msgs: []Message{{Origin: 1, Seq: 1, Payload: []byte("aaaa")}}}
	frame := EncodeTokenRing(3, tok)

	env, err := DecodeView(frame)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		frame[i] = 'Z' // simulate the receive buffer being recycled
	}
	if string(env.Token.Msgs[0].Payload) != "ZZZZ" {
		t.Fatalf("view payload did not alias input: %q", env.Token.Msgs[0].Payload)
	}
	if env.Token.Epoch != 1 || env.Token.Members[1] != 2 {
		t.Fatal("fixed-width fields must be copies, not views")
	}

	// The copying decoder must be immune to the same recycling.
	frame = EncodeTokenRing(3, tok)
	env, err = Decode(frame)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		frame[i] = 'Z'
	}
	if string(env.Token.Msgs[0].Payload) != "aaaa" {
		t.Fatalf("Decode payload aliases input: %q", env.Token.Msgs[0].Payload)
	}
}

// TestViewsNeverOutliveRelease exercises the pooled-buffer contract end to
// end: a retained buffer keeps its views stable while an unretained buffer
// returns to the pool on Release and its storage is re-issued.
func TestViewsNeverOutliveRelease(t *testing.T) {
	tok := &Token{Epoch: 9, Seq: 1, Members: []NodeID{1},
		Msgs: []Message{{Origin: 1, Seq: 1, Payload: []byte("hold me")}}}

	buf := GetBuf()
	n := len(AppendTokenRing(buf.B[:0], 0, tok))
	env, err := DecodeView(buf.B[:n])
	if err != nil {
		t.Fatal(err)
	}
	view := env.Token.Msgs[0].Payload

	buf.Retain() // consumer keeps the views alive
	buf.Release()
	if buf.Refs() != 1 {
		t.Fatalf("refs = %d after retain+release, want 1", buf.Refs())
	}
	if string(view) != "hold me" {
		t.Fatalf("retained view corrupted: %q", view)
	}
	buf.Release() // final release: views are dead from here on
	if got := GetBuf(); got == buf {
		// Pool re-issued the same buffer: its bytes now belong to the new
		// owner, which is exactly why using `view` here would be a bug.
		got.Release()
	} else {
		got.Release()
	}
}

// FuzzChunk drives arbitrary bytes through chunk decode and reassembly:
// no input may panic the assembler or complete a frame that differs from
// what a well-formed split would produce.
func FuzzChunk(f *testing.F) {
	frame := EncodeTokenRing(2, &Token{Epoch: 1, Seq: 1, Members: []NodeID{1, 2},
		Msgs: []Message{{Origin: 1, Seq: 1, Payload: bytes.Repeat([]byte("x"), 200)}}})
	if chunks, err := ChunkFrame(frame, 2, 1, 96); err == nil {
		for _, c := range chunks {
			f.Add(c)
		}
	}
	f.Add([]byte{VersionChunk, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeChunk(data)
		if err != nil {
			if IsChunk(data) && len(data) >= ChunkHeaderLen && c.Part != nil {
				t.Fatal("DecodeChunk returned a part alongside an error")
			}
		}
		asm := NewAssembler()
		out, err := asm.Add(1, data)
		if err != nil || out == nil {
			return
		}
		// A frame completed by a single chunk must be self-consistent.
		if len(out) != int(c.Total) {
			t.Fatalf("completed frame length %d != declared total %d", len(out), c.Total)
		}
		if !bytes.Equal(out[c.Offset:int(c.Offset)+len(c.Part)], c.Part) {
			t.Fatal("completed frame does not contain the chunk part")
		}
	})
}
