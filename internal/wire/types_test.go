package wire

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestGroupID(t *testing.T) {
	cases := []struct {
		members []NodeID
		want    NodeID
	}{
		{nil, NoNode},
		{[]NodeID{5}, 5},
		{[]NodeID{9, 3, 7}, 3},
		{[]NodeID{1, 2, 3}, 1},
	}
	for _, c := range cases {
		tok := Token{Members: c.members}
		if got := tok.GroupID(); got != c.want {
			t.Errorf("GroupID(%v) = %v, want %v", c.members, got, c.want)
		}
	}
}

func TestSuccessor(t *testing.T) {
	tok := Token{Members: []NodeID{1, 2, 3, 4}}
	cases := []struct{ id, want NodeID }{
		{1, 2}, {2, 3}, {4, 1}, {9, NoNode},
	}
	for _, c := range cases {
		if got := tok.Successor(c.id); got != c.want {
			t.Errorf("Successor(%v) = %v, want %v", c.id, got, c.want)
		}
	}
	single := Token{Members: []NodeID{7}}
	if got := single.Successor(7); got != 7 {
		t.Errorf("singleton Successor = %v, want 7", got)
	}
}

func TestRemoveMember(t *testing.T) {
	tok := Token{Members: []NodeID{1, 2, 3}}
	if !tok.RemoveMember(2) {
		t.Fatal("RemoveMember(2) = false")
	}
	if want := []NodeID{1, 3}; !reflect.DeepEqual(tok.Members, want) {
		t.Fatalf("Members = %v, want %v", tok.Members, want)
	}
	if tok.RemoveMember(2) {
		t.Fatal("second RemoveMember(2) = true")
	}
}

func TestInsertAfter(t *testing.T) {
	// Paper §2.3: ring ABCD, B removed -> ACD; C admits B -> ACBD.
	tok := Token{Members: []NodeID{1, 3, 4}} // A=1 C=3 D=4
	tok.InsertAfter(3, 2)                    // C admits B=2
	if want := []NodeID{1, 3, 2, 4}; !reflect.DeepEqual(tok.Members, want) {
		t.Fatalf("Members = %v, want %v (ACBD)", tok.Members, want)
	}
	// Inserting an existing member is a no-op.
	tok.InsertAfter(1, 2)
	if want := []NodeID{1, 3, 2, 4}; !reflect.DeepEqual(tok.Members, want) {
		t.Fatalf("duplicate insert changed members: %v", tok.Members)
	}
	// Unknown anchor appends.
	tok.InsertAfter(99, 5)
	if want := []NodeID{1, 3, 2, 4, 5}; !reflect.DeepEqual(tok.Members, want) {
		t.Fatalf("Members = %v, want %v", tok.Members, want)
	}
}

func TestCloneIsDeep(t *testing.T) {
	tok := &Token{
		Epoch:   2,
		Seq:     10,
		Members: []NodeID{1, 2},
		Msgs:    []Message{{Origin: 1, Seq: 1, Payload: []byte("abc")}},
	}
	c := tok.Clone()
	c.Members[0] = 99
	c.Msgs[0].Payload[0] = 'z'
	c.Msgs[0].Seq = 42
	if tok.Members[0] != 1 {
		t.Fatal("Clone aliased Members")
	}
	if tok.Msgs[0].Payload[0] != 'a' {
		t.Fatal("Clone aliased Payload")
	}
	if tok.Msgs[0].Seq != 1 {
		t.Fatal("Clone aliased Msgs")
	}
}

func TestFresher(t *testing.T) {
	cases := []struct {
		aE, aS, bE, bS uint64
		want           bool
	}{
		{1, 5, 1, 4, true},
		{1, 4, 1, 5, false},
		{2, 0, 1, 99, true},
		{1, 99, 2, 0, false},
		{1, 5, 1, 5, false},
	}
	for _, c := range cases {
		if got := Fresher(c.aE, c.aS, c.bE, c.bS); got != c.want {
			t.Errorf("Fresher(%d,%d vs %d,%d) = %v, want %v", c.aE, c.aS, c.bE, c.bS, got, c.want)
		}
	}
}

func TestInsertAfterProperty(t *testing.T) {
	// Property: InsertAfter always results in a membership that contains
	// the new node exactly once and preserves all previous members.
	f := func(membersRaw []uint32, anchorRaw, newRaw uint32) bool {
		seen := map[NodeID]bool{}
		var members []NodeID
		for _, m := range membersRaw {
			id := NodeID(m%100 + 1)
			if !seen[id] {
				seen[id] = true
				members = append(members, id)
			}
		}
		tok := Token{Members: append([]NodeID(nil), members...)}
		anchor := NodeID(anchorRaw%100 + 1)
		newID := NodeID(newRaw%100 + 1)
		tok.InsertAfter(anchor, newID)
		count := 0
		for _, m := range tok.Members {
			if m == newID {
				count++
			}
		}
		if count != 1 {
			return false
		}
		for _, m := range members {
			if !tok.HasMember(m) {
				return false
			}
		}
		wantLen := len(members)
		if !seen[newID] {
			wantLen++
		}
		return len(tok.Members) == wantLen
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSortedIDs(t *testing.T) {
	in := []NodeID{3, 1, 2}
	got := SortedIDs(in)
	if want := []NodeID{1, 2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedIDs = %v, want %v", got, want)
	}
	if !reflect.DeepEqual(in, []NodeID{3, 1, 2}) {
		t.Fatal("SortedIDs mutated its input")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindToken:    "TOKEN",
		Kind911:      "911",
		Kind911Reply: "911REPLY",
		KindBodyodor: "BODYODOR",
		KindForward:  "FORWARD",
		Kind(99):     "Kind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestSysKindString(t *testing.T) {
	cases := map[SysKind]string{
		SysApp:         "APP",
		SysNodeRemoved: "NODE-REMOVED",
		SysNodeJoined:  "NODE-JOINED",
		SysGroupMerged: "GROUP-MERGED",
		SysKind(42):    "SysKind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("SysKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestNodeIDString(t *testing.T) {
	if got := NodeID(7).String(); got != "n7" {
		t.Fatalf("NodeID(7).String() = %q, want n7", got)
	}
}

func TestMessageID(t *testing.T) {
	m := Message{Origin: 3, Seq: 9}
	if got := m.ID(); got != (MessageID{3, 9}) {
		t.Fatalf("ID() = %+v", got)
	}
}
