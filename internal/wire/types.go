// Package wire defines the Raincore session-layer message formats (§2.2 -
// §2.4 of the paper) and their binary encoding. Everything that crosses the
// network between cluster members is one of the types here, serialized with
// the codec in codec.go and carried inside a Raincore Transport frame.
package wire

import (
	"fmt"
	"sort"
)

// NodeID identifies a cluster member. The paper uses the lowest node ID in
// the current membership as the group ID (§2.4), so IDs must be totally
// ordered; we use uint32.
type NodeID uint32

// NoNode is the zero NodeID, never a valid member.
const NoNode NodeID = 0

// RingID identifies one ring (one circulating token and its total order)
// within a sharded multi-ring runtime. A single-ring deployment uses ring
// 0; legacy version-1 frames have no RingID field and decode as ring 0.
type RingID uint32

// Ring0 is the default ring: the only ring of a single-ring deployment and
// the anchor ring of a sharded runtime.
const Ring0 RingID = 0

// String renders a RingID as "r<id>".
func (r RingID) String() string { return fmt.Sprintf("r%d", r) }

// String renders a NodeID as "n<id>".
func (id NodeID) String() string { return fmt.Sprintf("n%d", id) }

// Kind discriminates session-layer messages.
type Kind uint8

const (
	// KindToken is the TOKEN: authoritative membership, sequence number
	// and piggybacked multicast messages (§2.2).
	KindToken Kind = iota + 1
	// Kind911 is the token-recovery / join request (§2.3).
	Kind911
	// Kind911Reply carries a grant or denial of a 911 request.
	Kind911Reply
	// KindBodyodor is the discovery beacon sent to eligible members that
	// are not in the current group (§2.4).
	KindBodyodor
	// KindForward is an open-group message handed to one member for
	// multicast into the group (§2.6).
	KindForward
)

// String names the message kind.
func (k Kind) String() string {
	switch k {
	case KindToken:
		return "TOKEN"
	case Kind911:
		return "911"
	case Kind911Reply:
		return "911REPLY"
	case KindBodyodor:
		return "BODYODOR"
	case KindForward:
		return "FORWARD"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// SysKind tags system messages that the ring protocol itself multicasts so
// that every replica observes membership changes at the same point in the
// agreed total order (needed by the distributed lock manager, §2.7).
type SysKind uint8

const (
	// SysApp is an ordinary application multicast.
	SysApp SysKind = iota
	// SysNodeRemoved announces that the origin removed a node from the
	// membership (failure detection, §2.2).
	SysNodeRemoved
	// SysNodeJoined announces that the origin admitted a node (§2.3).
	SysNodeJoined
	// SysGroupMerged announces a completed group merge (§2.4).
	SysGroupMerged
)

// String names the system-message kind.
func (k SysKind) String() string {
	switch k {
	case SysApp:
		return "APP"
	case SysNodeRemoved:
		return "NODE-REMOVED"
	case SysNodeJoined:
		return "NODE-JOINED"
	case SysGroupMerged:
		return "GROUP-MERGED"
	default:
		return fmt.Sprintf("SysKind(%d)", uint8(k))
	}
}

// Phase is the delivery phase of a safely ordered message (§2.6): it rides
// the token one round to collect receipts, then a second round to release
// delivery.
type Phase uint8

const (
	// PhaseCollect is the first round: members buffer the message.
	PhaseCollect Phase = iota
	// PhaseRelease is the second round: members deliver the buffered
	// message, now known to be held by the entire membership.
	PhaseRelease
)

// Message is one multicast message piggybacked on the TOKEN.
type Message struct {
	// Origin is the multicasting member; Seq is its per-origin sequence
	// number. (Origin, Seq) is the message identity used for dedup.
	Origin NodeID
	Seq    uint64
	// Sys distinguishes application payloads from ordered system
	// announcements; Subject is the affected node for system messages.
	Sys     SysKind
	Subject NodeID
	// Safe selects safe ordering (§2.6); Phase tracks its progress.
	Safe  bool
	Phase Phase
	// Visited counts ring members that have seen the message in the
	// current phase, including the origin. When Visited reaches the
	// membership size the phase is complete.
	Visited uint16
	// Payload is the opaque application payload.
	Payload []byte
}

// ID returns the (origin, seq) identity of the message.
func (m Message) ID() MessageID { return MessageID{m.Origin, m.Seq} }

// MessageID identifies a multicast message for dedup.
type MessageID struct {
	Origin NodeID
	Seq    uint64
}

// Token is the single circulating TOKEN (§2.2). It carries the
// authoritative group membership, a per-hop sequence number, and the
// piggybacked multicast messages.
type Token struct {
	// Epoch counts token regenerations and merges; it breaks ties when a
	// stale token copy and a regenerated token collide.
	Epoch uint64
	// Seq increments by one on every hop (§2.2).
	Seq uint64
	// Members is the ring order; Members[0] is not special, the ring is
	// the cyclic order of this slice. The group ID (§2.4) is the lowest
	// NodeID in Members.
	Members []NodeID
	// TBM marks a token sent to another group's representative To Be
	// Merged (§2.4).
	TBM bool
	// Msgs are the piggybacked multicast messages in agreed total order.
	Msgs []Message
}

// GroupID returns the group identifier: the lowest member ID, or NoNode for
// an empty membership (§2.4).
func (t *Token) GroupID() NodeID {
	g := NoNode
	for _, m := range t.Members {
		if g == NoNode || m < g {
			g = m
		}
	}
	return g
}

// HasMember reports whether id is in the token's membership.
func (t *Token) HasMember(id NodeID) bool {
	for _, m := range t.Members {
		if m == id {
			return true
		}
	}
	return false
}

// Successor returns the member after id in ring order. It returns id itself
// for a singleton ring and NoNode if id is not a member.
func (t *Token) Successor(id NodeID) NodeID {
	for i, m := range t.Members {
		if m == id {
			return t.Members[(i+1)%len(t.Members)]
		}
	}
	return NoNode
}

// RemoveMember deletes id from the membership, preserving ring order. It
// reports whether the member was present.
func (t *Token) RemoveMember(id NodeID) bool {
	for i, m := range t.Members {
		if m == id {
			t.Members = append(t.Members[:i], t.Members[i+1:]...)
			return true
		}
	}
	return false
}

// InsertAfter inserts newID immediately after anchor in ring order. If
// anchor is absent the new member is appended. Inserting an existing member
// is a no-op. This implements the paper's re-join placement where the ring
// ABCD becomes ACBD after C admits B (§2.3).
func (t *Token) InsertAfter(anchor, newID NodeID) {
	if t.HasMember(newID) {
		return
	}
	for i, m := range t.Members {
		if m == anchor {
			t.Members = append(t.Members, NoNode)
			copy(t.Members[i+2:], t.Members[i+1:])
			t.Members[i+1] = newID
			return
		}
	}
	t.Members = append(t.Members, newID)
}

// Clone deep-copies the token, including messages; the local copy each node
// retains for 911 recovery (§2.3) must not alias live token state.
func (t *Token) Clone() *Token {
	c := &Token{Epoch: t.Epoch, Seq: t.Seq, TBM: t.TBM}
	c.Members = append([]NodeID(nil), t.Members...)
	c.Msgs = make([]Message, len(t.Msgs))
	for i, m := range t.Msgs {
		c.Msgs[i] = m
		c.Msgs[i].Payload = append([]byte(nil), m.Payload...)
	}
	return c
}

// Fresher reports whether token copy a is strictly fresher than b, ordering
// by (Epoch, Seq).
func Fresher(aEpoch, aSeq, bEpoch, bSeq uint64) bool {
	if aEpoch != bEpoch {
		return aEpoch > bEpoch
	}
	return aSeq > bSeq
}

// Msg911 requests the right to regenerate the TOKEN, or, when sent by a
// non-member, requests admission to the group (§2.3).
type Msg911 struct {
	// From is the requester; Epoch/Seq identify its freshest token copy.
	From  NodeID
	Epoch uint64
	Seq   uint64
	// ReqID distinguishes retries so stale replies are ignored.
	ReqID uint64
}

// Msg911Reply answers a 911 request.
type Msg911Reply struct {
	From  NodeID
	ReqID uint64
	// Grant is true when the replier's token copy is no fresher than the
	// requester's and the replier does not hold the live token.
	Grant bool
	// JoinPending is true when the replier treated the 911 as a join
	// request because the requester is not in its membership (§2.3).
	JoinPending bool
	// Epoch/Seq describe the replier's copy, letting a denied requester
	// learn how stale it is.
	Epoch uint64
	Seq   uint64
}

// Bodyodor is the discovery beacon (§2.4): node ID and group ID of the
// sender's current group.
type Bodyodor struct {
	From    NodeID
	GroupID NodeID
	Epoch   uint64
}

// Forward carries an open-group message from outside (or from the app on a
// member) to be multicast by the receiving member (§2.6).
type Forward struct {
	From NodeID
	Safe bool
	// Payload is multicast into the group by the receiver.
	Payload []byte
}

// SortedIDs returns a sorted copy of ids; useful for stable logs and tests.
func SortedIDs(ids []NodeID) []NodeID {
	out := append([]NodeID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
