package wire

import "testing"

// benchToken is a realistic steady-state token: a mid-size ring with a
// batch of small multicasts attached.
func benchToken() *Token {
	tok := &Token{Epoch: 12, Seq: 9000, Members: []NodeID{1, 2, 3, 4, 5, 6, 7, 8}}
	for i := 0; i < 8; i++ {
		tok.Msgs = append(tok.Msgs, Message{
			Origin: NodeID(i%8 + 1), Seq: uint64(1000 + i), Safe: i%2 == 0,
			Payload: []byte("0123456789abcdef0123456789abcdef"),
		})
	}
	return tok
}

// TestEncodeTokenZeroAlloc pins the hot encode path at zero allocations:
// a pooled buffer sized by EncodedTokenSize plus AppendTokenRing must not
// touch the heap.
func TestEncodeTokenZeroAlloc(t *testing.T) {
	tok := benchToken()
	const ring RingID = 3
	buf := GetBufSize(EncodedTokenSize(ring, tok))
	defer buf.Release()
	allocs := testing.AllocsPerRun(200, func() {
		if len(AppendTokenRing(buf.B[:0], ring, tok)) == 0 {
			t.Fatal("empty encode")
		}
	})
	if allocs > 1 {
		t.Fatalf("encode allocates %.1f/op, want <=1", allocs)
	}
}

// TestDecodeViewIntoZeroAlloc pins the hot decode path: steady-state
// DecodeViewInto reuses the envelope's scratch storage and returns payload
// views, so it must not allocate either.
func TestDecodeViewIntoZeroAlloc(t *testing.T) {
	tok := benchToken()
	frame := EncodeTokenRing(3, tok)
	var env Envelope
	if err := DecodeViewInto(&env, frame); err != nil { // warm the scratch capacity
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeViewInto(&env, frame); err != nil {
			t.Fatal(err)
		}
		if len(env.Token.Msgs) != len(tok.Msgs) {
			t.Fatal("short decode")
		}
	})
	if allocs > 1 {
		t.Fatalf("decode allocates %.1f/op, want <=1", allocs)
	}
}

func BenchmarkAppendTokenRing(b *testing.B) {
	tok := benchToken()
	const ring RingID = 3
	buf := GetBufSize(EncodedTokenSize(ring, tok))
	defer buf.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AppendTokenRing(buf.B[:0], ring, tok)
	}
}

func BenchmarkDecodeViewInto(b *testing.B) {
	frame := EncodeTokenRing(3, benchToken())
	var env Envelope
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := DecodeViewInto(&env, frame); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeCopy is the allocating baseline BenchmarkDecodeViewInto is
// measured against.
func BenchmarkDecodeCopy(b *testing.B) {
	frame := EncodeTokenRing(3, benchToken())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}
