package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Codec format: every session message is
//
//	byte 0      version (currently 2)
//	byte 1      Kind
//	bytes 2-5   RingID (version 2 only, little-endian uint32)
//	bytes ..    kind-specific body, little-endian fixed-width integers,
//	            byte slices length-prefixed with uint32
//
// The format is versioned so a rolling-upgraded cluster can reject frames
// it does not understand instead of misparsing them. Version 1 predates the
// sharded multi-ring runtime and has no RingID field; such frames decode as
// ring 0.
//
// Rolling-upgrade interop is BIDIRECTIONAL on ring 0 and one-way
// elsewhere: ring-0 frames are emitted in the version-1 format (a
// version-1 binary must keep decoding them, or a mixed cluster would
// silently destroy the token — the transport acks a frame before the
// session layer decodes it, so the sender would believe the pass
// succeeded while the old member drops it). Frames for any other ring are
// emitted as version 2 with an explicit RingID; version-1 members cannot
// decode those, which is harmless because a version-1 binary cannot host
// extra rings in the first place. Decode accepts both versions for every
// ring, so version-2 ring-0 frames (from a future emitter) also work.

const (
	// VersionSingle is the legacy single-ring format: no RingID field,
	// ring 0 implied. Still emitted for ring-0 frames (see above).
	VersionSingle = 1
	// VersionMulti is the current format: the frame carries the RingID
	// of the ring it belongs to.
	VersionMulti = 2
)

// Version is the wire format version emitted for non-zero rings.
const Version = VersionMulti

// Limits protect against corrupt or hostile frames.
const (
	// MaxMembers bounds the membership list in a token.
	MaxMembers = 1 << 12
	// MaxMessages bounds piggybacked messages per token.
	MaxMessages = 1 << 16
	// MaxPayload bounds one multicast payload.
	MaxPayload = 1 << 24
)

// Decode errors.
var (
	ErrTruncated  = errors.New("wire: truncated message")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadKind    = errors.New("wire: unknown message kind")
	ErrTooLarge   = errors.New("wire: field exceeds limit")
	ErrTrailing   = errors.New("wire: trailing bytes after message")
)

// Envelope is a decoded session message: exactly one of the pointer fields
// is non-nil, matching Kind. Ring is the ring the frame belongs to; version-1
// frames always decode with Ring 0.
type Envelope struct {
	Kind     Kind
	Ring     RingID
	Token    *Token
	M911     *Msg911
	M911R    *Msg911Reply
	Bodyodor *Bodyodor
	Forward  *Forward
}

// header appends the frame header: version 1 for ring 0 (rolling-upgrade
// interop with single-ring members), version 2 with the RingID otherwise.
func header(b []byte, ring RingID, kind Kind) []byte {
	if ring == Ring0 {
		return append(b, VersionSingle, byte(kind))
	}
	b = append(b, VersionMulti, byte(kind))
	return appendU32(b, uint32(ring))
}

// headerLen is the encoded size of the version-2 header (the version-1
// header is 2 bytes); encoders pre-size with the larger one.
const headerLen = 6

// EncodeToken serializes a TOKEN message for ring 0.
func EncodeToken(t *Token) []byte { return EncodeTokenRing(Ring0, t) }

// EncodeTokenRing serializes a TOKEN message for the given ring.
func EncodeTokenRing(ring RingID, t *Token) []byte {
	// Pre-size: header + fixed fields + members + messages.
	n := headerLen + 8 + 8 + 1 + 4 + 4*len(t.Members) + 4
	for _, m := range t.Msgs {
		n += msgEncodedSize(&m)
	}
	b := make([]byte, 0, n)
	b = header(b, ring, KindToken)
	b = appendU64(b, t.Epoch)
	b = appendU64(b, t.Seq)
	b = append(b, boolByte(t.TBM))
	b = appendU32(b, uint32(len(t.Members)))
	for _, m := range t.Members {
		b = appendU32(b, uint32(m))
	}
	b = appendU32(b, uint32(len(t.Msgs)))
	for i := range t.Msgs {
		b = appendMessage(b, &t.Msgs[i])
	}
	return b
}

// Encode911 serializes a 911 request for ring 0.
func Encode911(m *Msg911) []byte { return Encode911Ring(Ring0, m) }

// Encode911Ring serializes a 911 request for the given ring.
func Encode911Ring(ring RingID, m *Msg911) []byte {
	b := make([]byte, 0, headerLen+4+8+8+8)
	b = header(b, ring, Kind911)
	b = appendU32(b, uint32(m.From))
	b = appendU64(b, m.Epoch)
	b = appendU64(b, m.Seq)
	b = appendU64(b, m.ReqID)
	return b
}

// Encode911Reply serializes a 911 reply for ring 0.
func Encode911Reply(m *Msg911Reply) []byte { return Encode911ReplyRing(Ring0, m) }

// Encode911ReplyRing serializes a 911 reply for the given ring.
func Encode911ReplyRing(ring RingID, m *Msg911Reply) []byte {
	b := make([]byte, 0, headerLen+4+8+2+8+8)
	b = header(b, ring, Kind911Reply)
	b = appendU32(b, uint32(m.From))
	b = appendU64(b, m.ReqID)
	b = append(b, boolByte(m.Grant), boolByte(m.JoinPending))
	b = appendU64(b, m.Epoch)
	b = appendU64(b, m.Seq)
	return b
}

// EncodeBodyodor serializes a discovery beacon for ring 0.
func EncodeBodyodor(m *Bodyodor) []byte { return EncodeBodyodorRing(Ring0, m) }

// EncodeBodyodorRing serializes a discovery beacon for the given ring.
func EncodeBodyodorRing(ring RingID, m *Bodyodor) []byte {
	b := make([]byte, 0, headerLen+4+4+8)
	b = header(b, ring, KindBodyodor)
	b = appendU32(b, uint32(m.From))
	b = appendU32(b, uint32(m.GroupID))
	b = appendU64(b, m.Epoch)
	return b
}

// EncodeForward serializes an open-group forward for ring 0.
func EncodeForward(m *Forward) []byte { return EncodeForwardRing(Ring0, m) }

// EncodeForwardRing serializes an open-group forward for the given ring.
func EncodeForwardRing(ring RingID, m *Forward) []byte {
	b := make([]byte, 0, headerLen+4+1+4+len(m.Payload))
	b = header(b, ring, KindForward)
	b = appendU32(b, uint32(m.From))
	b = append(b, boolByte(m.Safe))
	b = appendBytes(b, m.Payload)
	return b
}

// PeekRing extracts the RingID of an encoded frame without decoding the
// body. It is the transport demultiplexer's routing key: version-1 frames
// report ring 0, version-2 frames report their RingID field.
func PeekRing(b []byte) (RingID, error) {
	if len(b) < 2 {
		return Ring0, ErrTruncated
	}
	switch b[0] {
	case VersionSingle:
		return Ring0, nil
	case VersionMulti:
		if len(b) < headerLen {
			return Ring0, ErrTruncated
		}
		return RingID(binary.LittleEndian.Uint32(b[2:])), nil
	default:
		return Ring0, fmt.Errorf("%w: got %d", ErrBadVersion, b[0])
	}
}

// Decode parses a session message. It validates the version, kind, bounds
// and exact length. Both the current version-2 format and the legacy
// version-1 (single-ring) format are accepted; version-1 frames decode
// with Ring 0.
func Decode(b []byte) (*Envelope, error) {
	if len(b) < 2 {
		return nil, ErrTruncated
	}
	kind := Kind(b[1])
	r := reader{buf: b[2:]}
	env := &Envelope{Kind: kind}
	switch b[0] {
	case VersionSingle:
		// Legacy single-ring frame: no RingID field, ring 0 implied.
	case VersionMulti:
		ring, err := r.u32()
		if err != nil {
			return nil, err
		}
		env.Ring = RingID(ring)
	default:
		return nil, fmt.Errorf("%w: got %d want %d or %d", ErrBadVersion, b[0], VersionSingle, VersionMulti)
	}
	var err error
	switch kind {
	case KindToken:
		env.Token, err = decodeToken(&r)
	case Kind911:
		env.M911, err = decode911(&r)
	case Kind911Reply:
		env.M911R, err = decode911Reply(&r)
	case KindBodyodor:
		env.Bodyodor, err = decodeBodyodor(&r)
	case KindForward:
		env.Forward, err = decodeForward(&r)
	default:
		return nil, fmt.Errorf("%w: %d", ErrBadKind, uint8(kind))
	}
	if err != nil {
		return nil, err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf))
	}
	return env, nil
}

func decodeToken(r *reader) (*Token, error) {
	t := &Token{}
	var err error
	if t.Epoch, err = r.u64(); err != nil {
		return nil, err
	}
	if t.Seq, err = r.u64(); err != nil {
		return nil, err
	}
	tbm, err := r.u8()
	if err != nil {
		return nil, err
	}
	t.TBM = tbm != 0
	nm, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nm > MaxMembers {
		return nil, fmt.Errorf("%w: %d members", ErrTooLarge, nm)
	}
	t.Members = make([]NodeID, nm)
	for i := range t.Members {
		v, err := r.u32()
		if err != nil {
			return nil, err
		}
		t.Members[i] = NodeID(v)
	}
	nmsg, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nmsg > MaxMessages {
		return nil, fmt.Errorf("%w: %d messages", ErrTooLarge, nmsg)
	}
	t.Msgs = make([]Message, nmsg)
	for i := range t.Msgs {
		if err := decodeMessage(r, &t.Msgs[i]); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func decode911(r *reader) (*Msg911, error) {
	m := &Msg911{}
	from, err := r.u32()
	if err != nil {
		return nil, err
	}
	m.From = NodeID(from)
	if m.Epoch, err = r.u64(); err != nil {
		return nil, err
	}
	if m.Seq, err = r.u64(); err != nil {
		return nil, err
	}
	if m.ReqID, err = r.u64(); err != nil {
		return nil, err
	}
	return m, nil
}

func decode911Reply(r *reader) (*Msg911Reply, error) {
	m := &Msg911Reply{}
	from, err := r.u32()
	if err != nil {
		return nil, err
	}
	m.From = NodeID(from)
	if m.ReqID, err = r.u64(); err != nil {
		return nil, err
	}
	g, err := r.u8()
	if err != nil {
		return nil, err
	}
	jp, err := r.u8()
	if err != nil {
		return nil, err
	}
	m.Grant, m.JoinPending = g != 0, jp != 0
	if m.Epoch, err = r.u64(); err != nil {
		return nil, err
	}
	if m.Seq, err = r.u64(); err != nil {
		return nil, err
	}
	return m, nil
}

func decodeBodyodor(r *reader) (*Bodyodor, error) {
	m := &Bodyodor{}
	from, err := r.u32()
	if err != nil {
		return nil, err
	}
	gid, err := r.u32()
	if err != nil {
		return nil, err
	}
	m.From, m.GroupID = NodeID(from), NodeID(gid)
	if m.Epoch, err = r.u64(); err != nil {
		return nil, err
	}
	return m, nil
}

func decodeForward(r *reader) (*Forward, error) {
	m := &Forward{}
	from, err := r.u32()
	if err != nil {
		return nil, err
	}
	m.From = NodeID(from)
	safe, err := r.u8()
	if err != nil {
		return nil, err
	}
	m.Safe = safe != 0
	if m.Payload, err = r.bytes(); err != nil {
		return nil, err
	}
	return m, nil
}

func msgEncodedSize(m *Message) int {
	return 4 + 8 + 1 + 4 + 1 + 1 + 2 + 4 + len(m.Payload)
}

func appendMessage(b []byte, m *Message) []byte {
	b = appendU32(b, uint32(m.Origin))
	b = appendU64(b, m.Seq)
	b = append(b, byte(m.Sys))
	b = appendU32(b, uint32(m.Subject))
	b = append(b, boolByte(m.Safe), byte(m.Phase))
	b = appendU16(b, m.Visited)
	b = appendBytes(b, m.Payload)
	return b
}

func decodeMessage(r *reader, m *Message) error {
	origin, err := r.u32()
	if err != nil {
		return err
	}
	m.Origin = NodeID(origin)
	if m.Seq, err = r.u64(); err != nil {
		return err
	}
	sys, err := r.u8()
	if err != nil {
		return err
	}
	m.Sys = SysKind(sys)
	subject, err := r.u32()
	if err != nil {
		return err
	}
	m.Subject = NodeID(subject)
	safe, err := r.u8()
	if err != nil {
		return err
	}
	m.Safe = safe != 0
	phase, err := r.u8()
	if err != nil {
		return err
	}
	m.Phase = Phase(phase)
	if m.Visited, err = r.u16(); err != nil {
		return err
	}
	if m.Payload, err = r.bytes(); err != nil {
		return err
	}
	return nil
}

// --- primitive append/read helpers ---

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

type reader struct{ buf []byte }

func (r *reader) u8() (byte, error) {
	if len(r.buf) < 1 {
		return 0, ErrTruncated
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if len(r.buf) < 2 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint16(r.buf)
	r.buf = r.buf[2:]
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if len(r.buf) < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > MaxPayload {
		return nil, fmt.Errorf("%w: %d byte payload", ErrTooLarge, n)
	}
	if uint32(len(r.buf)) < n {
		return nil, ErrTruncated
	}
	v := append([]byte(nil), r.buf[:n]...)
	r.buf = r.buf[n:]
	return v, nil
}
