package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Codec format: every session message is
//
//	byte 0      version (currently 2)
//	byte 1      Kind
//	bytes 2-5   RingID (version 2 only, little-endian uint32)
//	bytes ..    kind-specific body, little-endian fixed-width integers,
//	            byte slices length-prefixed with uint32
//
// The format is versioned so a rolling-upgraded cluster can reject frames
// it does not understand instead of misparsing them. Version 1 predates the
// sharded multi-ring runtime and has no RingID field; such frames decode as
// ring 0.
//
// Rolling-upgrade interop is BIDIRECTIONAL on ring 0 and one-way
// elsewhere: ring-0 frames are emitted in the version-1 format (a
// version-1 binary must keep decoding them, or a mixed cluster would
// silently destroy the token — the transport acks a frame before the
// session layer decodes it, so the sender would believe the pass
// succeeded while the old member drops it). Frames for any other ring are
// emitted as version 2 with an explicit RingID; version-1 members cannot
// decode those, which is harmless because a version-1 binary cannot host
// extra rings in the first place. Decode accepts both versions for every
// ring, so version-2 ring-0 frames (from a future emitter) also work.

const (
	// VersionSingle is the legacy single-ring format: no RingID field,
	// ring 0 implied. Still emitted for ring-0 frames (see above).
	VersionSingle = 1
	// VersionMulti is the current format: the frame carries the RingID
	// of the ring it belongs to.
	VersionMulti = 2
	// VersionChunk marks one chunk of an oversized frame split across
	// datagrams (see chunk.go). Version-1/2 decoders reject it cleanly
	// with ErrBadVersion, never misparsing the chunk body.
	VersionChunk = 3
)

// Version is the wire format version emitted for non-zero rings.
const Version = VersionMulti

// Limits protect against corrupt or hostile frames.
const (
	// MaxMembers bounds the membership list in a token.
	MaxMembers = 1 << 12
	// MaxMessages bounds piggybacked messages per token.
	MaxMessages = 1 << 16
	// MaxPayload bounds one multicast payload.
	MaxPayload = 1 << 24
)

// Decode errors.
var (
	ErrTruncated  = errors.New("wire: truncated message")
	ErrBadVersion = errors.New("wire: unsupported version")
	ErrBadKind    = errors.New("wire: unknown message kind")
	ErrTooLarge   = errors.New("wire: field exceeds limit")
	ErrTrailing   = errors.New("wire: trailing bytes after message")
)

// Envelope is a decoded session message: exactly one of the pointer fields
// is non-nil, matching Kind. Ring is the ring the frame belongs to; version-1
// frames always decode with Ring 0.
//
// An Envelope decoded with DecodeViewInto owns reusable scratch storage:
// the pointer fields then point into the envelope itself and are
// invalidated by the next DecodeViewInto on the same envelope.
type Envelope struct {
	Kind     Kind
	Ring     RingID
	Token    *Token
	M911     *Msg911
	M911R    *Msg911Reply
	Bodyodor *Bodyodor
	Forward  *Forward

	// scr is the reusable decode target; see DecodeViewInto.
	scr struct {
		tok   Token
		m911  Msg911
		m911r Msg911Reply
		bod   Bodyodor
		fwd   Forward
	}
}

// header appends the frame header: version 1 for ring 0 (rolling-upgrade
// interop with single-ring members), version 2 with the RingID otherwise.
func header(b []byte, ring RingID, kind Kind) []byte {
	if ring == Ring0 {
		return append(b, VersionSingle, byte(kind))
	}
	b = append(b, VersionMulti, byte(kind))
	return appendU32(b, uint32(ring))
}

// headerLen is the encoded size of the version-2 header (the version-1
// header is 2 bytes); encoders pre-size with the larger one.
const headerLen = 6

// EncodeToken serializes a TOKEN message for ring 0.
func EncodeToken(t *Token) []byte { return EncodeTokenRing(Ring0, t) }

// EncodedTokenSize returns the exact encoded size of a TOKEN frame, so
// callers can draw a right-sized pooled buffer before AppendTokenRing.
func EncodedTokenSize(ring RingID, t *Token) int {
	n := 2 + 8 + 8 + 1 + 4 + 4*len(t.Members) + 4
	if ring != Ring0 {
		n += 4 // version-2 RingID field
	}
	for i := range t.Msgs {
		n += msgEncodedSize(&t.Msgs[i])
	}
	return n
}

// EncodeTokenRing serializes a TOKEN message for the given ring.
func EncodeTokenRing(ring RingID, t *Token) []byte {
	return AppendTokenRing(make([]byte, 0, EncodedTokenSize(ring, t)), ring, t)
}

// AppendTokenRing appends the encoded TOKEN frame to b and returns the
// extended slice. With a pooled buffer sized by EncodedTokenSize it
// performs no allocation.
func AppendTokenRing(b []byte, ring RingID, t *Token) []byte {
	b = header(b, ring, KindToken)
	b = appendU64(b, t.Epoch)
	b = appendU64(b, t.Seq)
	b = append(b, boolByte(t.TBM))
	b = appendU32(b, uint32(len(t.Members)))
	for _, m := range t.Members {
		b = appendU32(b, uint32(m))
	}
	b = appendU32(b, uint32(len(t.Msgs)))
	for i := range t.Msgs {
		b = appendMessage(b, &t.Msgs[i])
	}
	return b
}

// Encode911 serializes a 911 request for ring 0.
func Encode911(m *Msg911) []byte { return Encode911Ring(Ring0, m) }

// Encode911Ring serializes a 911 request for the given ring.
func Encode911Ring(ring RingID, m *Msg911) []byte {
	return Append911Ring(make([]byte, 0, headerLen+4+8+8+8), ring, m)
}

// Append911Ring appends the encoded 911 request to b.
func Append911Ring(b []byte, ring RingID, m *Msg911) []byte {
	b = header(b, ring, Kind911)
	b = appendU32(b, uint32(m.From))
	b = appendU64(b, m.Epoch)
	b = appendU64(b, m.Seq)
	b = appendU64(b, m.ReqID)
	return b
}

// Encode911Reply serializes a 911 reply for ring 0.
func Encode911Reply(m *Msg911Reply) []byte { return Encode911ReplyRing(Ring0, m) }

// Encode911ReplyRing serializes a 911 reply for the given ring.
func Encode911ReplyRing(ring RingID, m *Msg911Reply) []byte {
	return Append911ReplyRing(make([]byte, 0, headerLen+4+8+2+8+8), ring, m)
}

// Append911ReplyRing appends the encoded 911 reply to b.
func Append911ReplyRing(b []byte, ring RingID, m *Msg911Reply) []byte {
	b = header(b, ring, Kind911Reply)
	b = appendU32(b, uint32(m.From))
	b = appendU64(b, m.ReqID)
	b = append(b, boolByte(m.Grant), boolByte(m.JoinPending))
	b = appendU64(b, m.Epoch)
	b = appendU64(b, m.Seq)
	return b
}

// EncodeBodyodor serializes a discovery beacon for ring 0.
func EncodeBodyodor(m *Bodyodor) []byte { return EncodeBodyodorRing(Ring0, m) }

// EncodeBodyodorRing serializes a discovery beacon for the given ring.
func EncodeBodyodorRing(ring RingID, m *Bodyodor) []byte {
	return AppendBodyodorRing(make([]byte, 0, headerLen+4+4+8), ring, m)
}

// AppendBodyodorRing appends the encoded discovery beacon to b.
func AppendBodyodorRing(b []byte, ring RingID, m *Bodyodor) []byte {
	b = header(b, ring, KindBodyodor)
	b = appendU32(b, uint32(m.From))
	b = appendU32(b, uint32(m.GroupID))
	b = appendU64(b, m.Epoch)
	return b
}

// EncodeForward serializes an open-group forward for ring 0.
func EncodeForward(m *Forward) []byte { return EncodeForwardRing(Ring0, m) }

// EncodeForwardRing serializes an open-group forward for the given ring.
func EncodeForwardRing(ring RingID, m *Forward) []byte {
	return AppendForwardRing(make([]byte, 0, headerLen+4+1+4+len(m.Payload)), ring, m)
}

// AppendForwardRing appends the encoded open-group forward to b.
func AppendForwardRing(b []byte, ring RingID, m *Forward) []byte {
	b = header(b, ring, KindForward)
	b = appendU32(b, uint32(m.From))
	b = append(b, boolByte(m.Safe))
	b = appendBytes(b, m.Payload)
	return b
}

// PeekRing extracts the RingID of an encoded frame without decoding the
// body. It is the transport demultiplexer's routing key: version-1 frames
// report ring 0; version-2 and version-3 (chunk) frames both carry the
// RingID at bytes 2-5, so chunks route to the same ring as the frame they
// reassemble into.
func PeekRing(b []byte) (RingID, error) {
	if len(b) < 2 {
		return Ring0, ErrTruncated
	}
	switch b[0] {
	case VersionSingle:
		return Ring0, nil
	case VersionMulti, VersionChunk:
		if len(b) < headerLen {
			return Ring0, ErrTruncated
		}
		return RingID(binary.LittleEndian.Uint32(b[2:])), nil
	default:
		return Ring0, fmt.Errorf("%w: got %d", ErrBadVersion, b[0])
	}
}

// Decode parses a session message. It validates the version, kind, bounds
// and exact length. Both the current version-2 format and the legacy
// version-1 (single-ring) format are accepted; version-1 frames decode
// with Ring 0. Chunked (version-3) frames are rejected here: reassemble
// them with an Assembler first.
//
// Decode copies every variable-length field out of b, so the result is
// safe to retain after b is reused. For the hot path, DecodeView avoids
// those copies.
func Decode(b []byte) (*Envelope, error) {
	env := &Envelope{}
	if err := decodeEnv(env, b, false); err != nil {
		return nil, err
	}
	return env, nil
}

// DecodeView parses like Decode but returns payload views that alias b:
// Token message payloads and Forward payloads point into the decoded
// frame instead of being copied. The caller owns the aliasing contract —
// if b is a pooled receive buffer, it must stay retained for as long as
// any view is reachable, and views must never be used after its Release.
// Fixed-width fields are always copied out, so the non-payload parts of
// the envelope are alias-free.
func DecodeView(b []byte) (*Envelope, error) {
	env := &Envelope{}
	if err := decodeEnv(env, b, true); err != nil {
		return nil, err
	}
	return env, nil
}

// DecodeViewInto is DecodeView reusing env's internal scratch storage:
// steady state it allocates nothing. The envelope's pointer fields and
// every view they contain are invalidated by the next DecodeViewInto on
// the same envelope; callers that keep a decoded message must copy it out
// first (the fixed-width structs copy by assignment).
func DecodeViewInto(env *Envelope, b []byte) error {
	return decodeEnv(env, b, true)
}

func decodeEnv(env *Envelope, b []byte, view bool) error {
	env.Token, env.M911, env.M911R, env.Bodyodor, env.Forward = nil, nil, nil, nil, nil
	env.Ring = Ring0
	if len(b) < 2 {
		return ErrTruncated
	}
	kind := Kind(b[1])
	env.Kind = kind
	r := reader{buf: b[2:], view: view}
	switch b[0] {
	case VersionSingle:
		// Legacy single-ring frame: no RingID field, ring 0 implied.
	case VersionMulti:
		ring, err := r.u32()
		if err != nil {
			return err
		}
		env.Ring = RingID(ring)
	case VersionChunk:
		return fmt.Errorf("%w: chunked frame needs reassembly", ErrBadVersion)
	default:
		return fmt.Errorf("%w: got %d want %d or %d", ErrBadVersion, b[0], VersionSingle, VersionMulti)
	}
	var err error
	switch kind {
	case KindToken:
		err = decodeToken(&r, &env.scr.tok)
		env.Token = &env.scr.tok
	case Kind911:
		err = decode911(&r, &env.scr.m911)
		env.M911 = &env.scr.m911
	case Kind911Reply:
		err = decode911Reply(&r, &env.scr.m911r)
		env.M911R = &env.scr.m911r
	case KindBodyodor:
		err = decodeBodyodor(&r, &env.scr.bod)
		env.Bodyodor = &env.scr.bod
	case KindForward:
		err = decodeForward(&r, &env.scr.fwd)
		env.Forward = &env.scr.fwd
	default:
		return fmt.Errorf("%w: %d", ErrBadKind, uint8(kind))
	}
	if err != nil {
		env.Token, env.M911, env.M911R, env.Bodyodor, env.Forward = nil, nil, nil, nil, nil
		return err
	}
	if len(r.buf) != 0 {
		env.Token, env.M911, env.M911R, env.Bodyodor, env.Forward = nil, nil, nil, nil, nil
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf))
	}
	return nil
}

func decodeToken(r *reader, t *Token) error {
	t.Members = t.Members[:0]
	t.Msgs = t.Msgs[:0]
	var err error
	if t.Epoch, err = r.u64(); err != nil {
		return err
	}
	if t.Seq, err = r.u64(); err != nil {
		return err
	}
	tbm, err := r.u8()
	if err != nil {
		return err
	}
	t.TBM = tbm != 0
	nm, err := r.u32()
	if err != nil {
		return err
	}
	if nm > MaxMembers {
		return fmt.Errorf("%w: %d members", ErrTooLarge, nm)
	}
	for i := 0; i < int(nm); i++ {
		v, err := r.u32()
		if err != nil {
			return err
		}
		t.Members = append(t.Members, NodeID(v))
	}
	nmsg, err := r.u32()
	if err != nil {
		return err
	}
	if nmsg > MaxMessages {
		return fmt.Errorf("%w: %d messages", ErrTooLarge, nmsg)
	}
	for i := 0; i < int(nmsg); i++ {
		var m Message
		if err := decodeMessage(r, &m); err != nil {
			return err
		}
		t.Msgs = append(t.Msgs, m)
	}
	return nil
}

func decode911(r *reader, m *Msg911) error {
	from, err := r.u32()
	if err != nil {
		return err
	}
	m.From = NodeID(from)
	if m.Epoch, err = r.u64(); err != nil {
		return err
	}
	if m.Seq, err = r.u64(); err != nil {
		return err
	}
	if m.ReqID, err = r.u64(); err != nil {
		return err
	}
	return nil
}

func decode911Reply(r *reader, m *Msg911Reply) error {
	from, err := r.u32()
	if err != nil {
		return err
	}
	m.From = NodeID(from)
	if m.ReqID, err = r.u64(); err != nil {
		return err
	}
	g, err := r.u8()
	if err != nil {
		return err
	}
	jp, err := r.u8()
	if err != nil {
		return err
	}
	m.Grant, m.JoinPending = g != 0, jp != 0
	if m.Epoch, err = r.u64(); err != nil {
		return err
	}
	if m.Seq, err = r.u64(); err != nil {
		return err
	}
	return nil
}

func decodeBodyodor(r *reader, m *Bodyodor) error {
	from, err := r.u32()
	if err != nil {
		return err
	}
	gid, err := r.u32()
	if err != nil {
		return err
	}
	m.From, m.GroupID = NodeID(from), NodeID(gid)
	if m.Epoch, err = r.u64(); err != nil {
		return err
	}
	return nil
}

func decodeForward(r *reader, m *Forward) error {
	from, err := r.u32()
	if err != nil {
		return err
	}
	m.From = NodeID(from)
	safe, err := r.u8()
	if err != nil {
		return err
	}
	m.Safe = safe != 0
	if m.Payload, err = r.bytes(); err != nil {
		return err
	}
	return nil
}

func msgEncodedSize(m *Message) int {
	return 4 + 8 + 1 + 4 + 1 + 1 + 2 + 4 + len(m.Payload)
}

func appendMessage(b []byte, m *Message) []byte {
	b = appendU32(b, uint32(m.Origin))
	b = appendU64(b, m.Seq)
	b = append(b, byte(m.Sys))
	b = appendU32(b, uint32(m.Subject))
	b = append(b, boolByte(m.Safe), byte(m.Phase))
	b = appendU16(b, m.Visited)
	b = appendBytes(b, m.Payload)
	return b
}

func decodeMessage(r *reader, m *Message) error {
	origin, err := r.u32()
	if err != nil {
		return err
	}
	m.Origin = NodeID(origin)
	if m.Seq, err = r.u64(); err != nil {
		return err
	}
	sys, err := r.u8()
	if err != nil {
		return err
	}
	m.Sys = SysKind(sys)
	subject, err := r.u32()
	if err != nil {
		return err
	}
	m.Subject = NodeID(subject)
	safe, err := r.u8()
	if err != nil {
		return err
	}
	m.Safe = safe != 0
	phase, err := r.u8()
	if err != nil {
		return err
	}
	m.Phase = Phase(phase)
	if m.Visited, err = r.u16(); err != nil {
		return err
	}
	if m.Payload, err = r.bytes(); err != nil {
		return err
	}
	return nil
}

// --- primitive append/read helpers ---

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendBytes(b, p []byte) []byte {
	b = appendU32(b, uint32(len(p)))
	return append(b, p...)
}

// reader consumes a frame body. With view set, bytes() returns subslices
// aliasing the input frame (zero-copy); otherwise it copies, so decoded
// payloads survive buffer reuse.
type reader struct {
	buf  []byte
	view bool
}

func (r *reader) u8() (byte, error) {
	if len(r.buf) < 1 {
		return 0, ErrTruncated
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if len(r.buf) < 2 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint16(r.buf)
	r.buf = r.buf[2:]
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if len(r.buf) < 4 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if len(r.buf) < 8 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > MaxPayload {
		return nil, fmt.Errorf("%w: %d byte payload", ErrTooLarge, n)
	}
	if uint32(len(r.buf)) < n {
		return nil, ErrTruncated
	}
	var v []byte
	if r.view {
		v = r.buf[:n:n]
	} else {
		v = append([]byte(nil), r.buf[:n]...)
	}
	r.buf = r.buf[n:]
	return v, nil
}
