package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenRoundTrip(t *testing.T) {
	tok := &Token{
		Epoch:   3,
		Seq:     1234,
		TBM:     true,
		Members: []NodeID{1, 5, 9},
		Msgs: []Message{
			{Origin: 1, Seq: 7, Sys: SysApp, Safe: true, Phase: PhaseRelease, Visited: 2, Payload: []byte("hello")},
			{Origin: 5, Seq: 1, Sys: SysNodeRemoved, Subject: 9, Visited: 1, Payload: []byte{}},
		},
	}
	env, err := Decode(EncodeToken(tok))
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != KindToken || env.Token == nil {
		t.Fatalf("bad envelope: %+v", env)
	}
	got := env.Token
	if got.Epoch != tok.Epoch || got.Seq != tok.Seq || got.TBM != tok.TBM {
		t.Fatalf("header mismatch: %+v vs %+v", got, tok)
	}
	if !reflect.DeepEqual(got.Members, tok.Members) {
		t.Fatalf("members = %v, want %v", got.Members, tok.Members)
	}
	if len(got.Msgs) != 2 {
		t.Fatalf("msgs = %d, want 2", len(got.Msgs))
	}
	m := got.Msgs[0]
	if m.Origin != 1 || m.Seq != 7 || !m.Safe || m.Phase != PhaseRelease ||
		m.Visited != 2 || !bytes.Equal(m.Payload, []byte("hello")) {
		t.Fatalf("msg[0] = %+v", m)
	}
	if got.Msgs[1].Sys != SysNodeRemoved || got.Msgs[1].Subject != 9 {
		t.Fatalf("msg[1] = %+v", got.Msgs[1])
	}
}

func TestEmptyTokenRoundTrip(t *testing.T) {
	env, err := Decode(EncodeToken(&Token{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Token.Members) != 0 || len(env.Token.Msgs) != 0 {
		t.Fatalf("empty token decoded to %+v", env.Token)
	}
}

func Test911RoundTrip(t *testing.T) {
	in := &Msg911{From: 42, Epoch: 2, Seq: 99, ReqID: 7}
	env, err := Decode(Encode911(in))
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != Kind911 || !reflect.DeepEqual(env.M911, in) {
		t.Fatalf("decoded %+v, want %+v", env.M911, in)
	}
}

func Test911ReplyRoundTrip(t *testing.T) {
	for _, in := range []*Msg911Reply{
		{From: 1, ReqID: 5, Grant: true, Epoch: 1, Seq: 10},
		{From: 2, ReqID: 6, Grant: false, JoinPending: true, Epoch: 3, Seq: 0},
	} {
		env, err := Decode(Encode911Reply(in))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(env.M911R, in) {
			t.Fatalf("decoded %+v, want %+v", env.M911R, in)
		}
	}
}

func TestBodyodorRoundTrip(t *testing.T) {
	in := &Bodyodor{From: 9, GroupID: 3, Epoch: 4}
	env, err := Decode(EncodeBodyodor(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(env.Bodyodor, in) {
		t.Fatalf("decoded %+v, want %+v", env.Bodyodor, in)
	}
}

func TestForwardRoundTrip(t *testing.T) {
	in := &Forward{From: 11, Safe: true, Payload: []byte("outside message")}
	env, err := Decode(EncodeForward(in))
	if err != nil {
		t.Fatal(err)
	}
	if env.Forward.From != 11 || !env.Forward.Safe ||
		!bytes.Equal(env.Forward.Payload, in.Payload) {
		t.Fatalf("decoded %+v, want %+v", env.Forward, in)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"one byte", []byte{Version}},
		{"bad version", []byte{99, byte(KindToken)}},
		{"bad kind", []byte{Version, 0}},
		{"unknown kind", []byte{Version, 200}},
		{"truncated token", []byte{Version, byte(KindToken), 1, 2, 3}},
		{"truncated 911", []byte{Version, byte(Kind911), 1}},
	}
	for _, c := range cases {
		if _, err := Decode(c.in); err == nil {
			t.Errorf("%s: Decode succeeded, want error", c.name)
		}
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	b := Encode911(&Msg911{From: 1})
	b = append(b, 0xFF)
	if _, err := Decode(b); err == nil {
		t.Fatal("Decode with trailing bytes succeeded")
	}
}

func TestDecodeOversizedMemberCount(t *testing.T) {
	// Hand-craft a token frame claiming 2^20 members.
	b := []byte{Version, byte(KindToken)}
	b = appendU64(b, 1) // epoch
	b = appendU64(b, 1) // seq
	b = append(b, 0)    // tbm
	b = appendU32(b, MaxMembers+1)
	if _, err := Decode(b); err == nil {
		t.Fatal("Decode accepted oversized member count")
	}
}

func TestDecodeOversizedPayload(t *testing.T) {
	b := []byte{Version, byte(KindForward)}
	b = appendU32(b, 1)            // from
	b = append(b, 0)               // safe
	b = appendU32(b, MaxPayload+1) // claimed payload length
	b = append(b, make([]byte, 8)...)
	if _, err := Decode(b); err == nil {
		t.Fatal("Decode accepted oversized payload")
	}
}

// TestTokenRoundTripProperty drives random tokens through the codec.
func TestTokenRoundTripProperty(t *testing.T) {
	f := func(epoch, seq uint64, tbm bool, memberSeed int64, msgSeed int64) bool {
		rng := rand.New(rand.NewSource(memberSeed))
		tok := &Token{Epoch: epoch, Seq: seq, TBM: tbm}
		for i := 0; i < rng.Intn(8); i++ {
			tok.Members = append(tok.Members, NodeID(rng.Uint32()))
		}
		mrng := rand.New(rand.NewSource(msgSeed))
		for i := 0; i < mrng.Intn(5); i++ {
			p := make([]byte, mrng.Intn(64))
			mrng.Read(p)
			tok.Msgs = append(tok.Msgs, Message{
				Origin:  NodeID(mrng.Uint32()),
				Seq:     mrng.Uint64(),
				Sys:     SysKind(mrng.Intn(4)),
				Subject: NodeID(mrng.Uint32()),
				Safe:    mrng.Intn(2) == 0,
				Phase:   Phase(mrng.Intn(2)),
				Visited: uint16(mrng.Intn(100)),
				Payload: p,
			})
		}
		env, err := Decode(EncodeToken(tok))
		if err != nil {
			return false
		}
		got := env.Token
		if got.Epoch != tok.Epoch || got.Seq != tok.Seq || got.TBM != tok.TBM {
			return false
		}
		if len(got.Members) != len(tok.Members) || len(got.Msgs) != len(tok.Msgs) {
			return false
		}
		for i := range tok.Members {
			if got.Members[i] != tok.Members[i] {
				return false
			}
		}
		for i := range tok.Msgs {
			a, b := got.Msgs[i], tok.Msgs[i]
			if a.Origin != b.Origin || a.Seq != b.Seq || a.Sys != b.Sys ||
				a.Subject != b.Subject || a.Safe != b.Safe || a.Phase != b.Phase ||
				a.Visited != b.Visited || !bytes.Equal(a.Payload, b.Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeNeverPanics feeds random garbage to Decode; it must return an
// error or a message, never panic.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		if len(b) > 0 && rng.Intn(2) == 0 {
			b[0] = Version // exercise the per-kind decoders too
			if len(b) > 1 {
				b[1] = byte(1 + rng.Intn(5))
			}
		}
		_, _ = Decode(b) // must not panic
	}
}

// TestDecodeMutatedFrames flips bytes in valid frames; decoding must not
// panic and must either fail or produce a structurally valid message.
func TestDecodeMutatedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := EncodeToken(&Token{
		Epoch:   1,
		Seq:     5,
		Members: []NodeID{1, 2, 3},
		Msgs:    []Message{{Origin: 1, Seq: 1, Payload: []byte("xyz")}},
	})
	for i := 0; i < 2000; i++ {
		b := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
		}
		env, err := Decode(b)
		if err == nil && env.Kind == KindToken && env.Token == nil {
			t.Fatal("decoded token envelope with nil token")
		}
	}
}

func BenchmarkEncodeToken(b *testing.B) {
	tok := &Token{Epoch: 1, Seq: 100, Members: []NodeID{1, 2, 3, 4, 5, 6, 7, 8}}
	for i := 0; i < 16; i++ {
		tok.Msgs = append(tok.Msgs, Message{Origin: 1, Seq: uint64(i), Payload: make([]byte, 256)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeToken(tok)
	}
}

func BenchmarkDecodeToken(b *testing.B) {
	tok := &Token{Epoch: 1, Seq: 100, Members: []NodeID{1, 2, 3, 4, 5, 6, 7, 8}}
	for i := 0; i < 16; i++ {
		tok.Msgs = append(tok.Msgs, Message{Origin: 1, Seq: uint64(i), Payload: make([]byte, 256)})
	}
	enc := EncodeToken(tok)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
