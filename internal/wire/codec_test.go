package wire

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenRoundTrip(t *testing.T) {
	tok := &Token{
		Epoch:   3,
		Seq:     1234,
		TBM:     true,
		Members: []NodeID{1, 5, 9},
		Msgs: []Message{
			{Origin: 1, Seq: 7, Sys: SysApp, Safe: true, Phase: PhaseRelease, Visited: 2, Payload: []byte("hello")},
			{Origin: 5, Seq: 1, Sys: SysNodeRemoved, Subject: 9, Visited: 1, Payload: []byte{}},
		},
	}
	env, err := Decode(EncodeToken(tok))
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != KindToken || env.Token == nil {
		t.Fatalf("bad envelope: %+v", env)
	}
	got := env.Token
	if got.Epoch != tok.Epoch || got.Seq != tok.Seq || got.TBM != tok.TBM {
		t.Fatalf("header mismatch: %+v vs %+v", got, tok)
	}
	if !reflect.DeepEqual(got.Members, tok.Members) {
		t.Fatalf("members = %v, want %v", got.Members, tok.Members)
	}
	if len(got.Msgs) != 2 {
		t.Fatalf("msgs = %d, want 2", len(got.Msgs))
	}
	m := got.Msgs[0]
	if m.Origin != 1 || m.Seq != 7 || !m.Safe || m.Phase != PhaseRelease ||
		m.Visited != 2 || !bytes.Equal(m.Payload, []byte("hello")) {
		t.Fatalf("msg[0] = %+v", m)
	}
	if got.Msgs[1].Sys != SysNodeRemoved || got.Msgs[1].Subject != 9 {
		t.Fatalf("msg[1] = %+v", got.Msgs[1])
	}
}

func TestEmptyTokenRoundTrip(t *testing.T) {
	env, err := Decode(EncodeToken(&Token{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Token.Members) != 0 || len(env.Token.Msgs) != 0 {
		t.Fatalf("empty token decoded to %+v", env.Token)
	}
}

func Test911RoundTrip(t *testing.T) {
	in := &Msg911{From: 42, Epoch: 2, Seq: 99, ReqID: 7}
	env, err := Decode(Encode911(in))
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != Kind911 || !reflect.DeepEqual(env.M911, in) {
		t.Fatalf("decoded %+v, want %+v", env.M911, in)
	}
}

func Test911ReplyRoundTrip(t *testing.T) {
	for _, in := range []*Msg911Reply{
		{From: 1, ReqID: 5, Grant: true, Epoch: 1, Seq: 10},
		{From: 2, ReqID: 6, Grant: false, JoinPending: true, Epoch: 3, Seq: 0},
	} {
		env, err := Decode(Encode911Reply(in))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(env.M911R, in) {
			t.Fatalf("decoded %+v, want %+v", env.M911R, in)
		}
	}
}

func TestBodyodorRoundTrip(t *testing.T) {
	in := &Bodyodor{From: 9, GroupID: 3, Epoch: 4}
	env, err := Decode(EncodeBodyodor(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(env.Bodyodor, in) {
		t.Fatalf("decoded %+v, want %+v", env.Bodyodor, in)
	}
}

func TestForwardRoundTrip(t *testing.T) {
	in := &Forward{From: 11, Safe: true, Payload: []byte("outside message")}
	env, err := Decode(EncodeForward(in))
	if err != nil {
		t.Fatal(err)
	}
	if env.Forward.From != 11 || !env.Forward.Safe ||
		!bytes.Equal(env.Forward.Payload, in.Payload) {
		t.Fatalf("decoded %+v, want %+v", env.Forward, in)
	}
}

// legacyV1 rewrites a version-2 frame into the legacy version-1 format by
// dropping the RingID field. It lets the cross-version tests exercise the
// decoder against frames a not-yet-upgraded member would emit.
func legacyV1(v2 []byte) []byte {
	if len(v2) < headerLen || v2[0] != VersionMulti {
		panic("legacyV1: not a version-2 frame")
	}
	out := []byte{VersionSingle, v2[1]}
	return append(out, v2[headerLen:]...)
}

// v2Ring0 rewrites a version-1 frame into its version-2 ring-0 equivalent
// (a future emitter may stamp ring 0 explicitly; Decode must accept it).
func v2Ring0(v1 []byte) []byte {
	if len(v1) < 2 || v1[0] != VersionSingle {
		panic("v2Ring0: not a version-1 frame")
	}
	out := []byte{VersionMulti, v1[1], 0, 0, 0, 0}
	return append(out, v1[2:]...)
}

// TestCrossVersionDecode verifies the rolling-upgrade guarantees: ring-0
// frames are EMITTED in the version-1 format (so not-yet-upgraded members
// keep decoding them and the token survives a mixed cluster), and the
// decoder accepts the version-2 ring-0 form identically.
func TestCrossVersionDecode(t *testing.T) {
	frames := map[string][]byte{
		"token": EncodeToken(&Token{
			Epoch: 7, Seq: 19, Members: []NodeID{1, 2, 3},
			Msgs: []Message{{Origin: 2, Seq: 5, Safe: true, Visited: 1, Payload: []byte("m")}},
		}),
		"911":      Encode911(&Msg911{From: 4, Epoch: 1, Seq: 2, ReqID: 3}),
		"911reply": Encode911Reply(&Msg911Reply{From: 5, ReqID: 3, Grant: true, Epoch: 1, Seq: 2}),
		"bodyodor": EncodeBodyodor(&Bodyodor{From: 6, GroupID: 1, Epoch: 9}),
		"forward":  EncodeForward(&Forward{From: 7, Safe: true, Payload: []byte("fw")}),
	}
	for name, v1 := range frames {
		if v1[0] != VersionSingle {
			t.Fatalf("%s: ring-0 emitted version = %d, want %d (v1 members must keep decoding ring 0)", name, v1[0], VersionSingle)
		}
		got, err := Decode(v1)
		if err != nil {
			t.Fatalf("%s: decode v1: %v", name, err)
		}
		want, err := Decode(v2Ring0(v1))
		if err != nil {
			t.Fatalf("%s: decode v2-ring0: %v", name, err)
		}
		if got.Ring != Ring0 || want.Ring != Ring0 {
			t.Fatalf("%s: rings = %v/%v, want ring 0", name, got.Ring, want.Ring)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: v1 decoded %+v, v2-ring0 decoded %+v", name, got, want)
		}
	}
	// Non-zero rings emit version 2.
	if f := Encode911Ring(1, &Msg911{From: 4}); f[0] != VersionMulti {
		t.Fatalf("ring-1 emitted version = %d, want %d", f[0], VersionMulti)
	}
}

// TestRingIDRoundTrip verifies every kind carries a non-zero RingID through
// the version-2 codec.
func TestRingIDRoundTrip(t *testing.T) {
	const ring RingID = 3
	frames := [][]byte{
		EncodeTokenRing(ring, &Token{Epoch: 1, Seq: 2, Members: []NodeID{1}}),
		Encode911Ring(ring, &Msg911{From: 1}),
		Encode911ReplyRing(ring, &Msg911Reply{From: 1}),
		EncodeBodyodorRing(ring, &Bodyodor{From: 1}),
		EncodeForwardRing(ring, &Forward{From: 1, Payload: []byte("x")}),
	}
	for i, b := range frames {
		env, err := Decode(b)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if env.Ring != ring {
			t.Errorf("frame %d: ring = %v, want %v", i, env.Ring, ring)
		}
		peeked, err := PeekRing(b)
		if err != nil || peeked != ring {
			t.Errorf("frame %d: PeekRing = %v, %v, want %v", i, peeked, err, ring)
		}
	}
}

func TestPeekRing(t *testing.T) {
	v2 := Encode911Ring(9, &Msg911{From: 1})
	if r, err := PeekRing(v2); err != nil || r != 9 {
		t.Fatalf("PeekRing(v2) = %v, %v", r, err)
	}
	if r, err := PeekRing(legacyV1(v2)); err != nil || r != Ring0 {
		t.Fatalf("PeekRing(v1) = %v, %v", r, err)
	}
	if r, err := PeekRing(Encode911(&Msg911{From: 1})); err != nil || r != Ring0 {
		t.Fatalf("PeekRing(emitted ring-0 frame) = %v, %v", r, err)
	}
	if _, err := PeekRing(nil); err == nil {
		t.Fatal("PeekRing(nil) succeeded")
	}
	if _, err := PeekRing([]byte{VersionMulti, byte(Kind911), 1, 2}); err == nil {
		t.Fatal("PeekRing accepted a truncated v2 header")
	}
	if _, err := PeekRing([]byte{99, byte(Kind911)}); err == nil {
		t.Fatal("PeekRing accepted an unknown version")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"one byte", []byte{Version}},
		{"bad version", []byte{99, byte(KindToken)}},
		{"bad kind", []byte{Version, 0, 0, 0, 0, 0}},
		{"unknown kind", []byte{Version, 200, 0, 0, 0, 0}},
		{"truncated ring", []byte{Version, byte(KindToken), 1, 2}},
		{"truncated token", []byte{Version, byte(KindToken), 0, 0, 0, 0, 1, 2, 3}},
		{"truncated 911", []byte{Version, byte(Kind911), 0, 0, 0, 0, 1}},
		{"bad kind v1", []byte{VersionSingle, 0}},
		{"truncated token v1", []byte{VersionSingle, byte(KindToken), 1, 2, 3}},
	}
	for _, c := range cases {
		if _, err := Decode(c.in); err == nil {
			t.Errorf("%s: Decode succeeded, want error", c.name)
		}
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	b := Encode911(&Msg911{From: 1})
	b = append(b, 0xFF)
	if _, err := Decode(b); err == nil {
		t.Fatal("Decode with trailing bytes succeeded")
	}
}

func TestDecodeOversizedMemberCount(t *testing.T) {
	// Hand-craft a token frame claiming 2^20 members.
	b := []byte{Version, byte(KindToken)}
	b = appendU32(b, 0) // ring
	b = appendU64(b, 1) // epoch
	b = appendU64(b, 1) // seq
	b = append(b, 0)    // tbm
	b = appendU32(b, MaxMembers+1)
	if _, err := Decode(b); err == nil {
		t.Fatal("Decode accepted oversized member count")
	}
}

func TestDecodeOversizedPayload(t *testing.T) {
	b := []byte{Version, byte(KindForward)}
	b = appendU32(b, 0)            // ring
	b = appendU32(b, 1)            // from
	b = append(b, 0)               // safe
	b = appendU32(b, MaxPayload+1) // claimed payload length
	b = append(b, make([]byte, 8)...)
	if _, err := Decode(b); err == nil {
		t.Fatal("Decode accepted oversized payload")
	}
}

// TestTokenRoundTripProperty drives random tokens through the codec.
func TestTokenRoundTripProperty(t *testing.T) {
	f := func(epoch, seq uint64, tbm bool, memberSeed int64, msgSeed int64) bool {
		rng := rand.New(rand.NewSource(memberSeed))
		tok := &Token{Epoch: epoch, Seq: seq, TBM: tbm}
		for i := 0; i < rng.Intn(8); i++ {
			tok.Members = append(tok.Members, NodeID(rng.Uint32()))
		}
		mrng := rand.New(rand.NewSource(msgSeed))
		for i := 0; i < mrng.Intn(5); i++ {
			p := make([]byte, mrng.Intn(64))
			mrng.Read(p)
			tok.Msgs = append(tok.Msgs, Message{
				Origin:  NodeID(mrng.Uint32()),
				Seq:     mrng.Uint64(),
				Sys:     SysKind(mrng.Intn(4)),
				Subject: NodeID(mrng.Uint32()),
				Safe:    mrng.Intn(2) == 0,
				Phase:   Phase(mrng.Intn(2)),
				Visited: uint16(mrng.Intn(100)),
				Payload: p,
			})
		}
		env, err := Decode(EncodeToken(tok))
		if err != nil {
			return false
		}
		got := env.Token
		if got.Epoch != tok.Epoch || got.Seq != tok.Seq || got.TBM != tok.TBM {
			return false
		}
		if len(got.Members) != len(tok.Members) || len(got.Msgs) != len(tok.Msgs) {
			return false
		}
		for i := range tok.Members {
			if got.Members[i] != tok.Members[i] {
				return false
			}
		}
		for i := range tok.Msgs {
			a, b := got.Msgs[i], tok.Msgs[i]
			if a.Origin != b.Origin || a.Seq != b.Seq || a.Sys != b.Sys ||
				a.Subject != b.Subject || a.Safe != b.Safe || a.Phase != b.Phase ||
				a.Visited != b.Visited || !bytes.Equal(a.Payload, b.Payload) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeNeverPanics feeds random garbage to Decode; it must return an
// error or a message, never panic.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		b := make([]byte, rng.Intn(200))
		rng.Read(b)
		if len(b) > 0 && rng.Intn(2) == 0 {
			b[0] = Version // exercise the per-kind decoders too
			if len(b) > 1 {
				b[1] = byte(1 + rng.Intn(5))
			}
		}
		_, _ = Decode(b) // must not panic
	}
}

// TestDecodeMutatedFrames flips bytes in valid frames; decoding must not
// panic and must either fail or produce a structurally valid message.
func TestDecodeMutatedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	base := EncodeToken(&Token{
		Epoch:   1,
		Seq:     5,
		Members: []NodeID{1, 2, 3},
		Msgs:    []Message{{Origin: 1, Seq: 1, Payload: []byte("xyz")}},
	})
	for i := 0; i < 2000; i++ {
		b := append([]byte(nil), base...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			b[rng.Intn(len(b))] ^= byte(1 + rng.Intn(255))
		}
		env, err := Decode(b)
		if err == nil && env.Kind == KindToken && env.Token == nil {
			t.Fatal("decoded token envelope with nil token")
		}
	}
}

func BenchmarkEncodeToken(b *testing.B) {
	tok := &Token{Epoch: 1, Seq: 100, Members: []NodeID{1, 2, 3, 4, 5, 6, 7, 8}}
	for i := 0; i < 16; i++ {
		tok.Msgs = append(tok.Msgs, Message{Origin: 1, Seq: uint64(i), Payload: make([]byte, 256)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EncodeToken(tok)
	}
}

func BenchmarkDecodeToken(b *testing.B) {
	tok := &Token{Epoch: 1, Seq: 100, Members: []NodeID{1, 2, 3, 4, 5, 6, 7, 8}}
	for i := 0; i < 16; i++ {
		tok.Msgs = append(tok.Msgs, Message{Origin: 1, Seq: uint64(i), Payload: make([]byte, 256)})
	}
	enc := EncodeToken(tok)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
