package wire

import (
	"bytes"
	"testing"
)

// fuzzSeeds returns encoded round-trip frames of every kind in both wire
// versions, the seed corpus the fuzz targets start from.
func fuzzSeeds() [][]byte {
	tok := &Token{
		Epoch: 3, Seq: 88, TBM: true, Members: []NodeID{1, 2, 9},
		Msgs: []Message{
			{Origin: 1, Seq: 4, Sys: SysApp, Safe: true, Phase: PhaseRelease, Visited: 2, Payload: []byte("payload")},
			{Origin: 9, Seq: 1, Sys: SysNodeJoined, Subject: 2, Visited: 1},
		},
	}
	frames := [][]byte{
		EncodeToken(tok),
		EncodeTokenRing(5, tok),
		Encode911(&Msg911{From: 2, Epoch: 1, Seq: 7, ReqID: 11}),
		Encode911Ring(3, &Msg911{From: 2, Epoch: 1, Seq: 7, ReqID: 11}),
		Encode911Reply(&Msg911Reply{From: 3, ReqID: 11, Grant: true, JoinPending: true, Epoch: 2, Seq: 8}),
		EncodeBodyodor(&Bodyodor{From: 4, GroupID: 1, Epoch: 6}),
		EncodeBodyodorRing(1, &Bodyodor{From: 4, GroupID: 1, Epoch: 6}),
		EncodeForward(&Forward{From: 5, Safe: true, Payload: []byte("forwarded")}),
		EncodeForwardRing(2, &Forward{From: 5, Payload: []byte{}}),
	}
	var seeds [][]byte
	for _, f := range frames {
		seeds = append(seeds, f)
		switch f[0] {
		case VersionMulti:
			// The version-1 rendering (RingID stripped, ring 0 implied).
			seeds = append(seeds, append([]byte{VersionSingle, f[1]}, f[headerLen:]...))
		case VersionSingle:
			// The version-2 ring-0 rendering of an emitted ring-0 frame.
			v2 := append([]byte{VersionMulti, f[1], 0, 0, 0, 0}, f[2:]...)
			seeds = append(seeds, v2)
		}
	}
	return seeds
}

// reencode serializes a decoded envelope back to bytes with its ring,
// producing the canonical version-2 form.
func reencode(env *Envelope) []byte {
	switch env.Kind {
	case KindToken:
		return EncodeTokenRing(env.Ring, env.Token)
	case Kind911:
		return Encode911Ring(env.Ring, env.M911)
	case Kind911Reply:
		return Encode911ReplyRing(env.Ring, env.M911R)
	case KindBodyodor:
		return EncodeBodyodorRing(env.Ring, env.Bodyodor)
	case KindForward:
		return EncodeForwardRing(env.Ring, env.Forward)
	}
	return nil
}

// FuzzDecode drives arbitrary bytes through Decode. It must never panic,
// and any frame it accepts must survive a canonical re-encode/decode cycle
// byte-for-byte (so version-1 and version-2 inputs converge to the same
// canonical form).
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return
		}
		enc := reencode(env)
		if enc == nil {
			t.Fatalf("decoded envelope with unknown kind %v", env.Kind)
		}
		env2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		enc2 := reencode(env2)
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("canonical form not stable:\n first %x\nsecond %x", enc, enc2)
		}
	})
}

// FuzzPeekRing checks that the demultiplexer's cheap ring extraction agrees
// with the full decoder whenever the latter accepts the frame.
func FuzzPeekRing(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return
		}
		ring, err := PeekRing(data)
		if err != nil {
			t.Fatalf("Decode accepted a frame PeekRing rejects: %v", err)
		}
		if ring != env.Ring {
			t.Fatalf("PeekRing = %v, Decode.Ring = %v", ring, env.Ring)
		}
	})
}
