// Package transport implements the Raincore Transport Service (§2.1): an
// atomic point-to-point packet unicast with acknowledgement, sitting on an
// unreliable datagram interface (UDP in production, simnet in tests).
//
// It differs from TCP exactly as the paper prescribes:
//
//  1. A packet is either completely delivered or not delivered at all;
//     there are no connections or streams, hence no connection state to
//     track as nodes go up and down.
//  2. Each node may have multiple physical addresses (redundant links);
//     the send strategy targets them in sequential or parallel order.
//  3. The caller is notified on acknowledgement AND when all sending
//     efforts have failed — the failure-on-delivery notification that
//     serves as the session layer's local-view failure detector.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/stats"
	"repro/internal/wire"
)

// Addr is a network address of a peer link.
type Addr string

// PacketConn is the unreliable unicast interface the service requires
// (§2.1). simnet endpoints and the UDP adapter both satisfy it via the
// Conn wrapper types in this package.
type PacketConn interface {
	// Send transmits best-effort; nil error means accepted by the medium.
	// The conn does not retain payload: the caller may reuse it on return.
	Send(to Addr, payload []byte) error
	// SetReceiver installs the receive callback. buf, when non-nil, is
	// the pooled buffer backing payload; the receiver must Retain it to
	// keep payload beyond the callback (or copy). A nil buf means the
	// payload is handler-owned.
	SetReceiver(fn func(from Addr, payload []byte, buf *wire.Buf))
	// Close releases the conn.
	Close() error
}

// Strategy selects how multiple physical addresses are used (§2.1).
type Strategy uint8

const (
	// Sequential rotates through (local conn, remote addr) combinations,
	// one per attempt.
	Sequential Strategy = iota
	// Parallel sends every attempt on all combinations at once.
	Parallel
)

// Config tunes the service.
type Config struct {
	// AckTimeout is how long one attempt waits for an acknowledgement.
	AckTimeout time.Duration
	// Attempts is the total number of send attempts before the
	// failure-on-delivery notification fires. Minimum 1.
	Attempts int
	// Strategy picks sequential or parallel multi-address sending.
	Strategy Strategy
	// DedupWindow bounds the per-sender duplicate-suppression window.
	DedupWindow int
}

// DefaultConfig mirrors an aggressive LAN setup: the paper's failure
// detector is deliberately fast (§2.2).
func DefaultConfig() Config {
	return Config{
		AckTimeout:  20 * time.Millisecond,
		Attempts:    3,
		Strategy:    Sequential,
		DedupWindow: 4096,
	}
}

// ErrDeliveryFailed is reported when all sending efforts have failed; it is
// the failure-on-delivery notification of §2.1.
var ErrDeliveryFailed = errors.New("transport: delivery failed")

// ErrClosed is reported for operations on a closed transport.
var ErrClosed = errors.New("transport: closed")

// ErrUnknownPeer is reported when the destination has no known addresses.
var ErrUnknownPeer = errors.New("transport: unknown peer")

// Transport is one node's instance of the Raincore Transport Service.
type Transport struct {
	local wire.NodeID
	conns []PacketConn
	clk   clock.Clock
	reg   *stats.Registry
	cfg   Config

	mu      sync.Mutex
	peers   map[wire.NodeID][]Addr
	pending map[uint64]*sendTask
	dedup   map[wire.NodeID]*dedupWindow
	handler func(from wire.NodeID, payload []byte, buf *wire.Buf)
	closed  bool
	// closedCh unblocks in-flight send loops on Close; the per-task ack
	// channel must never be used for that, since it signals success.
	closedCh chan struct{}

	nextMsgID atomic.Uint64
	wg        sync.WaitGroup
	// taskPool recycles sendTask structs — ack channel and retry timer
	// included — so the steady-state send path allocates nothing.
	taskPool sync.Pool
}

// sendTask is the in-flight state of one reliable unicast. The ack channel
// is buffered and signalled by send (never closed) so both it and the
// retry timer survive reuse through the pool.
type sendTask struct {
	acked chan struct{}
	timer clock.Timer
}

// getTask draws a sendTask with a drained ack channel.
func (t *Transport) getTask() *sendTask {
	task := t.taskPool.Get().(*sendTask)
	select {
	case <-task.acked:
	default:
	}
	return task
}

// putTask returns a task to the pool. The caller must have removed it from
// pending first (under t.mu): ack signals happen under the same mutex, so
// after removal no late signal can race with the drain here.
func (t *Transport) putTask(task *sendTask) {
	select {
	case <-task.acked:
	default:
	}
	t.taskPool.Put(task)
}

// New creates a transport bound to the given local conns (one per physical
// address). reg may be nil, in which case a private registry is used.
func New(local wire.NodeID, conns []PacketConn, clk clock.Clock, reg *stats.Registry, cfg Config) *Transport {
	if len(conns) == 0 {
		panic("transport: need at least one PacketConn")
	}
	if clk == nil {
		clk = clock.NewReal()
	}
	if reg == nil {
		reg = stats.NewRegistry()
	}
	if cfg.Attempts < 1 {
		cfg.Attempts = 1
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = DefaultConfig().AckTimeout
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = DefaultConfig().DedupWindow
	}
	t := &Transport{
		local:    local,
		conns:    conns,
		clk:      clk,
		reg:      reg,
		cfg:      cfg,
		peers:    make(map[wire.NodeID][]Addr),
		pending:  make(map[uint64]*sendTask),
		dedup:    make(map[wire.NodeID]*dedupWindow),
		closedCh: make(chan struct{}),
	}
	t.taskPool.New = func() any { return &sendTask{acked: make(chan struct{}, 1)} }
	for _, c := range conns {
		conn := c
		conn.SetReceiver(func(from Addr, payload []byte, buf *wire.Buf) {
			t.receive(conn, from, payload, buf)
		})
	}
	return t
}

// Local returns this node's ID.
func (t *Transport) Local() wire.NodeID { return t.local }

// Stats returns the metrics registry.
func (t *Transport) Stats() *stats.Registry { return t.reg }

// SetPeer registers the physical addresses of a peer, replacing previous
// ones. Multiple addresses enable the redundant-link resilience of §2.1.
func (t *Transport) SetPeer(id wire.NodeID, addrs []Addr) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.peers[id] = append([]Addr(nil), addrs...)
}

// Peer returns the registered addresses of a peer.
func (t *Transport) Peer(id wire.NodeID) []Addr {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Addr(nil), t.peers[id]...)
}

// Peers lists all registered peer IDs.
func (t *Transport) Peers() []wire.NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]wire.NodeID, 0, len(t.peers))
	for id := range t.peers {
		out = append(out, id)
	}
	return out
}

// SetHandler installs the upward delivery callback. It must be set before
// traffic is expected; packets arriving without a handler are acknowledged
// and dropped. buf, when non-nil, is the pooled receive buffer backing
// payload: the handler must Retain it to keep payload beyond the callback
// (or copy the bytes out). A nil buf means payload is handler-owned.
func (t *Transport) SetHandler(fn func(from wire.NodeID, payload []byte, buf *wire.Buf)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = fn
}

// Send performs the atomic reliable unicast. done is invoked exactly once,
// from a separate goroutine, with nil on acknowledged delivery or
// ErrDeliveryFailed after all attempts are exhausted. A nil done is
// permitted for fire-and-forget reliability.
func (t *Transport) Send(to wire.NodeID, payload []byte, done func(error)) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		if done != nil {
			done(ErrClosed)
		}
		return
	}
	addrs := t.peers[to]
	if len(addrs) == 0 {
		t.mu.Unlock()
		if done != nil {
			done(fmt.Errorf("%w: %v", ErrUnknownPeer, to))
		}
		return
	}
	msgID := t.nextMsgID.Add(1)
	task := t.getTask()
	t.pending[msgID] = task
	// The Add must be ordered with the closed check (same critical
	// section) or it races with Close's Wait.
	t.wg.Add(1)
	t.mu.Unlock()

	fb := wire.GetBufSize(frameHeaderLen + len(payload))
	n := encodeFrameInto(fb.B, frameData, t.local, msgID, payload)
	go t.sendLoop(to, addrs, msgID, fb, n, task, done)
}

// SendSync is Send but blocking, for callers without their own event loop.
func (t *Transport) SendSync(to wire.NodeID, payload []byte) error {
	ch := make(chan error, 1)
	t.Send(to, payload, func(err error) { ch <- err })
	return <-ch
}

// sendLoop drives the attempt schedule for one message. fb holds the
// encoded frame (fb.B[:n]); sendLoop owns its reference and the task, and
// recycles both when the outcome is decided.
func (t *Transport) sendLoop(to wire.NodeID, addrs []Addr, msgID uint64, fb *wire.Buf, n int, task *sendTask, done func(error)) {
	defer t.wg.Done()
	frame := fb.B[:n]
	err := t.runAttempts(to, addrs, frame, task)
	t.mu.Lock()
	if t.pending[msgID] == task {
		delete(t.pending, msgID)
	}
	t.mu.Unlock()
	fb.Release()
	// Safe to recycle: the task is out of pending, and acks signal under
	// t.mu, so no late signal can arrive after the delete above.
	t.putTask(task)
	if err != nil && errors.Is(err, ErrDeliveryFailed) {
		t.reg.Counter(stats.MetricSendFailures).Inc()
	}
	if done != nil {
		done(err)
	}
}

// runAttempts emits the frame per the retry schedule and waits for the
// ack, transport close, or attempt exhaustion.
func (t *Transport) runAttempts(to wire.NodeID, addrs []Addr, frame []byte, task *sendTask) error {
	combos := len(t.conns) * len(addrs)
	for attempt := 0; attempt < t.cfg.Attempts; attempt++ {
		if attempt > 0 {
			t.reg.Counter(stats.MetricRetransmits).Inc()
		}
		switch t.cfg.Strategy {
		case Parallel:
			for ci := range t.conns {
				for ai := range addrs {
					t.emit(t.conns[ci], addrs[ai], frame)
				}
			}
		default: // Sequential
			combo := attempt % combos
			conn := t.conns[combo%len(t.conns)]
			addr := addrs[combo%len(addrs)]
			t.emit(conn, addr, frame)
		}
		if task.timer == nil {
			task.timer = t.clk.NewTimer(t.cfg.AckTimeout)
		} else {
			task.timer.Reset(t.cfg.AckTimeout)
		}
		select {
		case <-task.acked:
			stopDrain(task.timer)
			return nil
		case <-t.closedCh:
			stopDrain(task.timer)
			return ErrClosed
		case <-task.timer.C():
		}
	}
	return fmt.Errorf("%w: to %v after %d attempts", ErrDeliveryFailed, to, t.cfg.Attempts)
}

// stopDrain stops a pooled retry timer and clears any tick that already
// fired, so the timer can be Reset by the task's next user.
func stopDrain(tm clock.Timer) {
	if !tm.Stop() {
		select {
		case <-tm.C():
		default:
		}
	}
}

func (t *Transport) emit(conn PacketConn, to Addr, frame []byte) {
	t.reg.Counter(stats.MetricPacketsSent).Inc()
	t.reg.Counter(stats.MetricBytesSent).Add(int64(len(frame)))
	_ = conn.Send(to, frame) // best-effort; retries cover transient errors
}

// receive parses one incoming frame. buf, when non-nil, is the pooled
// receive buffer backing payload; it is forwarded to the handler under the
// same retain-to-keep contract.
func (t *Transport) receive(conn PacketConn, from Addr, payload []byte, buf *wire.Buf) {
	kind, src, msgID, body, err := decodeFrame(payload)
	if err != nil {
		return // not ours / corrupt: ignore
	}
	t.reg.Counter(stats.MetricPacketsRecv).Inc()
	t.reg.Counter(stats.MetricBytesRecv).Add(int64(len(payload)))
	switch kind {
	case frameAck:
		t.mu.Lock()
		task, ok := t.pending[msgID]
		if ok {
			delete(t.pending, msgID)
			// Signal under the mutex: once a task leaves pending no
			// late signal is possible, which is what lets sendLoop
			// recycle tasks without racing (see putTask).
			select {
			case task.acked <- struct{}{}:
			default:
			}
		}
		t.mu.Unlock()
	case frameData:
		// Always acknowledge, even duplicates: the previous ack may have
		// been lost.
		ab := wire.GetBuf()
		an := encodeFrameInto(ab.B, frameAck, t.local, msgID, nil)
		t.reg.Counter(stats.MetricPacketsSent).Inc()
		t.reg.Counter(stats.MetricBytesSent).Add(int64(an))
		_ = conn.Send(from, ab.B[:an])
		ab.Release()

		t.mu.Lock()
		win, ok := t.dedup[src]
		if !ok {
			win = newDedupWindow(t.cfg.DedupWindow)
			t.dedup[src] = win
		}
		fresh := win.observe(msgID)
		h := t.handler
		t.mu.Unlock()
		if fresh && h != nil {
			h(src, body, buf)
		}
	}
}

// Close shuts the transport down. In-flight sends complete with ErrClosed
// or their natural outcome.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	// Release all send loops promptly; they report ErrClosed.
	close(t.closedCh)
	t.wg.Wait()
	var first error
	for _, c := range t.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// --- frame codec ---
//
//	byte 0     magic 0xC7
//	byte 1     frame kind (1 data, 2 ack)
//	bytes 2-5  src NodeID (LE)
//	bytes 6-13 msgID (LE)
//	bytes 14.. payload (data frames only)

const frameMagic = 0xC7

type frameKind byte

const (
	frameData frameKind = 1
	frameAck  frameKind = 2
)

const frameHeaderLen = 14

// maxUDPPayload is the largest payload a UDP/IPv4 datagram can carry
// (65535 minus the 8-byte UDP and 20-byte IP headers).
const maxUDPPayload = 65507

// MaxSessionFrame is the largest session-layer frame the transport can put
// in a single datagram after adding its own frame header. Oversized frames
// must be split with wire.ChunkFrame before Send; the core runtime does
// this for token frames that outgrow the limit.
const MaxSessionFrame = maxUDPPayload - frameHeaderLen

func encodeFrame(kind frameKind, src wire.NodeID, msgID uint64, payload []byte) []byte {
	b := make([]byte, frameHeaderLen+len(payload))
	encodeFrameInto(b, kind, src, msgID, payload)
	return b
}

// encodeFrameInto writes the frame into dst (which must have room for
// frameHeaderLen+len(payload) bytes) and returns the encoded size. The
// hot path pairs it with a pooled buffer so framing allocates nothing.
func encodeFrameInto(dst []byte, kind frameKind, src wire.NodeID, msgID uint64, payload []byte) int {
	dst[0] = frameMagic
	dst[1] = byte(kind)
	binary.LittleEndian.PutUint32(dst[2:], uint32(src))
	binary.LittleEndian.PutUint64(dst[6:], msgID)
	copy(dst[frameHeaderLen:], payload)
	return frameHeaderLen + len(payload)
}

func decodeFrame(b []byte) (frameKind, wire.NodeID, uint64, []byte, error) {
	if len(b) < frameHeaderLen {
		return 0, 0, 0, nil, errors.New("transport: short frame")
	}
	if b[0] != frameMagic {
		return 0, 0, 0, nil, errors.New("transport: bad magic")
	}
	kind := frameKind(b[1])
	if kind != frameData && kind != frameAck {
		return 0, 0, 0, nil, errors.New("transport: bad frame kind")
	}
	src := wire.NodeID(binary.LittleEndian.Uint32(b[2:]))
	msgID := binary.LittleEndian.Uint64(b[6:])
	return kind, src, msgID, b[frameHeaderLen:], nil
}

// dedupWindow suppresses duplicate msgIDs per sender. IDs are assigned from
// a per-sender counter, so "msgID <= maxSeen-window" identifies stale
// retransmissions even after the explicit set is pruned.
type dedupWindow struct {
	window  uint64
	maxSeen uint64
	seen    map[uint64]struct{}
}

func newDedupWindow(window int) *dedupWindow {
	return &dedupWindow{window: uint64(window), seen: make(map[uint64]struct{})}
}

// observe reports whether msgID is fresh, recording it.
func (w *dedupWindow) observe(msgID uint64) bool {
	if msgID+w.window <= w.maxSeen {
		return false // far older than anything we track: duplicate
	}
	if _, dup := w.seen[msgID]; dup {
		return false
	}
	w.seen[msgID] = struct{}{}
	if msgID > w.maxSeen {
		w.maxSeen = msgID
	}
	// Prune entries that fell out of the window.
	if uint64(len(w.seen)) > 2*w.window {
		for id := range w.seen {
			if id+w.window <= w.maxSeen {
				delete(w.seen, id)
			}
		}
	}
	return true
}
