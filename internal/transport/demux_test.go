package transport

import (
	"sync"
	"testing"

	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/wire"
)

// ringFrame encodes a minimal session frame for the given ring.
func ringFrame(ring wire.RingID, payload []byte) []byte {
	return wire.EncodeForwardRing(ring, &wire.Forward{From: 1, Payload: payload})
}

func TestDemuxRoutesByRing(t *testing.T) {
	ta, tb, _ := pair(t, simnet.Profile{}, DefaultConfig())
	d := NewDemux(tb)
	var mu sync.Mutex
	got := map[wire.RingID][]string{}
	for _, ring := range []wire.RingID{0, 1, 2} {
		ring := ring
		if err := d.Register(ring, func(_ wire.NodeID, p []byte, _ *wire.Buf) {
			env, err := wire.Decode(p)
			if err != nil {
				t.Errorf("ring %v: %v", ring, err)
				return
			}
			mu.Lock()
			got[ring] = append(got[ring], string(env.Forward.Payload))
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i, ring := range []wire.RingID{2, 0, 1, 0, 2} {
		if err := ta.SendSync(2, ringFrame(ring, []byte{byte('a' + i)})); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := map[wire.RingID]string{0: "bd", 1: "c", 2: "ae"}
	for ring, w := range want {
		joined := ""
		for _, s := range got[ring] {
			joined += s
		}
		if joined != w {
			t.Errorf("ring %v received %q, want %q", ring, joined, w)
		}
	}
}

// TestDemuxLegacyFramesReachRing0 covers the rolling-upgrade path: both
// the version-1 format (which ring-0 frames are emitted in, and which a
// not-yet-upgraded member would send) and the explicit version-2 ring-0
// form must route to ring 0.
func TestDemuxLegacyFramesReachRing0(t *testing.T) {
	ta, tb, _ := pair(t, simnet.Profile{}, DefaultConfig())
	d := NewDemux(tb)
	var mu sync.Mutex
	var got []string
	if err := d.Register(wire.Ring0, func(_ wire.NodeID, p []byte, _ *wire.Buf) {
		env, err := wire.Decode(p)
		if err != nil {
			t.Error(err)
			return
		}
		mu.Lock()
		got = append(got, string(env.Forward.Payload))
		mu.Unlock()
	}); err != nil {
		t.Fatal(err)
	}
	v1 := ringFrame(0, []byte("legacy")) // ring-0 frames emit as version 1
	if v1[0] != wire.VersionSingle {
		t.Fatalf("ring-0 frame version = %d, want %d", v1[0], wire.VersionSingle)
	}
	if err := ta.SendSync(2, v1); err != nil {
		t.Fatal(err)
	}
	v2 := append([]byte{wire.VersionMulti, v1[1], 0, 0, 0, 0}, v1[2:]...)
	if err := ta.SendSync(2, v2); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 || got[0] != "legacy" || got[1] != "legacy" {
		t.Fatalf("ring 0 received %v, want [legacy legacy]", got)
	}
}

func TestDemuxDropsUnknownRing(t *testing.T) {
	ta, tb, _ := pair(t, simnet.Profile{}, DefaultConfig())
	d := NewDemux(tb)
	delivered := false
	if err := d.Register(0, func(wire.NodeID, []byte, *wire.Buf) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	// The transport still acknowledges the frame (delivery succeeded at
	// the transport layer); the demux drops it and counts the drop.
	if err := ta.SendSync(2, ringFrame(7, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	if delivered {
		t.Fatal("frame for ring 7 reached the ring-0 receiver")
	}
	if n := tb.Stats().Counter(stats.MetricDemuxDrops).Load(); n != 1 {
		t.Fatalf("demux drops = %d, want 1", n)
	}
}

func TestDemuxRegisterConflictAndUnregister(t *testing.T) {
	_, tb, _ := pair(t, simnet.Profile{}, DefaultConfig())
	d := NewDemux(tb)
	noop := func(wire.NodeID, []byte, *wire.Buf) {}
	if err := d.Register(1, noop); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(1, noop); err == nil {
		t.Fatal("double Register succeeded")
	}
	if err := d.Register(1, nil); err == nil {
		t.Fatal("nil receiver accepted")
	}
	d.Unregister(1)
	if err := d.Register(1, noop); err != nil {
		t.Fatalf("Register after Unregister: %v", err)
	}
	if got := len(d.Rings()); got != 1 {
		t.Fatalf("Rings() = %d entries, want 1", got)
	}
	if d.Transport() != tb {
		t.Fatal("Transport() did not return the wrapped transport")
	}
}
