//go:build linux

package transport

// arm64 syscall numbers for sendmmsg(2)/recvmmsg(2); part of the kernel
// ABI, never change.
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
