//go:build race

package transport

// raceEnabled relaxes allocation-budget assertions: the race detector's
// instrumentation allocates on its own account.
const raceEnabled = true
