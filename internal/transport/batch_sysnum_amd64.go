//go:build linux

package transport

// The stdlib syscall table on amd64 predates sendmmsg(2) (Linux 3.0), so
// the numbers are pinned here; they are part of the kernel ABI and never
// change.
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
