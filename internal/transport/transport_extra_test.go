package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/wire"
)

func TestZeroLengthPayload(t *testing.T) {
	ta, tb, _ := pair(t, simnet.Profile{}, DefaultConfig())
	got := make(chan int, 1)
	tb.SetHandler(func(_ wire.NodeID, p []byte, _ *wire.Buf) { got <- len(p) })
	if err := ta.SendSync(2, nil); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-got:
		if n != 0 {
			t.Fatalf("payload length = %d, want 0", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("empty payload never delivered")
	}
}

func TestLargePayload(t *testing.T) {
	ta, tb, _ := pair(t, simnet.Profile{}, DefaultConfig())
	want := make([]byte, 48*1024)
	for i := range want {
		want[i] = byte(i)
	}
	got := make(chan []byte, 1)
	tb.SetHandler(func(_ wire.NodeID, p []byte, _ *wire.Buf) { got <- p })
	if err := ta.SendSync(2, want); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if len(p) != len(want) {
			t.Fatalf("payload length = %d, want %d", len(p), len(want))
		}
		for i := range p {
			if p[i] != want[i] {
				t.Fatalf("payload corrupted at %d", i)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("large payload never delivered")
	}
}

func TestSendPayloadIsolated(t *testing.T) {
	ta, tb, _ := pair(t, simnet.Profile{}, DefaultConfig())
	got := make(chan string, 1)
	tb.SetHandler(func(_ wire.NodeID, p []byte, _ *wire.Buf) { got <- string(p) })
	buf := []byte("abc")
	done := make(chan error, 1)
	ta.Send(2, buf, func(err error) { done <- err })
	buf[0] = 'X' // mutate immediately after the async call
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-got:
		if p != "abc" {
			t.Fatalf("payload = %q, want isolation from caller buffer", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestConcurrentSetPeerAndSend(t *testing.T) {
	ta, tb, _ := pair(t, simnet.Profile{}, DefaultConfig())
	tb.SetHandler(func(wire.NodeID, []byte, *wire.Buf) {})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ta.SetPeer(2, []Addr{"b"})
				_ = ta.SendSync(2, []byte{1})
			}
		}()
	}
	wg.Wait()
}

func TestPeersListing(t *testing.T) {
	ta, _, _ := pair(t, simnet.Profile{}, DefaultConfig())
	ta.SetPeer(7, []Addr{"x", "y"})
	found := false
	for _, id := range ta.Peers() {
		if id == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("peer 7 not listed")
	}
	if got := ta.Peer(7); len(got) != 2 || got[0] != "x" {
		t.Fatalf("Peer(7) = %v", got)
	}
}

func TestNilDoneCallback(t *testing.T) {
	ta, tb, _ := pair(t, simnet.Profile{}, DefaultConfig())
	delivered := make(chan struct{}, 1)
	tb.SetHandler(func(wire.NodeID, []byte, *wire.Buf) {
		select {
		case delivered <- struct{}{}:
		default:
		}
	})
	ta.Send(2, []byte("fire and forget"), nil) // must not panic
	select {
	case <-delivered:
	case <-time.After(5 * time.Second):
		t.Fatal("fire-and-forget send not delivered")
	}
}

func TestCloseDuringInflightSends(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AckTimeout = 50 * time.Millisecond
	cfg.Attempts = 10
	ta, _, n := pair(t, simnet.Profile{}, cfg)
	n.SetNodeDown("b", true) // sends will retry until close
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- ta.SendSync(2, []byte{1})
		}()
	}
	time.Sleep(20 * time.Millisecond)
	ta.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("send to a dead peer succeeded")
		}
		if !errors.Is(err, ErrDeliveryFailed) && !errors.Is(err, ErrClosed) && err.Error() == "" {
			t.Fatalf("unexpected error %v", err)
		}
	}
}

func TestAckFromUnexpectedSourceIgnored(t *testing.T) {
	// A stray ack frame for an unknown msgID must not panic or corrupt
	// state.
	n := simnet.New(simnet.Options{})
	defer n.Close()
	ta := New(1, []PacketConn{NewSimConn(n.MustEndpoint("a"))}, nil, nil, DefaultConfig())
	defer ta.Close()
	stray := n.MustEndpoint("stranger")
	frame := encodeFrame(frameAck, 99, 424242, nil)
	if err := stray.Send("a", frame); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // nothing to assert beyond no panic
}

func TestGarbageFramesIgnored(t *testing.T) {
	n := simnet.New(simnet.Options{})
	defer n.Close()
	ta := New(1, []PacketConn{NewSimConn(n.MustEndpoint("a"))}, nil, nil, DefaultConfig())
	defer ta.Close()
	handled := false
	ta.SetHandler(func(wire.NodeID, []byte, *wire.Buf) { handled = true })
	stray := n.MustEndpoint("g")
	for _, payload := range [][]byte{nil, {1}, []byte("not a frame"), make([]byte, 100)} {
		stray.Send("a", payload)
	}
	time.Sleep(10 * time.Millisecond)
	if handled {
		t.Fatal("garbage frame reached the handler")
	}
}
