package transport

import (
	"errors"
	"net"
	"sync"

	"repro/internal/simnet"
)

// SimConn adapts a simnet.Endpoint to the PacketConn interface.
type SimConn struct{ ep *simnet.Endpoint }

// NewSimConn wraps a simulated endpoint.
func NewSimConn(ep *simnet.Endpoint) *SimConn { return &SimConn{ep: ep} }

// Send implements PacketConn.
func (c *SimConn) Send(to Addr, payload []byte) error {
	return c.ep.Send(simnet.Addr(to), payload)
}

// SetReceiver implements PacketConn.
func (c *SimConn) SetReceiver(fn func(from Addr, payload []byte)) {
	c.ep.SetReceiver(func(from simnet.Addr, payload []byte) {
		fn(Addr(from), payload)
	})
}

// Close implements PacketConn.
func (c *SimConn) Close() error { return c.ep.Close() }

// Addr returns the endpoint's address.
func (c *SimConn) Addr() Addr { return Addr(c.ep.Addr()) }

// UDPConn adapts a net.UDPConn to the PacketConn interface, the typical
// production implementation named by the paper (§2.1).
type UDPConn struct {
	conn *net.UDPConn

	mu      sync.Mutex
	handler func(from Addr, payload []byte)
	closed  bool
	done    chan struct{}
}

// maxUDPDatagram bounds receive buffers; tokens carrying many piggybacked
// messages stay well under this on a LAN with jumbo-frame-free MTUs because
// the session layer flushes per round.
const maxUDPDatagram = 64 * 1024

// ListenUDP opens a UDP socket on the given address ("127.0.0.1:0" for an
// ephemeral test port) and starts its receive loop.
func ListenUDP(addr string) (*UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	c := &UDPConn{conn: conn, done: make(chan struct{})}
	go c.readLoop()
	return c, nil
}

// LocalAddr returns the bound address, usable as a peer Addr on other nodes.
func (c *UDPConn) LocalAddr() Addr { return Addr(c.conn.LocalAddr().String()) }

// Send implements PacketConn.
func (c *UDPConn) Send(to Addr, payload []byte) error {
	ua, err := net.ResolveUDPAddr("udp", string(to))
	if err != nil {
		return err
	}
	_, err = c.conn.WriteToUDP(payload, ua)
	return err
}

// SetReceiver implements PacketConn.
func (c *UDPConn) SetReceiver(fn func(from Addr, payload []byte)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handler = fn
}

// Close implements PacketConn.
func (c *UDPConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	return c.conn.Close()
}

func (c *UDPConn) readLoop() {
	buf := make([]byte, maxUDPDatagram)
	for {
		n, from, err := c.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-c.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		payload := append([]byte(nil), buf[:n]...)
		c.mu.Lock()
		h := c.handler
		c.mu.Unlock()
		if h != nil {
			h(Addr(from.String()), payload)
		}
	}
}
