package transport

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/simnet"
	"repro/internal/wire"
)

// SimConn adapts a simnet.Endpoint to the PacketConn interface.
type SimConn struct{ ep *simnet.Endpoint }

// NewSimConn wraps a simulated endpoint.
func NewSimConn(ep *simnet.Endpoint) *SimConn { return &SimConn{ep: ep} }

// Send implements PacketConn.
func (c *SimConn) Send(to Addr, payload []byte) error {
	return c.ep.Send(simnet.Addr(to), payload)
}

// SetReceiver implements PacketConn. Simnet copies payloads on send and
// never reuses delivered buffers, so delivered payloads are handler-owned
// (nil *wire.Buf).
func (c *SimConn) SetReceiver(fn func(from Addr, payload []byte, buf *wire.Buf)) {
	c.ep.SetReceiver(func(from simnet.Addr, payload []byte) {
		fn(Addr(from), payload, nil)
	})
}

// Close implements PacketConn.
func (c *SimConn) Close() error { return c.ep.Close() }

// Addr returns the endpoint's address.
func (c *SimConn) Addr() Addr { return Addr(c.ep.Addr()) }

// maxUDPDatagram bounds datagram size in both directions. Session frames
// larger than this minus the transport frame header must be chunked (see
// wire.ChunkFrame); receive slots are sized to it.
const maxUDPDatagram = 64 * 1024

// recvBatchSize is how many datagrams one recvmmsg call can deliver; it is
// also the number of pooled receive slots pinned per conn.
const recvBatchSize = 32

// maxSendQueue bounds the packets awaiting a batched flush. A producer that
// outruns the flusher sees its overflow dropped — the medium is unreliable
// by contract and the transport's retries recover — instead of growing the
// queue (and the buffer pool's working set) without limit.
const maxSendQueue = 4096

// outPacket is one queued datagram awaiting a batched flush. buf holds the
// frame bytes (buf.B[:n]); the flusher owns the reference and releases it
// after the syscall.
type outPacket struct {
	ua  *net.UDPAddr
	buf *wire.Buf
	n   int
}

// inPacket is one receive slot. The batchConn fills n and from; buf is a
// pooled large-class buffer replaced whenever a handler retains it.
type inPacket struct {
	buf  *wire.Buf
	n    int
	from Addr
}

// batchConn is the platform datagram batch interface: Linux gets a
// sendmmsg/recvmmsg fast path (batch_linux.go), everything else a portable
// loop over WriteToUDP/ReadFromUDP (batch_stub.go) behind the same
// interface.
type batchConn interface {
	// writeBatch transmits every packet, best-effort.
	writeBatch(pkts []outPacket) error
	// readBatch blocks until at least one datagram arrives, filling slots
	// from the front; it returns the number filled.
	readBatch(slots []inPacket) (int, error)
}

// Batch syscall counters, process-global like the wire buffer pools.
var (
	batchSendCalls  atomic.Int64
	batchSentFrames atomic.Int64
	batchRecvCalls  atomic.Int64
	batchRecvFrames atomic.Int64
	batchSendDrops  atomic.Int64
)

// BatchStatsSnapshot reports cumulative batched-I/O traffic. Frames per
// syscall — the amortization the batching buys — is SentFrames/SendCalls
// (resp. received).
type BatchStatsSnapshot struct {
	SendCalls  int64 `json:"send_calls"`
	SentFrames int64 `json:"sent_frames"`
	RecvCalls  int64 `json:"recv_calls"`
	RecvFrames int64 `json:"recv_frames"`
	SendDrops  int64 `json:"send_drops"`
}

// BatchStats returns the cumulative UDP batch counters for this process.
func BatchStats() BatchStatsSnapshot {
	return BatchStatsSnapshot{
		SendCalls:  batchSendCalls.Load(),
		SentFrames: batchSentFrames.Load(),
		RecvCalls:  batchRecvCalls.Load(),
		RecvFrames: batchRecvFrames.Load(),
		SendDrops:  batchSendDrops.Load(),
	}
}

// UDPConn adapts a net.UDPConn to the PacketConn interface, the typical
// production implementation named by the paper (§2.1). Sends are queued
// and flushed in batches — one sendmmsg per flush on Linux — and receives
// drain bursts into a ring of pooled slots with one recvmmsg.
type UDPConn struct {
	conn *net.UDPConn
	bc   batchConn

	mu      sync.Mutex
	handler func(from Addr, payload []byte, buf *wire.Buf)
	resolve map[Addr]*net.UDPAddr
	closed  bool
	done    chan struct{}

	qmu   sync.Mutex
	queue []outPacket
	kick  chan struct{}

	wg sync.WaitGroup
}

// ListenUDP opens a UDP socket on the given address ("127.0.0.1:0" for an
// ephemeral test port) and starts its receive and flush loops.
func ListenUDP(addr string) (*UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	c := &UDPConn{
		conn:    conn,
		resolve: make(map[Addr]*net.UDPAddr),
		done:    make(chan struct{}),
		kick:    make(chan struct{}, 1),
	}
	c.bc, err = newBatchConn(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.wg.Add(2)
	go c.readLoop()
	go c.flushLoop()
	return c, nil
}

// LocalAddr returns the bound address, usable as a peer Addr on other nodes.
func (c *UDPConn) LocalAddr() Addr { return Addr(c.conn.LocalAddr().String()) }

// udpAddr resolves a peer address once and caches the result; the peer set
// is small and stable, so steady-state sends never re-resolve.
func (c *UDPConn) udpAddr(to Addr) (*net.UDPAddr, error) {
	c.mu.Lock()
	ua := c.resolve[to]
	c.mu.Unlock()
	if ua != nil {
		return ua, nil
	}
	ua, err := net.ResolveUDPAddr("udp", string(to))
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.resolve[to] = ua
	c.mu.Unlock()
	return ua, nil
}

// Send implements PacketConn. The payload is copied into a pooled buffer
// and queued; the flush loop coalesces everything queued since its last
// wakeup into one batched syscall. The caller may reuse payload on return.
// When the queue is at capacity the packet is dropped, not queued: the
// medium is unreliable by contract and the transport's retry machinery
// recovers, whereas an unbounded queue would only convert overload into
// latency and memory growth.
func (c *UDPConn) Send(to Addr, payload []byte) error {
	ua, err := c.udpAddr(to)
	if err != nil {
		return err
	}
	buf := wire.GetBufSize(len(payload))
	n := copy(buf.B, payload)
	c.qmu.Lock()
	if c.closed {
		c.qmu.Unlock()
		buf.Release()
		return net.ErrClosed
	}
	if len(c.queue) >= maxSendQueue {
		c.qmu.Unlock()
		buf.Release()
		batchSendDrops.Add(1)
		return nil
	}
	c.queue = append(c.queue, outPacket{ua: ua, buf: buf, n: n})
	c.qmu.Unlock()
	select {
	case c.kick <- struct{}{}:
	default: // flusher already signalled
	}
	return nil
}

// SetReceiver implements PacketConn. The buf passed to fn is the pooled
// receive slot backing payload; fn must Retain it to keep payload beyond
// the callback, or copy.
func (c *UDPConn) SetReceiver(fn func(from Addr, payload []byte, buf *wire.Buf)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handler = fn
}

// Close implements PacketConn.
func (c *UDPConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	c.qmu.Lock()
	c.closed = true
	c.qmu.Unlock()
	close(c.done)
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

// flushLoop drains the send queue, one batched write per accumulation.
func (c *UDPConn) flushLoop() {
	defer c.wg.Done()
	var batch []outPacket
	release := func(pkts []outPacket) {
		for i := range pkts {
			pkts[i].buf.Release()
			pkts[i].buf = nil
		}
	}
	for {
		select {
		case <-c.done:
			c.qmu.Lock()
			q := c.queue
			c.queue = nil
			c.qmu.Unlock()
			release(q)
			return
		case <-c.kick:
		}
		for {
			c.qmu.Lock()
			batch, c.queue = c.queue, batch[:0]
			c.qmu.Unlock()
			if len(batch) == 0 {
				break
			}
			_ = c.bc.writeBatch(batch) // best-effort; transport retries cover losses
			release(batch)
		}
	}
}

// readLoop drains datagram bursts into the pooled slot ring and hands each
// one to the handler. A slot whose buffer the handler retained is re-armed
// with a fresh pooled buffer; unretained buffers cycle straight back.
func (c *UDPConn) readLoop() {
	defer c.wg.Done()
	slots := make([]inPacket, recvBatchSize)
	for i := range slots {
		slots[i].buf = wire.GetBufSize(wire.BufLarge)
	}
	defer func() {
		for i := range slots {
			slots[i].buf.Release()
		}
	}()
	for {
		n, err := c.bc.readBatch(slots)
		if err != nil {
			select {
			case <-c.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		c.mu.Lock()
		h := c.handler
		c.mu.Unlock()
		for i := 0; i < n; i++ {
			s := &slots[i]
			if h != nil {
				h(s.from, s.buf.B[:s.n], s.buf)
			}
			s.buf.Release()
			s.buf = wire.GetBufSize(wire.BufLarge)
		}
	}
}
