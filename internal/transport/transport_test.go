package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/wire"
)

// pair builds two transports on a fresh simnet and returns them plus the
// network for fault injection.
func pair(t *testing.T, prof simnet.Profile, cfg Config) (*Transport, *Transport, *simnet.Network) {
	t.Helper()
	n := simnet.New(simnet.Options{Default: prof, Seed: 1})
	t.Cleanup(n.Close)
	ta := New(1, []PacketConn{NewSimConn(n.MustEndpoint("a"))}, nil, nil, cfg)
	tb := New(2, []PacketConn{NewSimConn(n.MustEndpoint("b"))}, nil, nil, cfg)
	t.Cleanup(func() { ta.Close(); tb.Close() })
	ta.SetPeer(2, []Addr{"b"})
	tb.SetPeer(1, []Addr{"a"})
	return ta, tb, n
}

func TestReliableDelivery(t *testing.T) {
	ta, tb, _ := pair(t, simnet.Profile{}, DefaultConfig())
	var mu sync.Mutex
	var got []string
	tb.SetHandler(func(from wire.NodeID, p []byte, _ *wire.Buf) {
		mu.Lock()
		got = append(got, string(p))
		mu.Unlock()
	})
	if err := ta.SendSync(2, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("got %v, want [hello]", got)
	}
}

func TestRetransmitOnLoss(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AckTimeout = 5 * time.Millisecond
	cfg.Attempts = 20
	ta, tb, _ := pair(t, simnet.Profile{Loss: 0.4}, cfg)
	var mu sync.Mutex
	seen := map[string]int{}
	tb.SetHandler(func(_ wire.NodeID, p []byte, _ *wire.Buf) {
		mu.Lock()
		seen[string(p)]++
		mu.Unlock()
	})
	for i := 0; i < 20; i++ {
		if err := ta.SendSync(2, []byte{byte('A' + i)}); err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 20 {
		t.Fatalf("delivered %d distinct messages, want 20", len(seen))
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("message %q delivered %d times, want exactly once", k, c)
		}
	}
	if ta.Stats().Counter(stats.MetricRetransmits).Load() == 0 {
		t.Fatal("40%% loss but zero retransmits recorded")
	}
}

func TestFailureOnDeliveryNotification(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AckTimeout = 5 * time.Millisecond
	cfg.Attempts = 3
	ta, _, n := pair(t, simnet.Profile{}, cfg)
	n.SetNodeDown("b", true)
	start := time.Now()
	err := ta.SendSync(2, []byte("x"))
	if !errors.Is(err, ErrDeliveryFailed) {
		t.Fatalf("err = %v, want ErrDeliveryFailed", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("failure notification took %v, want fast local-view detection", elapsed)
	}
	if ta.Stats().Counter(stats.MetricSendFailures).Load() != 1 {
		t.Fatal("send failure not counted")
	}
}

func TestUnknownPeer(t *testing.T) {
	ta, _, _ := pair(t, simnet.Profile{}, DefaultConfig())
	if err := ta.SendSync(99, []byte("x")); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("err = %v, want ErrUnknownPeer", err)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// High duplicate pressure: parallel strategy with two identical
	// remote addresses would duplicate every frame; with one address,
	// force retransmits by delaying acks via latency close to timeout.
	cfg := DefaultConfig()
	cfg.AckTimeout = 3 * time.Millisecond
	cfg.Attempts = 10
	ta, tb, _ := pair(t, simnet.Profile{Latency: 4 * time.Millisecond}, cfg)
	var mu sync.Mutex
	count := map[string]int{}
	tb.SetHandler(func(_ wire.NodeID, p []byte, _ *wire.Buf) {
		mu.Lock()
		count[string(p)]++
		mu.Unlock()
	})
	for i := 0; i < 10; i++ {
		if err := ta.SendSync(2, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(30 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	for k, c := range count {
		if c != 1 {
			t.Fatalf("payload %x delivered %d times", k, c)
		}
	}
	if ta.Stats().Counter(stats.MetricRetransmits).Load() == 0 {
		t.Fatal("expected retransmits with latency > ack timeout")
	}
}

func TestMultiAddressSequentialFailover(t *testing.T) {
	// Node B has two addresses; the link to the first is cut. Sequential
	// strategy must fail over to the second and deliver.
	n := simnet.New(simnet.Options{Seed: 3})
	defer n.Close()
	cfg := DefaultConfig()
	cfg.AckTimeout = 5 * time.Millisecond
	cfg.Attempts = 4
	ta := New(1, []PacketConn{NewSimConn(n.MustEndpoint("a"))}, nil, nil, cfg)
	defer ta.Close()
	eb1 := n.MustEndpoint("b1")
	eb2 := n.MustEndpoint("b2")
	tb := New(2, []PacketConn{NewSimConn(eb1), NewSimConn(eb2)}, nil, nil, cfg)
	defer tb.Close()
	ta.SetPeer(2, []Addr{"b1", "b2"})
	tb.SetPeer(1, []Addr{"a"})
	var delivered sync.WaitGroup
	delivered.Add(1)
	tb.SetHandler(func(wire.NodeID, []byte, *wire.Buf) { delivered.Done() })
	n.CutLink("a", "b1")
	if err := ta.SendSync(2, []byte("via b2")); err != nil {
		t.Fatalf("redundant-link send failed: %v", err)
	}
	delivered.Wait()
}

func TestMultiAddressParallel(t *testing.T) {
	n := simnet.New(simnet.Options{Seed: 4})
	defer n.Close()
	cfg := DefaultConfig()
	cfg.Strategy = Parallel
	cfg.AckTimeout = 20 * time.Millisecond
	ta := New(1, []PacketConn{NewSimConn(n.MustEndpoint("a"))}, nil, nil, cfg)
	defer ta.Close()
	tb := New(2, []PacketConn{NewSimConn(n.MustEndpoint("b1")), NewSimConn(n.MustEndpoint("b2"))}, nil, nil, cfg)
	defer tb.Close()
	ta.SetPeer(2, []Addr{"b1", "b2"})
	tb.SetPeer(1, []Addr{"a"})
	var mu sync.Mutex
	total := 0
	tb.SetHandler(func(wire.NodeID, []byte, *wire.Buf) {
		mu.Lock()
		total++
		mu.Unlock()
	})
	n.CutLink("a", "b1") // parallel still succeeds instantly through b2
	if err := ta.SendSync(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	mu.Lock()
	defer mu.Unlock()
	if total != 1 {
		t.Fatalf("delivered %d times, want exactly 1 (dedup across parallel sends)", total)
	}
}

func TestSendAfterClose(t *testing.T) {
	ta, _, _ := pair(t, simnet.Profile{}, DefaultConfig())
	ta.Close()
	if err := ta.SendSync(2, []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestConcurrentSends(t *testing.T) {
	ta, tb, _ := pair(t, simnet.Profile{}, DefaultConfig())
	var mu sync.Mutex
	got := map[byte]bool{}
	tb.SetHandler(func(_ wire.NodeID, p []byte, _ *wire.Buf) {
		mu.Lock()
		got[p[0]] = true
		mu.Unlock()
	})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i byte) {
			defer wg.Done()
			errs <- ta.SendSync(2, []byte{i})
		}(byte(i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 64 {
		t.Fatalf("delivered %d distinct payloads, want 64", len(got))
	}
}

func TestFrameCodecRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1}, make([]byte, frameHeaderLen-1),
		append([]byte{0x00}, make([]byte, 20)...),            // bad magic
		append([]byte{frameMagic, 9}, make([]byte, 20)...)} { // bad kind
		if _, _, _, _, err := decodeFrame(b); err == nil {
			t.Fatalf("decodeFrame(%x) succeeded", b)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := encodeFrame(frameData, 7, 42, []byte("payload"))
	kind, src, id, body, err := decodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if kind != frameData || src != 7 || id != 42 || string(body) != "payload" {
		t.Fatalf("round trip: kind=%d src=%d id=%d body=%q", kind, src, id, body)
	}
}

func TestDedupWindow(t *testing.T) {
	w := newDedupWindow(8)
	if !w.observe(1) || w.observe(1) {
		t.Fatal("basic dedup broken")
	}
	for i := uint64(2); i <= 20; i++ {
		w.observe(i)
	}
	// ID 1 is far below maxSeen-window: stale duplicate.
	if w.observe(1) {
		t.Fatal("stale ID accepted after window advanced")
	}
	// A fresh high ID is accepted.
	if !w.observe(100) {
		t.Fatal("fresh ID rejected")
	}
}

func TestUDPTransport(t *testing.T) {
	ca, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ta := New(1, []PacketConn{ca}, nil, nil, DefaultConfig())
	tb := New(2, []PacketConn{cb}, nil, nil, DefaultConfig())
	defer ta.Close()
	defer tb.Close()
	ta.SetPeer(2, []Addr{cb.LocalAddr()})
	tb.SetPeer(1, []Addr{ca.LocalAddr()})
	done := make(chan string, 1)
	tb.SetHandler(func(_ wire.NodeID, p []byte, _ *wire.Buf) { done <- string(p) })
	if err := ta.SendSync(2, []byte("over real UDP")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if got != "over real UDP" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("UDP delivery timed out")
	}
}

func BenchmarkSendSyncSimnet(b *testing.B) {
	n := simnet.New(simnet.Options{})
	defer n.Close()
	ta := New(1, []PacketConn{NewSimConn(n.MustEndpoint("a"))}, nil, nil, DefaultConfig())
	tb := New(2, []PacketConn{NewSimConn(n.MustEndpoint("b"))}, nil, nil, DefaultConfig())
	defer ta.Close()
	defer tb.Close()
	ta.SetPeer(2, []Addr{"b"})
	tb.SetPeer(1, []Addr{"a"})
	tb.SetHandler(func(wire.NodeID, []byte, *wire.Buf) {})
	payload := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ta.SendSync(2, payload); err != nil {
			b.Fatal(err)
		}
	}
}
