package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/wire"
)

// pipeConn is a synchronous in-process conn pair: Send invokes the peer's
// receiver inline without copying. It exists to measure the transport's own
// allocation behavior with the medium taken out of the picture.
type pipeConn struct {
	mu   sync.Mutex
	fn   func(from Addr, payload []byte, buf *wire.Buf)
	peer *pipeConn
	addr Addr
}

func newPipePair() (*pipeConn, *pipeConn) {
	a := &pipeConn{addr: "a"}
	b := &pipeConn{addr: "b"}
	a.peer, b.peer = b, a
	return a, b
}

func (c *pipeConn) Send(to Addr, payload []byte) error {
	p := c.peer
	p.mu.Lock()
	fn := p.fn
	p.mu.Unlock()
	if fn != nil {
		fn(c.addr, payload, nil)
	}
	return nil
}

func (c *pipeConn) SetReceiver(fn func(from Addr, payload []byte, buf *wire.Buf)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.fn = fn
}

func (c *pipeConn) Close() error { return nil }

// TestSendSteadyStateAllocs pins the reliable-send hot path at <=1
// allocation per frame: pooled frame buffers, pooled ack buffers, and
// recycled send tasks must leave nothing per-message for the GC.
func TestSendSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; budget measured without -race")
	}
	ca, cb := newPipePair()
	ta := New(1, []PacketConn{ca}, nil, stats.NewRegistry(), DefaultConfig())
	tb := New(2, []PacketConn{cb}, nil, stats.NewRegistry(), DefaultConfig())
	defer ta.Close()
	defer tb.Close()
	ta.SetPeer(2, []Addr{"b"})
	tb.SetPeer(1, []Addr{"a"})
	tb.SetHandler(func(wire.NodeID, []byte, *wire.Buf) {})

	payload := make([]byte, 256)
	ch := make(chan error, 1)
	done := func(err error) { ch <- err }
	send := func() {
		ta.Send(2, payload, done)
		if err := <-ch; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		send() // warm the pools, the dedup window, and the goroutine cache
	}
	allocs := testing.AllocsPerRun(256, send)
	if allocs > 1 {
		t.Fatalf("reliable send allocates %.2f/frame, want <=1", allocs)
	}
}

// TestTransportOverBatchedUDP runs the full reliable transport over the
// batched UDP conns and checks both delivery and that traffic actually
// flowed through the batch interface.
func TestTransportOverBatchedUDP(t *testing.T) {
	before := BatchStats()
	ca, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cb, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ta := New(1, []PacketConn{ca}, nil, stats.NewRegistry(), DefaultConfig())
	tb := New(2, []PacketConn{cb}, nil, stats.NewRegistry(), DefaultConfig())
	defer ta.Close()
	defer tb.Close()
	ta.SetPeer(2, []Addr{cb.LocalAddr()})
	tb.SetPeer(1, []Addr{ca.LocalAddr()})

	const msgs = 200
	var got atomic.Int64
	tb.SetHandler(func(_ wire.NodeID, p []byte, _ *wire.Buf) {
		got.Add(1)
	})
	var wg sync.WaitGroup
	errs := make(chan error, msgs)
	for i := 0; i < msgs; i++ {
		wg.Add(1)
		ta.Send(2, []byte(fmt.Sprintf("msg-%03d", i)), func(err error) {
			if err != nil {
				errs <- err
			}
			wg.Done()
		})
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("send failed: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for got.Load() < msgs && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got.Load() != msgs {
		t.Fatalf("delivered %d/%d", got.Load(), msgs)
	}
	after := BatchStats()
	if after.SendCalls <= before.SendCalls || after.RecvCalls <= before.RecvCalls {
		t.Fatalf("batch counters did not advance: %+v -> %+v", before, after)
	}
	if after.SentFrames-before.SentFrames < msgs {
		t.Fatalf("sent frames %d < %d messages", after.SentFrames-before.SentFrames, msgs)
	}
}

// benchBurst is how many datagrams each benchmark iteration sends before
// waiting for the receiver to report them delivered. Waiting for delivery
// (not just enqueue) makes the number an end-to-end throughput figure and
// keeps the send queue from ballooning past what a real, ack-paced caller
// would ever put in flight.
const benchBurst = 32

// waitDelivered blocks until got reaches want or a deadline passes; the
// shortfall (loopback drops under pressure) is returned so callers can
// report rather than hang on it.
func waitDelivered(got *atomic.Int64, want int64) (lost int64) {
	deadline := time.Now().Add(2 * time.Second)
	for got.Load() < want {
		if time.Now().After(deadline) {
			return want - got.Load()
		}
		time.Sleep(50 * time.Microsecond)
	}
	return 0
}

// BenchmarkUDPSendBatched measures delivered throughput over the queued,
// mmsg-flushed path: bursts of datagrams through UDPConn on both ends, one
// sendmmsg per flush and one recvmmsg per drained burst. Compare against
// BenchmarkUDPSendUnbatched for the frames-per-syscall amortization.
func BenchmarkUDPSendBatched(b *testing.B) {
	sink, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	var got atomic.Int64
	sink.SetReceiver(func(Addr, []byte, *wire.Buf) { got.Add(1) })
	send, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()
	payload := make([]byte, 256)
	to := sink.LocalAddr()
	b.SetBytes(int64(benchBurst * len(payload)))
	b.ReportAllocs()
	var sent, lost int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < benchBurst; j++ {
			if err := send.Send(to, payload); err != nil {
				b.Fatal(err)
			}
		}
		sent += benchBurst
		l := waitDelivered(&got, sent)
		lost += l
		sent -= l
		got.Store(sent)
	}
	b.StopTimer()
	b.ReportMetric(float64(lost)/float64(b.N), "lost/op")
}

// BenchmarkUDPSendUnbatched is the one-syscall-per-datagram baseline the
// batching is measured against: identical burst-and-wait shape, but raw
// WriteToUDP/ReadFromUDP on both ends.
func BenchmarkUDPSendUnbatched(b *testing.B) {
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	var got atomic.Int64
	go func() {
		buf := make([]byte, maxUDPDatagram)
		for {
			if _, _, err := sink.ReadFromUDP(buf); err != nil {
				return
			}
			got.Add(1)
		}
	}()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		b.Fatal(err)
	}
	defer conn.Close()
	ua := sink.LocalAddr().(*net.UDPAddr)
	payload := make([]byte, 256)
	b.SetBytes(int64(benchBurst * len(payload)))
	b.ReportAllocs()
	var sent, lost int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < benchBurst; j++ {
			if _, err := conn.WriteToUDP(payload, ua); err != nil {
				b.Fatal(err)
			}
		}
		sent += benchBurst
		l := waitDelivered(&got, sent)
		lost += l
		sent -= l
		got.Store(sent)
	}
	b.StopTimer()
	b.ReportMetric(float64(lost)/float64(b.N), "lost/op")
}
