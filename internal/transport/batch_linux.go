//go:build linux && (amd64 || arm64)

package transport

// Linux fast path: sendmmsg(2)/recvmmsg(2) flush and drain whole datagram
// batches in one syscall each. The standard library exposes neither, and
// this module deliberately has no dependencies (golang.org/x/sys included),
// so the mmsghdr plumbing lives here, gated to the 64-bit platforms whose
// struct layout it encodes. Everything else falls back to batch_stub.go.

import (
	"errors"
	"net"
	"sync"
	"syscall"
	"unsafe"
)

// mmsgHdr mirrors struct mmsghdr on 64-bit Linux: a msghdr plus the
// per-message byte count the kernel fills in.
type mmsgHdr struct {
	hdr syscall.Msghdr
	n   uint32
	_   [4]byte // pad to the struct's 8-byte alignment
}

// sockaddrBufLen fits sockaddr_in and sockaddr_in6.
const sockaddrBufLen = syscall.SizeofSockaddrInet6

// rawSockaddr is a pre-encoded kernel sockaddr for a destination.
type rawSockaddr struct {
	data [sockaddrBufLen]byte
	len  uint32
}

type linuxBatch struct {
	rc syscall.RawConn
	// v6 marks a socket bound to an IPv6 (or dual-stack) address; IPv4
	// destinations are then encoded v4-mapped.
	v6 bool

	// Send-side scratch, reused across writeBatch calls.
	smu    sync.Mutex
	shdrs  []mmsgHdr
	siov   []syscall.Iovec
	saddr  []rawSockaddr
	scache map[*net.UDPAddr]rawSockaddr

	// Receive-side scratch. readBatch is only ever called from the conn's
	// single readLoop, but the scratch keeps it allocation-free anyway.
	rhdrs  []mmsgHdr
	riov   []syscall.Iovec
	raddr  []rawSockaddr
	rnames map[string]Addr
}

func newBatchConn(conn *net.UDPConn) (batchConn, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, err
	}
	b := &linuxBatch{
		rc:     rc,
		scache: make(map[*net.UDPAddr]rawSockaddr),
		rnames: make(map[string]Addr),
	}
	if la, ok := conn.LocalAddr().(*net.UDPAddr); ok && la.IP.To4() == nil {
		b.v6 = true
	}
	return b, nil
}

func htons(v uint16) uint16 { return v<<8 | v>>8 }

// encodeSockaddr builds the kernel sockaddr for a destination, matching
// the socket's address family (IPv4 destinations on an IPv6 socket go
// v4-mapped).
func (b *linuxBatch) encodeSockaddr(ua *net.UDPAddr) (rawSockaddr, error) {
	var r rawSockaddr
	if ip4 := ua.IP.To4(); ip4 != nil && !b.v6 {
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&r.data))
		sa.Family = syscall.AF_INET
		sa.Port = htons(uint16(ua.Port))
		copy(sa.Addr[:], ip4)
		r.len = syscall.SizeofSockaddrInet4
		return r, nil
	}
	ip := ua.IP.To16()
	if ip == nil {
		return r, errors.New("transport: unencodable destination IP")
	}
	sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&r.data))
	sa.Family = syscall.AF_INET6
	sa.Port = htons(uint16(ua.Port))
	copy(sa.Addr[:], ip)
	r.len = syscall.SizeofSockaddrInet6
	return r, nil
}

// sockaddrFor returns the cached kernel sockaddr for a destination. The
// peer set is small and stable (the resolve cache in UDPConn already
// interns the *net.UDPAddr), so the pointer-keyed cache stays tiny.
func (b *linuxBatch) sockaddrFor(ua *net.UDPAddr) (rawSockaddr, error) {
	if r, ok := b.scache[ua]; ok {
		return r, nil
	}
	r, err := b.encodeSockaddr(ua)
	if err == nil {
		b.scache[ua] = r
	}
	return r, err
}

// writeBatch flushes the packets with as few sendmmsg calls as the kernel
// allows (normally one). Best-effort: per-packet kernel errors drop the
// rest of the batch and rely on transport-level retries.
func (b *linuxBatch) writeBatch(pkts []outPacket) error {
	b.smu.Lock()
	defer b.smu.Unlock()
	if cap(b.shdrs) < len(pkts) {
		b.shdrs = make([]mmsgHdr, len(pkts))
		b.siov = make([]syscall.Iovec, len(pkts))
		b.saddr = make([]rawSockaddr, len(pkts))
	}
	hdrs := b.shdrs[:0]
	iovs := b.siov[:len(pkts)]
	addrs := b.saddr[:len(pkts)]
	for i := range pkts {
		ra, err := b.sockaddrFor(pkts[i].ua)
		if err != nil || pkts[i].n == 0 {
			continue // skip the unencodable; retries surface the failure
		}
		k := len(hdrs)
		addrs[k] = ra
		iovs[k] = syscall.Iovec{Base: &pkts[i].buf.B[0], Len: uint64(pkts[i].n)}
		hdrs = append(hdrs, mmsgHdr{})
		h := &hdrs[k].hdr
		h.Name = &addrs[k].data[0]
		h.Namelen = addrs[k].len
		h.Iov = &iovs[k]
		h.Iovlen = 1
	}
	sent := 0
	for sent < len(hdrs) {
		var n int
		var errno syscall.Errno
		err := b.rc.Write(func(fd uintptr) bool {
			r, _, e := syscall.Syscall6(sysSENDMMSG,
				fd,
				uintptr(unsafe.Pointer(&hdrs[sent])),
				uintptr(len(hdrs)-sent),
				0, 0, 0)
			if e == syscall.EAGAIN {
				return false // wait for writability, then retry
			}
			if e == syscall.EINTR {
				n = 0
				return true
			}
			n, errno = int(r), e
			return true
		})
		if err != nil {
			return err // conn closed
		}
		if errno != 0 {
			return errno
		}
		if n > 0 {
			batchSendCalls.Add(1)
			batchSentFrames.Add(int64(n))
			sent += n
		}
	}
	return nil
}

// readBatch blocks until at least one datagram is available, then drains
// up to len(slots) of them in one recvmmsg call.
func (b *linuxBatch) readBatch(slots []inPacket) (int, error) {
	if cap(b.rhdrs) < len(slots) {
		b.rhdrs = make([]mmsgHdr, len(slots))
		b.riov = make([]syscall.Iovec, len(slots))
		b.raddr = make([]rawSockaddr, len(slots))
	}
	hdrs := b.rhdrs[:len(slots)]
	iovs := b.riov[:len(slots)]
	addrs := b.raddr[:len(slots)]
	for i := range slots {
		iovs[i] = syscall.Iovec{Base: &slots[i].buf.B[0], Len: uint64(len(slots[i].buf.B))}
		hdrs[i] = mmsgHdr{}
		h := &hdrs[i].hdr
		h.Name = &addrs[i].data[0]
		h.Namelen = sockaddrBufLen
		h.Iov = &iovs[i]
		h.Iovlen = 1
	}
	var n int
	var errno syscall.Errno
	err := b.rc.Read(func(fd uintptr) bool {
		r, _, e := syscall.Syscall6(sysRECVMMSG,
			fd,
			uintptr(unsafe.Pointer(&hdrs[0])),
			uintptr(len(hdrs)),
			syscall.MSG_DONTWAIT, 0, 0)
		if e == syscall.EAGAIN || e == syscall.EINTR {
			return false // wait for readability, then retry
		}
		n, errno = int(r), e
		return true
	})
	if err != nil {
		return 0, err
	}
	if errno != 0 {
		return 0, errno
	}
	for i := 0; i < n; i++ {
		slots[i].n = int(hdrs[i].n)
		slots[i].from = b.addrOf(&addrs[i], hdrs[i].hdr.Namelen)
	}
	batchRecvCalls.Add(1)
	batchRecvFrames.Add(int64(n))
	return n, nil
}

// addrOf converts a kernel source sockaddr to an Addr, caching the string
// conversion so steady-state receives from known peers allocate nothing.
func (b *linuxBatch) addrOf(ra *rawSockaddr, salen uint32) Addr {
	if salen > sockaddrBufLen {
		salen = sockaddrBufLen
	}
	key := ra.data[:salen]
	if a, ok := b.rnames[string(key)]; ok { // no alloc: mapaccess special case
		return a
	}
	var ua net.UDPAddr
	switch fam := uint16(ra.data[0]) | uint16(ra.data[1])<<8; fam {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&ra.data))
		ua.IP = append(net.IP(nil), sa.Addr[:]...)
		ua.Port = int(htons(sa.Port))
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&ra.data))
		ua.IP = append(net.IP(nil), sa.Addr[:]...)
		ua.Port = int(htons(sa.Port))
	default:
		return ""
	}
	a := Addr(ua.String())
	b.rnames[string(append([]byte(nil), key...))] = a
	return a
}
