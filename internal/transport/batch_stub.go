//go:build !(linux && (amd64 || arm64))

package transport

// Portable batchConn fallback: the same interface as the Linux
// sendmmsg/recvmmsg fast path, implemented with one WriteToUDP per packet
// and one ReadFromUDP per readBatch. The batch counters still advance so
// frames-per-syscall stays meaningful (it reads 1.0 here).

import "net"

type fallbackBatch struct {
	conn *net.UDPConn
}

func newBatchConn(conn *net.UDPConn) (batchConn, error) {
	return &fallbackBatch{conn: conn}, nil
}

func (b *fallbackBatch) writeBatch(pkts []outPacket) error {
	var first error
	for i := range pkts {
		if pkts[i].n == 0 {
			continue
		}
		if _, err := b.conn.WriteToUDP(pkts[i].buf.B[:pkts[i].n], pkts[i].ua); err != nil {
			if first == nil {
				first = err
			}
			continue
		}
		batchSendCalls.Add(1)
		batchSentFrames.Add(1)
	}
	return first
}

func (b *fallbackBatch) readBatch(slots []inPacket) (int, error) {
	n, from, err := b.conn.ReadFromUDP(slots[0].buf.B)
	if err != nil {
		return 0, err
	}
	slots[0].n = n
	slots[0].from = Addr(from.String())
	batchRecvCalls.Add(1)
	batchRecvFrames.Add(1)
	return 1, nil
}
