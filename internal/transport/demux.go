package transport

import (
	"fmt"
	"sync"

	"repro/internal/stats"
	"repro/internal/wire"
)

// Demux fans one Transport out to multiple rings. The sharded multi-ring
// runtime runs S independent token rings over the same nodes; all of them
// share one Transport (one set of PacketConns, one ack/retry machinery,
// one dedup window per peer) and the demultiplexer routes each received
// session frame to the receiver registered for the frame's RingID.
//
// Version-1 frames carry no RingID and route to ring 0, so a ring-0
// receiver transparently serves not-yet-upgraded peers.
//
// The receiver set is fully dynamic: an elastic runtime registers a ring
// when it spawns the ring's node and unregisters it when the ring is
// removed. Frames for rings with no receiver are dropped, counted both in
// aggregate (MetricDemuxDrops) and per ring (Drops), so a peer that is on
// a different routing epoch — still sending to a ring this node no longer
// hosts, or already sending to one it does not host yet — shows up in the
// health view instead of failing silently.
type Demux struct {
	tr *Transport

	mu    sync.RWMutex
	rings map[wire.RingID]func(from wire.NodeID, payload []byte, buf *wire.Buf)
	drops map[wire.RingID]int64
}

// NewDemux wraps a transport, taking over its handler slot. Receivers are
// attached per ring with Register; frames for unregistered rings are
// dropped and counted under MetricDemuxDrops.
func NewDemux(tr *Transport) *Demux {
	d := &Demux{
		tr:    tr,
		rings: make(map[wire.RingID]func(from wire.NodeID, payload []byte, buf *wire.Buf)),
		drops: make(map[wire.RingID]int64),
	}
	tr.SetHandler(d.dispatch)
	return d
}

// Transport returns the shared underlying transport.
func (d *Demux) Transport() *Transport { return d.tr }

// Register installs the receiver for one ring. It fails if the ring
// already has a receiver, so two nodes cannot silently fight over a ring.
func (d *Demux) Register(ring wire.RingID, fn func(from wire.NodeID, payload []byte, buf *wire.Buf)) error {
	if fn == nil {
		return fmt.Errorf("transport: nil receiver for ring %v", ring)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, taken := d.rings[ring]; taken {
		return fmt.Errorf("transport: ring %v already registered", ring)
	}
	d.rings[ring] = fn
	return nil
}

// Unregister removes the receiver for one ring; subsequent frames for it
// are dropped.
func (d *Demux) Unregister(ring wire.RingID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.rings, ring)
}

// Rings lists the rings that currently have receivers.
func (d *Demux) Rings() []wire.RingID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]wire.RingID, 0, len(d.rings))
	for r := range d.rings {
		out = append(out, r)
	}
	return out
}

// Drops returns, per ring, how many frames were dropped because the ring
// had no receiver. A non-empty map after assembly points at a peer whose
// routing epoch disagrees with this node's ring set.
func (d *Demux) Drops() map[wire.RingID]int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[wire.RingID]int64, len(d.drops))
	for r, n := range d.drops {
		out[r] = n
	}
	return out
}

// dispatch routes one delivered payload by its frame's RingID (chunked
// frames carry it at the same offset, so they route like the frame they
// will reassemble into). Corrupt frames are dropped here exactly as a
// single ring's decoder would drop them; frames for unknown rings count
// as demux drops. buf follows the transport's retain-to-keep contract.
func (d *Demux) dispatch(from wire.NodeID, payload []byte, buf *wire.Buf) {
	ring, err := wire.PeekRing(payload)
	if err != nil {
		return
	}
	d.mu.RLock()
	fn := d.rings[ring]
	d.mu.RUnlock()
	if fn == nil {
		d.tr.Stats().Counter(stats.MetricDemuxDrops).Inc()
		d.mu.Lock()
		d.drops[ring]++
		d.mu.Unlock()
		return
	}
	fn(from, payload, buf)
}
