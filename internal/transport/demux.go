package transport

import (
	"fmt"
	"sync"

	"repro/internal/stats"
	"repro/internal/wire"
)

// Demux fans one Transport out to multiple rings. The sharded multi-ring
// runtime runs S independent token rings over the same nodes; all of them
// share one Transport (one set of PacketConns, one ack/retry machinery,
// one dedup window per peer) and the demultiplexer routes each received
// session frame to the receiver registered for the frame's RingID.
//
// Version-1 frames carry no RingID and route to ring 0, so a ring-0
// receiver transparently serves not-yet-upgraded peers.
type Demux struct {
	tr *Transport

	mu    sync.RWMutex
	rings map[wire.RingID]func(from wire.NodeID, payload []byte)
}

// NewDemux wraps a transport, taking over its handler slot. Receivers are
// attached per ring with Register; frames for unregistered rings are
// dropped and counted under MetricDemuxDrops.
func NewDemux(tr *Transport) *Demux {
	d := &Demux{tr: tr, rings: make(map[wire.RingID]func(from wire.NodeID, payload []byte))}
	tr.SetHandler(d.dispatch)
	return d
}

// Transport returns the shared underlying transport.
func (d *Demux) Transport() *Transport { return d.tr }

// Register installs the receiver for one ring. It fails if the ring
// already has a receiver, so two nodes cannot silently fight over a ring.
func (d *Demux) Register(ring wire.RingID, fn func(from wire.NodeID, payload []byte)) error {
	if fn == nil {
		return fmt.Errorf("transport: nil receiver for ring %v", ring)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, taken := d.rings[ring]; taken {
		return fmt.Errorf("transport: ring %v already registered", ring)
	}
	d.rings[ring] = fn
	return nil
}

// Unregister removes the receiver for one ring; subsequent frames for it
// are dropped.
func (d *Demux) Unregister(ring wire.RingID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.rings, ring)
}

// Rings lists the rings that currently have receivers.
func (d *Demux) Rings() []wire.RingID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]wire.RingID, 0, len(d.rings))
	for r := range d.rings {
		out = append(out, r)
	}
	return out
}

// dispatch routes one delivered payload by its frame's RingID. Corrupt
// frames are dropped here exactly as a single ring's decoder would drop
// them; frames for unknown rings count as demux drops.
func (d *Demux) dispatch(from wire.NodeID, payload []byte) {
	ring, err := wire.PeekRing(payload)
	if err != nil {
		return
	}
	d.mu.RLock()
	fn := d.rings[ring]
	d.mu.RUnlock()
	if fn == nil {
		d.tr.Stats().Counter(stats.MetricDemuxDrops).Inc()
		return
	}
	fn(from, payload)
}
