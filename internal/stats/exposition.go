package stats

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) over a registry snapshot.
//
// Metric names may carry labels inline — `LabeledName` builds
// `base{k="v",...}` strings, and the registry treats each distinct
// labeled name as its own counter/gauge/histogram. The renderer groups
// labeled series under one `# TYPE base <type>` header and, for
// histograms, splices the `le` label into the existing label set, so the
// output parses as standard Prometheus histograms with cumulative
// buckets plus `_sum` and `_count`.

// LabeledName renders base{k1="v1",k2="v2",...} from alternating
// key/value pairs. Values are escaped per the exposition format
// (backslash, double-quote, newline). With no pairs it returns base
// unchanged.
func LabeledName(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// splitName separates a (possibly labeled) metric name into its base and
// the raw label body (without braces; empty when unlabeled).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// withLE appends the le label to an existing label body.
func withLE(labels, le string) string {
	if labels == "" {
		return `le="` + le + `"`
	}
	return labels + `,le="` + le + `"`
}

// formatLE renders a bucket bound in seconds the way Prometheus clients
// conventionally do: a minimal decimal ("0.005", "1", "2.5").
func formatLE(seconds float64) string {
	return strconv.FormatFloat(seconds, 'g', -1, 64)
}

// sanitizeBase maps a registry name onto the exposition name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*. Registry names are already snake_case; this
// is a guard against future additions, not a transliteration layer.
func sanitizeBase(name string) string {
	var b []byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b = append(b, c)
		} else {
			b = append(b, '_')
		}
	}
	if len(b) == 0 {
		return "_"
	}
	return string(b)
}

// series is one renderable line: a full labeled name and its value.
type series struct {
	labels string
	value  string
}

// writeFamily emits one `# TYPE` header and its series, sorted by label
// set for deterministic scrapes.
func writeFamily(w io.Writer, base, typ string, ss []series) {
	sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
	fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
	for _, s := range ss {
		if s.labels == "" {
			fmt.Fprintf(w, "%s %s\n", base, s.value)
		} else {
			fmt.Fprintf(w, "%s{%s} %s\n", base, s.labels, s.value)
		}
	}
}

// WriteText renders the snapshot in Prometheus text exposition format.
// Counters render as counters, gauges as gauges, and histograms as
// `<base>_seconds` histograms with the fixed bucket ladder (durations
// converted to seconds), `_sum` and `_count`. One snapshot in, one
// scrape out: callers that serve both a JSON stats surface and /metrics
// should render both from the same Snapshot value so the two never
// disagree mid-scrape.
func (s Snapshot) WriteText(w io.Writer) {
	type family struct {
		typ string
		ss  []series
	}
	fams := make(map[string]*family)
	add := func(name, typ, value string) {
		base, labels := splitName(name)
		base = sanitizeBase(base)
		f, ok := fams[base]
		if !ok {
			f = &family{typ: typ}
			fams[base] = f
		}
		f.ss = append(f.ss, series{labels: labels, value: value})
	}
	for name, v := range s.Counters {
		add(name, "counter", strconv.FormatInt(v, 10))
	}
	for name, v := range s.Gauges {
		add(name, "gauge", strconv.FormatInt(v, 10))
	}

	// Histogram families render expanded: per-snapshot-entry bucket,
	// sum and count series, all grouped under one _seconds base.
	type histEntry struct {
		labels string
		h      HistogramSummary
	}
	hists := make(map[string][]histEntry)
	for name, h := range s.Histograms {
		base, labels := splitName(name)
		base = sanitizeBase(base) + "_seconds"
		hists[base] = append(hists[base], histEntry{labels: labels, h: h})
	}

	bases := make([]string, 0, len(fams)+len(hists))
	for b := range fams {
		bases = append(bases, b)
	}
	for b := range hists {
		bases = append(bases, b)
	}
	sort.Strings(bases)

	for _, base := range bases {
		if f, ok := fams[base]; ok {
			writeFamily(w, base, f.typ, f.ss)
			continue
		}
		entries := hists[base]
		sort.Slice(entries, func(i, j int) bool { return entries[i].labels < entries[j].labels })
		fmt.Fprintf(w, "# TYPE %s histogram\n", base)
		for _, e := range entries {
			for _, b := range e.h.Buckets {
				fmt.Fprintf(w, "%s_bucket{%s} %d\n",
					base, withLE(e.labels, formatLE(b.UpperBound.Seconds())), b.Count)
			}
			fmt.Fprintf(w, "%s_bucket{%s} %d\n", base, withLE(e.labels, "+Inf"), e.h.Count)
			if e.labels == "" {
				fmt.Fprintf(w, "%s_sum %s\n", base, formatLE(e.h.Sum.Seconds()))
				fmt.Fprintf(w, "%s_count %d\n", base, e.h.Count)
			} else {
				fmt.Fprintf(w, "%s_sum{%s} %s\n", base, e.labels, formatLE(e.h.Sum.Seconds()))
				fmt.Fprintf(w, "%s_count{%s} %d\n", base, e.labels, e.h.Count)
			}
		}
	}
}

// ValidateExposition checks that r is plausible Prometheus text
// exposition: every non-empty line is a comment or `name[{labels}]
// value [timestamp]` with a well-formed name, balanced label braces and
// a parseable float value. It is the assertion the gateway smoke tests
// and the E9 experiment run against a live /metrics scrape; it is not a
// full grammar.
func ValidateExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	sawSeries := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		rest := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.IndexByte(line, '}')
			if j < i {
				return fmt.Errorf("exposition line %d: unbalanced label braces: %q", lineNo, line)
			}
			name = line[:i]
			body := line[i+1 : j]
			if body != "" {
				for _, pair := range splitLabels(body) {
					k, v, ok := strings.Cut(pair, "=")
					if !ok || k == "" || !validName(k) || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
						return fmt.Errorf("exposition line %d: bad label %q", lineNo, pair)
					}
				}
			}
			rest = strings.TrimSpace(line[j+1:])
		} else {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				return fmt.Errorf("exposition line %d: want `name value`: %q", lineNo, line)
			}
			name = fields[0]
			rest = strings.Join(fields[1:], " ")
		}
		if !validName(name) {
			return fmt.Errorf("exposition line %d: bad metric name %q", lineNo, name)
		}
		fields := strings.Fields(rest)
		if len(fields) < 1 || len(fields) > 2 {
			return fmt.Errorf("exposition line %d: want `value [timestamp]`, got %q", lineNo, rest)
		}
		if _, err := strconv.ParseFloat(fields[0], 64); err != nil && fields[0] != "+Inf" && fields[0] != "-Inf" && fields[0] != "NaN" {
			return fmt.Errorf("exposition line %d: bad value %q", lineNo, fields[0])
		}
		sawSeries = true
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if !sawSeries {
		return fmt.Errorf("exposition: no metric series found")
	}
	return nil
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(body string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}

// validName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '_' || c == ':':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
