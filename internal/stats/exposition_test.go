package stats

import (
	"strings"
	"testing"
	"time"
)

func TestLabeledName(t *testing.T) {
	got := LabeledName("gateway_requests_total", "op", "get", "mode", "eventual", "outcome", "ok")
	want := `gateway_requests_total{op="get",mode="eventual",outcome="ok"}`
	if got != want {
		t.Fatalf("LabeledName = %q, want %q", got, want)
	}
	if got := LabeledName("plain"); got != "plain" {
		t.Fatalf("LabeledName with no pairs = %q", got)
	}
	if got := LabeledName("m", "k", `a"b\c`); got != `m{k="a\"b\\c"}` {
		t.Fatalf("LabeledName escaping = %q", got)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	h := NewHistogram()
	h.Observe(30 * time.Microsecond) // <= 50µs bucket
	h.Observe(70 * time.Microsecond) // <= 100µs bucket
	h.Observe(70 * time.Microsecond) // <= 100µs bucket
	h.Observe(20 * time.Second)      // +Inf overflow
	s := h.Summary()
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if len(s.Buckets) != len(BucketBounds()) {
		t.Fatalf("bucket count = %d, want %d", len(s.Buckets), len(BucketBounds()))
	}
	if s.Buckets[0].Count != 1 {
		t.Fatalf("le=50µs cumulative = %d, want 1", s.Buckets[0].Count)
	}
	if s.Buckets[1].Count != 3 {
		t.Fatalf("le=100µs cumulative = %d, want 3", s.Buckets[1].Count)
	}
	last := s.Buckets[len(s.Buckets)-1]
	if last.Count != 3 {
		t.Fatalf("le=10s cumulative = %d, want 3 (one sample overflows to +Inf)", last.Count)
	}
	if s.Sum != 20*time.Second+170*time.Microsecond {
		t.Fatalf("sum = %v", s.Sum)
	}
	h.Reset()
	if s := h.Summary(); len(s.Buckets) > 0 && s.Buckets[1].Count != 0 {
		t.Fatalf("reset left bucket counts: %+v", s.Buckets[1])
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(LabeledName(MetricGatewayRequests, "op", "get", "mode", "eventual", "outcome", "ok")).Add(7)
	r.Counter(LabeledName(MetricGatewayRequests, "op", "get", "mode", "eventual", "outcome", "error")).Add(1)
	r.Counter(MetricGatewayCoalesced).Add(5)
	r.Gauge(GaugeGatewayInflight).Set(3)
	r.Histogram(LabeledName(HistGatewayLatency, "mode", "eventual")).Observe(2 * time.Millisecond)
	r.Histogram(HistMulticastLatency).Observe(5 * time.Millisecond)

	var b strings.Builder
	r.Snapshot().WriteText(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE gateway_requests_total counter\n",
		`gateway_requests_total{op="get",mode="eventual",outcome="ok"} 7` + "\n",
		"# TYPE gateway_inflight gauge\ngateway_inflight 3\n",
		"# TYPE gateway_latency_seconds histogram\n",
		`gateway_latency_seconds_bucket{mode="eventual",le="0.0025"} 1` + "\n",
		`gateway_latency_seconds_bucket{mode="eventual",le="+Inf"} 1` + "\n",
		`gateway_latency_seconds_count{mode="eventual"} 1` + "\n",
		`multicast_latency_seconds_bucket{le="0.005"} 1` + "\n",
		"multicast_latency_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, out)
		}
	}
	// One TYPE header per family even with several labeled series.
	if n := strings.Count(out, "# TYPE gateway_requests_total "); n != 1 {
		t.Fatalf("gateway_requests_total TYPE headers = %d, want 1", n)
	}
	if err := ValidateExposition(strings.NewReader(out)); err != nil {
		t.Fatalf("ValidateExposition: %v\n%s", err, out)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	for _, bad := range []string{
		"9bad_name 1\n",
		"name_only\n",
		"name 1 2 3\n",
		`m{k=unquoted} 1` + "\n",
		"m notanumber\n",
		"",
	} {
		if err := ValidateExposition(strings.NewReader(bad)); err == nil {
			t.Fatalf("ValidateExposition accepted %q", bad)
		}
	}
}
